// Quickstart: compile a small C program to Pegasus dataflow graphs,
// execute it as spatial computation, and compare with the sequential
// baseline.
package main

import (
	"fmt"
	"log"

	"spatial"
)

const program = `
int squares[64];

int sumOfSquares(int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) squares[i] = i * i;
  for (i = 0; i < n; i++) s += squares[i];
  return s;
}
`

func main() {
	// Compile at full optimization (all the paper's memory passes).
	cp, err := spatial.Compile(program, spatial.WithLevel(spatial.OptFull))
	if err != nil {
		log.Fatal(err)
	}

	// Execute spatially: every operation is a hardware operator; loops
	// pipeline through the token network.
	res, err := cp.Run("sumOfSquares", []int64{64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sumOfSquares(64) = %d in %d cycles (spatial)\n", res.Value, res.Stats.Cycles)

	// The same program on the in-order sequential model.
	seq, err := cp.RunSequential("sumOfSquares", []int64{64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sumOfSquares(64) = %d in %d cycles (sequential)\n", seq.Value, seq.SeqCycles)
	fmt.Printf("spatial speedup: %.2fx\n", float64(seq.SeqCycles)/float64(res.Stats.Cycles))

	// Peek at the compiled dataflow graph.
	dump, err := cp.Dump("sumOfSquares")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPegasus graph:\n%s", dump)
}
