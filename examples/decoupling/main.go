// Decoupling demonstrates the paper's Section 6.3 loop decoupling: the
// loop `a[i] = a[i+3] + 1` has a dependence distance of 3 iterations, so
// CASH splits it into two loops coupled by a token generator tk(3) that
// lets them slip up to 3 iterations apart.
package main

import (
	"fmt"
	"log"

	"spatial/internal/core"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
)

const example = `
int a[512];

void fill(void) {
  int i;
  for (i = 0; i < 512; i++) a[i] = i & 15;
}

void shift(int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = a[i+3] + 1;
  }
}

int checksum(void) {
  int i;
  int s = 0;
  for (i = 0; i < 512; i++) s = s * 3 + a[i];
  return s & 0x7fffffff;
}

int bench(void) {
  fill();
  shift(509);
  return checksum();
}
`

func main() {
	withTk, err := core.CompileSource(example, core.Options{Level: opt.Full})
	if err != nil {
		log.Fatal(err)
	}
	// Disable decoupling for the comparison point.
	noTkOpts := opt.LevelOptions(opt.Full)
	noTkOpts.LoopDecouple = false
	noTk, err := core.CompileSource(example, core.Options{Passes: &noTkOpts})
	if err != nil {
		log.Fatal(err)
	}

	// Show the token generator in the decoupled graph.
	g := withTk.Graph("shift")
	for _, n := range g.Nodes {
		if !n.Dead && n.Kind == pegasus.KTokenGen {
			fmt.Printf("loop decoupling inserted a token generator tk(%d)\n", n.TokN)
		}
	}

	run := func(cp *core.Compiled, label string) int64 {
		res, err := cp.Run("bench", nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s checksum=%d cycles=%d\n", label, res.Value, res.Stats.Cycles)
		return res.Value
	}
	a := run(noTk, "without decoupling:")
	b := run(withTk, "with decoupling:")
	if a != b {
		log.Fatalf("results differ: %d vs %d", a, b)
	}
	fmt.Println("results match: the token generator preserved the dependence")
}
