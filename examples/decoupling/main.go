// Decoupling demonstrates the paper's Section 6.3 loop decoupling: the
// loop `a[i] = a[i+3] + 1` has a dependence distance of 3 iterations, so
// CASH splits it into two loops coupled by a token generator tk(3) that
// lets them slip up to 3 iterations apart.
package main

import (
	"fmt"
	"log"
	"regexp"

	"spatial"
)

const example = `
int a[512];

void fill(void) {
  int i;
  for (i = 0; i < 512; i++) a[i] = i & 15;
}

void shift(int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = a[i+3] + 1;
  }
}

int checksum(void) {
  int i;
  int s = 0;
  for (i = 0; i < 512; i++) s = s * 3 + a[i];
  return s & 0x7fffffff;
}

int bench(void) {
  fill();
  shift(509);
  return checksum();
}
`

func main() {
	withTk, err := spatial.Compile(example, spatial.WithLevel(spatial.OptFull))
	if err != nil {
		log.Fatal(err)
	}
	// Disable decoupling for the comparison point.
	noTkOpts := spatial.LevelPasses(spatial.OptFull)
	noTkOpts.LoopDecouple = false
	noTk, err := spatial.Compile(example, spatial.WithPasses(noTkOpts))
	if err != nil {
		log.Fatal(err)
	}

	// Show the token generator in the decoupled graph; the dump prints
	// it as tk(n).
	dump, err := withTk.Dump("shift")
	if err != nil {
		log.Fatal(err)
	}
	for _, tk := range regexp.MustCompile(`tk\(\d+\)`).FindAllString(dump, -1) {
		fmt.Printf("loop decoupling inserted a token generator %s\n", tk)
	}

	run := func(cp *spatial.Compiled, label string) int64 {
		res, err := cp.Run("bench", nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s checksum=%d cycles=%d\n", label, res.Value, res.Stats.Cycles)
		return res.Value
	}
	a := run(noTk, "without decoupling:")
	b := run(withTk, "with decoupling:")
	if a != b {
		log.Fatalf("results differ: %d vs %d", a, b)
	}
	fmt.Println("results match: the token generator preserved the dependence")
}
