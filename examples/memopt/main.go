// Memopt walks through the paper's Section 2 motivating example: the
// function uses a[i] as a temporary, and CASH's token-based rewrites
// remove the two intermediate stores and the reload — optimizations most
// production compilers of the time missed.
package main

import (
	"fmt"
	"log"

	"spatial"
)

const example = `
void f(unsigned *p, unsigned a[], int i) {
  if (p) a[i] += *p;
  else a[i] = 1;
  a[i] <<= a[i+1];
}
`

func main() {
	fmt.Println("The Section 2 example:")
	fmt.Print(example)
	fmt.Println()

	stages := []struct {
		label string
		opts  spatial.Passes
	}{
		{"A: initial token network (program order)", spatial.LevelPasses(spatial.OptNone)},
		{"B: after address disambiguation (a[i] vs a[i+1] commute)", func() spatial.Passes {
			o := spatial.LevelPasses(spatial.OptBasic)
			o.TokenRemoval = true
			o.TransitiveReduction = true
			return o
		}()},
		{"C: after load-after-store forwarding (load -> mux)", func() spatial.Passes {
			o := spatial.LevelPasses(spatial.OptBasic)
			o.TokenRemoval = true
			o.TransitiveReduction = true
			o.LoadAfterStore = true
			return o
		}()},
		{"D: after store-before-store removal (dead stores gone)", spatial.LevelPasses(spatial.OptFull)},
	}
	for _, st := range stages {
		cp, err := spatial.Compile(example, spatial.WithPasses(st.opts))
		if err != nil {
			log.Fatal(err)
		}
		loads, stores := cp.StaticMemOps()
		fmt.Printf("%-62s loads=%d stores=%d\n", st.label, loads, stores)
	}

	fmt.Println("\nFinal graph (compare with the paper's Figure 1D):")
	cp, err := spatial.Compile(example, spatial.WithLevel(spatial.OptFull))
	if err != nil {
		log.Fatal(err)
	}
	dump, err := cp.Dump("f")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dump)
}
