// Memopt walks through the paper's Section 2 motivating example: the
// function uses a[i] as a temporary, and CASH's token-based rewrites
// remove the two intermediate stores and the reload — optimizations most
// production compilers of the time missed.
package main

import (
	"fmt"
	"log"

	"spatial/internal/core"
	"spatial/internal/opt"
)

const example = `
void f(unsigned *p, unsigned a[], int i) {
  if (p) a[i] += *p;
  else a[i] = 1;
  a[i] <<= a[i+1];
}
`

func main() {
	fmt.Println("The Section 2 example:")
	fmt.Print(example)
	fmt.Println()

	stages := []struct {
		label string
		opts  opt.Options
	}{
		{"A: initial token network (program order)", opt.LevelOptions(opt.None)},
		{"B: after address disambiguation (a[i] vs a[i+1] commute)", func() opt.Options {
			o := opt.LevelOptions(opt.Basic)
			o.TokenRemoval = true
			o.TransitiveReduction = true
			return o
		}()},
		{"C: after load-after-store forwarding (load -> mux)", func() opt.Options {
			o := opt.LevelOptions(opt.Basic)
			o.TokenRemoval = true
			o.TransitiveReduction = true
			o.LoadAfterStore = true
			return o
		}()},
		{"D: after store-before-store removal (dead stores gone)", opt.LevelOptions(opt.Full)},
	}
	for _, st := range stages {
		o := st.opts
		cp, err := core.CompileSource(example, core.Options{Passes: &o})
		if err != nil {
			log.Fatal(err)
		}
		loads, stores := cp.StaticMemOps()
		fmt.Printf("%-62s loads=%d stores=%d\n", st.label, loads, stores)
	}

	fmt.Println("\nFinal graph (compare with the paper's Figure 1D):")
	cp, err := core.CompileSource(example, core.Options{Level: opt.Full})
	if err != nil {
		log.Fatal(err)
	}
	dump, err := cp.Dump("f")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dump)
}
