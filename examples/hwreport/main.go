// Hwreport demonstrates the hardware-oriented side of spatial
// computation: it compiles a benchmark kernel, estimates the synthesized
// circuit's resources (the ASPLOS'04 area evaluation), and profiles which
// operators are hottest during execution.
package main

import (
	"fmt"
	"log"

	"spatial"
)

func main() {
	w := spatial.WorkloadByName("mesa")
	if w == nil {
		log.Fatal("no such workload: mesa")
	}
	for _, level := range []spatial.Level{spatial.OptNone, spatial.OptFull} {
		cp, err := spatial.Compile(w.Source, spatial.WithLevel(level))
		if err != nil {
			log.Fatal(err)
		}
		var area int64
		for _, r := range spatial.EstimateHardware(cp) {
			area += r.Area
		}
		fmt.Printf("mesa at -O %-6v: %8d gate equivalents\n", level, area)
		if level == spatial.OptFull {
			fmt.Println("\nper-function circuit estimate:")
			fmt.Print(spatial.FormatHardware(spatial.EstimateHardware(cp)))
			res, prof, err := cp.RunProfiled(w.Entry, nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nexecution: checksum=%d cycles=%d\n", res.Value, res.Stats.Cycles)
			fmt.Print(prof.Format(8))
		}
	}
}
