// Hwreport demonstrates the hardware-oriented side of spatial
// computation: it compiles a benchmark kernel, estimates the synthesized
// circuit's resources (the ASPLOS'04 area evaluation), and profiles which
// operators are hottest during execution.
package main

import (
	"fmt"
	"log"

	"spatial/internal/build"
	"spatial/internal/dataflow"
	"spatial/internal/hw"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

func main() {
	w := workloads.ByName("mesa")
	prog, err := w.Parse()
	if err != nil {
		log.Fatal(err)
	}
	for _, level := range []opt.Level{opt.None, opt.Full} {
		p, err := build.Compile(prog)
		if err != nil {
			log.Fatal(err)
		}
		if err := opt.OptimizeAt(p, level); err != nil {
			log.Fatal(err)
		}
		var area int64
		for _, r := range hw.EstimateProgram(p) {
			area += r.Area
		}
		fmt.Printf("mesa at -O %-6v: %8d gate equivalents\n", level, area)
		if level == opt.Full {
			fmt.Println("\nper-function circuit estimate:")
			fmt.Print(hw.Format(hw.EstimateProgram(p)))
			res, prof, err := dataflow.RunProfiled(p, w.Entry, nil, dataflow.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nexecution: checksum=%d cycles=%d\n", res.Value, res.Stats.Cycles)
			fmt.Print(prof.Format(8))
		}
	}
}
