// Tracing demonstrates the observability layer: it runs the Section 2
// memory kernel traced at two optimization levels, extracts each run's
// dynamic critical path, and shows the memory-optimization speedup as
// token edges leaving the path. It also writes Chrome trace-event files
// viewable in about://tracing or https://ui.perfetto.dev.
package main

import (
	"fmt"
	"log"
	"os"

	"spatial"
)

const example = `
unsigned a[128];
unsigned w[128];

int bench(void) {
  int i;
  int s = 0;
  for (i = 0; i < 128; i++) { a[i] = i * 7 + 1; w[i] = i & 15; }
  for (i = 0; i < 126; i++) {
    a[i] += w[i];
    a[i] <<= a[i + 1] & 7;
    s += a[i];
  }
  return s & 0x7fffffff;
}`

func main() {
	for _, lv := range []spatial.Level{spatial.OptNone, spatial.OptFull} {
		cp, err := spatial.Compile(example,
			spatial.WithLevel(lv),
			spatial.WithMemory(spatial.PaperMemory(2)))
		if err != nil {
			log.Fatal(err)
		}
		// Deep edges decouple the loop-control spine from the memory
		// chain, so token waits surface on the critical path instead of
		// hiding as backpressure.
		cfg := cp.Sim
		cfg.EdgeCap = 8
		res, tr, err := cp.RunTracedWith("bench", nil, cfg, spatial.DefaultTrace())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %v: %d in %d cycles ==\n", lv, res.Value, res.Stats.Cycles)
		crit := tr.CriticalPath()
		fmt.Print(crit.Format(3))

		out := fmt.Sprintf("trace-%v.json", lv)
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", out)
	}
}
