// Pipeline demonstrates the Figure 10 producer/consumer shape: a loop
// that reads one array and writes another. With per-class token circuits
// and the monotone-address optimization, the read side can run several
// iterations ahead of the write side, filling the computation pipeline —
// the paper's core argument for fine-grained memory synchronization.
package main

import (
	"fmt"
	"log"

	"spatial"
)

const example = `
int src[1024];
int dst[1024];

void fill(void) {
  int i;
  for (i = 0; i < 1024; i++) src[i] = (i * 2654435761u) >> 16;
}

void transform(int n) {
  int i;
  for (i = 0; i < n; i++) {
    dst[i] = (src[i] * 3 + 1) >> 1;
  }
}

int bench(void) {
  int i;
  int s = 0;
  fill();
  transform(1024);
  for (i = 0; i < 1024; i++) s += dst[i];
  return s;
}
`

func main() {
	fmt.Println("Producer/consumer loop (Figure 10) across memory systems:")
	fmt.Printf("%-8s %-20s %12s %9s\n", "level", "memory", "cycles", "speedup")
	mems := []struct {
		name string
		cfg  spatial.MemConfig
	}{
		{"perfect(2-port)", spatial.PerfectMemory()},
		{"realistic(1-port)", spatial.PaperMemory(1)},
		{"realistic(2-port)", spatial.PaperMemory(2)},
		{"realistic(4-port)", spatial.PaperMemory(4)},
	}
	for _, m := range mems {
		var base int64
		for _, lv := range []spatial.Level{spatial.OptNone, spatial.OptMedium} {
			cp, err := spatial.Compile(example,
				spatial.WithLevel(lv), spatial.WithMemory(m.cfg))
			if err != nil {
				log.Fatal(err)
			}
			res, err := cp.Run("bench", nil)
			if err != nil {
				log.Fatal(err)
			}
			if lv == spatial.OptNone {
				base = res.Stats.Cycles
			}
			fmt.Printf("%-8v %-20s %12d %8.2fx\n",
				lv, m.name, res.Stats.Cycles, float64(base)/float64(res.Stats.Cycles))
		}
	}
	fmt.Println("\nThe Medium level splits the src and dst token circuits so the")
	fmt.Println("producer reads slip ahead of the consumer writes (Figure 10c).")
}
