// Pipeline demonstrates the Figure 10 producer/consumer shape: a loop
// that reads one array and writes another. With per-class token circuits
// and the monotone-address optimization, the read side can run several
// iterations ahead of the write side, filling the computation pipeline —
// the paper's core argument for fine-grained memory synchronization.
package main

import (
	"fmt"
	"log"

	"spatial/internal/core"
	"spatial/internal/memsys"
	"spatial/internal/opt"
)

const example = `
int src[1024];
int dst[1024];

void fill(void) {
  int i;
  for (i = 0; i < 1024; i++) src[i] = (i * 2654435761u) >> 16;
}

void transform(int n) {
  int i;
  for (i = 0; i < n; i++) {
    dst[i] = (src[i] * 3 + 1) >> 1;
  }
}

int bench(void) {
  int i;
  int s = 0;
  fill();
  transform(1024);
  for (i = 0; i < 1024; i++) s += dst[i];
  return s;
}
`

func main() {
	fmt.Println("Producer/consumer loop (Figure 10) across memory systems:")
	fmt.Printf("%-8s %-20s %12s %9s\n", "level", "memory", "cycles", "speedup")
	mems := []struct {
		name string
		cfg  core.SimConfig
	}{
		{"perfect(2-port)", withMem(core.PerfectMemory())},
		{"realistic(1-port)", withMem(core.PaperMemory(1))},
		{"realistic(2-port)", withMem(core.PaperMemory(2))},
		{"realistic(4-port)", withMem(core.PaperMemory(4))},
	}
	for _, m := range mems {
		var base int64
		for _, lv := range []opt.Level{opt.None, opt.Medium} {
			cp, err := core.CompileSource(example, core.Options{Level: lv})
			if err != nil {
				log.Fatal(err)
			}
			res, err := cp.RunWith("bench", nil, m.cfg)
			if err != nil {
				log.Fatal(err)
			}
			if lv == opt.None {
				base = res.Stats.Cycles
			}
			fmt.Printf("%-8v %-20s %12d %8.2fx\n",
				lv, m.name, res.Stats.Cycles, float64(base)/float64(res.Stats.Cycles))
		}
	}
	fmt.Println("\nThe Medium level splits the src and dst token circuits so the")
	fmt.Println("producer reads slip ahead of the consumer writes (Figure 10c).")
}

func withMem(m memsys.Config) core.SimConfig {
	cfg := core.DefaultSim()
	cfg.Mem = m
	return cfg
}
