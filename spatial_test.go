package spatial_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"spatial"
)

// TestPublicAPI exercises the root package exactly as the README does.
func TestPublicAPI(t *testing.T) {
	cp, err := spatial.Compile(`
int squares[64];
int sumOfSquares(int n) {
  int i; int s = 0;
  for (i = 0; i < n; i++) squares[i] = i * i;
  for (i = 0; i < n; i++) s += squares[i];
  return s;
}`, spatial.WithLevel(spatial.OptFull))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cp.Run("sumOfSquares", []int64{64})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(0); i < 64; i++ {
		want += i * i
	}
	if res.Value != want {
		t.Errorf("sumOfSquares(64) = %d, want %d", res.Value, want)
	}
	seq, err := cp.RunSequential("sumOfSquares", []int64{64})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Value != want {
		t.Errorf("sequential = %d, want %d", seq.Value, want)
	}
	if res.Stats.Cycles >= seq.SeqCycles {
		t.Logf("note: spatial %d cycles vs sequential %d", res.Stats.Cycles, seq.SeqCycles)
	}
}

// TestFunctionalOptions exercises the redesigned option API and the
// wider re-exported surface: hardware estimates, profiled runs, graph
// dumps, and the workload registry.
func TestFunctionalOptions(t *testing.T) {
	w := spatial.WorkloadByName("mesa")
	if w == nil {
		t.Fatal("workload mesa missing")
	}
	cp, err := spatial.Compile(w.Source,
		spatial.WithLevel(spatial.OptFull),
		spatial.WithMemory(spatial.PaperMemory(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
	res, prof, err := cp.RunProfiled(w.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil || res.Stats.Cycles == 0 {
		t.Errorf("profiled run: cycles=%d prof=%v", res.Stats.Cycles, prof)
	}
	seq, err := cp.RunSequential(w.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != seq.Value {
		t.Errorf("spatial %d != sequential %d under PaperMemory(2)", res.Value, seq.Value)
	}
	var area int64
	for _, r := range spatial.EstimateHardware(cp) {
		area += r.Area
	}
	if area <= 0 {
		t.Errorf("hardware area = %d", area)
	}
	if len(spatial.Workloads()) == 0 {
		t.Error("empty workload registry")
	}
	passes := spatial.LevelPasses(spatial.OptFull)
	if !passes.LoadAfterStore {
		t.Error("LevelPasses(OptFull) misses LoadAfterStore")
	}
}

func TestPublicAPILevels(t *testing.T) {
	src := `int g; int f(int x) { g = x; g = g + 1; return g; }`
	for name, lv := range map[string]spatial.Level{
		"none":   spatial.OptNone,
		"basic":  spatial.OptBasic,
		"medium": spatial.OptMedium,
		"full":   spatial.OptFull,
	} {
		cp, err := spatial.Compile(src, spatial.WithLevel(lv))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := cp.Run("f", []int64{41})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Value != 42 {
			t.Errorf("%s: f(41) = %d, want 42", name, res.Value)
		}
	}
}

// TestPublicAPIRobustness exercises the hardened surface: typed error
// classes, fault injection, and diagnosed deadlocks — all from the root
// package, the way an embedding application would use them.
func TestPublicAPIRobustness(t *testing.T) {
	if _, err := spatial.Compile(`int f( {`); !errors.Is(err, spatial.ErrCompile) {
		t.Fatalf("syntax error not classed spatial.ErrCompile: %v", err)
	}

	cp, err := spatial.Compile(`
int a[16];
int f(void) {
  int i; int s = 0;
  for (i = 0; i < 16; i++) a[i] = i;
  for (i = 0; i < 16; i++) s += a[i];
  return s;
}`)
	if err != nil {
		t.Fatal(err)
	}

	// Jitter must be absorbed: identical value under injected delays.
	clean, err := cp.Run("f", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cp.RunFaulted(context.Background(), "f", nil, spatial.NewJitterInjector(7, 0.3, 5))
	if err != nil || res.Value != clean.Value {
		t.Fatalf("jitter not absorbed: %v, %v (want %d)", res, err, clean.Value)
	}

	// A dropped memory-dependence token must end in a diagnosed stall.
	inj := spatial.NewInjector(spatial.FaultPlan{Faults: []spatial.Fault{
		{Op: spatial.FaultDrop, Node: -1, Edge: -1, Token: true, Nth: 1},
	}})
	_, err = cp.RunFaulted(context.Background(), "f", nil, inj)
	if err == nil {
		t.Fatal("dropped token absorbed silently")
	}
	if !errors.Is(err, spatial.ErrSim) {
		t.Fatalf("fault not classed spatial.ErrSim: %v", err)
	}
	var de *spatial.DeadlockError
	var le *spatial.LivelockError
	switch {
	case errors.As(err, &de):
		if de.Report == nil || len(de.Report.Blocked) == 0 || de.Report.Render() == "" {
			t.Fatalf("deadlock without a usable report: %v", err)
		}
	case errors.As(err, &le):
		if le.Report == nil {
			t.Fatalf("livelock without a report: %v", err)
		}
	default:
		t.Fatalf("want a typed deadlock/livelock, got %v", err)
	}
}

func TestPublicAPITracing(t *testing.T) {
	src := `
int v[16];
int f(int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) v[i] = i + 1;
  for (i = 0; i < n; i++) s += v[i];
  return s;
}`
	cp, err := spatial.Compile(src,
		spatial.WithLevel(spatial.OptFull),
		spatial.WithTrace(spatial.DefaultTrace()))
	if err != nil {
		t.Fatal(err)
	}
	res, tr, err := cp.RunTraced("f", []int64{16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 136 {
		t.Errorf("f(16) = %d, want 136", res.Value)
	}
	crit := tr.CriticalPath()
	if crit == nil {
		t.Fatal("no critical path")
	}
	if crit.Length <= 0 || crit.Length > res.Stats.Cycles {
		t.Errorf("critical path %d outside (0, %d]", crit.Length, res.Stats.Cycles)
	}
	var buf strings.Builder
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(buf.String())) {
		t.Error("Chrome export is not valid JSON")
	}
}
