package spatial_test

import (
	"context"
	"testing"

	"spatial"
	"spatial/api"
)

// TestPublicEngine exercises the batch service through the root facade:
// an engine, a cache-hitting request mix, the one-shot helper, and its
// optional configuration.
func TestPublicEngine(t *testing.T) {
	e, err := spatial.NewEngine(spatial.EngineConfig{Workers: 2, CacheEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const src = `
int f(int n) {
  int i; int s = 0;
  for (i = 0; i < n; i++) s += i;
  return s;
}`
	req := spatial.BatchRequest{
		Program: spatial.Program{Source: src, Level: api.LevelFull},
		Entry:   "f",
		Args:    []int64{10},
	}
	first, err := e.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Value != 45 {
		t.Fatalf("f(10) = %d, want 45", first.Value)
	}
	if first.CacheHit {
		t.Error("first request reported a cache hit")
	}

	out := e.DoBatch(context.Background(), []spatial.BatchRequest{req, req, req})
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("batch item %d: %v", i, r.Err)
		}
		if r.Resp.Value != first.Value || r.Resp.Stats.Cycles != first.Stats.Cycles {
			t.Fatalf("batch item %d diverged from the first run", i)
		}
		if !r.Resp.CacheHit {
			t.Errorf("batch item %d missed the cache", i)
		}
	}
	if s := e.Stats(); s.CacheMisses != 1 || s.Completed != 4 {
		t.Fatalf("stats = %+v, want 1 miss / 4 completed", s)
	}

	if _, err := spatial.Simulate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// The optional config variant: a single worker still serves the
	// request (a fresh engine per call, so no cache carry-over).
	if _, err := spatial.Simulate(context.Background(), req, spatial.EngineConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
}
