// Command cashd serves CASH compilation and Pegasus simulation over
// HTTP/JSON. See package spatial/internal/cashd for the route table and
// README.md for a quickstart.
//
// Usage:
//
//	cashd [-addr :8080] [-addrfile path] [-cache-dir dir]
//	      [-workers N] [-queue N] [-cache-entries N]
//	      [-peers url,url,...] [-self url]
//
// -addrfile writes the actual listen address (useful with -addr :0 for
// tests and CI, which need a free port without racing for one). With
// -peers, every daemon in the shard set must be started with the same
// -peers list and its own -self; requests for programs owned by another
// peer are answered with 307 redirects to it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spatial/internal/cashd"
	"spatial/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addrfile", "", "write the actual listen address to this file after binding")
	cacheDir := flag.String("cache-dir", "", "persist the compile cache here (warm restarts)")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	cacheEntries := flag.Int("cache-entries", 0, "compile cache bound in programs (0 = 64)")
	peers := flag.String("peers", "", "comma-separated shard base URLs (including this daemon's)")
	self := flag.String("self", "", "this daemon's base URL as it appears in -peers")
	maxTraces := flag.Int("max-traces", 0, "recorded traces held for download (0 = 32)")
	flag.Parse()

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	srv, err := cashd.New(cashd.Config{
		Engine: serve.Config{
			Workers:      *workers,
			QueueDepth:   *queue,
			CacheEntries: *cacheEntries,
			CacheDir:     *cacheDir,
		},
		Self:      *self,
		Peers:     peerList,
		MaxTraces: *maxTraces,
	})
	if err != nil {
		log.Fatalf("cashd: %v", err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cashd: listen %s: %v", *addr, err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatalf("cashd: write -addrfile: %v", err)
		}
	}
	log.Printf("cashd: listening on %s (cache %s)", ln.Addr(), orDefault(*cacheDir, "in-memory only"))

	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("cashd: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("cashd: shutdown: %v", err)
		}
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("cashd: serve: %v", err)
		}
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return fmt.Sprintf("persisted to %s", s)
}
