// Command cashfuzz is the differential fuzzing driver: it generates
// random cMinor programs, runs each on the dataflow simulator at every
// optimization level — clean and, with -faults, under a battery of
// injected faults — and checks every result against the sequential
// interpreter oracle.
//
// Usage:
//
//	cashfuzz [-n 200] [-seed 1] [-faults] [-maxcycles n]
//	         [-out testdata/crashers] [-v]
//	cashfuzz -replay crasher_seed7.json
//
// On a failure it greedily shrinks the generator configuration to a
// minimal reproducer and writes the source plus a JSON replay record
// (config, seed, fault flag, reason) into -out, then exits 1. A clean
// sweep prints a summary and exits 0.
package main

import (
	"flag"
	"fmt"
	"os"

	"spatial/internal/difftest"
	"spatial/internal/progen"
)

func main() {
	n := flag.Int("n", 200, "number of programs to generate")
	seed := flag.Int64("seed", 1, "first generator seed (programs use seed..seed+n-1)")
	faults := flag.Bool("faults", false, "also replay each program under the injected-fault battery")
	maxCycles := flag.Int64("maxcycles", 0, "cycle budget per run (0 = default)")
	out := flag.String("out", "testdata/crashers", "directory for shrunk reproducers")
	replay := flag.String("replay", "", "replay a crasher JSON instead of fuzzing")
	verbose := flag.Bool("v", false, "print each seed as it is checked")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: cashfuzz [flags]")
		flag.Usage()
		os.Exit(2)
	}

	if *replay != "" {
		os.Exit(replayCrasher(*replay, *maxCycles))
	}

	var absorbed, detected int
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		cfg := progen.DefaultConfig(s)
		if *verbose {
			fmt.Printf("seed %d...\n", s)
		}
		reason := checkOne(cfg, *faults, *maxCycles, &absorbed, &detected)
		if reason == "" {
			continue
		}
		fmt.Fprintf(os.Stderr, "FAIL seed %d: %s\n", s, reason)
		min := difftest.Shrink(cfg, func(c progen.Config) bool {
			return difftest.Failing(c, *faults, *maxCycles)
		})
		path, err := difftest.WriteCrasher(*out, difftest.Crasher{
			Config: min, Seed: s, Faults: *faults, Reason: reason,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cashfuzz: writing reproducer: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "reproducer written to %s (shrunk to %+v)\n", path, min)
		}
		os.Exit(1)
	}
	fmt.Printf("cashfuzz: %d programs x %d levels clean", *n, len(difftest.Levels))
	if *faults {
		fmt.Printf("; fault battery: %d absorbed, %d detected", absorbed, detected)
	}
	fmt.Println()
}

// checkOne runs the differential checks for one config and returns a
// failure reason, or "" on success.
func checkOne(cfg progen.Config, faults bool, maxCycles int64, absorbed, detected *int) string {
	src := progen.Generate(cfg)
	if err := difftest.Check(src, maxCycles); err != nil {
		return err.Error()
	}
	if faults {
		rep, err := difftest.CheckFaults(src, cfg.Seed, maxCycles)
		*absorbed += rep.Absorbed
		*detected += rep.Detected
		if err != nil {
			return err.Error()
		}
	}
	return ""
}

// replayCrasher re-runs a written reproducer and reports whether it still
// fails.
func replayCrasher(path string, maxCycles int64) int {
	c, err := difftest.ReadCrasher(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cashfuzz: %v\n", err)
		return 2
	}
	fmt.Printf("replaying %s: config %+v\n", path, c.Config)
	if c.Reason != "" {
		fmt.Printf("original failure: %s\n", c.Reason)
	}
	var absorbed, detected int
	if reason := checkOne(c.Config, c.Faults, maxCycles, &absorbed, &detected); reason != "" {
		fmt.Fprintf(os.Stderr, "still failing: %s\n", reason)
		return 1
	}
	fmt.Println("no longer failing")
	return 0
}
