// Command cash is the compiler driver: it compiles a cMinor source file
// to Pegasus dataflow graphs and prints them (text or Graphviz), along
// with static statistics.
//
// Usage:
//
//	cash [-O none|basic|medium|full] [-dot] [-func name] [-stats] file.c
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"spatial/internal/core"
	"spatial/internal/hw"
	"spatial/internal/opt"
)

func main() {
	level := flag.String("O", "full", "optimization level: none, basic, medium, full")
	dot := flag.Bool("dot", false, "emit Graphviz instead of text")
	fn := flag.String("func", "", "print only this function")
	stats := flag.Bool("stats", false, "print static statistics only")
	area := flag.Bool("area", false, "print the hardware cost estimate")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cash [flags] file.c")
		flag.Usage()
		os.Exit(2)
	}
	lv, err := parseLevel(*level)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cp, err := core.CompileSource(string(src), core.WithLevel(lv))
	if err != nil {
		fatal(err)
	}
	if *area {
		fmt.Print(hw.Format(hw.EstimateProgram(cp.Program)))
		return
	}
	if *stats {
		loads, stores := cp.StaticMemOps()
		nodes := 0
		for _, g := range cp.Program.Funcs {
			nodes += g.NumLive()
		}
		fmt.Printf("functions: %d\nnodes: %d\nloads: %d\nstores: %d\n",
			len(cp.Program.Funcs), nodes, loads, stores)
		return
	}
	names := []string{}
	for name := range cp.Program.Funcs {
		if *fn == "" || *fn == name {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no function %q", *fn))
	}
	sort.Strings(names)
	for _, name := range names {
		var out string
		var err error
		if *dot {
			out, err = cp.Dot(name)
		} else {
			out, err = cp.Dump(name)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	}
}

func parseLevel(s string) (opt.Level, error) {
	switch s {
	case "none":
		return opt.None, nil
	case "basic":
		return opt.Basic, nil
	case "medium":
		return opt.Medium, nil
	case "full":
		return opt.Full, nil
	}
	return 0, fmt.Errorf("unknown optimization level %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cash:", err)
	os.Exit(1)
}
