// Command experiments regenerates the paper's tables and figures from
// the workload suite. Each experiment prints the corresponding table; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	experiments [-exp table1|table2|fig18|fig19|ablation|spatial|section2|all]
//	            [-bench name[,name...]] [-quick]
//	experiments -exp bench [-bench name[,name...]] [-benchtime 200ms]
//	            [-benchout BENCH.json] [-allocbudget 0.01]
//	            [-partitions 1,2,4|none] [-partallocbudget 0.05]
//	experiments -exp serve [-bench name[,name...]] [-benchtime 200ms]
//	experiments -exp load [-url http://host:port] [-rates 25,50,100,200,400]
//	            [-loaddur 2s] [-short] [-benchout BENCH.json]
//	experiments -exp chaos [-seed 1] [-short] [-benchout BENCH.json]
//
// -exp load drives a cashd daemon with an open-loop generator and
// records the offered load vs latency/shed curve (EXPERIMENTS.md
// documents the protocol). With no -url it starts an in-process daemon
// on loopback. -short is the CI smoke variant: one modest rate for ten
// seconds, failing on any non-2xx response or any shed request.
// -benchout merges the curve into the existing BENCH.json report.
//
// -exp chaos drives an in-process multi-peer cashd cluster through the
// deterministic fault schedules of internal/netchaos (peer kill,
// connection resets, corrupted and truncated responses, flaky 5xx,
// delays, a black hole) and fails unless every request either succeeds
// bit-identically to the fault-free reference or fails with a typed
// error — no hangs, no silent wrong answers. -short is the CI smoke
// variant (fewer requests, the three sharpest schedules). -benchout
// merges the availability/latency-under-faults rows into BENCH.json.
//
// -exp serve measures the batch simulation service: the worker scaling
// curve (runs/sec and per-stream ns/event at 1/2/4/8 workers, with
// per-stream determinism verified against the serial run) and the
// compile cache (hit rate and throughput for a request mix that repeats
// each program many times).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"spatial/api"
	"spatial/internal/cashd"
	"spatial/internal/core"
	"spatial/internal/harness"
	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/serve"
	"spatial/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig18, fig19, ablation, spatial, irsize, area, section2, bench, serve, load, chaos, all")
	bench := flag.String("bench", "", "restrict to a comma-separated benchmark list")
	quick := flag.Bool("quick", false, "use a reduced sweep for fig19")
	benchTime := flag.Duration("benchtime", 200*time.Millisecond, "minimum timed duration per (workload, level) for -exp bench")
	benchOut := flag.String("benchout", "", "write the -exp bench report as JSON to this file")
	allocBudget := flag.Float64("allocbudget", -1, "fail -exp bench if any allocs/event exceeds this (negative disables)")
	partAllocBudget := flag.Float64("partallocbudget", -1, "fail -exp bench if any partitioned row's allocs/event exceeds this (negative disables)")
	partitions := flag.String("partitions", "", "-exp bench: comma-separated domain counts for the partitioned rows (default 1,2,4; \"none\" skips)")
	backend := flag.String("backend", "both", "-exp bench: engines to measure: both, interp, compiled")
	loadURL := flag.String("url", "", "-exp load: target daemon base URL (empty starts one in-process)")
	loadRates := flag.String("rates", "", "-exp load: comma-separated offered rates in req/s")
	loadDur := flag.Duration("loaddur", 2*time.Second, "-exp load: duration per offered rate")
	short := flag.Bool("short", false, "-exp load/chaos: CI smoke variant")
	seed := flag.Int64("seed", 1, "-exp chaos: jitter seed")
	flag.Parse()

	ws := workloads.All()
	var benchNames []string
	if *bench != "" {
		for _, name := range strings.Split(*bench, ",") {
			if workloads.ByName(name) == nil {
				fatal(fmt.Errorf("unknown benchmark %q", name))
			}
			benchNames = append(benchNames, name)
		}
		ws = nil
		for _, name := range benchNames {
			ws = append(ws, workloads.ByName(name))
		}
	}

	// The throughput baseline is explicitly requested, never part of
	// "all": it is a perf measurement, not a paper table, and it wants a
	// quiet machine.
	if *exp == "bench" {
		backends, err := benchBackends(*backend)
		if err != nil {
			fatal(err)
		}
		parts, err := benchPartitions(*partitions)
		if err != nil {
			fatal(err)
		}
		if err := runBench(benchNames, *benchTime, *benchOut, *allocBudget, *partAllocBudget, backends, parts); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "serve" {
		if err := runServe(benchNames, *benchTime); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "load" {
		if err := runLoad(*loadURL, *loadRates, *loadDur, *short, *benchOut); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "chaos" {
		if err := runChaos(*seed, *short, *benchOut); err != nil {
			fatal(err)
		}
		return
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println()
	}

	run("section2", func() error { return section2() })
	run("table1", func() error {
		rows, err := harness.Table1("")
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatTable1(rows))
		return nil
	})
	run("table2", func() error {
		rows, err := harness.Table2(ws)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatTable2(rows))
		return nil
	})
	run("fig18", func() error {
		rows, err := harness.Fig18(ws)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatFig18(rows))
		return nil
	})
	run("fig19", func() error {
		levels := []opt.Level{opt.None, opt.Medium, opt.Full}
		mems := harness.MemSystems()
		if *quick {
			mems = []memsys.Config{memsys.PerfectConfig(), memsys.PaperConfig(2)}
		}
		rows, err := harness.Fig19(ws, levels, mems)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatFig19(rows))
		return nil
	})
	run("ablation", func() error {
		rows, err := harness.Ablation(ws)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatAblation(rows))
		n, err := harness.DecouplingApplicability(workloads.All())
		if err != nil {
			return err
		}
		fmt.Printf("loop decoupling applicable: %d loops across the suite\n", n)
		return nil
	})
	run("spatial", func() error {
		rows, err := harness.SpatialVsSeq(ws, opt.Full)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatSpatial(rows, opt.Full))
		return nil
	})
	run("irsize", func() error {
		rows, err := harness.IRSize(ws)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatIRSize(rows))
		return nil
	})
	run("area", func() error {
		rows, err := harness.Area(ws)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatArea(rows))
		return nil
	})
}

// section2 reproduces the paper's opening comparison: the number of
// memory operations left in the motivating example by a naive compilation
// versus CASH's optimizations.
func section2() error {
	const src = `
void f(unsigned *p, unsigned a[], int i) {
  if (p) a[i] += *p;
  else a[i] = 1;
  a[i] <<= a[i+1];
}`
	fmt.Println("Section 2: memory operations in the motivating example")
	fmt.Println("  void f(unsigned*p, unsigned a[], int i)")
	for _, lv := range []opt.Level{opt.None, opt.Full} {
		cp, err := core.CompileSource(src, core.WithLevel(lv))
		if err != nil {
			return err
		}
		loads, stores := cp.StaticMemOps()
		label := "naive (like the 5 compilers that keep the temp)"
		if lv == opt.Full {
			label = "CASH (removes two stores and one load)"
		}
		fmt.Printf("  %-48s loads=%d stores=%d\n", label, loads, stores)
	}
	return nil
}

// benchBackends maps the -backend flag onto the harness backend names.
func benchBackends(flagVal string) ([]string, error) {
	switch flagVal {
	case "", "both":
		return nil, nil // harness default: interp then codegen
	case "interp":
		return []string{harness.BackendInterp}, nil
	case "compiled":
		return []string{harness.BackendCodegen}, nil
	default:
		return nil, fmt.Errorf("invalid -backend %q (want both, interp, or compiled)", flagVal)
	}
}

// benchPartitions maps the -partitions flag onto a domain-count sweep.
func benchPartitions(flagVal string) ([]int, error) {
	switch flagVal {
	case "":
		return harness.BenchPartitions, nil
	case "none":
		return nil, nil
	}
	var parts []int
	for _, field := range strings.Split(flagVal, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -partitions %q (want a comma-separated list of counts ≥ 1, or \"none\")", flagVal)
		}
		parts = append(parts, n)
	}
	if parts[0] != 1 {
		// The first count anchors Speedup; without a sequential row the
		// ratios would be against an arbitrary domain count.
		parts = append([]int{1}, parts...)
	}
	return parts, nil
}

// runBench measures simulator throughput over the baseline workload set
// at every optimization level on the selected backends (default both,
// paired so each codegen row carries its same-run speedup), plus the
// batch-parallel and intra-run partitioned scaling curves, prints the
// table plus benchstat-comparable lines, optionally writes BENCH.json,
// and enforces the allocs/event budgets and — on multi-core machines
// only — the scaling assertions (the CI smoke gate). Rows measured with
// GOMAXPROCS=1 are flagged degenerate and exempt from the speedup
// checks: time-slicing one core cannot scale.
func runBench(names []string, benchTime time.Duration, out string, allocBudget, partAllocBudget float64, backends []string, parts []int) error {
	if len(names) == 0 {
		names = harness.BenchSet
	}
	rep, err := harness.Bench(names, benchTime, backends)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	rep.Parallel, err = harness.BenchParallel(names, harness.BenchWorkers, benchTime)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if len(parts) > 0 {
		rep.Partitioned, err = harness.BenchPartitioned(names, parts, benchTime)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
	}
	fmt.Print(harness.FormatBench(rep))
	fmt.Println()
	fmt.Print(rep.Benchstat())
	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", out)
	}
	if allocBudget >= 0 {
		if worst := rep.MaxAllocsPerEvent(); worst > allocBudget {
			return fmt.Errorf("bench: allocs/event %.4f exceeds budget %.4f", worst, allocBudget)
		}
		fmt.Printf("allocs/event within budget %.4f (worst %.4f)\n", allocBudget, rep.MaxAllocsPerEvent())
	}
	if partAllocBudget >= 0 {
		worst := 0.0
		for _, row := range rep.Partitioned {
			if row.AllocsPerEv > worst {
				worst = row.AllocsPerEv
			}
		}
		if worst > partAllocBudget {
			return fmt.Errorf("bench: partitioned allocs/event %.4f exceeds budget %.4f", worst, partAllocBudget)
		}
		fmt.Printf("partitioned allocs/event within budget %.4f (worst %.4f)\n", partAllocBudget, worst)
	}
	return benchAssertScaling(rep)
}

// benchAssertScaling is the multi-core smoke gate: each workload's
// batch-parallel curve and intra-run partitioned curve must clear 1.0×
// somewhere — best point across the sweep, so one noisy measurement
// cannot fail CI. Degenerate rows (measured with GOMAXPROCS=1) are
// reported but never asserted.
func benchAssertScaling(rep *harness.BenchReport) error {
	bestPar := map[string]float64{}
	for _, row := range rep.Parallel {
		if row.Workers > 1 && !row.Degenerate && row.Speedup > bestPar[row.Workload] {
			bestPar[row.Workload] = row.Speedup
		}
	}
	for name, best := range bestPar {
		if best <= 1.0 {
			return fmt.Errorf("bench: %s parallel speedup peaked at %.2fx on a multi-core machine", name, best)
		}
	}
	// Each backend's partition curve gates independently: the interpreter
	// and compiled VM pay different barrier costs, and a regression in
	// one must not hide behind the other's best point.
	bestPart := map[string]float64{}
	for _, row := range rep.Partitioned {
		key := row.Workload
		if row.Backend != "" {
			key = row.Workload + "/" + row.Backend
		}
		if row.Partitions > 1 && !row.Degenerate && row.Speedup > bestPart[key] {
			bestPart[key] = row.Speedup
		}
	}
	for name, best := range bestPart {
		if best <= 1.0 {
			return fmt.Errorf("bench: %s partitioned speedup peaked at %.2fx on a multi-core machine", name, best)
		}
	}
	if n := len(bestPar) + len(bestPart); n > 0 {
		fmt.Printf("scaling gate: %d workload curves cleared 1.0x\n", n)
	} else if len(rep.Parallel)+len(rep.Partitioned) > 0 {
		fmt.Println("scaling gate: skipped (GOMAXPROCS=1, rows flagged degenerate)")
	}
	return nil
}

// runServe measures the batch simulation service layer end to end:
// first the worker scaling curve (shared compiled structures, every
// stream's result verified against the serial reference), then the
// compile cache's effect on a request mix that repeats each program.
func runServe(names []string, benchTime time.Duration) error {
	if len(names) == 0 {
		names = harness.BenchSet
	}
	rows, err := harness.BenchParallel(names, harness.BenchWorkers, benchTime)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Print(harness.FormatParallel(runtime.NumCPU(), rows))

	// Cache experiment: each program appears `repeats` times in the mix;
	// a perfect cache compiles each program once and serves the rest.
	const repeats = 8
	eng, err := serve.New(serve.Config{})
	if err != nil {
		return err
	}
	defer eng.Close()
	var reqs []serve.Request
	for _, name := range names {
		w := workloads.ByName(name)
		for i := 0; i < repeats; i++ {
			reqs = append(reqs, serve.Request{
				Program: api.Program{Source: w.Source, Level: api.LevelFull},
				Entry:   w.Entry,
			})
		}
	}
	start := time.Now()
	out := eng.DoBatch(context.Background(), reqs)
	elapsed := time.Since(start)
	for i, r := range out {
		if r.Err != nil {
			return fmt.Errorf("serve: request %d (%s): %w", i, reqs[i].Entry, r.Err)
		}
	}
	// Determinism across the batch: all repeats of one program must agree.
	for i := 0; i < len(out); i += repeats {
		ref := out[i].Resp
		for j := i + 1; j < i+repeats; j++ {
			got := out[j].Resp
			if got.Value != ref.Value || got.Stats.Cycles != ref.Stats.Cycles || got.Stats.Events != ref.Stats.Events {
				return fmt.Errorf("serve: %s repeat %d diverged: (%d,%d,%d) vs (%d,%d,%d)",
					names[i/repeats], j-i, got.Value, got.Stats.Cycles, got.Stats.Events,
					ref.Value, ref.Stats.Cycles, ref.Stats.Events)
			}
		}
	}
	s := eng.Stats()
	fmt.Printf("\nCompile cache (%d requests = %d programs x %d repeats, %d workers)\n",
		len(reqs), len(names), repeats, runtime.GOMAXPROCS(0))
	fmt.Printf("  completed %d, failed %d, cache hits %d, shared flights %d, misses %d, hit rate %.1f%%\n",
		s.Completed, s.Failed, s.CacheHits, s.CacheShared, s.CacheMisses, 100*s.HitRate())
	fmt.Printf("  batch time %s (%.2f runs/sec), all repeats bit-identical\n",
		elapsed.Round(time.Millisecond), float64(len(reqs))/elapsed.Seconds())
	return nil
}

// loadMix is the request set the load generator cycles through: small
// distinct programs, so the curve measures service overhead and queueing
// (after four compile misses everything is a cache hit), not compiler
// throughput.
func loadMix() []api.RunRequest {
	var mix []api.RunRequest
	for _, n := range []int{100, 200, 400, 800} {
		src := fmt.Sprintf(`
int f(void) {
  int i; int s = 0;
  for (i = 0; i < %d; i++) s += i;
  return s;
}`, n)
		mix = append(mix, api.RunRequest{
			Program: api.Program{Source: src, Level: api.LevelFull},
			Entry:   "f",
		})
	}
	return mix
}

// runLoad drives cashd with the open-loop generator and prints (and
// optionally records) the offered-load curve. An empty url starts an
// in-process daemon on loopback — the loopback stack costs the same for
// every rate, so the curve's shape is still the service's.
func runLoad(url, ratesCSV string, dur time.Duration, short bool, out string) error {
	rates := []int{25, 50, 100, 200, 400}
	if short {
		// CI smoke: one modest rate, long enough to catch flakiness, with
		// a hard zero-tolerance gate below.
		rates = []int{20}
		dur = 10 * time.Second
	}
	if ratesCSV != "" {
		rates = nil
		for _, s := range strings.Split(ratesCSV, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("load: bad rate %q: %w", s, err)
			}
			rates = append(rates, r)
		}
	}

	if url == "" {
		srv, err := cashd.New(cashd.Config{})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		url = "http://" + ln.Addr().String()
		fmt.Printf("started in-process cashd at %s\n", url)
	}

	rows, err := harness.LoadCurve(url, rates, dur, loadMix())
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatLoad(rows))

	if out != "" {
		rep := &harness.BenchReport{}
		if data, err := os.ReadFile(out); err == nil {
			if err := json.Unmarshal(data, rep); err != nil {
				return fmt.Errorf("load: existing %s: %w", out, err)
			}
		}
		if rep.GoVersion == "" {
			rep.GoVersion = runtime.Version()
			rep.CPUs = runtime.NumCPU()
		}
		rep.Load = rows
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("merged load curve into %s\n", out)
	}

	if short {
		for _, r := range rows {
			if r.Errors > 0 || r.Shed > 0 {
				return fmt.Errorf("load: smoke gate failed at %d req/s: %d errors, %d shed (want 0/0)",
					r.RateRPS, r.Errors, r.Shed)
			}
			if r.OK == 0 {
				return fmt.Errorf("load: smoke gate saw no successful requests at %d req/s", r.RateRPS)
			}
		}
		fmt.Println("smoke gate passed: all responses 2xx, nothing shed")
	}
	return nil
}

// runChaos runs the deterministic chaos battery against an in-process
// cluster and enforces the resilience gate: every request under faults
// either succeeds bit-identically or fails typed; hangs, wrong answers,
// and unclassified errors each fail the run. -short trims the battery to
// the three sharpest schedules for CI.
func runChaos(seed int64, short bool, out string) error {
	opts := harness.ChaosOptions{Seed: seed}
	if short {
		opts.Requests = 45
		opts.Schedules = []string{"peer-kill", "conn-reset", "corrupt"}
	}
	rows, err := harness.ChaosBattery(opts)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatChaos(opts, rows))

	if out != "" {
		rep := &harness.BenchReport{}
		if data, err := os.ReadFile(out); err == nil {
			if err := json.Unmarshal(data, rep); err != nil {
				return fmt.Errorf("chaos: existing %s: %w", out, err)
			}
		}
		if rep.GoVersion == "" {
			rep.GoVersion = runtime.Version()
			rep.CPUs = runtime.NumCPU()
		}
		rep.Chaos = rows
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("merged chaos rows into %s\n", out)
	}

	if err := harness.ChaosGate(rows); err != nil {
		return err
	}
	fmt.Println("chaos gate passed: no hangs, no wrong answers, no unclassified errors")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
