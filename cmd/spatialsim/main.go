// Command spatialsim compiles a cMinor program and executes a function on
// the self-timed dataflow simulator, printing the result and execution
// statistics. It can also run the sequential interpreter baseline for
// comparison.
//
// Usage:
//
//	spatialsim [-O level] [-entry name] [-mem perfect|real1|real2|real4]
//	           [-seq] [-edgecap n] [-profile] [-topk n] [-trace out.json]
//	           file.c [args...]
//
// -trace records the full event stream, writes a Chrome trace-event file
// (loadable in about://tracing or Perfetto), and prints the trace summary
// and dynamic critical path.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/memsys"
	"spatial/internal/opt"
)

func main() {
	level := flag.String("O", "full", "optimization level: none, basic, medium, full")
	entry := flag.String("entry", "main", "entry function")
	mem := flag.String("mem", "perfect", "memory system: perfect, real1, real2, real4")
	seq := flag.Bool("seq", false, "also run the sequential baseline")
	edgeCap := flag.Int("edgecap", 1, "dataflow edge buffer depth")
	profile := flag.Bool("profile", false, "print per-operator firing profile")
	topK := flag.Int("topk", 10, "entries in profile and critical-path reports")
	traceOut := flag.String("trace", "", "trace the run and write Chrome trace JSON to this file")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: spatialsim [flags] file.c [args...]")
		flag.Usage()
		os.Exit(2)
	}
	lv, err := parseLevel(*level)
	if err != nil {
		fatal(err)
	}
	mcfg, err := parseMem(*mem)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad argument %q: %v", a, err))
		}
		args = append(args, v)
	}
	cp, err := core.CompileSource(string(src), core.Options{Level: lv})
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultSim()
	cfg.Mem = mcfg
	cfg.EdgeCap = *edgeCap
	var res *core.SimResult
	switch {
	case *traceOut != "":
		var tr *core.Trace
		res, tr, err = cp.RunTracedWith(*entry, args, cfg, core.DefaultTrace())
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		defer func() {
			fmt.Print(tr.Summary())
			if crit := tr.CriticalPath(); crit != nil {
				fmt.Print(crit.Format(*topK))
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}()
	case *profile:
		var prof *dataflow.Profile
		res, prof, err = dataflow.RunProfiled(cp.Program, *entry, args, cfg)
		if err != nil {
			fatal(err)
		}
		defer fmt.Print(prof.Format(*topK))
	default:
		res, err = cp.RunWith(*entry, args, cfg)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("result:    %d\n", res.Value)
	fmt.Printf("cycles:    %d\n", res.Stats.Cycles)
	fmt.Printf("ops fired: %d\n", res.Stats.OpsFired)
	fmt.Printf("loads:     %d (+%d squashed)\n", res.Stats.DynLoads, res.Stats.NullMem)
	fmt.Printf("stores:    %d\n", res.Stats.DynStores)
	fmt.Printf("calls:     %d\n", res.Stats.Calls)
	m := res.Stats.Mem
	fmt.Printf("memory:    L1 %d/%d hits, L2 %d hits, TLB misses %d\n",
		m.L1Hits, m.L1Hits+m.L1Misses, m.L2Hits, m.TLBMisses)
	if *seq {
		sres, err := cp.RunSequential(*entry, args)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sequential: result %d, cycles %d (spatial speedup %.2fx)\n",
			sres.Value, sres.SeqCycles, float64(sres.SeqCycles)/float64(res.Stats.Cycles))
		if sres.Value != res.Value {
			fatal(fmt.Errorf("MISMATCH: spatial %d vs sequential %d", res.Value, sres.Value))
		}
	}
}

func parseLevel(s string) (opt.Level, error) {
	switch s {
	case "none":
		return opt.None, nil
	case "basic":
		return opt.Basic, nil
	case "medium":
		return opt.Medium, nil
	case "full":
		return opt.Full, nil
	}
	return 0, fmt.Errorf("unknown optimization level %q", s)
}

func parseMem(s string) (memsys.Config, error) {
	switch s {
	case "perfect":
		return memsys.PerfectConfig(), nil
	case "real1":
		return memsys.PaperConfig(1), nil
	case "real2":
		return memsys.PaperConfig(2), nil
	case "real4":
		return memsys.PaperConfig(4), nil
	}
	return memsys.Config{}, fmt.Errorf("unknown memory system %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spatialsim:", err)
	os.Exit(1)
}
