// Command spatialsim compiles a cMinor program and executes a function on
// the self-timed dataflow simulator, printing the result and execution
// statistics. It can also run the sequential interpreter baseline for
// comparison, bound the run by a wall-clock timeout, and inject faults to
// probe the circuit's robustness.
//
// Usage:
//
//	spatialsim [-O level] [-entry name] [-mem perfect|real1|real2|real4]
//	           [-backend interp|compiled] [-partitions n] [-seq] [-edgecap n]
//	           [-profile] [-topk n] [-trace out.json]
//	           [-timeout d] [-jitter seed] [-drop n] [-droptok n] [-memfail n]
//	           [-parallel n] [-repeat m]
//	           file.c [args...]
//
// -backend selects the execution engine: the event-driven interpreter
// (the default) or the compiled flat-bytecode VM, which produces
// bit-identical results several times faster. -trace and -profile hook
// the interpreter's machinery and reject -backend compiled.
//
// -partitions n shards the event queue into n concurrent per-hyperblock
// domains synchronized by conservative time windows; the run stays
// bit-identical to the sequential engine (same result, cycles, events,
// diagnoses). Both backends honor the flag: the interpreter partitions
// its event heap, and the compiled VM runs per-domain calendar rings
// behind the same barrier protocol. -trace/-profile reject it (they are
// observed single-run interpreter modes).
//
// -repeat runs the program m times and -parallel spreads the repeats
// over n concurrent streams sharing one compilation; every repeat must
// reproduce the first run bit-identically (value, cycles, events) or
// the command fails. The aggregate throughput is printed after the
// usual statistics. These flags cannot be combined with -trace,
// -profile, -seq, or fault injection, which are single-run modes.
//
// -trace records the full event stream, writes a Chrome trace-event file
// (loadable in about://tracing or Perfetto), and prints the trace summary
// and dynamic critical path.
//
// Exit codes distinguish the failure class so scripts can triage without
// parsing messages:
//
//	0  success
//	1  other error (I/O, internal)
//	2  usage
//	3  compile error
//	4  deadlock (the stuck report is printed to stderr)
//	5  livelock (cycle budget exceeded)
//	6  detected fault (corrupted memory response)
//	7  wall-clock timeout
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/memsys"
	"spatial/internal/opt"
)

func main() {
	level := flag.String("O", "full", "optimization level: none, basic, medium, full")
	entry := flag.String("entry", "main", "entry function")
	mem := flag.String("mem", "perfect", "memory system: perfect, real1, real2, real4")
	backend := flag.String("backend", "interp", "execution engine: interp or compiled (bit-identical)")
	seq := flag.Bool("seq", false, "also run the sequential baseline")
	edgeCap := flag.Int("edgecap", 1, "dataflow edge buffer depth")
	profile := flag.Bool("profile", false, "print per-operator firing profile")
	topK := flag.Int("topk", 10, "entries in profile and critical-path reports")
	traceOut := flag.String("trace", "", "trace the run and write Chrome trace JSON to this file")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (0 = unbounded)")
	jitter := flag.Int64("jitter", 0, "inject seeded random edge/memory delays (must be absorbed)")
	drop := flag.Int("drop", 0, "drop the n-th value delivery (expect a diagnosed deadlock)")
	dropTok := flag.Int("droptok", 0, "drop the n-th token delivery (expect a diagnosed deadlock)")
	memFail := flag.Int("memfail", 0, "corrupt the n-th memory response (expect a detected fault)")
	parallel := flag.Int("parallel", 1, "concurrent simulation streams for -repeat")
	partitions := flag.Int("partitions", 0, "partition the event queue into n concurrent domains (bit-identical; 0 or 1 = sequential)")
	repeat := flag.Int("repeat", 1, "total number of runs (all must be bit-identical)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: spatialsim [flags] file.c [args...]")
		flag.Usage()
		os.Exit(2)
	}
	lv, err := parseLevel(*level)
	if err != nil {
		fatal(err)
	}
	mcfg, err := parseMem(*mem)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad argument %q: %v", a, err))
		}
		args = append(args, v)
	}
	inj, err := buildInjector(*jitter, *drop, *dropTok, *memFail)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialsim:", err)
		os.Exit(2)
	}
	be, err := parseBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialsim:", err)
		os.Exit(2)
	}
	if be == core.BackendCompiled && (*traceOut != "" || *profile) {
		fmt.Fprintln(os.Stderr, "spatialsim: -trace and -profile observe the interpreter and cannot be combined with -backend compiled")
		os.Exit(2)
	}
	cfg := core.DefaultSim()
	cfg.Mem = mcfg
	cfg.EdgeCap = *edgeCap
	if *partitions > 1 && (*traceOut != "" || *profile) {
		// Observed runs execute sequentially regardless; refuse rather
		// than silently ignoring the flag.
		fmt.Fprintln(os.Stderr, "spatialsim: -trace and -profile observe the sequential interpreter and cannot be combined with -partitions")
		os.Exit(2)
	}
	cp, err := core.CompileSource(string(src), core.WithLevel(lv),
		core.WithSim(cfg), core.WithDeadline(*timeout), core.WithBackend(be),
		core.WithPartitions(*partitions))
	if err != nil {
		fatal(err)
	}
	var res *core.SimResult
	switch {
	case *parallel > 1 || *repeat > 1:
		if *traceOut != "" || *profile || inj != nil || *seq {
			fmt.Fprintln(os.Stderr, "spatialsim: -parallel/-repeat cannot be combined with -trace, -profile, -seq, or fault injection")
			os.Exit(2)
		}
		if *parallel < 1 || *repeat < 1 {
			fmt.Fprintln(os.Stderr, "spatialsim: -parallel and -repeat must be >= 1")
			os.Exit(2)
		}
		res, err = runRepeated(cp, *entry, args, *parallel, *repeat)
		if err != nil {
			fatal(err)
		}
	case *traceOut != "":
		var tr *core.Trace
		res, tr, err = cp.RunTraced(*entry, args)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		defer func() {
			fmt.Print(tr.Summary())
			if crit := tr.CriticalPath(); crit != nil {
				fmt.Print(crit.Format(*topK))
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}()
	case *profile:
		var prof *core.Profile
		res, prof, err = cp.RunProfiled(*entry, args)
		if err != nil {
			fatal(err)
		}
		defer fmt.Print(prof.Format(*topK))
	case inj != nil:
		res, err = cp.RunFaulted(nil, *entry, args, inj)
		if err != nil {
			for _, t := range inj.Triggered() {
				fmt.Fprintln(os.Stderr, "injected:", t)
			}
			fatal(err)
		}
		fmt.Printf("faults absorbed: %d injected, result unchanged below\n", len(inj.Triggered()))
	default:
		res, err = cp.Run(*entry, args)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("result:    %d\n", res.Value)
	fmt.Printf("cycles:    %d\n", res.Stats.Cycles)
	fmt.Printf("events:    %d\n", res.Stats.Events)
	fmt.Printf("ops fired: %d\n", res.Stats.OpsFired)
	fmt.Printf("loads:     %d (+%d squashed)\n", res.Stats.DynLoads, res.Stats.NullMem)
	fmt.Printf("stores:    %d\n", res.Stats.DynStores)
	fmt.Printf("calls:     %d\n", res.Stats.Calls)
	m := res.Stats.Mem
	fmt.Printf("memory:    L1 %d/%d hits, L2 %d hits, TLB misses %d\n",
		m.L1Hits, m.L1Hits+m.L1Misses, m.L2Hits, m.TLBMisses)
	if *seq {
		sres, err := cp.RunSequential(*entry, args)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sequential: result %d, cycles %d (spatial speedup %.2fx)\n",
			sres.Value, sres.SeqCycles, float64(sres.SeqCycles)/float64(res.Stats.Cycles))
		if sres.Value != res.Value {
			fatal(fmt.Errorf("MISMATCH: spatial %d vs sequential %d", res.Value, sres.Value))
		}
	}
}

// runRepeated executes the compiled program `repeat` times across up to
// `parallel` concurrent streams sharing one compilation. The first run
// is the reference; every other run must reproduce its value, cycle
// count, and event count exactly, or the whole command fails — repeated
// execution doubles as a determinism check. Prints the aggregate
// throughput and returns the reference result.
func runRepeated(cp *core.Compiled, entry string, args []int64, parallel, repeat int) (*core.SimResult, error) {
	start := time.Now()
	ref, err := cp.Run(entry, args)
	if err != nil {
		return nil, err
	}
	remaining := repeat - 1
	if parallel > remaining {
		parallel = remaining
	}
	if parallel < 1 {
		parallel = 1
	}
	var next, bad atomic.Int64
	errc := make(chan error, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel && remaining > 0; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(remaining) || bad.Load() != 0 {
					return
				}
				res, err := cp.Run(entry, args)
				if err != nil {
					bad.Store(1)
					errc <- err
					return
				}
				if res.Value != ref.Value || res.Stats.Cycles != ref.Stats.Cycles || res.Stats.Events != ref.Stats.Events {
					bad.Store(1)
					errc <- fmt.Errorf("run %d diverged from the first: got (value %d, cycles %d, events %d), want (%d, %d, %d)",
						n+1, res.Value, res.Stats.Cycles, res.Stats.Events,
						ref.Value, ref.Stats.Cycles, ref.Stats.Events)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	fmt.Printf("parallel:  %d runs on %d streams in %s (%.2f runs/sec), all bit-identical\n",
		repeat, parallel, elapsed.Round(time.Millisecond), float64(repeat)/elapsed.Seconds())
	return ref, nil
}

// buildInjector assembles the fault injector the flags describe, or nil
// when no fault flag is set.
func buildInjector(jitter int64, drop, dropTok, memFail int) (*core.FaultInjector, error) {
	var plan core.FaultPlan
	if drop > 0 {
		plan.Faults = append(plan.Faults, core.Fault{Op: core.FaultDrop, Node: -1, Edge: -1, Nth: drop})
	}
	if dropTok > 0 {
		plan.Faults = append(plan.Faults, core.Fault{Op: core.FaultDrop, Node: -1, Edge: -1, Token: true, Nth: dropTok})
	}
	if memFail > 0 {
		plan.Faults = append(plan.Faults, core.Fault{Op: core.FaultMemFail, Node: -1, Edge: -1, Nth: memFail})
	}
	if jitter != 0 {
		if len(plan.Faults) > 0 {
			return nil, errors.New("-jitter cannot be combined with planned faults (-drop/-droptok/-memfail)")
		}
		return core.NewJitterInjector(jitter, 0.05, 8), nil
	}
	if len(plan.Faults) == 0 {
		return nil, nil
	}
	return core.NewInjector(plan), nil
}

func parseLevel(s string) (opt.Level, error) {
	switch s {
	case "none":
		return opt.None, nil
	case "basic":
		return opt.Basic, nil
	case "medium":
		return opt.Medium, nil
	case "full":
		return opt.Full, nil
	}
	return 0, fmt.Errorf("unknown optimization level %q", s)
}

func parseBackend(s string) (core.Backend, error) {
	switch s {
	case "interp":
		return core.BackendInterpreted, nil
	case "compiled":
		return core.BackendCompiled, nil
	}
	return 0, fmt.Errorf("unknown backend %q (want interp or compiled)", s)
}

func parseMem(s string) (memsys.Config, error) {
	switch s {
	case "perfect":
		return memsys.PerfectConfig(), nil
	case "real1":
		return memsys.PaperConfig(1), nil
	case "real2":
		return memsys.PaperConfig(2), nil
	case "real4":
		return memsys.PaperConfig(4), nil
	}
	return memsys.Config{}, fmt.Errorf("unknown memory system %q", s)
}

// fatal prints the error and exits with a code identifying its class.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spatialsim:", err)
	os.Exit(exitCode(err))
}

func exitCode(err error) int {
	var de *core.DeadlockError
	var le *core.LivelockError
	switch {
	case errors.As(err, &de):
		return 4
	case errors.As(err, &le):
		return 5
	case errors.Is(err, dataflow.ErrMemFault):
		return 6
	case errors.Is(err, dataflow.ErrCanceled):
		return 7
	case errors.Is(err, core.ErrCompile):
		return 3
	default:
		return 1
	}
}
