// Command cashtrace compiles a program once per optimization level, runs
// both builds on the traced dataflow simulator, and diffs their dynamic
// critical paths — making a speedup explain itself: which token edges
// left the path, and which node kinds absorb the remaining cycles.
//
// Usage:
//
//	cashtrace [-a O0] [-b O2] [-entry name] [-mem perfect|real1|real2|real4]
//	          [-topk n] [-dump prefix] [file.c [args...]]
//
// Levels accept both preset names (none, basic, medium, full) and the
// conventional spellings O0 (= none), O1 (= medium), and O2 (= full, the
// paper's memory-optimized configuration). Without a source file it runs
// a built-in Section 2-flavored memory kernel. With -dump PREFIX it
// writes PREFIX-<level>.json Chrome traces loadable in about://tracing
// or Perfetto.
//
// The default edge capacity is 8, not the simulator's 1: with one-place
// edges the loop-control spine is throttled by backpressure from the
// slowest consumer, so memory serialization never appears as a
// last-arriving input and the critical path degenerates to the control
// loop. Deeper edges decouple control from the memory chain and let the
// token waits show up where they belong.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"spatial/internal/core"
	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/trace"
)

// memoptDemo exercises the paper's Section 2 pattern in a loop: every
// iteration stores a temporary into a[i], reloads it, and rewrites it,
// so the unoptimized token network serializes three memory operations
// per element that the memory optimizations collapse.
const memoptDemo = `
unsigned a[128];
unsigned w[128];

int bench(void) {
  int i;
  int s = 0;
  for (i = 0; i < 128; i++) { a[i] = i * 7 + 1; w[i] = i & 15; }
  for (i = 0; i < 126; i++) {
    a[i] += w[i];
    a[i] <<= a[i + 1] & 7;
    s += a[i];
  }
  return s & 0x7fffffff;
}`

func main() {
	levelA := flag.String("a", "O0", "baseline optimization level")
	levelB := flag.String("b", "O2", "comparison optimization level")
	entry := flag.String("entry", "bench", "entry function")
	mem := flag.String("mem", "real2", "memory system: perfect, real1, real2, real4")
	edgeCap := flag.Int("edgecap", 8, "dataflow edge capacity (latch depth)")
	topK := flag.Int("topk", 8, "entries per report section")
	dump := flag.String("dump", "", "write Chrome trace JSON to PREFIX-<level>.json")
	flag.Parse()

	lvA, err := parseLevel(*levelA)
	if err != nil {
		fatal(err)
	}
	lvB, err := parseLevel(*levelB)
	if err != nil {
		fatal(err)
	}
	mcfg, err := parseMem(*mem)
	if err != nil {
		fatal(err)
	}
	src := memoptDemo
	var args []int64
	if flag.NArg() > 0 {
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(raw)
		for _, a := range flag.Args()[1:] {
			v, err := strconv.ParseInt(a, 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad argument %q: %v", a, err))
			}
			args = append(args, v)
		}
	}

	runA := runLevel(src, *entry, args, lvA, *levelA, mcfg, *edgeCap, *topK, *dump)
	runB := runLevel(src, *entry, args, lvB, *levelB, mcfg, *edgeCap, *topK, *dump)
	if runA.res.Value != runB.res.Value {
		fatal(fmt.Errorf("MISMATCH: %s returns %d at %s but %d at %s",
			*entry, runA.res.Value, *levelA, runB.res.Value, *levelB))
	}
	diff(runA, runB, *topK)
}

type levelRun struct {
	label string
	res   *core.SimResult
	cp    *trace.CritPath
}

func runLevel(src, entry string, args []int64, lv opt.Level, label string, mcfg memsys.Config, edgeCap, topK int, dump string) levelRun {
	cp, err := core.CompileSource(src, core.WithLevel(lv), core.WithMemory(mcfg))
	if err != nil {
		fatal(err)
	}
	cfg := cp.Sim
	cfg.EdgeCap = edgeCap
	res, tr, err := cp.RunTracedWith(entry, args, cfg, cp.Trace)
	if err != nil {
		fatal(fmt.Errorf("%s: %v", label, err))
	}
	crit := tr.CriticalPath()
	if crit == nil {
		fatal(fmt.Errorf("%s: no critical path (trace truncated?)", label))
	}
	fmt.Printf("== %s (opt %s) ==\n", label, lv)
	fmt.Printf("result %d in %d cycles, %d ops fired\n", res.Value, res.Stats.Cycles, res.Stats.OpsFired)
	fmt.Print(crit.Format(topK))
	fmt.Println()
	if dump != "" {
		path := fmt.Sprintf("%s-%s.json", dump, label)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	return levelRun{label: label, res: res, cp: crit}
}

func diff(a, b levelRun, topK int) {
	fmt.Printf("== critical-path diff: %s -> %s ==\n", a.label, b.label)
	delta := a.cp.Length - b.cp.Length
	pct := 100 * float64(delta) / float64(a.cp.Length)
	switch {
	case delta > 0:
		fmt.Printf("critical path shortened by %d cycles: %d -> %d (-%.1f%%)\n",
			delta, a.cp.Length, b.cp.Length, pct)
	case delta < 0:
		fmt.Printf("critical path LENGTHENED by %d cycles: %d -> %d\n",
			-delta, a.cp.Length, b.cp.Length)
	default:
		fmt.Printf("critical path unchanged at %d cycles\n", a.cp.Length)
	}
	fmt.Printf("token-edge cycles on the path: %d -> %d (delta %+d)\n",
		a.cp.TokenCycles, b.cp.TokenCycles, b.cp.TokenCycles-a.cp.TokenCycles)

	// Token edges of the baseline path that the optimized path no longer
	// crosses: the dependences the rewrites removed or overlapped.
	after := map[string]int64{}
	for _, ec := range b.cp.TokenEdges {
		after[edgeKey(ec)] += ec.Cycles
	}
	fmt.Printf("baseline token edges (top %d) and their fate at %s:\n", topK, b.label)
	for i, ec := range a.cp.TokenEdges {
		if i >= topK {
			break
		}
		now, ok := after[edgeKey(ec)]
		switch {
		case !ok:
			fmt.Printf("  %-40s %8d cycles  -> off the critical path\n", edgeKey(ec), ec.Cycles)
		case now < ec.Cycles:
			fmt.Printf("  %-40s %8d cycles  -> %d cycles\n", edgeKey(ec), ec.Cycles, now)
		default:
			fmt.Printf("  %-40s %8d cycles  -> unchanged\n", edgeKey(ec), ec.Cycles)
		}
	}
	if len(a.cp.TokenEdges) == 0 {
		fmt.Println("  (baseline path crosses no token edges)")
	}
	kinds := map[string]bool{}
	for k := range a.cp.ByKind {
		kinds[k] = true
	}
	for k := range b.cp.ByKind {
		kinds[k] = true
	}
	fmt.Println("cycles by node kind:")
	for _, k := range sortedKeys(kinds) {
		fmt.Printf("  %-10s %10d -> %10d (%+d)\n", k, a.cp.ByKind[k], b.cp.ByKind[k],
			b.cp.ByKind[k]-a.cp.ByKind[k])
	}
}

func edgeKey(ec trace.EdgeCycles) string {
	return fmt.Sprintf("%s: %s -> %s", ec.Edge.Graph, ec.Edge.From, ec.Edge.To)
}

func sortedKeys(m map[string]bool) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return ks
}

func parseLevel(s string) (opt.Level, error) {
	switch s {
	case "none", "O0":
		return opt.None, nil
	case "basic":
		return opt.Basic, nil
	case "medium", "O1":
		return opt.Medium, nil
	case "full", "O2":
		return opt.Full, nil
	}
	return 0, fmt.Errorf("unknown optimization level %q", s)
}

func parseMem(s string) (memsys.Config, error) {
	switch s {
	case "perfect":
		return memsys.PerfectConfig(), nil
	case "real1":
		return memsys.PaperConfig(1), nil
	case "real2":
		return memsys.PaperConfig(2), nil
	case "real4":
		return memsys.PaperConfig(4), nil
	}
	return memsys.Config{}, fmt.Errorf("unknown memory system %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cashtrace:", err)
	os.Exit(1)
}
