package dataflow

import (
	"fmt"

	"spatial/internal/memsys"
	"spatial/internal/pegasus"
	"spatial/internal/trace"
)

// runMachine is the single internal runner behind Run, RunInspect,
// RunProfiled, and RunTraced: it validates the entry point, assembles a
// machine with the requested observers (either may be nil), executes it,
// and seals the statistics. Observers are strictly additive — a nil
// profile and tracer reproduce the plain Run fast path.
func runMachine(p *pegasus.Program, entry string, args []int64, cfg Config, prof *Profile, tr *trace.Tracer) (*Result, *machine, error) {
	cfg = cfg.withDefaults()
	g := p.Graph(entry)
	if g == nil {
		return nil, nil, fmt.Errorf("dataflow: no function %q", entry)
	}
	if len(args) != len(g.Fn.Params) {
		return nil, nil, fmt.Errorf("dataflow: %s expects %d arguments, got %d", entry, len(g.Fn.Params), len(args))
	}
	m := &machine{
		prog:       p,
		cfg:        cfg,
		mem:        make([]byte, p.Layout.MemSize),
		msys:       memsys.New(cfg.Mem),
		infos:      map[string]*graphInfo{},
		sp:         p.Layout.StackBase,
		freeFrames: map[uint32][]uint32{},
		producers:  map[prodKey][]prodRef{},
		profile:    prof,
		tracer:     tr,
	}
	if tr != nil {
		m.msys.SetObserver(tr)
	}
	for _, c := range p.Layout.Init {
		m.writeMem(c.Addr, c.Size, c.Value)
	}
	m.mainAct = m.newActivation(g, args, nil, nil)
	if err := m.run(); err != nil {
		return nil, nil, err
	}
	m.stats.Cycles = m.now
	m.stats.Mem = m.msys.Stats()
	if prof != nil {
		prof.cycles = m.now
	}
	return &Result{Value: m.mainVal, Stats: m.stats}, m, nil
}

// Run executes entry(args...) on program p and returns the result value
// and statistics.
func Run(p *pegasus.Program, entry string, args []int64, cfg Config) (*Result, error) {
	res, _, err := runMachine(p, entry, args, cfg, nil, nil)
	return res, err
}

// RunInspect is Run but also returns an Inspector for post-mortem memory
// reads.
func RunInspect(p *pegasus.Program, entry string, args []int64, cfg Config) (*Result, *Inspector, error) {
	res, m, err := runMachine(p, entry, args, cfg, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	return res, &Inspector{m: m}, nil
}

// RunProfiled is Run with per-node firing profiling enabled.
func RunProfiled(p *pegasus.Program, entry string, args []int64, cfg Config) (*Result, *Profile, error) {
	prof := newProfile()
	res, _, err := runMachine(p, entry, args, cfg, prof, nil)
	if err != nil {
		return nil, nil, err
	}
	return res, prof, nil
}

// RunTraced is Run with full event tracing: every firing, stall, and
// memory request is recorded into a trace.Trace for critical-path and
// timeline analysis.
func RunTraced(p *pegasus.Program, entry string, args []int64, cfg Config, tcfg trace.Config) (*Result, *trace.Trace, error) {
	tr := trace.New(tcfg)
	res, m, err := runMachine(p, entry, args, cfg, nil, tr)
	if err != nil {
		return nil, nil, err
	}
	return res, tr.Finish(m.now), nil
}
