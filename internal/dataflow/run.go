package dataflow

import (
	"context"
	"fmt"

	"spatial/internal/faultsim"
	"spatial/internal/memsys"
	"spatial/internal/pegasus"
	"spatial/internal/trace"
)

// runOpts bundles the optional observers and controls of one run; the
// zero value reproduces the plain Run fast path.
type runOpts struct {
	prof *Profile
	tr   *trace.Tracer
	ctx  context.Context
	inj  *faultsim.Injector
	// evHook observes every processed event (time, seq, activation id,
	// node); used by tests to assert deterministic replay.
	evHook func(time, seq int64, act int, node *pegasus.Node)
	// shared, when non-nil, supplies prebuilt graph structures (and their
	// actState pools) reused across runs; it must have been built for the
	// same program. Nil means build a private table for this run.
	shared *Shared
	// part, when non-nil, runs the event queue through the partitioned
	// scheduler (see psched.go); it must have been built for the same
	// program. Results are bit-identical to the sequential queue.
	part *Partition
}

// runMachine is the single internal runner behind every Run* variant: it
// validates the configuration and entry point, assembles a machine with
// the requested observers (any may be nil), executes it, and seals the
// statistics. Observers are strictly additive — a zero runOpts
// reproduces the plain Run fast path.
func runMachine(p *pegasus.Program, entry string, args []int64, cfg Config, o runOpts) (*Result, *machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults()
	g := p.Graph(entry)
	if g == nil {
		return nil, nil, fmt.Errorf("dataflow: no function %q", entry)
	}
	if len(args) != len(g.Fn.Params) {
		return nil, nil, fmt.Errorf("dataflow: %s expects %d arguments, got %d", entry, len(g.Fn.Params), len(args))
	}
	sh := o.shared
	if sh == nil {
		sh = Prebuild(p)
	} else if sh.prog != p {
		return nil, nil, fmt.Errorf("dataflow: shared structures were built for a different program")
	}
	if o.part != nil && o.part.prog != p {
		return nil, nil, fmt.Errorf("dataflow: partition was built for a different program")
	}
	m := &machine{
		prog:       p,
		cfg:        cfg,
		mem:        make([]byte, p.Layout.MemSize),
		msys:       memsys.New(cfg.Mem),
		shared:     sh,
		sp:         p.Layout.StackBase,
		freeFrames: map[uint32][]uint32{},
		profile:    o.prof,
		tracer:     o.tr,
		inj:        o.inj,
		ctx:        o.ctx,
		evHook:     o.evHook,
	}
	if o.part != nil {
		m.ps = newPartSched(o.part)
		defer m.ps.stop()
	}
	if o.tr != nil {
		m.msys.SetObserver(o.tr)
	}
	if o.inj != nil {
		m.msys.SetPerturber(o.inj)
	}
	for _, c := range p.Layout.Init {
		m.writeMem(c.Addr, c.Size, c.Value)
	}
	m.mainAct = m.newActivation(g, args, nil, nil)
	if m.err != nil {
		return nil, nil, m.err
	}
	if err := m.run(); err != nil {
		return nil, nil, err
	}
	m.stats.Cycles = m.now
	m.stats.Mem = m.msys.Stats()
	if o.prof != nil {
		o.prof.cycles = m.now
	}
	return &Result{Value: m.mainVal, Stats: m.stats}, m, nil
}

// Run executes entry(args...) on program p and returns the result value
// and statistics.
func Run(p *pegasus.Program, entry string, args []int64, cfg Config) (*Result, error) {
	res, _, err := runMachine(p, entry, args, cfg, runOpts{})
	return res, err
}

// RunCtx is Run with cooperative cancellation: the simulator polls ctx
// between events and aborts with an error wrapping ErrCanceled (and the
// ctx cause) once it is done or past its deadline.
func RunCtx(ctx context.Context, p *pegasus.Program, entry string, args []int64, cfg Config) (*Result, error) {
	res, _, err := runMachine(p, entry, args, cfg, runOpts{ctx: ctx})
	return res, err
}

// RunFaulted is Run under fault injection: inj perturbs edge deliveries,
// fire attempts, and memory responses. ctx may be nil.
func RunFaulted(ctx context.Context, p *pegasus.Program, entry string, args []int64, cfg Config, inj *faultsim.Injector) (*Result, error) {
	res, _, err := runMachine(p, entry, args, cfg, runOpts{ctx: ctx, inj: inj})
	return res, err
}

// RunPartitioned is RunCtx executing through the partitioned scheduler:
// the graph's event domains (see BuildPartition) each maintain their own
// heap on a worker goroutine, synchronized by conservative time windows.
// The Result — and every error, including abort text — is bit-identical
// to RunCtx for any partition. ctx may be nil.
func RunPartitioned(ctx context.Context, p *pegasus.Program, entry string, args []int64, cfg Config, part *Partition) (*Result, error) {
	res, _, err := runMachine(p, entry, args, cfg, runOpts{ctx: ctx, part: part})
	return res, err
}

// RunEvents is Run with an observer invoked for every processed event in
// execution order: (time, seq) identify the event's position in the
// global total order, act is the activation ID, and node the firing
// node's ID. It exists so differential tests can assert that another
// engine replays the interpreter's event stream exactly, not just its
// final statistics.
func RunEvents(p *pegasus.Program, entry string, args []int64, cfg Config,
	hook func(time, seq int64, act, node int)) (*Result, error) {
	res, _, err := runMachine(p, entry, args, cfg, runOpts{
		evHook: func(t, s int64, a int, n *pegasus.Node) { hook(t, s, a, n.ID) },
	})
	return res, err
}

// RunInspect is Run but also returns an Inspector for post-mortem memory
// reads.
func RunInspect(p *pegasus.Program, entry string, args []int64, cfg Config) (*Result, *Inspector, error) {
	res, m, err := runMachine(p, entry, args, cfg, runOpts{})
	if err != nil {
		return nil, nil, err
	}
	return res, &Inspector{m: m}, nil
}

// RunProfiled is Run with per-node firing profiling enabled.
func RunProfiled(p *pegasus.Program, entry string, args []int64, cfg Config) (*Result, *Profile, error) {
	return RunProfiledCtx(nil, p, entry, args, cfg)
}

// RunProfiledCtx is RunProfiled with cooperative cancellation; ctx may be
// nil.
func RunProfiledCtx(ctx context.Context, p *pegasus.Program, entry string, args []int64, cfg Config) (*Result, *Profile, error) {
	prof := newProfile()
	res, _, err := runMachine(p, entry, args, cfg, runOpts{prof: prof, ctx: ctx})
	if err != nil {
		return nil, nil, err
	}
	return res, prof, nil
}

// RunTraced is Run with full event tracing: every firing, stall, and
// memory request is recorded into a trace.Trace for critical-path and
// timeline analysis.
func RunTraced(p *pegasus.Program, entry string, args []int64, cfg Config, tcfg trace.Config) (*Result, *trace.Trace, error) {
	return RunTracedCtx(nil, p, entry, args, cfg, tcfg)
}

// RunTracedCtx is RunTraced with cooperative cancellation; ctx may be
// nil.
func RunTracedCtx(ctx context.Context, p *pegasus.Program, entry string, args []int64, cfg Config, tcfg trace.Config) (*Result, *trace.Trace, error) {
	tr := trace.New(tcfg)
	res, m, err := runMachine(p, entry, args, cfg, runOpts{tr: tr, ctx: ctx})
	if err != nil {
		return nil, nil, err
	}
	return res, tr.Finish(m.now), nil
}
