package dataflow

import (
	"testing"

	"spatial/internal/interp"
	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
)

// optProgram compiles at a level.
func optProgram(t *testing.T, src string, lv opt.Level) *pegasus.Program {
	t.Helper()
	p := compileProgram(t, src)
	if err := opt.OptimizeAt(p, lv); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTokenGeneratorCredits drives the decoupled Figure 15 loop and
// verifies the tk node's runtime behaviour end to end: the trailing
// store loop must observe values the leading load loop read before the
// stores caught up.
func TestTokenGeneratorCredits(t *testing.T) {
	src := `
int a[40];
int f(void) {
  int i;
  for (i = 0; i < 40; i++) a[i] = i;
  for (i = 0; i < 37; i++) a[i] = a[i+3] * 2;
  int s = 0;
  for (i = 0; i < 40; i++) s = s * 5 + a[i];
  return s & 0xffffff;
}`
	p := optProgram(t, src, opt.Full)
	// Confirm a tk(3) exists.
	found := false
	for _, g := range p.Funcs {
		for _, n := range g.Nodes {
			if !n.Dead && n.Kind == pegasus.KTokenGen && n.TokN == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("expected tk(3) in the decoupled loop")
	}
	res, err := Run(p, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(p, memsys.PerfectConfig())
	want, err := it.Run("f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want.Value {
		t.Fatalf("decoupled run = %d, want %d", res.Value, want.Value)
	}
}

// TestSquashedCall verifies that calls under a false predicate do not
// execute the callee.
func TestSquashedCall(t *testing.T) {
	src := `
int g;
void sideEffect(void) { g = 99; }
int f(int c) {
  if (c) sideEffect();
  return g;
}`
	p := compileProgram(t, src)
	res, err := Run(p, "f", []int64{0}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Errorf("squashed call executed: g = %d", res.Value)
	}
	if res.Stats.Calls != 0 {
		t.Errorf("calls = %d, want 0", res.Stats.Calls)
	}
	res, err = Run(p, "f", []int64{1}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 99 || res.Stats.Calls != 1 {
		t.Errorf("taken call: g=%d calls=%d", res.Value, res.Stats.Calls)
	}
}

// TestExternArrayStorage verifies unsized extern arrays get backing
// storage in the layout.
func TestExternArrayStorage(t *testing.T) {
	src := `
extern int buf[];
int f(int i, int v) {
  buf[i] = v;
  return buf[i];
}`
	p := compileProgram(t, src)
	res, err := Run(p, "f", []int64{100, 1234}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1234 {
		t.Errorf("extern array roundtrip = %d", res.Value)
	}
}

// TestConcurrentActivations checks that two calls whose results join can
// proceed as independent activations.
func TestConcurrentActivations(t *testing.T) {
	src := `
int slowsq(int x) {
  int i;
  int acc = 0;
  for (i = 0; i < x; i++) acc += x;
  return acc;
}
int f(int a, int b) { return slowsq(a) + slowsq(b); }`
	p := compileProgram(t, src)
	res, err := Run(p, "f", []int64{10, 20}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 100+400 {
		t.Errorf("f = %d, want 500", res.Value)
	}
	if res.Stats.Calls != 2 {
		t.Errorf("calls = %d", res.Stats.Calls)
	}
}

// TestWaveSemantics: a conditional store inside a loop must execute
// exactly in the iterations where its condition holds.
func TestWaveSemantics(t *testing.T) {
	src := `
int hits[16];
int f(int n) {
  int i;
  int count = 0;
  for (i = 0; i < n; i++) {
    if ((i & 3) == 0) { hits[i & 15] = i; count++; }
  }
  return count;
}`
	p := compileProgram(t, src)
	res, err := Run(p, "f", []int64{16}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Errorf("count = %d, want 4", res.Value)
	}
	if res.Stats.DynStores != 4 {
		t.Errorf("dynamic stores = %d, want 4 (squash the rest)", res.Stats.DynStores)
	}
	if res.Stats.NullMem == 0 {
		t.Error("no squashed stores recorded")
	}
}

// TestDeadlockDiagnosis: a graph mutilated by hand must be reported as a
// deadlock, not hang.
func TestDeadlockDiagnosis(t *testing.T) {
	p := compileProgram(t, `int f(int a) { return a + 1; }`)
	g := p.Graph("f")
	// Sever the return's token input producer chain by pointing the
	// return at a fresh combine that never fires (its token input is an
	// eta with a constant-false predicate... simplest: a combine fed by a
	// token eta whose predicate is constant false).
	fls := g.ConstPred(g.Ret.Hyper, false)
	eta := g.NewNode(pegasus.KEta, g.Ret.Hyper)
	eta.TokenOnly = true
	eta.Preds = []pegasus.Ref{pegasus.V(fls)}
	eta.Toks = []pegasus.Ref{pegasus.T(g.Entry)}
	g.Ret.Toks = []pegasus.Ref{pegasus.T(eta)}
	if err := g.Verify(); err != nil {
		t.Fatalf("mutilated graph should still be structurally valid: %v", err)
	}
	_, err := Run(p, "f", []int64{1}, DefaultConfig())
	if err == nil {
		t.Fatal("expected a deadlock error")
	}
}

// TestMaxCyclesGuard: long-running loops abort with a diagnostic when
// they exceed the configured cycle budget. (A function with *no* return
// path completes immediately through the fallback return plumbing, so a
// finite but over-budget loop is the right probe.)
func TestMaxCyclesGuard(t *testing.T) {
	src := `
int g;
int f(void) {
  int i;
  for (i = 0; i < 1000000; i++) { g = g + 1; }
  return g;
}`
	p := compileProgram(t, src)
	cfg := DefaultConfig()
	cfg.MaxCycles = 10000
	if _, err := Run(p, "f", nil, cfg); err == nil {
		t.Fatal("over-budget loop not bounded by MaxCycles")
	}
}

// TestOptimizedAndUnoptimizedCycleSanity: optimization should not slow a
// program down under the default configuration.
func TestOptimizedAndUnoptimizedCycleSanity(t *testing.T) {
	src := `
int a[128];
int b[128];
int f(void) {
  int i;
  int s = 0;
  for (i = 0; i < 128; i++) a[i] = i * 3;
  for (i = 0; i < 128; i++) b[i] = a[i] + 1;
  for (i = 0; i < 128; i++) s += b[i];
  return s;
}`
	p0 := compileProgram(t, src)
	p1 := optProgram(t, src, opt.Full)
	r0, err := Run(p0, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(p1, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r0.Value != r1.Value {
		t.Fatalf("values differ: %d vs %d", r0.Value, r1.Value)
	}
	if r1.Stats.Cycles > r0.Stats.Cycles {
		t.Errorf("optimization slowed the program: %d → %d cycles", r0.Stats.Cycles, r1.Stats.Cycles)
	}
}

// TestDecoupledRecurrenceAcrossEdgeCaps: deeper edge buffering permits
// more slip; the token generator must still bound it correctly.
func TestDecoupledRecurrenceAcrossEdgeCaps(t *testing.T) {
	src := `
int a[64];
int f(void) {
  int i;
  a[0] = 7;
  for (i = 0; i < 63; i++) a[i+1] = a[i] + 1;
  int s = 0;
  for (i = 0; i < 64; i++) s = s * 3 + a[i];
  return s & 0x7fffffff;
}`
	p := optProgram(t, src, opt.Full)
	it := interp.New(p, memsys.PerfectConfig())
	want, err := it.Run("f", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.EdgeCap = cap
		res, err := Run(p, "f", nil, cfg)
		if err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		if res.Value != want.Value {
			t.Errorf("cap %d: %d, want %d", cap, res.Value, want.Value)
		}
	}
}
