package dataflow

import (
	"strings"
	"testing"

	"spatial/internal/cminor"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
)

// evRecord is one observed simulator event for replay comparison.
type evRecord struct {
	time int64
	seq  int64
	act  int
	node int
}

func recordEvents(t *testing.T, p *pegasus.Program, entry string) ([]evRecord, *Result) {
	t.Helper()
	var evs []evRecord
	res, _, err := runMachine(p, entry, nil, DefaultConfig(), runOpts{
		evHook: func(time, seq int64, act int, node *pegasus.Node) {
			evs = append(evs, evRecord{time, seq, act, node.ID})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return evs, res
}

// TestDeterministicReplay asserts the event-engine invariant the
// re-layout must preserve: two runs of the same program produce the
// exact same event sequence — every (time, seq, activation, node)
// triple in the same order. The program exercises loops, a token
// generator, recursion (frame recycling), and memory traffic.
func TestDeterministicReplay(t *testing.T) {
	src := `
int a[40];
int rec(int n) {
  int pad[8];
  pad[0] = n * 3;
  if (n <= 0) return pad[0];
  return pad[0] + rec(n - 1);
}
int f(void) {
  int i;
  for (i = 0; i < 40; i++) a[i] = i;
  for (i = 0; i < 37; i++) a[i] = a[i+3] * 2;
  int s = rec(5);
  for (i = 0; i < 40; i++) s = s * 5 + a[i];
  return s & 0xffffff;
}`
	p := optProgram(t, src, opt.Full)
	evs1, res1 := recordEvents(t, p, "f")
	evs2, res2 := recordEvents(t, p, "f")
	if res1.Value != res2.Value || res1.Stats.Cycles != res2.Stats.Cycles {
		t.Fatalf("replay diverged: value %d/%d cycles %d/%d",
			res1.Value, res2.Value, res1.Stats.Cycles, res2.Stats.Cycles)
	}
	if len(evs1) != len(evs2) {
		t.Fatalf("event counts differ: %d vs %d", len(evs1), len(evs2))
	}
	for i := range evs1 {
		if evs1[i] != evs2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, evs1[i], evs2[i])
		}
	}
	if int64(len(evs1)) != res1.Stats.Events {
		t.Fatalf("Stats.Events = %d, hook saw %d", res1.Stats.Events, len(evs1))
	}
}

// TestSteadyStateAllocsPerEvent pins the engine's core claim: once the
// pools are warm, processing more events allocates nothing. It compares
// the allocation count of a short and a long run of the same compiled
// program (same fixed setup cost, ~47x the events); the per-extra-event
// allocation rate must be ~0.
func TestSteadyStateAllocsPerEvent(t *testing.T) {
	src := `
int f(int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) s = s + ((s ^ i) & 1023);
  return s;
}`
	p := optProgram(t, src, opt.Full)
	cfg := DefaultConfig()
	events := func(n int64) int64 {
		res, err := Run(p, "f", []int64{n}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Events
	}
	shortEvents, longEvents := events(200), events(10000)
	if longEvents <= shortEvents {
		t.Fatalf("bad calibration: %d <= %d events", longEvents, shortEvents)
	}
	allocs := func(n int64) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(p, "f", []int64{n}, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	shortAllocs, longAllocs := allocs(200), allocs(10000)
	delta := longAllocs - shortAllocs
	perEvent := delta / float64(longEvents-shortEvents)
	// Allow a little noise from mid-run GC clearing sync.Pool victims;
	// the real bar is "orders of magnitude below one alloc per event".
	if perEvent > 0.001 {
		t.Fatalf("steady-state allocs/event = %.5f (short run %.0f allocs / %d events, long run %.0f allocs / %d events)",
			perEvent, shortAllocs, shortEvents, longAllocs, longEvents)
	}
}

// frameMachine builds a bare machine with a synthetic layout for frame
// allocator unit tests: 96 bytes of memory, stack starting at 64, one
// function with a 32-byte frame.
func frameMachine() (*machine, *cminor.FuncDecl) {
	fn := &cminor.FuncDecl{Name: "f"}
	layout := &pegasus.Layout{
		MemSize:   96,
		StackBase: 64,
		FrameSize: map[*cminor.FuncDecl]uint32{fn: 32},
	}
	m := &machine{
		prog:       &pegasus.Program{Layout: layout},
		mem:        make([]byte, 96),
		sp:         64,
		freeFrames: map[uint32][]uint32{},
	}
	return m, fn
}

// TestAllocFrameFlushAgainstTop is the off-by-one regression test: a
// frame that ends exactly at MemSize is legal (memory is [0, MemSize)
// and the frame occupies [64, 96) of a 96-byte memory).
func TestAllocFrameFlushAgainstTop(t *testing.T) {
	m, fn := frameMachine()
	f := m.allocFrame(fn)
	if m.err != nil {
		t.Fatalf("frame flush against top of memory rejected: %v", m.err)
	}
	if f != 64 || m.sp != 96 {
		t.Fatalf("frame = %d, sp = %d; want 64, 96", f, m.sp)
	}
	// One more frame genuinely overflows.
	m.allocFrame(fn)
	if m.err == nil {
		t.Fatal("expected stack overflow past MemSize")
	}
}

// TestStackOverflowReportsLiveFrames asserts the overflow diagnostic
// counts frames actually live, not activations ever created.
func TestStackOverflowReportsLiveFrames(t *testing.T) {
	m, fn := frameMachine()
	// Simulate a history of completed activations: the counter that used
	// to feed the message would now be 100.
	m.nextActID = 100
	m.allocFrame(fn)
	m.allocFrame(fn)
	if m.err == nil {
		t.Fatal("expected stack overflow")
	}
	if !strings.Contains(m.err.Error(), "2 frames live") {
		t.Fatalf("overflow message should report 2 live frames: %v", m.err)
	}
}

// TestRecycledFrameZeroed asserts a frame popped from the free list is
// zeroed: without this a program reading an uninitialized local sees
// different values on first use versus reuse.
func TestRecycledFrameZeroed(t *testing.T) {
	m, fn := frameMachine()
	f := m.allocFrame(fn)
	for i := f; i < f+32; i++ {
		m.mem[i] = 0xAB
	}
	gi := &graphInfo{g: pegasus.NewGraph(fn)}
	m.freeFrame(&activation{gi: gi, frame: f})
	if m.liveFrames != 0 {
		t.Fatalf("liveFrames = %d after free, want 0", m.liveFrames)
	}
	f2 := m.allocFrame(fn)
	if f2 != f {
		t.Fatalf("expected frame reuse: got %d, want %d", f2, f)
	}
	for i := f2; i < f2+32; i++ {
		if m.mem[i] != 0 {
			t.Fatalf("recycled frame not zeroed at offset %d", i-f2)
		}
	}
}
