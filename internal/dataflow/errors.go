package dataflow

import (
	"errors"
	"fmt"
)

// Sentinel errors for fire-path failures. They replace the panics the
// simulator used to raise mid-dispatch: the machine latches the first
// failure and the run loop surfaces it as the Run* error, so a sick
// program can never kill its caller.
var (
	// ErrActivationLimit: a call would exceed Config.MaxActivations
	// (runaway recursion or call fan-out).
	ErrActivationLimit = errors.New("dataflow: activation limit exceeded (runaway recursion?)")
	// ErrUnbuiltCall: a call node names a function with no built graph
	// (an extern declaration with no body).
	ErrUnbuiltCall = errors.New("dataflow: call to unbuilt function")
	// ErrStackOverflow: frame allocation ran past the simulated memory.
	ErrStackOverflow = errors.New("dataflow: simulated stack overflow")
	// ErrMemFault: an injected memory-response fault was detected.
	ErrMemFault = errors.New("dataflow: corrupted memory response detected")
	// ErrCanceled: the run's context was canceled or timed out.
	ErrCanceled = errors.New("dataflow: run canceled")
)

// DeadlockError reports that the event queue drained with the entry
// activation incomplete: some set of nodes waits forever. Report carries
// the wait-for graph diagnosis.
type DeadlockError struct {
	Report *StuckReport
}

// Error renders the full diagnosis; the first line is the summary.
func (e *DeadlockError) Error() string {
	return e.Report.Render()
}

// LivelockError reports that the simulation passed Config.MaxCycles
// without completing: events keep flowing but the program makes no
// progress (or is simply over budget). Report carries the blocked-node
// snapshot at the cutoff.
type LivelockError struct {
	MaxCycles int64
	Report    *StuckReport
}

// Error renders the full diagnosis; the first line is the summary.
func (e *LivelockError) Error() string {
	return fmt.Sprintf("dataflow: exceeded %d cycles\n%s", e.MaxCycles, e.Report.Render())
}
