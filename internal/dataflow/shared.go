package dataflow

import (
	"context"

	"spatial/internal/faultsim"
	"spatial/internal/pegasus"
	"spatial/internal/trace"
)

// Shared is the per-program table of graphInfo structures, built once and
// then reused by every subsequent run of the same program — including
// runs on different goroutines at the same time.
//
// The concurrency contract (see DESIGN.md "Concurrency model"):
//
//   - The pegasus.Program and every graphInfo are immutable after
//     Prebuild returns. The simulator only reads them; no field of either
//     is written during a run.
//   - Each graphInfo's sync.Pool of actState is safe under concurrent
//     Get/Put; a pooled actState is owned exclusively by one activation
//     of one run between Get and Put.
//   - Everything else a run touches (machine, memory image, memsys,
//     event queue, observers) is allocated per run and never shared.
//
// TestSharedCompiledParallel pins the contract under -race.
type Shared struct {
	prog  *pegasus.Program
	infos map[string]*graphInfo
}

// Prebuild constructs the shared structures for every function of p. The
// result may be used by any number of concurrent runs.
func Prebuild(p *pegasus.Program) *Shared {
	s := &Shared{prog: p, infos: make(map[string]*graphInfo, len(p.Funcs))}
	for name, g := range p.Funcs {
		s.infos[name] = buildGraphInfo(g)
	}
	return s
}

// Program returns the program the shared structures were built for.
func (s *Shared) Program() *pegasus.Program { return s.prog }

// info returns the prebuilt graphInfo of g. Every graph reachable by a
// run is in p.Funcs, so the lookup never misses; the map is never written
// after Prebuild, making concurrent lookups safe without locking.
func (s *Shared) info(g *pegasus.Graph) *graphInfo { return s.infos[g.Name] }

// Run executes entry(args...) against the prebuilt structures. It is safe
// to call from many goroutines at once; each call is an independent run
// with its own memory image and event queue.
func (s *Shared) Run(entry string, args []int64, cfg Config) (*Result, error) {
	return s.RunCtx(nil, entry, args, cfg)
}

// RunCtx is Run with cooperative cancellation (ctx may be nil).
func (s *Shared) RunCtx(ctx context.Context, entry string, args []int64, cfg Config) (*Result, error) {
	res, _, err := runMachine(s.prog, entry, args, cfg, runOpts{ctx: ctx, shared: s})
	return res, err
}

// RunFaulted is RunCtx under fault injection; the injector itself is
// stateful and must not be shared between concurrent runs.
func (s *Shared) RunFaulted(ctx context.Context, entry string, args []int64, cfg Config, inj *faultsim.Injector) (*Result, error) {
	res, _, err := runMachine(s.prog, entry, args, cfg, runOpts{ctx: ctx, inj: inj, shared: s})
	return res, err
}

// RunPartitioned is RunCtx through the partitioned scheduler (see
// RunPartitioned at package level); part must have been built for the
// same program.
func (s *Shared) RunPartitioned(ctx context.Context, entry string, args []int64, cfg Config, part *Partition) (*Result, error) {
	res, _, err := runMachine(s.prog, entry, args, cfg, runOpts{ctx: ctx, shared: s, part: part})
	return res, err
}

// RunPartitionedFaulted is RunPartitioned under fault injection: the
// injector perturbs the run exactly as in RunFaulted — injections key
// off the deterministic event stream, which partitioning preserves, so
// every fault fires identically for any partition count.
func (s *Shared) RunPartitionedFaulted(ctx context.Context, entry string, args []int64, cfg Config, part *Partition, inj *faultsim.Injector) (*Result, error) {
	res, _, err := runMachine(s.prog, entry, args, cfg, runOpts{ctx: ctx, shared: s, part: part, inj: inj})
	return res, err
}

// RunProfiledCtx is RunCtx with per-node firing profiling.
func (s *Shared) RunProfiledCtx(ctx context.Context, entry string, args []int64, cfg Config) (*Result, *Profile, error) {
	prof := newProfile()
	res, _, err := runMachine(s.prog, entry, args, cfg, runOpts{prof: prof, ctx: ctx, shared: s})
	if err != nil {
		return nil, nil, err
	}
	return res, prof, nil
}

// RunTracedCtx is RunCtx with full event tracing.
func (s *Shared) RunTracedCtx(ctx context.Context, entry string, args []int64, cfg Config, tcfg trace.Config) (*Result, *trace.Trace, error) {
	tr := trace.New(tcfg)
	res, m, err := runMachine(s.prog, entry, args, cfg, runOpts{tr: tr, ctx: ctx, shared: s})
	if err != nil {
		return nil, nil, err
	}
	return res, tr.Finish(m.now), nil
}

// RunInspect is Run returning an Inspector for post-mortem memory reads.
func (s *Shared) RunInspect(entry string, args []int64, cfg Config) (*Result, *Inspector, error) {
	res, m, err := runMachine(s.prog, entry, args, cfg, runOpts{shared: s})
	if err != nil {
		return nil, nil, err
	}
	return res, &Inspector{m: m}, nil
}
