package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"spatial/internal/memsys"
	"spatial/internal/pegasus"
)

// Profile aggregates per-node firing counts across a simulation — the
// spatial analogue of an instruction-frequency profile: it shows which
// operators in the circuit are hot and how busy each was relative to the
// total cycle count.
type Profile struct {
	// Fires maps node (per function) to the number of times it fired.
	fires map[*pegasus.Node]int64
	// ByKind accumulates firings per node kind name.
	ByKind map[string]int64
	cycles int64
}

func newProfile() *Profile {
	return &Profile{fires: map[*pegasus.Node]int64{}, ByKind: map[string]int64{}}
}

func (p *Profile) record(n *pegasus.Node) {
	if p == nil {
		return
	}
	p.fires[n]++
	p.ByKind[n.Kind.String()]++
}

// Fires returns the firing count of a node.
func (p *Profile) Fires(n *pegasus.Node) int64 { return p.fires[n] }

// HotNode is one entry of the hot-node report.
type HotNode struct {
	Node  *pegasus.Node
	Count int64
	// Utilization is the fraction of cycles the operator fired.
	Utilization float64
}

// Hot returns the top-k most-fired nodes.
func (p *Profile) Hot(k int) []HotNode {
	var out []HotNode
	for n, c := range p.fires {
		u := 0.0
		if p.cycles > 0 {
			u = float64(c) / float64(p.cycles)
		}
		out = append(out, HotNode{Node: n, Count: c, Utilization: u})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Node.ID < out[j].Node.ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Format renders the profile.
func (p *Profile) Format(topK int) string {
	var sb strings.Builder
	sb.WriteString("firing counts by kind:\n")
	var kinds []string
	for k := range p.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&sb, "  %-10s %10d\n", k, p.ByKind[k])
	}
	fmt.Fprintf(&sb, "hottest %d operators:\n", topK)
	for _, h := range p.Hot(topK) {
		fmt.Fprintf(&sb, "  %-24s fired %8d (%.1f%% of cycles)\n",
			h.Node.String(), h.Count, 100*h.Utilization)
	}
	return sb.String()
}

// RunProfiled is Run with per-node firing profiling enabled.
func RunProfiled(p *pegasus.Program, entry string, args []int64, cfg Config) (*Result, *Profile, error) {
	cfg = cfg.withDefaults()
	g := p.Graph(entry)
	if g == nil {
		return nil, nil, fmt.Errorf("dataflow: no function %q", entry)
	}
	if len(args) != len(g.Fn.Params) {
		return nil, nil, fmt.Errorf("dataflow: %s expects %d arguments, got %d", entry, len(g.Fn.Params), len(args))
	}
	m := &machine{
		prog:       p,
		cfg:        cfg,
		mem:        make([]byte, p.Layout.MemSize),
		msys:       memsys.New(cfg.Mem),
		infos:      map[string]*graphInfo{},
		sp:         p.Layout.StackBase,
		freeFrames: map[uint32][]uint32{},
		producers:  map[prodKey][]prodRef{},
		profile:    newProfile(),
	}
	for _, c := range p.Layout.Init {
		m.writeMem(c.Addr, c.Size, c.Value)
	}
	m.mainAct = m.newActivation(g, args, nil, nil)
	if err := m.run(); err != nil {
		return nil, nil, err
	}
	m.stats.Cycles = m.now
	m.stats.Mem = m.msys.Stats()
	m.profile.cycles = m.now
	return &Result{Value: m.mainVal, Stats: m.stats}, m.profile, nil
}
