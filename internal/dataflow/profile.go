package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"spatial/internal/pegasus"
)

// Profile aggregates per-node firing counts across a simulation — the
// spatial analogue of an instruction-frequency profile: it shows which
// operators in the circuit are hot and how busy each was relative to the
// total cycle count.
type Profile struct {
	// Fires maps node (per function) to the number of times it fired.
	fires map[*pegasus.Node]int64
	// ByKind accumulates firings per node kind name.
	ByKind map[string]int64
	cycles int64
}

func newProfile() *Profile {
	return &Profile{fires: map[*pegasus.Node]int64{}, ByKind: map[string]int64{}}
}

func (p *Profile) record(n *pegasus.Node) {
	if p == nil {
		return
	}
	p.fires[n]++
	p.ByKind[n.Kind.String()]++
}

// Fires returns the firing count of a node.
func (p *Profile) Fires(n *pegasus.Node) int64 { return p.fires[n] }

// HotNode is one entry of the hot-node report.
type HotNode struct {
	Node  *pegasus.Node
	Count int64
	// Utilization is the fraction of cycles the operator fired.
	Utilization float64
}

// Hot returns the top-k most-fired nodes.
func (p *Profile) Hot(k int) []HotNode {
	var out []HotNode
	for n, c := range p.fires {
		u := 0.0
		if p.cycles > 0 {
			u = float64(c) / float64(p.cycles)
		}
		out = append(out, HotNode{Node: n, Count: c, Utilization: u})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Node.ID < out[j].Node.ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Format renders the profile.
func (p *Profile) Format(topK int) string {
	var sb strings.Builder
	sb.WriteString("firing counts by kind:\n")
	var kinds []string
	for k := range p.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&sb, "  %-10s %10d\n", k, p.ByKind[k])
	}
	fmt.Fprintf(&sb, "hottest %d operators:\n", topK)
	for _, h := range p.Hot(topK) {
		fmt.Fprintf(&sb, "  %-24s fired %8d (%.1f%% of cycles)\n",
			h.Node.String(), h.Count, 100*h.Utilization)
	}
	return sb.String()
}
