package dataflow

import (
	"math"
	"sync"
)

// This file is the partitioned event scheduler (DESIGN.md "Partitioned
// simulation"). The machine's semantic loop is untouched: one sequencer
// (the run loop's goroutine) still processes every event in the exact
// global (time, seq) order, so results are bit-identical to the
// sequential engine by construction. What is partitioned is the queue
// itself:
//
//   - Events due inside the current synchronization window live on an
//     O(1) bucket ring owned by the sequencer (most events, since op
//     latencies are 0–20 cycles).
//   - Events due at or past the window fence are sharded by their
//     consumer node's domain to per-domain worker goroutines, each
//     owning its own 4-ary heap, and drained back one window at a time.
//
// The protocol is conservative and pipelined: exactly one drain request
// [covered, fence) is outstanding at all times, so while the sequencer
// consumes window k the workers sort window k+1. Cross-thread traffic is
// batched (one message per domain per window in each direction) over
// bounded channels, with slice buffers recycled through free lists so
// steady state allocates nothing.
//
// Ordering invariants (why pop order is the global (time, seq) order):
//
//   - Every push has e.time >= m.now: emit schedules at now+latency with
//     latency >= 0, delivery-order ratchets and injected delays only
//     raise times, and memory completions are never in the past.
//   - A bucket's early segment (events drained from domains) is
//     seq-sorted: each domain's drain response is heap-pop-ordered and
//     the sequencer k-way merges responses by (time, seq).
//   - A bucket's late segment (direct pushes below the fence) is
//     seq-sorted because seq is assigned by a monotonic counter at push.
//   - Every early seq precedes every late seq for the same bucket: an
//     early event was routed to a domain because its time was >= the
//     fence when pushed; a late event's time was < the fence. The fence
//     only advances, and it advances past a bucket's time only at the
//     flush+drain transition — so all domain-routed pushes for that
//     bucket happen strictly before all direct pushes for it.
//
// The ring spans [cur, fence), at most 2 windows wide, and is sized 4
// windows, so distinct live times always map to distinct buckets.
type partSched struct {
	part   *Partition
	window int64
	mask   int64 // ring size - 1 (ring size = 4 * window, a power of two)

	buckets   []psBucket
	ringCount int // events currently in ring buckets
	total     int // all pending events: ring + pending batches + domains

	// cur is the next time to consume; covered is the exclusive bound of
	// merged (consumable) time; fence is the push-routing boundary and
	// the exclusive bound of the outstanding drain request [covered,
	// fence). Invariants outside advance(): cur <= covered <= fence,
	// fence - cur <= 2*window.
	cur, covered, fence int64

	// pending[d] buffers far pushes for domain d until the next flush.
	pending [][]event
	doms    []psDomain

	// resp/respPos are merge scratch (per-domain response cursors).
	resp    [][]event
	respPos []int

	// batchFree/respFree recycle slice buffers across windows.
	batchFree chan []event
	respFree  chan []event

	wg sync.WaitGroup
}

// psBucket is one ring slot: all events due at one time, split into the
// domain-drained segment (early) and direct pushes (late).
type psBucket struct {
	early, late       []event
	earlyPos, latePos int
}

// psMsg is the sequencer→worker message for one window: insert batch
// (may be nil), then drain everything below hi and respond.
type psMsg struct {
	batch []event
	hi    int64
}

// psResp is the worker's answer: the drained events in (time, seq)
// order, plus the heap top after draining (MaxInt64 when empty) so the
// sequencer can fast-forward across event-free gaps.
type psResp struct {
	events  []event
	minNext int64
}

type psDomain struct {
	in  chan psMsg
	out chan psResp
}

func newPartSched(part *Partition) *partSched {
	w := part.window
	ring := 4 * w
	n := part.n
	s := &partSched{
		part:      part,
		window:    w,
		mask:      ring - 1,
		buckets:   make([]psBucket, ring),
		pending:   make([][]event, n),
		doms:      make([]psDomain, n),
		resp:      make([][]event, n),
		respPos:   make([]int, n),
		batchFree: make(chan []event, 2*n),
		respFree:  make(chan []event, 2*n),
	}
	for i := range s.doms {
		s.doms[i].in = make(chan psMsg, 2)
		s.doms[i].out = make(chan psResp, 1)
		s.wg.Add(1)
		go s.worker(&s.doms[i])
	}
	// Prime the pipeline: one drain request is outstanding from here on.
	s.flushAndRequest()
	return s
}

// stop shuts the workers down and waits for them to exit; safe on every
// run-loop exit path (a worker never blocks sending its response, since
// out is buffered for the single outstanding request).
func (s *partSched) stop() {
	for i := range s.doms {
		close(s.doms[i].in)
	}
	s.wg.Wait()
}

// worker owns one domain's heap. It never dereferences an event's act or
// node pointers — only (time, seq) — so it races with nothing the
// sequencer does to activation state.
func (s *partSched) worker(d *psDomain) {
	defer s.wg.Done()
	var q eventQueue
	for msg := range d.in {
		if msg.batch != nil {
			for _, e := range msg.batch {
				q.push(e)
			}
			s.putBatch(msg.batch)
		}
		out := s.getResp()
		for q.len() > 0 && q.topTime() < msg.hi {
			out = append(out, q.pop())
		}
		minNext := int64(math.MaxInt64)
		if q.len() > 0 {
			minNext = q.topTime()
		}
		d.out <- psResp{events: out, minNext: minNext}
	}
}

// push routes one event: inside the fence onto the ring, past it into
// the consumer domain's pending batch. Called only from the sequencer.
func (s *partSched) push(e event) {
	s.total++
	if e.time < s.fence {
		b := &s.buckets[e.time&s.mask]
		b.late = append(b.late, e)
		s.ringCount++
		return
	}
	d := 0
	if doms := e.act.doms; doms != nil {
		d = int(doms[e.node.ID])
	}
	s.pending[d] = append(s.pending[d], e)
}

// next returns the globally next event by (time, seq). It must only be
// called while total > 0, and then always returns an event.
func (s *partSched) next() event {
	for {
		for s.cur < s.covered {
			b := &s.buckets[s.cur&s.mask]
			if b.earlyPos < len(b.early) {
				e := b.early[b.earlyPos]
				b.earlyPos++
				s.ringCount--
				s.total--
				return e
			}
			if b.latePos < len(b.late) {
				e := b.late[b.latePos]
				b.latePos++
				s.ringCount--
				s.total--
				return e
			}
			b.early = b.early[:0]
			b.late = b.late[:0]
			b.earlyPos, b.latePos = 0, 0
			s.cur++
		}
		s.advance()
	}
}

// advance moves the window forward: merge the outstanding drain
// [covered, fence), then flush pending batches and request the next
// window. When the ring is empty and nothing is buffered outside the
// domains, the per-domain heap tops are an exact global minimum, so the
// window jumps straight to the next event instead of crawling
// fence-by-fence across gaps (memory latencies, injected delays).
func (s *partSched) advance() {
	minAll := s.mergeWindow()
	s.covered = s.fence
	if s.ringCount == 0 {
		// Nothing below covered; skip the empty bucket walk.
		s.cur = s.covered
		if s.total > 0 && !s.pendingAny() && minAll > s.covered {
			if minAll == math.MaxInt64 {
				panic("dataflow: partitioned scheduler lost events (accounting bug)")
			}
			s.cur, s.covered = minAll, minAll
		}
	}
	s.flushAndRequest()
}

func (s *partSched) pendingAny() bool {
	for _, p := range s.pending {
		if len(p) > 0 {
			return true
		}
	}
	return false
}

// mergeWindow receives every domain's response to the outstanding drain
// and k-way merges them by (time, seq) into the ring's early segments.
// Returns the minimum post-drain heap top across domains.
func (s *partSched) mergeWindow() int64 {
	nd := len(s.doms)
	minAll := int64(math.MaxInt64)
	for i := 0; i < nd; i++ {
		r := <-s.doms[i].out
		s.resp[i] = r.events
		s.respPos[i] = 0
		if r.minNext < minAll {
			minAll = r.minNext
		}
	}
	for {
		best := -1
		var bt, bs int64
		for i := 0; i < nd; i++ {
			p := s.respPos[i]
			if p >= len(s.resp[i]) {
				continue
			}
			e := &s.resp[i][p]
			if best < 0 || e.time < bt || (e.time == bt && e.seq < bs) {
				best, bt, bs = i, e.time, e.seq
			}
		}
		if best < 0 {
			break
		}
		e := s.resp[best][s.respPos[best]]
		s.respPos[best]++
		b := &s.buckets[e.time&s.mask]
		b.early = append(b.early, e)
		s.ringCount++
	}
	for i := 0; i < nd; i++ {
		s.putResp(s.resp[i])
		s.resp[i] = nil
	}
	return minAll
}

// flushAndRequest sends each domain its pending batch plus the next
// drain request [covered, covered+window) in one message, advancing the
// fence. The batch-then-drain order within the message is what makes a
// drain response complete: every event routed to a domain before the
// fence advanced is in its heap before the drain runs.
func (s *partSched) flushAndRequest() {
	hi := s.covered + s.window
	for i := range s.doms {
		var batch []event
		if len(s.pending[i]) > 0 {
			batch = s.pending[i]
			s.pending[i] = s.getBatch()
		}
		s.doms[i].in <- psMsg{batch: batch, hi: hi}
	}
	s.fence = hi
}

func (s *partSched) getBatch() []event {
	select {
	case b := <-s.batchFree:
		return b
	default:
		return make([]event, 0, 64)
	}
}

func (s *partSched) putBatch(b []event) {
	select {
	case s.batchFree <- b[:0]:
	default:
	}
}

func (s *partSched) getResp() []event {
	select {
	case b := <-s.respFree:
		return b
	default:
		return make([]event, 0, 64)
	}
}

func (s *partSched) putResp(b []event) {
	select {
	case s.respFree <- b[:0]:
	default:
	}
}
