package dataflow

import (
	"testing"

	"spatial/internal/build"
	"spatial/internal/cminor"
	"spatial/internal/interp"
	"spatial/internal/memsys"
	"spatial/internal/pegasus"
)

func compileProgram(t *testing.T, src string) *pegasus.Program {
	t.Helper()
	prog, err := cminor.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := cminor.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := build.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// runBoth executes entry(args) on the dataflow simulator and the AST
// interpreter and requires identical results.
func runBoth(t *testing.T, src, entry string, args []int64) (*Result, *interp.Result) {
	t.Helper()
	p := compileProgram(t, src)
	dfRes, err := Run(p, entry, args, DefaultConfig())
	if err != nil {
		t.Fatalf("dataflow: %v\n%s", err, p.Graph(entry).Dump())
	}
	it := interp.New(p, memsys.PerfectConfig())
	itRes, err := it.Run(entry, args)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if dfRes.Value != itRes.Value {
		t.Fatalf("dataflow=%d interp=%d for %s(%v)\n%s", dfRes.Value, itRes.Value, entry, args, p.Graph(entry).Dump())
	}
	return dfRes, itRes
}

func TestSimStraightLine(t *testing.T) {
	res, _ := runBoth(t, "int f(int a, int b) { return a * b + 2; }", "f", []int64{6, 7})
	if res.Value != 44 {
		t.Errorf("value = %d, want 44", res.Value)
	}
	if res.Stats.Cycles <= 0 {
		t.Error("no cycles elapsed")
	}
}

func TestSimIfElse(t *testing.T) {
	src := `
int f(int a) {
  int r;
  if (a > 0) r = a * 2; else r = -a;
  return r;
}`
	res, _ := runBoth(t, src, "f", []int64{21})
	if res.Value != 42 {
		t.Errorf("f(21) = %d", res.Value)
	}
	res, _ = runBoth(t, src, "f", []int64{-5})
	if res.Value != 5 {
		t.Errorf("f(-5) = %d", res.Value)
	}
}

func TestSimLoop(t *testing.T) {
	src := `
int f(int n) {
  int s = 0;
  int i;
  for (i = 1; i <= n; i++) s += i;
  return s;
}`
	res, _ := runBoth(t, src, "f", []int64{10})
	if res.Value != 55 {
		t.Errorf("sum(1..10) = %d", res.Value)
	}
	runBoth(t, src, "f", []int64{0})
	runBoth(t, src, "f", []int64{1})
}

func TestSimFibonacciWhile(t *testing.T) {
	// The Figure 2 program.
	src := `
int fib(int k) {
  int a = 0;
  int b = 1;
  while (k) {
    int tmp = a;
    a = b;
    b = b + tmp;
    k--;
  }
  return a;
}`
	res, _ := runBoth(t, src, "fib", []int64{10})
	if res.Value != 55 {
		t.Errorf("fib(10) = %d, want 55", res.Value)
	}
	runBoth(t, src, "fib", []int64{0})
	runBoth(t, src, "fib", []int64{1})
}

func TestSimGlobalArrays(t *testing.T) {
	src := `
int a[16];
int sum(void) {
  int s = 0;
  int i;
  for (i = 0; i < 16; i++) { a[i] = i * 3; }
  for (i = 0; i < 16; i++) { s += a[i]; }
  return s;
}`
	res, _ := runBoth(t, src, "sum", nil)
	if res.Value != 360 {
		t.Errorf("sum = %d, want 360", res.Value)
	}
	if res.Stats.DynStores != 16 {
		t.Errorf("dynamic stores = %d, want 16", res.Stats.DynStores)
	}
	if res.Stats.DynLoads != 16 {
		t.Errorf("dynamic loads = %d, want 16", res.Stats.DynLoads)
	}
}

func TestSimSection2Example(t *testing.T) {
	src := `
unsigned val = 5;
unsigned a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
void f(unsigned *p, unsigned *a2, int i) {
  if (p) a2[i] += *p;
  else a2[i] = 1;
  a2[i] <<= a2[i+1];
}
unsigned run(int usep) {
  if (usep) f(&val, a, 2);
  else f((unsigned*)0, a, 2);
  return a[2];
}`
	// with p: a[2] = (3+5) << a[3] = 8 << 4 = 128
	res, _ := runBoth(t, src, "run", []int64{1})
	if res.Value != 128 {
		t.Errorf("run(1) = %d, want 128", res.Value)
	}
	// without p: a[2] = 1 << 4 = 16
	res, _ = runBoth(t, src, "run", []int64{0})
	if res.Value != 16 {
		t.Errorf("run(0) = %d, want 16", res.Value)
	}
}

func TestSimCalls(t *testing.T) {
	src := `
int sq(int x) { return x * x; }
int f(int n) { return sq(n) + sq(n + 1); }
`
	res, _ := runBoth(t, src, "f", []int64{3})
	if res.Value != 25 {
		t.Errorf("f(3) = %d, want 25", res.Value)
	}
}

func TestSimRecursion(t *testing.T) {
	src := `
int fact(int n) {
  if (n < 2) return 1;
  return n * fact(n - 1);
}`
	res, _ := runBoth(t, src, "fact", []int64{6})
	if res.Value != 720 {
		t.Errorf("fact(6) = %d, want 720", res.Value)
	}
}

func TestSimPointerParams(t *testing.T) {
	src := `
int x[4] = {10, 20, 30, 40};
int y[4];
void copy4(int *dst, int *src) {
  int i;
  for (i = 0; i < 4; i++) dst[i] = src[i];
}
int run(void) {
  copy4(y, x);
  return y[0] + y[3];
}`
	res, _ := runBoth(t, src, "run", nil)
	if res.Value != 50 {
		t.Errorf("run() = %d, want 50", res.Value)
	}
}

func TestSimCharShortTypes(t *testing.T) {
	src := `
char buf[8];
int f(int v) {
  buf[0] = (char)v;
  buf[1] = (char)(v >> 8);
  unsigned char u = buf[0];
  short s = (short)(v * 3);
  return u + s + buf[1];
}`
	runBoth(t, src, "f", []int64{300})
	runBoth(t, src, "f", []int64{-1})
	runBoth(t, src, "f", []int64{127})
	runBoth(t, src, "f", []int64{128})
}

func TestSimDoWhileBreakContinue(t *testing.T) {
	src := `
int f(int n) {
  int s = 0;
  int i = 0;
  do {
    i++;
    if (i == 3) continue;
    if (i > n) break;
    s += i;
  } while (i < 100);
  return s;
}`
	runBoth(t, src, "f", []int64{7})
	runBoth(t, src, "f", []int64{0})
	runBoth(t, src, "f", []int64{2})
}

func TestSimShortCircuit(t *testing.T) {
	src := `
int g;
int f(int *p, int x) {
  if (p && *p > 3) g = 1; else g = 2;
  return g + (x > 0 || x < -10);
}`
	p := compileProgram(t, src+`
int v = 9;
int run(int usep, int x) { if (usep) return f(&v, x); return f((int*)0, x); }`)
	for _, tc := range [][2]int64{{1, 5}, {0, 5}, {1, -20}, {0, 0}} {
		dfRes, err := Run(p, "run", tc[:], DefaultConfig())
		if err != nil {
			t.Fatalf("dataflow run(%v): %v", tc, err)
		}
		it := interp.New(p, memsys.PerfectConfig())
		itRes, err := it.Run("run", tc[:])
		if err != nil {
			t.Fatalf("interp: %v", err)
		}
		if dfRes.Value != itRes.Value {
			t.Errorf("run(%v): dataflow=%d interp=%d", tc, dfRes.Value, itRes.Value)
		}
	}
}

func TestSimUnsignedOps(t *testing.T) {
	src := `
unsigned f(unsigned a, unsigned b) {
  unsigned q = a / b;
  unsigned r = a % b;
  unsigned s = a >> 3;
  int lt = a < b;
  return q + r + s + lt;
}`
	runBoth(t, src, "f", []int64{100, 7})
	// 0xFFFFFFF0 as canonical sign-extended form.
	runBoth(t, src, "f", []int64{int64(int32(-16)), 3})
}

func TestSimDivByZeroYieldsZero(t *testing.T) {
	src := `int f(int a, int b) { return a / b; }`
	res, _ := runBoth(t, src, "f", []int64{5, 0})
	if res.Value != 0 {
		t.Errorf("5/0 = %d, want 0 (hardware semantics)", res.Value)
	}
}

func TestSimNestedLoops(t *testing.T) {
	src := `
int m[6][6];
int f(int n) {
  int i;
  int j;
  int s = 0;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      m[i][j] = i * 10 + j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      s += m[i][j];
  return s;
}`
	runBoth(t, src, "f", []int64{6})
	runBoth(t, src, "f", []int64{1})
}

func TestSimStringData(t *testing.T) {
	src := `
int strsum(const char *s, int n) {
  int i;
  int t = 0;
  for (i = 0; i < n; i++) t += s[i];
  return t;
}
int run(void) { return strsum("AB", 2); }`
	res, _ := runBoth(t, src, "run", nil)
	if res.Value != 'A'+'B' {
		t.Errorf("strsum = %d", res.Value)
	}
}

func TestSimMemoryInspection(t *testing.T) {
	src := `
int out[4];
void f(void) {
  int i;
  for (i = 0; i < 4; i++) out[i] = (i + 1) * 11;
}`
	p := compileProgram(t, src)
	_, insp, err := RunInspect(p, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var outObj uint32
	for _, o := range p.Alias.Objects {
		if o.Name == "out" {
			outObj, _ = p.Layout.AddressOfObject(o.ID)
		}
	}
	for i := 0; i < 4; i++ {
		got := insp.ReadWord(outObj + uint32(4*i))
		if got != int64((i+1)*11) {
			t.Errorf("out[%d] = %d, want %d", i, got, (i+1)*11)
		}
	}
}

func TestSimRealisticMemorySlower(t *testing.T) {
	// Cold reads so the realistic hierarchy actually misses (a store
	// loop first would warm the L1 and hide the difference).
	src := `
int a[1024];
int f(void) {
  int i;
  int s = 0;
  for (i = 0; i < 1024; i++) s += a[i];
  return s;
}`
	p := compileProgram(t, src)
	fast, err := Run(p, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	slowCfg := DefaultConfig()
	slowCfg.Mem = memsys.PaperConfig(2)
	slow, err := Run(p, "f", nil, slowCfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Value != fast.Value {
		t.Errorf("values differ across memory systems: %d vs %d", slow.Value, fast.Value)
	}
	if slow.Stats.Cycles <= fast.Stats.Cycles {
		t.Errorf("realistic memory (%d cycles) not slower than perfect (%d)", slow.Stats.Cycles, fast.Stats.Cycles)
	}
	if slow.Stats.Mem.L1Misses == 0 {
		t.Error("no L1 misses on a 1KB array walk?")
	}
}

func TestSimSquashedMemOps(t *testing.T) {
	src := `
int g;
int f(int c) {
  if (c) g = 5;
  return 1;
}`
	p := compileProgram(t, src)
	res, err := Run(p, "f", []int64{0}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DynStores != 0 {
		t.Errorf("store executed despite false predicate (DynStores=%d)", res.Stats.DynStores)
	}
	if res.Stats.NullMem == 0 {
		t.Error("no squashed memory op counted")
	}
}

func TestSimLoopPipelineBeatsSequentialShape(t *testing.T) {
	// A loop over a large array with independent iterations should
	// execute in far fewer cycles on the dataflow machine than the
	// in-order interpreter model (the headline spatial-computation
	// claim, in shape).
	src := `
int a[512];
int b[512];
void f(void) {
  int i;
  for (i = 0; i < 512; i++) b[i] = a[i] * 3 + 1;
}`
	p := compileProgram(t, src)
	df, err := Run(p, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(p, memsys.PerfectConfig())
	seq, err := it.Run("f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if df.Stats.Cycles >= seq.SeqCycles {
		t.Errorf("dataflow (%d cycles) not faster than sequential (%d)", df.Stats.Cycles, seq.SeqCycles)
	}
}

func TestSimEdgeCapTwoStillCorrect(t *testing.T) {
	src := `
int a[64];
int f(void) {
  int i;
  int s = 0;
  for (i = 0; i < 64; i++) a[i] = i * i;
  for (i = 0; i < 64; i++) s += a[i];
  return s;
}`
	p := compileProgram(t, src)
	c1 := DefaultConfig()
	c2 := DefaultConfig()
	c2.EdgeCap = 2
	r1, err := Run(p, "f", nil, c1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p, "f", nil, c2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != r2.Value {
		t.Errorf("edge capacity changed the result: %d vs %d", r1.Value, r2.Value)
	}
}

func TestRunProfiled(t *testing.T) {
	src := `
int a[32];
int f(void) {
  int i;
  int s = 0;
  for (i = 0; i < 32; i++) a[i] = i;
  for (i = 0; i < 32; i++) s += a[i];
  return s;
}`
	p := compileProgram(t, src)
	res, prof, err := RunProfiled(p, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 496 {
		t.Errorf("value = %d", res.Value)
	}
	if prof.ByKind["load"] == 0 || prof.ByKind["store"] == 0 {
		t.Errorf("profile missing memory ops: %v", prof.ByKind)
	}
	hot := prof.Hot(5)
	if len(hot) != 5 {
		t.Fatalf("hot = %d entries", len(hot))
	}
	// The hottest node should have fired around once per loop iteration.
	if hot[0].Count < 30 {
		t.Errorf("hottest node fired only %d times", hot[0].Count)
	}
	if out := prof.Format(3); len(out) == 0 {
		t.Error("empty profile output")
	}
	// Total profiled fires must equal the OpsFired statistic.
	var total int64
	for _, c := range prof.ByKind {
		total += c
	}
	if total != res.Stats.OpsFired {
		t.Errorf("profile total %d != OpsFired %d", total, res.Stats.OpsFired)
	}
}
