package dataflow

import (
	"fmt"

	"spatial/internal/cminor"
	"spatial/internal/pegasus"
	"spatial/internal/trace"
)

// Operation latencies in cycles, mirroring a SimpleScalar pisa pipeline
// (paper Section 7.3: "each operation has the same latency as in a pisa
// architecture SimpleScalar simulator").
func opLatency(n *pegasus.Node) int64 {
	switch n.Kind {
	case pegasus.KBinOp:
		switch n.BinOp {
		case cminor.OpMul:
			return 3
		case cminor.OpDiv, cminor.OpRem:
			return 20
		default:
			return 1
		}
	case pegasus.KMerge:
		return 0
	default:
		return 1
	}
}

// tryFire attempts to fire a node instance, repeating while it remains
// firable (queued inputs can enable several firings at the same cycle).
func (m *machine) tryFire(a *activation, n *pegasus.Node) {
	for m.fireOnce(a, n) {
	}
}

// fireOnce checks firability and executes a single firing. It returns
// true when the node fired.
func (m *machine) fireOnce(a *activation, n *pegasus.Node) bool {
	if a.done || a.gi.static[n.ID] || n.Dead {
		return false
	}
	if m.inj != nil {
		if thaw := m.inj.FrozenUntil(m.now, a.gi.g.Name, n.ID); thaw > m.now {
			// Frozen: recheck when the freeze expires.
			m.pushCheck(thaw, a, n)
			return false
		}
	}
	if a.gi.dynIns[n.ID] == 0 && n.Kind != pegasus.KEntryTok {
		// No wave signal: fire exactly once per activation.
		ns := &a.st.nodes[n.ID]
		if ns.firedOnce {
			return false
		}
		fired := m.dispatchTraced(a, n)
		if fired {
			ns.firedOnce = true
		}
		return fired
	}
	return m.dispatchTraced(a, n)
}

// dispatchTraced brackets a dispatch with the tracer's firing lifecycle:
// a candidate record opens before the attempt and commits only if the
// node actually fired. Consume/Emit hooks inside the attempt fill in the
// last-arriving input and output times.
func (m *machine) dispatchTraced(a *activation, n *pegasus.Node) bool {
	if m.tracer == nil {
		return m.dispatch(a, n)
	}
	m.tracer.BeginFiring(int32(a.id), a.gi.g.Name, n)
	fired := m.dispatch(a, n)
	m.tracer.EndFiring(m.now, fired)
	return fired
}

// stallInputs records a blocked fire attempt caused by a missing input,
// classified as token wait when the first missing input is a token port
// and data wait otherwise. It always returns false so failure sites can
// `return m.stallInputs(a, n)`.
func (m *machine) stallInputs(a *activation, n *pegasus.Node) bool {
	if m.tracer == nil {
		return false
	}
	cause := trace.StallData
	found := false
	n.EachInput(func(r *pegasus.Ref, cls pegasus.Port, idx int) {
		if found || !r.Valid() || m.inputReady(a, n, cls, idx, *r) {
			return
		}
		found = true
		if cls == pegasus.PortTok {
			cause = trace.StallToken
		}
	})
	m.tracer.Stall(n, cause)
	return false
}

// stallBack records a blocked fire attempt caused by a full output edge.
func (m *machine) stallBack(n *pegasus.Node) bool {
	if m.tracer != nil {
		m.tracer.Stall(n, trace.StallBackpressure)
	}
	return false
}

// stallTok records a blocked fire attempt waiting on a token (tokgen
// credit wait).
func (m *machine) stallTok(n *pegasus.Node) bool {
	if m.tracer != nil {
		m.tracer.Stall(n, trace.StallToken)
	}
	return false
}

func (m *machine) dispatch(a *activation, n *pegasus.Node) bool {
	switch n.Kind {
	case pegasus.KMerge:
		return m.fireMerge(a, n)
	case pegasus.KEta:
		return m.fireEta(a, n)
	case pegasus.KTokenGen:
		return m.fireTokenGen(a, n)
	case pegasus.KLoad, pegasus.KStore:
		return m.fireMemOp(a, n)
	case pegasus.KCall:
		return m.fireCall(a, n)
	case pegasus.KReturn:
		return m.fireReturn(a, n)
	case pegasus.KEntryTok:
		return false // fired once at activation start
	default:
		return m.fireSimple(a, n)
	}
}

// allInputsReady checks every declared input.
func (m *machine) allInputsReady(a *activation, n *pegasus.Node) bool {
	ready := true
	n.EachInput(func(r *pegasus.Ref, cls pegasus.Port, idx int) {
		if ready && !m.inputReady(a, n, cls, idx, *r) {
			ready = false
		}
	})
	return ready
}

// consumeAll consumes every input, returning values per port class. The
// returned slices are machine-owned scratch, valid until the next
// dispatch (dispatches never nest: a consume only schedules recheck
// events, it does not fire nodes inline).
func (m *machine) consumeAll(a *activation, n *pegasus.Node) (ins, preds, toks []int64) {
	m.insBuf = m.insBuf[:0]
	m.predsBuf = m.predsBuf[:0]
	m.toksBuf = m.toksBuf[:0]
	for i, r := range n.Ins {
		m.insBuf = append(m.insBuf, m.inputValue(a, n, pegasus.PortIn, i, r))
	}
	for i, r := range n.Preds {
		m.predsBuf = append(m.predsBuf, m.inputValue(a, n, pegasus.PortPred, i, r))
	}
	for i, r := range n.Toks {
		m.toksBuf = append(m.toksBuf, m.inputValue(a, n, pegasus.PortTok, i, r))
	}
	return m.insBuf, m.predsBuf, m.toksBuf
}

// fireSimple handles pure computational nodes (binop, unop, conv, mux,
// combine).
func (m *machine) fireSimple(a *activation, n *pegasus.Node) bool {
	if !m.allInputsReady(a, n) {
		return m.stallInputs(a, n)
	}
	outKind := pegasus.OutValue
	if !n.HasValue() && n.HasToken() {
		outKind = pegasus.OutToken
	}
	if !m.capacityFree(a, n, outKind) {
		return m.stallBack(n)
	}
	ins, preds, _ := m.consumeAll(a, n)
	m.stats.OpsFired++
	m.profile.record(n)
	t := m.now + opLatency(n)
	switch n.Kind {
	case pegasus.KBinOp:
		v, err := cminor.EvalBinOp(n.BinOp, ins[0], ins[1], n.Unsigned)
		if err != nil {
			v = 0 // hardware semantics: division by zero yields 0
		}
		m.emit(a, n, pegasus.OutValue, v, t)
	case pegasus.KUnOp:
		m.emit(a, n, pegasus.OutValue, evalUnOp(n.UnOp, ins[0]), t)
	case pegasus.KConv:
		m.emit(a, n, pegasus.OutValue, convValue(ins[0], n.ToBits, n.ConvSign), t)
	case pegasus.KMux:
		v := int64(0)
		for i, p := range preds {
			if p != 0 {
				v = ins[i]
				break
			}
		}
		m.emit(a, n, pegasus.OutValue, v, t)
	case pegasus.KCombine:
		m.emit(a, n, pegasus.OutToken, 1, t)
	case pegasus.KReturn:
		panic("unreachable")
	default:
		panic(fmt.Sprintf("fireSimple: %s", n))
	}
	return true
}

func evalUnOp(op pegasus.UnOpKind, x int64) int64 {
	switch op {
	case pegasus.UNeg:
		return int64(int32(-x))
	case pegasus.UNot:
		if x == 0 {
			return 1
		}
		return 0
	case pegasus.UBitNot:
		return int64(int32(^x))
	case pegasus.UBool:
		if x != 0 {
			return 1
		}
		return 0
	}
	panic("bad unop")
}

func convValue(v int64, bits int, signed bool) int64 {
	switch {
	case bits == 8 && signed:
		return int64(int8(v))
	case bits == 8:
		return int64(uint8(v))
	case bits == 16 && signed:
		return int64(int16(v))
	case bits == 16:
		return int64(uint16(v))
	default:
		return int64(int32(v))
	}
}

// fireMerge forwards whichever input has arrived (one per firing).
func (m *machine) fireMerge(a *activation, n *pegasus.Node) bool {
	outKind := pegasus.OutValue
	srcs := n.Ins
	cls := pegasus.PortIn
	if n.TokenOnly {
		outKind = pegasus.OutToken
		srcs = n.Toks
		cls = pegasus.PortTok
	}
	if !m.capacityFree(a, n, outKind) {
		return m.stallBack(n)
	}
	for i, r := range srcs {
		if a.gi.static[r.N.ID] {
			// Static merge inputs would fire unboundedly; the builder
			// never creates them (merge inputs are etas).
			continue
		}
		if m.has(a, n, port{cls, i}) {
			v := m.consume(a, n, port{cls, i})
			m.stats.OpsFired++
			m.profile.record(n)
			m.emit(a, n, outKind, v, m.now+opLatency(n))
			return true
		}
	}
	return false
}

// fireEta forwards its input when the predicate is true, and quietly
// consumes it otherwise.
func (m *machine) fireEta(a *activation, n *pegasus.Node) bool {
	cls := pegasus.PortIn
	outKind := pegasus.OutValue
	if n.TokenOnly {
		cls = pegasus.PortTok
		outKind = pegasus.OutToken
	}
	if !m.inputReady(a, n, pegasus.PortPred, 0, n.Preds[0]) {
		return m.stallInputs(a, n)
	}
	var dataRef pegasus.Ref
	if n.TokenOnly {
		dataRef = n.Toks[0]
	} else {
		dataRef = n.Ins[0]
	}
	if !m.inputReady(a, n, cls, 0, dataRef) {
		return m.stallInputs(a, n)
	}
	// Peek the predicate: only a true predicate needs output capacity.
	var predVal int64
	if a.gi.static[n.Preds[0].N.ID] {
		predVal = m.staticValue(a, n.Preds[0])
	} else {
		predVal = m.peek(a, n, port{pegasus.PortPred, 0})
	}
	if predVal != 0 && !m.capacityFree(a, n, outKind) {
		return m.stallBack(n)
	}
	m.inputValue(a, n, pegasus.PortPred, 0, n.Preds[0]) // consume pred
	v := m.inputValue(a, n, cls, 0, dataRef)            // consume data
	m.stats.OpsFired++
	m.profile.record(n)
	if predVal != 0 {
		m.emit(a, n, outKind, v, m.now+opLatency(n))
	}
	return true
}

// fireTokenGen implements tk(n) (paper Section 6.3): token receipts
// increment the credit counter; a true predicate emits a token when
// credit is available; a false predicate (loop exit) resets the counter.
func (m *machine) fireTokenGen(a *activation, n *pegasus.Node) bool {
	ns := &a.st.nodes[n.ID]
	// Absorb token inputs eagerly.
	if m.has(a, n, port{pegasus.PortTok, 0}) {
		m.consume(a, n, port{pegasus.PortTok, 0})
		ns.counter++
		m.stats.OpsFired++
		m.profile.record(n)
		return true
	}
	if !m.inputReady(a, n, pegasus.PortPred, 0, n.Preds[0]) {
		return m.stallInputs(a, n)
	}
	var predVal int64
	if a.gi.static[n.Preds[0].N.ID] {
		predVal = m.staticValue(a, n.Preds[0])
	} else {
		predVal = m.peek(a, n, port{pegasus.PortPred, 0})
	}
	if predVal != 0 {
		if ns.counter <= 0 {
			return m.stallTok(n) // wait for credit from the trailing loop
		}
		if !m.capacityFree(a, n, pegasus.OutToken) {
			return m.stallBack(n)
		}
		m.inputValue(a, n, pegasus.PortPred, 0, n.Preds[0])
		ns.counter--
		m.stats.OpsFired++
		m.profile.record(n)
		m.emit(a, n, pegasus.OutToken, 1, m.now+opLatency(n))
		return true
	}
	// Loop finished: reset the credit counter.
	m.inputValue(a, n, pegasus.PortPred, 0, n.Preds[0])
	ns.counter = int32(n.TokN)
	m.stats.OpsFired++
	m.profile.record(n)
	return true
}

// fireMemOp executes a load or store: a false predicate squashes the
// access and forwards the token immediately (paper Section 3.1).
func (m *machine) fireMemOp(a *activation, n *pegasus.Node) bool {
	if !m.allInputsReady(a, n) {
		return m.stallInputs(a, n)
	}
	needVal := n.Kind == pegasus.KLoad && len(a.gi.valConsumers[n.ID]) > 0
	if needVal && !m.capacityFree(a, n, pegasus.OutValue) {
		return m.stallBack(n)
	}
	if !m.capacityFree(a, n, pegasus.OutToken) {
		return m.stallBack(n)
	}
	ins, preds, _ := m.consumeAll(a, n)
	m.stats.OpsFired++
	m.profile.record(n)
	if preds[0] == 0 {
		// Squashed: arbitrary value, immediate token.
		m.stats.NullMem++
		if n.Kind == pegasus.KLoad {
			m.emit(a, n, pegasus.OutValue, 0, m.now+1)
		}
		m.emit(a, n, pegasus.OutToken, 1, m.now+1)
		return true
	}
	addr := uint32(ins[0])
	if n.Kind == pegasus.KLoad {
		m.stats.DynLoads++
		done := m.msys.Submit(m.now, true, addr, n.Bytes)
		v := m.readMem(addr, n.Bytes, n.VT.Signed)
		m.emit(a, n, pegasus.OutValue, v, done)
		m.emit(a, n, pegasus.OutToken, 1, m.now+1)
	} else {
		m.stats.DynStores++
		m.msys.Submit(m.now, false, addr, n.Bytes)
		m.writeMem(addr, n.Bytes, ins[1])
		m.emit(a, n, pegasus.OutToken, 1, m.now+1)
	}
	if m.inj != nil && m.msys.TakeFault() {
		// An injected memory fault: detected, never silently absorbed.
		m.fail(fmt.Errorf("%w: %s at address 0x%x, cycle %d", ErrMemFault, n, addr, m.now))
	}
	if m.tracer != nil {
		// The token is released at issue, one cycle after firing — before
		// the response returns; this early release is what lets dependent
		// memory operations overlap (paper Section 6).
		m.tracer.TokenRelease()
	}
	return true
}

// fireCall instantiates the callee; a false predicate squashes it.
func (m *machine) fireCall(a *activation, n *pegasus.Node) bool {
	if !m.allInputsReady(a, n) {
		return m.stallInputs(a, n)
	}
	if n.HasValue() && !m.capacityFree(a, n, pegasus.OutValue) {
		return m.stallBack(n)
	}
	if !m.capacityFree(a, n, pegasus.OutToken) {
		return m.stallBack(n)
	}
	ins, preds, _ := m.consumeAll(a, n)
	m.stats.OpsFired++
	m.profile.record(n)
	if preds[0] == 0 {
		if n.HasValue() {
			m.emit(a, n, pegasus.OutValue, 0, m.now+1)
		}
		m.emit(a, n, pegasus.OutToken, 1, m.now+1)
		return true
	}
	callee := m.prog.Graph(n.Callee.Name)
	if callee == nil {
		m.fail(fmt.Errorf("%w: %s (extern declaration with no body?)", ErrUnbuiltCall, n.Callee.Name))
		return false
	}
	if m.nextActID >= m.cfg.MaxActivations {
		m.fail(fmt.Errorf("%w: %d activations, calling %s at cycle %d",
			ErrActivationLimit, m.nextActID, n.Callee.Name, m.now))
		return false
	}
	m.stats.Calls++
	m.newActivation(callee, ins, n, a)
	return true
}

// fireReturn completes an activation.
func (m *machine) fireReturn(a *activation, n *pegasus.Node) bool {
	if !m.allInputsReady(a, n) {
		return m.stallInputs(a, n)
	}
	ins, _, _ := m.consumeAll(a, n)
	m.stats.OpsFired++
	m.profile.record(n)
	var val int64
	if len(ins) > 0 {
		val = ins[0]
	}
	m.complete(a)
	if a.retTo == nil {
		m.mainVal = val
		m.mainDone = true
		if m.tracer != nil {
			m.tracer.MarkFinal()
		}
		return true
	}
	call := a.retTo
	if call.HasValue() {
		m.emit(a.retAct, call, pegasus.OutValue, val, m.now+1)
	}
	m.emit(a.retAct, call, pegasus.OutToken, 1, m.now+1)
	return true
}

// --- memory data access ---

func (m *machine) readMem(addr uint32, bytes int, signed bool) int64 {
	if int(addr)+bytes > len(m.mem) {
		return 0 // out-of-range reads yield 0, like an open bus
	}
	var raw uint32
	for i := 0; i < bytes; i++ {
		raw |= uint32(m.mem[addr+uint32(i)]) << (8 * i)
	}
	switch {
	case bytes == 1 && signed:
		return int64(int8(raw))
	case bytes == 1:
		return int64(uint8(raw))
	case bytes == 2 && signed:
		return int64(int16(raw))
	case bytes == 2:
		return int64(uint16(raw))
	default:
		return int64(int32(raw))
	}
}

func (m *machine) writeMem(addr uint32, bytes int, v int64) {
	if int(addr)+bytes > len(m.mem) {
		return
	}
	for i := 0; i < bytes; i++ {
		m.mem[addr+uint32(i)] = byte(v >> (8 * i))
	}
}

// Inspector reads a simulation's memory post-mortem — used by tests and
// the harness to check program outputs. See RunInspect.
type Inspector struct {
	m *machine
}

// ReadWord reads a 4-byte word at an absolute simulated address.
func (ins *Inspector) ReadWord(addr uint32) int64 { return ins.m.readMem(addr, 4, true) }

// ReadBytes copies out simulated memory.
func (ins *Inspector) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	copy(out, ins.m.mem[addr:int(addr)+n])
	return out
}
