package dataflow

import (
	"errors"
	"testing"

	"spatial/internal/faultsim"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
)

const faultLoopSrc = `
int a[32];
int f(void) {
  int i;
  int s = 0;
  for (i = 0; i < 32; i++) a[i] = i * 7;
  for (i = 0; i < 32; i++) s = s * 3 + a[i];
  return s & 0xffffff;
}`

// TestDelayFaultsAbsorbed: a latency-insensitive circuit must produce the
// identical result under arbitrary injected delays — edge jitter, frozen
// nodes, stretched memory responses — only the schedule may change.
func TestDelayFaultsAbsorbed(t *testing.T) {
	p := optProgram(t, faultLoopSrc, opt.Full)
	want, err := Run(p, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		inj := faultsim.NewJitter(seed, 0.2, 6)
		res, err := RunFaulted(nil, p, "f", nil, DefaultConfig(), inj)
		if err != nil {
			t.Fatalf("seed %d: jitter not absorbed: %v", seed, err)
		}
		if res.Value != want.Value {
			t.Fatalf("seed %d: jitter changed the result: %d vs %d", seed, res.Value, want.Value)
		}
	}
	plans := []faultsim.Plan{
		{Faults: []faultsim.Fault{{Op: faultsim.Freeze, Node: -1, Edge: -1, Nth: 9, Cycles: 100}}},
		{Faults: []faultsim.Fault{{Op: faultsim.MemStretch, Node: -1, Edge: -1, Nth: 3, Cycles: 200}}},
		{Faults: []faultsim.Fault{{Op: faultsim.Delay, Node: -1, Edge: -1, Nth: 40, Cycles: 64}}},
	}
	for i, plan := range plans {
		inj := faultsim.New(plan)
		res, err := RunFaulted(nil, p, "f", nil, DefaultConfig(), inj)
		if err != nil {
			t.Fatalf("plan %d (%v): not absorbed: %v", i, plan, err)
		}
		if res.Value != want.Value {
			t.Fatalf("plan %d (%v): changed the result: %d vs %d", i, plan, res.Value, want.Value)
		}
		if len(inj.Triggered()) == 0 {
			t.Fatalf("plan %d (%v): never triggered", i, plan)
		}
	}
}

// TestDroppedTokenDiagnosed is the headline robustness scenario: drop the
// first token a store emits and the memory-dependence chain starves; the
// run must end in a diagnosed deadlock whose report names the starved
// consumer of exactly that token.
func TestDroppedTokenDiagnosed(t *testing.T) {
	p := optProgram(t, faultLoopSrc, opt.None)
	g := p.Graph("f")
	store := findKind(g, pegasus.KStore)
	if store == nil {
		t.Fatal("no store in test program")
	}
	inj := faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
		{Op: faultsim.Drop, Graph: "f", Node: store.ID, Edge: -1, Token: true, Nth: 1},
	}})
	_, err := RunFaulted(nil, p, "f", nil, DefaultConfig(), inj)
	if err == nil {
		t.Fatal("dropped token was silently absorbed")
	}
	if len(inj.Triggered()) != 1 {
		t.Fatalf("drop never triggered: %v", inj.Triggered())
	}
	var de *DeadlockError
	var le *LivelockError
	var report *StuckReport
	switch {
	case errors.As(err, &de):
		report = de.Report
	case errors.As(err, &le):
		report = le.Report
	default:
		t.Fatalf("want a diagnosed deadlock/livelock, got %v", err)
	}
	// The starved node is a token consumer of the store; at least one
	// must appear in the report, blocked on a token wait.
	found := false
	for _, b := range report.Blocked {
		for _, w := range b.Waits {
			if w.Kind == WaitToken && w.Peer.ID == store.ID {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("report does not name a starved consumer of the store's token:\n%s", report.Render())
	}
}

// TestDroppedValueWedgesLoopRing: every dropped value delivery must land
// in one of exactly three outcomes — absorbed (checksum intact), a
// diagnosed deadlock with a non-empty report, or a wrong checksum WITH
// the drop on the injector's trigger log (a loss past a merge can
// misalign iteration streams and still complete; the circuit cannot see
// that, so the trigger record is what lets a differential oracle catch
// it). A wrong answer with no trigger on record is the only illegal
// outcome. Most drops in a loop ring must actually wedge it.
func TestDroppedValueWedgesLoopRing(t *testing.T) {
	p := optProgram(t, faultLoopSrc, opt.None)
	want, err := Run(p, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wedged, misaligned int
	for nth := 1; nth <= 120; nth += 17 {
		inj := faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
			{Op: faultsim.Drop, Graph: "f", Node: -1, Edge: -1, Nth: nth},
		}})
		res, err := RunFaulted(nil, p, "f", nil, DefaultConfig(), inj)
		if err == nil {
			if res.Value != want.Value {
				if len(inj.Triggered()) == 0 {
					t.Fatalf("nth=%d: wrong answer %d vs %d with NO fault on record", nth, res.Value, want.Value)
				}
				misaligned++
			}
			continue
		}
		var de *DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("nth=%d: want *DeadlockError, got %v", nth, err)
		}
		if len(de.Report.Blocked) == 0 {
			t.Fatalf("nth=%d: empty report:\n%s", nth, de.Report.Render())
		}
		wedged++
	}
	if wedged == 0 {
		t.Fatalf("no drop wedged the loop ring (misaligned=%d)", misaligned)
	}
	t.Logf("drops: %d wedged with diagnosis, %d oracle-visible misalignments", wedged, misaligned)
}

// TestMemFailDetected: a corrupted memory response must abort the run
// with ErrMemFault — never complete with a wrong answer.
func TestMemFailDetected(t *testing.T) {
	p := optProgram(t, faultLoopSrc, opt.None)
	inj := faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
		{Op: faultsim.MemFail, Node: -1, Edge: -1, Nth: 1},
	}})
	_, err := RunFaulted(nil, p, "f", nil, DefaultConfig(), inj)
	if !errors.Is(err, ErrMemFault) {
		t.Fatalf("want ErrMemFault, got %v", err)
	}
}

// TestDuplicateDeliveryNotSilent: duplicating a delivery either gets
// absorbed, detected, or — the tolerated worst case — changes the result
// only when the injector says it actually fired. A changed result with no
// trigger record would mean the injector perturbs runs it claims not to
// touch.
func TestDuplicateDeliveryNotSilent(t *testing.T) {
	p := optProgram(t, faultLoopSrc, opt.Full)
	want, err := Run(p, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj := faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
		{Op: faultsim.Duplicate, Graph: "nosuch", Node: -1, Edge: -1, Nth: 1},
	}})
	res, err := RunFaulted(nil, p, "f", nil, DefaultConfig(), inj)
	if err != nil || res.Value != want.Value || len(inj.Triggered()) != 0 {
		t.Fatalf("non-matching plan perturbed the run: %v %v %v", res, err, inj.Triggered())
	}
}
