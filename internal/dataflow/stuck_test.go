package dataflow

import (
	"errors"
	"strings"
	"testing"

	"spatial/internal/cminor"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
)

// findKind returns the first live node of the given kind.
func findKind(g *pegasus.Graph, k pegasus.Kind) *pegasus.Node {
	for _, n := range g.Nodes {
		if !n.Dead && n.Kind == k {
			return n
		}
	}
	return nil
}

func sccHasNode(r *StuckReport, id int) bool {
	for _, b := range r.SCC {
		if b.Node.ID == id {
			return true
		}
	}
	return false
}

// TestStuckTokenCycle: two combine nodes in a mutual token wait are the
// purest deadlock cycle; the report's SCC must name exactly those two
// nodes. (The mutilated graph is intentionally cyclic on forward edges,
// so Verify is not consulted — this probes the diagnoser, not the
// builder.)
func TestStuckTokenCycle(t *testing.T) {
	p := compileProgram(t, `int f(int a) { return a + 1; }`)
	g := p.Graph("f")
	h := g.Ret.Hyper
	c1 := g.NewNode(pegasus.KCombine, h)
	c2 := g.NewNode(pegasus.KCombine, h)
	c1.Toks = []pegasus.Ref{pegasus.T(c2), pegasus.T(g.Entry)}
	c2.Toks = []pegasus.Ref{pegasus.T(c1)}
	g.Ret.Toks = []pegasus.Ref{pegasus.T(c1)}

	_, err := Run(p, "f", []int64{1}, DefaultConfig())
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	r := de.Report
	if r.Kind != "deadlock" {
		t.Fatalf("report kind = %q", r.Kind)
	}
	if len(r.SCC) != 2 || !sccHasNode(r, c1.ID) || !sccHasNode(r, c2.ID) {
		t.Fatalf("SCC should be exactly the combine pair {n%d, n%d}:\n%s", c1.ID, c2.ID, r.Render())
	}
	for _, b := range r.SCC {
		if len(b.Waits) == 0 || b.Waits[0].Kind != WaitToken {
			t.Fatalf("combine should be token-waiting: %+v", b)
		}
	}
	if !strings.Contains(r.Render(), "wait cycle") {
		t.Fatalf("rendering should announce the wait cycle:\n%s", r.Render())
	}
}

// TestStuckStarvedMux: a mux whose data input is rerouted through an
// eta that never forwards (constant-false predicate) starves forever.
// Starvation is an acyclic wait chain — no SCC — but the report must
// name the mux and the eta it waits on.
func TestStuckStarvedMux(t *testing.T) {
	src := `
int tbl[4];
int f(int a) {
  int r;
  if (a > 0) { r = tbl[0]; } else { r = tbl[1]; }
  return r;
}`
	p := compileProgram(t, src)
	g := p.Graph("f")
	mux := findKind(g, pegasus.KMux)
	if mux == nil {
		t.Skip("no mux produced by this build")
	}
	victim := mux.Ins[0]
	eta := g.NewNode(pegasus.KEta, mux.Hyper)
	eta.VT = victim.N.VT
	eta.Ins = []pegasus.Ref{victim}
	eta.Preds = []pegasus.Ref{pegasus.V(g.ConstPred(mux.Hyper, false))}
	mux.Ins[0] = pegasus.V(eta)
	if err := g.Verify(); err != nil {
		t.Fatalf("mutilated graph should still be structurally valid: %v", err)
	}

	_, err := Run(p, "f", []int64{1}, DefaultConfig())
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	r := de.Report
	if !r.ContainsNode("f", mux.ID) {
		t.Fatalf("report should name the starved mux n%d:\n%s", mux.ID, r.Render())
	}
	var muxEntry *BlockedNode
	for i := range r.Blocked {
		if r.Blocked[i].Node.ID == mux.ID {
			muxEntry = &r.Blocked[i]
		}
	}
	if len(muxEntry.Waits) == 0 || muxEntry.Waits[0].Peer.ID != eta.ID || muxEntry.Waits[0].Kind != WaitData {
		t.Fatalf("mux should data-wait on the starving eta n%d: %+v", eta.ID, muxEntry)
	}
	if len(r.SCC) != 0 {
		t.Fatalf("pure starvation should have no wait cycle:\n%s", r.Render())
	}
}

// TestStuckBackpressureLoop: a never-firing extra consumer on a
// loop-carried value fills its input edge (EdgeCap 1), so the loop's
// merge wedges on backpressure; the report must show the merge blocked
// by the full edge to that consumer.
func TestStuckBackpressureLoop(t *testing.T) {
	src := `
int g;
int f(int n) {
  int i;
  for (i = 0; i < n; i++) { g = g + i; }
  return g;
}`
	p := compileProgram(t, src)
	g := p.Graph("f")
	// The loop-carried i lives in a merge inside the loop hyperblock.
	var merge *pegasus.Node
	for _, n := range g.Nodes {
		if !n.Dead && n.Kind == pegasus.KMerge && !n.TokenOnly && g.Hypers[n.Hyper].IsLoop {
			merge = n
			break
		}
	}
	if merge == nil {
		t.Skip("no loop value merge produced by this build")
	}
	// An extra consumer that also needs a value that never arrives: the
	// starving eta idiom again, feeding the second operand.
	starve := g.NewNode(pegasus.KEta, merge.Hyper)
	starve.VT = merge.VT
	starve.Ins = []pegasus.Ref{pegasus.V(merge)}
	starve.Preds = []pegasus.Ref{pegasus.V(g.ConstPred(merge.Hyper, false))}
	sink := g.NewNode(pegasus.KBinOp, merge.Hyper)
	sink.BinOp = cminor.OpAdd
	sink.VT = merge.VT
	sink.Ins = []pegasus.Ref{pegasus.V(merge), pegasus.V(starve)}
	if err := g.Verify(); err != nil {
		t.Fatalf("mutilated graph should still be structurally valid: %v", err)
	}

	cfg := DefaultConfig()
	cfg.EdgeCap = 1
	_, err := Run(p, "f", []int64{8}, cfg)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	r := de.Report
	var mergeEntry *BlockedNode
	for i := range r.Blocked {
		if r.Blocked[i].Node.ID == merge.ID {
			mergeEntry = &r.Blocked[i]
		}
	}
	if mergeEntry == nil {
		t.Fatalf("report should name the backpressured merge n%d:\n%s", merge.ID, r.Render())
	}
	foundBP := false
	for _, w := range mergeEntry.Waits {
		if w.Kind == WaitBackpressure && w.Peer.ID == sink.ID {
			foundBP = true
		}
	}
	if !foundBP {
		t.Fatalf("merge should be blocked by the full edge to the sink n%d: %+v\n%s", sink.ID, mergeEntry, r.Render())
	}
	if !strings.Contains(r.Render(), "backpressure") {
		t.Fatalf("rendering should mention backpressure:\n%s", r.Render())
	}
}

// TestLivelockReportsBudget: an over-budget loop yields a typed
// *LivelockError carrying the budget and a report.
func TestLivelockReportsBudget(t *testing.T) {
	src := `
int g;
int f(void) {
  int i;
  for (i = 0; i < 1000000; i++) { g = g + 1; }
  return g;
}`
	p := compileProgram(t, src)
	cfg := DefaultConfig()
	cfg.MaxCycles = 5000
	_, err := Run(p, "f", nil, cfg)
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("want *LivelockError, got %v", err)
	}
	if le.MaxCycles != 5000 || le.Report == nil || le.Report.Kind != "livelock" {
		t.Fatalf("livelock detail wrong: %+v", le)
	}
}

// TestConfigValidate: nonsensical simulator configurations are rejected
// with actionable messages instead of misbehaving at run time.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.EdgeCap = -1 }, "EdgeCap"},
		{func(c *Config) { c.MaxCycles = -5 }, "MaxCycles"},
		{func(c *Config) { c.MaxActivations = -2 }, "MaxActivations"},
		{func(c *Config) { c.Mem.Ports = -1 }, "Ports"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate() = %v; want mention of %s", err, tc.want)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config must validate (zero means default): %v", err)
	}
	p := compileProgram(t, `int f(void) { return 4; }`)
	bad := DefaultConfig()
	bad.EdgeCap = -3
	if _, err := Run(p, "f", nil, bad); err == nil {
		t.Error("Run accepted an invalid config")
	}
}

// TestUnbuiltCallTypedError: calling an extern declaration surfaces the
// ErrUnbuiltCall sentinel instead of panicking.
func TestUnbuiltCallTypedError(t *testing.T) {
	src := `
int ext(int x);
int f(void) { return ext(3); }`
	p := optProgram(t, src, opt.None)
	_, err := Run(p, "f", nil, DefaultConfig())
	if !errors.Is(err, ErrUnbuiltCall) {
		t.Fatalf("want ErrUnbuiltCall, got %v", err)
	}
}
