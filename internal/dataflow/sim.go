// Package dataflow executes Pegasus graphs with self-timed
// (asynchronous-circuit) semantics, the execution model of spatial
// computation: every operation is its own functional unit, producers
// handshake with consumers over point-to-point edges with bounded
// buffering, memory operations flow through a load/store queue into a
// modeled cache hierarchy, and procedure calls instantiate the callee's
// graph. This is the "coarse hardware simulator" of the paper's
// Section 7.3.
//
// The engine's data layout is designed for allocation-free steady-state
// execution (see DESIGN.md "Simulator internals"): per-node input latches
// are dense slices indexed by port offsets precomputed in graphInfo, the
// event queue is a typed 4-ary heap over slab indices (events recycled,
// never garbage), and per-activation state is one flat allocation pooled
// across activations of the same function.
package dataflow

import (
	"context"
	"fmt"
	"sync"

	"spatial/internal/cminor"
	"spatial/internal/faultsim"
	"spatial/internal/memsys"
	"spatial/internal/pegasus"
	"spatial/internal/trace"
)

// Config parameterizes a simulation.
type Config struct {
	Mem memsys.Config
	// EdgeCap is the per-edge buffer depth (1 = single-register wires).
	EdgeCap int
	// MaxCycles aborts runaway simulations.
	MaxCycles int64
	// MaxActivations bounds recursion/parallel call fan-out.
	MaxActivations int
}

// DefaultConfig returns the standard simulation setup: one-place edges on
// a dual-ported perfect memory.
func DefaultConfig() Config {
	return Config{Mem: memsys.PerfectConfig(), EdgeCap: 1, MaxCycles: 200_000_000, MaxActivations: 1 << 20}
}

func (c Config) withDefaults() Config {
	if c.Mem == (memsys.Config{}) {
		c.Mem = memsys.PerfectConfig()
	}
	if c.EdgeCap <= 0 {
		c.EdgeCap = 1
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 200_000_000
	}
	if c.MaxActivations <= 0 {
		c.MaxActivations = 1 << 20
	}
	return c
}

// Validate rejects nonsensical configurations with actionable messages.
// Zero fields mean "use the default" and pass; negative values are
// errors, not silently patched. Every Run* entry point and Normalized's
// facade callers validate before defaulting.
func (c Config) Validate() error {
	if c.EdgeCap < 0 {
		return fmt.Errorf("dataflow: EdgeCap %d is negative; use 0 for the default (1) or a positive buffer depth", c.EdgeCap)
	}
	if c.MaxCycles < 0 {
		return fmt.Errorf("dataflow: MaxCycles %d is negative; use 0 for the default budget or a positive cycle count", c.MaxCycles)
	}
	if c.MaxActivations < 0 {
		return fmt.Errorf("dataflow: MaxActivations %d is negative; use 0 for the default or a positive activation bound", c.MaxActivations)
	}
	return c.Mem.Validate()
}

// Normalized returns the configuration with every zero field replaced by
// its default — exactly what a run with this Config executes under. The
// facade normalizes once at compile time so the Config it reports
// matches what actually ran; it validates first (see Validate), so
// nonsensical values fail loudly there instead of being silently fixed.
func (c Config) Normalized() Config { return c.withDefaults() }

// Stats aggregates execution statistics.
type Stats struct {
	Cycles    int64
	OpsFired  int64
	Events    int64 // simulator events processed (deliveries + checks)
	DynLoads  int64 // loads executed with a true predicate
	DynStores int64 // stores executed with a true predicate
	NullMem   int64 // memory ops squashed by a false predicate
	Calls     int64
	Mem       memsys.Stats
}

// Result is the outcome of a simulation.
type Result struct {
	Value int64
	Stats Stats
}

// port identifies one input slot of a node.
type port struct {
	cls pegasus.Port
	idx int
}

// consumerEdge is one (producer output → consumer port) edge. dstPort is
// the consumer slot's flat port index, precomputed so delivery does no
// lookups.
type consumerEdge struct {
	node    *pegasus.Node
	p       port
	dstPort int32
}

// graphInfo caches per-graph structures shared by all activations: the
// static/dynamic node classification, consumer edge lists, and the flat
// index layout (port offsets, edge-occupancy offsets) that lets one
// activation's entire dynamic state live in a handful of dense slices.
//
// Immutability contract: after buildGraphInfo returns, no field except
// pool is ever written again. Runs on any number of goroutines read the
// same graphInfo concurrently (it lives in the program's Shared table).
type graphInfo struct {
	g *pegasus.Graph
	// nodeByID maps node IDs back to nodes (dense; nil for compacted IDs).
	nodeByID []*pegasus.Node
	// consumers[nodeID] lists the edges fed by that node's output.
	valConsumers [][]consumerEdge
	tokConsumers [][]consumerEdge
	// static[nodeID] marks nodes whose value is fixed for a whole
	// activation: constants, parameters, object addresses, and pure
	// computations over those. They do not handshake; consumers read them
	// directly (in hardware they are wires from the environment).
	static []bool
	// dynIns[nodeID] counts dynamic inputs. A dynamic node with zero
	// dynamic inputs has no wave signal; it fires exactly once per
	// activation (the builder guarantees such nodes only occur in the
	// entry hyperblock, which executes once).
	dynIns []int
	// inOff/predOff/tokOff[nodeID] are the flat port-index bases of the
	// node's input classes; portIndex composes them with the slot index.
	inOff   []int32
	predOff []int32
	tokOff  []int32
	// valEdgeOff/tokEdgeOff[nodeID] are the flat occupancy-index bases of
	// the node's output edges (one counter per consumer edge).
	valEdgeOff []int32
	tokEdgeOff []int32
	// tokGens lists token-generator node IDs whose credit counters need
	// (re)initializing to TokN when an activation's state is prepared.
	tokGens  []int32
	numPorts int
	numVal   int // total value-consumer edges
	numTok   int // total token-consumer edges
	// pool recycles actState across activations of this graph, so calls
	// in steady state allocate nothing. graphInfo is shared by every run
	// of the program (see Shared), so the pool is also shared across
	// concurrent runs; sync.Pool is safe for that, and each actState is
	// owned by exactly one activation between Get and Put.
	pool sync.Pool
}

// portIndex returns the flat index of one input slot. Only dynamic nodes
// have ports; static and dead nodes are never delivered to.
func (gi *graphInfo) portIndex(n *pegasus.Node, cls pegasus.Port, idx int) int32 {
	switch cls {
	case pegasus.PortIn:
		return gi.inOff[n.ID] + int32(idx)
	case pegasus.PortPred:
		return gi.predOff[n.ID] + int32(idx)
	default:
		return gi.tokOff[n.ID] + int32(idx)
	}
}

func buildGraphInfo(g *pegasus.Graph) *graphInfo {
	gi := &graphInfo{
		g:            g,
		nodeByID:     make([]*pegasus.Node, g.MaxID()),
		valConsumers: make([][]consumerEdge, g.MaxID()),
		tokConsumers: make([][]consumerEdge, g.MaxID()),
		static:       make([]bool, g.MaxID()),
	}
	for _, n := range g.Nodes {
		if !n.Dead {
			gi.nodeByID[n.ID] = n
		}
	}
	// Static closure over pure ops (node inputs always precede uses in
	// the forward DAG; iterate to a fixpoint to be order-independent).
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Dead || gi.static[n.ID] {
				continue
			}
			s := false
			switch n.Kind {
			case pegasus.KConst, pegasus.KParam, pegasus.KAddrOf:
				s = true
			case pegasus.KBinOp, pegasus.KUnOp, pegasus.KConv, pegasus.KMux:
				s = true
				n.EachInput(func(r *pegasus.Ref, cls pegasus.Port, idx int) {
					if !r.Valid() || !gi.static[r.N.ID] {
						s = false
					}
				})
			}
			if s {
				gi.static[n.ID] = true
				changed = true
			}
		}
	}
	// Flat port layout: every dynamic node's declared inputs get
	// contiguous slots (static refs included — they are never latched,
	// but a uniform layout keeps indexing branch-free).
	gi.dynIns = make([]int, g.MaxID())
	gi.inOff = make([]int32, g.MaxID())
	gi.predOff = make([]int32, g.MaxID())
	gi.tokOff = make([]int32, g.MaxID())
	off := int32(0)
	for id := 0; id < g.MaxID(); id++ {
		n := gi.nodeByID[id]
		if n == nil || gi.static[id] {
			continue
		}
		gi.inOff[id] = off
		gi.predOff[id] = off + int32(len(n.Ins))
		gi.tokOff[id] = off + int32(len(n.Ins)+len(n.Preds))
		off += int32(len(n.Ins) + len(n.Preds) + len(n.Toks))
		if n.Kind == pegasus.KTokenGen {
			gi.tokGens = append(gi.tokGens, int32(id))
		}
	}
	gi.numPorts = int(off)
	for _, n := range g.Nodes {
		if n.Dead || gi.static[n.ID] {
			continue
		}
		user := n
		n.EachInput(func(r *pegasus.Ref, cls pegasus.Port, idx int) {
			if !r.Valid() || gi.static[r.N.ID] {
				return
			}
			gi.dynIns[user.ID]++
			e := consumerEdge{node: user, p: port{cls, idx}, dstPort: gi.portIndex(user, cls, idx)}
			if r.Out == pegasus.OutToken {
				gi.tokConsumers[r.N.ID] = append(gi.tokConsumers[r.N.ID], e)
			} else {
				gi.valConsumers[r.N.ID] = append(gi.valConsumers[r.N.ID], e)
			}
		})
	}
	// Flat occupancy layout follows the consumer lists.
	gi.valEdgeOff = make([]int32, g.MaxID())
	gi.tokEdgeOff = make([]int32, g.MaxID())
	vo, to := int32(0), int32(0)
	for id := 0; id < g.MaxID(); id++ {
		gi.valEdgeOff[id] = vo
		gi.tokEdgeOff[id] = to
		vo += int32(len(gi.valConsumers[id]))
		to += int32(len(gi.tokConsumers[id]))
	}
	gi.numVal = int(vo)
	gi.numTok = int(to)
	return gi
}

// nodeState is the dynamic state of one node instance: delivery-order
// floors, the token generator's credit counter, and the fired-once mark
// of wave-less nodes. Latches and edge occupancy live in the activation's
// flat arrays (see actState), not here.
type nodeState struct {
	// lastDeliver enforces in-order output delivery.
	lastDeliverVal int64
	lastDeliverTok int64
	// tokgen credit counter.
	counter int32
	// firedOnce marks completion of zero-dynamic-input nodes.
	firedOnce bool
}

// latchEntry is one arrived value latched at a consumer port, together
// with the producer-side bookkeeping needed to release the producer's
// edge slot on consumption (and, under tracing, attribute the arrival).
type latchEntry struct {
	val int64
	// fireSeq and at record, for tracing, which firing produced this
	// value and when it arrived.
	fireSeq  int64
	at       int64
	prodNode int32
	prodEdge int32
	prodTok  bool
}

// portQueue is the FIFO of values latched at one input port. head indexes
// the front; buf is reset (retaining capacity) whenever the queue drains,
// so steady-state operation never allocates.
type portQueue struct {
	buf  []latchEntry
	head int32
}

func (q *portQueue) size() int { return len(q.buf) - int(q.head) }

// actState is the entire dynamic state of one activation, grouped so the
// whole thing can be recycled through the graph's sync.Pool: per-node
// state, per-port latch queues, per-edge occupancy counters, memoized
// static values, and the parameter buffer.
type actState struct {
	nodes  []nodeState
	ports  []portQueue
	occVal []int32
	occTok []int32
	// nextVal/nextTok, allocated only under fault injection, track the
	// earliest legal delivery time per consumer edge so injected delays
	// preserve the edge's FIFO order (a slow wire is still a wire).
	nextVal []int64
	nextTok []int64
	// memoized values of static nodes.
	staticVals []int64
	staticOK   []bool
	params     []int64
}

func newActState(gi *graphInfo) *actState {
	return &actState{
		nodes:      make([]nodeState, gi.g.MaxID()),
		ports:      make([]portQueue, gi.numPorts),
		occVal:     make([]int32, gi.numVal),
		occTok:     make([]int32, gi.numTok),
		staticVals: make([]int64, gi.g.MaxID()),
		staticOK:   make([]bool, gi.g.MaxID()),
	}
}

// prepare resets recycled state to the pristine activation-start layout
// (fresh state from newActState is already zero except the counters).
func (st *actState) prepare(gi *graphInfo, fresh bool) {
	if !fresh {
		clear(st.nodes)
		for i := range st.ports {
			st.ports[i].buf = st.ports[i].buf[:0]
			st.ports[i].head = 0
		}
		clear(st.occVal)
		clear(st.occTok)
		clear(st.nextVal)
		clear(st.nextTok)
		clear(st.staticOK)
	}
	for _, id := range gi.tokGens {
		st.nodes[id].counter = int32(gi.nodeByID[id].TokN)
	}
}

// edgeNext returns the per-consumer-edge minimum-next-delivery array for
// one output class of node id, allocating the backing array on first use
// (fault injection only).
func (st *actState) edgeNext(gi *graphInfo, out pegasus.Out, id int) []int64 {
	if out == pegasus.OutToken {
		if st.nextTok == nil {
			st.nextTok = make([]int64, gi.numTok)
		}
		return st.nextTok[gi.tokEdgeOff[id]:]
	}
	if st.nextVal == nil {
		st.nextVal = make([]int64, gi.numVal)
	}
	return st.nextVal[gi.valEdgeOff[id]:]
}

// activation is one dynamic instance of a function.
type activation struct {
	id    int
	gi    *graphInfo
	frame uint32
	st    *actState
	done  bool
	// actsIdx is this activation's slot in machine.acts (live set).
	actsIdx int
	// doms, under partitioned execution, is this graph's node→domain
	// table (nil otherwise); see Partition.
	doms []int16
	// parent call to complete when KReturn fires.
	retTo  *pegasus.Node
	retAct *activation
}

func (a *activation) params() []int64 { return a.st.params }

// machine is the simulator. One machine executes one run; the only state
// it shares with concurrent runs of the same program is the immutable
// *Shared table (and the actState pools inside it, which are
// concurrency-safe).
type machine struct {
	prog   *pegasus.Program
	cfg    Config
	mem    []byte
	msys   *memsys.System
	shared *Shared
	events eventQueue
	// ps, when non-nil, replaces the events heap with the partitioned
	// scheduler (see psched.go); pop order is identical either way.
	ps    *partSched
	seq   int64
	now   int64
	stats Stats

	nextActID int
	// frame allocator: free frames by size, plus the live-frame count for
	// overflow diagnostics.
	sp         uint32
	liveFrames int
	freeFrames map[uint32][]uint32

	mainAct  *activation
	mainVal  int64
	mainDone bool

	// scratch buffers reused by consumeAll; a dispatch never nests inside
	// another dispatch, so one set suffices.
	insBuf   []int64
	predsBuf []int64
	toksBuf  []int64

	// profile, when non-nil, records per-node firing counts.
	profile *Profile

	// tracer, when non-nil, records the full event stream (firings,
	// stalls, memory requests). Every hook below is guarded by a nil
	// check and allocates nothing when disabled.
	tracer *trace.Tracer

	// inj, when non-nil, perturbs deliveries, fire attempts, and memory
	// responses (fault injection). Nil-guarded like the tracer.
	inj *faultsim.Injector

	// ctx, when non-nil, cancels the run between events.
	ctx     context.Context
	ctxTick int
	// err latches the first fire-path failure; the run loop stops on it.
	err error

	// acts registers every live activation for stuck-state diagnosis;
	// completed activations are removed so their state can be recycled.
	acts []*activation

	// evHook, when non-nil, observes every processed event (tests: the
	// deterministic-replay invariant). Nil-guarded like the tracer.
	evHook func(time, seq int64, act int, node *pegasus.Node)
}

func (m *machine) info(g *pegasus.Graph) *graphInfo { return m.shared.info(g) }

func (m *machine) newActivation(g *pegasus.Graph, args []int64, retTo *pegasus.Node, retAct *activation) *activation {
	gi := m.info(g)
	st, recycled := gi.pool.Get().(*actState)
	if !recycled {
		st = newActState(gi)
	}
	st.prepare(gi, !recycled)
	st.params = append(st.params[:0], args...)
	a := &activation{
		id:      m.nextActID,
		gi:      gi,
		st:      st,
		retTo:   retTo,
		retAct:  retAct,
		actsIdx: len(m.acts),
	}
	if m.ps != nil {
		a.doms = m.ps.part.domainOf(g)
	}
	m.nextActID++
	m.acts = append(m.acts, a)
	a.frame = m.allocFrame(g.Fn)
	// Fire the entry token.
	if g.Entry != nil {
		m.emit(a, g.Entry, pegasus.OutToken, 1, m.now+1)
	}
	// Seed nodes with no dynamic inputs: nothing will ever deliver to
	// them, so check them once explicitly.
	for _, n := range g.Nodes {
		if !n.Dead && !gi.static[n.ID] && gi.dynIns[n.ID] == 0 && n.Kind != pegasus.KEntryTok {
			m.pushCheck(m.now+1, a, n)
		}
	}
	return a
}

// complete retires a finished activation: it leaves the live set and its
// state returns to the graph's pool. Events still in flight for it are
// dropped by the run loop on the done flag, which is checked before any
// state access — the recycled actState is never touched through a stale
// event.
func (m *machine) complete(a *activation) {
	a.done = true
	m.freeFrame(a)
	last := len(m.acts) - 1
	m.acts[a.actsIdx] = m.acts[last]
	m.acts[a.actsIdx].actsIdx = a.actsIdx
	m.acts[last] = nil
	m.acts = m.acts[:last]
	a.gi.pool.Put(a.st)
	a.st = nil
}

func (m *machine) allocFrame(fn *cminor.FuncDecl) uint32 {
	size := m.prog.Layout.FrameSize[fn]
	if size == 0 {
		return 0
	}
	m.liveFrames++
	if frames := m.freeFrames[size]; len(frames) > 0 {
		f := frames[len(frames)-1]
		m.freeFrames[size] = frames[:len(frames)-1]
		// Zero the recycled frame. A fresh frame starts zeroed (simulated
		// memory is zero-initialized), so without this a program reading
		// an uninitialized local would see different values on first use
		// versus reuse — breaking determinism across activation orders.
		clear(m.mem[f : f+size])
		return f
	}
	f := m.sp
	m.sp += (size + 7) &^ 7
	if m.sp > m.prog.Layout.MemSize {
		m.fail(fmt.Errorf("%w: %d frames live, frame top 0x%x past memory size 0x%x",
			ErrStackOverflow, m.liveFrames, m.sp, m.prog.Layout.MemSize))
	}
	return f
}

// fail latches the first fire-path failure; the run loop surfaces it.
func (m *machine) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

func (m *machine) freeFrame(a *activation) {
	size := m.prog.Layout.FrameSize[a.gi.g.Fn]
	if size > 0 {
		m.liveFrames--
		m.freeFrames[size] = append(m.freeFrames[size], a.frame)
	}
}

func (m *machine) pushEvent(e event) {
	e.seq = m.seq
	m.seq++
	if m.ps != nil {
		m.ps.push(e)
		return
	}
	m.events.push(e)
}

// evCount is the number of pending events under either queue.
func (m *machine) evCount() int {
	if m.ps != nil {
		return m.ps.total
	}
	return m.events.len()
}

// evNext pops the globally next event by (time, seq) — from the heap or
// from the partitioned scheduler; the order is identical by construction.
func (m *machine) evNext() event {
	if m.ps != nil {
		return m.ps.next()
	}
	return m.events.pop()
}

func (m *machine) pushCheck(t int64, a *activation, n *pegasus.Node) {
	m.pushEvent(event{time: t, kind: evCheck, act: a, node: n})
}

// emit schedules delivery of one output of (a, n) to every consumer and
// reserves edge occupancy.
func (m *machine) emit(a *activation, n *pegasus.Node, out pegasus.Out, val int64, t int64) {
	ns := &a.st.nodes[n.ID]
	var cons []consumerEdge
	var occ []int32
	if out == pegasus.OutToken {
		if t < ns.lastDeliverTok {
			t = ns.lastDeliverTok
		}
		ns.lastDeliverTok = t
		cons = a.gi.tokConsumers[n.ID]
		occ = a.st.occTok[a.gi.tokEdgeOff[n.ID]:]
	} else {
		if t < ns.lastDeliverVal {
			t = ns.lastDeliverVal
		}
		ns.lastDeliverVal = t
		cons = a.gi.valConsumers[n.ID]
		occ = a.st.occVal[a.gi.valEdgeOff[n.ID]:]
	}
	var fireSeq int64
	if m.tracer != nil {
		fireSeq = m.tracer.CurSeq()
		m.tracer.Emit(t)
	}
	for i := range cons {
		c := &cons[i]
		dt := t
		copies := 1
		if m.inj != nil {
			switch fa := m.inj.Deliver(m.now, a.gi.g.Name, n.ID, out == pegasus.OutToken, i); fa.Kind {
			case faultsim.ActDrop:
				copies = 0
			case faultsim.ActDup:
				copies = 2
			case faultsim.ActDelay:
				dt = t + fa.Delay
			}
			// Preserve the edge's FIFO order under injected delays: a
			// later delivery may not overtake a delayed one.
			next := a.st.edgeNext(a.gi, out, n.ID)
			if dt < next[i] {
				dt = next[i]
			}
			next[i] = dt
			if m.tracer != nil && dt > t {
				m.tracer.Emit(dt)
			}
		}
		for k := 0; k < copies; k++ {
			occ[i]++
			m.pushEvent(event{
				time: dt, kind: evDeliver, act: a, node: c.node, dstPort: c.dstPort, val: val,
				prodNode: int32(n.ID), prodTok: out == pegasus.OutToken, prodEdge: int32(i), prodFire: fireSeq,
			})
		}
	}
}

// capacityFree reports whether every output edge of (a,n) for `out` has a
// free slot.
func (m *machine) capacityFree(a *activation, n *pegasus.Node, out pegasus.Out) bool {
	var occ []int32
	var ne int
	if out == pegasus.OutToken {
		occ = a.st.occTok[a.gi.tokEdgeOff[n.ID]:]
		ne = len(a.gi.tokConsumers[n.ID])
	} else {
		occ = a.st.occVal[a.gi.valEdgeOff[n.ID]:]
		ne = len(a.gi.valConsumers[n.ID])
	}
	cap32 := int32(m.cfg.EdgeCap)
	for _, o := range occ[:ne] {
		if o >= cap32 {
			return false
		}
	}
	return true
}

func (m *machine) run() error {
	for m.evCount() > 0 {
		if m.err != nil {
			return m.err
		}
		if m.ctx != nil {
			m.ctxTick++
			if m.ctxTick >= 1024 {
				m.ctxTick = 0
				if err := m.ctx.Err(); err != nil {
					return fmt.Errorf("%w at cycle %d: %v", ErrCanceled, m.now, err)
				}
			}
		}
		e := m.evNext()
		if e.time > m.cfg.MaxCycles {
			m.now = e.time
			return &LivelockError{MaxCycles: m.cfg.MaxCycles, Report: m.stuckReport("livelock")}
		}
		m.now = e.time
		m.stats.Events++
		if m.evHook != nil {
			m.evHook(e.time, e.seq, e.act.id, e.node)
		}
		if e.act.done {
			// Drop events for completed activations: their state has been
			// recycled, and nothing in a live activation depends on them
			// (cross-activation edges do not exist).
			continue
		}
		switch e.kind {
		case evDeliver:
			q := &e.act.st.ports[e.dstPort]
			q.buf = append(q.buf, latchEntry{
				val: e.val, fireSeq: e.prodFire, at: e.time,
				prodNode: e.prodNode, prodEdge: e.prodEdge, prodTok: e.prodTok,
			})
			m.tryFire(e.act, e.node)
		case evCheck:
			m.tryFire(e.act, e.node)
		}
		if m.err != nil {
			return m.err
		}
		if m.mainDone {
			return nil
		}
	}
	if !m.mainDone {
		return &DeadlockError{Report: m.stuckReport("deadlock")}
	}
	return nil
}

// consume pops the front of a latch, releasing the producer edge slot and
// rechecking the producer.
func (m *machine) consume(a *activation, n *pegasus.Node, p port) int64 {
	q := &a.st.ports[a.gi.portIndex(n, p.cls, p.idx)]
	le := q.buf[q.head]
	q.head++
	if int(q.head) == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	if le.prodTok {
		a.st.occTok[a.gi.tokEdgeOff[le.prodNode]+le.prodEdge]--
	} else {
		a.st.occVal[a.gi.valEdgeOff[le.prodNode]+le.prodEdge]--
	}
	if m.tracer != nil {
		m.tracer.Consume(le.fireSeq, le.at, le.prodTok)
	}
	// The producer may have been stalled on this edge.
	m.pushCheck(m.now, a, a.gi.nodeByID[le.prodNode])
	return le.val
}

func (m *machine) has(a *activation, n *pegasus.Node, p port) bool {
	return a.st.ports[a.gi.portIndex(n, p.cls, p.idx)].size() > 0
}

func (m *machine) peek(a *activation, n *pegasus.Node, p port) int64 {
	q := &a.st.ports[a.gi.portIndex(n, p.cls, p.idx)]
	return q.buf[q.head].val
}

// staticValue evaluates a static node's value (memoized per activation):
// sources directly, pure computations recursively over static inputs.
func (m *machine) staticValue(a *activation, r pegasus.Ref) int64 {
	n := r.N
	if a.st.staticOK[n.ID] {
		return a.st.staticVals[n.ID]
	}
	var v int64
	switch n.Kind {
	case pegasus.KConst:
		v = n.ConstVal
	case pegasus.KParam:
		v = a.st.params[n.ParamIdx]
	case pegasus.KAddrOf:
		if addr, ok := m.prog.Layout.AddressOfObject(n.Obj); ok {
			v = int64(addr)
		} else {
			v = int64(a.frame + m.prog.Layout.FrameOffset[n.Obj])
		}
	case pegasus.KBinOp:
		l := m.staticValue(a, n.Ins[0])
		r2 := m.staticValue(a, n.Ins[1])
		var err error
		v, err = cminor.EvalBinOp(n.BinOp, l, r2, n.Unsigned)
		if err != nil {
			v = 0
		}
	case pegasus.KUnOp:
		v = evalUnOp(n.UnOp, m.staticValue(a, n.Ins[0]))
	case pegasus.KConv:
		v = convValue(m.staticValue(a, n.Ins[0]), n.ToBits, n.ConvSign)
	case pegasus.KMux:
		for i, p := range n.Preds {
			if m.staticValue(a, p) != 0 {
				v = m.staticValue(a, n.Ins[i])
				break
			}
		}
	default:
		panic("staticValue on dynamic node kind " + n.Kind.String())
	}
	a.st.staticOK[n.ID] = true
	a.st.staticVals[n.ID] = v
	return v
}

// inputReady reports whether an input ref is available.
func (m *machine) inputReady(a *activation, n *pegasus.Node, cls pegasus.Port, idx int, r pegasus.Ref) bool {
	if a.gi.static[r.N.ID] {
		return true
	}
	return m.has(a, n, port{cls, idx})
}

// inputValue fetches an input, consuming dynamic ones.
func (m *machine) inputValue(a *activation, n *pegasus.Node, cls pegasus.Port, idx int, r pegasus.Ref) int64 {
	if a.gi.static[r.N.ID] {
		return m.staticValue(a, r)
	}
	return m.consume(a, n, port{cls, idx})
}
