// Package dataflow executes Pegasus graphs with self-timed
// (asynchronous-circuit) semantics, the execution model of spatial
// computation: every operation is its own functional unit, producers
// handshake with consumers over point-to-point edges with bounded
// buffering, memory operations flow through a load/store queue into a
// modeled cache hierarchy, and procedure calls instantiate the callee's
// graph. This is the "coarse hardware simulator" of the paper's
// Section 7.3.
package dataflow

import (
	"container/heap"
	"context"
	"fmt"

	"spatial/internal/cminor"
	"spatial/internal/faultsim"
	"spatial/internal/memsys"
	"spatial/internal/pegasus"
	"spatial/internal/trace"
)

// Config parameterizes a simulation.
type Config struct {
	Mem memsys.Config
	// EdgeCap is the per-edge buffer depth (1 = single-register wires).
	EdgeCap int
	// MaxCycles aborts runaway simulations.
	MaxCycles int64
	// MaxActivations bounds recursion/parallel call fan-out.
	MaxActivations int
}

// DefaultConfig returns the standard simulation setup: one-place edges on
// a dual-ported perfect memory.
func DefaultConfig() Config {
	return Config{Mem: memsys.PerfectConfig(), EdgeCap: 1, MaxCycles: 200_000_000, MaxActivations: 1 << 20}
}

func (c Config) withDefaults() Config {
	if c.Mem == (memsys.Config{}) {
		c.Mem = memsys.PerfectConfig()
	}
	if c.EdgeCap <= 0 {
		c.EdgeCap = 1
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 200_000_000
	}
	if c.MaxActivations <= 0 {
		c.MaxActivations = 1 << 20
	}
	return c
}

// Validate rejects nonsensical configurations with actionable messages.
// Zero fields mean "use the default" and pass; negative values are
// errors, not silently patched. Every Run* entry point and Normalized's
// facade callers validate before defaulting.
func (c Config) Validate() error {
	if c.EdgeCap < 0 {
		return fmt.Errorf("dataflow: EdgeCap %d is negative; use 0 for the default (1) or a positive buffer depth", c.EdgeCap)
	}
	if c.MaxCycles < 0 {
		return fmt.Errorf("dataflow: MaxCycles %d is negative; use 0 for the default budget or a positive cycle count", c.MaxCycles)
	}
	if c.MaxActivations < 0 {
		return fmt.Errorf("dataflow: MaxActivations %d is negative; use 0 for the default or a positive activation bound", c.MaxActivations)
	}
	return c.Mem.Validate()
}

// Normalized returns the configuration with every zero field replaced by
// its default — exactly what a run with this Config executes under. The
// facade normalizes once at compile time so the Config it reports
// matches what actually ran; it validates first (see Validate), so
// nonsensical values fail loudly there instead of being silently fixed.
func (c Config) Normalized() Config { return c.withDefaults() }

// Stats aggregates execution statistics.
type Stats struct {
	Cycles    int64
	OpsFired  int64
	DynLoads  int64 // loads executed with a true predicate
	DynStores int64 // stores executed with a true predicate
	NullMem   int64 // memory ops squashed by a false predicate
	Calls     int64
	Mem       memsys.Stats
}

// Result is the outcome of a simulation.
type Result struct {
	Value int64
	Stats Stats
}

// port identifies one input slot of a node.
type port struct {
	cls pegasus.Port
	idx int
}

// consumerEdge is one (producer output → consumer port) edge.
type consumerEdge struct {
	node *pegasus.Node
	p    port
	out  pegasus.Out
}

// graphInfo caches per-graph structures shared by all activations.
type graphInfo struct {
	g *pegasus.Graph
	// consumers[out][nodeID] lists the edges fed by that node's output.
	valConsumers [][]consumerEdge
	tokConsumers [][]consumerEdge
	// static[nodeID] marks nodes whose value is fixed for a whole
	// activation: constants, parameters, object addresses, and pure
	// computations over those. They do not handshake; consumers read them
	// directly (in hardware they are wires from the environment).
	static []bool
	// dynIns[nodeID] counts dynamic inputs. A dynamic node with zero
	// dynamic inputs has no wave signal; it fires exactly once per
	// activation (the builder guarantees such nodes only occur in the
	// entry hyperblock, which executes once).
	dynIns []int
}

func buildGraphInfo(g *pegasus.Graph) *graphInfo {
	gi := &graphInfo{
		g:            g,
		valConsumers: make([][]consumerEdge, g.MaxID()),
		tokConsumers: make([][]consumerEdge, g.MaxID()),
		static:       make([]bool, g.MaxID()),
	}
	// Static closure over pure ops (node inputs always precede uses in
	// the forward DAG; iterate to a fixpoint to be order-independent).
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Dead || gi.static[n.ID] {
				continue
			}
			s := false
			switch n.Kind {
			case pegasus.KConst, pegasus.KParam, pegasus.KAddrOf:
				s = true
			case pegasus.KBinOp, pegasus.KUnOp, pegasus.KConv, pegasus.KMux:
				s = true
				n.EachInput(func(r *pegasus.Ref, cls pegasus.Port, idx int) {
					if !r.Valid() || !gi.static[r.N.ID] {
						s = false
					}
				})
			}
			if s {
				gi.static[n.ID] = true
				changed = true
			}
		}
	}
	gi.dynIns = make([]int, g.MaxID())
	for _, n := range g.Nodes {
		if n.Dead || gi.static[n.ID] {
			continue
		}
		user := n
		n.EachInput(func(r *pegasus.Ref, cls pegasus.Port, idx int) {
			if !r.Valid() || gi.static[r.N.ID] {
				return
			}
			gi.dynIns[user.ID]++
			e := consumerEdge{node: user, p: port{cls, idx}, out: r.Out}
			if r.Out == pegasus.OutToken {
				gi.tokConsumers[r.N.ID] = append(gi.tokConsumers[r.N.ID], e)
			} else {
				gi.valConsumers[r.N.ID] = append(gi.valConsumers[r.N.ID], e)
			}
		})
	}
	return gi
}

// nodeState is the dynamic state of one node instance.
type nodeState struct {
	// latches[portKey] is a FIFO of arrived values (tokens use value 1).
	latches map[port][]int64
	// occ[out] counts reserved slots on this node's output edges (shared
	// across all out-edges: the max over edges would be finer; using the
	// sum of one counter per consumer is exact, so we track per consumer
	// edge below).
	occVal []int // per value-consumer edge occupancy
	occTok []int // per token-consumer edge occupancy
	// lastDeliver enforces in-order output delivery.
	lastDeliverVal int64
	lastDeliverTok int64
	// nextVal/nextTok, allocated only under fault injection, track the
	// earliest legal delivery time per consumer edge so injected delays
	// preserve the edge's FIFO order (a slow wire is still a wire).
	nextVal []int64
	nextTok []int64
	// tokgen counter
	counter int
	// firedOnce marks completion of zero-dynamic-input nodes.
	firedOnce bool
}

// activation is one dynamic instance of a function.
type activation struct {
	id     int
	gi     *graphInfo
	frame  uint32
	params []int64
	states []*nodeState
	done   bool
	// parent call to complete when KReturn fires.
	retTo  *pegasus.Node
	retAct *activation
	// memoized values of static nodes.
	staticVals []int64
	staticOK   []bool
}

func (m *machine) state(a *activation, n *pegasus.Node) *nodeState {
	s := a.states[n.ID]
	if s == nil {
		s = &nodeState{
			latches: map[port][]int64{},
			occVal:  make([]int, len(a.gi.valConsumers[n.ID])),
			occTok:  make([]int, len(a.gi.tokConsumers[n.ID])),
			counter: n.TokN,
		}
		a.states[n.ID] = s
	}
	return s
}

// --- event queue ---

type evKind uint8

const (
	evDeliver evKind = iota
	evCheck
)

type event struct {
	time int64
	seq  int64
	kind evKind
	act  *activation
	node *pegasus.Node
	p    port
	val  int64
	// edge occupancy release bookkeeping: when a delivered value is
	// consumed the producer-side occupancy must drop; we track the
	// producer edge on the latch entry instead (see latchEntry).
	prodAct  *activation
	prodNode *pegasus.Node
	prodOut  pegasus.Out
	prodEdge int
	// prodFire is the trace firing Seq of the producing firing (0 when
	// tracing is disabled or the value was seeded outside a firing).
	prodFire int64
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// machine is the simulator.
type machine struct {
	prog   *pegasus.Program
	cfg    Config
	mem    []byte
	msys   *memsys.System
	infos  map[string]*graphInfo
	events eventQueue
	seq    int64
	now    int64
	stats  Stats

	nextActID int
	// frame allocator: free frames by size.
	sp         uint32
	freeFrames map[uint32][]uint32

	mainAct  *activation
	mainVal  int64
	mainDone bool

	// profile, when non-nil, records per-node firing counts.
	profile *Profile

	// tracer, when non-nil, records the full event stream (firings,
	// stalls, memory requests). Every hook below is guarded by a nil
	// check and allocates nothing when disabled.
	tracer *trace.Tracer

	// inj, when non-nil, perturbs deliveries, fire attempts, and memory
	// responses (fault injection). Nil-guarded like the tracer.
	inj *faultsim.Injector

	// ctx, when non-nil, cancels the run between events.
	ctx     context.Context
	ctxTick int
	// err latches the first fire-path failure; the run loop stops on it.
	err error

	// acts registers every activation for stuck-state diagnosis.
	acts []*activation

	// latchProducer remembers, for each latched entry, which producer
	// edge to release on consumption: keyed by (act,node,port) parallel
	// to the latch FIFO.
	producers map[prodKey][]prodRef
}

type prodKey struct {
	act  *activation
	node *pegasus.Node
	p    port
}

type prodRef struct {
	act  *activation
	node *pegasus.Node
	out  pegasus.Out
	edge int
	// fireSeq and at record, for tracing, which firing produced this
	// latched value and when it arrived.
	fireSeq int64
	at      int64
}

func (m *machine) info(g *pegasus.Graph) *graphInfo {
	gi, ok := m.infos[g.Name]
	if !ok {
		gi = buildGraphInfo(g)
		m.infos[g.Name] = gi
	}
	return gi
}

func (m *machine) newActivation(g *pegasus.Graph, args []int64, retTo *pegasus.Node, retAct *activation) *activation {
	gi := m.info(g)
	a := &activation{
		id:     m.nextActID,
		gi:     gi,
		params: args,
		states: make([]*nodeState, g.MaxID()),
		retTo:  retTo,
		retAct: retAct,
	}
	m.nextActID++
	m.acts = append(m.acts, a)
	a.frame = m.allocFrame(g.Fn)
	// Fire the entry token.
	if g.Entry != nil {
		m.emit(a, g.Entry, pegasus.OutToken, 1, m.now+1)
	}
	// Seed nodes with no dynamic inputs: nothing will ever deliver to
	// them, so check them once explicitly.
	for _, n := range g.Nodes {
		if !n.Dead && !gi.static[n.ID] && gi.dynIns[n.ID] == 0 && n.Kind != pegasus.KEntryTok {
			m.push(&event{time: m.now + 1, kind: evCheck, act: a, node: n})
		}
	}
	return a
}

func (m *machine) allocFrame(fn *cminor.FuncDecl) uint32 {
	size := m.prog.Layout.FrameSize[fn]
	if size == 0 {
		return 0
	}
	if frames := m.freeFrames[size]; len(frames) > 0 {
		f := frames[len(frames)-1]
		m.freeFrames[size] = frames[:len(frames)-1]
		return f
	}
	f := m.sp
	m.sp += (size + 7) &^ 7
	if m.sp >= m.prog.Layout.MemSize {
		m.fail(fmt.Errorf("%w: %d frames live, frame top 0x%x past memory size 0x%x",
			ErrStackOverflow, m.nextActID, m.sp, m.prog.Layout.MemSize))
	}
	return f
}

// fail latches the first fire-path failure; the run loop surfaces it.
func (m *machine) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

func (m *machine) freeFrame(a *activation) {
	size := m.prog.Layout.FrameSize[a.gi.g.Fn]
	if size > 0 {
		m.freeFrames[size] = append(m.freeFrames[size], a.frame)
	}
}

func (m *machine) push(e *event) {
	e.seq = m.seq
	m.seq++
	heap.Push(&m.events, e)
}

// emit schedules delivery of one output of (a, n) to every consumer and
// reserves edge occupancy.
func (m *machine) emit(a *activation, n *pegasus.Node, out pegasus.Out, val int64, t int64) {
	st := m.state(a, n)
	var cons []consumerEdge
	if out == pegasus.OutToken {
		if t < st.lastDeliverTok {
			t = st.lastDeliverTok
		}
		st.lastDeliverTok = t
		cons = a.gi.tokConsumers[n.ID]
	} else {
		if t < st.lastDeliverVal {
			t = st.lastDeliverVal
		}
		st.lastDeliverVal = t
		cons = a.gi.valConsumers[n.ID]
	}
	var fireSeq int64
	if m.tracer != nil {
		fireSeq = m.tracer.CurSeq()
		m.tracer.Emit(t)
	}
	for i, c := range cons {
		dt := t
		copies := 1
		if m.inj != nil {
			switch fa := m.inj.Deliver(m.now, a.gi.g.Name, n.ID, out == pegasus.OutToken, i); fa.Kind {
			case faultsim.ActDrop:
				copies = 0
			case faultsim.ActDup:
				copies = 2
			case faultsim.ActDelay:
				dt = t + fa.Delay
			}
			// Preserve the edge's FIFO order under injected delays: a
			// later delivery may not overtake a delayed one.
			next := st.edgeNext(out, len(cons))
			if dt < next[i] {
				dt = next[i]
			}
			next[i] = dt
			if m.tracer != nil && dt > t {
				m.tracer.Emit(dt)
			}
		}
		for k := 0; k < copies; k++ {
			if out == pegasus.OutToken {
				st.occTok[i]++
			} else {
				st.occVal[i]++
			}
			m.push(&event{
				time: dt, kind: evDeliver, act: a, node: c.node, p: c.p, val: val,
				prodAct: a, prodNode: n, prodOut: out, prodEdge: i, prodFire: fireSeq,
			})
		}
	}
}

// edgeNext returns the per-consumer-edge minimum-next-delivery array for
// one output class, allocating it on first use (fault injection only).
func (st *nodeState) edgeNext(out pegasus.Out, n int) []int64 {
	if out == pegasus.OutToken {
		if st.nextTok == nil {
			st.nextTok = make([]int64, n)
		}
		return st.nextTok
	}
	if st.nextVal == nil {
		st.nextVal = make([]int64, n)
	}
	return st.nextVal
}

// capacityFree reports whether every output edge of (a,n) for `out` has a
// free slot.
func (m *machine) capacityFree(a *activation, n *pegasus.Node, out pegasus.Out) bool {
	st := m.state(a, n)
	occ := st.occVal
	if out == pegasus.OutToken {
		occ = st.occTok
	}
	for _, o := range occ {
		if o >= m.cfg.EdgeCap {
			return false
		}
	}
	return true
}

func (m *machine) run() error {
	for m.events.Len() > 0 {
		if m.err != nil {
			return m.err
		}
		if m.ctx != nil {
			m.ctxTick++
			if m.ctxTick >= 1024 {
				m.ctxTick = 0
				if err := m.ctx.Err(); err != nil {
					return fmt.Errorf("%w at cycle %d: %v", ErrCanceled, m.now, err)
				}
			}
		}
		e := heap.Pop(&m.events).(*event)
		if e.time > m.cfg.MaxCycles {
			m.now = e.time
			return &LivelockError{MaxCycles: m.cfg.MaxCycles, Report: m.stuckReport("livelock")}
		}
		m.now = e.time
		if e.act.done {
			// Drop events for completed activations, releasing producer
			// occupancy so upstream nodes in live activations are not
			// blocked (only matters for cross-activation edges, which do
			// not exist; safe regardless).
			continue
		}
		switch e.kind {
		case evDeliver:
			st := m.state(e.act, e.node)
			st.latches[e.p] = append(st.latches[e.p], e.val)
			key := prodKey{e.act, e.node, e.p}
			m.producers[key] = append(m.producers[key],
				prodRef{e.prodAct, e.prodNode, e.prodOut, e.prodEdge, e.prodFire, e.time})
			m.tryFire(e.act, e.node)
		case evCheck:
			m.tryFire(e.act, e.node)
		}
		if m.err != nil {
			return m.err
		}
		if m.mainDone {
			return nil
		}
	}
	if !m.mainDone {
		return &DeadlockError{Report: m.stuckReport("deadlock")}
	}
	return nil
}

// consume pops the front of a latch, releasing the producer edge slot and
// rechecking the producer.
func (m *machine) consume(a *activation, n *pegasus.Node, p port) int64 {
	st := m.state(a, n)
	q := st.latches[p]
	v := q[0]
	st.latches[p] = q[1:]
	key := prodKey{a, n, p}
	prods := m.producers[key]
	pr := prods[0]
	m.producers[key] = prods[1:]
	pst := m.state(pr.act, pr.node)
	if pr.out == pegasus.OutToken {
		pst.occTok[pr.edge]--
	} else {
		pst.occVal[pr.edge]--
	}
	if m.tracer != nil {
		m.tracer.Consume(pr.fireSeq, pr.at, pr.out == pegasus.OutToken)
	}
	// The producer may have been stalled on this edge.
	m.push(&event{time: m.now, kind: evCheck, act: pr.act, node: pr.node})
	return v
}

func (m *machine) has(a *activation, n *pegasus.Node, p port) bool {
	return len(m.state(a, n).latches[p]) > 0
}

func (m *machine) peek(a *activation, n *pegasus.Node, p port) int64 {
	return m.state(a, n).latches[p][0]
}

// staticValue evaluates a static node's value (memoized per activation):
// sources directly, pure computations recursively over static inputs.
func (m *machine) staticValue(a *activation, r pegasus.Ref) int64 {
	n := r.N
	if a.staticOK == nil {
		a.staticOK = make([]bool, len(a.states))
		a.staticVals = make([]int64, len(a.states))
	}
	if a.staticOK[n.ID] {
		return a.staticVals[n.ID]
	}
	var v int64
	switch n.Kind {
	case pegasus.KConst:
		v = n.ConstVal
	case pegasus.KParam:
		v = a.params[n.ParamIdx]
	case pegasus.KAddrOf:
		if addr, ok := m.prog.Layout.AddressOfObject(n.Obj); ok {
			v = int64(addr)
		} else {
			v = int64(a.frame + m.prog.Layout.FrameOffset[n.Obj])
		}
	case pegasus.KBinOp:
		l := m.staticValue(a, n.Ins[0])
		r2 := m.staticValue(a, n.Ins[1])
		var err error
		v, err = cminor.EvalBinOp(n.BinOp, l, r2, n.Unsigned)
		if err != nil {
			v = 0
		}
	case pegasus.KUnOp:
		v = evalUnOp(n.UnOp, m.staticValue(a, n.Ins[0]))
	case pegasus.KConv:
		v = convValue(m.staticValue(a, n.Ins[0]), n.ToBits, n.ConvSign)
	case pegasus.KMux:
		for i, p := range n.Preds {
			if m.staticValue(a, p) != 0 {
				v = m.staticValue(a, n.Ins[i])
				break
			}
		}
	default:
		panic("staticValue on dynamic node kind " + n.Kind.String())
	}
	a.staticOK[n.ID] = true
	a.staticVals[n.ID] = v
	return v
}

// inputReady reports whether an input ref is available.
func (m *machine) inputReady(a *activation, n *pegasus.Node, cls pegasus.Port, idx int, r pegasus.Ref) bool {
	if a.gi.static[r.N.ID] {
		return true
	}
	return m.has(a, n, port{cls, idx})
}

// inputValue fetches an input, consuming dynamic ones.
func (m *machine) inputValue(a *activation, n *pegasus.Node, cls pegasus.Port, idx int, r pegasus.Ref) int64 {
	if a.gi.static[r.N.ID] {
		return m.staticValue(a, r)
	}
	return m.consume(a, n, port{cls, idx})
}
