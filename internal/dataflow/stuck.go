package dataflow

import (
	"fmt"
	"strings"

	"spatial/internal/pegasus"
)

// This file diagnoses stuck simulations. When the event queue drains
// with the entry activation incomplete (deadlock) or the cycle budget
// trips (livelock), the machine walks every live activation and
// classifies each unfired node by what it is waiting for, producing a
// wait-for graph: node → the peers that must act before it can fire. The
// strongly-connected components of that graph are the actual deadlock
// cycles — a token loop, a starved mux, a backpressure ring — and the
// StuckReport names them instead of the old bare "no events left".

// WaitKind classifies what a blocked node is waiting for.
type WaitKind uint8

// Wait kinds.
const (
	// WaitData: a value or predicate input has not arrived.
	WaitData WaitKind = iota
	// WaitToken: a token input has not arrived (memory-dependence wait).
	WaitToken
	// WaitCredit: a token generator's credit counter is exhausted; it
	// waits for the trailing loop to return a token.
	WaitCredit
	// WaitBackpressure: an output edge buffer is full; the node waits
	// for the consumer at the far end to drain it.
	WaitBackpressure
)

var waitNames = [...]string{
	WaitData: "data-wait", WaitToken: "token-wait",
	WaitCredit: "credit-wait", WaitBackpressure: "backpressure",
}

// String names the wait kind.
func (w WaitKind) String() string { return waitNames[w] }

// WaitEdge is one edge of the wait-for graph: the blocked node cannot
// proceed until Peer (in activation PeerAct) acts — by producing the
// missing input (WaitData/WaitToken/WaitCredit) or by consuming from the
// full edge (WaitBackpressure).
type WaitEdge struct {
	Kind WaitKind
	// Port and Idx identify the input slot being waited on (input
	// waits), or the consumer's input slot at the far end of the full
	// edge (backpressure).
	Port pegasus.Port
	Idx  int
	Peer *pegasus.Node
	// PeerAct is the peer's activation ID.
	PeerAct int
}

// BlockedNode is one stuck node with its wait-for out-edges.
type BlockedNode struct {
	Graph string
	// Act is the activation ID (several activations of one graph may be
	// live at once).
	Act  int
	Node *pegasus.Node
	// Arrived counts dynamic inputs already latched — a partially-fed
	// node is more telling than an idle one.
	Arrived int
	Waits   []WaitEdge
}

func (b BlockedNode) key() actNodeKey { return actNodeKey{b.Act, b.Node.ID} }

type actNodeKey struct {
	act  int
	node int
}

// StuckReport is the structured diagnosis of a stuck simulation.
type StuckReport struct {
	// Kind is "deadlock" (event queue drained) or "livelock" (cycle
	// budget exceeded).
	Kind string
	// Cycle is the simulation time at which the run was declared stuck.
	Cycle int64
	// Blocked lists every node that could not fire, with its wait-for
	// edges. Partially-fed nodes sort first.
	Blocked []BlockedNode
	// SCC is the largest strongly-connected component of the wait-for
	// graph with more than one node: the cycle of mutual waits that
	// wedged the machine. Empty when the graph is acyclic (pure
	// starvation: something upstream simply never produced).
	SCC []BlockedNode
}

// Render formats the report; the first line is a one-line summary.
func (r *StuckReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataflow: %s at cycle %d: %d blocked node(s)", r.Kind, r.Cycle, len(r.Blocked))
	if len(r.SCC) > 0 {
		fmt.Fprintf(&b, ", wait cycle of %d", len(r.SCC))
	}
	b.WriteByte('\n')
	if len(r.SCC) > 0 {
		b.WriteString("  wait cycle (SCC):\n")
		renderNodes(&b, r.SCC, len(r.SCC))
	}
	inSCC := map[actNodeKey]bool{}
	for _, n := range r.SCC {
		inSCC[n.key()] = true
	}
	var rest []BlockedNode
	for _, n := range r.Blocked {
		if !inSCC[n.key()] {
			rest = append(rest, n)
		}
	}
	if len(rest) > 0 {
		if len(r.SCC) > 0 {
			b.WriteString("  other blocked nodes:\n")
		}
		renderNodes(&b, rest, 16)
	}
	return strings.TrimRight(b.String(), "\n")
}

func renderNodes(b *strings.Builder, ns []BlockedNode, limit int) {
	for i, n := range ns {
		if i >= limit {
			fmt.Fprintf(b, "    … and %d more\n", len(ns)-limit)
			return
		}
		fmt.Fprintf(b, "    %s\n", n.describe())
	}
}

func (b BlockedNode) describe() string {
	var s strings.Builder
	fmt.Fprintf(&s, "%s/act%d %s", b.Graph, b.Act, b.Node)
	if len(b.Waits) == 0 {
		s.WriteString(" blocked")
	} else {
		w := b.Waits[0]
		switch w.Kind {
		case WaitBackpressure:
			fmt.Fprintf(&s, " blocked by full edge to %s [%s]", w.Peer, w.Kind)
		case WaitCredit:
			fmt.Fprintf(&s, " out of credit, waiting on token from %s [%s]", w.Peer, w.Kind)
		default:
			fmt.Fprintf(&s, " waiting on %s[%d] from %s [%s]", portName(w.Port), w.Idx, w.Peer, w.Kind)
		}
		if len(b.Waits) > 1 {
			fmt.Fprintf(&s, " (+%d more waits)", len(b.Waits)-1)
		}
	}
	if b.Arrived > 0 {
		fmt.Fprintf(&s, " (%d input(s) latched)", b.Arrived)
	}
	return s.String()
}

func portName(p pegasus.Port) string {
	switch p {
	case pegasus.PortIn:
		return "in"
	case pegasus.PortPred:
		return "pred"
	default:
		return "tok"
	}
}

// ContainsNode reports whether the given node (by graph and ID) appears
// in the report's blocked set — handy for tests and fault triage.
func (r *StuckReport) ContainsNode(graph string, nodeID int) bool {
	for _, b := range r.Blocked {
		if b.Graph == graph && b.Node.ID == nodeID {
			return true
		}
	}
	return false
}

// stuckReport builds the diagnosis from the machine's current state.
func (m *machine) stuckReport(kind string) *StuckReport {
	var blocked []BlockedNode
	for _, a := range m.acts {
		if a.done {
			continue
		}
		for _, n := range a.gi.g.Nodes {
			if n.Dead || a.gi.static[n.ID] || n.Kind == pegasus.KEntryTok {
				continue
			}
			b, isBlocked := m.classifyBlocked(a, n)
			if !isBlocked {
				continue
			}
			blocked = append(blocked, b)
		}
	}
	return NewStuckReport(kind, m.now, blocked)
}

// NewStuckReport assembles a StuckReport from an already-classified
// blocked set: it orders the nodes (partially-fed first) and extracts
// the largest wait cycle. Alternative engines (internal/codegen) build
// their BlockedNode lists natively and share the ordering and SCC logic
// through this constructor, so both backends render identical reports.
func NewStuckReport(kind string, cycle int64, blocked []BlockedNode) *StuckReport {
	r := &StuckReport{Kind: kind, Cycle: cycle, Blocked: blocked}
	sortBlocked(r.Blocked, map[actNodeKey]int{})
	r.SCC = waitSCC(r.Blocked)
	return r
}

func sortBlocked(bs []BlockedNode, index map[actNodeKey]int) {
	// Insertion sort by (fed-first, act, node ID) — blocked sets are
	// small and this keeps the report deterministic.
	less := func(x, y BlockedNode) bool {
		xf, yf := x.Arrived > 0, y.Arrived > 0
		if xf != yf {
			return xf
		}
		if x.Act != y.Act {
			return x.Act < y.Act
		}
		return x.Node.ID < y.Node.ID
	}
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && less(bs[j], bs[j-1]); j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
	for i, b := range bs {
		index[b.key()] = i
	}
}

// classifyBlocked mirrors the firing rules of dispatch: it reports
// whether (a, n) is blocked and, if so, on what.
func (m *machine) classifyBlocked(a *activation, n *pegasus.Node) (BlockedNode, bool) {
	b := BlockedNode{Graph: a.gi.g.Name, Act: a.id, Node: n}
	ns := &a.st.nodes[n.ID]
	if a.gi.dynIns[n.ID] == 0 {
		// Fire-once node: blocked only if it never managed to fire,
		// which can only be backpressure.
		if ns.firedOnce {
			return b, false
		}
		b.Waits = m.backpressureEdges(a, n)
		return b, len(b.Waits) > 0
	}
	var missing []WaitEdge
	n.EachInput(func(r *pegasus.Ref, cls pegasus.Port, idx int) {
		if !r.Valid() || a.gi.static[r.N.ID] {
			return
		}
		if m.has(a, n, port{cls, idx}) {
			b.Arrived++
			return
		}
		k := WaitData
		if cls == pegasus.PortTok {
			k = WaitToken
		}
		missing = append(missing, WaitEdge{Kind: k, Port: cls, Idx: idx, Peer: r.N, PeerAct: a.id})
	})
	switch n.Kind {
	case pegasus.KMerge:
		// A merge fires on ANY arrived input; it is input-starved only
		// when none arrived, and otherwise blocked by backpressure.
		if b.Arrived == 0 {
			b.Waits = missing
			return b, len(b.Waits) > 0
		}
		b.Waits = m.backpressureEdges(a, n)
		return b, len(b.Waits) > 0
	case pegasus.KTokenGen:
		// Token inputs are absorbed eagerly, so only the predicate path
		// can block: pred missing, credit exhausted, or output full.
		if !m.inputReady(a, n, pegasus.PortPred, 0, n.Preds[0]) {
			for _, w := range missing {
				if w.Port == pegasus.PortPred {
					b.Waits = append(b.Waits, w)
				}
			}
			return b, len(b.Waits) > 0
		}
		var predVal int64
		if a.gi.static[n.Preds[0].N.ID] {
			predVal = m.staticValue(a, n.Preds[0])
		} else {
			predVal = m.peek(a, n, port{pegasus.PortPred, 0})
		}
		if predVal == 0 {
			return b, false // would fire (counter reset); not blocked
		}
		if ns.counter <= 0 {
			b.Waits = []WaitEdge{{Kind: WaitCredit, Port: pegasus.PortTok, Idx: 0, Peer: n.Toks[0].N, PeerAct: a.id}}
			return b, true
		}
		b.Waits = m.backpressureEdges(a, n)
		return b, len(b.Waits) > 0
	default:
		if len(missing) > 0 {
			b.Waits = missing
			return b, true
		}
		// Every input present yet unfired: output edges must be full.
		b.Waits = m.backpressureEdges(a, n)
		return b, len(b.Waits) > 0
	}
}

// backpressureEdges lists wait edges to the consumers of (a, n)'s full
// output edges.
func (m *machine) backpressureEdges(a *activation, n *pegasus.Node) []WaitEdge {
	var out []WaitEdge
	occVal := a.st.occVal[a.gi.valEdgeOff[n.ID]:]
	for i, c := range a.gi.valConsumers[n.ID] {
		if int(occVal[i]) >= m.cfg.EdgeCap {
			out = append(out, WaitEdge{Kind: WaitBackpressure, Port: c.p.cls, Idx: c.p.idx, Peer: c.node, PeerAct: a.id})
		}
	}
	occTok := a.st.occTok[a.gi.tokEdgeOff[n.ID]:]
	for i, c := range a.gi.tokConsumers[n.ID] {
		if int(occTok[i]) >= m.cfg.EdgeCap {
			out = append(out, WaitEdge{Kind: WaitBackpressure, Port: c.p.cls, Idx: c.p.idx, Peer: c.node, PeerAct: a.id})
		}
	}
	return out
}

// waitSCC returns the largest strongly-connected component (size > 1) of
// the wait-for graph over the blocked set, using Tarjan's algorithm.
func waitSCC(blocked []BlockedNode) []BlockedNode {
	index := map[actNodeKey]int{}
	for i, b := range blocked {
		index[b.key()] = i
	}
	adj := make([][]int, len(blocked))
	for i, b := range blocked {
		for _, w := range b.Waits {
			if j, ok := index[actNodeKey{w.PeerAct, w.Peer.ID}]; ok {
				adj[i] = append(adj[i], j)
			}
		}
	}
	n := len(blocked)
	const unvisited = -1
	idx := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range idx {
		idx[i] = unvisited
	}
	var stack []int
	var best []int
	counter := 0
	// Iterative Tarjan to survive adversarially deep wait chains.
	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if idx[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		idx[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if idx[w] == unvisited {
					idx[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && idx[w] < low[f.v] {
					low[f.v] = idx[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) == 1 {
					// A single node is a cycle only via a self-edge.
					self := false
					for _, w := range adj[comp[0]] {
						self = self || w == comp[0]
					}
					if !self {
						comp = nil
					}
				}
				if len(comp) > len(best) {
					best = comp
				}
			}
		}
	}
	if len(best) == 0 {
		return nil
	}
	// Restore deterministic order (ascending blocked index).
	for i := 1; i < len(best); i++ {
		for j := i; j > 0 && best[j] < best[j-1]; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	out := make([]BlockedNode, len(best))
	for i, bi := range best {
		out[i] = blocked[bi]
	}
	return out
}
