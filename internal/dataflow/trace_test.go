package dataflow

import (
	"bytes"
	"encoding/json"
	"testing"

	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/trace"
)

// traceSrc is a small kernel with real memory traffic: the store→load
// token chains give the critical path token edges to attribute.
const traceSrc = `
int a[64];

int kernel(int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) a[i] = i * 3;
  for (i = 0; i < n; i++) s += a[i];
  return s;
}`

func runTraced(t *testing.T, src, entry string, args []int64, cfg Config, level opt.Level) (*Result, *trace.Trace) {
	t.Helper()
	p := compileProgram(t, src)
	if err := opt.OptimizeAt(p, level); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	res, tr, err := RunTraced(p, entry, args, cfg, trace.Config{})
	if err != nil {
		t.Fatalf("RunTraced: %v", err)
	}
	return res, tr
}

func TestRunTracedMatchesRun(t *testing.T) {
	p := compileProgram(t, traceSrc)
	want, err := Run(p, "kernel", []int64{32}, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got, tr, err := RunTraced(p, "kernel", []int64{32}, DefaultConfig(), trace.Config{})
	if err != nil {
		t.Fatalf("RunTraced: %v", err)
	}
	if got.Value != want.Value || got.Stats.Cycles != want.Stats.Cycles {
		t.Fatalf("traced run diverged: value %d vs %d, cycles %d vs %d",
			got.Value, want.Value, got.Stats.Cycles, want.Stats.Cycles)
	}
	if int64(len(tr.Firings)) != got.Stats.OpsFired {
		t.Fatalf("recorded %d firings, stats say %d ops fired", len(tr.Firings), got.Stats.OpsFired)
	}
}

func TestCriticalPathInvariants(t *testing.T) {
	for _, level := range []opt.Level{opt.None, opt.Full} {
		res, tr := runTraced(t, traceSrc, "kernel", []int64{32}, DefaultConfig(), level)
		cp := tr.CriticalPath()
		if cp == nil {
			t.Fatalf("%v: no critical path extracted", level)
		}
		if cp.Length <= 0 || cp.Length > res.Stats.Cycles {
			t.Fatalf("%v: path length %d outside (0, %d]", level, cp.Length, res.Stats.Cycles)
		}
		var stepSum int64
		for _, s := range cp.Steps {
			stepSum += s.Cycles
		}
		if stepSum != cp.Length {
			t.Fatalf("%v: step attributions sum to %d, path length %d", level, stepSum, cp.Length)
		}
		var kindSum int64
		for _, c := range cp.ByKind {
			kindSum += c
		}
		if kindSum != cp.Length {
			t.Fatalf("%v: per-kind attributions sum to %d, path length %d", level, kindSum, cp.Length)
		}
		var edgeSum int64
		for _, ec := range cp.TokenEdges {
			edgeSum += ec.Cycles
		}
		if edgeSum != cp.TokenCycles {
			t.Fatalf("%v: token-edge attributions sum to %d, TokenCycles %d", level, edgeSum, cp.TokenCycles)
		}
		// The path must end at the program's return.
		last := cp.Steps[len(cp.Steps)-1].Firing
		if last.Node.Kind.String() != "return" {
			t.Fatalf("%v: path ends at %s, want the return", level, last.Node)
		}
	}
}

func TestCriticalPathShrinksWithMemopt(t *testing.T) {
	res0, tr0 := runTraced(t, traceSrc, "kernel", []int64{32}, DefaultConfig(), opt.None)
	res2, tr2 := runTraced(t, traceSrc, "kernel", []int64{32}, DefaultConfig(), opt.Full)
	if res0.Value != res2.Value {
		t.Fatalf("levels disagree: %d vs %d", res0.Value, res2.Value)
	}
	cp0, cp2 := tr0.CriticalPath(), tr2.CriticalPath()
	if cp0 == nil || cp2 == nil {
		t.Fatal("missing critical path")
	}
	if cp2.Length >= cp0.Length {
		t.Fatalf("memory optimization did not shorten the critical path: %d -> %d", cp0.Length, cp2.Length)
	}
}

func TestTraceMemoryEvents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem = memsys.PaperConfig(2)
	res, tr := runTraced(t, traceSrc, "kernel", []int64{32}, cfg, opt.Full)
	wantMem := res.Stats.DynLoads + res.Stats.DynStores
	if int64(len(tr.Mem)) != wantMem {
		t.Fatalf("recorded %d memory events, stats say %d requests", len(tr.Mem), wantMem)
	}
	if tr.TokenReleases != wantMem {
		t.Fatalf("recorded %d token releases, want %d", tr.TokenReleases, wantMem)
	}
	if tr.LSQOccupancy.Count != wantMem {
		t.Fatalf("LSQ occupancy histogram has %d samples, want %d", tr.LSQOccupancy.Count, wantMem)
	}
	var hits, misses int64
	for _, e := range tr.Mem {
		if e.Done < e.Issue || e.Issue < e.Start {
			t.Fatalf("unordered memory event: %+v", e)
		}
		if e.Level == memsys.LvlL1 {
			hits++
		} else {
			misses++
		}
	}
	if hits != res.Stats.Mem.L1Hits || misses != res.Stats.Mem.L1Misses {
		t.Fatalf("event hit/miss split %d/%d, stats %d/%d",
			hits, misses, res.Stats.Mem.L1Hits, res.Stats.Mem.L1Misses)
	}
}

func TestTraceChromeExport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem = memsys.PaperConfig(2)
	_, tr := runTraced(t, traceSrc, "kernel", []int64{16}, cfg, opt.Full)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// Every firing and memory event plus the metadata records.
	if len(events) < len(tr.Firings)+len(tr.Mem) {
		t.Fatalf("export has %d events, want at least %d", len(events), len(tr.Firings)+len(tr.Mem))
	}
	phases := map[string]bool{}
	for _, e := range events {
		phases[e["ph"].(string)] = true
	}
	if !phases["X"] || !phases["M"] {
		t.Fatalf("export missing complete (X) or metadata (M) events: %v", phases)
	}
}

func TestTraceStallsRecorded(t *testing.T) {
	_, tr := runTraced(t, traceSrc, "kernel", []int64{32}, DefaultConfig(), opt.None)
	if len(tr.StallsByKind) == 0 {
		t.Fatal("no stalls recorded for an unoptimized loop kernel")
	}
	total := int64(0)
	for _, sc := range tr.StallsByKind {
		for _, c := range sc {
			total += c
		}
	}
	if total == 0 {
		t.Fatal("stall table is all zeros")
	}
	if tr.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestTraceTruncation(t *testing.T) {
	p := compileProgram(t, traceSrc)
	_, tr, err := RunTraced(p, "kernel", []int64{32}, DefaultConfig(), trace.Config{MaxFirings: 10})
	if err != nil {
		t.Fatalf("RunTraced: %v", err)
	}
	if !tr.Truncated {
		t.Fatal("trace not marked truncated at MaxFirings=10")
	}
	if len(tr.Firings) != 10 {
		t.Fatalf("retained %d firings, want 10", len(tr.Firings))
	}
	if tr.CriticalPath() != nil {
		t.Fatal("truncated trace must not fabricate a critical path")
	}
}
