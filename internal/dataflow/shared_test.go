package dataflow

import (
	"sync"
	"testing"

	"spatial/internal/opt"
)

// sharedTestSrc exercises loops, a token generator, recursion (frame
// recycling through the allocator), and memory traffic — the paths that
// touch every piece of shared state: graphInfo lookups, the actState
// pool, and static-value memoization.
const sharedTestSrc = `
int a[40];
int rec(int n) {
  int pad[8];
  pad[0] = n * 3;
  if (n <= 0) return pad[0];
  return pad[0] + rec(n - 1);
}
int f(void) {
  int i;
  for (i = 0; i < 40; i++) a[i] = i;
  for (i = 0; i < 37; i++) a[i] = a[i+3] * 2;
  int s = rec(5);
  for (i = 0; i < 40; i++) s = s * 5 + a[i];
  return s & 0xffffff;
}`

// TestSharedCompiledParallel pins the concurrency contract of Shared:
// one prebuilt table (graphInfo structures plus their actState pools)
// driven by 8 goroutines at once must produce the serial result
// bit-identically on every stream. Run under -race, this is the
// regression test for concurrent access to the per-program graph table
// (formerly machine.infos) and the graphInfo sync.Pool.
func TestSharedCompiledParallel(t *testing.T) {
	p := optProgram(t, sharedTestSrc, opt.Full)
	sh := Prebuild(p)
	cfg := DefaultConfig()

	ref, err := sh.Run("f", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	runsPer := 4
	if testing.Short() {
		runsPer = 2
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runsPer; i++ {
				res, err := sh.Run("f", nil, cfg)
				if err != nil {
					errs <- err
					return
				}
				if res.Value != ref.Value || res.Stats.Cycles != ref.Stats.Cycles || res.Stats.Events != ref.Stats.Events {
					t.Errorf("parallel run diverged from serial: (value %d, cycles %d, events %d) vs (%d, %d, %d)",
						res.Value, res.Stats.Cycles, res.Stats.Events, ref.Value, ref.Stats.Cycles, ref.Stats.Events)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedProgramMismatch verifies the guard against pairing a Shared
// table with a different program.
func TestSharedProgramMismatch(t *testing.T) {
	p1 := optProgram(t, sharedTestSrc, opt.Full)
	p2 := optProgram(t, sharedTestSrc, opt.Full)
	sh := Prebuild(p1)
	if _, _, err := runMachine(p2, "f", nil, DefaultConfig(), runOpts{shared: sh}); err == nil {
		t.Fatal("expected an error running with a foreign Shared table")
	}
}

// TestSharedMatchesUnshared verifies that runs through a Shared table are
// bit-identical to runs that build private structures, at every level.
func TestSharedMatchesUnshared(t *testing.T) {
	for _, lv := range []opt.Level{opt.None, opt.Basic, opt.Medium, opt.Full} {
		p := optProgram(t, sharedTestSrc, lv)
		sh := Prebuild(p)
		cfg := DefaultConfig()
		a, err := Run(p, "f", nil, cfg)
		if err != nil {
			t.Fatalf("@%s: %v", lv, err)
		}
		b, err := sh.Run("f", nil, cfg)
		if err != nil {
			t.Fatalf("@%s shared: %v", lv, err)
		}
		if a.Value != b.Value || a.Stats.Cycles != b.Stats.Cycles || a.Stats.Events != b.Stats.Events {
			t.Fatalf("@%s: shared run diverged: (%d,%d,%d) vs (%d,%d,%d)", lv,
				b.Value, b.Stats.Cycles, b.Stats.Events, a.Value, a.Stats.Cycles, a.Stats.Events)
		}
	}
}
