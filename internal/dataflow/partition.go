package dataflow

import (
	"fmt"

	"spatial/internal/pegasus"
)

// Partition assigns every node of every graph of one program to an event
// domain for partitioned execution (see DESIGN.md "Partitioned
// simulation"). A Partition is immutable after Build and may be shared by
// any number of concurrent runs of the program, exactly like Shared.
//
// Domain assignment is a performance decision, never a correctness one:
// the partitioned scheduler preserves the sequential engine's global
// (time, seq) pop order for any assignment, so a bad split costs speed,
// not bit-identity.
type Partition struct {
	prog *pegasus.Program
	n    int
	// window is the conservative synchronization window width in cycles
	// (a power of two). Events less than one window ahead of current time
	// stay on the sequencer's O(1) bucket ring; events further out are
	// sharded to per-domain heaps and drained back a window at a time.
	window int64
	// doms[graph name][node ID] is the node's domain in [0, n).
	doms map[string][]int16
}

// defaultWindow is the synchronization window width when the caller does
// not override it. Op latencies are 0–20 cycles, so 32 keeps almost all
// perfect-memory traffic on the ring while realistic memory latencies
// (and injected delays) spill to the domain heaps.
const defaultWindow = 32

// maxPartitions bounds a partition request; beyond per-core domains the
// barrier traffic only adds overhead.
const maxPartitions = 64

// BuildPartition splits every graph of p into n event domains by
// hyperblock: hyperblocks coupled by a zero-latency cross edge are merged
// (their events can be due in the same cycle, so splitting them buys
// nothing), then merged groups are packed into n contiguous, weight-
// balanced domains in hyperblock order. weights, when non-nil, supplies
// dynamic per-node firing counts (from a profiled run) so hot loops
// balance by observed work instead of static node count.
func BuildPartition(p *pegasus.Program, n int, weights *Profile) (*Partition, error) {
	if n < 1 || n > maxPartitions {
		return nil, fmt.Errorf("dataflow: partition count %d out of range [1, %d]", n, maxPartitions)
	}
	pt := &Partition{prog: p, n: n, window: defaultWindow, doms: make(map[string][]int16, len(p.Funcs))}
	for name, g := range p.Funcs {
		pt.doms[name] = partitionGraph(g, n, weights)
	}
	return pt, nil
}

// Domains returns the number of event domains.
func (pt *Partition) Domains() int { return pt.n }

// Program returns the program this partition was built for.
func (pt *Partition) Program() *pegasus.Program { return pt.prog }

// NodeDomains returns the named graph's node ID → domain table, or nil
// when the graph is unknown (which routes every node to domain 0). The
// slice is shared with the Partition and must not be modified — it is
// how the compiled backend (internal/codegen) bakes the same domain
// assignment into its lowered tables.
func (pt *Partition) NodeDomains(name string) []int16 { return pt.doms[name] }

// Window returns the synchronization window width in cycles.
func (pt *Partition) Window() int64 { return pt.window }

// SetWindow overrides the synchronization window width (rounded up to a
// power of two, minimum 2). Results are bit-identical for every width;
// tests use small windows to force cross-window traffic on short runs.
func (pt *Partition) SetWindow(w int64) {
	if w < 2 {
		w = 2
	}
	p2 := int64(2)
	for p2 < w {
		p2 <<= 1
	}
	pt.window = p2
}

// domainOf returns g's node→domain table (nil when g is unknown, which
// routes everything to domain 0).
func (pt *Partition) domainOf(g *pegasus.Graph) []int16 { return pt.doms[g.Name] }

// partitionGraph assigns g's hyperblocks to n domains.
func partitionGraph(g *pegasus.Graph, n int, weights *Profile) []int16 {
	nh := len(g.Hypers)
	if nh == 0 {
		return make([]int16, g.MaxID())
	}
	// Union-find over hyperblocks.
	uf := make([]int, nh)
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			uf[rb] = ra
		}
	}
	// Merge hyperblocks joined by a zero-latency cross edge: the
	// producer's output is due in the firing cycle itself, so consumer
	// and producer must share a domain to keep same-cycle couplings
	// local. Weight each hyperblock while walking.
	w := make([]int64, nh)
	for _, nd := range g.Nodes {
		if nd.Dead {
			continue
		}
		wt := int64(1)
		if weights != nil {
			if f := weights.Fires(nd); f > 0 {
				wt = f
			}
		}
		w[nd.Hyper] += wt
		if opLatency(nd) == 0 {
			src := nd
			src.EachInput(func(r *pegasus.Ref, cls pegasus.Port, idx int) {
				if r.Valid() && r.N.Hyper != src.Hyper {
					union(r.N.Hyper, src.Hyper)
				}
			})
		}
	}
	// Collapse groups to their roots, preserving hyperblock order
	// (hyperblock IDs are reverse postorder, so contiguous splits track
	// control-flow locality).
	groupW := make([]int64, nh)
	var total int64
	for h := 0; h < nh; h++ {
		groupW[find(h)] += w[h]
		total += w[h]
	}
	// Greedy contiguous split: walk the root groups in order, starting a
	// new domain when the running weight passes an equal share.
	dom := make([]int16, nh)
	cur, acc := int16(0), int64(0)
	share := (total + int64(n) - 1) / int64(n)
	if share < 1 {
		share = 1
	}
	for h := 0; h < nh; h++ {
		if find(h) != h {
			continue
		}
		if acc >= share && int(cur) < n-1 {
			cur++
			acc = 0
		}
		dom[h] = cur
		acc += groupW[h]
	}
	for h := 0; h < nh; h++ {
		dom[h] = dom[find(h)]
	}
	out := make([]int16, g.MaxID())
	for _, nd := range g.Nodes {
		if !nd.Dead {
			out[nd.ID] = dom[nd.Hyper]
		}
	}
	return out
}
