package dataflow

import "spatial/internal/pegasus"

// This file is the event engine's storage layer: a typed 4-ary min-heap
// ordered on (time, seq) whose elements are indices into a slab of event
// records recycled through a free list. Nothing here is boxed and nothing
// is garbage in steady state — pushing an event reuses a freed slab slot,
// popping one returns the record by value and immediately recycles the
// slot. The 4-ary shape halves the tree depth of a binary heap, which
// matters because sift comparisons (two loads from the slab) dominate the
// queue's cost.

type evKind uint8

const (
	evDeliver evKind = iota
	evCheck
)

// event is one scheduled simulator step. Producer bookkeeping rides along
// on deliveries so the consumer can release the producer's edge slot when
// the value is eventually consumed (see latchEntry): producer and
// consumer always share an activation, so the producer is identified by
// node ID and edge index alone.
type event struct {
	time int64
	seq  int64
	val  int64
	// prodFire is the trace firing Seq of the producing firing (0 when
	// tracing is disabled or the value was seeded outside a firing).
	prodFire int64
	act      *activation
	node     *pegasus.Node
	// dstPort is the flat port index of the consumer slot the value lands
	// in (evDeliver only); see graphInfo.portIndex.
	dstPort  int32
	prodNode int32
	prodEdge int32
	kind     evKind
	prodTok  bool
}

// eventQueue is the slab-backed heap. heap holds slab indices; free holds
// recycled slab slots. The total order (time, then seq) is the same one
// the previous container/heap implementation used, and seq is unique per
// event, so pop order — and therefore simulated behavior — is identical.
type eventQueue struct {
	slab []event
	free []int32
	heap []int32
}

func (q *eventQueue) len() int { return len(q.heap) }

// topTime returns the minimum event's time without popping; the queue
// must be non-empty.
func (q *eventQueue) topTime() int64 { return q.slab[q.heap[0]].time }

func (q *eventQueue) less(a, b int32) bool {
	ea, eb := &q.slab[a], &q.slab[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	return ea.seq < eb.seq
}

func (q *eventQueue) push(e event) {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		idx = int32(len(q.slab))
		q.slab = append(q.slab, event{})
	}
	q.slab[idx] = e
	q.heap = append(q.heap, idx)
	q.up(len(q.heap) - 1)
}

// pop removes and returns the minimum event, recycling its slab slot.
func (q *eventQueue) pop() event {
	h := q.heap
	root := h[0]
	last := len(h) - 1
	h[0] = h[last]
	q.heap = h[:last]
	if last > 0 {
		q.down(0)
	}
	e := q.slab[root]
	// Drop references so completed activations and their pooled state are
	// not kept alive by a recycled slot.
	q.slab[root].act = nil
	q.slab[root].node = nil
	q.free = append(q.free, root)
	return e
}

func (q *eventQueue) up(i int) {
	h := q.heap
	for i > 0 {
		p := (i - 1) >> 2
		if !q.less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (q *eventQueue) down(i int) {
	h := q.heap
	n := len(h)
	for {
		c := i<<2 + 1
		if c >= n {
			return
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if q.less(h[j], h[best]) {
				best = j
			}
		}
		if !q.less(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
