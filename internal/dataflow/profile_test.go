package dataflow

import (
	"strings"
	"testing"
)

const profileSrc = `
int out[8];

int fill(int n) {
  int i;
  for (i = 0; i < n; i++) out[i] = i * i;
  return out[n - 1];
}`

func TestInspectorReadsGlobals(t *testing.T) {
	p := compileProgram(t, profileSrc)
	res, insp, err := RunInspect(p, "fill", []int64{8}, DefaultConfig())
	if err != nil {
		t.Fatalf("RunInspect: %v", err)
	}
	if res.Value != 49 {
		t.Fatalf("fill(8) = %d, want 49", res.Value)
	}
	var base uint32
	found := false
	for _, o := range p.Alias.Objects {
		if o.Name == "out" {
			base, found = p.Layout.AddressOfObject(o.ID)
			break
		}
	}
	if !found {
		t.Fatal("global `out` not in layout")
	}
	for i := int64(0); i < 8; i++ {
		if got := insp.ReadWord(base + uint32(4*i)); got != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, got, i*i)
		}
	}
	raw := insp.ReadBytes(base, 8)
	if len(raw) != 8 {
		t.Fatalf("ReadBytes returned %d bytes, want 8", len(raw))
	}
	// out[1] == 1, little-endian word at offset 4.
	if raw[4] != 1 || raw[5] != 0 {
		t.Fatalf("ReadBytes content mismatch: % x", raw)
	}
}

func TestProfileHotAndFormat(t *testing.T) {
	p := compileProgram(t, profileSrc)
	res, prof, err := RunProfiled(p, "fill", []int64{8}, DefaultConfig())
	if err != nil {
		t.Fatalf("RunProfiled: %v", err)
	}
	hot := prof.Hot(3)
	if len(hot) != 3 {
		t.Fatalf("Hot(3) returned %d entries", len(hot))
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Count > hot[i-1].Count {
			t.Fatalf("Hot not sorted: %d before %d", hot[i-1].Count, hot[i].Count)
		}
	}
	for _, h := range hot {
		if h.Count <= 0 {
			t.Fatalf("hot node %s has count %d", h.Node, h.Count)
		}
		if prof.Fires(h.Node) != h.Count {
			t.Fatalf("Fires(%s) = %d, Hot says %d", h.Node, prof.Fires(h.Node), h.Count)
		}
		if h.Utilization <= 0 || h.Utilization > 1 {
			t.Fatalf("utilization %f outside (0,1]", h.Utilization)
		}
	}
	// Asking for more entries than nodes must not pad.
	if all := prof.Hot(1 << 20); int64(len(all)) > res.Stats.OpsFired {
		t.Fatalf("Hot returned %d entries for %d fired ops", len(all), res.Stats.OpsFired)
	}
	var kindTotal int64
	for _, c := range prof.ByKind {
		kindTotal += c
	}
	if kindTotal != res.Stats.OpsFired {
		t.Fatalf("ByKind sums to %d, stats fired %d", kindTotal, res.Stats.OpsFired)
	}
	txt := prof.Format(5)
	if !strings.Contains(txt, "firing counts by kind:") || !strings.Contains(txt, "hottest 5 operators:") {
		t.Fatalf("Format missing sections:\n%s", txt)
	}
	if !strings.Contains(txt, "eta") {
		t.Fatalf("Format of a loop kernel should mention etas:\n%s", txt)
	}
}
