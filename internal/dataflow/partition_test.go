package dataflow

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"spatial/internal/faultsim"
	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
)

// partSrc exercises loops, a token generator, recursion (frame
// recycling), and memory traffic across several hyperblocks — the same
// shape TestDeterministicReplay uses.
const partSrc = `
int a[40];
int rec(int n) {
  int pad[8];
  pad[0] = n * 3;
  if (n <= 0) return pad[0];
  return pad[0] + rec(n - 1);
}
int f(void) {
  int i;
  for (i = 0; i < 40; i++) a[i] = i;
  for (i = 0; i < 37; i++) a[i] = a[i+3] * 2;
  int s = rec(5);
  for (i = 0; i < 40; i++) s = s * 5 + a[i];
  return s & 0xffffff;
}`

func recordPartEvents(t *testing.T, p *pegasus.Program, entry string, cfg Config, part *Partition) ([]evRecord, *Result) {
	t.Helper()
	var evs []evRecord
	res, _, err := runMachine(p, entry, nil, cfg, runOpts{
		part: part,
		evHook: func(time, seq int64, act int, node *pegasus.Node) {
			evs = append(evs, evRecord{time, seq, act, node.ID})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return evs, res
}

// TestPartitionedReplaysSequential is the engine-level bit-identity
// check: for several partition counts and window widths (small windows
// force heavy cross-window domain traffic), the partitioned scheduler
// must replay the sequential engine's exact event stream — every
// (time, seq, activation, node) in the same order — and produce an
// identical Result, on perfect and realistic memory.
func TestPartitionedReplaysSequential(t *testing.T) {
	p := optProgram(t, partSrc, opt.Full)
	for _, mem := range []struct {
		name string
		cfg  memsys.Config
	}{
		{"perfect", memsys.PerfectConfig()},
		{"paper", memsys.PaperConfig(2)},
	} {
		cfg := DefaultConfig()
		cfg.Mem = mem.cfg
		want, wantRes := func() ([]evRecord, *Result) {
			var evs []evRecord
			res, _, err := runMachine(p, "f", nil, cfg, runOpts{
				evHook: func(time, seq int64, act int, node *pegasus.Node) {
					evs = append(evs, evRecord{time, seq, act, node.ID})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			return evs, res
		}()
		for _, n := range []int{1, 2, 3, 4, 8} {
			for _, w := range []int64{2, 8, defaultWindow} {
				part, err := BuildPartition(p, n, nil)
				if err != nil {
					t.Fatal(err)
				}
				part.SetWindow(w)
				got, gotRes := recordPartEvents(t, p, "f", cfg, part)
				if *gotRes != *wantRes {
					t.Fatalf("%s n=%d w=%d: Result diverged:\nseq:  %+v\npart: %+v",
						mem.name, n, w, *wantRes, *gotRes)
				}
				if len(got) != len(want) {
					t.Fatalf("%s n=%d w=%d: event counts differ: %d vs %d",
						mem.name, n, w, len(want), len(got))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s n=%d w=%d: event %d differs: %+v vs %+v",
							mem.name, n, w, i, want[i], got[i])
					}
				}
			}
		}
	}
}

// TestPartitionedFaulted pins that fault injection fires identically
// under partitioning: injected delays push events far past the window
// fence (maxDelay 500 vs window 8), exercising the domain heaps and the
// starvation fast-forward, and the Result must still match a sequential
// faulted run with an identically-seeded injector.
func TestPartitionedFaulted(t *testing.T) {
	p := optProgram(t, partSrc, opt.Full)
	sh := Prebuild(p)
	part, err := BuildPartition(p, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	part.SetWindow(8)
	for seed := int64(1); seed <= 5; seed++ {
		want, errW := sh.RunFaulted(nil, "f", nil, DefaultConfig(), faultsim.NewJitter(seed, 0.05, 500))
		got, errG := sh.RunPartitionedFaulted(nil, "f", nil, DefaultConfig(), part, faultsim.NewJitter(seed, 0.05, 500))
		if (errW == nil) != (errG == nil) {
			t.Fatalf("seed %d: error presence diverged: %v vs %v", seed, errW, errG)
		}
		if errW != nil {
			if errW.Error() != errG.Error() {
				t.Fatalf("seed %d: error text diverged:\n%v\n%v", seed, errW, errG)
			}
			continue
		}
		if *want != *got {
			t.Fatalf("seed %d: Result diverged:\nseq:  %+v\npart: %+v", seed, *want, *got)
		}
	}
}

// TestPartitionedAbortText pins that abort paths (here: livelock) report
// the same typed error with the same text — stuck reports read machine
// state, never the queue, so partitioning must not change a word.
func TestPartitionedAbortText(t *testing.T) {
	p := optProgram(t, partSrc, opt.Full)
	cfg := DefaultConfig()
	cfg.MaxCycles = 50 // far too few for partSrc: aborts mid-flight
	_, errW := Run(p, "f", nil, cfg)
	part, err := BuildPartition(p, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	part.SetWindow(2)
	_, errG := RunPartitioned(nil, p, "f", nil, cfg, part)
	if errW == nil || errG == nil {
		t.Fatalf("expected livelock aborts, got %v / %v", errW, errG)
	}
	if errW.Error() != errG.Error() {
		t.Fatalf("abort text diverged:\n%v\n%v", errW, errG)
	}
}

// TestPartitionedNoGoroutineLeak runs many partitioned simulations —
// clean completions and aborts — and requires the goroutine count to
// return to baseline: every run-loop exit path must stop its workers.
func TestPartitionedNoGoroutineLeak(t *testing.T) {
	p := optProgram(t, partSrc, opt.Full)
	sh := Prebuild(p)
	part, err := BuildPartition(p, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	part.SetWindow(2)
	before := runtime.NumGoroutine()
	abortCfg := DefaultConfig()
	abortCfg.MaxCycles = 50
	for i := 0; i < 20; i++ {
		if _, err := sh.RunPartitioned(nil, "f", nil, DefaultConfig(), part); err != nil {
			t.Fatal(err)
		}
		if _, _, err := runMachine(p, "f", nil, abortCfg, runOpts{shared: sh, part: part}); err == nil {
			t.Fatal("expected abort")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestBuildPartitionValidation covers the argument checks.
func TestBuildPartitionValidation(t *testing.T) {
	p := optProgram(t, partSrc, opt.Full)
	if _, err := BuildPartition(p, 0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BuildPartition(p, maxPartitions+1, nil); err == nil {
		t.Error("n over limit accepted")
	}
	part, err := BuildPartition(p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := optProgram(t, "int f(void) { return 7; }", opt.Full)
	if _, err := RunPartitioned(nil, other, "f", nil, DefaultConfig(), part); err == nil ||
		!strings.Contains(err.Error(), "different program") {
		t.Errorf("cross-program partition accepted: %v", err)
	}
	// Profiled weights steer the split without changing results.
	res, prof, err := RunProfiled(p, "f", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wpart, err := BuildPartition(p, 4, prof)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := RunPartitioned(nil, p, "f", nil, DefaultConfig(), wpart)
	if err != nil {
		t.Fatal(err)
	}
	if *wres != *res {
		t.Fatalf("weighted partition diverged: %+v vs %+v", *res, *wres)
	}
}
