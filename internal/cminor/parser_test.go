package cminor

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func mustFront(t *testing.T, src string) *Program {
	t.Helper()
	prog := mustParse(t, src)
	if err := Check(prog); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return prog
}

func TestParseGlobalScalars(t *testing.T) {
	prog := mustFront(t, "int x; unsigned y = 3; static int z = -1;")
	if len(prog.Globals) != 3 {
		t.Fatalf("globals = %d, want 3", len(prog.Globals))
	}
	if prog.Globals[1].Type != UInt && !prog.Globals[1].Type.Same(UInt) {
		t.Errorf("y type = %v", prog.Globals[1].Type)
	}
	v, err := ConstEval(prog.Globals[2].Init)
	if err != nil || v != -1 {
		t.Errorf("z init = %d, %v", v, err)
	}
	if !prog.Globals[2].Static {
		t.Error("z not marked static")
	}
}

func TestParseArrays(t *testing.T) {
	prog := mustFront(t, "int a[10]; extern int b[]; int m[2][3]; char s[4] = {1,2,3,4};")
	a := prog.Global("a")
	if !a.Type.IsArray() || a.Type.Len != 10 {
		t.Errorf("a type = %v", a.Type)
	}
	b := prog.Global("b")
	if !b.Type.IsArray() || b.Type.Len != -1 || !b.Extern {
		t.Errorf("b = %+v", b)
	}
	m := prog.Global("m")
	if m.Type.Len != 2 || m.Type.Elem.Len != 3 {
		t.Errorf("m type = %v, want int[2][3]", m.Type)
	}
	s := prog.Global("s")
	if len(s.InitList) != 4 {
		t.Errorf("s initializers = %d", len(s.InitList))
	}
}

func TestParsePointerTypes(t *testing.T) {
	prog := mustFront(t, "int *p; const char *s; int **pp;")
	if !prog.Global("p").Type.IsPointer() {
		t.Error("p not a pointer")
	}
	s := prog.Global("s").Type
	if !s.IsPointer() || !s.Elem.Const || s.Elem.Bits != 8 {
		t.Errorf("s type = %v", s)
	}
	pp := prog.Global("pp").Type
	if !pp.IsPointer() || !pp.Elem.IsPointer() {
		t.Errorf("pp type = %v", pp)
	}
}

func TestParseFunctionAndCalls(t *testing.T) {
	prog := mustFront(t, `
int add(int a, int b) { return a + b; }
int main(void) { return add(1, 2); }
`)
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(prog.Funcs))
	}
	main := prog.Func("main")
	ret := main.Body.Stmts[0].(*ReturnStmt)
	call := ret.X.(*CallExpr)
	if call.Func == nil || call.Func.Name != "add" {
		t.Errorf("call not resolved: %+v", call)
	}
}

func TestParsePrototypeThenDefinition(t *testing.T) {
	prog := mustFront(t, `
int f(int x);
int g(int x) { return f(x); }
int f(int x) { return x + 1; }
`)
	g := prog.Func("g")
	call := g.Body.Stmts[0].(*ReturnStmt).X.(*CallExpr)
	if call.Func.Body == nil {
		t.Error("call resolved to the prototype, not the definition")
	}
}

func TestParseControlFlow(t *testing.T) {
	prog := mustFront(t, `
int f(int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i++) {
    if (i % 2 == 0) s += i; else s -= i;
    while (s > 100) { s /= 2; }
    do { s++; } while (s < 0);
    if (s == 42) break;
    if (s == 7) continue;
  }
  return s;
}
`)
	f := prog.Func("f")
	if f == nil || len(f.Locals) != 2 {
		t.Fatalf("locals = %d, want 2", len(f.Locals))
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustFront(t, "int f(int a, int b, int c) { return a + b * c; }")
	ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
	add := ret.X.(*BinExpr)
	if add.Op != OpAdd {
		t.Fatalf("root op = %v", add.Op)
	}
	if mul, ok := add.R.(*BinExpr); !ok || mul.Op != OpMul {
		t.Errorf("b*c not grouped under +: %T", add.R)
	}
}

func TestParseTernaryAndShortCircuit(t *testing.T) {
	mustFront(t, `
int f(int a, int b) { return a ? a + 1 : b - 1; }
int g(int *p) { return p && *p; }
int h(int a, int b) { return a || b; }
`)
}

func TestParseCompoundAssignDesugars(t *testing.T) {
	prog := mustFront(t, "int a[10]; void f(int i) { a[i] += 3; }")
	st := prog.Func("f").Body.Stmts[0].(*ExprStmt)
	asn := st.X.(*AssignExpr)
	rhs := asn.RHS.(*BinExpr)
	if rhs.Op != OpAdd {
		t.Fatalf("rhs op = %v", rhs.Op)
	}
	if _, ok := rhs.L.(*IndexExpr); !ok {
		t.Errorf("compound assign did not clone the lvalue: %T", rhs.L)
	}
}

func TestParseIncDecDesugars(t *testing.T) {
	prog := mustFront(t, "void f(void) { int i = 0; i++; --i; }")
	f := prog.Func("f")
	for _, idx := range []int{1, 2} {
		st, ok := f.Body.Stmts[idx].(*ExprStmt)
		if !ok {
			t.Fatalf("stmt %d is %T", idx, f.Body.Stmts[idx])
		}
		if _, ok := st.X.(*AssignExpr); !ok {
			t.Errorf("stmt %d not desugared to assignment: %T", idx, st.X)
		}
	}
}

func TestParsePragmaIndependent(t *testing.T) {
	prog := mustFront(t, `
void f(int *p, int *q) {
  #pragma independent p q
  *p = *q + 1;
}
`)
	f := prog.Func("f")
	if len(f.Pragmas) != 1 || f.Pragmas[0].A != "p" || f.Pragmas[0].B != "q" {
		t.Fatalf("pragmas = %+v", f.Pragmas)
	}
}

func TestParseCastsAndSizedTypes(t *testing.T) {
	mustFront(t, `
void f(char *buf, int n) {
  short s = (short)n;
  unsigned char c = (unsigned char)(n >> 8);
  buf[0] = (char)s;
  buf[1] = (char)c;
  int *ip = (int*)buf;
  *ip = (int)c;
}
`)
}

func TestParseStringLiteralInterned(t *testing.T) {
	prog := mustFront(t, `
const char *f(void) { return "abc"; }
const char *g(void) { return "abc"; }
const char *h(void) { return "xyz"; }
`)
	if len(prog.Strings) != 2 {
		t.Fatalf("interned strings = %d, want 2", len(prog.Strings))
	}
}

func TestParseErrorCases(t *testing.T) {
	bad := map[string]string{
		"int f( { }":                                    "expected",
		"int x = ;":                                     "expression",
		"void f(void) { y = 1; }":                       "undeclared",
		"void f(void) { int x; int x; }":                "redeclared",
		"int f(void) { return; }":                       "missing return value",
		"void f(void) { return 1; }":                    "return with a value",
		"void f(int a) { (a = 1) + 2; }":                "assignment may only appear",
		"void f(int a, int b) { int c = a ? b++ : 0; }": "may only appear",
		"void f(int *p) { int x = p && f(p); }":         "call not allowed",
		"int g(int y);\nvoid f(void) { g(1,2); }":       "expects 1 arguments",
		"void f(void) { h(); }":                         "undeclared function",
		"void f(void) { int a[]; }":                     "extern",
		"int a[0];":                                     "non-positive",
		"void f(void) { break }":                        "expected",
		"#pragma independent a b\nint x;":               "inside a function",
		"void f(int x) { #pragma independent x x\n }":   "not a pointer",
		"void f(void) { #pragma independent p q\n }":    "unknown name",
		"void f(const int *p) { *p = 1; }":              "const",
		"void f(int x) { 3 = x; }":                      "not an lvalue",
		"void f(int x) { x++ ++; }":                     "may only appear",
	}
	for src, want := range bad {
		prog, err := Parse(src)
		if err == nil {
			err = Check(prog)
		}
		if err == nil {
			t.Errorf("front end accepted %q", src)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error for %q = %q, want substring %q", src, err, want)
		}
	}
}

func TestAddrTakenMarking(t *testing.T) {
	prog := mustFront(t, `
int g(int *p) { return *p; }
int f(void) {
  int x = 1;
  int y = 2;
  int r = g(&x);
  return r + y;
}
`)
	f := prog.Func("f")
	byName := map[string]*VarDecl{}
	for _, l := range f.Locals {
		byName[l.Name] = l
	}
	if !byName["x"].AddrTaken {
		t.Error("x should be address-taken")
	}
	if byName["y"].AddrTaken {
		t.Error("y should not be address-taken")
	}
}

func TestTypeRules(t *testing.T) {
	prog := mustFront(t, `
unsigned u;
int f(int a, unsigned b, int *p) {
  int x = a + 1;
  unsigned y = a + b;
  int c = a < (int)b;
  int *q = p + a;
  int d = q - p;
  return x + (int)y + c + *q + d;
}
`)
	f := prog.Func("f")
	// a + b with one unsigned operand is unsigned.
	decl := f.Body.Stmts[1].(*DeclStmt)
	bin := decl.Var.Init.(*BinExpr)
	if bin.Typ.Signed {
		t.Errorf("a + b type = %v, want unsigned", bin.Typ)
	}
	// q - p is int.
	d := f.Body.Stmts[4].(*DeclStmt)
	if !d.Var.Init.(*BinExpr).Typ.Same(Int) {
		t.Errorf("q - p type = %v", d.Var.Init.Type())
	}
}

func TestConstEval(t *testing.T) {
	cases := map[string]int64{
		"1 + 2*3":            7,
		"-(4)":               -4,
		"~0":                 -1,
		"!3":                 0,
		"!0":                 1,
		"10 / 3":             3,
		"10 % 3":             1,
		"1 << 4":             16,
		"0x100 >> 4":         16,
		"(5 > 2) + (1 == 1)": 2,
		"7 & 3":              3,
		"1 | 6":              7,
		"5 ^ 1":              4,
	}
	for src, want := range cases {
		prog := mustFront(t, "int x = "+src+";")
		got, err := ConstEval(prog.Globals[0].Init)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
}

func TestConstEvalDivZero(t *testing.T) {
	prog := mustParse(t, "int x = 1/0;")
	if err := Check(prog); err == nil {
		t.Error("1/0 accepted as constant initializer")
	}
}

func TestTruncateTo(t *testing.T) {
	cases := []struct {
		v    int64
		t    *Type
		want int64
	}{
		{0x1ff, Char, -1},
		{0x1ff, UChar, 0xff},
		{0x18000, Short, -0x8000},
		{0x18000, UShort, 0x8000},
		{1 << 33, Int, 0},
		{0xffffffff, UInt, -1}, // canonical sign-extended form
	}
	for _, c := range cases {
		if got := truncateTo(c.v, c.t); got != c.want {
			t.Errorf("truncateTo(%#x, %v) = %d, want %d", c.v, c.t, got, c.want)
		}
	}
}

func TestUsualArith(t *testing.T) {
	if usualArith(Char, Char).Bits != 32 {
		t.Error("char+char should promote to 32 bits")
	}
	if usualArith(Int, UInt).Signed {
		t.Error("int+unsigned should be unsigned")
	}
	if !usualArith(Short, Char).Signed {
		t.Error("short+char should be signed int")
	}
}

func TestGlobalAddressInitializers(t *testing.T) {
	prog := mustFront(t, `
int target;
int arr[4];
int *gp = &target;
int *ap = arr;
const char *msg = "hello";
void f(void) { *gp = 1; }
`)
	if prog.Global("gp") == nil {
		t.Fatal("gp missing")
	}
}

func TestGlobalBadInitializers(t *testing.T) {
	bad := []string{
		"int x; int y = x;",                      // value of another global: not const
		"int f(void) { return 1; } int z = f();", // call
	}
	for _, src := range bad {
		prog, err := Parse(src)
		if err == nil {
			err = Check(prog)
		}
		if err == nil {
			t.Errorf("accepted non-constant global initializer: %q", src)
		}
	}
}
