// Package cminor implements the front end for the C subset compiled by
// CASH: a lexer, a recursive-descent parser, and a type checker. The
// subset ("cMinor") covers the features the Pegasus memory optimizations
// exercise: integers of several widths, pointers, arrays, all C control
// flow except goto/switch, function calls, and the `#pragma independent`
// annotation from the paper (Section 7.1).
package cminor

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds. Single-character operators use their ASCII value is not
// done here; every kind is a distinct enumerator so switches are exhaustive.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokChar   // 'c'
	TokString // "..."

	// Keywords.
	TokKwInt
	TokKwUnsigned
	TokKwChar
	TokKwShort
	TokKwLong
	TokKwVoid
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwDo
	TokKwFor
	TokKwReturn
	TokKwBreak
	TokKwContinue
	TokKwConst
	TokKwExtern
	TokKwStatic
	TokKwSigned
	TokKwPragma // the word "independent" after #pragma is parsed specially

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokQuestion
	TokColon

	TokAssign     // =
	TokPlusEq     // +=
	TokMinusEq    // -=
	TokStarEq     // *=
	TokSlashEq    // /=
	TokPercentEq  // %=
	TokShlEq      // <<=
	TokShrEq      // >>=
	TokAndEq      // &=
	TokOrEq       // |=
	TokXorEq      // ^=
	TokPlusPlus   // ++
	TokMinusMinus // --

	TokOrOr    // ||
	TokAndAnd  // &&
	TokOr      // |
	TokXor     // ^
	TokAnd     // &
	TokEq      // ==
	TokNe      // !=
	TokLt      // <
	TokGt      // >
	TokLe      // <=
	TokGe      // >=
	TokShl     // <<
	TokShr     // >>
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokNot     // !
	TokTilde   // ~
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokChar: "char literal", TokString: "string literal",
	TokKwInt: "int", TokKwUnsigned: "unsigned", TokKwChar: "char",
	TokKwShort: "short", TokKwLong: "long",
	TokKwVoid: "void", TokKwIf: "if", TokKwElse: "else",
	TokKwWhile: "while", TokKwDo: "do", TokKwFor: "for",
	TokKwReturn: "return", TokKwBreak: "break", TokKwContinue: "continue",
	TokKwConst: "const", TokKwExtern: "extern", TokKwStatic: "static",
	TokKwSigned: "signed", TokKwPragma: "#pragma",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokQuestion: "?", TokColon: ":",
	TokAssign: "=", TokPlusEq: "+=", TokMinusEq: "-=", TokStarEq: "*=",
	TokSlashEq: "/=", TokPercentEq: "%=", TokShlEq: "<<=", TokShrEq: ">>=",
	TokAndEq: "&=", TokOrEq: "|=", TokXorEq: "^=",
	TokPlusPlus: "++", TokMinusMinus: "--",
	TokOrOr: "||", TokAndAnd: "&&", TokOr: "|", TokXor: "^", TokAnd: "&",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokGt: ">", TokLe: "<=", TokGe: ">=",
	TokShl: "<<", TokShr: ">>", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokNot: "!", TokTilde: "~",
}

// String returns a human-readable name for the token kind.
func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"int": TokKwInt, "unsigned": TokKwUnsigned, "char": TokKwChar,
	"short": TokKwShort, "long": TokKwLong,
	"void": TokKwVoid, "if": TokKwIf, "else": TokKwElse,
	"while": TokKwWhile, "do": TokKwDo, "for": TokKwFor,
	"return": TokKwReturn, "break": TokKwBreak, "continue": TokKwContinue,
	"const": TokKwConst, "extern": TokKwExtern, "static": TokKwStatic,
	"signed": TokKwSigned,
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string // identifier or literal spelling
	Val  int64  // numeric value for TokNumber/TokChar
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokNumber, TokString:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
