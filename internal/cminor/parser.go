package cminor

import "fmt"

// Parser is a recursive-descent parser for cMinor.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a translation unit. The result is untyped; run Check to
// resolve names and types.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peekKind(n int) TokKind {
	if p.pos+n >= len(p.toks) {
		return TokEOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

// isTypeStart reports whether the current token begins a type.
func (p *Parser) isTypeStart() bool {
	switch p.cur().Kind {
	case TokKwInt, TokKwUnsigned, TokKwChar, TokKwShort, TokKwLong, TokKwVoid,
		TokKwConst, TokKwSigned:
		return true
	}
	return false
}

// parseBaseType parses a type specifier (const? (unsigned|signed)?
// (char|short|int|long|void)) followed by any number of '*'.
func (p *Parser) parseBaseType() (*Type, error) {
	isConst := false
	for p.accept(TokKwConst) {
		isConst = true
	}
	signed := true
	sawSign := false
	if p.accept(TokKwUnsigned) {
		signed = false
		sawSign = true
	} else if p.accept(TokKwSigned) {
		sawSign = true
	}
	var base *Type
	switch p.cur().Kind {
	case TokKwInt:
		p.next()
		base = Int
	case TokKwChar:
		p.next()
		base = Char
	case TokKwShort:
		p.next()
		p.accept(TokKwInt) // "short int"
		base = Short
	case TokKwLong:
		p.next()
		p.accept(TokKwInt) // "long int" — modeled as 32-bit like pisa
		base = Int
	case TokKwVoid:
		p.next()
		base = Void
	default:
		if sawSign {
			base = Int // bare "unsigned"/"signed"
		} else {
			return nil, errf(p.cur().Pos, "expected type, found %s", p.cur())
		}
	}
	t := *base
	t.Signed = t.Kind == TypeInt && signed
	if base.Kind != TypeInt {
		t.Signed = false
		if sawSign {
			return nil, errf(p.cur().Pos, "signedness on non-integer type")
		}
	}
	// const before '*' qualifies the pointee.
	for p.accept(TokKwConst) {
		isConst = true
	}
	t.Const = isConst
	result := &t
	for p.accept(TokStar) {
		result = PointerTo(result)
		for p.accept(TokKwConst) {
			result.Const = true
		}
	}
	return result, nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		extern := false
		static := false
		for {
			if p.accept(TokKwExtern) {
				extern = true
				continue
			}
			if p.accept(TokKwStatic) {
				static = true
				continue
			}
			break
		}
		if p.cur().Kind == TokKwPragma {
			// File-scope pragmas are not supported; point users at
			// function-scope placement, which is what the paper used.
			return nil, errf(p.cur().Pos, "#pragma independent must appear inside a function body")
		}
		typ, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if p.cur().Kind == TokLParen {
			fn, err := p.parseFuncRest(typ, nameTok)
			if err != nil {
				return nil, err
			}
			if extern && fn.Body != nil {
				return nil, errf(nameTok.Pos, "extern function %s has a body", fn.Name)
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		// One or more global variable declarators.
		for {
			v, err := p.parseDeclarator(typ, nameTok, extern)
			if err != nil {
				return nil, err
			}
			v.Global = true
			v.Static = static
			prog.Globals = append(prog.Globals, v)
			if p.accept(TokComma) {
				nameTok, err = p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// parseDeclarator parses the array suffix and optional initializer for a
// variable whose base type and name are already consumed.
func (p *Parser) parseDeclarator(typ *Type, nameTok Token, extern bool) (*VarDecl, error) {
	v := &VarDecl{Pos: nameTok.Pos, Name: nameTok.Text, Type: typ, Extern: extern}
	for p.cur().Kind == TokLBracket {
		p.next()
		if p.accept(TokRBracket) {
			if !extern {
				return nil, errf(nameTok.Pos, "unsized array %s requires extern", v.Name)
			}
			v.Type = ArrayOf(v.Type, -1)
			continue
		}
		szTok, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		if szTok.Val <= 0 {
			return nil, errf(szTok.Pos, "array %s has non-positive size %d", v.Name, szTok.Val)
		}
		v.Type = ArrayOf(v.Type, szTok.Val)
	}
	// Multidimensional arrays parse inside-out above; reverse the nesting
	// so a[2][3] is array(2) of array(3).
	v.Type = normalizeArrayNesting(typ, v.Type)
	if p.accept(TokAssign) {
		if p.cur().Kind == TokLBrace {
			p.next()
			for !p.accept(TokRBrace) {
				e, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				v.InitList = append(v.InitList, e)
				if !p.accept(TokComma) {
					if _, err := p.expect(TokRBrace); err != nil {
						return nil, err
					}
					break
				}
			}
		} else {
			e, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			v.Init = e
		}
	}
	return v, nil
}

// normalizeArrayNesting fixes the dimension order of multidimensional
// arrays: parsing appends dimensions outermost-last, C wants
// outermost-first.
func normalizeArrayNesting(base, parsed *Type) *Type {
	var dims []int64
	t := parsed
	for t.Kind == TypeArray {
		dims = append(dims, t.Len)
		t = t.Elem
	}
	if len(dims) <= 1 {
		return parsed
	}
	// dims is collected outermost-parsed-first, i.e. a[2][3] yields [3 2];
	// rebuild with the last-parsed dimension innermost.
	result := t
	for _, d := range dims {
		result = ArrayOf(result, d)
	}
	return result
}

func (p *Parser) parseFuncRest(ret *Type, nameTok Token) (*FuncDecl, error) {
	fn := &FuncDecl{Pos: nameTok.Pos, Name: nameTok.Text, Ret: ret}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if !p.accept(TokRParen) {
		if p.cur().Kind == TokKwVoid && p.peekKind(1) == TokRParen {
			p.next()
			p.next()
		} else {
			for {
				ptyp, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				pname, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				// Array parameters decay to pointers.
				for p.cur().Kind == TokLBracket {
					p.next()
					if p.cur().Kind == TokNumber {
						p.next()
					}
					if _, err := p.expect(TokRBracket); err != nil {
						return nil, err
					}
					ptyp = PointerTo(ptyp)
				}
				fn.Params = append(fn.Params, &VarDecl{
					Pos: pname.Pos, Name: pname.Text, Type: ptyp, IsParam: true,
				})
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		}
	}
	if p.accept(TokSemi) {
		return fn, nil // prototype
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	open, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: open.Pos}
	for !p.accept(TokRBrace) {
		if p.cur().Kind == TokEOF {
			return nil, errf(open.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokSemi:
		p.next()
		return &EmptyStmt{Pos: tok.Pos}, nil
	case TokKwIf:
		return p.parseIf()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwDo:
		return p.parseDoWhile()
	case TokKwFor:
		return p.parseFor()
	case TokKwReturn:
		p.next()
		if p.accept(TokSemi) {
			return &ReturnStmt{Pos: tok.Pos}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: tok.Pos, X: e}, nil
	case TokKwBreak:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: tok.Pos}, nil
	case TokKwContinue:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: tok.Pos}, nil
	case TokKwPragma:
		return p.parsePragma()
	}
	if p.isTypeStart() {
		return p.parseDeclStmt()
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: tok.Pos, X: e}, nil
}

func (p *Parser) parsePragma() (Stmt, error) {
	tok := p.next() // #pragma
	kw, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if kw.Text != "independent" {
		return nil, errf(kw.Pos, "unsupported pragma %q (only `independent` is recognized)", kw.Text)
	}
	a, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	b, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon for symmetry with statements.
	p.accept(TokSemi)
	return &PragmaStmt{Pos: tok.Pos, Pragma: IndependentPragma{Pos: tok.Pos, A: a.Text, B: b.Text}}, nil
}

// parseDeclStmt parses `type declarator (, declarator)* ;` and returns a
// BlockStmt when more than one variable is declared, so callers always get
// a single statement.
func (p *Parser) parseDeclStmt() (Stmt, error) {
	typ, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	var decls []Stmt
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		// Each declarator may add its own pointer stars in C; our subset
		// binds '*' to the base type, which covers the benchmark sources.
		v, err := p.parseDeclarator(typ, nameTok, false)
		if err != nil {
			return nil, err
		}
		decls = append(decls, &DeclStmt{Pos: nameTok.Pos, Var: v})
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &BlockStmt{Pos: decls[0].(*DeclStmt).Pos, Stmts: decls}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	tok := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	var els Stmt
	if p.accept(TokKwElse) {
		els, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Pos: tok.Pos, Cond: cond, Then: then, Else: els}, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	tok := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: tok.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseDoWhile() (Stmt, error) {
	tok := p.next()
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &DoWhileStmt{Pos: tok.Pos, Body: body, Cond: cond}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	tok := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &ForStmt{Pos: tok.Pos}
	if !p.accept(TokSemi) {
		if p.isTypeStart() {
			init, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			f.Init = init
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Init = &ExprStmt{Pos: e.Position(), X: e}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	if !p.accept(TokRParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Post = post
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// --- Expressions (precedence climbing) ---

// parseExpr parses a full expression including the comma-free assignment
// grammar used by cMinor (the comma operator is not supported).
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var compoundOps = map[TokKind]BinOpKind{
	TokPlusEq: OpAdd, TokMinusEq: OpSub, TokStarEq: OpMul,
	TokSlashEq: OpDiv, TokPercentEq: OpRem,
	TokShlEq: OpShl, TokShrEq: OpShr,
	TokAndEq: OpAnd, TokOrEq: OpOr, TokXorEq: OpXor,
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	tok := p.cur()
	if tok.Kind == TokAssign {
		p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Pos: tok.Pos, LHS: lhs, RHS: rhs}, nil
	}
	if op, ok := compoundOps[tok.Kind]; ok {
		p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		// lv op= rhs desugars to lv = lv op rhs. Aliasing is not a concern:
		// the lvalue is syntactically identical so it denotes the same
		// object, and cMinor expressions have no sequencing side effects
		// left after normalization.
		return &AssignExpr{
			Pos: tok.Pos,
			LHS: lhs,
			RHS: &BinExpr{Pos: tok.Pos, Op: op, L: cloneExpr(lhs), R: rhs},
		}, nil
	}
	return lhs, nil
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(TokQuestion) {
		return cond, nil
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Pos: cond.Position(), Cond: cond, Then: then, Else: els}, nil
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]struct {
	tok TokKind
	op  BinOpKind
}{
	{{TokOrOr, OpLogOr}},
	{{TokAndAnd, OpLogAnd}},
	{{TokOr, OpOr}},
	{{TokXor, OpXor}},
	{{TokAnd, OpAnd}},
	{{TokEq, OpEq}, {TokNe, OpNe}},
	{{TokLt, OpLt}, {TokLe, OpLe}, {TokGt, OpGt}, {TokGe, OpGe}},
	{{TokShl, OpShl}, {TokShr, OpShr}},
	{{TokPlus, OpAdd}, {TokMinus, OpSub}},
	{{TokStar, OpMul}, {TokSlash, OpDiv}, {TokPercent, OpRem}},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, cand := range binLevels[level] {
			if p.cur().Kind == cand.tok {
				tok := p.next()
				rhs, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &BinExpr{Pos: tok.Pos, Op: cand.op, L: lhs, R: rhs}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: tok.Pos, Op: OpNeg, X: x}, nil
	case TokNot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: tok.Pos, Op: OpNot, X: x}, nil
	case TokTilde:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: tok.Pos, Op: OpBitNot, X: x}, nil
	case TokStar:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &DerefExpr{Pos: tok.Pos, X: x}, nil
	case TokAnd:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &AddrExpr{Pos: tok.Pos, X: x}, nil
	case TokPlusPlus, TokMinusMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDecExpr{Pos: tok.Pos, X: x, Decr: tok.Kind == TokMinusMinus, Prefix: true}, nil
	case TokPlus:
		p.next()
		return p.parseUnary()
	case TokLParen:
		// Either a cast or a parenthesized expression.
		if p.isTypeStartAt(1) {
			p.next()
			to, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Pos: tok.Pos, To: to, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) isTypeStartAt(n int) bool {
	switch p.peekKind(n) {
	case TokKwInt, TokKwUnsigned, TokKwChar, TokKwShort, TokKwLong, TokKwVoid,
		TokKwConst, TokKwSigned:
		return true
	}
	return false
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.cur()
		switch tok.Kind {
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos: tok.Pos, Array: x, Index: idx}
		case TokPlusPlus, TokMinusMinus:
			p.next()
			x = &IncDecExpr{Pos: tok.Pos, X: x, Decr: tok.Kind == TokMinusMinus}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokNumber:
		p.next()
		return &NumberLit{Pos: tok.Pos, Val: tok.Val, Typ: Int}, nil
	case TokChar:
		p.next()
		return &NumberLit{Pos: tok.Pos, Val: tok.Val, Typ: Int}, nil
	case TokString:
		p.next()
		return &StringLit{Pos: tok.Pos, Value: tok.Text}, nil
	case TokIdent:
		p.next()
		if p.cur().Kind == TokLParen {
			p.next()
			call := &CallExpr{Pos: tok.Pos, Callee: tok.Text}
			if !p.accept(TokRParen) {
				for {
					arg, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(TokComma) {
						break
					}
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &VarRef{Pos: tok.Pos, Name: tok.Text}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(tok.Pos, "expected expression, found %s", tok)
}

// cloneExpr deep-copies an (untyped) expression tree. It is used when
// desugaring compound assignments, where the lvalue appears twice.
func cloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *NumberLit:
		c := *e
		return &c
	case *StringLit:
		c := *e
		return &c
	case *VarRef:
		c := *e
		return &c
	case *BinExpr:
		c := *e
		c.L, c.R = cloneExpr(e.L), cloneExpr(e.R)
		return &c
	case *UnExpr:
		c := *e
		c.X = cloneExpr(e.X)
		return &c
	case *CondExpr:
		c := *e
		c.Cond, c.Then, c.Else = cloneExpr(e.Cond), cloneExpr(e.Then), cloneExpr(e.Else)
		return &c
	case *IndexExpr:
		c := *e
		c.Array, c.Index = cloneExpr(e.Array), cloneExpr(e.Index)
		return &c
	case *DerefExpr:
		c := *e
		c.X = cloneExpr(e.X)
		return &c
	case *AddrExpr:
		c := *e
		c.X = cloneExpr(e.X)
		return &c
	case *CastExpr:
		c := *e
		c.X = cloneExpr(e.X)
		return &c
	case *CallExpr:
		c := *e
		c.Args = make([]Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = cloneExpr(a)
		}
		return &c
	case *AssignExpr:
		c := *e
		c.LHS, c.RHS = cloneExpr(e.LHS), cloneExpr(e.RHS)
		return &c
	case *IncDecExpr:
		c := *e
		c.X = cloneExpr(e.X)
		return &c
	}
	panic(fmt.Sprintf("cloneExpr: unknown expression %T", e))
}
