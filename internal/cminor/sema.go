package cminor

import "fmt"

// Check resolves names, assigns types, enforces the cMinor placement rules
// for side-effecting expressions, collects locals and pragmas, and interns
// string literals. It mutates the AST in place.
//
// Placement rules (they keep hyperblock predication sound and simple):
//   - assignment and ++/-- are statements: they may appear only as the root
//     of an expression statement or a for-loop init/post;
//   - the arms of ?:, &&, and || may contain loads (which become predicated
//     Pegasus loads) but no assignments or calls.
func Check(prog *Program) error {
	c := &checker{prog: prog, funcs: map[string]*FuncDecl{}, strings: map[string]int{}}
	for _, f := range prog.Funcs {
		if prev, dup := c.funcs[f.Name]; dup && prev.Body != nil && f.Body != nil {
			return errf(f.Pos, "function %s redefined", f.Name)
		}
		// Prefer the definition over a prototype.
		if prev, ok := c.funcs[f.Name]; !ok || prev.Body == nil {
			c.funcs[f.Name] = f
		}
	}
	globals := map[string]*VarDecl{}
	for _, g := range prog.Globals {
		if _, dup := globals[g.Name]; dup {
			return errf(g.Pos, "global %s redeclared", g.Name)
		}
		if _, dup := c.funcs[g.Name]; dup {
			return errf(g.Pos, "%s declared as both variable and function", g.Name)
		}
		globals[g.Name] = g
		g.Global = true
		if g.Type.Kind == TypeArray {
			g.AddrTaken = true
		}
	}
	// Initializers are checked after every global is declared, so they
	// may reference later globals (&other, array names).
	c.globals = globals
	for _, g := range prog.Globals {
		if err := c.checkGlobalInit(g); err != nil {
			return err
		}
	}
	for _, f := range prog.Funcs {
		if f.Body == nil {
			continue
		}
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog    *Program
	funcs   map[string]*FuncDecl
	globals map[string]*VarDecl
	strings map[string]int

	fn     *FuncDecl
	scopes []map[string]*VarDecl
}

func (c *checker) checkGlobalInit(g *VarDecl) error {
	if g.Init != nil {
		if err := c.checkExpr(g.Init, false); err != nil {
			return err
		}
		if !isGlobalConstInit(g.Init) {
			return errf(g.Pos, "initializer for global %s is not constant", g.Name)
		}
	}
	for _, e := range g.InitList {
		if err := c.checkExpr(e, false); err != nil {
			return err
		}
		if !isGlobalConstInit(e) {
			return errf(g.Pos, "initializer element for global %s is not constant", g.Name)
		}
	}
	if g.Type.Kind == TypeArray && g.Type.Len > 0 && int64(len(g.InitList)) > g.Type.Len {
		return errf(g.Pos, "too many initializers for %s", g.Name)
	}
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*VarDecl{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(v *VarDecl) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[v.Name]; dup {
		return errf(v.Pos, "%s redeclared in this scope", v.Name)
	}
	top[v.Name] = v
	return nil
}

func (c *checker) lookup(name string) *VarDecl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return c.globals[name]
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.scopes = nil
	c.pushScope()
	defer c.popScope()
	for _, p := range f.Params {
		if p.Type.Kind == TypeVoid || p.Type.Kind == TypeArray {
			return errf(p.Pos, "parameter %s has invalid type %s", p.Name, p.Type)
		}
		if err := c.declare(p); err != nil {
			return err
		}
	}
	return c.checkStmt(f.Body)
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		c.pushScope()
		defer c.popScope()
		for i, sub := range s.Stmts {
			if err := c.checkStmt(sub); err != nil {
				return err
			}
			s.Stmts[i] = normalizeStmt(s.Stmts[i])
		}
		return nil
	case *DeclStmt:
		v := s.Var
		if v.Type.Kind == TypeVoid {
			return errf(v.Pos, "variable %s has void type", v.Name)
		}
		if v.Type.Kind == TypeArray {
			if v.Type.Len < 0 {
				return errf(v.Pos, "local array %s must have a size", v.Name)
			}
			v.AddrTaken = true
		}
		if v.Init != nil {
			if err := c.checkExpr(v.Init, false); err != nil {
				return err
			}
			if err := c.checkAssignable(v.Type.Decay(), v.Init, v.Pos); err != nil {
				return err
			}
		}
		for _, e := range v.InitList {
			if err := c.checkExpr(e, false); err != nil {
				return err
			}
		}
		if err := c.declare(v); err != nil {
			return err
		}
		c.fn.Locals = append(c.fn.Locals, v)
		return nil
	case *ExprStmt:
		return c.checkExpr(s.X, true)
	case *IfStmt:
		if err := c.checkExpr(s.Cond, false); err != nil {
			return err
		}
		if err := c.checkStmt(s.Then); err != nil {
			return err
		}
		s.Then = normalizeStmt(s.Then)
		if s.Else != nil {
			if err := c.checkStmt(s.Else); err != nil {
				return err
			}
			s.Else = normalizeStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(s.Cond, false); err != nil {
			return err
		}
		if err := c.checkStmt(s.Body); err != nil {
			return err
		}
		s.Body = normalizeStmt(s.Body)
		return nil
	case *DoWhileStmt:
		if err := c.checkStmt(s.Body); err != nil {
			return err
		}
		s.Body = normalizeStmt(s.Body)
		return c.checkExpr(s.Cond, false)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
			s.Init = normalizeStmt(s.Init)
		}
		if s.Cond != nil {
			if err := c.checkExpr(s.Cond, false); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkExpr(s.Post, true); err != nil {
				return err
			}
			s.Post = normalizeExpr(s.Post)
		}
		if err := c.checkStmt(s.Body); err != nil {
			return err
		}
		s.Body = normalizeStmt(s.Body)
		return nil
	case *ReturnStmt:
		if s.X == nil {
			if c.fn.Ret.Kind != TypeVoid {
				return errf(s.Pos, "missing return value in %s", c.fn.Name)
			}
			return nil
		}
		if c.fn.Ret.Kind == TypeVoid {
			return errf(s.Pos, "return with a value in void function %s", c.fn.Name)
		}
		if err := c.checkExpr(s.X, false); err != nil {
			return err
		}
		return c.checkAssignable(c.fn.Ret, s.X, s.Pos)
	case *BreakStmt, *ContinueStmt, *EmptyStmt:
		return nil
	case *PragmaStmt:
		for _, name := range []string{s.Pragma.A, s.Pragma.B} {
			v := c.lookup(name)
			if v == nil {
				return errf(s.Pos, "pragma independent: unknown name %s", name)
			}
			t := v.Type.Decay()
			if !t.IsPointer() {
				return errf(s.Pos, "pragma independent: %s is not a pointer or array", name)
			}
		}
		c.fn.Pragmas = append(c.fn.Pragmas, s.Pragma)
		return nil
	}
	return fmt.Errorf("checkStmt: unknown statement %T", s)
}

// checkExpr type-checks e. stmtRoot is true when e is the root of an
// expression statement (or for-init/post), where assignments and ++/-- are
// allowed.
func (c *checker) checkExpr(e Expr, stmtRoot bool) error {
	switch e := e.(type) {
	case *NumberLit:
		if e.Typ == nil {
			e.Typ = Int
		}
		return nil
	case *StringLit:
		idx, ok := c.strings[e.Value]
		if !ok {
			idx = len(c.prog.Strings)
			c.strings[e.Value] = idx
			c.prog.Strings = append(c.prog.Strings, e)
		}
		e.Index = idx
		e.Typ = PointerTo(ConstOf(Char))
		return nil
	case *VarRef:
		v := c.lookup(e.Name)
		if v == nil {
			return errf(e.Pos, "undeclared identifier %s", e.Name)
		}
		e.Decl = v
		e.Typ = v.Type
		return nil
	case *BinExpr:
		if err := c.checkExpr(e.L, false); err != nil {
			return err
		}
		if err := c.checkExpr(e.R, false); err != nil {
			return err
		}
		if e.Op == OpLogAnd || e.Op == OpLogOr {
			if err := noSideEffects(e.R, "the right operand of "+e.Op.String()); err != nil {
				return err
			}
		}
		lt, rt := e.L.Type().Decay(), e.R.Type().Decay()
		switch {
		case e.Op.IsComparison() || e.Op == OpLogAnd || e.Op == OpLogOr:
			e.Typ = Int
		case lt.IsPointer() && rt.IsInteger() && (e.Op == OpAdd || e.Op == OpSub):
			e.Typ = lt
		case rt.IsPointer() && lt.IsInteger() && e.Op == OpAdd:
			e.Typ = rt
		case lt.IsPointer() && rt.IsPointer() && e.Op == OpSub:
			e.Typ = Int
		case lt.IsInteger() && rt.IsInteger():
			e.Typ = usualArith(lt, rt)
			if e.Op == OpShl || e.Op == OpShr {
				e.Typ = promote(lt)
			}
		default:
			return errf(e.Pos, "invalid operands to %s: %s and %s", e.Op, lt, rt)
		}
		return nil
	case *UnExpr:
		if err := c.checkExpr(e.X, false); err != nil {
			return err
		}
		t := e.X.Type().Decay()
		switch e.Op {
		case OpNot:
			e.Typ = Int
		case OpNeg, OpBitNot:
			if !t.IsInteger() {
				return errf(e.Pos, "invalid operand to %s: %s", e.Op, t)
			}
			e.Typ = promote(t)
		}
		return nil
	case *CondExpr:
		if err := c.checkExpr(e.Cond, false); err != nil {
			return err
		}
		if err := c.checkExpr(e.Then, false); err != nil {
			return err
		}
		if err := c.checkExpr(e.Else, false); err != nil {
			return err
		}
		for _, arm := range []Expr{e.Then, e.Else} {
			if err := noSideEffects(arm, "a ?: arm"); err != nil {
				return err
			}
		}
		tt, et := e.Then.Type().Decay(), e.Else.Type().Decay()
		switch {
		case tt.Same(et):
			e.Typ = tt
		case tt.IsInteger() && et.IsInteger():
			e.Typ = usualArith(tt, et)
		case tt.IsPointer() && et.IsInteger():
			e.Typ = tt // p : 0
		case et.IsPointer() && tt.IsInteger():
			e.Typ = et
		default:
			return errf(e.Pos, "?: arms have incompatible types %s and %s", tt, et)
		}
		return nil
	case *IndexExpr:
		if err := c.checkExpr(e.Array, false); err != nil {
			return err
		}
		if err := c.checkExpr(e.Index, false); err != nil {
			return err
		}
		at := e.Array.Type().Decay()
		if !at.IsPointer() {
			return errf(e.Pos, "indexed expression has type %s, not array/pointer", e.Array.Type())
		}
		if !e.Index.Type().Decay().IsInteger() {
			return errf(e.Pos, "array index has type %s", e.Index.Type())
		}
		e.Typ = at.Elem
		return nil
	case *DerefExpr:
		if err := c.checkExpr(e.X, false); err != nil {
			return err
		}
		t := e.X.Type().Decay()
		if !t.IsPointer() {
			return errf(e.Pos, "cannot dereference %s", t)
		}
		e.Typ = t.Elem
		return nil
	case *AddrExpr:
		if err := c.checkExpr(e.X, false); err != nil {
			return err
		}
		switch lv := e.X.(type) {
		case *VarRef:
			lv.Decl.AddrTaken = true
			if lv.Decl.Type.Kind == TypeArray {
				e.Typ = PointerTo(lv.Decl.Type.Elem)
			} else {
				e.Typ = PointerTo(lv.Decl.Type)
			}
		case *IndexExpr:
			e.Typ = PointerTo(lv.Type())
		case *DerefExpr:
			e.Typ = lv.X.Type().Decay()
		default:
			return errf(e.Pos, "cannot take the address of this expression")
		}
		return nil
	case *CastExpr:
		if err := c.checkExpr(e.X, false); err != nil {
			return err
		}
		from := e.X.Type().Decay()
		to := e.To
		ok := (from.IsInteger() || from.IsPointer()) && (to.IsInteger() || to.IsPointer())
		if !ok {
			return errf(e.Pos, "invalid cast from %s to %s", from, to)
		}
		return nil
	case *CallExpr:
		fn, ok := c.funcs[e.Callee]
		if !ok {
			return errf(e.Pos, "call to undeclared function %s", e.Callee)
		}
		e.Func = fn
		e.Typ = fn.Ret
		if len(e.Args) != len(fn.Params) {
			return errf(e.Pos, "%s expects %d arguments, got %d", e.Callee, len(fn.Params), len(e.Args))
		}
		for i, a := range e.Args {
			if err := c.checkExpr(a, false); err != nil {
				return err
			}
			if err := c.checkAssignable(fn.Params[i].Type, a, e.Pos); err != nil {
				return err
			}
		}
		return nil
	case *AssignExpr:
		if !stmtRoot {
			return errf(e.Pos, "assignment may only appear as a statement in cMinor")
		}
		if err := c.checkExpr(e.LHS, false); err != nil {
			return err
		}
		if !isLvalue(e.LHS) {
			return errf(e.Pos, "left side of assignment is not an lvalue")
		}
		if lvalueType(e.LHS).Const {
			return errf(e.Pos, "assignment to const object")
		}
		if err := c.checkExpr(e.RHS, false); err != nil {
			return err
		}
		e.Typ = lvalueType(e.LHS)
		return c.checkAssignable(e.Typ, e.RHS, e.Pos)
	case *IncDecExpr:
		if !stmtRoot {
			return errf(e.Pos, "++/-- may only appear as a statement in cMinor")
		}
		if err := c.checkExpr(e.X, false); err != nil {
			return err
		}
		if !isLvalue(e.X) {
			return errf(e.Pos, "operand of ++/-- is not an lvalue")
		}
		e.Typ = lvalueType(e.X)
		return nil
	}
	return fmt.Errorf("checkExpr: unknown expression %T", e)
}

func (c *checker) checkAssignable(to *Type, from Expr, pos Pos) error {
	ft := from.Type().Decay()
	tt := to.Decay()
	switch {
	case tt.IsInteger() && ft.IsInteger():
		return nil
	case tt.IsPointer() && ft.IsPointer():
		return nil // cMinor allows pointer conversions, like pre-ANSI C
	case tt.IsPointer() && ft.IsInteger():
		// Allow the constant 0 (null) and explicit integer expressions;
		// kernels use table-driven addressing.
		return nil
	case tt.IsInteger() && ft.IsPointer():
		return nil
	}
	return errf(pos, "cannot assign %s to %s", ft, tt)
}

func isLvalue(e Expr) bool {
	switch e.(type) {
	case *VarRef, *IndexExpr, *DerefExpr:
		return true
	}
	return false
}

func lvalueType(e Expr) *Type {
	return e.Type()
}

// noSideEffects rejects assignments, ++/--, and calls inside e.
func noSideEffects(e Expr, where string) error {
	var walk func(Expr) error
	walk = func(e Expr) error {
		switch e := e.(type) {
		case *AssignExpr:
			return errf(e.Pos, "assignment not allowed in %s", where)
		case *IncDecExpr:
			return errf(e.Pos, "++/-- not allowed in %s", where)
		case *CallExpr:
			return errf(e.Pos, "call not allowed in %s (it would be speculated)", where)
		case *BinExpr:
			if err := walk(e.L); err != nil {
				return err
			}
			return walk(e.R)
		case *UnExpr:
			return walk(e.X)
		case *CondExpr:
			if err := walk(e.Cond); err != nil {
				return err
			}
			if err := walk(e.Then); err != nil {
				return err
			}
			return walk(e.Else)
		case *IndexExpr:
			if err := walk(e.Array); err != nil {
				return err
			}
			return walk(e.Index)
		case *DerefExpr:
			return walk(e.X)
		case *AddrExpr:
			return walk(e.X)
		case *CastExpr:
			return walk(e.X)
		}
		return nil
	}
	return walk(e)
}

// promote applies the integer promotions (everything computes at >= 32 bits).
func promote(t *Type) *Type {
	if t.IsInteger() && t.Bits < 32 {
		return Int
	}
	if t.Const {
		u := *t
		u.Const = false
		return &u
	}
	return t
}

// usualArith implements the usual arithmetic conversions for 32-bit ints.
func usualArith(a, b *Type) *Type {
	a, b = promote(a), promote(b)
	if !a.Signed || !b.Signed {
		return UInt
	}
	return Int
}

// normalizeStmt desugars statement-level ++/-- into plain assignments.
func normalizeStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *ExprStmt:
		s.X = normalizeExpr(s.X)
		return s
	}
	return s
}

// normalizeExpr rewrites a statement-root expression: ++/-- become
// lv = lv ± 1 (the value is unused at statement level, so prefix and
// postfix are equivalent).
func normalizeExpr(e Expr) Expr {
	id, ok := e.(*IncDecExpr)
	if !ok {
		return e
	}
	op := OpAdd
	if id.Decr {
		op = OpSub
	}
	one := &NumberLit{Pos: id.Pos, Val: 1, Typ: Int}
	rhs := &BinExpr{Pos: id.Pos, Op: op, L: cloneExpr(id.X), R: one}
	// Re-derive the type of the cloned lvalue and the sum. The clone
	// preserves resolved Decl pointers and types, so only the new nodes
	// need types.
	lt := id.X.Type().Decay()
	rhs.Typ = lt
	if lt.IsInteger() {
		rhs.Typ = promote(lt)
	}
	return &AssignExpr{Pos: id.Pos, LHS: id.X, RHS: rhs, Typ: id.X.Type()}
}

// isGlobalConstInit reports whether an expression is a valid global
// initializer: a constant expression or an address constant (&global, a
// global array's name, or a string literal) whose value the linker/layout
// resolves.
func isGlobalConstInit(e Expr) bool {
	if _, err := ConstEval(e); err == nil {
		return true
	}
	switch e := e.(type) {
	case *StringLit:
		return true
	case *VarRef:
		return e.Decl != nil && e.Decl.Global && e.Decl.Type.Kind == TypeArray
	case *AddrExpr:
		if lv, ok := e.X.(*VarRef); ok {
			return lv.Decl != nil && lv.Decl.Global
		}
	}
	return false
}

// ConstEval evaluates a compile-time constant expression. It supports the
// forms allowed in global initializers.
func ConstEval(e Expr) (int64, error) {
	switch e := e.(type) {
	case *NumberLit:
		return e.Val, nil
	case *UnExpr:
		v, err := ConstEval(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case OpNeg:
			return -v, nil
		case OpBitNot:
			return int64(int32(^v)), nil
		case OpNot:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *BinExpr:
		l, err := ConstEval(e.L)
		if err != nil {
			return 0, err
		}
		r, err := ConstEval(e.R)
		if err != nil {
			return 0, err
		}
		return evalBinOp(e.Op, l, r, e.Typ != nil && !e.Typ.Signed)
	case *CastExpr:
		v, err := ConstEval(e.X)
		if err != nil {
			return 0, err
		}
		return truncateTo(v, e.To), nil
	}
	return 0, fmt.Errorf("not a constant expression: %T", e)
}

// EvalBinOp evaluates op over canonical 32-bit values with pisa hardware
// semantics (wrapping arithmetic); uns selects unsigned semantics for
// division, remainder, shifts, and comparisons. Division by zero returns
// an error; hardware models may substitute 0.
func EvalBinOp(op BinOpKind, l, r int64, uns bool) (int64, error) {
	return evalBinOp(op, l, r, uns)
}

// evalBinOp evaluates op over 32-bit values; uns selects unsigned semantics
// for division, remainder, shifts, and comparisons.
func evalBinOp(op BinOpKind, l, r int64, uns bool) (int64, error) {
	li, ri := int32(l), int32(r)
	lu, ru := uint32(l), uint32(r)
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return int64(li + ri), nil
	case OpSub:
		return int64(li - ri), nil
	case OpMul:
		return int64(li * ri), nil
	case OpDiv:
		if ri == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		if uns {
			return int64(int32(lu / ru)), nil
		}
		if li == -1<<31 && ri == -1 {
			return int64(li), nil // wraps like pisa hardware
		}
		return int64(li / ri), nil
	case OpRem:
		if ri == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		if uns {
			return int64(int32(lu % ru)), nil
		}
		if li == -1<<31 && ri == -1 {
			return 0, nil
		}
		return int64(li % ri), nil
	case OpAnd:
		return int64(li & ri), nil
	case OpOr:
		return int64(li | ri), nil
	case OpXor:
		return int64(li ^ ri), nil
	case OpShl:
		return int64(li << (ru & 31)), nil
	case OpShr:
		if uns {
			return int64(int32(lu >> (ru & 31))), nil
		}
		return int64(li >> (ru & 31)), nil
	case OpEq:
		return b2i(li == ri), nil
	case OpNe:
		return b2i(li != ri), nil
	case OpLt:
		if uns {
			return b2i(lu < ru), nil
		}
		return b2i(li < ri), nil
	case OpLe:
		if uns {
			return b2i(lu <= ru), nil
		}
		return b2i(li <= ri), nil
	case OpGt:
		if uns {
			return b2i(lu > ru), nil
		}
		return b2i(li > ri), nil
	case OpGe:
		if uns {
			return b2i(lu >= ru), nil
		}
		return b2i(li >= ri), nil
	case OpLogAnd:
		return b2i(li != 0 && ri != 0), nil
	case OpLogOr:
		return b2i(li != 0 || ri != 0), nil
	}
	return 0, fmt.Errorf("evalBinOp: unknown operator %v", op)
}

// truncateTo narrows v to the representation of type t, then sign- or
// zero-extends back to int64.
// The canonical in-compiler representation of every 32-bit quantity
// (signed, unsigned, or pointer) is the sign-extended int32 bit pattern;
// narrower values are extended per their own signedness.
func truncateTo(v int64, t *Type) int64 {
	if t.IsPointer() {
		return int64(int32(v))
	}
	if !t.IsInteger() {
		return v
	}
	switch t.Bits {
	case 8:
		if t.Signed {
			return int64(int8(v))
		}
		return int64(uint8(v))
	case 16:
		if t.Signed {
			return int64(int16(v))
		}
		return int64(uint16(v))
	default:
		return int64(int32(v))
	}
}
