package cminor

// This file defines the abstract syntax tree produced by the parser and
// decorated by the type checker.

// Program is one translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
	// Strings holds the string literals of the program in first-appearance
	// order; each becomes an anonymous const char array object.
	Strings []*StringLit
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global variable with the given name, or nil.
func (p *Program) Global(name string) *VarDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// VarDecl declares a variable (global, local, or parameter).
type VarDecl struct {
	Pos      Pos
	Name     string
	Type     *Type
	Extern   bool
	Static   bool
	Init     Expr   // scalar initializer, or nil
	InitList []Expr // array initializer elements, or nil
	// IsParam marks function parameters.
	IsParam bool
	// AddrTaken is set by the type checker when &v appears or when the
	// variable is an array (arrays live in memory). Scalars without
	// AddrTaken are register-allocated in Pegasus (paper Section 3.3).
	AddrTaken bool
	// Global marks file-scope variables.
	Global bool
}

// FuncDecl declares or defines a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    *Type
	Params []*VarDecl
	Body   *BlockStmt // nil for a declaration (extern prototype)
	Locals []*VarDecl // all locals, filled by the checker
	// Pragmas holds independence annotations declared anywhere in the body.
	Pragmas []IndependentPragma
}

// Type returns the function's type.
func (f *FuncDecl) Type() *Type {
	params := make([]*Type, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.Type
	}
	return FuncType(f.Ret, params)
}

// IndependentPragma records `#pragma independent p q`: a promise that the
// two named pointers never alias in this function (paper Section 7.1).
type IndependentPragma struct {
	Pos  Pos
	A, B string
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// Expr is implemented by all expression nodes. Every expression carries
// the type assigned by the checker.
type Expr interface {
	expr()
	Type() *Type
	Position() Pos
}

// --- Statements ---

// BlockStmt is a { ... } sequence with its own scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	Pos Pos
	Var *VarDecl
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do { } while loop.
type DoWhileStmt struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

// ForStmt is a for loop; Init/Cond/Post may each be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
}

// ReturnStmt returns from the function; X may be nil for void.
type ReturnStmt struct {
	Pos Pos
	X   Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Pos Pos }

// PragmaStmt is a `#pragma independent a b` occurrence in statement
// position. The checker records it in FuncDecl.Pragmas; it generates no
// code.
type PragmaStmt struct {
	Pos    Pos
	Pragma IndependentPragma
}

// EmptyStmt is a bare semicolon.
type EmptyStmt struct{ Pos Pos }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*PragmaStmt) stmt()   {}
func (*EmptyStmt) stmt()    {}

// --- Expressions ---

// BinOpKind enumerates binary operators (after assignment desugaring).
type BinOpKind int

// Binary operators.
const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLogAnd // short-circuit &&
	OpLogOr  // short-circuit ||
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpLogAnd: "&&", OpLogOr: "||",
}

// String returns the C spelling of the operator.
func (op BinOpKind) String() string { return binOpNames[op] }

// IsComparison reports whether op yields a boolean truth value.
func (op BinOpKind) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// UnOpKind enumerates unary operators.
type UnOpKind int

// Unary operators.
const (
	OpNeg    UnOpKind = iota // -
	OpNot                    // !
	OpBitNot                 // ~
)

var unOpNames = [...]string{OpNeg: "-", OpNot: "!", OpBitNot: "~"}

// String returns the C spelling of the operator.
func (op UnOpKind) String() string { return unOpNames[op] }

// NumberLit is an integer literal.
type NumberLit struct {
	Pos Pos
	Val int64
	Typ *Type
}

// StringLit is a string literal; it denotes a const char array object.
type StringLit struct {
	Pos   Pos
	Value string
	Index int // index into Program.Strings, set by the checker
	Typ   *Type
}

// VarRef names a variable.
type VarRef struct {
	Pos  Pos
	Name string
	Decl *VarDecl // resolved by the checker
	Typ  *Type
}

// BinExpr is a binary operation.
type BinExpr struct {
	Pos  Pos
	Op   BinOpKind
	L, R Expr
	Typ  *Type
}

// UnExpr is a unary operation.
type UnExpr struct {
	Pos Pos
	Op  UnOpKind
	X   Expr
	Typ *Type
}

// CondExpr is the ternary ?: operator.
type CondExpr struct {
	Pos  Pos
	Cond Expr
	Then Expr
	Else Expr
	Typ  *Type
}

// IndexExpr is a[i]; it is an lvalue.
type IndexExpr struct {
	Pos   Pos
	Array Expr
	Index Expr
	Typ   *Type
}

// DerefExpr is *p; it is an lvalue.
type DerefExpr struct {
	Pos Pos
	X   Expr
	Typ *Type
}

// AddrExpr is &lv.
type AddrExpr struct {
	Pos Pos
	X   Expr // must be an lvalue
	Typ *Type
}

// CastExpr is (T)x.
type CastExpr struct {
	Pos Pos
	To  *Type
	X   Expr
}

// CallExpr is f(args...).
type CallExpr struct {
	Pos    Pos
	Callee string
	Func   *FuncDecl // resolved by the checker
	Args   []Expr
	Typ    *Type
}

// AssignExpr is lv = rhs (compound assignments are desugared by the
// checker into Op + plain assignment; see normalize.go).
type AssignExpr struct {
	Pos Pos
	LHS Expr // lvalue: VarRef, IndexExpr, or DerefExpr
	RHS Expr
	Typ *Type
}

// IncDecExpr is ++lv / lv++ / --lv / lv--; desugared by the normalizer.
type IncDecExpr struct {
	Pos    Pos
	X      Expr
	Decr   bool
	Prefix bool
	Typ    *Type
}

func (*NumberLit) expr()  {}
func (*StringLit) expr()  {}
func (*VarRef) expr()     {}
func (*BinExpr) expr()    {}
func (*UnExpr) expr()     {}
func (*CondExpr) expr()   {}
func (*IndexExpr) expr()  {}
func (*DerefExpr) expr()  {}
func (*AddrExpr) expr()   {}
func (*CastExpr) expr()   {}
func (*CallExpr) expr()   {}
func (*AssignExpr) expr() {}
func (*IncDecExpr) expr() {}

// Type implementations.
func (e *NumberLit) Type() *Type  { return e.Typ }
func (e *StringLit) Type() *Type  { return e.Typ }
func (e *VarRef) Type() *Type     { return e.Typ }
func (e *BinExpr) Type() *Type    { return e.Typ }
func (e *UnExpr) Type() *Type     { return e.Typ }
func (e *CondExpr) Type() *Type   { return e.Typ }
func (e *IndexExpr) Type() *Type  { return e.Typ }
func (e *DerefExpr) Type() *Type  { return e.Typ }
func (e *AddrExpr) Type() *Type   { return e.Typ }
func (e *CastExpr) Type() *Type   { return e.To }
func (e *CallExpr) Type() *Type   { return e.Typ }
func (e *AssignExpr) Type() *Type { return e.Typ }
func (e *IncDecExpr) Type() *Type { return e.Typ }

// Position implementations.
func (e *NumberLit) Position() Pos  { return e.Pos }
func (e *StringLit) Position() Pos  { return e.Pos }
func (e *VarRef) Position() Pos     { return e.Pos }
func (e *BinExpr) Position() Pos    { return e.Pos }
func (e *UnExpr) Position() Pos     { return e.Pos }
func (e *CondExpr) Position() Pos   { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }
func (e *DerefExpr) Position() Pos  { return e.Pos }
func (e *AddrExpr) Position() Pos   { return e.Pos }
func (e *CastExpr) Position() Pos   { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }
func (e *AssignExpr) Position() Pos { return e.Pos }
func (e *IncDecExpr) Position() Pos { return e.Pos }
