package cminor

import (
	"strconv"
	"strings"
)

// Lexer tokenizes cMinor source text. It understands the `#pragma
// independent p q` directive, which it surfaces as TokKwPragma followed by
// the identifiers, so the parser can attach the independence annotation to
// the enclosing scope (paper Section 7.1).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpace consumes whitespace and comments. It returns an error for an
// unterminated block comment.
func (lx *Lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return errf(start, "unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: text}, nil

	case isDigit(c):
		return lx.lexNumber(pos)

	case c == '\'':
		return lx.lexChar(pos)

	case c == '"':
		return lx.lexString(pos)

	case c == '#':
		// Only `#pragma` is recognized; other directives are an error so
		// users do not silently lose preprocessor semantics.
		start := lx.off
		lx.advance()
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		word := lx.src[start:lx.off]
		if word != "#pragma" {
			return Token{}, errf(pos, "unsupported directive %q", word)
		}
		return Token{Kind: TokKwPragma, Pos: pos, Text: word}, nil
	}
	return lx.lexOperator(pos)
}

func (lx *Lexer) lexNumber(pos Pos) (Token, error) {
	start := lx.off
	base := 10
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		base = 16
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	text := lx.src[start:lx.off]
	// Accept and ignore integer suffixes (u, U, l, L combinations).
	for lx.off < len(lx.src) {
		switch lx.peek() {
		case 'u', 'U', 'l', 'L':
			lx.advance()
		default:
			goto done
		}
	}
done:
	digits := text
	if base == 16 {
		digits = text[2:]
		if digits == "" {
			return Token{}, errf(pos, "malformed hex literal %q", text)
		}
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return Token{}, errf(pos, "malformed number %q: %v", text, err)
	}
	return Token{Kind: TokNumber, Pos: pos, Text: text, Val: int64(v)}, nil
}

func (lx *Lexer) lexEscape(pos Pos) (byte, error) {
	if lx.off >= len(lx.src) {
		return 0, errf(pos, "unterminated escape sequence")
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, errf(pos, "unsupported escape \\%c", c)
}

func (lx *Lexer) lexChar(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, errf(pos, "unterminated char literal")
	}
	var v byte
	c := lx.advance()
	if c == '\\' {
		e, err := lx.lexEscape(pos)
		if err != nil {
			return Token{}, err
		}
		v = e
	} else {
		v = c
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, errf(pos, "unterminated char literal")
	}
	return Token{Kind: TokChar, Pos: pos, Text: string(v), Val: int64(v)}, nil
}

func (lx *Lexer) lexString(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			e, err := lx.lexEscape(pos)
			if err != nil {
				return Token{}, err
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: TokString, Pos: pos, Text: sb.String()}, nil
}

// operator tables ordered longest-first so maximal munch is trivial.
var operators = []struct {
	text string
	kind TokKind
}{
	{"<<=", TokShlEq}, {">>=", TokShrEq},
	{"==", TokEq}, {"!=", TokNe}, {"<=", TokLe}, {">=", TokGe},
	{"<<", TokShl}, {">>", TokShr}, {"&&", TokAndAnd}, {"||", TokOrOr},
	{"+=", TokPlusEq}, {"-=", TokMinusEq}, {"*=", TokStarEq},
	{"/=", TokSlashEq}, {"%=", TokPercentEq},
	{"&=", TokAndEq}, {"|=", TokOrEq}, {"^=", TokXorEq},
	{"++", TokPlusPlus}, {"--", TokMinusMinus},
	{"(", TokLParen}, {")", TokRParen}, {"{", TokLBrace}, {"}", TokRBrace},
	{"[", TokLBracket}, {"]", TokRBracket}, {";", TokSemi}, {",", TokComma},
	{"?", TokQuestion}, {":", TokColon}, {"=", TokAssign},
	{"<", TokLt}, {">", TokGt}, {"+", TokPlus}, {"-", TokMinus},
	{"*", TokStar}, {"/", TokSlash}, {"%", TokPercent},
	{"&", TokAnd}, {"|", TokOr}, {"^", TokXor},
	{"!", TokNot}, {"~", TokTilde},
}

func (lx *Lexer) lexOperator(pos Pos) (Token, error) {
	rest := lx.src[lx.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op.text) {
			for range op.text {
				lx.advance()
			}
			return Token{Kind: op.kind, Pos: pos, Text: op.text}, nil
		}
	}
	return Token{}, errf(pos, "unexpected character %q", lx.peek())
}

// Tokenize lexes the whole input, returning all tokens including a final
// EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
