package cminor

import (
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("int x = 42;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokKwInt, TokIdent, TokAssign, TokNumber, TokSemi, TokEOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[3].Val != 42 {
		t.Errorf("number value = %d, want 42", toks[3].Val)
	}
}

func TestTokenizeOperators(t *testing.T) {
	cases := map[string]TokKind{
		"<<=": TokShlEq, ">>=": TokShrEq, "==": TokEq, "!=": TokNe,
		"<=": TokLe, ">=": TokGe, "<<": TokShl, ">>": TokShr,
		"&&": TokAndAnd, "||": TokOrOr, "+=": TokPlusEq, "-=": TokMinusEq,
		"*=": TokStarEq, "/=": TokSlashEq, "%=": TokPercentEq,
		"&=": TokAndEq, "|=": TokOrEq, "^=": TokXorEq,
		"++": TokPlusPlus, "--": TokMinusMinus, "?": TokQuestion, ":": TokColon,
		"~": TokTilde,
	}
	for text, kind := range cases {
		toks, err := Tokenize(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if len(toks) != 2 || toks[0].Kind != kind {
			t.Errorf("%q: got %v, want %v", text, toks[0].Kind, kind)
		}
	}
}

func TestTokenizeMaximalMunch(t *testing.T) {
	toks, err := Tokenize("a<<=b<<c<d")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokIdent, TokShlEq, TokIdent, TokShl, TokIdent, TokLt, TokIdent, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d: got %v, want %v (%v)", i, toks[i].Kind, k, toks)
		}
	}
}

func TestTokenizeHex(t *testing.T) {
	toks, err := Tokenize("0xff 0XF 0x0")
	if err != nil {
		t.Fatal(err)
	}
	wants := []int64{255, 15, 0}
	for i, w := range wants {
		if toks[i].Val != w {
			t.Errorf("hex %d: got %d, want %d", i, toks[i].Val, w)
		}
	}
}

func TestTokenizeSuffixes(t *testing.T) {
	toks, err := Tokenize("10u 10UL 10L")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if toks[i].Kind != TokNumber || toks[i].Val != 10 {
			t.Errorf("suffix literal %d wrong: %v", i, toks[i])
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("a // comment\n /* block\n comment */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comments not skipped: %v", toks)
	}
	if toks[1].Pos.Line != 3 {
		t.Errorf("b line = %d, want 3", toks[1].Pos.Line)
	}
}

func TestTokenizeCharAndString(t *testing.T) {
	toks, err := Tokenize(`'a' '\n' '\\' "hi\tthere"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 'a' || toks[1].Val != '\n' || toks[2].Val != '\\' {
		t.Errorf("char literals wrong: %v", toks[:3])
	}
	if toks[3].Kind != TokString || toks[3].Text != "hi\tthere" {
		t.Errorf("string literal wrong: %v", toks[3])
	}
}

func TestTokenizePragma(t *testing.T) {
	toks, err := Tokenize("#pragma independent p q")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKwPragma {
		t.Fatalf("got %v, want #pragma", toks[0])
	}
	if toks[1].Text != "independent" || toks[2].Text != "p" || toks[3].Text != "q" {
		t.Errorf("pragma tokens wrong: %v", toks[:4])
	}
}

func TestTokenizeErrors(t *testing.T) {
	bad := []string{"@", "'a", `"abc`, "/* open", "#define X", "'\\q'", "0x"}
	for _, src := range bad {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}

func TestTokenizeKeywords(t *testing.T) {
	toks, err := Tokenize("int unsigned char short long void if else while do for return break continue const extern static signed")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokKwInt, TokKwUnsigned, TokKwChar, TokKwShort, TokKwLong, TokKwVoid,
		TokKwIf, TokKwElse, TokKwWhile, TokKwDo, TokKwFor, TokKwReturn,
		TokKwBreak, TokKwContinue, TokKwConst, TokKwExtern, TokKwStatic, TokKwSigned}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("keyword %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b pos = %v", toks[1].Pos)
	}
}

// Property: any sequence of identifier characters lexes to a single token
// (identifier or keyword) whose text round-trips.
func TestTokenizeIdentifierRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a valid identifier from the raw bytes.
		name := []byte{'v'}
		for _, b := range raw {
			c := byte('a' + b%26)
			name = append(name, c)
		}
		toks, err := Tokenize(string(name))
		if err != nil {
			return false
		}
		return len(toks) == 2 && toks[0].Text == string(name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: decimal literals round-trip for all non-negative int32 values.
func TestTokenizeNumberRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		if v < 0 {
			v = -v
		}
		if v < 0 { // math.MinInt32
			v = 0
		}
		toks, err := Tokenize(intToString(int64(v)))
		return err == nil && toks[0].Kind == TokNumber && toks[0].Val == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func intToString(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
