package cminor

import "fmt"

// TypeKind discriminates cMinor types.
type TypeKind int

// Type kinds.
const (
	TypeVoid TypeKind = iota
	TypeInt           // integer of some width and signedness
	TypePointer
	TypeArray
	TypeFunc
)

// Type describes a cMinor type. Types are interned-by-construction through
// the package-level constructors; equality is structural via Same.
type Type struct {
	Kind   TypeKind
	Bits   int   // TypeInt: 8, 16, or 32
	Signed bool  // TypeInt
	Elem   *Type // TypePointer, TypeArray
	Len    int64 // TypeArray; -1 for unsized extern arrays
	Const  bool  // object is immutable (const qualifier)

	// TypeFunc:
	Ret    *Type
	Params []*Type
}

// Predefined scalar types.
var (
	Void   = &Type{Kind: TypeVoid}
	Int    = &Type{Kind: TypeInt, Bits: 32, Signed: true}
	UInt   = &Type{Kind: TypeInt, Bits: 32, Signed: false}
	Short  = &Type{Kind: TypeInt, Bits: 16, Signed: true}
	UShort = &Type{Kind: TypeInt, Bits: 16, Signed: false}
	Char   = &Type{Kind: TypeInt, Bits: 8, Signed: true}
	UChar  = &Type{Kind: TypeInt, Bits: 8, Signed: false}
)

// PointerTo returns the type *elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: TypePointer, Elem: elem} }

// ArrayOf returns the type elem[n]; n may be -1 for an unsized extern array.
func ArrayOf(elem *Type, n int64) *Type {
	return &Type{Kind: TypeArray, Elem: elem, Len: n}
}

// ConstOf returns a copy of t with the const qualifier set.
func ConstOf(t *Type) *Type {
	c := *t
	c.Const = true
	return &c
}

// FuncType returns a function type.
func FuncType(ret *Type, params []*Type) *Type {
	return &Type{Kind: TypeFunc, Ret: ret, Params: params}
}

// Size returns the object size in bytes. Pointers are 4 bytes (the paper
// models a 32-bit pisa machine).
func (t *Type) Size() int64 {
	switch t.Kind {
	case TypeVoid:
		return 0
	case TypeInt:
		return int64(t.Bits / 8)
	case TypePointer:
		return 4
	case TypeArray:
		if t.Len < 0 {
			return 0
		}
		return t.Len * t.Elem.Size()
	}
	return 0
}

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool { return t.Kind == TypeInt }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == TypePointer }

// IsArray reports whether t is an array type.
func (t *Type) IsArray() bool { return t.Kind == TypeArray }

// IsScalar reports whether t is an integer or pointer (register-allocatable).
func (t *Type) IsScalar() bool { return t.IsInteger() || t.IsPointer() }

// Decay returns the type after array-to-pointer decay.
func (t *Type) Decay() *Type {
	if t.Kind == TypeArray {
		p := PointerTo(t.Elem)
		p.Const = t.Const || t.Elem.Const
		return p
	}
	return t
}

// Same reports structural type equality, ignoring const qualifiers.
func (t *Type) Same(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TypeVoid:
		return true
	case TypeInt:
		return t.Bits == o.Bits && t.Signed == o.Signed
	case TypePointer:
		return t.Elem.Same(o.Elem)
	case TypeArray:
		return t.Len == o.Len && t.Elem.Same(o.Elem)
	case TypeFunc:
		if !t.Ret.Same(o.Ret) || len(t.Params) != len(o.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Same(o.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the type in C-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	prefix := ""
	if t.Const {
		prefix = "const "
	}
	switch t.Kind {
	case TypeVoid:
		return prefix + "void"
	case TypeInt:
		name := ""
		switch t.Bits {
		case 8:
			name = "char"
		case 16:
			name = "short"
		case 32:
			name = "int"
		default:
			name = fmt.Sprintf("int%d", t.Bits)
		}
		if !t.Signed {
			name = "unsigned " + name
		}
		return prefix + name
	case TypePointer:
		return prefix + t.Elem.String() + "*"
	case TypeArray:
		if t.Len < 0 {
			return prefix + t.Elem.String() + "[]"
		}
		return prefix + fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TypeFunc:
		s := t.Ret.String() + " (*)("
		for i, p := range t.Params {
			if i > 0 {
				s += ", "
			}
			s += p.String()
		}
		return s + ")"
	}
	return "<bad type>"
}
