// Package faultsim injects deterministic faults into the dataflow
// simulator: dropped, duplicated, or delayed deliveries on chosen edges,
// nodes frozen for a span of cycles, and stretched or corrupted memory
// responses. The Injector is consulted by internal/dataflow through
// nil-guarded hooks (the same pattern as trace.Tracer), so an uninjected
// run pays only a pointer comparison per hook site.
//
// Fault injection is the test bed for the robustness claims a self-timed
// circuit makes: arbitrary *delays* (edge latency, frozen nodes,
// stretched memory responses) must be absorbed — latency-insensitivity
// is the defining property of the execution model — while *lost* tokens
// must surface as a diagnosed deadlock, never as a silent wrong answer.
// Every injection is deterministic: explicit Plan entries trigger on the
// Nth matching event, and the optional jitter stream draws from a seeded
// generator in simulator event order, so a (program, seed) pair always
// perturbs the run identically.
package faultsim

import (
	"fmt"
	"math/rand"
	"strings"

	"spatial/internal/memsys"
)

// Op enumerates fault kinds.
type Op uint8

// Fault operations.
const (
	// Drop discards one edge delivery: the consumer never sees the
	// value/token (the producer's buffer slot is released, as if the wire
	// glitched after the handshake).
	Drop Op = iota
	// Duplicate delivers one edge delivery twice.
	Duplicate
	// Delay postpones one edge delivery by Cycles (FIFO order on the
	// edge is preserved; later deliveries queue behind the delayed one).
	Delay
	// Freeze blocks a node from firing for Cycles, starting at the
	// matching fire attempt.
	Freeze
	// MemStretch lengthens one memory response by Cycles.
	MemStretch
	// MemFail marks one memory response as corrupted; the simulator
	// detects it and aborts with a fault error.
	MemFail
)

var opNames = [...]string{
	Drop: "drop", Duplicate: "dup", Delay: "delay",
	Freeze: "freeze", MemStretch: "mem-stretch", MemFail: "mem-fail",
}

// String names the operation.
func (o Op) String() string { return opNames[o] }

// Fault is one planned perturbation. Zero selector fields widen the
// match: an empty Graph matches every graph, Node < 0 every node, and
// Edge < 0 every consumer edge. Nth selects the 1-based occurrence among
// matching events (0 means the first). Each Fault triggers exactly once.
type Fault struct {
	Op    Op
	Graph string // producer graph name ("" = any)
	Node  int    // producer node ID (edge ops), frozen node ID (Freeze); -1 = any
	Edge  int    // consumer edge index; -1 = any
	Token bool   // edge ops: match token deliveries rather than value deliveries
	Nth   int    // 1-based occurrence of the matching event to hit (0 = first)
	// Cycles is the magnitude of Delay, Freeze, and MemStretch faults.
	Cycles int64
}

// String renders the fault for logs and reproducers.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", f.Op)
	if f.Graph != "" {
		fmt.Fprintf(&b, " graph=%s", f.Graph)
	}
	if f.Node >= 0 {
		fmt.Fprintf(&b, " node=n%d", f.Node)
	}
	if f.Edge >= 0 {
		fmt.Fprintf(&b, " edge=%d", f.Edge)
	}
	switch f.Op {
	case Drop, Duplicate, Delay:
		if f.Token {
			b.WriteString(" out=token")
		} else {
			b.WriteString(" out=value")
		}
	}
	fmt.Fprintf(&b, " nth=%d", f.nth())
	if f.Cycles > 0 {
		fmt.Fprintf(&b, " cycles=%d", f.Cycles)
	}
	return b.String()
}

func (f Fault) nth() int {
	if f.Nth <= 0 {
		return 1
	}
	return f.Nth
}

func (f Fault) isEdgeOp() bool { return f.Op == Drop || f.Op == Duplicate || f.Op == Delay }
func (f Fault) isMemOp() bool  { return f.Op == MemStretch || f.Op == MemFail }

func (f Fault) matchEdge(graph string, node int, tok bool, edge int) bool {
	if f.Graph != "" && f.Graph != graph {
		return false
	}
	if f.Node >= 0 && f.Node != node {
		return false
	}
	if f.Edge >= 0 && f.Edge != edge {
		return false
	}
	return f.Token == tok
}

func (f Fault) matchNode(graph string, node int) bool {
	if f.Graph != "" && f.Graph != graph {
		return false
	}
	return f.Node < 0 || f.Node == node
}

// Plan is a set of faults to inject during one run.
type Plan struct {
	Faults []Fault
}

// String renders the plan one fault per line.
func (p Plan) String() string {
	if len(p.Faults) == 0 {
		return "(no planned faults)"
	}
	lines := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

// ActionKind tells the simulator what to do with one delivery.
type ActionKind uint8

// Delivery actions.
const (
	ActDeliver ActionKind = iota // deliver normally
	ActDrop                      // discard the delivery
	ActDup                       // deliver twice
	ActDelay                     // deliver after Delay extra cycles
)

// Action is the Injector's verdict on one edge delivery.
type Action struct {
	Kind  ActionKind
	Delay int64
}

// Triggered records one fault that actually fired during a run.
type Triggered struct {
	Fault Fault
	Cycle int64
	Graph string
	Node  int
}

// String renders the trigger record.
func (t Triggered) String() string {
	return fmt.Sprintf("cycle %d: %s at %s/n%d", t.Cycle, t.Fault.Op, t.Graph, t.Node)
}

type faultState struct {
	f    Fault
	seen int
	done bool
}

// Injector decides, deterministically, which simulator events to
// perturb. It is safe to share one Injector across the hooks of a single
// run but not across runs: counters and the jitter stream are stateful.
// A nil *Injector is valid everywhere and injects nothing.
type Injector struct {
	faults []faultState
	frozen map[nodeKey]int64 // node → thaw cycle

	// jitter: seeded probabilistic delays, all absorbable by a correct
	// self-timed circuit.
	rng        *rand.Rand
	edgeRate   float64
	edgeMax    int64
	memRate    float64
	memStretch int64

	trig []Triggered
}

type nodeKey struct {
	graph string
	node  int
}

// New compiles a plan into an Injector.
func New(p Plan) *Injector {
	in := &Injector{frozen: map[nodeKey]int64{}}
	for _, f := range p.Faults {
		in.faults = append(in.faults, faultState{f: f})
	}
	return in
}

// NewJitter returns an Injector that injects no planned faults but
// delays a seeded random fraction `rate` of edge deliveries by 1..maxDelay
// cycles and stretches the same fraction of memory responses by
// 1..4*maxDelay cycles. All jitter is delay-only, so a correct circuit
// must absorb it: same result, different schedule.
func NewJitter(seed int64, rate float64, maxDelay int64) *Injector {
	in := New(Plan{})
	in.rng = rand.New(rand.NewSource(seed))
	in.edgeRate = rate
	in.edgeMax = maxDelay
	in.memRate = rate
	in.memStretch = 4 * maxDelay
	return in
}

// Deliver is consulted once per consumer-edge delivery of the producing
// node's output (tok selects the token output) and returns the action to
// apply. Nil-safe.
func (in *Injector) Deliver(now int64, graph string, node int, tok bool, edge int) Action {
	if in == nil {
		return Action{}
	}
	act := Action{}
	for i := range in.faults {
		fs := &in.faults[i]
		if fs.done || !fs.f.isEdgeOp() || !fs.f.matchEdge(graph, node, tok, edge) {
			continue
		}
		fs.seen++
		if fs.seen != fs.f.nth() {
			continue
		}
		fs.done = true
		in.trig = append(in.trig, Triggered{Fault: fs.f, Cycle: now, Graph: graph, Node: node})
		if act.Kind != ActDeliver {
			continue // an earlier fault already claimed this delivery
		}
		switch fs.f.Op {
		case Drop:
			act = Action{Kind: ActDrop}
		case Duplicate:
			act = Action{Kind: ActDup}
		case Delay:
			act = Action{Kind: ActDelay, Delay: max64(1, fs.f.Cycles)}
		}
	}
	if act.Kind == ActDeliver && in.rng != nil && in.edgeRate > 0 && in.rng.Float64() < in.edgeRate {
		act = Action{Kind: ActDelay, Delay: 1 + in.rng.Int63n(max64(1, in.edgeMax))}
	}
	return act
}

// FrozenUntil is consulted on every fire attempt of a node and returns
// the cycle until which the node is frozen (0 when it may fire). A
// Freeze fault triggers on its Nth matching fire attempt. Nil-safe.
func (in *Injector) FrozenUntil(now int64, graph string, node int) int64 {
	if in == nil {
		return 0
	}
	k := nodeKey{graph, node}
	if until, ok := in.frozen[k]; ok {
		if until > now {
			return until
		}
		delete(in.frozen, k)
	}
	for i := range in.faults {
		fs := &in.faults[i]
		if fs.done || fs.f.Op != Freeze || !fs.f.matchNode(graph, node) {
			continue
		}
		fs.seen++
		if fs.seen != fs.f.nth() {
			continue
		}
		fs.done = true
		until := now + max64(1, fs.f.Cycles)
		in.frozen[k] = until
		in.trig = append(in.trig, Triggered{Fault: fs.f, Cycle: now, Graph: graph, Node: node})
		return until
	}
	return 0
}

// PerturbMem implements memsys.Perturber: planned MemStretch/MemFail
// faults trigger on their Nth memory response, and jitter stretches a
// seeded fraction of responses. Nil-safe.
func (in *Injector) PerturbMem(e memsys.Event) (done int64, fail bool) {
	done = e.Done
	if in == nil {
		return done, false
	}
	for i := range in.faults {
		fs := &in.faults[i]
		if fs.done || !fs.f.isMemOp() {
			continue
		}
		fs.seen++
		if fs.seen != fs.f.nth() {
			continue
		}
		fs.done = true
		in.trig = append(in.trig, Triggered{Fault: fs.f, Cycle: e.Issue, Graph: "<mem>", Node: -1})
		switch fs.f.Op {
		case MemStretch:
			done += max64(1, fs.f.Cycles)
		case MemFail:
			fail = true
		}
	}
	if in.rng != nil && in.memRate > 0 && in.rng.Float64() < in.memRate {
		done += 1 + in.rng.Int63n(max64(1, in.memStretch))
	}
	return done, fail
}

// Triggered returns the faults that actually fired, in trigger order.
func (in *Injector) Triggered() []Triggered {
	if in == nil {
		return nil
	}
	return in.trig
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
