package faultsim

import (
	"testing"

	"spatial/internal/memsys"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if a := in.Deliver(1, "f", 2, false, 0); a.Kind != ActDeliver {
		t.Fatalf("nil Deliver = %v", a)
	}
	if u := in.FrozenUntil(1, "f", 2); u != 0 {
		t.Fatalf("nil FrozenUntil = %d", u)
	}
	if done, fail := in.PerturbMem(memsys.Event{Done: 9}); done != 9 || fail {
		t.Fatalf("nil PerturbMem = %d, %v", done, fail)
	}
	if tr := in.Triggered(); tr != nil {
		t.Fatalf("nil Triggered = %v", tr)
	}
}

func TestPlanMatchingNthOccurrence(t *testing.T) {
	in := New(Plan{Faults: []Fault{
		{Op: Drop, Graph: "f", Node: 3, Edge: 1, Nth: 2},
	}})
	// Wrong graph, node, edge, and token-ness never count as occurrences.
	for _, probe := range []struct {
		graph string
		node  int
		tok   bool
		edge  int
	}{
		{"g", 3, false, 1}, // wrong graph
		{"f", 4, false, 1}, // wrong node
		{"f", 3, false, 0}, // wrong edge
		{"f", 3, true, 1},  // token, fault wants value
	} {
		if a := in.Deliver(0, probe.graph, probe.node, probe.tok, probe.edge); a.Kind != ActDeliver {
			t.Fatalf("non-matching delivery %+v perturbed: %v", probe, a)
		}
	}
	// First matching occurrence passes through, second is dropped, third
	// passes (the fault has fired).
	if a := in.Deliver(5, "f", 3, false, 1); a.Kind != ActDeliver {
		t.Fatalf("occurrence 1 should deliver, got %v", a)
	}
	if a := in.Deliver(6, "f", 3, false, 1); a.Kind != ActDrop {
		t.Fatalf("occurrence 2 should drop, got %v", a)
	}
	if a := in.Deliver(7, "f", 3, false, 1); a.Kind != ActDeliver {
		t.Fatalf("occurrence 3 should deliver, got %v", a)
	}
	tr := in.Triggered()
	if len(tr) != 1 || tr[0].Cycle != 6 || tr[0].Node != 3 {
		t.Fatalf("trigger log = %v", tr)
	}
}

func TestWildcardsMatchEverything(t *testing.T) {
	in := New(Plan{Faults: []Fault{
		{Op: Delay, Node: -1, Edge: -1, Cycles: 7},
	}})
	if a := in.Deliver(0, "anything", 99, false, 5); a.Kind != ActDelay || a.Delay != 7 {
		t.Fatalf("wildcard delay = %v", a)
	}
}

func TestFreezeOnNthAttempt(t *testing.T) {
	in := New(Plan{Faults: []Fault{
		{Op: Freeze, Graph: "f", Node: 8, Edge: -1, Nth: 2, Cycles: 10},
	}})
	if u := in.FrozenUntil(100, "f", 8); u != 0 {
		t.Fatalf("attempt 1 frozen until %d", u)
	}
	if u := in.FrozenUntil(101, "f", 8); u != 111 {
		t.Fatalf("attempt 2: want thaw at 111, got %d", u)
	}
	// Still frozen mid-span, thawed after.
	if u := in.FrozenUntil(105, "f", 8); u != 111 {
		t.Fatalf("mid-span: want 111, got %d", u)
	}
	if u := in.FrozenUntil(111, "f", 8); u != 0 {
		t.Fatalf("after thaw: want 0, got %d", u)
	}
}

func TestPerturbMemStretchAndFail(t *testing.T) {
	in := New(Plan{Faults: []Fault{
		{Op: MemStretch, Node: -1, Edge: -1, Nth: 1, Cycles: 20},
		{Op: MemFail, Node: -1, Edge: -1, Nth: 2},
	}})
	done, fail := in.PerturbMem(memsys.Event{Issue: 1, Done: 5})
	if done != 25 || fail {
		t.Fatalf("response 1: want (25,false), got (%d,%v)", done, fail)
	}
	done, fail = in.PerturbMem(memsys.Event{Issue: 2, Done: 6})
	if done != 6 || !fail {
		t.Fatalf("response 2: want (6,true), got (%d,%v)", done, fail)
	}
	if len(in.Triggered()) != 2 {
		t.Fatalf("trigger log = %v", in.Triggered())
	}
}

// TestJitterDeterminism: identical seeds must perturb an identical call
// sequence identically — the reproducibility contract of the fuzzer.
func TestJitterDeterminism(t *testing.T) {
	replay := func(seed int64) []Action {
		in := NewJitter(seed, 0.5, 8)
		var out []Action
		for i := 0; i < 200; i++ {
			out = append(out, in.Deliver(int64(i), "f", i%7, i%3 == 0, i%2))
		}
		return out
	}
	a, b := replay(42), replay(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := replay(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter — rng not wired")
	}
}

func TestJitterIsDelayOnly(t *testing.T) {
	in := NewJitter(7, 1.0, 4) // rate 1: every delivery perturbed
	for i := 0; i < 50; i++ {
		a := in.Deliver(int64(i), "f", 0, false, 0)
		if a.Kind != ActDelay || a.Delay < 1 || a.Delay > 4 {
			t.Fatalf("jitter produced %v; want delay in [1,4]", a)
		}
	}
	done, fail := in.PerturbMem(memsys.Event{Done: 3})
	if fail || done < 4 {
		t.Fatalf("memory jitter = (%d,%v); want stretched, never failed", done, fail)
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Faults: []Fault{
		{Op: Drop, Graph: "f", Node: 3, Edge: 1, Nth: 2},
		{Op: Freeze, Node: -1, Edge: -1, Cycles: 9},
	}}
	s := p.String()
	for _, want := range []string{"drop", "graph=f", "node=n3", "nth=2", "freeze", "cycles=9"} {
		if !contains(s, want) {
			t.Fatalf("plan rendering missing %q:\n%s", want, s)
		}
	}
	if (Plan{}).String() != "(no planned faults)" {
		t.Fatalf("empty plan rendering = %q", (Plan{}).String())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
