// Package netchaos injects deterministic faults into HTTP traffic: a
// seedable, plan-driven http.RoundTripper that drops, delays, resets,
// corrupts, or truncates requests and responses, and kills whole peers
// for scheduled spans of their arrival sequence. It is the network-layer
// sibling of internal/faultsim, which perturbs the simulator's own
// token traffic; netchaos perturbs the service traffic *around* the
// simulator, so the client's failover, retry, and integrity machinery
// can be exercised without flaky sockets or real packet loss.
//
// Every injection is deterministic: explicit Plan entries trigger on the
// Nth matching request (counted per fault, in arrival order), peer
// windows index each peer's arrivals from 1, and optional jitter draws
// from a seeded generator in arrival order. A (plan, seed) pair always
// perturbs a serial request stream identically; under concurrency the
// arrival order — and only the arrival order — is the schedule.
//
// Use a *Transport as an http.Client transport to perturb a client's
// view of the world, or NewProxy to stand a fault-injecting reverse
// proxy in front of a real daemon.
package netchaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Op enumerates fault kinds.
type Op uint8

// Fault operations.
const (
	// Delay holds the request for Latency before forwarding it.
	Delay Op = iota
	// Drop black-holes the request: it never reaches the peer and the
	// round trip blocks until the request's context dies. Callers must
	// run with deadlines (the client and the chaos battery always do).
	Drop
	// Reset fails the round trip with a connection-reset error without
	// reaching the peer.
	Reset
	// Status answers with Code (0 means 503) and a plain-text body,
	// without reaching the peer.
	Status
	// Corrupt forwards the request and XORs one response-body byte at
	// offset Byte (out-of-range clamps to 0, the opening brace of a JSON
	// body — always detectable by the reader).
	Corrupt
	// Truncate forwards the request and cuts the response body at Byte
	// (0 or out-of-range means half).
	Truncate
)

var opNames = [...]string{
	Delay: "delay", Drop: "drop", Reset: "reset",
	Status: "status", Corrupt: "corrupt", Truncate: "truncate",
}

// String names the operation.
func (o Op) String() string { return opNames[o] }

// Fault is one planned perturbation. Empty selector fields widen the
// match: Peer is a substring of the request host ("" = any peer), Path a
// substring of the URL path ("" = any path). Nth selects the 1-based
// occurrence among matching requests (0 means the first). Each Fault
// triggers exactly once; when several faults claim the same request, the
// first in plan order wins (the rest still count and log).
type Fault struct {
	Op   Op
	Peer string // substring of the request host; "" = any
	Path string // substring of the URL path; "" = any
	Nth  int    // 1-based occurrence of the matching request (0 = first)
	// Latency is the Delay hold (0 means 1ms).
	Latency time.Duration
	// Code is the injected Status (0 means 503).
	Code int
	// Byte is the Corrupt/Truncate body offset.
	Byte int
}

// String renders the fault for logs and reproducers.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", f.Op)
	if f.Peer != "" {
		fmt.Fprintf(&b, " peer=%s", f.Peer)
	}
	if f.Path != "" {
		fmt.Fprintf(&b, " path=%s", f.Path)
	}
	fmt.Fprintf(&b, " nth=%d", f.nth())
	switch f.Op {
	case Delay:
		fmt.Fprintf(&b, " latency=%v", f.latency())
	case Status:
		fmt.Fprintf(&b, " code=%d", f.code())
	case Corrupt, Truncate:
		fmt.Fprintf(&b, " byte=%d", f.Byte)
	}
	return b.String()
}

func (f Fault) nth() int {
	if f.Nth <= 0 {
		return 1
	}
	return f.Nth
}

func (f Fault) latency() time.Duration {
	if f.Latency <= 0 {
		return time.Millisecond
	}
	return f.Latency
}

func (f Fault) code() int {
	if f.Code == 0 {
		return http.StatusServiceUnavailable
	}
	return f.Code
}

func (f Fault) match(host, path string) bool {
	if f.Peer != "" && !strings.Contains(host, f.Peer) {
		return false
	}
	return f.Path == "" || strings.Contains(path, f.Path)
}

// PeerWindow kills a peer for a span of its own arrival sequence:
// requests From..To (1-based, inclusive) are refused as if the process
// were down. To of 0 means dead forever — killed, never resurrected.
// Several windows for one peer model kill/resurrect/kill schedules.
type PeerWindow struct {
	Peer     string // substring of the request host; "" = every peer
	From, To int
}

func (w PeerWindow) from() int {
	if w.From <= 0 {
		return 1
	}
	return w.From
}

func (w PeerWindow) contains(n int) bool {
	return n >= w.from() && (w.To <= 0 || n <= w.To)
}

// String renders the window.
func (w PeerWindow) String() string {
	peer := w.Peer
	if peer == "" {
		peer = "*"
	}
	if w.To <= 0 {
		return fmt.Sprintf("down peer=%s from=%d (forever)", peer, w.from())
	}
	return fmt.Sprintf("down peer=%s from=%d to=%d", peer, w.from(), w.To)
}

// Plan is a set of faults to inject.
type Plan struct {
	Faults []Fault
}

// String renders the plan one fault per line.
func (p Plan) String() string {
	if len(p.Faults) == 0 {
		return "(no planned faults)"
	}
	lines := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

// Triggered records one injection that actually fired.
type Triggered struct {
	Peer  string // request host
	Path  string
	Seq   int  // the peer's 1-based arrival index
	Down  bool // refused by a PeerWindow rather than a Fault
	Fault Fault
}

// String renders the trigger record.
func (t Triggered) String() string {
	if t.Down {
		return fmt.Sprintf("req %d to %s%s: refused (peer down)", t.Seq, t.Peer, t.Path)
	}
	return fmt.Sprintf("req %d to %s%s: %s", t.Seq, t.Peer, t.Path, t.Fault)
}

type faultState struct {
	f    Fault
	seen int
	done bool
}

// Injector decides, deterministically, which requests to perturb. One
// Injector is shared by every transport of a chaos run; its mutex makes
// the decision sequence the arrival order. A nil *Injector is valid
// everywhere and injects nothing.
type Injector struct {
	mu      sync.Mutex
	faults  []faultState
	windows []PeerWindow
	seq     map[string]int // per-host arrival counter

	rng    *rand.Rand
	rate   float64
	jitter time.Duration

	trig []Triggered
}

// New compiles a plan and peer schedule into an Injector.
func New(p Plan, windows ...PeerWindow) *Injector {
	in := &Injector{seq: map[string]int{}, windows: windows}
	for _, f := range p.Faults {
		in.faults = append(in.faults, faultState{f: f})
	}
	return in
}

// WithJitter adds seeded random delay: fraction rate of otherwise
// unperturbed requests sleep 1..max before forwarding. Delay-only, so a
// correct client must absorb it. Returns the injector for chaining.
func (in *Injector) WithJitter(seed int64, rate float64, max time.Duration) *Injector {
	in.rng = rand.New(rand.NewSource(seed))
	in.rate = rate
	in.jitter = max
	return in
}

// verdict is the injector's decision on one request.
type verdict struct {
	down   bool
	hit    bool
	f      Fault
	jitter time.Duration
}

func (in *Injector) decide(host, path string) verdict {
	if in == nil {
		return verdict{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq[host]++
	n := in.seq[host]
	for _, w := range in.windows {
		if w.Peer != "" && !strings.Contains(host, w.Peer) {
			continue
		}
		if w.contains(n) {
			in.trig = append(in.trig, Triggered{Peer: host, Path: path, Seq: n, Down: true})
			return verdict{down: true}
		}
	}
	var v verdict
	for i := range in.faults {
		fs := &in.faults[i]
		if fs.done || !fs.f.match(host, path) {
			continue
		}
		fs.seen++
		if fs.seen != fs.f.nth() {
			continue
		}
		fs.done = true
		in.trig = append(in.trig, Triggered{Peer: host, Path: path, Seq: n, Fault: fs.f})
		if !v.hit {
			v.hit, v.f = true, fs.f
		}
	}
	if !v.hit && in.rng != nil && in.rate > 0 && in.rng.Float64() < in.rate {
		v.jitter = time.Duration(1 + in.rng.Int63n(int64(maxDur(in.jitter, time.Millisecond))))
	}
	return v
}

// Triggered returns the injections that actually fired, in arrival
// order. Nil-safe.
func (in *Injector) Triggered() []Triggered {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Triggered, len(in.trig))
	copy(out, in.trig)
	return out
}

// Injected transport errors. They surface to the client wrapped in the
// usual *url.Error, where they read as ordinary transport failures.
var (
	ErrRefused = errors.New("connection refused (injected)")
	ErrReset   = errors.New("connection reset by peer (injected)")
)

// Transport is a fault-injecting http.RoundTripper. Zero value is not
// usable; set Inj (Inner nil means http.DefaultTransport).
type Transport struct {
	Inner http.RoundTripper
	Inj   *Injector
}

func (t *Transport) inner() http.RoundTripper {
	if t.Inner != nil {
		return t.Inner
	}
	return http.DefaultTransport
}

// RoundTrip applies the injector's verdict for this request: refuse it,
// perturb it, or forward it (possibly mangling the response on the way
// back).
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	v := t.Inj.decide(req.URL.Host, req.URL.Path)
	if v.down {
		closeReq(req)
		return nil, fmt.Errorf("netchaos: dial %s: %w", req.URL.Host, ErrRefused)
	}
	if v.jitter > 0 {
		if err := sleepCtx(req, v.jitter); err != nil {
			return nil, err
		}
	}
	if !v.hit {
		return t.inner().RoundTrip(req)
	}
	switch v.f.Op {
	case Delay:
		if err := sleepCtx(req, v.f.latency()); err != nil {
			return nil, err
		}
		return t.inner().RoundTrip(req)
	case Drop:
		<-req.Context().Done()
		closeReq(req)
		return nil, fmt.Errorf("netchaos: %s black-holed: %w", req.URL.Host, req.Context().Err())
	case Reset:
		closeReq(req)
		return nil, fmt.Errorf("netchaos: read from %s: %w", req.URL.Host, ErrReset)
	case Status:
		closeReq(req)
		return syntheticStatus(req, v.f.code()), nil
	case Corrupt, Truncate:
		resp, err := t.inner().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return mangleBody(resp, v.f)
	}
	return t.inner().RoundTrip(req)
}

// sleepCtx holds the request for d, honoring its context; on context
// death the request body is closed and the context error returned.
func sleepCtx(req *http.Request, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-req.Context().Done():
		closeReq(req)
		return fmt.Errorf("netchaos: delayed past deadline: %w", req.Context().Err())
	case <-timer.C:
		return nil
	}
}

// closeReq honors the RoundTripper contract: the request body is always
// closed, even when the request never goes anywhere.
func closeReq(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// syntheticStatus fabricates a plain-text error response, as a proxy or
// load balancer in front of the daemon would.
func syntheticStatus(req *http.Request, code int) *http.Response {
	body := fmt.Sprintf("netchaos: injected status %d", code)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// mangleBody rewrites a forwarded response according to a Corrupt or
// Truncate fault, keeping Content-Length honest so the damage models
// bit rot and torn reads, not framing errors.
func mangleBody(resp *http.Response, f Fault) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	switch f.Op {
	case Corrupt:
		if len(body) > 0 {
			i := f.Byte
			if i < 0 || i >= len(body) {
				i = 0
			}
			body[i] ^= 0xFF
		}
	case Truncate:
		cut := f.Byte
		if cut <= 0 || cut >= len(body) {
			cut = len(body) / 2
		}
		body = body[:cut]
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	return resp, nil
}

// NewProxy returns a fault-injecting reverse proxy in front of target
// (a base URL): the in-process analogue of a chaos appliance on the
// network path to a real daemon. Injected transport failures surface to
// the caller as plain-text 502s.
func NewProxy(target string, inj *Injector) (http.Handler, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("netchaos: proxy target %q: %w", target, err)
	}
	p := httputil.NewSingleHostReverseProxy(u)
	p.Transport = &Transport{Inj: inj}
	p.ErrorLog = log.New(io.Discard, "", 0)
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		http.Error(w, "netchaos proxy: "+err.Error(), http.StatusBadGateway)
	}
	return p, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
