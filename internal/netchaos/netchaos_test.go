package netchaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const refBody = `{"value":42,"cache_hit":true}`

func refServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, refBody)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, c *http.Client, url string) (*http.Response, string) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestStatusNthMatch: the fault fires on exactly the Nth matching
// request and never again — the exactly-once contract.
func TestStatusNthMatch(t *testing.T) {
	ts := refServer(t)
	inj := New(Plan{Faults: []Fault{{Op: Status, Code: 503, Nth: 2}}})
	c := &http.Client{Transport: &Transport{Inj: inj}}

	for i := 1; i <= 4; i++ {
		resp, body := get(t, c, ts.URL+"/v1/run")
		want := http.StatusOK
		if i == 2 {
			want = http.StatusServiceUnavailable
		}
		if resp.StatusCode != want {
			t.Fatalf("request %d: status %d, want %d", i, resp.StatusCode, want)
		}
		if i != 2 && body != refBody {
			t.Fatalf("request %d: body %q, want the reference", i, body)
		}
	}
	trig := inj.Triggered()
	if len(trig) != 1 || trig[0].Seq != 2 || trig[0].Fault.Op != Status {
		t.Fatalf("trigger log %v, want one status hit at seq 2", trig)
	}
}

// TestPeerWindow: requests 2..3 to the peer are refused as if the
// process were down; 1 and 4 pass. A second injector with the same
// schedule produces the identical trigger log — determinism.
func TestPeerWindow(t *testing.T) {
	ts := refServer(t)
	host := strings.TrimPrefix(ts.URL, "http://")

	run := func() []Triggered {
		inj := New(Plan{}, PeerWindow{Peer: host, From: 2, To: 3})
		c := &http.Client{Transport: &Transport{Inj: inj}}
		for i := 1; i <= 4; i++ {
			resp, err := c.Get(ts.URL + "/v1/run")
			alive := i == 1 || i == 4
			if alive {
				if err != nil {
					t.Fatalf("request %d: %v, want success", i, err)
				}
				resp.Body.Close()
				continue
			}
			if err == nil {
				resp.Body.Close()
				t.Fatalf("request %d succeeded inside the down window", i)
			}
			if !errors.Is(err, ErrRefused) {
				t.Fatalf("request %d: %v, want ErrRefused", i, err)
			}
		}
		return inj.Triggered()
	}

	a, b := run(), run()
	if len(a) != 2 || !a[0].Down || !a[1].Down {
		t.Fatalf("trigger log %v, want two refusals", a)
	}
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestDeadForever: To of 0 kills the peer with no resurrection.
func TestDeadForever(t *testing.T) {
	ts := refServer(t)
	inj := New(Plan{}, PeerWindow{From: 1})
	c := &http.Client{Transport: &Transport{Inj: inj}}
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ts.URL + "/"); !errors.Is(err, ErrRefused) {
			t.Fatalf("request %d: %v, want ErrRefused", i, err)
		}
	}
}

// TestCorruptAndTruncate: the response body is damaged in transit with
// honest framing — detectably, never silently reorderable into a valid
// answer at byte 0.
func TestCorruptAndTruncate(t *testing.T) {
	ts := refServer(t)
	inj := New(Plan{Faults: []Fault{
		{Op: Corrupt, Nth: 1},
		{Op: Truncate, Nth: 2},
	}})
	c := &http.Client{Transport: &Transport{Inj: inj}}

	resp, body := get(t, c, ts.URL+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt: status %d", resp.StatusCode)
	}
	if body == refBody || len(body) != len(refBody) || body[0] == refBody[0] {
		t.Fatalf("corrupt: body %q not damaged at byte 0", body)
	}
	if resp.ContentLength != int64(len(body)) {
		t.Fatalf("corrupt: dishonest Content-Length %d for %d bytes", resp.ContentLength, len(body))
	}

	_, body = get(t, c, ts.URL+"/")
	if body != refBody[:len(refBody)/2] {
		t.Fatalf("truncate: body %q, want the first half of the reference", body)
	}

	if _, body = get(t, c, ts.URL+"/"); body != refBody {
		t.Fatalf("after both faults fired: body %q, want untouched", body)
	}
}

// TestResetAndDrop: reset fails immediately with the reset error; drop
// blocks until the request context dies.
func TestResetAndDrop(t *testing.T) {
	ts := refServer(t)
	inj := New(Plan{Faults: []Fault{
		{Op: Reset, Nth: 1},
		{Op: Drop, Nth: 2},
	}})
	c := &http.Client{Transport: &Transport{Inj: inj}}

	if _, err := c.Get(ts.URL + "/"); !errors.Is(err, ErrReset) {
		t.Fatalf("reset: %v, want ErrReset", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/", nil)
	start := time.Now()
	_, err := c.Do(req)
	if err == nil {
		t.Fatal("drop: request succeeded, want a context death")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drop: %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("drop returned after %v, before the deadline", elapsed)
	}
}

// TestDelayHoldsRequest: the delayed request arrives late but intact.
func TestDelayHoldsRequest(t *testing.T) {
	ts := refServer(t)
	inj := New(Plan{Faults: []Fault{{Op: Delay, Latency: 60 * time.Millisecond, Nth: 1}}})
	c := &http.Client{Transport: &Transport{Inj: inj}}
	start := time.Now()
	resp, body := get(t, c, ts.URL+"/")
	if resp.StatusCode != http.StatusOK || body != refBody {
		t.Fatalf("delayed request damaged: status %d body %q", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("delay did not hold the request: %v", elapsed)
	}
}

// TestPathAndPeerSelectors: a fault scoped to one path leaves other
// paths alone.
func TestPathAndPeerSelectors(t *testing.T) {
	ts := refServer(t)
	inj := New(Plan{Faults: []Fault{{Op: Status, Code: 500, Path: "/v1/run"}}})
	c := &http.Client{Transport: &Transport{Inj: inj}}

	if resp, _ := get(t, c, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("unmatched path perturbed: %d", resp.StatusCode)
	}
	if resp, _ := get(t, c, ts.URL+"/v1/run"); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("matched path not perturbed: %d", resp.StatusCode)
	}
	inj2 := New(Plan{Faults: []Fault{{Op: Status, Peer: "no-such-host"}}})
	c2 := &http.Client{Transport: &Transport{Inj: inj2}}
	if resp, _ := get(t, c2, ts.URL+"/v1/run"); resp.StatusCode != http.StatusOK {
		t.Fatalf("unmatched peer perturbed: %d", resp.StatusCode)
	}
}

// TestProxy: the reverse proxy forwards clean traffic, injects planned
// faults, and renders injected transport failures as 502.
func TestProxy(t *testing.T) {
	ts := refServer(t)
	inj := New(Plan{Faults: []Fault{{Op: Reset, Nth: 2}}})
	h, err := NewProxy(ts.URL, inj)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(h)
	defer proxy.Close()

	resp, body := get(t, http.DefaultClient, proxy.URL+"/v1/run")
	if resp.StatusCode != http.StatusOK || body != refBody {
		t.Fatalf("clean request through proxy: status %d body %q", resp.StatusCode, body)
	}
	resp, body = get(t, http.DefaultClient, proxy.URL+"/v1/run")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("injected reset through proxy: status %d, want 502", resp.StatusCode)
	}
	if !strings.Contains(body, "netchaos proxy") {
		t.Fatalf("502 body %q does not name the proxy", body)
	}
}

// TestJitterDeterminism: the same seed produces the same jitter
// decisions; a different seed is allowed to differ.
func TestJitterDeterminism(t *testing.T) {
	decisions := func(seed int64) []bool {
		inj := New(Plan{}).WithJitter(seed, 0.5, time.Millisecond)
		var out []bool
		for i := 0; i < 32; i++ {
			v := inj.decide("h", "/")
			out = append(out, v.jitter > 0)
		}
		return out
	}
	a, b := decisions(7), decisions(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
}
