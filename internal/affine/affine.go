// Package affine performs symbolic address analysis over Pegasus graphs:
// it decomposes address computations into affine expressions over "atom"
// nodes, proves address disequality (paper Section 4.3 heuristic 1),
// finds induction variables (heuristic 2), classifies monotone address
// sequences (Section 6.2), and computes dependence distances for loop
// decoupling (Section 6.3).
package affine

import (
	"spatial/internal/cminor"
	"spatial/internal/pegasus"
)

// Expr is an affine expression: Const + Σ coeff·atom. Atoms are nodes the
// decomposition cannot see through (parameters, loads, merges, ...).
type Expr struct {
	Terms map[*pegasus.Node]int64
	Const int64
	OK    bool
}

func cloneTerms(t map[*pegasus.Node]int64) map[*pegasus.Node]int64 {
	c := make(map[*pegasus.Node]int64, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

func atom(n *pegasus.Node) Expr {
	return Expr{Terms: map[*pegasus.Node]int64{n: 1}, OK: true}
}

func constant(v int64) Expr {
	return Expr{Terms: map[*pegasus.Node]int64{}, Const: v, OK: true}
}

func (e Expr) add(o Expr, sign int64) Expr {
	r := Expr{Terms: cloneTerms(e.Terms), Const: e.Const + sign*o.Const, OK: true}
	for k, v := range o.Terms {
		r.Terms[k] += sign * v
		if r.Terms[k] == 0 {
			delete(r.Terms, k)
		}
	}
	return r
}

func (e Expr) scale(c int64) Expr {
	if c == 0 {
		return constant(0)
	}
	r := Expr{Terms: map[*pegasus.Node]int64{}, Const: e.Const * c, OK: true}
	for k, v := range e.Terms {
		r.Terms[k] = v * c
	}
	return r
}

// IsConst reports whether the expression is a known constant.
func (e Expr) IsConst() (int64, bool) {
	if e.OK && len(e.Terms) == 0 {
		return e.Const, true
	}
	return 0, false
}

// Decompose computes the affine form of a value node. It sees through
// additions, subtractions, multiplications by constants, shifts by
// constants, and negation; anything else becomes an atom.
func Decompose(n *pegasus.Node) Expr {
	return decompose(n, 0)
}

const maxDepth = 64

func decompose(n *pegasus.Node, depth int) Expr {
	if n == nil {
		return Expr{}
	}
	if depth > maxDepth {
		return atom(n)
	}
	switch n.Kind {
	case pegasus.KConst:
		return constant(n.ConstVal)
	case pegasus.KBinOp:
		l := decompose(n.Ins[0].N, depth+1)
		r := decompose(n.Ins[1].N, depth+1)
		switch n.BinOp {
		case cminor.OpAdd:
			return l.add(r, 1)
		case cminor.OpSub:
			return l.add(r, -1)
		case cminor.OpMul:
			if c, ok := r.IsConst(); ok {
				return l.scale(c)
			}
			if c, ok := l.IsConst(); ok {
				return r.scale(c)
			}
		case cminor.OpShl:
			if c, ok := r.IsConst(); ok && c >= 0 && c < 31 {
				return l.scale(1 << uint(c))
			}
		}
		return atom(n)
	case pegasus.KUnOp:
		if n.UnOp == pegasus.UNeg {
			return decompose(n.Ins[0].N, depth+1).scale(-1)
		}
		return atom(n)
	default:
		return atom(n)
	}
}

// Distinct proves that two addresses are never equal within the same
// execution wave: identical symbolic terms but different constant offsets
// (modular wraparound is ignored, as in the paper's heuristics). The
// access widths guard against partial overlap: the constant distance must
// be at least the larger access size.
func Distinct(a, b Expr, bytesA, bytesB int) bool {
	if !a.OK || !b.OK {
		return false
	}
	d := a.add(b, -1)
	c, ok := d.IsConst()
	if !ok {
		return false
	}
	if c < 0 {
		c = -c
		return c >= int64(bytesA)
	}
	return c >= int64(bytesB)
}

// Induction describes a loop induction variable: a value merge whose
// back-edge input equals merge + Step each iteration.
type Induction struct {
	Merge *pegasus.Node
	Step  int64
}

// FindInductions locates the induction merges of a loop hyperblock. A
// value merge qualifies when every back-edge input is an eta whose data
// source decomposes to merge + step for one constant step.
func FindInductions(g *pegasus.Graph, hyper int) map[*pegasus.Node]*Induction {
	out := map[*pegasus.Node]*Induction{}
	if hyper < 0 || hyper >= len(g.Hypers) || !g.Hypers[hyper].IsLoop {
		return out
	}
	for _, m := range g.NodesInHyper(hyper) {
		if m.Dead || m.Kind != pegasus.KMerge || m.TokenOnly {
			continue
		}
		var step int64
		found := false
		bad := false
		for _, in := range m.Ins {
			if !in.Valid() {
				bad = true
				break
			}
			if !g.IsBackEdge(in.N, m) {
				continue
			}
			// Back edge: eta over the new value.
			eta := in.N
			if eta.Kind != pegasus.KEta || eta.TokenOnly {
				bad = true
				break
			}
			e := Decompose(eta.Ins[0].N)
			if !e.OK || len(e.Terms) != 1 || e.Terms[m] != 1 {
				bad = true
				break
			}
			if found && e.Const != step {
				bad = true
				break
			}
			step = e.Const
			found = true
		}
		if found && !bad {
			out[m] = &Induction{Merge: m, Step: step}
		}
	}
	return out
}

// Monotone reports whether an address expression advances strictly
// monotonically across iterations of the loop: it must contain exactly
// one induction atom (all other atoms loop-invariant is not checked here;
// callers restrict atoms to invariant merges), with per-iteration
// movement |coeff·step| no smaller than the access size (so successive
// iterations never touch the same bytes).
func Monotone(e Expr, ind map[*pegasus.Node]*Induction, invariant func(*pegasus.Node) bool, bytes int) bool {
	if !e.OK {
		return false
	}
	move := int64(0)
	seenInd := false
	for a, c := range e.Terms {
		if iv, ok := ind[a]; ok {
			if seenInd {
				return false
			}
			seenInd = true
			move = c * iv.Step
			continue
		}
		if invariant == nil || !invariant(a) {
			return false
		}
	}
	if !seenInd {
		return false
	}
	if move < 0 {
		move = -move
	}
	return move >= int64(bytes)
}

// Distance computes the dependence distance in iterations between two
// address expressions in the same loop: they must share the same single
// induction atom with the same coefficient and identical other terms;
// the distance is (constB − constA) / (coeff·step) when it divides
// evenly. A positive result means B touches the address A will touch
// `dist` iterations later.
func Distance(a, b Expr, ind map[*pegasus.Node]*Induction) (int64, bool) {
	if !a.OK || !b.OK {
		return 0, false
	}
	d := b.add(a, -1)
	c, ok := d.IsConst()
	if !ok {
		return 0, false
	}
	// Identify the shared induction atom and its movement.
	var move int64
	seen := false
	for atomNode, coeff := range a.Terms {
		if iv, ok := ind[atomNode]; ok {
			if seen {
				return 0, false
			}
			seen = true
			move = coeff * iv.Step
		}
	}
	if !seen || move == 0 {
		return 0, false
	}
	if c%move != 0 {
		return 0, false
	}
	return c / move, true
}
