package affine

import (
	"testing"

	"spatial/internal/cminor"
	"spatial/internal/pegasus"
)

// mini builds a one-hyperblock graph with helper constructors.
type mini struct {
	g *pegasus.Graph
}

func newMini() *mini {
	g := pegasus.NewGraph(nil)
	g.NewHyper(false)
	return &mini{g: g}
}

func (m *mini) konst(v int64) *pegasus.Node {
	n := m.g.NewNode(pegasus.KConst, 0)
	n.VT = pegasus.I32
	n.ConstVal = v
	return n
}

func (m *mini) param(i int) *pegasus.Node {
	n := m.g.NewNode(pegasus.KParam, 0)
	n.VT = pegasus.I32
	n.ParamIdx = i
	return n
}

func (m *mini) bin(op cminor.BinOpKind, a, b *pegasus.Node) *pegasus.Node {
	n := m.g.NewNode(pegasus.KBinOp, 0)
	n.BinOp = op
	n.VT = pegasus.I32
	n.Ins = []pegasus.Ref{pegasus.V(a), pegasus.V(b)}
	return n
}

func (m *mini) neg(a *pegasus.Node) *pegasus.Node {
	n := m.g.NewNode(pegasus.KUnOp, 0)
	n.UnOp = pegasus.UNeg
	n.VT = pegasus.I32
	n.Ins = []pegasus.Ref{pegasus.V(a)}
	return n
}

func TestDecomposeConstant(t *testing.T) {
	m := newMini()
	e := Decompose(m.konst(42))
	if v, ok := e.IsConst(); !ok || v != 42 {
		t.Errorf("const = %v, %v", v, ok)
	}
}

func TestDecomposeLinear(t *testing.T) {
	m := newMini()
	p := m.param(0)
	// p*4 + 12
	e := Decompose(m.bin(cminor.OpAdd, m.bin(cminor.OpMul, p, m.konst(4)), m.konst(12)))
	if !e.OK || e.Const != 12 || e.Terms[p] != 4 {
		t.Errorf("expr = %+v", e)
	}
}

func TestDecomposeShiftAsScale(t *testing.T) {
	m := newMini()
	p := m.param(0)
	e := Decompose(m.bin(cminor.OpShl, p, m.konst(3)))
	if e.Terms[p] != 8 {
		t.Errorf("p<<3 coefficient = %d, want 8", e.Terms[p])
	}
}

func TestDecomposeSubAndNeg(t *testing.T) {
	m := newMini()
	p, q := m.param(0), m.param(1)
	// (p - q) + (-p) = -q
	e := Decompose(m.bin(cminor.OpAdd, m.bin(cminor.OpSub, p, q), m.neg(p)))
	if e.Terms[p] != 0 || e.Terms[q] != -1 {
		t.Errorf("expr = %+v", e)
	}
	if _, present := e.Terms[p]; present {
		t.Error("cancelled term should be removed")
	}
}

func TestDecomposeOpaque(t *testing.T) {
	m := newMini()
	p, q := m.param(0), m.param(1)
	mul := m.bin(cminor.OpMul, p, q) // non-affine
	e := Decompose(mul)
	if e.Terms[mul] != 1 || len(e.Terms) != 1 {
		t.Errorf("p*q should be an atom: %+v", e)
	}
}

func TestDistinct(t *testing.T) {
	m := newMini()
	base := m.param(0)
	i4 := m.bin(cminor.OpMul, m.param(1), m.konst(4))
	addr1 := m.bin(cminor.OpAdd, base, i4)          // base + 4i
	addr2 := m.bin(cminor.OpAdd, addr1, m.konst(4)) // base + 4i + 4
	addr3 := m.bin(cminor.OpAdd, addr1, m.konst(2)) // overlaps a 4-byte access
	a1, a2, a3 := Decompose(addr1), Decompose(addr2), Decompose(addr3)
	if !Distinct(a1, a2, 4, 4) {
		t.Error("a[i] vs a[i+1] should be distinct")
	}
	if Distinct(a1, a3, 4, 4) {
		t.Error("offset 2 with 4-byte accesses overlaps")
	}
	if Distinct(a1, a1, 4, 4) {
		t.Error("same address is not distinct")
	}
	// Different bases: symbolic difference non-constant.
	other := m.param(2)
	if Distinct(a1, Decompose(other), 4, 4) {
		t.Error("different symbolic bases cannot be proven distinct")
	}
}

func TestDistinctByteAccesses(t *testing.T) {
	m := newMini()
	p := m.param(0)
	a1 := Decompose(p)
	a2 := Decompose(m.bin(cminor.OpAdd, p, m.konst(1)))
	if !Distinct(a1, a2, 1, 1) {
		t.Error("adjacent byte accesses are distinct")
	}
	if Distinct(a1, a2, 4, 4) {
		t.Error("adjacent word accesses overlap")
	}
}

// loopGraph builds a loop hyperblock with an induction merge i += step.
func loopGraph(step int64) (*pegasus.Graph, *pegasus.Node) {
	g := pegasus.NewGraph(nil)
	g.NewHyper(false) // hyper 0: entry
	g.NewHyper(true)  // hyper 1: loop
	init := g.NewNode(pegasus.KConst, 0)
	init.VT = pegasus.I32
	pred0 := g.ConstPred(0, true)
	entryEta := g.NewNode(pegasus.KEta, 0)
	entryEta.VT = pegasus.I32
	entryEta.Ins = []pegasus.Ref{pegasus.V(init)}
	entryEta.Preds = []pegasus.Ref{pegasus.V(pred0)}

	m := g.NewNode(pegasus.KMerge, 1)
	m.VT = pegasus.I32
	stepC := g.NewNode(pegasus.KConst, 1)
	stepC.VT = pegasus.I32
	stepC.ConstVal = step
	next := g.NewNode(pegasus.KBinOp, 1)
	next.BinOp = cminor.OpAdd
	next.VT = pegasus.I32
	next.Ins = []pegasus.Ref{pegasus.V(m), pegasus.V(stepC)}
	loopPred := g.ConstPred(1, true)
	backEta := g.NewNode(pegasus.KEta, 1)
	backEta.VT = pegasus.I32
	backEta.Ins = []pegasus.Ref{pegasus.V(next)}
	backEta.Preds = []pegasus.Ref{pegasus.V(loopPred)}
	m.Ins = []pegasus.Ref{pegasus.V(entryEta), pegasus.V(backEta)}
	return g, m
}

func TestFindInductions(t *testing.T) {
	g, m := loopGraph(1)
	inds := FindInductions(g, 1)
	iv, ok := inds[m]
	if !ok {
		t.Fatal("induction merge not found")
	}
	if iv.Step != 1 {
		t.Errorf("step = %d, want 1", iv.Step)
	}
	// Non-loop hyperblock yields nothing.
	if len(FindInductions(g, 0)) != 0 {
		t.Error("inductions found in non-loop hyperblock")
	}
}

func TestFindInductionsNegativeStep(t *testing.T) {
	g, m := loopGraph(-1)
	inds := FindInductions(g, 1)
	if iv := inds[m]; iv == nil || iv.Step != -1 {
		t.Fatalf("descending induction not detected: %+v", inds[m])
	}
}

func TestMonotone(t *testing.T) {
	g, m := loopGraph(1)
	inds := FindInductions(g, 1)
	inv := func(n *pegasus.Node) bool { return n.Kind == pegasus.KConst || n.Kind == pegasus.KParam }
	// addr = base + 4*i: moves 4 bytes/iter, 4-byte access → monotone.
	base := g.NewNode(pegasus.KParam, 1)
	base.VT = pegasus.I32
	four := g.NewNode(pegasus.KConst, 1)
	four.VT = pegasus.I32
	four.ConstVal = 4
	i4 := g.NewNode(pegasus.KBinOp, 1)
	i4.BinOp = cminor.OpMul
	i4.VT = pegasus.I32
	i4.Ins = []pegasus.Ref{pegasus.V(m), pegasus.V(four)}
	addr := g.NewNode(pegasus.KBinOp, 1)
	addr.BinOp = cminor.OpAdd
	addr.VT = pegasus.I32
	addr.Ins = []pegasus.Ref{pegasus.V(base), pegasus.V(i4)}
	e := Decompose(addr)
	if !Monotone(e, inds, inv, 4) {
		t.Error("base + 4i should be monotone for 4-byte accesses")
	}
	if Monotone(e, inds, inv, 8) {
		t.Error("4-byte stride with 8-byte accesses overlaps")
	}
	// i alone (stride 1) with 4-byte accesses overlaps.
	if Monotone(Decompose(m), inds, inv, 4) {
		t.Error("stride 1 with 4-byte accesses overlaps")
	}
	// Constant address is not monotone.
	if Monotone(Decompose(base), inds, inv, 4) {
		t.Error("invariant address is not monotone")
	}
}

func TestDistance(t *testing.T) {
	g, m := loopGraph(1)
	inds := FindInductions(g, 1)
	four := g.NewNode(pegasus.KConst, 1)
	four.VT = pegasus.I32
	four.ConstVal = 4
	i4 := g.NewNode(pegasus.KBinOp, 1)
	i4.BinOp = cminor.OpMul
	i4.VT = pegasus.I32
	i4.Ins = []pegasus.Ref{pegasus.V(m), pegasus.V(four)}
	twelve := g.NewNode(pegasus.KConst, 1)
	twelve.VT = pegasus.I32
	twelve.ConstVal = 12
	ahead := g.NewNode(pegasus.KBinOp, 1)
	ahead.BinOp = cminor.OpAdd
	ahead.VT = pegasus.I32
	ahead.Ins = []pegasus.Ref{pegasus.V(i4), pegasus.V(twelve)}

	a, b := Decompose(i4), Decompose(ahead)
	d, ok := Distance(a, b, inds)
	if !ok || d != 3 {
		t.Errorf("distance = %d, %v; want 3", d, ok)
	}
	d, ok = Distance(b, a, inds)
	if !ok || d != -3 {
		t.Errorf("reverse distance = %d, %v; want -3", d, ok)
	}
	// Fractional distances are rejected.
	ten := g.NewNode(pegasus.KConst, 1)
	ten.VT = pegasus.I32
	ten.ConstVal = 10
	frac := g.NewNode(pegasus.KBinOp, 1)
	frac.BinOp = cminor.OpAdd
	frac.VT = pegasus.I32
	frac.Ins = []pegasus.Ref{pegasus.V(i4), pegasus.V(ten)}
	if _, ok := Distance(a, Decompose(frac), inds); ok {
		t.Error("10/4 iterations should not be a valid distance")
	}
}
