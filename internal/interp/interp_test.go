package interp

import (
	"testing"

	"spatial/internal/build"
	"spatial/internal/cminor"
	"spatial/internal/memsys"
	"spatial/internal/pegasus"
)

func setup(t *testing.T, src string) *pegasus.Program {
	t.Helper()
	prog, err := cminor.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := cminor.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := build.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func run(t *testing.T, src, entry string, args ...int64) *Result {
	t.Helper()
	p := setup(t, src)
	m := New(p, memsys.PerfectConfig())
	res, err := m.Run(entry, args)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return res
}

func TestArith(t *testing.T) {
	res := run(t, "int f(int a, int b) { return (a + b) * (a - b) / 2; }", "f", 7, 3)
	if res.Value != 20 {
		t.Errorf("got %d, want 20", res.Value)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int collatz(int n) {
  int steps = 0;
  while (n != 1) {
    if (n & 1) n = 3 * n + 1;
    else n = n / 2;
    steps++;
  }
  return steps;
}`
	res := run(t, src, "collatz", 27)
	if res.Value != 111 {
		t.Errorf("collatz(27) = %d, want 111", res.Value)
	}
}

func TestGlobalInitializers(t *testing.T) {
	src := `
int weights[4] = {10, 20, 30, 40};
int bias = 5;
int f(void) {
  int i;
  int s = bias;
  for (i = 0; i < 4; i++) s += weights[i];
  return s;
}`
	res := run(t, src, "f")
	if res.Value != 105 {
		t.Errorf("got %d, want 105", res.Value)
	}
}

func TestStringLiterals(t *testing.T) {
	src := `
int strlen0(const char *s) {
  int n = 0;
  while (s[n]) n++;
  return n;
}
int f(void) { return strlen0("hello"); }`
	res := run(t, src, "f")
	if res.Value != 5 {
		t.Errorf("strlen = %d", res.Value)
	}
}

func TestAddressTakenLocal(t *testing.T) {
	src := `
void bump(int *p, int by) { *p = *p + by; }
int f(void) {
  int x = 10;
  bump(&x, 5);
  bump(&x, 7);
  return x;
}`
	res := run(t, src, "f")
	if res.Value != 22 {
		t.Errorf("got %d, want 22", res.Value)
	}
}

func TestRecursionAndFrames(t *testing.T) {
	src := `
int ack(int m, int n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}`
	res := run(t, src, "ack", 2, 3)
	if res.Value != 9 {
		t.Errorf("ack(2,3) = %d, want 9", res.Value)
	}
}

func TestCharSignedness(t *testing.T) {
	src := `
char sc[2];
unsigned char uc[2];
int f(void) {
  sc[0] = (char)200;
  uc[0] = (unsigned char)200;
  return sc[0] * 1000 + uc[0];
}`
	res := run(t, src, "f")
	// signed char 200 → -56; -56*1000 + 200 = -55800
	if res.Value != -55800 {
		t.Errorf("got %d, want -55800", res.Value)
	}
}

func TestCountsAndCycles(t *testing.T) {
	src := `
int a[8];
int f(void) {
  int i;
  int s = 0;
  for (i = 0; i < 8; i++) a[i] = i;
  for (i = 0; i < 8; i++) s += a[i];
  return s;
}`
	res := run(t, src, "f")
	if res.Loads != 8 || res.Stores != 8 {
		t.Errorf("loads=%d stores=%d, want 8/8", res.Loads, res.Stores)
	}
	if res.Instrs == 0 || res.SeqCycles <= res.Instrs {
		t.Errorf("implausible cost model: instrs=%d cycles=%d", res.Instrs, res.SeqCycles)
	}
}

func TestShortCircuitSkipsRHS(t *testing.T) {
	// Unlike the speculating dataflow machine, the interpreter models a
	// sequential CPU: the RHS load must not be counted when p is null.
	src := `
int f(int *p) {
  if (p && *p) return 1;
  return 0;
}
int run(void) { return f((int*)0); }`
	res := run(t, src, "run")
	if res.Value != 0 {
		t.Errorf("got %d", res.Value)
	}
	if res.Loads != 0 {
		t.Errorf("RHS load executed despite short circuit: %d loads", res.Loads)
	}
}

func TestStepLimit(t *testing.T) {
	src := `
void f(void) { for (;;) {} }`
	p := setup(t, src)
	m := New(p, memsys.PerfectConfig())
	m.maxSteps = 1000
	if _, err := m.Run("f", nil); err == nil {
		t.Error("infinite loop not caught by the step limit")
	}
}

func TestBadEntry(t *testing.T) {
	p := setup(t, "int f(void) { return 1; }")
	m := New(p, memsys.PerfectConfig())
	if _, err := m.Run("g", nil); err == nil {
		t.Error("missing entry accepted")
	}
	if _, err := m.Run("f", []int64{1}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestMemoryInspection(t *testing.T) {
	src := `
int out[2];
void f(void) { out[0] = 11; out[1] = 22; }`
	p := setup(t, src)
	m := New(p, memsys.PerfectConfig())
	if _, err := m.Run("f", nil); err != nil {
		t.Fatal(err)
	}
	var addr uint32
	for _, o := range p.Alias.Objects {
		if o.Name == "out" {
			addr, _ = p.Layout.AddressOfObject(o.ID)
		}
	}
	if m.ReadWord(addr) != 11 || m.ReadWord(addr+4) != 22 {
		t.Errorf("memory = %d, %d", m.ReadWord(addr), m.ReadWord(addr+4))
	}
	if b := m.ReadBytes(addr, 4); b[0] != 11 {
		t.Errorf("bytes = %v", b)
	}
}

func TestDoWhileAndTernary(t *testing.T) {
	src := `
int f(int n) {
  int s = 0;
  do {
    s += n > 5 ? 2 : 1;
    n--;
  } while (n > 0);
  return s;
}`
	res := run(t, src, "f", 8)
	// n=8,7,6 → +2 each; n=5..1 → +1 each = 6 + 5 = 11
	if res.Value != 11 {
		t.Errorf("got %d, want 11", res.Value)
	}
}

func TestPointerDifferenceAndTernary(t *testing.T) {
	src := `
int a[16];
int f(int i, int j) {
  int *p = &a[i];
  int *q = &a[j];
  int d = p - q;
  return d > 0 ? d : -d;
}`
	res := run(t, src, "f", 10, 3)
	if res.Value != 7 {
		t.Errorf("pointer difference = %d, want 7", res.Value)
	}
	res = run(t, src, "f", 3, 10)
	if res.Value != 7 {
		t.Errorf("abs pointer difference = %d, want 7", res.Value)
	}
}

func TestUnsignedComparisonSemantics(t *testing.T) {
	src := `
int f(unsigned a, int b) {
  /* -1 as unsigned is huge */
  unsigned ub = (unsigned)b;
  if (a < ub) return 1;
  return 0;
}`
	res := run(t, src, "f", 5, -1)
	if res.Value != 1 {
		t.Errorf("5 < (unsigned)-1 should be true")
	}
}

func TestGlobalPointerInitializerRuns(t *testing.T) {
	src := `
int target = 9;
int *gp = &target;
int f(void) { *gp = *gp + 1; return target; }`
	res := run(t, src, "f")
	if res.Value != 10 {
		t.Errorf("got %d, want 10", res.Value)
	}
}
