// Package interp is a direct AST interpreter for cMinor with the same
// memory layout and value semantics as the dataflow simulator. It serves
// two purposes: it is the correctness oracle for differential testing of
// the compiler + simulator, and it models the sequential (one operation
// at a time, in program order) execution baseline that the ASPLOS'04
// paper compares spatial computation against.
package interp

import (
	"fmt"

	"spatial/internal/alias"
	"spatial/internal/cminor"
	"spatial/internal/memsys"
	"spatial/internal/pegasus"
)

// Result is the outcome of an interpreted execution.
type Result struct {
	Value int64
	// Instrs counts executed simple operations.
	Instrs int64
	Loads  int64
	Stores int64
	// SeqCycles is the in-order cycle estimate: operation latencies plus
	// serialized memory accesses.
	SeqCycles int64
	Mem       memsys.Stats
}

// Machine interprets programs.
type Machine struct {
	prog   *cminor.Program
	an     *alias.Analysis
	layout *pegasus.Layout
	mem    []byte
	msys   *memsys.System

	res   Result
	clock int64
	sp    uint32

	steps    int64
	maxSteps int64
}

// New creates an interpreter with the given memory model.
func New(p *pegasus.Program, mcfg memsys.Config) *Machine {
	m := &Machine{
		prog:     p.Source,
		an:       p.Alias,
		layout:   p.Layout,
		mem:      make([]byte, p.Layout.MemSize),
		msys:     memsys.New(mcfg),
		sp:       p.Layout.StackBase,
		maxSteps: 1 << 32,
	}
	for _, c := range p.Layout.Init {
		m.write(c.Addr, c.Size, c.Value)
	}
	return m
}

// Run executes entry(args...).
func (m *Machine) Run(entry string, args []int64) (*Result, error) {
	fn := m.prog.Func(entry)
	if fn == nil || fn.Body == nil {
		return nil, fmt.Errorf("interp: no function %q", entry)
	}
	if len(args) != len(fn.Params) {
		return nil, fmt.Errorf("interp: %s expects %d args, got %d", entry, len(fn.Params), len(args))
	}
	v, err := m.callFn(fn, args)
	if err != nil {
		return nil, err
	}
	m.res.Value = v
	m.res.SeqCycles = m.clock
	m.res.Mem = m.msys.Stats()
	r := m.res
	return &r, nil
}

// ReadWord reads simulated memory post-run.
func (m *Machine) ReadWord(addr uint32) int64 { return m.read(addr, 4, true) }

// ReadBytes copies out simulated memory.
func (m *Machine) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	copy(out, m.mem[addr:int(addr)+n])
	return out
}

// frame is one activation record.
type frame struct {
	fn   *cminor.FuncDecl
	vars map[*cminor.VarDecl]int64
	base uint32
}

// control-flow signals
type signal int

const (
	sigNone signal = iota
	sigBreak
	sigContinue
	sigReturn
)

func (m *Machine) callFn(fn *cminor.FuncDecl, args []int64) (int64, error) {
	fr := &frame{fn: fn, vars: map[*cminor.VarDecl]int64{}, base: m.sp}
	size := m.layout.FrameSize[fn]
	m.sp += (size + 7) &^ 7
	if int(m.sp) > len(m.mem) {
		return 0, fmt.Errorf("interp: stack overflow in %s", fn.Name)
	}
	// Locals start zeroed, matching the dataflow simulator's frame
	// allocator (which zeroes recycled frames): without this, a program
	// reading an uninitialized local would see stale bytes from an
	// earlier call at the same stack depth, and the two engines would
	// disagree nondeterministically.
	clear(m.mem[fr.base:m.sp])
	defer func() { m.sp = fr.base }()
	for i, p := range fn.Params {
		if obj, ok := m.an.ObjectOf(p); ok {
			m.storeCost()
			m.write(fr.base+m.layout.FrameOffset[obj], int(p.Type.Decay().Size()), args[i])
		} else {
			fr.vars[p] = args[i]
		}
	}
	sig, val, err := m.stmt(fr, fn.Body)
	if err != nil {
		return 0, err
	}
	if sig == sigReturn {
		return val, nil
	}
	return 0, nil
}

func (m *Machine) tick(n int64) {
	m.clock += n
	m.res.Instrs++
	m.steps++
}

func (m *Machine) loadCost(addr uint32, bytes int) {
	m.res.Loads++
	done := m.msys.Submit(m.clock, true, addr, bytes)
	m.clock = done
}

func (m *Machine) storeCost() { m.res.Stores++ }

func (m *Machine) storeAt(addr uint32, bytes int) {
	done := m.msys.Submit(m.clock, false, addr, bytes)
	// Stores retire in order in the sequential model but do not block
	// subsequent computation beyond issue: charge one cycle.
	_ = done
	m.clock++
}

func (m *Machine) stmt(fr *frame, s cminor.Stmt) (signal, int64, error) {
	if m.steps > m.maxSteps {
		return sigNone, 0, fmt.Errorf("interp: step limit exceeded")
	}
	switch s := s.(type) {
	case *cminor.BlockStmt:
		for _, sub := range s.Stmts {
			sig, v, err := m.stmt(fr, sub)
			if err != nil || sig != sigNone {
				return sig, v, err
			}
		}
		return sigNone, 0, nil
	case *cminor.EmptyStmt, *cminor.PragmaStmt:
		return sigNone, 0, nil
	case *cminor.DeclStmt:
		v := s.Var
		if v.Init != nil {
			val, err := m.expr(fr, v.Init)
			if err != nil {
				return sigNone, 0, err
			}
			if err := m.assignVar(fr, v, val); err != nil {
				return sigNone, 0, err
			}
		}
		for i, e := range v.InitList {
			val, err := m.expr(fr, e)
			if err != nil {
				return sigNone, 0, err
			}
			obj, ok := m.an.ObjectOf(v)
			if !ok {
				return sigNone, 0, fmt.Errorf("interp: init list on register var %s", v.Name)
			}
			esz := v.Type.Elem.Size()
			m.storeCost()
			m.storeAt(fr.base+m.layout.FrameOffset[obj]+uint32(int64(i)*esz), int(esz))
			m.write(fr.base+m.layout.FrameOffset[obj]+uint32(int64(i)*esz), int(esz), val)
		}
		return sigNone, 0, nil
	case *cminor.ExprStmt:
		_, err := m.expr(fr, s.X)
		return sigNone, 0, err
	case *cminor.IfStmt:
		c, err := m.expr(fr, s.Cond)
		if err != nil {
			return sigNone, 0, err
		}
		m.tick(1) // branch
		if c != 0 {
			return m.stmt(fr, s.Then)
		}
		if s.Else != nil {
			return m.stmt(fr, s.Else)
		}
		return sigNone, 0, nil
	case *cminor.WhileStmt:
		for {
			m.steps++
			c, err := m.expr(fr, s.Cond)
			if err != nil {
				return sigNone, 0, err
			}
			m.tick(1)
			if c == 0 {
				return sigNone, 0, nil
			}
			sig, v, err := m.stmt(fr, s.Body)
			if err != nil {
				return sigNone, 0, err
			}
			if sig == sigBreak {
				return sigNone, 0, nil
			}
			if sig == sigReturn {
				return sig, v, nil
			}
			if m.steps > m.maxSteps {
				return sigNone, 0, fmt.Errorf("interp: step limit exceeded")
			}
		}
	case *cminor.DoWhileStmt:
		for {
			m.steps++
			sig, v, err := m.stmt(fr, s.Body)
			if err != nil {
				return sigNone, 0, err
			}
			if sig == sigBreak {
				return sigNone, 0, nil
			}
			if sig == sigReturn {
				return sig, v, nil
			}
			c, err := m.expr(fr, s.Cond)
			if err != nil {
				return sigNone, 0, err
			}
			m.tick(1)
			if c == 0 {
				return sigNone, 0, nil
			}
		}
	case *cminor.ForStmt:
		if s.Init != nil {
			if sig, v, err := m.stmt(fr, s.Init); err != nil || sig != sigNone {
				return sig, v, err
			}
		}
		for {
			m.steps++
			if s.Cond != nil {
				c, err := m.expr(fr, s.Cond)
				if err != nil {
					return sigNone, 0, err
				}
				m.tick(1)
				if c == 0 {
					return sigNone, 0, nil
				}
			}
			sig, v, err := m.stmt(fr, s.Body)
			if err != nil {
				return sigNone, 0, err
			}
			if sig == sigBreak {
				return sigNone, 0, nil
			}
			if sig == sigReturn {
				return sig, v, nil
			}
			if s.Post != nil {
				if _, err := m.expr(fr, s.Post); err != nil {
					return sigNone, 0, err
				}
			}
			if m.steps > m.maxSteps {
				return sigNone, 0, fmt.Errorf("interp: step limit exceeded")
			}
		}
	case *cminor.ReturnStmt:
		if s.X == nil {
			return sigReturn, 0, nil
		}
		v, err := m.expr(fr, s.X)
		if err != nil {
			return sigNone, 0, err
		}
		return sigReturn, truncType(v, fr.fn.Ret), nil
	case *cminor.BreakStmt:
		return sigBreak, 0, nil
	case *cminor.ContinueStmt:
		return sigContinue, 0, nil
	}
	return sigNone, 0, fmt.Errorf("interp: unknown statement %T", s)
}

func truncType(v int64, t *cminor.Type) int64 {
	t = t.Decay()
	if !t.IsInteger() {
		return int64(int32(v))
	}
	switch {
	case t.Bits == 8 && t.Signed:
		return int64(int8(v))
	case t.Bits == 8:
		return int64(uint8(v))
	case t.Bits == 16 && t.Signed:
		return int64(int16(v))
	case t.Bits == 16:
		return int64(uint16(v))
	default:
		return int64(int32(v))
	}
}

func (m *Machine) assignVar(fr *frame, v *cminor.VarDecl, val int64) error {
	if obj, ok := m.an.ObjectOf(v); ok {
		sz := int(v.Type.Decay().Size())
		addr := m.objAddr(fr, obj)
		m.storeCost()
		m.storeAt(addr, sz)
		m.write(addr, sz, val)
		return nil
	}
	fr.vars[v] = truncType(val, v.Type)
	return nil
}

func (m *Machine) objAddr(fr *frame, obj alias.ObjID) uint32 {
	if a, ok := m.layout.AddressOfObject(obj); ok {
		return a
	}
	return fr.base + m.layout.FrameOffset[obj]
}

// lvalueAddr resolves an lvalue to (address, size).
func (m *Machine) lvalueAddr(fr *frame, e cminor.Expr) (uint32, int, error) {
	switch e := e.(type) {
	case *cminor.VarRef:
		obj, ok := m.an.ObjectOf(e.Decl)
		if !ok {
			return 0, 0, fmt.Errorf("interp: %s is not in memory", e.Name)
		}
		return m.objAddr(fr, obj), int(e.Decl.Type.Decay().Size()), nil
	case *cminor.IndexExpr:
		base, err := m.expr(fr, e.Array)
		if err != nil {
			return 0, 0, err
		}
		idx, err := m.expr(fr, e.Index)
		if err != nil {
			return 0, 0, err
		}
		m.tick(1) // address arithmetic
		return uint32(base + idx*e.Typ.Size()), int(e.Typ.Size()), nil
	case *cminor.DerefExpr:
		p, err := m.expr(fr, e.X)
		if err != nil {
			return 0, 0, err
		}
		return uint32(p), int(e.Typ.Size()), nil
	}
	return 0, 0, fmt.Errorf("interp: not an lvalue: %T", e)
}

func (m *Machine) expr(fr *frame, e cminor.Expr) (int64, error) {
	switch e := e.(type) {
	case *cminor.NumberLit:
		return e.Val, nil
	case *cminor.StringLit:
		addr, _ := m.layout.AddressOfObject(m.an.StringObject(e.Index))
		return int64(addr), nil
	case *cminor.VarRef:
		d := e.Decl
		if d.Type.Kind == cminor.TypeArray {
			obj, ok := m.an.ObjectOf(d)
			if !ok {
				return 0, fmt.Errorf("interp: array %s has no object", d.Name)
			}
			return int64(m.objAddr(fr, obj)), nil
		}
		if obj, ok := m.an.ObjectOf(d); ok {
			sz := int(d.Type.Decay().Size())
			addr := m.objAddr(fr, obj)
			m.loadCost(addr, sz)
			return m.read(addr, sz, d.Type.Decay().IsInteger() && d.Type.Decay().Signed), nil
		}
		return fr.vars[d], nil
	case *cminor.BinExpr:
		return m.binExpr(fr, e)
	case *cminor.UnExpr:
		x, err := m.expr(fr, e.X)
		if err != nil {
			return 0, err
		}
		m.tick(1)
		switch e.Op {
		case cminor.OpNeg:
			return int64(int32(-x)), nil
		case cminor.OpBitNot:
			return int64(int32(^x)), nil
		case cminor.OpNot:
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *cminor.CondExpr:
		c, err := m.expr(fr, e.Cond)
		if err != nil {
			return 0, err
		}
		m.tick(1)
		if c != 0 {
			return m.expr(fr, e.Then)
		}
		return m.expr(fr, e.Else)
	case *cminor.IndexExpr:
		if e.Typ.Kind == cminor.TypeArray {
			base, err := m.expr(fr, e.Array)
			if err != nil {
				return 0, err
			}
			idx, err := m.expr(fr, e.Index)
			if err != nil {
				return 0, err
			}
			m.tick(1)
			return base + idx*e.Typ.Size(), nil
		}
		addr, sz, err := m.lvalueAddr(fr, e)
		if err != nil {
			return 0, err
		}
		m.loadCost(addr, sz)
		return m.read(addr, sz, e.Typ.IsInteger() && e.Typ.Signed), nil
	case *cminor.DerefExpr:
		addr, sz, err := m.lvalueAddr(fr, e)
		if err != nil {
			return 0, err
		}
		m.loadCost(addr, sz)
		return m.read(addr, sz, e.Typ.IsInteger() && e.Typ.Signed), nil
	case *cminor.AddrExpr:
		switch lv := e.X.(type) {
		case *cminor.VarRef:
			obj, ok := m.an.ObjectOf(lv.Decl)
			if !ok {
				return 0, fmt.Errorf("interp: &%s: not in memory", lv.Name)
			}
			return int64(m.objAddr(fr, obj)), nil
		case *cminor.IndexExpr:
			base, err := m.expr(fr, lv.Array)
			if err != nil {
				return 0, err
			}
			idx, err := m.expr(fr, lv.Index)
			if err != nil {
				return 0, err
			}
			m.tick(1)
			return base + idx*lv.Typ.Size(), nil
		case *cminor.DerefExpr:
			return m.expr(fr, lv.X)
		}
		return 0, fmt.Errorf("interp: unsupported address-of")
	case *cminor.CastExpr:
		x, err := m.expr(fr, e.X)
		if err != nil {
			return 0, err
		}
		return truncType(x, e.To), nil
	case *cminor.CallExpr:
		args := make([]int64, len(e.Args))
		for i, a := range e.Args {
			v, err := m.expr(fr, a)
			if err != nil {
				return 0, err
			}
			args[i] = truncType(v, e.Func.Params[i].Type)
		}
		m.tick(1) // call overhead
		return m.callFn(e.Func, args)
	case *cminor.AssignExpr:
		val, err := m.expr(fr, e.RHS)
		if err != nil {
			return 0, err
		}
		if vr, ok := e.LHS.(*cminor.VarRef); ok {
			if _, inMem := m.an.ObjectOf(vr.Decl); !inMem {
				if err := m.assignVar(fr, vr.Decl, val); err != nil {
					return 0, err
				}
				return val, nil
			}
		}
		addr, sz, err := m.lvalueAddr(fr, e.LHS)
		if err != nil {
			return 0, err
		}
		m.storeCost()
		m.storeAt(addr, sz)
		m.write(addr, sz, val)
		return val, nil
	}
	return 0, fmt.Errorf("interp: cannot evaluate %T", e)
}

func (m *Machine) binExpr(fr *frame, e *cminor.BinExpr) (int64, error) {
	lt, rt := e.L.Type().Decay(), e.R.Type().Decay()
	if e.Op == cminor.OpLogAnd || e.Op == cminor.OpLogOr {
		l, err := m.expr(fr, e.L)
		if err != nil {
			return 0, err
		}
		m.tick(1)
		if e.Op == cminor.OpLogAnd && l == 0 {
			return 0, nil
		}
		if e.Op == cminor.OpLogOr && l != 0 {
			return 1, nil
		}
		r, err := m.expr(fr, e.R)
		if err != nil {
			return 0, err
		}
		if r != 0 {
			return 1, nil
		}
		return 0, nil
	}
	l, err := m.expr(fr, e.L)
	if err != nil {
		return 0, err
	}
	r, err := m.expr(fr, e.R)
	if err != nil {
		return 0, err
	}
	// latency
	switch e.Op {
	case cminor.OpMul:
		m.tick(3)
	case cminor.OpDiv, cminor.OpRem:
		m.tick(20)
	default:
		m.tick(1)
	}
	// Pointer arithmetic scaling.
	switch {
	case lt.IsPointer() && rt.IsInteger() && (e.Op == cminor.OpAdd || e.Op == cminor.OpSub):
		r *= lt.Elem.Size()
	case rt.IsPointer() && lt.IsInteger() && e.Op == cminor.OpAdd:
		l *= rt.Elem.Size()
	case lt.IsPointer() && rt.IsPointer() && e.Op == cminor.OpSub:
		d := int64(int32(l - r))
		if sz := lt.Elem.Size(); sz > 1 {
			d /= sz
		}
		return d, nil
	}
	uns := isUnsigned(lt, rt, e)
	v, err := cminor.EvalBinOp(e.Op, l, r, uns)
	if err != nil {
		return 0, nil // hardware: division by zero yields 0
	}
	return v, nil
}

func isUnsigned(lt, rt *cminor.Type, e *cminor.BinExpr) bool {
	if e.Op.IsComparison() {
		if lt.IsPointer() || rt.IsPointer() {
			return true
		}
		lu := lt.IsInteger() && lt.Bits >= 32 && !lt.Signed
		ru := rt.IsInteger() && rt.Bits >= 32 && !rt.Signed
		return lu || ru
	}
	return e.Typ != nil && e.Typ.IsInteger() && !e.Typ.Signed
}

func (m *Machine) read(addr uint32, bytes int, signed bool) int64 {
	if int(addr)+bytes > len(m.mem) {
		return 0
	}
	var raw uint32
	for i := 0; i < bytes; i++ {
		raw |= uint32(m.mem[addr+uint32(i)]) << (8 * i)
	}
	switch {
	case bytes == 1 && signed:
		return int64(int8(raw))
	case bytes == 1:
		return int64(uint8(raw))
	case bytes == 2 && signed:
		return int64(int16(raw))
	case bytes == 2:
		return int64(uint16(raw))
	default:
		return int64(int32(raw))
	}
}

func (m *Machine) write(addr uint32, bytes int, v int64) {
	if int(addr)+bytes > len(m.mem) {
		return
	}
	for i := 0; i < bytes; i++ {
		m.mem[addr+uint32(i)] = byte(v >> (8 * i))
	}
}
