// Package difftest is the differential testing harness behind the fuzzer:
// it runs one source program on the dataflow simulator at every
// optimization level — optionally under injected faults — and checks each
// result against the sequential interpreter oracle. Every configuration
// additionally runs on both execution backends (the event-driven
// interpreter and the compiled flat-bytecode VM) and twice more with the
// event queue partitioned into concurrent domains (interpreter and
// compiled VM), all of which must agree bit-for-bit: identical Result on
// completion, identical diagnosis on abort, on clean and on perturbed
// schedules alike.
//
// The contract it enforces is the robustness claim of a self-timed
// circuit:
//
//   - pure *delays* (edge jitter, frozen nodes, stretched memory
//     responses) must be absorbed: same checksum, different schedule;
//   - a *lost* delivery must be absorbed (the value was dead), detected
//     as a diagnosed deadlock/livelock, or — when the loss misaligns
//     iteration streams past a merge, which the circuit itself cannot
//     observe — caught by the differential oracle. The only illegal
//     outcome is a wrong answer with no fault on record;
//   - a *corrupted* memory response must be detected as a fault error.
//
// Any other outcome — a checksum mismatch, a panic, an undiagnosed hang —
// is a finding, and Shrink + WriteCrasher turn it into a small reproducer
// under testdata/crashers/.
package difftest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/faultsim"
	"spatial/internal/opt"
	"spatial/internal/progen"
)

// Entry is the function every generated program exposes.
const Entry = "bench"

// Partitions is the event-domain count the partitioned-vs-sequential
// battery runs with.
const Partitions = 3

// Levels are the optimization levels a program is checked at.
var Levels = []opt.Level{opt.None, opt.Basic, opt.Medium, opt.Full}

// Check compiles src at every optimization level, runs each on the
// dataflow simulator, and compares every result value against the
// sequential interpreter oracle. maxCycles bounds each run; 0 scales the
// budget from the oracle's sequential cycle count, so heavy programs get
// room while a genuine livelock is still cut off.
func Check(src string, maxCycles int64) error {
	_, err := check(src, maxCycles)
	return err
}

// baseline is the clean-run evidence CheckFaults replays against.
type baseline struct {
	oracle int64
	cycles map[opt.Level]int64
}

func check(src string, maxCycles int64) (baseline, error) {
	b := baseline{cycles: make(map[opt.Level]int64, len(Levels))}
	oracle, seqCycles, err := runOracle(src)
	if err != nil {
		return b, err
	}
	b.oracle = oracle
	if maxCycles <= 0 {
		// Spatial execution is normally faster than sequential; 32x the
		// sequential estimate plus slack is far past any honest run.
		maxCycles = 32*seqCycles + 200_000
	}
	for _, lvl := range Levels {
		cp, err := compileAt(src, lvl, maxCycles, core.BackendInterpreted)
		if err != nil {
			return b, err
		}
		res, err := cp.Run(Entry, nil)
		if err != nil {
			return b, fmt.Errorf("difftest: O%d run: %w", lvl, err)
		}
		if res.Value != oracle {
			return b, fmt.Errorf("difftest: O%d checksum mismatch: simulator %d, oracle %d", lvl, res.Value, oracle)
		}
		b.cycles[lvl] = res.Stats.Cycles

		// The compiled backend must be bit-identical to the interpreter —
		// not just the checksum, but every statistic (events, cycles,
		// per-class firing counts, memory-system counters).
		cpc, err := compileAt(src, lvl, maxCycles, core.BackendCompiled)
		if err != nil {
			return b, err
		}
		resC, err := cpc.Run(Entry, nil)
		if err != nil {
			return b, fmt.Errorf("difftest: O%d compiled run: %w", lvl, err)
		}
		if *resC != *res {
			return b, fmt.Errorf("difftest: O%d BACKEND DIVERGENCE:\n interpreted %+v\n compiled    %+v", lvl, res, resC)
		}

		// Partitioned execution must be bit-identical too: the scheduler
		// changes where events wait, never the order they pop.
		cpp, err := compileParts(src, lvl, maxCycles, Partitions)
		if err != nil {
			return b, err
		}
		resP, err := cpp.Run(Entry, nil)
		if err != nil {
			return b, fmt.Errorf("difftest: O%d partitioned run: %w", lvl, err)
		}
		if *resP != *res {
			return b, fmt.Errorf("difftest: O%d PARTITION DIVERGENCE:\n sequential  %+v\n partitioned %+v", lvl, res, resP)
		}

		// And the partitioned compiled VM: same domain assignment, mapped
		// onto the flat-bytecode scheduler.
		cppc, err := compilePartsCompiled(src, lvl, maxCycles, Partitions)
		if err != nil {
			return b, err
		}
		resPC, err := cppc.Run(Entry, nil)
		if err != nil {
			return b, fmt.Errorf("difftest: O%d partitioned-compiled run: %w", lvl, err)
		}
		if *resPC != *res {
			return b, fmt.Errorf("difftest: O%d PARTITIONED-COMPILED DIVERGENCE:\n interpreted %+v\n part-compiled %+v", lvl, res, resPC)
		}
	}
	return b, nil
}

// FaultReport tallies the fault runs of one CheckFaults call.
type FaultReport struct {
	// Absorbed counts fault runs that completed with the oracle checksum
	// (including runs whose planned fault never matched an event).
	Absorbed int
	// Detected counts fault runs that aborted with a typed simulator
	// error (deadlock, livelock, memory fault, resource limit).
	Detected int
	// OracleCaught counts dropped deliveries that completed with a wrong
	// checksum and were caught only by the differential oracle. A lost
	// delivery past a merge can misalign iteration streams without
	// starving anything — undetectable in-circuit without wave tags — so
	// the oracle is the designated detector for this class.
	OracleCaught int
}

func (r FaultReport) String() string {
	return fmt.Sprintf("%d absorbed, %d detected, %d oracle-caught", r.Absorbed, r.Detected, r.OracleCaught)
}

// CheckFaults first establishes clean checksum equivalence (Check), then
// replays the program at every optimization level under a seeded battery
// of injected faults and verifies each outcome against the contract:
// delay-only faults must be absorbed, drops must be absorbed or detected,
// and a corrupted memory response must be detected. A non-nil error means
// the contract was violated — most seriously by a silent wrong answer.
func CheckFaults(src string, seed int64, maxCycles int64) (FaultReport, error) {
	var rep FaultReport
	clean, err := check(src, maxCycles)
	if err != nil {
		return rep, err
	}
	oracle := clean.oracle
	for _, lvl := range Levels {
		// Budget fault runs relative to the clean run: absorbed delays
		// stretch the schedule a little, livelocks are cut off fast.
		budget := clean.cycles[lvl]*8 + 4096
		cp, err := compileAt(src, lvl, budget, core.BackendInterpreted)
		if err != nil {
			return rep, err
		}
		cpc, err := compileAt(src, lvl, budget, core.BackendCompiled)
		if err != nil {
			return rep, err
		}
		cpp, err := compileParts(src, lvl, budget, Partitions)
		if err != nil {
			return rep, err
		}
		cppc, err := compilePartsCompiled(src, lvl, budget, Partitions)
		if err != nil {
			return rep, err
		}
		mix := seed ^ int64(lvl)*0x9e3779b9
		// Injectors are stateful (they consume fault occurrences as the
		// run delivers events), so each backend replays against a fresh
		// injector built from the same plan.
		runs := []struct {
			name    string
			inj     func() *faultsim.Injector
			mustAbs bool // delay-only: any detection is a contract violation
			isDrop  bool // lossy: a wrong checksum is the oracle doing its job
		}{
			{"jitter", func() *faultsim.Injector { return faultsim.NewJitter(mix, 0.05, 8) }, true, false},
			{"freeze", func() *faultsim.Injector {
				return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
					{Op: faultsim.Freeze, Node: -1, Edge: -1, Nth: 1 + int(mod(mix, 40)), Cycles: 40},
				}})
			}, true, false},
			{"mem-stretch", func() *faultsim.Injector {
				return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
					{Op: faultsim.MemStretch, Node: -1, Edge: -1, Nth: 1 + int(mod(mix>>8, 16)), Cycles: 64},
				}})
			}, true, false},
			{"drop-value", func() *faultsim.Injector {
				return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
					{Op: faultsim.Drop, Node: -1, Edge: -1, Nth: 1 + int(mod(mix>>16, 200))},
				}})
			}, false, true},
			{"drop-token", func() *faultsim.Injector {
				return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
					{Op: faultsim.Drop, Node: -1, Edge: -1, Token: true, Nth: 1 + int(mod(mix>>24, 100))},
				}})
			}, false, true},
			{"mem-fail", func() *faultsim.Injector {
				return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
					{Op: faultsim.MemFail, Node: -1, Edge: -1, Nth: 1 + int(mod(mix>>32, 16))},
				}})
			}, false, false},
		}
		for _, fr := range runs {
			injI := fr.inj()
			res, err := cp.RunFaulted(context.Background(), Entry, nil, injI)
			triggered := len(injI.Triggered()) > 0

			// Both backends must replay the fault identically: the same
			// deliveries perturbed, the same outcome — identical Result on
			// completion, identical error text (stuck report included) on
			// abort. This is the strongest form of the bit-identity claim:
			// it must hold on perturbed schedules, not just clean ones.
			injC := fr.inj()
			resC, errC := cpc.RunFaulted(context.Background(), Entry, nil, injC)
			switch {
			case (err == nil) != (errC == nil):
				return rep, fmt.Errorf("difftest: O%d %s: BACKEND DIVERGENCE: interpreted err=%v, compiled err=%v", lvl, fr.name, err, errC)
			case err == nil && *res != *resC:
				return rep, fmt.Errorf("difftest: O%d %s: BACKEND DIVERGENCE:\n interpreted %+v\n compiled    %+v", lvl, fr.name, res, resC)
			case err != nil && err.Error() != errC.Error():
				return rep, fmt.Errorf("difftest: O%d %s: BACKEND DIVERGENCE on error:\n interpreted %v\n compiled    %v", lvl, fr.name, err, errC)
			}
			if len(injI.Triggered()) != len(injC.Triggered()) {
				return rep, fmt.Errorf("difftest: O%d %s: BACKEND DIVERGENCE: %d faults triggered interpreted, %d compiled",
					lvl, fr.name, len(injI.Triggered()), len(injC.Triggered()))
			}

			// Partitioned execution must replay the fault identically as
			// well: injectors key off the deterministic event stream, and
			// partitioning preserves it — same faults fired, same outcome,
			// same error text on abort.
			injP := fr.inj()
			resP, errP := cpp.RunFaulted(context.Background(), Entry, nil, injP)
			switch {
			case (err == nil) != (errP == nil):
				return rep, fmt.Errorf("difftest: O%d %s: PARTITION DIVERGENCE: sequential err=%v, partitioned err=%v", lvl, fr.name, err, errP)
			case err == nil && *res != *resP:
				return rep, fmt.Errorf("difftest: O%d %s: PARTITION DIVERGENCE:\n sequential  %+v\n partitioned %+v", lvl, fr.name, res, resP)
			case err != nil && err.Error() != errP.Error():
				return rep, fmt.Errorf("difftest: O%d %s: PARTITION DIVERGENCE on error:\n sequential  %v\n partitioned %v", lvl, fr.name, err, errP)
			}
			if len(injI.Triggered()) != len(injP.Triggered()) {
				return rep, fmt.Errorf("difftest: O%d %s: PARTITION DIVERGENCE: %d faults triggered sequential, %d partitioned",
					lvl, fr.name, len(injI.Triggered()), len(injP.Triggered()))
			}

			// The partitioned compiled VM replays the same battery.
			injPC := fr.inj()
			resPC, errPC := cppc.RunFaulted(context.Background(), Entry, nil, injPC)
			switch {
			case (err == nil) != (errPC == nil):
				return rep, fmt.Errorf("difftest: O%d %s: PARTITIONED-COMPILED DIVERGENCE: interpreted err=%v, part-compiled err=%v", lvl, fr.name, err, errPC)
			case err == nil && *res != *resPC:
				return rep, fmt.Errorf("difftest: O%d %s: PARTITIONED-COMPILED DIVERGENCE:\n interpreted   %+v\n part-compiled %+v", lvl, fr.name, res, resPC)
			case err != nil && err.Error() != errPC.Error():
				return rep, fmt.Errorf("difftest: O%d %s: PARTITIONED-COMPILED DIVERGENCE on error:\n interpreted   %v\n part-compiled %v", lvl, fr.name, err, errPC)
			}
			if len(injI.Triggered()) != len(injPC.Triggered()) {
				return rep, fmt.Errorf("difftest: O%d %s: PARTITIONED-COMPILED DIVERGENCE: %d faults triggered interpreted, %d part-compiled",
					lvl, fr.name, len(injI.Triggered()), len(injPC.Triggered()))
			}
			switch {
			case err == nil && res.Value == oracle:
				rep.Absorbed++
			case err == nil && fr.isDrop && triggered:
				// A lost delivery past a merge can misalign the surviving
				// iteration streams and complete with a wrong value without
				// starving anything. The circuit cannot see this (no wave
				// tags); the differential oracle is the detector of record.
				rep.OracleCaught++
			case err == nil:
				return rep, fmt.Errorf("difftest: O%d %s: SILENT CORRUPTION: simulator %d, oracle %d (faults: %v)",
					lvl, fr.name, res.Value, oracle, injI.Triggered())
			case fr.mustAbs:
				return rep, fmt.Errorf("difftest: O%d %s: delay-only fault was not absorbed: %w", lvl, fr.name, err)
			case errors.Is(err, core.ErrSim) && triggered:
				rep.Detected++
			case errors.Is(err, core.ErrSim):
				return rep, fmt.Errorf("difftest: O%d %s: run failed with no fault triggered: %w", lvl, fr.name, err)
			default:
				return rep, fmt.Errorf("difftest: O%d %s: unclassified failure: %w", lvl, fr.name, err)
			}
			if fr.name == "mem-fail" && triggered && err != nil && !errors.Is(err, dataflow.ErrMemFault) {
				return rep, fmt.Errorf("difftest: O%d mem-fail: detected but not as a memory fault: %w", lvl, err)
			}
		}
	}
	return rep, nil
}

// runOracle executes src on the sequential interpreter, returning the
// checksum and the sequential cycle estimate (the budget yardstick).
func runOracle(src string) (int64, int64, error) {
	cp, err := core.CompileSource(src, core.WithLevel(opt.None))
	if err != nil {
		return 0, 0, fmt.Errorf("difftest: oracle compile: %w", err)
	}
	res, err := cp.RunSequential(Entry, nil)
	if err != nil {
		return 0, 0, fmt.Errorf("difftest: oracle run: %w", err)
	}
	return res.Value, res.SeqCycles, nil
}

func compileAt(src string, lvl opt.Level, maxCycles int64, backend core.Backend) (*core.Compiled, error) {
	sim := core.DefaultSim()
	sim.MaxCycles = maxCycles
	cp, err := core.CompileSource(src, core.WithLevel(lvl), core.WithSim(sim), core.WithBackend(backend))
	if err != nil {
		return nil, fmt.Errorf("difftest: O%d compile: %w", lvl, err)
	}
	if err := cp.Verify(); err != nil {
		return nil, fmt.Errorf("difftest: O%d verify: %w", lvl, err)
	}
	return cp, nil
}

// compileParts is compileAt for partitioned interpreter execution.
func compileParts(src string, lvl opt.Level, maxCycles int64, parts int) (*core.Compiled, error) {
	sim := core.DefaultSim()
	sim.MaxCycles = maxCycles
	cp, err := core.CompileSource(src, core.WithLevel(lvl), core.WithSim(sim), core.WithPartitions(parts))
	if err != nil {
		return nil, fmt.Errorf("difftest: O%d partitioned compile: %w", lvl, err)
	}
	return cp, nil
}

// compilePartsCompiled is compileAt for partitioned compiled-backend
// execution (the domain-renumbered flat-bytecode VM).
func compilePartsCompiled(src string, lvl opt.Level, maxCycles int64, parts int) (*core.Compiled, error) {
	sim := core.DefaultSim()
	sim.MaxCycles = maxCycles
	cp, err := core.CompileSource(src, core.WithLevel(lvl), core.WithSim(sim),
		core.WithBackend(core.BackendCompiled), core.WithPartitions(parts))
	if err != nil {
		return nil, fmt.Errorf("difftest: O%d partitioned-compiled compile: %w", lvl, err)
	}
	return cp, nil
}

// mod is a non-negative modulus for seed mixing.
func mod(x, m int64) int64 {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}

// Failing reports whether the generated program at cfg violates the
// differential contract; faulted additionally replays the fault battery.
// It is the predicate Shrink minimizes against.
func Failing(cfg progen.Config, faulted bool, maxCycles int64) bool {
	src := progen.Generate(cfg)
	if err := Check(src, maxCycles); err != nil {
		return true
	}
	if faulted {
		if _, err := CheckFaults(src, cfg.Seed, maxCycles); err != nil {
			return true
		}
	}
	return false
}

// Shrink greedily minimizes a failing generator configuration: it walks
// Stmts, MaxDepth, Arrays, and Scalars downward, keeping each reduction
// that still fails, until no single reduction reproduces the failure. The
// seed is preserved — the reproducer is the (shrunk config, seed) pair.
func Shrink(cfg progen.Config, failing func(progen.Config) bool) progen.Config {
	type field struct {
		get func(*progen.Config) *int
		min int
	}
	fields := []field{
		{func(c *progen.Config) *int { return &c.Stmts }, 1},
		{func(c *progen.Config) *int { return &c.MaxDepth }, 0},
		{func(c *progen.Config) *int { return &c.Arrays }, 1},
		{func(c *progen.Config) *int { return &c.Scalars }, 0},
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fields {
			for *f.get(&cfg) > f.min {
				try := cfg
				*f.get(&try)--
				if !failing(try) {
					break
				}
				cfg = try
				changed = true
			}
		}
	}
	return cfg
}

// Crasher is the on-disk reproducer for one harness failure.
type Crasher struct {
	Config progen.Config `json:"config"`
	Seed   int64         `json:"seed"`
	Faults bool          `json:"faults"`
	Reason string        `json:"reason"`
}

// WriteCrasher writes a reproducer — the generated source next to a JSON
// record of the generator config, seed, and failure reason — into dir and
// returns the source path. Replay it with:
//
//	go run ./cmd/cashfuzz -replay <path>.json
func WriteCrasher(dir string, c Crasher) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	base := fmt.Sprintf("crasher_seed%d", c.Seed)
	srcPath := filepath.Join(dir, base+".c")
	if err := os.WriteFile(srcPath, []byte(progen.Generate(c.Config)), 0o644); err != nil {
		return "", err
	}
	meta, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, base+".json"), append(meta, '\n'), 0o644); err != nil {
		return "", err
	}
	return srcPath, nil
}

// ReadCrasher loads a reproducer JSON written by WriteCrasher.
func ReadCrasher(path string) (Crasher, error) {
	var c Crasher
	data, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("difftest: %s: %w", path, err)
	}
	return c, nil
}
