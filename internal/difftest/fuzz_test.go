package difftest

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatial/internal/progen"
)

// FuzzDifferential is the differential fuzz target: each input seed
// becomes a generated program that must produce the oracle checksum at
// every optimization level, clean and under the injected-fault battery.
// Run a short budget with:
//
//	go test -fuzz=FuzzDifferential -fuzztime=30s -run '^$' ./internal/difftest
func FuzzDifferential(f *testing.F) {
	for s := int64(1); s <= 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		cfg := progen.DefaultConfig(seed)
		src := progen.Generate(cfg)
		if err := Check(src, 0); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
		if _, err := CheckFaults(src, seed, 0); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
	})
}

// TestDifferentialSeeds is the deterministic slice of the fuzz target
// that runs under plain `go test`: clean equivalence on a spread of
// seeds, plus the full fault battery on a few.
func TestDifferentialSeeds(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		src := progen.Generate(progen.DefaultConfig(seed))
		if err := Check(src, 0); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
	}
	for seed := int64(1); seed <= 3; seed++ {
		src := progen.Generate(progen.DefaultConfig(seed))
		rep, err := CheckFaults(src, seed, 0)
		if err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
		if rep.Absorbed == 0 {
			t.Fatalf("seed %d: fault battery absorbed nothing: %v", seed, rep)
		}
	}
}

func TestShrinkMinimizes(t *testing.T) {
	// A synthetic failure predicate: "fails" while Stmts >= 3 or
	// MaxDepth >= 2. Shrink must land on the boundary, preserving the
	// seed.
	start := progen.Config{Arrays: 3, Scalars: 3, Stmts: 8, MaxDepth: 3, Seed: 42}
	got := Shrink(start, func(c progen.Config) bool {
		return c.Stmts >= 3 || c.MaxDepth >= 2
	})
	if got.Seed != 42 {
		t.Fatalf("Shrink changed the seed: %+v", got)
	}
	// Minimal failing configs under this predicate keep exactly one of
	// the two conditions alive at its floor.
	if !(got.Stmts >= 3 || got.MaxDepth >= 2) {
		t.Fatalf("Shrink returned a passing config: %+v", got)
	}
	if got.Stmts > 3 || got.Arrays != 1 || got.Scalars != 0 {
		t.Fatalf("Shrink left slack: %+v", got)
	}
}

func TestCrasherRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := Crasher{Config: progen.DefaultConfig(7), Seed: 7, Faults: true, Reason: "checksum mismatch at O3"}
	srcPath, err := WriteCrasher(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "int bench(void)") {
		t.Fatalf("crasher source missing entry function:\n%s", src)
	}
	got, err := ReadCrasher(filepath.Join(dir, "crasher_seed7.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, c)
	}
	// The JSON is the replay contract: it must carry the full generator
	// config so cashfuzz -replay regenerates the identical program.
	raw, _ := os.ReadFile(filepath.Join(dir, "crasher_seed7.json"))
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["config"]; !ok {
		t.Fatalf("crasher JSON missing config: %s", raw)
	}
}
