package difftest

// Partitioned-vs-sequential bit-identity over the benchmark set. Check
// already compares a partitioned run at every level (so the fuzzer and
// the crasher corpus sweep it continuously); these tests additionally
// drive the engine-level battery with small synchronization windows —
// which force heavy cross-window domain traffic that the facade's
// default window rarely produces on clean schedules — across all four
// optimization levels, clean and faulted.

import (
	"testing"

	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/faultsim"
	"spatial/internal/harness"
	"spatial/internal/workloads"
)

func TestPartitionedIdentityBenchSet(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-set sweep")
	}
	for _, name := range harness.BenchSet {
		w := workloads.ByName(name)
		for _, lvl := range Levels {
			cp, err := core.CompileSource(w.Source, core.WithLevel(lvl))
			if err != nil {
				t.Fatalf("%s O%d: %v", name, lvl, err)
			}
			sh := dataflow.Prebuild(cp.Program)
			cfg := cp.Sim
			want, err := sh.RunCtx(nil, Entry, nil, cfg)
			if err != nil {
				t.Fatalf("%s O%d: sequential: %v", name, lvl, err)
			}
			for _, n := range []int{2, 4} {
				part, err := dataflow.BuildPartition(cp.Program, n, nil)
				if err != nil {
					t.Fatal(err)
				}
				part.SetWindow(4)
				got, err := sh.RunPartitioned(nil, Entry, nil, cfg, part)
				if err != nil {
					t.Fatalf("%s O%d n=%d: partitioned: %v", name, lvl, n, err)
				}
				if *got != *want {
					t.Errorf("%s O%d n=%d: PARTITION DIVERGENCE:\n sequential  %+v\n partitioned %+v",
						name, lvl, n, *want, *got)
				}
			}
		}
	}
}

func TestPartitionedFaultedBenchSet(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-set sweep")
	}
	for _, name := range harness.BenchSet {
		w := workloads.ByName(name)
		cp, err := core.CompileSource(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sh := dataflow.Prebuild(cp.Program)
		cfg := cp.Sim
		part, err := dataflow.BuildPartition(cp.Program, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		part.SetWindow(8)
		// Injected delays up to 300 cycles leap far past the 8-cycle
		// window, so faulted events route through the domain heaps and
		// the starvation fast-forward; the injectors must still fire
		// identically and the outcome must not move a bit.
		for seed := int64(1); seed <= 3; seed++ {
			injS := faultsim.NewJitter(seed, 0.02, 300)
			want, errW := sh.RunFaulted(nil, Entry, nil, cfg, injS)
			injP := faultsim.NewJitter(seed, 0.02, 300)
			got, errG := sh.RunPartitionedFaulted(nil, Entry, nil, cfg, part, injP)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("%s seed %d: PARTITION DIVERGENCE: sequential err=%v, partitioned err=%v", name, seed, errW, errG)
			}
			if errW != nil {
				if errW.Error() != errG.Error() {
					t.Fatalf("%s seed %d: PARTITION DIVERGENCE on error:\n%v\n%v", name, seed, errW, errG)
				}
				continue
			}
			if *want != *got {
				t.Errorf("%s seed %d: PARTITION DIVERGENCE:\n sequential  %+v\n partitioned %+v", name, seed, *want, *got)
			}
			if len(injS.Triggered()) != len(injP.Triggered()) {
				t.Errorf("%s seed %d: %d faults triggered sequential, %d partitioned",
					name, seed, len(injS.Triggered()), len(injP.Triggered()))
			}
		}
	}
}
