package difftest

// Backend bit-identity over the benchmark set and over every archived
// fuzzer reproducer. Check itself performs the dual-backend comparison
// at all four optimization levels; these tests drive it over the two
// corpora the project treats as canon: the MediaBench/SPEC workload set
// and testdata/crashers/ (programs that once broke an engine are exactly
// the programs most likely to break the next one).

import (
	"path/filepath"
	"testing"

	"spatial/internal/harness"
	"spatial/internal/progen"
	"spatial/internal/workloads"
)

func TestBackendIdentityBenchSet(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-set sweep")
	}
	for _, name := range harness.BenchSet {
		w := workloads.ByName(name)
		if w.Entry != Entry {
			t.Fatalf("%s: entry %q, difftest drives %q", name, w.Entry, Entry)
		}
		if err := Check(w.Source, 0); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBackendIdentityCrashers(t *testing.T) {
	paths, err := filepath.Glob("testdata/crashers/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no archived crashers")
	}
	for _, path := range paths {
		c, err := ReadCrasher(path)
		if err != nil {
			t.Fatal(err)
		}
		src := progen.Generate(c.Config)
		if err := Check(src, 0); err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if c.Faults {
			if _, err := CheckFaults(src, c.Seed, 0); err != nil {
				t.Errorf("%s (faulted): %v", filepath.Base(path), err)
			}
		}
	}
}
