package difftest

import "testing"

// TestFrameReuseSeeds pins the frame allocator's zero-on-reuse contract
// against the interpreter oracle with hand-written programs, since the
// random generator rarely stacks recursion depth against frame reuse.
//
// The shape that caught the original bug: a function writes its locals
// and returns, recursion drives the stack pointer up and retires frames
// to the free list, then a later call reuses one of those dirty frames
// and reads a local it never wrote. Both engines must agree that locals
// start zero.
func TestFrameReuseSeeds(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{
			// scratch(1, ...) dirties its 8-word frame; rec(3) cycles
			// frames through the free list; scratch(0, 0) then reuses a
			// dirty frame and sums locals it never initialized.
			name: "recursion_then_call_reuse",
			src: `
int scratch(int write, int v) {
  int buf[8];
  int i;
  int s = 0;
  if (write) {
    for (i = 0; i < 8; i++) buf[i] = v + i * 7;
  }
  for (i = 0; i < 8; i++) s = s + buf[i];
  return s;
}
int rec(int n) {
  int pad[8];
  pad[0] = n;
  if (n <= 0) return pad[0];
  return pad[0] + rec(n - 1);
}
int bench(void) {
  int a = scratch(1, 7);
  int b = rec(3);
  int c = scratch(0, 0);
  return a * 1000 + b * 100 + c;
}`,
		},
		{
			// Repeated calls of the same function: the second call reuses
			// the first call's frame directly.
			name: "back_to_back_reuse",
			src: `
int f(int init) {
  int x[4];
  int i;
  int s = 0;
  if (init) { for (i = 0; i < 4; i++) x[i] = 9; }
  for (i = 0; i < 4; i++) s = s + x[i];
  return s;
}
int bench(void) {
  return f(1) * 10 + f(0);
}`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := Check(tc.src, 0); err != nil {
				t.Fatalf("%v\nsource:\n%s", err, tc.src)
			}
		})
	}
}
