package cashd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"spatial/api"
	"spatial/internal/serve"
)

// TestAdaptiveRetryAfterMonotonic pins the shape of the 429 hint: longer
// queues never shrink the hint, faster drains never grow it, and the
// result always stays inside [overloadRetryAfter, maxRetryAfter].
func TestAdaptiveRetryAfterMonotonic(t *testing.T) {
	const cap = 64

	// Non-decreasing in queue length at a fixed drain rate.
	for _, drain := range []float64{0, 0.5, 10, 1000} {
		prev := time.Duration(-1)
		for q := 0; q <= cap; q += 4 {
			d := adaptiveRetryAfter(q, cap, drain)
			if d < overloadRetryAfter || d > maxRetryAfter {
				t.Fatalf("adaptiveRetryAfter(%d, %d, %g) = %v, outside [%v, %v]",
					q, cap, drain, d, overloadRetryAfter, maxRetryAfter)
			}
			if d < prev {
				t.Fatalf("hint shrank as the queue grew: q=%d drain=%g: %v < %v", q, drain, d, prev)
			}
			prev = d
		}
	}

	// Non-increasing in drain rate at a fixed queue length.
	for _, q := range []int{1, 8, 32, cap} {
		prev := maxRetryAfter + 1
		for _, drain := range []float64{0.1, 1, 10, 100, 10000} {
			d := adaptiveRetryAfter(q, cap, drain)
			if d > prev {
				t.Fatalf("hint grew as the drain sped up: q=%d drain=%g: %v > %v", q, drain, d, prev)
			}
			prev = d
		}
	}

	// An empty queue is always the floor, whatever the rate.
	if d := adaptiveRetryAfter(0, cap, 123); d != overloadRetryAfter {
		t.Fatalf("empty queue hint = %v, want floor %v", d, overloadRetryAfter)
	}
}

// TestFailoverHeaderSkipsRedirect: a request carrying api.HeaderFailover
// to a non-owner is served in place (the client has declared the owner
// down), where the same request without the header is 307-redirected.
func TestFailoverHeaderSkipsRedirect(t *testing.T) {
	const (
		peerA = "http://shard-a.example:8080"
		peerB = "http://shard-b.example:8080"
	)
	ring := api.NewRing([]string{peerA, peerB}, 0)

	var foreign api.Program
	found := false
	for i := 0; i < 64 && !found; i++ {
		p := api.Program{
			Source: fmt.Sprintf("int f(void) { return %d; }", i),
			Level:  api.LevelFull,
		}
		if ring.Owner(p.Key()) == peerB {
			foreign, found = p, true
		}
	}
	if !found {
		t.Fatal("could not find a program owned by the other shard")
	}

	_, ts := newTestServer(t, Config{
		Engine: serve.Config{Workers: 1, CacheEntries: 4},
		Self:   peerA,
		Peers:  []string{peerA, peerB},
	})

	noFollow := &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	body, _ := json.Marshal(api.RunRequest{Program: foreign, Entry: "f"})

	// Without the header: redirected to the owner.
	resp, err := noFollow.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("no header: status %d, want 307", resp.StatusCode)
	}

	// With the header: served here, bit-for-bit a normal run.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/run", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderFailover, "1")
	resp, err = noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover header: status %d, want 200", resp.StatusCode)
	}
	run := decodeBody[api.RunResponse](t, resp)
	if run.Value == 0 && !strings.Contains(foreign.Source, "return 0") {
		t.Fatalf("failover run returned %d for %q", run.Value, foreign.Source)
	}

	// The serve shows up in the exposition.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	if !strings.Contains(buf.String(), "cashd_failover_served_total 1") {
		t.Error("metrics missing cashd_failover_served_total 1")
	}
}
