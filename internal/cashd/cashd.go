// Package cashd is the network-facing simulation service: an HTTP/JSON
// daemon wrapping the internal/serve batch engine behind the versioned
// wire API of package spatial/api. It is the paper's "replicate the
// circuit" argument at datacenter scale — one compiled program, served
// to any number of callers, from any number of daemons.
//
// Routes (all under the frozen api.Version prefix):
//
//	POST /v1/compile    compile (and cache) a program without running it
//	POST /v1/run        one simulation; ?trace records a downloadable trace
//	POST /v1/batch      many simulations, results in request order
//	GET  /v1/trace/{id} Chrome trace-event JSON of a recorded run
//	GET  /metrics       Prometheus text: cache, queue, shed, latency
//	GET  /healthz       liveness
//
// Failures carry a typed api.Error body whose class fixes the HTTP
// status (compile/sim → 422, overload → 429 + Retry-After, deadline →
// 504, internal → 500). With a peer list configured, daemons split the
// program key space by consistent hashing: a request owned by another
// peer is answered with 307 + Location so any client reaches the right
// shard even without doing its own routing.
package cashd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"spatial/api"
	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/serve"
)

// maxBodyBytes bounds request bodies; programs are text, a megabyte of
// cMinor is enormous.
const maxBodyBytes = 4 << 20

// Config parameterizes a Server.
type Config struct {
	// Engine configures the wrapped batch engine (workers, queue,
	// cache bound, persistent cache directory).
	Engine serve.Config
	// Self is this daemon's advertised base URL (e.g.
	// "http://10.0.0.3:8080"); required when Peers is set, and must
	// appear in Peers.
	Self string
	// Peers is the full shard set (including Self) as base URLs. Empty
	// means unsharded: this daemon owns the whole key space.
	Peers []string
	// MaxTraces bounds the recorded traces held for download; 0 means 32.
	MaxTraces int
}

// Server is the daemon: an http.Handler plus the engine it wraps.
type Server struct {
	eng    *serve.Engine
	ring   *api.Ring
	self   string
	mux    *http.ServeMux
	met    *metrics
	traces *traceStore
	// start anchors the observed drain rate behind the adaptive
	// Retry-After hint.
	start time.Time
}

// New builds a server. It fails on an unusable cache directory or an
// inconsistent shard configuration.
func New(cfg Config) (*Server, error) {
	ring := api.NewRing(cfg.Peers, 0)
	if ring != nil {
		if cfg.Self == "" {
			return nil, fmt.Errorf("cashd: peers configured without self")
		}
		found := false
		for _, p := range ring.Nodes() {
			if p == cfg.Self {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("cashd: self %q not in peers %v", cfg.Self, ring.Nodes())
		}
	}
	eng, err := serve.New(cfg.Engine)
	if err != nil {
		return nil, err
	}
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 32
	}
	s := &Server{
		eng:    eng,
		ring:   ring,
		self:   cfg.Self,
		met:    newMetrics(),
		traces: newTraceStore(cfg.MaxTraces),
		start:  time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /"+api.Version+"/compile", s.instrument("compile", s.handleCompile))
	mux.HandleFunc("POST /"+api.Version+"/run", s.instrument("run", s.handleRun))
	mux.HandleFunc("POST /"+api.Version+"/batch", s.instrument("batch", s.handleBatch))
	mux.HandleFunc("GET /"+api.Version+"/trace/{id}", s.instrument("trace", s.handleTrace))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine exposes the wrapped batch engine (stats, direct submission in
// tests and the in-process load harness).
func (s *Server) Engine() *serve.Engine { return s.eng }

// Close drains and stops the engine. In-flight HTTP requests should be
// drained first (http.Server.Shutdown).
func (s *Server) Close() { s.eng.Close() }

// instrument wraps a handler with the request counter and status capture.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.met.countRequest(endpoint, sw.status())
	}
}

// statusWriter captures the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// decode reads a strict JSON body into v: unknown fields and trailing
// garbage are bad requests — a versioned API that silently drops fields
// would hide client bugs until they ship.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// writeJSON writes a 200 response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// overloadRetryAfter is the floor of the backoff hint handed to shed
// clients, and the fallback when no adaptive estimate exists.
const overloadRetryAfter = 25 * time.Millisecond

// maxRetryAfter caps the adaptive hint: past a couple of seconds the
// client's own capped backoff policy governs.
const maxRetryAfter = 2 * time.Second

// adaptiveRetryAfter estimates how long a shed client should wait for a
// queue slot to open: the current backlog divided by the observed drain
// rate, clamped to [overloadRetryAfter, maxRetryAfter]. With no drain
// observations yet, the hint scales with queue fullness alone. The
// estimate is monotonic: non-decreasing in queueLen, non-increasing in
// drainPerSec.
func adaptiveRetryAfter(queueLen, queueCap int, drainPerSec float64) time.Duration {
	clamp := func(d time.Duration) time.Duration {
		if d < overloadRetryAfter {
			return overloadRetryAfter
		}
		if d > maxRetryAfter {
			return maxRetryAfter
		}
		return d
	}
	if queueLen <= 0 {
		return overloadRetryAfter
	}
	if drainPerSec > 0 {
		return clamp(time.Duration(float64(queueLen) / drainPerSec * float64(time.Second)))
	}
	if queueCap > 0 {
		return clamp(overloadRetryAfter * time.Duration(1+4*queueLen/queueCap))
	}
	return overloadRetryAfter
}

// retryAfterHint computes the live adaptive hint from engine stats.
func (s *Server) retryAfterHint() time.Duration {
	st := s.eng.Stats()
	drained := st.Completed + st.Failed + st.Canceled
	var rate float64
	if elapsed := time.Since(s.start).Seconds(); elapsed > 0 {
		rate = float64(drained) / elapsed
	}
	return adaptiveRetryAfter(st.QueueLen, st.QueueCap, rate)
}

// writeError writes a typed error body with its class's status,
// filling in the adaptive Retry-After hint on overload.
func (s *Server) writeError(w http.ResponseWriter, e *api.Error) {
	if e.Class == api.ClassOverload && e.RetryAfterMS <= 0 {
		e.RetryAfterMS = s.retryAfterHint().Milliseconds()
	}
	writeError(w, e)
}

// writeError writes a typed error body with its class's status. 429
// responses also carry Retry-After (seconds, ceiling) for generic
// HTTP clients.
func writeError(w http.ResponseWriter, e *api.Error) {
	status := e.Class.HTTPStatus()
	e.Status = status
	w.Header().Set("Content-Type", "application/json")
	if e.Class == api.ClassOverload {
		if e.RetryAfterMS <= 0 {
			e.RetryAfterMS = overloadRetryAfter.Milliseconds()
		}
		secs := (e.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(e)
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeError(w, &api.Error{Class: api.ClassBadRequest, Message: fmt.Sprintf(format, args...)})
}

// errorFor classifies an engine/library failure into its wire class.
// Order matters: deadline conditions ride inside ErrSim-classed errors
// (the simulator aborts with dataflow.ErrCanceled when its context
// dies), so they are peeled off first.
func errorFor(err error) *api.Error {
	e := &api.Error{Message: err.Error()}
	switch {
	case errors.Is(err, serve.ErrOverload):
		e.Class = api.ClassOverload
	case errors.Is(err, serve.ErrClosed):
		e.Class = api.ClassClosed
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, dataflow.ErrCanceled):
		e.Class = api.ClassDeadline
	case errors.Is(err, core.ErrCompile):
		e.Class = api.ClassCompile
	case errors.Is(err, core.ErrSim):
		e.Class = api.ClassSim
		// Attach the structured diagnosis when one exists; the first
		// line of a StuckReport names the cycle or the missing producer.
		var dead *dataflow.DeadlockError
		var live *dataflow.LivelockError
		if errors.As(err, &dead) {
			e.Report = dead.Report.Render()
		} else if errors.As(err, &live) {
			e.Report = live.Report.Render()
		}
	default:
		e.Class = api.ClassInternal
	}
	return e
}

// redirectIfNotOwner applies shard routing: when a peer ring is
// configured and the program's key hashes to another daemon, the
// request is answered with 307 + Location (method and body are
// preserved by compliant clients; the Go client re-sends via GetBody).
// Returns true when the request was redirected.
//
// A request carrying api.HeaderFailover is served in place: the client
// is deliberately routing around the owner (dead peer, hedged read),
// and a redirect would bounce it back to the very daemon it is
// avoiding. The engine can compile and run any program; ownership is a
// cache-locality optimization, not a correctness requirement.
func (s *Server) redirectIfNotOwner(w http.ResponseWriter, r *http.Request, p api.Program) bool {
	if s.ring == nil {
		return false
	}
	owner := s.ring.Owner(p.Key())
	if owner == s.self {
		return false
	}
	if r.Header.Get(api.HeaderFailover) != "" {
		s.met.countFailover()
		return false
	}
	target := strings.TrimSuffix(owner, "/") + r.URL.Path
	w.Header().Set("X-Cashd-Owner", owner)
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
	return true
}

// toServeRequest lifts a wire run request into the engine's form.
func toServeRequest(rr api.RunRequest) serve.Request {
	return serve.Request{
		Program:  rr.Program,
		Entry:    rr.Entry,
		Args:     rr.Args,
		Deadline: time.Duration(rr.TimeoutMS) * time.Millisecond,
	}
}

func toWireStats(st dataflow.Stats) api.Stats {
	return api.Stats{
		Cycles:    st.Cycles,
		Events:    st.Events,
		OpsFired:  st.OpsFired,
		DynLoads:  st.DynLoads,
		DynStores: st.DynStores,
		NullMem:   st.NullMem,
		Calls:     st.Calls,
	}
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req api.CompileRequest
	if err := decode(r, &req); err != nil {
		badRequest(w, "compile: %v", err)
		return
	}
	if req.Source == "" {
		badRequest(w, "compile: empty source")
		return
	}
	if s.redirectIfNotOwner(w, r, req) {
		return
	}
	start := time.Now()
	_, hit, err := s.eng.Resolve(r.Context(), serve.Request{Program: req})
	if err != nil {
		s.writeError(w, errorFor(err))
		return
	}
	if !hit {
		s.met.compile.observe(time.Since(start))
	}
	writeJSON(w, api.CompileResponse{Key: req.Key().String(), CacheHit: hit})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if err := decode(r, &req); err != nil {
		badRequest(w, "run: %v", err)
		return
	}
	if req.Source == "" {
		badRequest(w, "run: empty source")
		return
	}
	if s.redirectIfNotOwner(w, r, req.Program) {
		return
	}
	if req.Trace {
		s.handleTracedRun(w, r, req)
		return
	}
	start := time.Now()
	resp, err := s.eng.Do(r.Context(), toServeRequest(req))
	if err != nil {
		s.writeError(w, errorFor(err))
		return
	}
	s.met.run.observe(time.Since(start))
	writeJSON(w, api.RunResponse{
		Value:    resp.Value,
		Stats:    toWireStats(resp.Stats),
		CacheHit: resp.CacheHit,
		WaitNS:   resp.Wait.Nanoseconds(),
		TotalNS:  resp.Total.Nanoseconds(),
	})
}

// handleTracedRun serves a run with trace recording. Traced runs are a
// diagnostic path: they execute on the handler goroutine (bypassing the
// worker pool, so a trace request cannot be shed) and do not honor
// TimeoutMS beyond the engine's own cycle budget.
func (s *Server) handleTracedRun(w http.ResponseWriter, r *http.Request, req api.RunRequest) {
	start := time.Now()
	cp, hit, err := s.eng.Resolve(r.Context(), toServeRequest(req))
	if err != nil {
		s.writeError(w, errorFor(err))
		return
	}
	entry := req.Entry
	if entry == "" {
		entry = "main"
	}
	res, tr, err := cp.RunTraced(entry, req.Args)
	if err != nil {
		s.writeError(w, errorFor(err))
		return
	}
	id := s.traces.add(tr)
	s.met.run.observe(time.Since(start))
	total := time.Since(start)
	writeJSON(w, api.RunResponse{
		Value:    res.Value,
		Stats:    toWireStats(res.Stats),
		CacheHit: hit,
		TotalNS:  total.Nanoseconds(),
		TraceID:  id,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if err := decode(r, &req); err != nil {
		badRequest(w, "batch: %v", err)
		return
	}
	if len(req.Runs) == 0 {
		badRequest(w, "batch: empty runs")
		return
	}
	reqs := make([]serve.Request, len(req.Runs))
	for i, rr := range req.Runs {
		if rr.Source == "" {
			badRequest(w, "batch: runs[%d]: empty source", i)
			return
		}
		if rr.Trace {
			badRequest(w, "batch: runs[%d]: trace is not supported in batches; use /%s/run", i, api.Version)
			return
		}
		reqs[i] = toServeRequest(rr)
	}
	// No shard redirect here: a batch may mix owners, and the engine can
	// serve any program. Routing-aware clients split batches per owner.
	start := time.Now()
	results := s.eng.DoBatch(r.Context(), reqs)
	s.met.run.observe(time.Since(start))
	out := api.BatchResponse{Results: make([]api.BatchItem, len(results))}
	for i, br := range results {
		if br.Err != nil {
			e := errorFor(br.Err)
			e.Status = e.Class.HTTPStatus()
			out.Results[i] = api.BatchItem{Err: e}
			continue
		}
		out.Results[i] = api.BatchItem{Run: &api.RunResponse{
			Value:    br.Resp.Value,
			Stats:    toWireStats(br.Resp.Stats),
			CacheHit: br.Resp.CacheHit,
			WaitNS:   br.Resp.Wait.Nanoseconds(),
			TotalNS:  br.Resp.Total.Nanoseconds(),
		}}
	}
	writeJSON(w, out)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := s.traces.get(id)
	if tr == nil {
		writeError(w, &api.Error{Class: api.ClassNotFound, Message: fmt.Sprintf("no trace %q (traces are held in a bounded in-memory store)", id)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "trace-"+id+".json"))
	_ = tr.WriteChrome(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, s.eng.Stats(), s.traces.len())
}
