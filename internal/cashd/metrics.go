package cashd

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"spatial/internal/serve"
)

// metrics is the daemon's instrumentation: request counters by endpoint
// and status, plus latency histograms for compile and run work. The
// export format is the Prometheus text exposition (version 0.0.4), which
// needs no dependency — it is lines of `name{labels} value`.
type metrics struct {
	mu       sync.Mutex
	requests map[reqKey]uint64
	failover uint64
	compile  *histogram
	run      *histogram
}

type reqKey struct {
	endpoint string
	status   int
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[reqKey]uint64),
		compile:  newHistogram(),
		run:      newHistogram(),
	}
}

func (m *metrics) countRequest(endpoint string, status int) {
	m.mu.Lock()
	m.requests[reqKey{endpoint, status}]++
	m.mu.Unlock()
}

// countFailover records a request served in place because the caller
// declared it a failover attempt (api.HeaderFailover) — the owner it
// would normally be redirected to is presumed down.
func (m *metrics) countFailover() {
	m.mu.Lock()
	m.failover++
	m.mu.Unlock()
}

// histogram is a fixed exponential-bucket latency histogram: bucket i
// holds observations below minBucket·2^i seconds, spanning ~100µs to
// ~100s in 21 buckets. Quantiles are read back by linear interpolation
// within the winning bucket — coarse, but honest to a factor of 2,
// which is what a load curve needs.
type histogram struct {
	counts [histBuckets]uint64
	sum    float64 // seconds
	total  uint64
}

const (
	histBuckets   = 21
	histMinBucket = 100e-6 // seconds; upper bound of bucket 0
)

func histUpper(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return histMinBucket * math.Pow(2, float64(i))
}

func newHistogram() *histogram { return &histogram{} }

// observe is called under the metrics mutex by observeLocked; the
// exported path takes the lock.
func (h *histogram) observeLocked(seconds float64) {
	i := 0
	for i < histBuckets-1 && seconds >= histUpper(i) {
		i++
	}
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// snapshot copies the histogram under no lock of its own; callers hold
// the metrics mutex.
func (h *histogram) snapshot() histogram { return *h }

// quantile returns the q-quantile (0..1) in seconds, interpolated
// within the selected bucket. Zero observations → 0.
func (h *histogram) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		next := cum + h.counts[i]
		if float64(next) >= rank {
			lo := 0.0
			if i > 0 {
				lo = histUpper(i - 1)
			}
			hi := histUpper(i)
			if math.IsInf(hi, 1) {
				return lo
			}
			// Interpolate by position within the bucket's population.
			frac := 0.5
			if h.counts[i] > 0 {
				frac = (rank - float64(cum)) / float64(h.counts[i])
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return histUpper(histBuckets - 2)
}

// observe records one latency.
func (h *histogram) observe(d interface{ Seconds() float64 }) {
	histMu.Lock()
	h.observeLocked(d.Seconds())
	histMu.Unlock()
}

// histMu guards all histograms; latency observation is two adds and an
// increment, contention is irrelevant next to a simulation run.
var histMu sync.Mutex

// write renders the full exposition: daemon counters, engine counters,
// and latency histograms with derived quantile gauges.
func (m *metrics) write(w io.Writer, s serve.Stats, traces int) {
	m.mu.Lock()
	reqs := make(map[reqKey]uint64, len(m.requests))
	for k, v := range m.requests {
		reqs[k] = v
	}
	failover := m.failover
	m.mu.Unlock()
	histMu.Lock()
	compile := m.compile.snapshot()
	run := m.run.snapshot()
	histMu.Unlock()

	fmt.Fprintln(w, "# HELP cashd_requests_total HTTP requests served, by endpoint and status.")
	fmt.Fprintln(w, "# TYPE cashd_requests_total counter")
	keys := make([]reqKey, 0, len(reqs))
	for k := range reqs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].status < keys[j].status
	})
	for _, k := range keys {
		fmt.Fprintf(w, "cashd_requests_total{endpoint=%q,status=\"%d\"} %d\n", k.endpoint, k.status, reqs[k])
	}

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("cashd_runs_completed_total", "Simulation runs finished successfully.", s.Completed)
	counter("cashd_runs_failed_total", "Requests that ended in a compile or run error.", s.Failed)
	counter("cashd_runs_shed_total", "Requests shed with 429 by the admission queue.", s.Rejected)
	counter("cashd_runs_canceled_total", "Requests abandoned by their caller while queued.", s.Canceled)
	counter("cashd_failover_served_total", "Requests served in place under the failover header instead of redirected.", failover)
	counter("cashd_cache_hits_total", "Compile cache lookups served by a ready entry.", s.CacheHits)
	counter("cashd_cache_shared_total", "Compile cache lookups that joined an in-flight compile.", s.CacheShared)
	counter("cashd_cache_misses_total", "Compile cache lookups that had to compile.", s.CacheMisses)
	counter("cashd_cache_evictions_total", "Compile cache entries evicted by the LRU bound.", s.CacheEvictions)
	gauge("cashd_cache_hit_rate", "Hits+shared over all lookups (0 when no lookups).", s.HitRate())
	gauge("cashd_cache_entries", "Compiled programs currently resident.", float64(s.CacheEntries))
	gauge("cashd_cache_disk_loaded", "Entries warmed from the cache directory at startup.", float64(s.DiskLoaded))
	gauge("cashd_cache_quarantined", "Unreadable or mis-keyed disk entries moved aside at startup.", float64(s.DiskQuarantined))
	gauge("cashd_queue_depth", "Requests waiting for a worker right now.", float64(s.QueueLen))
	gauge("cashd_queue_capacity", "Admission queue bound.", float64(s.QueueCap))
	shedRate := 0.0
	if denom := s.Completed + s.Failed + s.Rejected; denom > 0 {
		shedRate = float64(s.Rejected) / float64(denom)
	}
	gauge("cashd_shed_rate", "Rejected over all finished requests.", shedRate)
	gauge("cashd_traces_resident", "Recorded traces held for download.", float64(traces))

	writeHist(w, "cashd_compile_duration_seconds", "Compile endpoint latency (cache misses only; run-path compiles land in run duration).", &compile)
	writeHist(w, "cashd_run_duration_seconds", "Run latency (request residence, including queue wait).", &run)
}

func writeHist(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		le := "+Inf"
		if u := histUpper(i); !math.IsInf(u, 1) {
			le = fmt.Sprintf("%g", u)
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total)
	fmt.Fprintf(w, "# HELP %s_p50 Median %s (interpolated).\n# TYPE %s_p50 gauge\n%s_p50 %g\n",
		name, name, name, name, h.quantile(0.50))
	fmt.Fprintf(w, "# HELP %s_p99 99th percentile %s (interpolated).\n# TYPE %s_p99 gauge\n%s_p99 %g\n",
		name, name, name, name, h.quantile(0.99))
}
