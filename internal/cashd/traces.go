package cashd

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"sync"

	"spatial/internal/core"
)

// traceStore holds recorded run traces for download, bounded FIFO: a
// trace is a diagnostic artifact, not durable state, so the oldest is
// dropped when the bound is hit. IDs are random (not sequential) so a
// trace URL cannot be guessed from another's.
type traceStore struct {
	mu    sync.Mutex
	max   int
	order *list.List // of string (ids), front = oldest
	byID  map[string]*core.Trace
}

func newTraceStore(max int) *traceStore {
	return &traceStore{
		max:   max,
		order: list.New(),
		byID:  make(map[string]*core.Trace),
	}
}

func (ts *traceStore) add(tr *core.Trace) string {
	var b [8]byte
	_, _ = rand.Read(b[:])
	id := hex.EncodeToString(b[:])
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.byID[id] = tr
	ts.order.PushBack(id)
	for ts.order.Len() > ts.max {
		front := ts.order.Front()
		delete(ts.byID, front.Value.(string))
		ts.order.Remove(front)
	}
	return id
}

func (ts *traceStore) get(id string) *core.Trace {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.byID[id]
}

func (ts *traceStore) len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.order.Len()
}
