package cashd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spatial/api"
	"spatial/internal/serve"
)

const (
	srcLoop = `
int f(int n) {
  int i; int s = 0;
  for (i = 0; i < n; i++) s += i;
  return s;
}`
	srcAdd = `int f(int a, int b) { return a + b; }`
	// srcSlow runs long enough to hold a worker while a test builds up
	// queue pressure, but dies promptly under a millisecond deadline.
	srcSlow = `
int f(void) {
  int i; int s = 0;
  for (i = 0; i < 100000000; i++) s += i;
  return s;
}`
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %T from status %d: %v", v, resp.StatusCode, err)
	}
	return v
}

// TestDifferentialRun is the wire-fidelity gate: a run served over HTTP
// must be bit-identical to the same request submitted to a serve.Engine
// directly — value, every stats counter, and the cache-hit flag.
func TestDifferentialRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Engine: serve.Config{Workers: 2, CacheEntries: 8}})

	// Direct reference from a separate engine with the same config.
	ref, err := serve.New(serve.Config{Workers: 2, CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	cases := []api.RunRequest{
		{Program: api.Program{Source: srcLoop, Level: api.LevelFull}, Entry: "f", Args: []int64{10}},
		{Program: api.Program{Source: srcLoop, Level: api.LevelNone}, Entry: "f", Args: []int64{10}},
		{Program: api.Program{Source: srcAdd, Level: api.LevelMedium}, Entry: "f", Args: []int64{3, 4}},
		{Program: api.Program{Source: srcLoop, Level: api.LevelFull, Backend: api.BackendCompiled}, Entry: "f", Args: []int64{10}},
		{Program: api.Program{Source: srcLoop, Level: api.LevelFull, Partitions: 3}, Entry: "f", Args: []int64{10}},
	}
	for i, rr := range cases {
		want, err := ref.Do(context.Background(), serve.Request{Program: rr.Program, Entry: rr.Entry, Args: rr.Args})
		if err != nil {
			t.Fatalf("case %d: direct: %v", i, err)
		}
		resp := post(t, ts.URL+"/v1/run", rr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("case %d: status %d", i, resp.StatusCode)
		}
		got := decodeBody[api.RunResponse](t, resp)
		if got.Value != want.Value {
			t.Errorf("case %d: value %d over HTTP, %d direct", i, got.Value, want.Value)
		}
		wantStats := toWireStats(want.Stats)
		if got.Stats != wantStats {
			t.Errorf("case %d: stats diverged:\n http  %+v\n direct %+v", i, got.Stats, wantStats)
		}
		if got.CacheHit != want.CacheHit {
			t.Errorf("case %d: cache hit %v over HTTP, %v direct", i, got.CacheHit, want.CacheHit)
		}
	}

	// Second submission of case 0 must now hit the daemon's cache.
	resp := post(t, ts.URL+"/v1/run", cases[0])
	if got := decodeBody[api.RunResponse](t, resp); !got.CacheHit {
		t.Error("repeat request missed the cache over HTTP")
	}
	if hits := s.Engine().Stats().CacheHits; hits == 0 {
		t.Error("engine recorded no cache hits")
	}
}

// TestDifferentialBatch: /v1/batch preserves request order and matches
// DoBatch item by item.
func TestDifferentialBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: serve.Config{Workers: 2, QueueDepth: 2, CacheEntries: 8}})
	ref, err := serve.New(serve.Config{Workers: 2, QueueDepth: 2, CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	var wire api.BatchRequest
	var direct []serve.Request
	for i := 0; i < 9; i++ {
		rr := api.RunRequest{
			Program: api.Program{Source: srcAdd, Level: api.LevelFull},
			Entry:   "f", Args: []int64{int64(i), 100},
		}
		wire.Runs = append(wire.Runs, rr)
		direct = append(direct, serve.Request{Program: rr.Program, Entry: rr.Entry, Args: rr.Args})
	}
	// One failing item mid-batch: errors must stay positional.
	bad := api.RunRequest{Program: api.Program{Source: "int f( {", Level: api.LevelNone}, Entry: "f"}
	wire.Runs = append(wire.Runs[:4], append([]api.RunRequest{bad}, wire.Runs[4:]...)...)
	direct = append(direct[:4], append([]serve.Request{{Program: bad.Program, Entry: "f"}}, direct[4:]...)...)

	want := ref.DoBatch(context.Background(), direct)
	resp := post(t, ts.URL+"/v1/batch", wire)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decodeBody[api.BatchResponse](t, resp)
	if len(got.Results) != len(want) {
		t.Fatalf("%d results over HTTP, %d direct", len(got.Results), len(want))
	}
	for i := range want {
		switch {
		case want[i].Err != nil:
			if got.Results[i].Err == nil {
				t.Errorf("item %d: HTTP succeeded where direct failed (%v)", i, want[i].Err)
				continue
			}
			if got.Results[i].Err.Class != api.ClassCompile {
				t.Errorf("item %d: error class %q, want compile", i, got.Results[i].Err.Class)
			}
		default:
			r := got.Results[i].Run
			if r == nil {
				t.Errorf("item %d: HTTP failed where direct succeeded", i)
				continue
			}
			if r.Value != want[i].Resp.Value || r.Stats != toWireStats(want[i].Resp.Stats) {
				t.Errorf("item %d diverged from direct submission", i)
			}
		}
	}
}

// TestStatusMapping is the table-driven wire-error gate: each failure
// mode maps to its fixed status with a typed api.Error body whose Status
// field echoes the HTTP status.
func TestStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: serve.Config{Workers: 1, CacheEntries: 4}})

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		class  api.Class
	}{
		{"malformed json", "POST", "/v1/run", "{not json", http.StatusBadRequest, api.ClassBadRequest},
		{"unknown field", "POST", "/v1/run", `{"source":"int f(void){return 1;}","entry":"f","bogus":1}`, http.StatusBadRequest, api.ClassBadRequest},
		{"trailing garbage", "POST", "/v1/run", `{"source":"int f(void){return 1;}"} trailing`, http.StatusBadRequest, api.ClassBadRequest},
		{"empty source", "POST", "/v1/run", `{"source":""}`, http.StatusBadRequest, api.ClassBadRequest},
		{"compile error", "POST", "/v1/run", `{"source":"int f( {","entry":"f"}`, http.StatusUnprocessableEntity, api.ClassCompile},
		{"bad level", "POST", "/v1/run", `{"source":"int f(void){return 1;}","level":99,"entry":"f"}`, http.StatusUnprocessableEntity, api.ClassCompile},
		{"deadline", "POST", "/v1/run", fmt.Sprintf(`{"source":%q,"entry":"f","timeout_ms":1}`, srcSlow), http.StatusGatewayTimeout, api.ClassDeadline},
		{"compile endpoint error", "POST", "/v1/compile", `{"source":"int f( {"}`, http.StatusUnprocessableEntity, api.ClassCompile},
		{"empty batch", "POST", "/v1/batch", `{"runs":[]}`, http.StatusBadRequest, api.ClassBadRequest},
		{"trace in batch", "POST", "/v1/batch", `{"runs":[{"source":"int f(void){return 1;}","entry":"f","trace":true}]}`, http.StatusBadRequest, api.ClassBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			e := decodeBody[api.Error](t, resp)
			if e.Class != tc.class {
				t.Errorf("class %q, want %q", e.Class, tc.class)
			}
			if e.Status != tc.status {
				t.Errorf("body status %d, want %d (must echo the HTTP status)", e.Status, tc.status)
			}
			if e.Message == "" {
				t.Error("empty error message")
			}
		})
	}

	// GET /v1/trace/{id} for an unknown id → 404 not_found.
	resp, err := http.Get(ts.URL + "/v1/trace/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", resp.StatusCode)
	}
	if e := decodeBody[api.Error](t, resp); e.Class != api.ClassNotFound {
		t.Errorf("unknown trace: class %q, want not_found", e.Class)
	}
}

// TestOverloadSheds fills the single worker and the one-slot queue with
// slow runs, then verifies the next request over HTTP is shed with 429,
// a Retry-After header, and a temporary typed error.
func TestOverloadSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{Engine: serve.Config{Workers: 1, QueueDepth: 1, CacheEntries: 4}})

	slow := api.RunRequest{
		Program:   api.Program{Source: srcSlow, Level: api.LevelNone},
		Entry:     "f",
		TimeoutMS: 2000,
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := post(t, ts.URL+"/v1/run", slow)
			resp.Body.Close()
		}()
	}
	defer wg.Wait()
	// Wait until one slow run occupies the worker and the other occupies
	// the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Engine().Stats().QueueLen < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp := post(t, ts.URL+"/v1/run", slow)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	e := decodeBody[api.Error](t, resp)
	if e.Class != api.ClassOverload {
		t.Errorf("class %q, want overload", e.Class)
	}
	if !e.Temporary() {
		t.Error("overload error not marked temporary")
	}
	if e.RetryAfterMS <= 0 {
		t.Error("overload error without a retry hint")
	}
}

// TestTraceDownload runs with trace recording and downloads the Chrome
// trace: valid JSON with a traceEvents array.
func TestTraceDownload(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: serve.Config{Workers: 1, CacheEntries: 4}})

	rr := api.RunRequest{
		Program: api.Program{Source: srcLoop, Level: api.LevelFull},
		Entry:   "f", Args: []int64{10}, Trace: true,
	}
	resp := post(t, ts.URL+"/v1/run", rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced run: status %d", resp.StatusCode)
	}
	run := decodeBody[api.RunResponse](t, resp)
	if run.Value != 45 {
		t.Fatalf("traced f(10) = %d, want 45", run.Value)
	}
	if run.TraceID == "" {
		t.Fatal("traced run returned no trace_id")
	}

	dl, err := http.Get(ts.URL + "/v1/trace/" + run.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if dl.StatusCode != http.StatusOK {
		t.Fatalf("trace download: status %d", dl.StatusCode)
	}
	if cd := dl.Header.Get("Content-Disposition"); !strings.Contains(cd, run.TraceID) {
		t.Errorf("Content-Disposition %q does not name the trace", cd)
	}
	// Chrome's trace viewer accepts the bare event-array form.
	var events []json.RawMessage
	if err := json.NewDecoder(dl.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	dl.Body.Close()
	if len(events) == 0 {
		t.Error("trace has no events")
	}
}

// TestTraceStoreBound: the oldest trace is dropped once the bound hits.
func TestTraceStoreBound(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: serve.Config{Workers: 1, CacheEntries: 4}, MaxTraces: 2})

	ids := make([]string, 3)
	for i := range ids {
		rr := api.RunRequest{
			Program: api.Program{Source: srcAdd, Level: api.LevelFull},
			Entry:   "f", Args: []int64{int64(i), 1}, Trace: true,
		}
		resp := post(t, ts.URL+"/v1/run", rr)
		ids[i] = decodeBody[api.RunResponse](t, resp).TraceID
	}
	if resp, _ := http.Get(ts.URL + "/v1/trace/" + ids[0]); resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest trace still resident: status %d, want 404", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		if resp, _ := http.Get(ts.URL + "/v1/trace/" + id); resp.StatusCode != http.StatusOK {
			t.Errorf("recent trace %s: status %d, want 200", id, resp.StatusCode)
		}
	}
}

// TestMetrics exercises the exposition after live traffic: engine
// counters, the hit-rate gauge, and both latency histograms must appear
// with self-consistent values.
func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: serve.Config{Workers: 1, CacheEntries: 4}})

	rr := api.RunRequest{Program: api.Program{Source: srcLoop, Level: api.LevelFull}, Entry: "f", Args: []int64{10}}
	for i := 0; i < 3; i++ {
		resp := post(t, ts.URL+"/v1/run", rr)
		resp.Body.Close()
	}
	post(t, ts.URL+"/v1/run", api.RunRequest{Program: api.Program{Source: "int f( {"}, Entry: "f"}).Body.Close()
	post(t, ts.URL+"/v1/compile", api.CompileRequest{Source: srcAdd, Level: api.LevelFull}).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()

	for _, want := range []string{
		`cashd_requests_total{endpoint="compile",status="200"} 1`,
		`cashd_requests_total{endpoint="run",status="200"} 3`,
		`cashd_requests_total{endpoint="run",status="422"} 1`,
		"cashd_runs_completed_total 3",
		"cashd_runs_failed_total 1",
		"cashd_cache_hits_total 2",
		"cashd_cache_misses_total 3",
		"cashd_run_duration_seconds_count 3",
		"cashd_run_duration_seconds_bucket",
		"cashd_compile_duration_seconds_count 1",
		"cashd_run_duration_seconds_p50",
		"cashd_run_duration_seconds_p99",
		"cashd_shed_rate 0",
		"cashd_queue_capacity 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n----\n%s", want, text)
		}
	}
}

// TestShardRedirect: with a two-peer ring, a daemon answers requests it
// does not own with 307 + Location at the owner, and serves the ones it
// does own.
func TestShardRedirect(t *testing.T) {
	const (
		peerA = "http://shard-a.example:8080"
		peerB = "http://shard-b.example:8080"
	)
	ring := api.NewRing([]string{peerA, peerB}, 0)

	// Find one program owned by each peer; vary the source until both
	// sides of the ring are covered.
	byOwner := map[string]api.Program{}
	for i := 0; len(byOwner) < 2 && i < 64; i++ {
		p := api.Program{
			Source: fmt.Sprintf("int f(void) { return %d; }", i),
			Level:  api.LevelFull,
		}
		byOwner[ring.Owner(p.Key())] = p
	}
	if len(byOwner) < 2 {
		t.Fatal("could not find programs for both shards")
	}

	s, ts := newTestServer(t, Config{
		Engine: serve.Config{Workers: 1, CacheEntries: 4},
		Self:   peerA,
		Peers:  []string{peerA, peerB},
	})
	_ = s

	noFollow := &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	do := func(p api.Program, path string, body any) *http.Response {
		data, _ := json.Marshal(body)
		resp, err := noFollow.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	owned := byOwner[peerA]
	foreign := byOwner[peerB]

	resp := do(owned, "/v1/run", api.RunRequest{Program: owned, Entry: "f"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owned program: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	resp = do(foreign, "/v1/run", api.RunRequest{Program: foreign, Entry: "f"})
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("foreign program: status %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, peerB) || !strings.HasSuffix(loc, "/v1/run") {
		t.Errorf("Location %q, want %s/v1/run", loc, peerB)
	}
	resp.Body.Close()

	// Compile redirects the same way; batch is served regardless of
	// ownership (clients partition batches).
	resp = do(foreign, "/v1/compile", foreign)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Errorf("foreign compile: status %d, want 307", resp.StatusCode)
	}
	resp.Body.Close()
	resp = do(foreign, "/v1/batch", api.BatchRequest{Runs: []api.RunRequest{{Program: foreign, Entry: "f"}}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("batch with foreign program: status %d, want 200 (no batch redirects)", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestShardConfigValidation: peers without self, or self outside the
// peer set, must fail construction.
func TestShardConfigValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"http://a", "http://b"}}); err == nil {
		t.Error("New accepted peers without self")
	}
	if _, err := New(Config{Self: "http://c", Peers: []string{"http://a", "http://b"}}); err == nil {
		t.Error("New accepted a self outside the peer set")
	}
}

// TestHealthz: liveness is a plain 200.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: serve.Config{Workers: 1, CacheEntries: 4}})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
}
