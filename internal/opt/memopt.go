package opt

import (
	"spatial/internal/pegasus"
)

// This file implements the redundant memory-access removal of paper
// Section 5: merging equivalent memory operations (5.1, Figure 7),
// store-before-store removal (5.2, Figure 8), and load-after-store
// forwarding (5.3, Figure 9). All three are local term rewrites guarded
// by boolean predicate manipulation and a reachability (cycle) check.

// sameTokenInputs reports whether two nodes consume exactly the same set
// of token outputs.
func sameTokenInputs(a, b *pegasus.Node) bool {
	if len(a.Toks) != len(b.Toks) {
		return false
	}
	set := map[pegasus.Ref]bool{}
	for _, t := range a.Toks {
		set[t] = true
	}
	for _, t := range b.Toks {
		if !set[t] {
			return false
		}
	}
	return true
}

// sameAddress reports whether two memory ops access the same address and
// the same amount of data (the optimizations do not handle mixed sizes).
func sameAddress(a, b *pegasus.Node) bool {
	return a.Ins[0] == b.Ins[0] && a.Bytes == b.Bytes
}

// memMerge merges equivalent memory operations (Section 5.1): two loads
// (or two stores) of the same address and width with identical token
// inputs become one operation executing under the OR of the predicates.
// This subsumes CSE, PRE, and code hoisting for memory accesses.
func memMerge(c *ctx) (bool, error) {
	g := c.g
	changed := false
	reach := pegasus.NewReachability(g)
	// Group candidate ops by hyperblock.
	for h := range g.Hypers {
		ops := g.MemOpsInHyper(h)
		for i := 0; i < len(ops); i++ {
			a := ops[i]
			if a.Dead || a.Kind == pegasus.KCall {
				continue
			}
			for j := i + 1; j < len(ops); j++ {
				b := ops[j]
				if b.Dead || b.Kind != a.Kind {
					continue
				}
				if !sameAddress(a, b) || !sameTokenInputs(a, b) {
					continue
				}
				if a.VT != b.VT {
					continue
				}
				pa, pb := a.Preds[0].N, b.Preds[0].N
				if pa.Hyper != pb.Hyper {
					continue
				}
				if a.Kind == pegasus.KLoad {
					if mergeLoads(c, reach, a, b, pa, pb) {
						changed = true
						reach = pegasus.NewReachability(g)
					}
				} else if mergeStores(c, reach, a, b, pa, pb) {
					changed = true
					reach = pegasus.NewReachability(g)
				}
			}
		}
	}
	return changed, nil
}

// mergeLoads rewrites two compatible loads into one with predicate
// pa ∨ pb (Figure 7). The cycle-free condition: neither predicate may
// depend on the other load's value.
func mergeLoads(c *ctx, reach *pegasus.Reachability, a, b, pa, pb *pegasus.Node) bool {
	g := c.g
	if reach.Reaches(a, pb) || reach.Reaches(b, pa) {
		return false
	}
	or := g.PredOr(pa, pb)
	a.Preds[0] = pegasus.V(or)
	g.ReplaceUses(b, pegasus.OutValue, pegasus.V(a))
	g.ReplaceUses(b, pegasus.OutToken, pegasus.T(a))
	b.Dead = true
	return true
}

// mergeStores rewrites two compatible stores with mutually exclusive
// predicates into one store of a muxed value under pa ∨ pb.
func mergeStores(c *ctx, reach *pegasus.Reachability, a, b, pa, pb *pegasus.Node) bool {
	g := c.g
	if !g.PredDisjoint(pa, pb) {
		return false
	}
	// The mux adds edges pb→a and b.value→a.
	if reach.Reaches(a, pb) || reach.Reaches(a, b.Ins[1].N) ||
		reach.Reaches(b, pa) || reach.Reaches(b, a.Ins[1].N) {
		return false
	}
	mux := g.NewNode(pegasus.KMux, a.Hyper)
	mux.VT = a.Ins[1].N.VT
	if mux.VT.Bits == 0 {
		mux.VT = pegasus.I32
	}
	mux.Ins = []pegasus.Ref{a.Ins[1], b.Ins[1]}
	mux.Preds = []pegasus.Ref{pegasus.V(pa), pegasus.V(pb)}
	a.Ins[1] = pegasus.V(mux)
	a.Preds[0] = pegasus.V(g.PredOr(pa, pb))
	g.ReplaceUses(b, pegasus.OutToken, pegasus.T(a))
	b.Dead = true
	return true
}

// storeBeforeStore implements Figure 8: when store s1's token feeds store
// s2 at the same address (and nothing else consumes s1's token, so no
// intervening access exists), s1 needs to execute only when s2 will not
// overwrite it: pred(s1) := pred(s1) ∧ ¬pred(s2). If that predicate is
// constant false, s1 is dead and removed (Section 4.1 rule).
func storeBeforeStore(c *ctx) (bool, error) {
	g := c.g
	changed := false
	uses := g.Uses()
	for _, s2 := range g.Nodes {
		if s2.Dead || s2.Kind != pegasus.KStore {
			continue
		}
		for _, t := range s2.Toks {
			s1 := t.N
			if s1.Dead || s1.Kind != pegasus.KStore || s1.Hyper != s2.Hyper {
				continue
			}
			if !sameAddress(s1, s2) {
				continue
			}
			// s1's token must only feed s2.
			tokUses := 0
			for _, u := range uses[s1] {
				if u.Out == pegasus.OutToken {
					tokUses++
				}
			}
			if tokUses != 1 {
				continue
			}
			p1, p2 := s1.Preds[0].N, s2.Preds[0].N
			if p1.Hyper != p2.Hyper {
				continue
			}
			newPred := g.PredAndNot(p1, p2)
			if newPred == p1 {
				continue // no change (e.g. already disjoint)
			}
			s1.Preds[0] = pegasus.V(newPred)
			changed = true
			if g.IsConstFalse(newPred) {
				spliceTokens(g, s1)
				s1.Dead = true
				uses = g.Uses()
			}
		}
	}
	return changed, nil
}

// loadAfterStore implements Figure 9: a load whose token inputs all come
// from stores to the same address bypasses memory — its value becomes a
// decoded mux of the stored values, and the load itself runs only when no
// store did. If the stores collectively dominate the load, the load
// disappears entirely.
func loadAfterStore(c *ctx) (bool, error) {
	g := c.g
	changed := false
	reach := pegasus.NewReachability(g)
	for _, l := range g.Nodes {
		if l.Dead || l.Kind != pegasus.KLoad || len(l.Toks) == 0 {
			continue
		}
		stores := make([]*pegasus.Node, 0, len(l.Toks))
		ok := true
		for _, t := range l.Toks {
			s := t.N
			if s.Dead || s.Kind != pegasus.KStore || s.Hyper != l.Hyper || !sameAddress(s, l) {
				ok = false
				break
			}
			stores = append(stores, s)
		}
		if !ok || len(stores) == 0 {
			continue
		}
		// Cycle check: the mux consumes each store's value and predicate;
		// none of them may depend on the load's output.
		cyc := false
		for _, s := range stores {
			if reach.Reaches(l, s.Ins[1].N) || reach.Reaches(l, s.Preds[0].N) {
				cyc = true
				break
			}
		}
		if cyc {
			continue
		}
		lp := l.Preds[0].N
		if lp.Hyper != l.Hyper {
			continue
		}
		cover := stores[0].Preds[0].N
		for _, s := range stores[1:] {
			cover = g.PredOr(cover, s.Preds[0].N)
		}
		residual := g.PredAndNot(lp, cover)
		if residual == lp {
			// Already forwarded in a previous round (the predicate is
			// fixed under ∧¬cover), or the stores' predicates are
			// disjoint from the load's — either way the rewrite would be
			// a no-op (or build an ever-growing mux chain); skip.
			continue
		}
		mux := g.NewNode(pegasus.KMux, l.Hyper)
		mux.VT = l.VT
		for _, s := range stores {
			mux.Ins = append(mux.Ins, s.Ins[1])
			mux.Preds = append(mux.Preds, s.Preds[0])
		}
		// Sub-word loads reinterpret the stored bytes: re-truncate the
		// forwarded value to the loaded width and signedness.
		fwd := pegasus.V(mux)
		if l.Bytes < 4 {
			conv := g.NewNode(pegasus.KConv, l.Hyper)
			conv.VT = l.VT
			conv.FromBits = 32
			conv.ToBits = l.Bytes * 8
			conv.ConvSign = l.VT.Signed
			conv.Ins = []pegasus.Ref{pegasus.V(mux)}
			fwd = pegasus.V(conv)
		}
		if !g.IsConstFalse(residual) {
			// The load may still execute; keep it under the residual
			// predicate and include its value in the mux.
			l.Preds[0] = pegasus.V(residual)
			mux.Ins = append(mux.Ins, pegasus.V(l))
			mux.Preds = append(mux.Preds, pegasus.V(residual))
			// Replace all value uses of the load except the mux's own.
			replaceValueUsesExcept(g, l, fwd, mux)
		} else {
			g.ReplaceUses(l, pegasus.OutValue, fwd)
			spliceTokens(g, l)
			l.Dead = true
		}
		changed = true
		reach = pegasus.NewReachability(g)
	}
	return changed, nil
}

// replaceValueUsesExcept rewires value uses of old to newRef, leaving the
// given user untouched.
func replaceValueUsesExcept(g *pegasus.Graph, old *pegasus.Node, newRef pegasus.Ref, except *pegasus.Node) {
	for _, n := range g.Nodes {
		if n.Dead || n == except {
			continue
		}
		n.EachInput(func(r *pegasus.Ref, p pegasus.Port, i int) {
			if r.N == old && r.Out == pegasus.OutValue {
				*r = newRef
			}
		})
	}
}
