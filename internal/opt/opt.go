// Package opt implements CASH's optimization passes over Pegasus graphs
// (paper Sections 4–6): scalar cleanups (constant folding, CSE, dead
// code), token-network optimizations (dead memory operations, token-edge
// removal by address disambiguation, transitive reduction), redundant
// memory-access removal (load/store merging, store-before-store,
// load-after-store, loop-invariant load motion), and the loop pipelining
// transformations (read-only loops, monotone addresses, loop decoupling
// with token generators).
package opt

import (
	"fmt"

	"spatial/internal/pegasus"
)

// Level names a preset optimization bundle, mirroring the paper's
// experimental configurations.
type Level int

// Optimization levels.
const (
	// None performs no optimization at all (the coarse initial graph).
	None Level = iota
	// Basic runs scalar optimizations only.
	Basic
	// Medium adds the memory-parallelism set the paper found most
	// profitable: token-edge removal via address disambiguation,
	// transitive reduction, and induction-variable loop pipelining
	// (Sections 4.3 and 6.2).
	Medium
	// Full adds redundant memory-operation removal, loop-invariant load
	// motion, read-only loop splitting, and loop decoupling
	// (Sections 4.1, 5, 6.1, 6.3).
	Full
)

// String names the level.
func (l Level) String() string {
	switch l {
	case None:
		return "none"
	case Basic:
		return "basic"
	case Medium:
		return "medium"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Options toggles individual passes (for ablation studies).
type Options struct {
	ConstFold bool
	CSE       bool
	DCE       bool

	DeadMemOps          bool // Section 4.1
	TokenRemoval        bool // Section 4.3
	TransitiveReduction bool // Section 3.4

	MemMerge         bool // Section 5.1
	StoreBeforeStore bool // Section 5.2
	LoadAfterStore   bool // Section 5.3
	LICM             bool // Section 5.4

	ReadOnlyLoops bool // Section 6.1
	MonotoneLoops bool // Section 6.2
	LoopDecouple  bool // Section 6.3
}

// LevelOptions returns the preset for a level.
func LevelOptions(l Level) Options {
	var o Options
	if l >= Basic {
		o.ConstFold = true
		o.CSE = true
		o.DCE = true
	}
	if l >= Medium {
		o.DeadMemOps = true
		o.TokenRemoval = true
		o.TransitiveReduction = true
		o.MonotoneLoops = true
	}
	if l >= Full {
		o.MemMerge = true
		o.StoreBeforeStore = true
		o.LoadAfterStore = true
		o.LICM = true
		o.ReadOnlyLoops = true
		o.LoopDecouple = true
	}
	return o
}

// Optimize runs the selected passes on every function of the program to a
// fixpoint (bounded), verifying graph integrity after each iteration.
func Optimize(p *pegasus.Program, o Options) error {
	for name, g := range p.Funcs {
		if err := optimizeGraph(p, g, o); err != nil {
			return fmt.Errorf("optimizing %s: %w", name, err)
		}
	}
	return nil
}

// OptimizeAt is a convenience wrapper using a level preset.
func OptimizeAt(p *pegasus.Program, l Level) error { return Optimize(p, LevelOptions(l)) }

type pass struct {
	name    string
	enabled bool
	run     func(*ctx) (bool, error)
}

// ctx carries shared state across passes for one graph.
type ctx struct {
	prog *pegasus.Program
	g    *pegasus.Graph
}

func optimizeGraph(p *pegasus.Program, g *pegasus.Graph, o Options) error {
	c := &ctx{prog: p, g: g}
	// Pipelining transforms run once after the iterative rewriting
	// converges: they restructure token circuits and do not expose
	// further rewrites of the same kind.
	iterative := []pass{
		{"constfold", o.ConstFold, constFold},
		{"cse", o.CSE, commonSubexpr},
		{"deadmem", o.DeadMemOps, deadMemOps},
		{"tokenremove", o.TokenRemoval, tokenRemoval},
		{"transred", o.TransitiveReduction, transitiveReduction},
		{"memmerge", o.MemMerge, memMerge},
		{"storebeforestore", o.StoreBeforeStore, storeBeforeStore},
		{"loadafterstore", o.LoadAfterStore, loadAfterStore},
		{"licm", o.LICM, loopInvariantMotion},
		{"dce", o.DCE, deadCode},
	}
	restructuring := []pass{
		{"readonly", o.ReadOnlyLoops, readOnlyLoops},
		{"decouple", o.LoopDecouple, loopDecouple},
		{"monotone", o.MonotoneLoops, monotoneLoops},
		{"dce", o.DCE, deadCode},
	}
	const maxRounds = 20
	// Two macro-cycles: the loop-restructuring passes expose new
	// opportunities for the rewriting passes (e.g. a read-only class's
	// token circuit becomes identity-circulating, enabling invariant load
	// motion), and vice versa.
	for cycle := 0; cycle < 2; cycle++ {
		for round := 0; round < maxRounds; round++ {
			changed := false
			for _, ps := range iterative {
				if !ps.enabled {
					continue
				}
				ch, err := ps.run(c)
				if err != nil {
					return fmt.Errorf("pass %s: %w", ps.name, err)
				}
				if ch {
					changed = true
				}
			}
			if err := g.Verify(); err != nil {
				return fmt.Errorf("after optimization round %d: %w", round, err)
			}
			if !changed {
				break
			}
		}
		for _, ps := range restructuring {
			if !ps.enabled {
				continue
			}
			if _, err := ps.run(c); err != nil {
				return fmt.Errorf("pass %s: %w", ps.name, err)
			}
			if err := g.Verify(); err != nil {
				return fmt.Errorf("after pass %s: %w", ps.name, err)
			}
		}
	}
	g.Compact()
	return nil
}
