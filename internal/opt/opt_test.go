package opt

import (
	"testing"

	"spatial/internal/build"
	"spatial/internal/cminor"
	"spatial/internal/dataflow"
	"spatial/internal/interp"
	"spatial/internal/memsys"
	"spatial/internal/pegasus"
)

func compileAt(t *testing.T, src string, level Level) *pegasus.Program {
	t.Helper()
	prog, err := cminor.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := cminor.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := build.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := OptimizeAt(p, level); err != nil {
		t.Fatalf("optimize(%v): %v", level, err)
	}
	return p
}

func countMem(g *pegasus.Graph) (loads, stores int) { return g.CountMemOps() }

// checkAllLevels compiles at every level, simulates, and compares the
// result against the interpreter oracle.
func checkAllLevels(t *testing.T, src, entry string, argSets ...[]int64) {
	t.Helper()
	if len(argSets) == 0 {
		argSets = [][]int64{nil}
	}
	for _, level := range []Level{None, Basic, Medium, Full} {
		p := compileAt(t, src, level)
		for _, args := range argSets {
			res, err := dataflow.Run(p, entry, args, dataflow.DefaultConfig())
			if err != nil {
				t.Fatalf("level %v: dataflow %s(%v): %v\n%s", level, entry, args, err, p.Graph(entry).Dump())
			}
			it := interp.New(p, memsys.PerfectConfig())
			want, err := it.Run(entry, args)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			if res.Value != want.Value {
				t.Errorf("level %v: %s(%v) = %d, want %d\n%s", level, entry, args, res.Value, want.Value, p.Graph(entry).Dump())
			}
		}
	}
}

const section2Src = `
void f(unsigned *p, unsigned a[], int i) {
  if (p) a[i] += *p;
  else a[i] = 1;
  a[i] <<= a[i+1];
}`

func TestSection2RemovesRedundantAccesses(t *testing.T) {
	// Unoptimized: 4 loads (a[i]×2, *p, a[i+1]), 3 stores (a[i]×3).
	p0 := compileAt(t, section2Src, None)
	l0, s0 := countMem(p0.Graph("f"))
	if l0 != 4 || s0 != 3 {
		t.Fatalf("unoptimized: loads=%d stores=%d, want 4/3", l0, s0)
	}
	// Full optimization (the paper's Figure 1D): "two stores and one
	// load" are removed — the a[i] reload is forwarded through a mux and
	// the two intermediate stores die, leaving 3 loads (a[i], *p,
	// a[i+1]) and the final store.
	p := compileAt(t, section2Src, Full)
	l, s := countMem(p.Graph("f"))
	if l != 3 {
		t.Errorf("optimized loads = %d, want 3\n%s", l, p.Graph("f").Dump())
	}
	if s != 1 {
		t.Errorf("optimized stores = %d, want 1\n%s", s, p.Graph("f").Dump())
	}
}

func TestSection2EndToEnd(t *testing.T) {
	src := `
unsigned val = 5;
unsigned a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
void f(unsigned *p, unsigned *a2, int i) {
  if (p) a2[i] += *p;
  else a2[i] = 1;
  a2[i] <<= a2[i+1];
}
unsigned run(int usep) {
  if (usep) f(&val, a, 2);
  else f((unsigned*)0, a, 2);
  return a[2];
}`
	checkAllLevels(t, src, "run", []int64{1}, []int64{0})
}

func TestTokenRemovalDistinctOffsets(t *testing.T) {
	// a[i] and a[i+1] provably differ: the token edge between the final
	// store and the a[i+1] load must be gone at Medium.
	src := `
extern int a[];
int f(int i) {
  a[i] = 1;
  return a[i+1];
}`
	p := compileAt(t, src, Medium)
	g := p.Graph("f")
	var load, store *pegasus.Node
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		if n.Kind == pegasus.KLoad {
			load = n
		}
		if n.Kind == pegasus.KStore {
			store = n
		}
	}
	if load == nil || store == nil {
		t.Fatalf("missing ops\n%s", g.Dump())
	}
	for _, tok := range load.Toks {
		if tok.N == store {
			t.Errorf("token edge store→load not removed for distinct addresses\n%s", g.Dump())
		}
	}
}

func TestTokenKeptForSameAddress(t *testing.T) {
	src := `
extern int a[];
int f(int i, int j) {
  a[i] = 1;
  return a[j];
}`
	p := compileAt(t, src, Medium)
	g := p.Graph("f")
	loads, stores := 0, 0
	var load *pegasus.Node
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		if n.Kind == pegasus.KLoad {
			loads++
			load = n
		}
		if n.Kind == pegasus.KStore {
			stores++
		}
	}
	if loads != 1 || stores != 1 {
		t.Fatalf("loads=%d stores=%d", loads, stores)
	}
	found := false
	for _, tok := range load.Toks {
		if tok.N.Kind == pegasus.KStore {
			found = true
		}
	}
	if !found {
		t.Errorf("may-alias token edge removed\n%s", g.Dump())
	}
}

func TestLoadAfterStoreForwarding(t *testing.T) {
	src := `
int g;
int f(int x) {
  g = x * 2;
  return g;
}`
	p := compileAt(t, src, Full)
	gr := p.Graph("f")
	loads, _ := countMem(gr)
	if loads != 0 {
		t.Errorf("load after store not forwarded: %d loads remain\n%s", loads, gr.Dump())
	}
	checkAllLevels(t, src, "f", []int64{21})
}

func TestStoreBeforeStoreRemoval(t *testing.T) {
	src := `
int g;
void f(int x) {
  g = x;
  g = x + 1;
}`
	p := compileAt(t, src, Full)
	gr := p.Graph("f")
	_, stores := countMem(gr)
	if stores != 1 {
		t.Errorf("dead store not removed: %d stores\n%s", stores, gr.Dump())
	}
}

func TestLoadMergeAcrossBranches(t *testing.T) {
	// Both branches load g: PRE/hoisting merges them into one load.
	src := `
int g;
int f(int c) {
  int r;
  if (c) r = g + 1;
  else r = g - 1;
  return r;
}`
	p := compileAt(t, src, Full)
	gr := p.Graph("f")
	loads, _ := countMem(gr)
	if loads != 1 {
		t.Errorf("branch loads not merged: %d loads\n%s", loads, gr.Dump())
	}
	checkAllLevels(t, src, "f", []int64{0}, []int64{1})
}

func TestStoreMergeAcrossBranches(t *testing.T) {
	// Section 5.1 "applicable to stores as well": both branches store to
	// a[i] with exclusive predicates → one store of a muxed value.
	src := `
int a[16];
void f(int c, int i, int x, int y) {
  if (c) a[i] = x;
  else a[i] = y;
}`
	p := compileAt(t, src, Full)
	gr := p.Graph("f")
	_, stores := countMem(gr)
	if stores != 1 {
		t.Errorf("branch stores not merged: %d stores\n%s", stores, gr.Dump())
	}
	checkAllLevels(t, src+`
int run(int c) { f(c, 3, 100, 200); return a[3]; }`, "run", []int64{1}, []int64{0})
}

func TestDeadPredicateMemOpRemoved(t *testing.T) {
	src := `
int g;
int f(int x) {
  if (0) g = x;
  return x + 1;
}`
	p := compileAt(t, src, Full)
	gr := p.Graph("f")
	_, stores := countMem(gr)
	if stores != 0 {
		t.Errorf("constant-false store survives: %d stores\n%s", stores, gr.Dump())
	}
}

func TestConstFoldAndCSE(t *testing.T) {
	src := `
int f(int x) {
  int a = 2 * 3 + 4;
  int b = x * 8 + x * 8;
  return a + b;
}`
	p := compileAt(t, src, Basic)
	gr := p.Graph("f")
	muls := 0
	for _, n := range gr.Nodes {
		if !n.Dead && n.Kind == pegasus.KBinOp && n.BinOp == cminor.OpMul {
			muls++
		}
	}
	if muls > 1 {
		t.Errorf("CSE left %d multiplies, want <= 1\n%s", muls, gr.Dump())
	}
	checkAllLevels(t, src, "f", []int64{5})
}

func TestLICMHoistsInvariantLoad(t *testing.T) {
	src := `
int scale;
int out[64];
void f(int n) {
  int i;
  for (i = 0; i < n; i++) out[i] = i * scale;
}`
	p := compileAt(t, src, Full)
	gr := p.Graph("f")
	// The scale load must not be inside the loop hyperblock.
	for _, n := range gr.Nodes {
		if n.Dead || n.Kind != pegasus.KLoad {
			continue
		}
		if gr.Hypers[n.Hyper].IsLoop {
			t.Errorf("invariant load still inside the loop\n%s", gr.Dump())
		}
	}
	checkAllLevels(t, src, "f", []int64{8})
}

func TestReadOnlyLoopFreeRuns(t *testing.T) {
	src := `
int tbl[64];
int acc;
void f(int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) s += tbl[i];
  acc = s;
}`
	p := compileAt(t, src, Full)
	gr := p.Graph("f")
	// Find the loop's token circuit for the tbl class: its back eta must
	// take the merge token directly (free-running generator).
	free := false
	for _, n := range gr.Nodes {
		if n.Dead || n.Kind != pegasus.KEta || !n.TokenOnly {
			continue
		}
		if gr.Hypers[n.Hyper].IsLoop && n.Toks[0].N.Kind == pegasus.KMerge && n.Toks[0].N.TokenOnly {
			free = true
		}
	}
	if !free {
		t.Errorf("read-only loop not split into generator/collector\n%s", gr.Dump())
	}
	checkAllLevels(t, src, "f", []int64{16})
}

func TestMonotoneStoreLoopFreeRuns(t *testing.T) {
	src := `
int dst[128];
void f(int n) {
  int i;
  for (i = 0; i < n; i++) dst[i] = i * 3;
}`
	p := compileAt(t, src, Medium)
	gr := p.Graph("f")
	free := false
	for _, n := range gr.Nodes {
		if n.Dead || n.Kind != pegasus.KEta || !n.TokenOnly {
			continue
		}
		if gr.Hypers[n.Hyper].IsLoop && n.Toks[0].N.Kind == pegasus.KMerge && n.Toks[0].N.TokenOnly {
			free = true
		}
	}
	if !free {
		t.Errorf("monotone store loop not pipelined\n%s", gr.Dump())
	}
	checkAllLevels(t, src, "f", []int64{32})
}

func TestLoopDecouplingInsertsTokenGenerator(t *testing.T) {
	// The Figure 15 example: a[i] and a[i+3] at dependence distance 3.
	src := `
int a[256];
void f(int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = a[i+3] + 1;
  }
}`
	p := compileAt(t, src, Full)
	gr := p.Graph("f")
	var tk *pegasus.Node
	for _, n := range gr.Nodes {
		if !n.Dead && n.Kind == pegasus.KTokenGen {
			tk = n
		}
	}
	if tk == nil {
		t.Fatalf("no token generator inserted\n%s", gr.Dump())
	}
	if tk.TokN != 3 {
		t.Errorf("tk(%d), want tk(3)", tk.TokN)
	}
	checkAllLevels(t, src, "f", []int64{64})
}

func TestDecoupledLoopCorrectness(t *testing.T) {
	// Values flow across the dependence distance: a[i] = a[i+3] shifts
	// the array left with a stride; the interpreter oracle checks every
	// level's result.
	src := `
int a[64];
int f(int n) {
  int i;
  int s = 0;
  for (i = 0; i < 64; i++) a[i] = i * i;
  for (i = 0; i < n; i++) a[i] = a[i+3] + 1;
  for (i = 0; i < 64; i++) s += a[i];
  return s;
}`
	checkAllLevels(t, src, "f", []int64{32}, []int64{61}, []int64{0})
}

func TestRecurrenceFlowDependence(t *testing.T) {
	// a[i+1] = a[i] + 1 is a distance-1 flow dependence through memory:
	// every iteration's load must see the previous iteration's store.
	// This is the sharpest test of token-edge removal + decoupling: get
	// the ordering wrong and the whole array is wrong.
	src := `
int a[64];
int f(int n) {
  int i;
  a[0] = 7;
  for (i = 0; i < n; i++) a[i+1] = a[i] + 1;
  int s = 0;
  for (i = 0; i <= n; i++) s = s * 3 + a[i];
  return s & 0x7fffffff;
}`
	checkAllLevels(t, src, "f", []int64{63}, []int64{1}, []int64{0})
}

func TestDecoupledLoopEntryOrdering(t *testing.T) {
	// A slow (division-delayed) store before the loop must be observed by
	// the decoupled loop's first iterations: the trailing group keeps the
	// class token even though the token generator paces its slip.
	src := `
int a[64];
int f(int x, int y) {
  int i;
  for (i = 0; i < 64; i++) a[i] = 1;
  a[3] = x / y;      /* 20-cycle divide delays this store */
  for (i = 0; i < 60; i++) a[i] = a[i+3] + 1;
  int s = 0;
  for (i = 0; i < 64; i++) s = s * 3 + a[i];
  return s & 0x7fffffff;
}`
	checkAllLevels(t, src, "f", []int64{1000, 3})
}

func TestDescendingRecurrence(t *testing.T) {
	// The g721 delay-line shape: dq[i] = dq[i-1] descending — an anti
	// dependence at distance 1 in a downward loop.
	src := `
int dq[16];
int f(void) {
  int i;
  for (i = 0; i < 16; i++) dq[i] = i * 5;
  int r;
  for (r = 0; r < 10; r++) {
    for (i = 15; i > 0; i--) dq[i] = dq[i-1];
    dq[0] = r;
  }
  int s = 0;
  for (i = 0; i < 16; i++) s = s * 7 + dq[i];
  return s & 0x7fffffff;
}`
	checkAllLevels(t, src, "f", nil)
}

func TestOptimizedProgramsBehave(t *testing.T) {
	srcs := map[string]struct {
		src   string
		entry string
		args  [][]int64
	}{
		"fib": {`
int fib(int k) {
  int a = 0;
  int b = 1;
  while (k) { int t = a; a = b; b = b + t; k--; }
  return a;
}`, "fib", [][]int64{{10}, {0}, {1}}},
		"memcopy": {`
int src[32];
int dst[32];
int f(int n) {
  int i;
  for (i = 0; i < 32; i++) src[i] = i * 7;
  for (i = 0; i < n; i++) dst[i] = src[i];
  return dst[5] + dst[n-1];
}`, "f", [][]int64{{32}, {6}}},
		"strided": {`
short buf[128];
int f(void) {
  int i;
  int s = 0;
  for (i = 0; i < 64; i++) buf[i*2] = (short)i;
  for (i = 0; i < 128; i++) s += buf[i];
  return s;
}`, "f", [][]int64{nil}},
		"calls": {`
int g;
int addg(int x) { g = g + x; return g; }
int f(int n) {
  int i;
  g = 0;
  for (i = 0; i < n; i++) addg(i);
  return g;
}`, "f", [][]int64{{10}}},
		"nested": {`
int m[8][8];
int f(int n) {
  int i; int j; int s = 0;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      m[i][j] = i + j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      s += m[i][j];
  return s;
}`, "f", [][]int64{{8}, {1}}},
		"pointerwalk": {`
int data[64];
int f(int n) {
  int *p = data;
  int s = 0;
  int i;
  for (i = 0; i < n; i++) { *p = i; p = p + 1; }
  for (i = 0; i < n; i++) s += data[i];
  return s;
}`, "f", [][]int64{{20}}},
	}
	for name, tc := range srcs {
		tc := tc
		t.Run(name, func(t *testing.T) {
			checkAllLevels(t, tc.src, tc.entry, tc.args...)
		})
	}
}

func TestOptimizeReducesStaticMemOps(t *testing.T) {
	// Across a small corpus, Full must never have more memory ops than
	// None, and must remove some overall (the Figure 18 static effect).
	srcs := []string{
		section2Src,
		`int g; int f(int x) { g = x; g = g + 1; return g; }`,
		`int a[8]; int f(int i) { a[i] = 1; a[i] = 2; return a[i]; }`,
	}
	totalBefore, totalAfter := 0, 0
	for _, src := range srcs {
		p0 := compileAt(t, src, None)
		p1 := compileAt(t, src, Full)
		for name := range p0.Funcs {
			l0, s0 := p0.Funcs[name].CountMemOps()
			l1, s1 := p1.Funcs[name].CountMemOps()
			if l1 > l0 || s1 > s0 {
				t.Errorf("%s: optimization added memory ops (%d/%d → %d/%d)", name, l0, s0, l1, s1)
			}
			totalBefore += l0 + s0
			totalAfter += l1 + s1
		}
	}
	if totalAfter >= totalBefore {
		t.Errorf("no static memory ops removed: %d → %d", totalBefore, totalAfter)
	}
}

func TestPipeliningImprovesCycles(t *testing.T) {
	// The Figure 10 producer/consumer shape: with Medium optimization the
	// loop must run in fewer cycles than unoptimized.
	src := `
int src[256];
int dst[256];
void f(void) {
  int i;
  for (i = 0; i < 256; i++) dst[i] = src[i] * 3 + 1;
}`
	p0 := compileAt(t, src, None)
	p1 := compileAt(t, src, Medium)
	cfg := dataflow.DefaultConfig()
	r0, err := dataflow.Run(p0, "f", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := dataflow.Run(p1, "f", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Cycles >= r0.Stats.Cycles {
		t.Errorf("pipelining did not help: %d → %d cycles", r0.Stats.Cycles, r1.Stats.Cycles)
	}
}
