package opt

import (
	"spatial/internal/affine"
	"spatial/internal/pegasus"
)

// This file implements the token-network optimizations: dead
// memory-operation removal (Section 4.1), token-edge removal by address
// disambiguation (Section 4.3, Figure 5), and transitive reduction of the
// token graph (Section 3.4).

// deadMemOps removes side-effect operations whose controlling predicate
// is constant false: the operation never executes, so its token input is
// forwarded directly to its token consumers (Section 4.1).
func deadMemOps(c *ctx) (bool, error) {
	g := c.g
	changed := false
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		if n.Kind != pegasus.KLoad && n.Kind != pegasus.KStore && n.Kind != pegasus.KCall {
			continue
		}
		pred := n.Preds[0].N
		if !g.IsConstFalse(pred) {
			continue
		}
		// Loads and calls produce an arbitrary value when squashed;
		// replace value uses with 0.
		if n.HasValue() {
			g.ReplaceUses(n, pegasus.OutValue, pegasus.V(c.constNode(n.Hyper, 0, n.VT)))
		}
		spliceTokens(g, n)
		n.Dead = true
		changed = true
	}
	return changed, nil
}

// tokenRemoval removes token edges between memory operations whose
// addresses can be proven distinct by symbolic computation (Section 4.3).
// Removing edge i→j preserves the transitive closure by forwarding i's
// token inputs to j (Figure 5).
func tokenRemoval(c *ctx) (bool, error) {
	g := c.g
	changed := false
	for _, j := range g.Nodes {
		if j.Dead || !j.IsMemOp() {
			continue
		}
		aj := affine.Decompose(j.Ins[0].N)
		for idx := 0; idx < len(j.Toks); idx++ {
			i := j.Toks[idx].N
			if i.Dead || !i.IsMemOp() || i.Hyper != j.Hyper {
				continue
			}
			// Reads never need ordering; such edges should not exist, but
			// remove them if a rewrite introduced one.
			bothReads := i.Kind == pegasus.KLoad && j.Kind == pegasus.KLoad
			ai := affine.Decompose(i.Ins[0].N)
			if !bothReads && !affine.Distinct(ai, aj, i.Bytes, j.Bytes) {
				continue
			}
			// Remove the edge i→j. The transitive closure of the rest of
			// the graph must be preserved (Figure 5): j inherits i's
			// token inputs (upstream ordering to j), and every consumer
			// of j's token also waits for i directly (i's ordering to
			// everything after j — this is how the "new combine at the
			// end of the program" of Figure 1B arises).
			j.RemoveTokInput(idx)
			idx--
			for _, t := range i.Toks {
				j.AddTok(t)
			}
			for _, m := range g.Nodes {
				if m.Dead || m == j || m == i {
					continue
				}
				addTokenAlongside(g, m, j, pegasus.T(i))
			}
			changed = true
		}
	}
	return changed, nil
}

// addTokenAlongside makes consumer m (which consumes j's token) also wait
// for extra. Multi-token nodes simply gain an input; fixed-arity ports
// (etas, merges, returns, token generators) get their slot replaced by a
// combine over both.
func addTokenAlongside(g *pegasus.Graph, m, j *pegasus.Node, extra pegasus.Ref) {
	consumes := false
	for _, t := range m.Toks {
		if t.N == j {
			consumes = true
			break
		}
	}
	if !consumes {
		return
	}
	if m.IsMemOp() || m.Kind == pegasus.KCall || m.Kind == pegasus.KCombine {
		m.AddTok(extra)
		return
	}
	for slot := range m.Toks {
		if m.Toks[slot].N != j {
			continue
		}
		comb := g.NewNode(pegasus.KCombine, m.Hyper)
		comb.Toks = []pegasus.Ref{m.Toks[slot], extra}
		m.Toks[slot] = pegasus.T(comb)
	}
}

// transitiveReduction drops token edges implied by longer token paths
// within the same hyperblock. The compiler keeps the token graph reduced
// throughout (Section 3.4); rewrites such as tokenRemoval's input
// forwarding can introduce redundant edges.
func transitiveReduction(c *ctx) (bool, error) {
	g := c.g
	changed := false
	// Transitive closure of intra-hyperblock token inputs per node.
	closure := map[*pegasus.Node]map[*pegasus.Node]bool{}
	var reach func(n *pegasus.Node) map[*pegasus.Node]bool
	reach = func(n *pegasus.Node) map[*pegasus.Node]bool {
		if m, ok := closure[n]; ok {
			return m
		}
		m := map[*pegasus.Node]bool{}
		closure[n] = m // breaks cycles through back edges defensively
		for _, t := range n.Toks {
			if !t.Valid() || t.N.Hyper != n.Hyper || g.IsBackEdge(t.N, n) {
				continue
			}
			m[t.N] = true
			for k := range reach(t.N) {
				m[k] = true
			}
		}
		return m
	}
	for _, n := range g.Nodes {
		if n.Dead || len(n.Toks) < 2 {
			continue
		}
		for idx := 0; idx < len(n.Toks); idx++ {
			ti := n.Toks[idx].N
			if ti.Hyper != n.Hyper {
				continue
			}
			redundant := false
			for jdx, tj := range n.Toks {
				if jdx == idx || !tj.Valid() || tj.N.Hyper != n.Hyper {
					continue
				}
				if reach(tj.N)[ti] {
					redundant = true
					break
				}
			}
			if redundant {
				n.RemoveTokInput(idx)
				idx--
				changed = true
			}
		}
	}
	return changed, nil
}
