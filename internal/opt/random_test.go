package opt

import (
	"math/rand"
	"testing"

	"spatial/internal/build"
	"spatial/internal/cminor"
	"spatial/internal/dataflow"
	"spatial/internal/interp"
	"spatial/internal/memsys"
)

// randOptions builds a random pass subset. Scalar cleanups stay on (the
// memory passes assume dead predicates get folded), matching how CASH
// always ran its scalar optimizations.
func randOptions(rng *rand.Rand) Options {
	o := Options{ConstFold: true, CSE: true, DCE: true}
	flip := func() bool { return rng.Intn(2) == 0 }
	o.DeadMemOps = flip()
	o.TokenRemoval = flip()
	o.TransitiveReduction = flip()
	o.MemMerge = flip()
	o.StoreBeforeStore = flip()
	o.LoadAfterStore = flip()
	o.LICM = flip()
	o.ReadOnlyLoops = flip()
	o.MonotoneLoops = flip()
	o.LoopDecouple = flip()
	return o
}

// TestRandomPassSubsetsPreserveSemantics is the optimizer's strongest
// safety net: any combination of passes must leave program behaviour
// unchanged (checked against the sequential interpreter oracle).
func TestRandomPassSubsetsPreserveSemantics(t *testing.T) {
	programs := []struct {
		src   string
		entry string
		args  []int64
	}{
		{`
unsigned val = 5;
unsigned a[8] = {1,2,3,4,5,6,7,8};
void f(unsigned *p, unsigned *a2, int i) {
  if (p) a2[i] += *p;
  else a2[i] = 1;
  a2[i] <<= a2[i+1];
}
unsigned run(int usep) {
  if (usep) f(&val, a, 2); else f((unsigned*)0, a, 2);
  return a[2] + a[3] * 100;
}`, "run", []int64{1}},
		{`
int a[64];
int f(int n) {
  int i;
  int s = 0;
  for (i = 0; i < 64; i++) a[i] = i * i;
  for (i = 0; i < n; i++) a[i] = a[i+3] + 1;
  for (i = 0; i < 64; i++) s = s * 3 + a[i];
  return s & 0x7fffffff;
}`, "f", []int64{40}},
		{`
int g;
int tab[16];
int f(int x) {
  int i;
  g = x;
  for (i = 0; i < 16; i++) tab[i] = g + i;
  g = g + tab[7];
  if (x > 100) g = 0;
  return g;
}`, "f", []int64{13}},
		{`
short d[40];
short p[160];
int f(void) {
  int i;
  for (i = 0; i < 40; i++) d[i] = (short)(i * 3 - 20);
  for (i = 0; i < 160; i++) p[i] = (short)(i & 31);
  int lag;
  int best = -1;
  int bestLag = 0;
  for (lag = 40; lag < 80; lag++) {
    int c = 0;
    int k;
    for (k = 0; k < 40; k++) c += d[k] * p[k + 120 - lag];
    if (c > best) { best = c; bestLag = lag; }
  }
  return bestLag * 1000 + (best & 1023);
}`, "f", nil},
	}
	rng := rand.New(rand.NewSource(42))
	const trials = 12
	for pi, prog := range programs {
		parsed, err := cminor.Parse(prog.src)
		if err != nil {
			t.Fatal(err)
		}
		if err := cminor.Check(parsed); err != nil {
			t.Fatal(err)
		}
		// Oracle from the unoptimized build.
		base, err := build.Compile(parsed)
		if err != nil {
			t.Fatal(err)
		}
		it := interp.New(base, memsys.PerfectConfig())
		want, err := it.Run(prog.entry, prog.args)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < trials; trial++ {
			o := randOptions(rng)
			p, err := build.Compile(parsed)
			if err != nil {
				t.Fatal(err)
			}
			if err := Optimize(p, o); err != nil {
				t.Fatalf("program %d trial %d (%+v): %v", pi, trial, o, err)
			}
			res, err := dataflow.Run(p, prog.entry, prog.args, dataflow.DefaultConfig())
			if err != nil {
				t.Fatalf("program %d trial %d (%+v): %v", pi, trial, o, err)
			}
			if res.Value != want.Value {
				t.Fatalf("program %d trial %d: got %d want %d with passes %+v",
					pi, trial, res.Value, want.Value, o)
			}
		}
	}
}
