package opt

import (
	"spatial/internal/cminor"
	"spatial/internal/pegasus"
)

// This file holds the scalar optimizations: constant folding with
// algebraic simplification, common-subexpression elimination, and dead
// code elimination. They are not the paper's contribution but CASH runs
// them interleaved with the memory passes (Section 7.1 lists them among
// the optimizations accounting for compile time), and the memory rewrites
// rely on them to clean up (e.g. a store whose predicate folds to false
// is removed by dead-code rules).

// constFold folds constant operands and applies algebraic identities.
func constFold(c *ctx) (bool, error) {
	g := c.g
	changed := false
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		switch n.Kind {
		case pegasus.KBinOp:
			if fold := foldBin(c, n); fold.Valid() {
				g.ReplaceUses(n, pegasus.OutValue, fold)
				changed = true
			}
		case pegasus.KUnOp:
			if x, ok := constOf(n.Ins[0]); ok {
				v := int64(0)
				switch n.UnOp {
				case pegasus.UNeg:
					v = int64(int32(-x))
				case pegasus.UBitNot:
					v = int64(int32(^x))
				case pegasus.UNot:
					if x == 0 {
						v = 1
					}
				case pegasus.UBool:
					if x != 0 {
						v = 1
					}
				}
				g.ReplaceUses(n, pegasus.OutValue, pegasus.V(c.constNode(n.Hyper, v, n.VT)))
				changed = true
			}
		case pegasus.KConv:
			if x, ok := constOf(n.Ins[0]); ok {
				var v int64
				switch {
				case n.ToBits == 8 && n.ConvSign:
					v = int64(int8(x))
				case n.ToBits == 8:
					v = int64(uint8(x))
				case n.ToBits == 16 && n.ConvSign:
					v = int64(int16(x))
				case n.ToBits == 16:
					v = int64(uint16(x))
				default:
					v = int64(int32(x))
				}
				g.ReplaceUses(n, pegasus.OutValue, pegasus.V(c.constNode(n.Hyper, v, n.VT)))
				changed = true
			}
		case pegasus.KMux:
			// A mux whose predicates are constants selects statically.
			resolved := -1
			allConst := true
			for i, p := range n.Preds {
				v, ok := constOf(p)
				if !ok {
					allConst = false
					break
				}
				if v != 0 && resolved < 0 {
					resolved = i
				}
			}
			if allConst && resolved >= 0 {
				g.ReplaceUses(n, pegasus.OutValue, n.Ins[resolved])
				changed = true
			}
			// Drop inputs with constant-false predicates.
			if !allConst {
				kept := 0
				for i := range n.Ins {
					if v, ok := constOf(n.Preds[i]); ok && v == 0 {
						continue
					}
					n.Ins[kept] = n.Ins[i]
					n.Preds[kept] = n.Preds[i]
					kept++
				}
				if kept > 0 && kept < len(n.Ins) {
					n.Ins = n.Ins[:kept]
					n.Preds = n.Preds[:kept]
					changed = true
				}
				if kept == 1 {
					g.ReplaceUses(n, pegasus.OutValue, n.Ins[0])
					changed = true
				}
			}
		}
	}
	return changed, nil
}

func constOf(r pegasus.Ref) (int64, bool) {
	if r.Valid() && r.Out == pegasus.OutValue && r.N.Kind == pegasus.KConst {
		return r.N.ConstVal, true
	}
	return 0, false
}

// constNode reuses/creates a constant in the graph (per value+type).
func (c *ctx) constNode(hyper int, v int64, vt pegasus.VType) *pegasus.Node {
	if vt.Bits == 1 {
		return c.g.ConstPred(hyper, v != 0)
	}
	for _, n := range c.g.Nodes {
		if !n.Dead && n.Kind == pegasus.KConst && n.ConstVal == v && n.VT == vt {
			return n
		}
	}
	n := c.g.NewNode(pegasus.KConst, hyper)
	n.VT = vt
	n.ConstVal = v
	return n
}

func foldBin(c *ctx, n *pegasus.Node) pegasus.Ref {
	// Predicate-typed and/or/xor are owned by the BDD machinery; folding
	// them here would bypass the canonicalization tables.
	if n.VT.Bits == 1 && n.BDDOK {
		return pegasus.Ref{}
	}
	l, lok := constOf(n.Ins[0])
	r, rok := constOf(n.Ins[1])
	if lok && rok {
		v, err := cminor.EvalBinOp(n.BinOp, l, r, n.Unsigned)
		if err != nil {
			return pegasus.Ref{} // division by zero: leave for run time
		}
		return pegasus.V(c.constNode(n.Hyper, v, n.VT))
	}
	// Algebraic identities.
	switch n.BinOp {
	case cminor.OpAdd:
		if lok && l == 0 {
			return n.Ins[1]
		}
		if rok && r == 0 {
			return n.Ins[0]
		}
	case cminor.OpSub:
		if rok && r == 0 {
			return n.Ins[0]
		}
	case cminor.OpMul:
		if rok && r == 1 {
			return n.Ins[0]
		}
		if lok && l == 1 {
			return n.Ins[1]
		}
		if (rok && r == 0) || (lok && l == 0) {
			return pegasus.V(c.constNode(n.Hyper, 0, n.VT))
		}
	case cminor.OpShl, cminor.OpShr:
		if rok && r == 0 {
			return n.Ins[0]
		}
	case cminor.OpAnd:
		if (rok && r == 0) || (lok && l == 0) {
			return pegasus.V(c.constNode(n.Hyper, 0, n.VT))
		}
		if rok && r == -1 {
			return n.Ins[0]
		}
	case cminor.OpOr:
		if rok && r == 0 {
			return n.Ins[0]
		}
		if lok && l == 0 {
			return n.Ins[1]
		}
	case cminor.OpXor:
		if rok && r == 0 {
			return n.Ins[0]
		}
	case cminor.OpDiv:
		if rok && r == 1 {
			return n.Ins[0]
		}
	}
	return pegasus.Ref{}
}

// cseKey identifies structurally-equal pure nodes.
type cseKey struct {
	kind     pegasus.Kind
	binOp    cminor.BinOpKind
	unOp     pegasus.UnOpKind
	unsigned bool
	toBits   int
	convSign bool
	vt       pegasus.VType
	obj      int
	in0, in1 pegasus.Ref
	cval     int64
}

// commonSubexpr merges structurally identical pure value nodes.
// Commutative operators are normalized by operand ID.
func commonSubexpr(c *ctx) (bool, error) {
	g := c.g
	seen := map[cseKey]*pegasus.Node{}
	changed := false
	for _, n := range g.Topo() {
		if n.Dead {
			continue
		}
		var key cseKey
		switch n.Kind {
		case pegasus.KBinOp:
			if len(n.Ins) != 2 {
				continue
			}
			a, b := n.Ins[0], n.Ins[1]
			if isCommutative(n.BinOp) && refOrder(b, a) {
				a, b = b, a
			}
			key = cseKey{kind: n.Kind, binOp: n.BinOp, unsigned: n.Unsigned, vt: n.VT, in0: a, in1: b}
		case pegasus.KUnOp:
			key = cseKey{kind: n.Kind, unOp: n.UnOp, vt: n.VT, in0: n.Ins[0]}
		case pegasus.KConv:
			key = cseKey{kind: n.Kind, toBits: n.ToBits, convSign: n.ConvSign, vt: n.VT, in0: n.Ins[0]}
		case pegasus.KAddrOf:
			key = cseKey{kind: n.Kind, obj: int(n.Obj)}
		case pegasus.KConst:
			key = cseKey{kind: n.Kind, cval: n.ConstVal, vt: n.VT}
		default:
			continue
		}
		if prev, ok := seen[key]; ok && prev != n {
			// Respect BDD canonicalization: keep the node that carries a
			// BDD if only one does.
			g.ReplaceUses(n, pegasus.OutValue, pegasus.V(prev))
			changed = true
			continue
		}
		seen[key] = n
	}
	return changed, nil
}

func isCommutative(op cminor.BinOpKind) bool {
	switch op {
	case cminor.OpAdd, cminor.OpMul, cminor.OpAnd, cminor.OpOr, cminor.OpXor,
		cminor.OpEq, cminor.OpNe:
		return true
	}
	return false
}

func refOrder(a, b pegasus.Ref) bool {
	if a.N.ID != b.N.ID {
		return a.N.ID < b.N.ID
	}
	return a.Out < b.Out
}

// deadCode removes nodes whose outputs nobody uses, starting from the
// side-effect roots (return, stores, calls). Loads whose value is unused
// are removed too, splicing their token inputs to their token consumers
// (reads commute, so dropping a read never changes memory).
func deadCode(c *ctx) (bool, error) {
	g := c.g
	changed := false
	// First: loads with no value uses but live tokens get spliced out.
	uses := g.Uses()
	for _, n := range g.Nodes {
		if n.Dead || n.Kind != pegasus.KLoad {
			continue
		}
		hasValUse := false
		for _, u := range uses[n] {
			if u.Out == pegasus.OutValue {
				hasValUse = true
				break
			}
		}
		if !hasValUse {
			spliceTokens(g, n)
			n.Dead = true
			changed = true
		}
	}
	// Mark phase.
	live := map[*pegasus.Node]bool{}
	var stack []*pegasus.Node
	push := func(n *pegasus.Node) {
		if n != nil && !n.Dead && !live[n] {
			live[n] = true
			stack = append(stack, n)
		}
	}
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		switch n.Kind {
		case pegasus.KReturn, pegasus.KStore, pegasus.KCall:
			push(n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n.EachInput(func(r *pegasus.Ref, p pegasus.Port, i int) {
			if r.Valid() {
				push(r.N)
			}
		})
	}
	for _, n := range g.Nodes {
		if !n.Dead && !live[n] {
			n.Dead = true
			changed = true
		}
	}
	return changed, nil
}

// spliceTokens reroutes a memory node's token consumers to its token
// producers, preserving the transitive ordering (the Section 4.1 rule:
// "its token input is connected to its token output"). Consumers with a
// fixed single-token port (etas, merges, returns, token generators) get a
// combine when the node had several token inputs.
func spliceTokens(g *pegasus.Graph, n *pegasus.Node) {
	ins := append([]pegasus.Ref(nil), n.Toks...)
	// Single replacement ref, combining when needed (lazily created).
	var combined pegasus.Ref
	single := func() pegasus.Ref {
		if combined.Valid() {
			return combined
		}
		switch len(ins) {
		case 0:
			// Tokenless op (immutable load) with a consumer: the entry
			// token is always available.
			combined = pegasus.T(g.Entry)
		case 1:
			combined = ins[0]
		default:
			comb := g.NewNode(pegasus.KCombine, n.Hyper)
			comb.Toks = append(comb.Toks, ins...)
			combined = pegasus.T(comb)
		}
		return combined
	}
	for _, user := range g.Nodes {
		if user.Dead || user == n {
			continue
		}
		multi := user.IsMemOp() || user.Kind == pegasus.KCall || user.Kind == pegasus.KCombine
		if multi {
			found := false
			for i := 0; i < len(user.Toks); i++ {
				if user.Toks[i].N == n {
					user.Toks = append(user.Toks[:i], user.Toks[i+1:]...)
					i--
					found = true
				}
			}
			if found {
				for _, in := range ins {
					user.AddTok(in)
				}
			}
			continue
		}
		// Fixed-arity ports: substitute in place.
		for i := range user.Toks {
			if user.Toks[i].N == n {
				user.Toks[i] = single()
			}
		}
	}
}
