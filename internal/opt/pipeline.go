package opt

import (
	"sort"

	"spatial/internal/affine"
	"spatial/internal/pegasus"
)

// This file implements the loop pipelining transformations of paper
// Section 6: read-only loop splitting (6.1), monotone-address loops
// (6.2), and loop decoupling with token generators (6.3). All three
// operate on a location class's token circuit inside a loop hyperblock:
//
//	entry eta → [token merge tm] → class ops … → boundary combine
//	     ↑___________ back eta ________________________|
//
// Serialization across iterations comes from the back eta waiting for the
// boundary combine. The transformations reroute the back eta straight to
// tm (a free-running "generator" loop), leaving the per-iteration
// boundary combine consumed by the exit etas (the "collector"), and — for
// decoupling — inserting a token generator tk(d) that paces the trailing
// access group.

// circuit describes one class's token plumbing in a loop hyperblock.
type circuit struct {
	class   int
	tm      *pegasus.Node // token merge
	backEta *pegasus.Node
	ops     []*pegasus.Node // loads/stores of the class in the hyperblock
	calls   bool            // a call touches the class in the loop
}

// findCircuit locates the token circuit of class cl in loop hyperblock h.
// It requires the single-hyperblock loop shape: the back eta lives in the
// same hyperblock.
func findCircuit(c *ctx, h int, cl int) (*circuit, bool) {
	g := c.g
	cir := &circuit{class: cl}
	for _, n := range g.NodesInHyper(h) {
		if n.Dead {
			continue
		}
		switch {
		case n.Kind == pegasus.KMerge && n.TokenOnly && int(n.TokClass) == cl:
			if cir.tm != nil {
				return nil, false
			}
			cir.tm = n
		case n.IsMemOp() && int(n.Class) == cl:
			cir.ops = append(cir.ops, n)
		case n.Kind == pegasus.KCall:
			for _, cc := range c.prog.Alias.ClassesOf(n.RW) {
				if int(cc) == cl {
					cir.calls = true
				}
			}
		}
	}
	if cir.tm == nil {
		return nil, false
	}
	backs := 0
	for _, in := range cir.tm.Toks {
		if !in.Valid() {
			return nil, false
		}
		if g.IsBackEdge(in.N, cir.tm) {
			backs++
			if in.N.Kind != pegasus.KEta || in.N.Hyper != h {
				return nil, false
			}
			cir.backEta = in.N
		}
	}
	if backs != 1 || cir.backEta == nil {
		return nil, false
	}
	sort.Slice(cir.ops, func(i, j int) bool { return cir.ops[i].ID < cir.ops[j].ID })
	return cir, true
}

// alreadyFree reports whether the generator loop is already free-running.
func (cir *circuit) alreadyFree() bool {
	return cir.backEta.Toks[0].N == cir.tm
}

// freeRun reroutes the back eta to circulate the class token without
// waiting for the iteration's accesses. The old boundary token keeps its
// other consumers (the exit etas), which act as the collector loop.
func (cir *circuit) freeRun() {
	cir.backEta.Toks[0] = pegasus.T(cir.tm)
}

// classesIn returns the distinct classes with a token merge in hyper h.
func classesIn(g *pegasus.Graph, h int) []int {
	var out []int
	seen := map[int]bool{}
	for _, n := range g.NodesInHyper(h) {
		if !n.Dead && n.Kind == pegasus.KMerge && n.TokenOnly && !seen[int(n.TokClass)] {
			seen[int(n.TokClass)] = true
			out = append(out, int(n.TokClass))
		}
	}
	sort.Ints(out)
	return out
}

// readOnlyLoops applies the Section 6.1 transformation: a class accessed
// only by loads inside a loop gets a free-running token generator loop so
// reads from many iterations issue simultaneously; the exit etas keep
// collecting every iteration's read tokens, so the loop still terminates
// only after all reads complete.
func readOnlyLoops(c *ctx) (bool, error) {
	return pipelineLoops(c, false, false)
}

// monotoneLoops applies Section 6.2: classes whose in-loop accesses
// (including stores) all advance strictly monotonically, with any
// same-iteration conflicts already ordered by retained token edges, also
// get the free-running treatment.
func monotoneLoops(c *ctx) (bool, error) {
	return pipelineLoops(c, true, false)
}

// loopDecouple applies Section 6.3 on top: two access groups at a
// constant dependence distance are split; the trailing group is paced by
// a token generator tk(d) credited by the leading group's completions.
func loopDecouple(c *ctx) (bool, error) {
	return pipelineLoops(c, true, true)
}

func pipelineLoops(c *ctx, allowWrites, decouple bool) (bool, error) {
	g := c.g
	changed := false
	for h := range g.Hypers {
		hb := g.Hypers[h]
		if !hb.IsLoop || hb.LoopPred == nil || hb.LoopPred.Hyper != h {
			continue
		}
		inds := affine.FindInductions(g, h)
		invariant := func(n *pegasus.Node) bool {
			switch n.Kind {
			case pegasus.KConst, pegasus.KAddrOf, pegasus.KParam:
				return true
			case pegasus.KMerge:
				if n.Hyper != h || n.TokenOnly {
					return false
				}
				le := &hoister{c: c, le: &loopEntry{hyper: h}, state: map[*pegasus.Node]int8{}}
				return le.identityMerge(n)
			}
			return false
		}
		for _, cl := range classesIn(g, h) {
			cir, ok := findCircuit(c, h, cl)
			if !ok || cir.calls || cir.alreadyFree() {
				continue
			}
			if len(cir.ops) == 0 {
				// Untouched class: circulate freely.
				cir.freeRun()
				changed = true
				continue
			}
			allReads := true
			for _, op := range cir.ops {
				if op.Kind != pegasus.KLoad {
					allReads = false
					break
				}
			}
			if allReads {
				// Section 6.1.
				cir.freeRun()
				changed = true
				continue
			}
			if !allowWrites {
				continue
			}
			ok, groups := classifyAccesses(g, cir, inds, invariant)
			if !ok {
				continue
			}
			switch {
			case len(groups) == 1:
				// Section 6.2: all accesses monotone, no cross-iteration
				// conflicts.
				cir.freeRun()
				changed = true
			case len(groups) == 2 && decouple:
				if decoupleGroups(c, h, cir, groups) {
					changed = true
				}
			}
		}
	}
	return changed, nil
}

// group is a set of same-offset accesses within a class.
type group struct {
	offset int64
	ops    []*pegasus.Node
}

// classifyAccesses checks the affine structure required by Sections
// 6.2/6.3: every access decomposes to the same base terms plus one
// induction atom with a fixed coefficient; per-iteration movement covers
// the access width; accesses group by constant offset. It returns the
// groups sorted by offset in the direction of movement (trailing group
// first).
func classifyAccesses(g *pegasus.Graph, cir *circuit, inds map[*pegasus.Node]*affine.Induction, invariant func(*pegasus.Node) bool) (bool, []*group) {
	type shape struct {
		expr  affine.Expr
		bytes int
	}
	exprs := make([]shape, len(cir.ops))
	for i, op := range cir.ops {
		e := affine.Decompose(op.Ins[0].N)
		if !affine.Monotone(e, inds, invariant, op.Bytes) {
			return false, nil
		}
		exprs[i] = shape{expr: e, bytes: op.Bytes}
	}
	// All pairs must share the same symbolic part; group by the constant
	// difference measured in iterations.
	base := exprs[0].expr
	var move int64
	for a, coeff := range base.Terms {
		if iv, ok := inds[a]; ok {
			move = coeff * iv.Step
		}
	}
	if move == 0 {
		return false, nil
	}
	byOffset := map[int64]*group{}
	for i, s := range exprs {
		d, ok := affine.Distance(base, s.expr, inds)
		if !ok {
			// Either differing symbolic parts or a fractional iteration
			// distance; only the exactly-aligned cases are transformed.
			return false, nil
		}
		grp := byOffset[d]
		if grp == nil {
			grp = &group{offset: d}
			byOffset[d] = grp
		}
		grp.ops = append(grp.ops, cir.ops[i])
	}
	var groups []*group
	for _, grp := range byOffset {
		groups = append(groups, grp)
	}
	// Offsets are measured in iterations (Distance divides by the
	// per-iteration movement), so regardless of direction the group with
	// the smaller offset revisits addresses the larger-offset group
	// touched earlier — it is the trailing group and must wait.
	sort.Slice(groups, func(i, j int) bool { return groups[i].offset < groups[j].offset })
	return true, groups
}

// decoupleGroups splits the class circuit into two independent loops with
// a token generator bounding the slip (Figure 16).
func decoupleGroups(c *ctx, h int, cir *circuit, groups []*group) bool {
	g := c.g
	trail, lead := groups[0], groups[1]
	d := lead.offset - trail.offset
	if d < 0 {
		d = -d
	}
	if d == 0 || d > 1<<20 {
		return false
	}
	// Same-wave addresses of the two groups are provably distinct, so
	// token removal should already have cut any cross-group edges; if one
	// survives (unusual pass combinations), leave the circuit alone.
	inGroup := func(grp *group, n *pegasus.Node) bool {
		for _, op := range grp.ops {
			if op == n {
				return true
			}
		}
		return false
	}
	for _, op := range cir.ops {
		for _, t := range op.Toks {
			if inGroup(trail, op) && inGroup(lead, t.N) ||
				inGroup(lead, op) && inGroup(trail, t.N) {
				return false
			}
		}
	}
	// The leading group runs freely off the class merge; credits flow
	// from its per-iteration completions into tk(d), which paces the
	// trailing group.
	cir.freeRun()
	var credit pegasus.Ref
	if len(lead.ops) == 1 {
		credit = pegasus.T(lead.ops[0])
	} else {
		comb := g.NewNode(pegasus.KCombine, h)
		for _, op := range lead.ops {
			comb.Toks = append(comb.Toks, pegasus.T(op))
		}
		credit = pegasus.T(comb)
	}
	tk := g.NewNode(pegasus.KTokenGen, h)
	tk.TokN = int(d)
	// The predicate input fires once per wave — the hyperblock's control
	// wave — so the trailing group receives a token even in the final
	// (squashed) wave. Credits self-balance because squashed leading
	// accesses still emit tokens.
	tk.Preds = []pegasus.Ref{pegasus.V(g.ConstPred(h, true))}
	tk.Toks = []pegasus.Ref{credit}
	for _, op := range trail.ops {
		// Keep intra-group ordering edges and the class merge token (it
		// carries the ordering against accesses *before* the loop and is
		// free-running per wave), and add the generator's pacing token.
		var kept []pegasus.Ref
		for _, t := range op.Toks {
			if inGroup(trail, t.N) {
				kept = append(kept, t)
			}
		}
		kept = append(kept, pegasus.T(cir.tm))
		op.Toks = kept
		op.AddTok(pegasus.T(tk))
	}
	return true
}
