package opt

import (
	"spatial/internal/pegasus"
)

// This file implements loop-invariant load motion (paper Section 5.4).
// A load inside a loop hyperblock is invariant when its address, its
// predicate, and its token input are all loop-invariant; the token input
// is invariant exactly when the load's location class is untouched inside
// the loop (its token merge circulates unchanged). Such a load is lifted
// in front of the loop, and its value circulates through a fresh
// merge/eta pair, mirroring the paper's loop-header hyperblock.
//
// Loop-invariant *stores* are never hoisted: their token input is fresh
// every iteration (Section 5.4's closing remark).

// loopEntry describes a loop hyperblock with a unique entry edge.
type loopEntry struct {
	hyper     int
	entryPred *pegasus.Node // predicate (in the predecessor hyperblock) of the entry edge
	predHyper int
}

// findLoopEntry checks that every merge of the loop has exactly one
// non-back-edge input, all arriving from the same predecessor hyperblock
// under the same eta predicate.
func findLoopEntry(g *pegasus.Graph, hyper int) (*loopEntry, bool) {
	hb := g.Hypers[hyper]
	if !hb.IsLoop || hb.LoopPred == nil || hb.LoopPred.Hyper != hyper {
		return nil, false
	}
	le := &loopEntry{hyper: hyper, predHyper: -1}
	for _, m := range g.NodesInHyper(hyper) {
		if m.Dead || m.Kind != pegasus.KMerge {
			continue
		}
		entries := 0
		srcs := m.Ins
		if m.TokenOnly {
			srcs = m.Toks
		}
		for _, in := range srcs {
			if !in.Valid() || g.IsBackEdge(in.N, m) {
				continue
			}
			entries++
			eta := in.N
			if eta.Kind != pegasus.KEta {
				return nil, false
			}
			p := eta.Preds[0].N
			if le.entryPred == nil {
				le.entryPred = p
				le.predHyper = eta.Hyper
			} else if le.entryPred != p {
				return nil, false
			}
		}
		if entries != 1 {
			return nil, false
		}
	}
	if le.entryPred == nil {
		return nil, false
	}
	return le, true
}

// invariantValue reports whether a value node is loop-invariant within
// hyper, and (when materialize is true) returns a reference usable in the
// predecessor hyperblock. Static sources are usable anywhere; invariant
// merges map to their entry value; pure ops are cloned.
type hoister struct {
	c     *ctx
	le    *loopEntry
	memo  map[*pegasus.Node]pegasus.Ref
	state map[*pegasus.Node]int8 // 0 unknown, 1 invariant, 2 variant
}

func (h *hoister) invariant(n *pegasus.Node) bool {
	switch h.state[n] {
	case 1:
		return true
	case 2:
		return false
	}
	h.state[n] = 2 // default for cycles
	res := false
	switch n.Kind {
	case pegasus.KConst, pegasus.KAddrOf, pegasus.KParam:
		res = true
	case pegasus.KMerge:
		if n.Hyper == h.le.hyper {
			res = h.identityMerge(n)
		}
	case pegasus.KBinOp, pegasus.KUnOp, pegasus.KConv:
		if n.Hyper == h.le.hyper {
			res = true
			for _, in := range n.Ins {
				if !h.invariant(in.N) {
					res = false
					break
				}
			}
		}
	}
	if res {
		h.state[n] = 1
	}
	return res
}

// identityMerge reports whether a merge circulates its value unchanged
// (back-edge input is an eta whose data source is the merge itself).
func (h *hoister) identityMerge(m *pegasus.Node) bool {
	g := h.c.g
	srcs := m.Ins
	if m.TokenOnly {
		srcs = m.Toks
	}
	for _, in := range srcs {
		if !in.Valid() || !g.IsBackEdge(in.N, m) {
			continue
		}
		eta := in.N
		if eta.Kind != pegasus.KEta {
			return false
		}
		var src pegasus.Ref
		if m.TokenOnly {
			src = eta.Toks[0]
		} else {
			src = eta.Ins[0]
		}
		if src.N != m {
			return false
		}
	}
	return true
}

// entryValue returns the pre-loop value of an invariant node, cloning
// pure computation into the predecessor hyperblock as needed.
func (h *hoister) entryValue(n *pegasus.Node) pegasus.Ref {
	if r, ok := h.memo[n]; ok {
		return r
	}
	g := h.c.g
	var r pegasus.Ref
	switch n.Kind {
	case pegasus.KConst, pegasus.KAddrOf, pegasus.KParam:
		r = pegasus.V(n)
	case pegasus.KMerge:
		// The unique entry eta's data source.
		srcs := n.Ins
		for _, in := range srcs {
			if in.Valid() && !g.IsBackEdge(in.N, n) {
				r = in.N.Ins[0] // eta's source
				break
			}
		}
	case pegasus.KBinOp, pegasus.KUnOp, pegasus.KConv:
		clone := g.NewNode(n.Kind, h.le.predHyper)
		clone.VT = n.VT
		clone.BinOp = n.BinOp
		clone.UnOp = n.UnOp
		clone.Unsigned = n.Unsigned
		clone.FromBits = n.FromBits
		clone.ToBits = n.ToBits
		clone.ConvSign = n.ConvSign
		for _, in := range n.Ins {
			clone.Ins = append(clone.Ins, h.entryValue(in.N))
		}
		r = pegasus.V(clone)
	}
	h.memo[n] = r
	return r
}

// loopInvariantMotion hoists invariant loads out of single-entry loop
// hyperblocks.
func loopInvariantMotion(c *ctx) (bool, error) {
	g := c.g
	changed := false
	for hyper := range g.Hypers {
		if !g.Hypers[hyper].IsLoop {
			continue
		}
		le, ok := findLoopEntry(g, hyper)
		if !ok {
			continue
		}
		h := &hoister{c: c, le: le, memo: map[*pegasus.Node]pegasus.Ref{}, state: map[*pegasus.Node]int8{}}
		for _, l := range g.NodesInHyper(hyper) {
			if l.Dead || l.Kind != pegasus.KLoad {
				continue
			}
			if !h.invariant(l.Ins[0].N) {
				continue
			}
			// The predicate must hold on every iteration: the wave itself
			// or the loop-continue predicate (an unconditional body load).
			// Hoisting such a load is speculation past the loop test,
			// which is safe for side-effect-free loads (Section 3.1).
			lp := l.Preds[0].N
			if !g.IsConstTrue(lp) && lp != g.Hypers[hyper].LoopPred {
				continue
			}
			// Token input: either none (immutable object) or a single
			// identity-circulating token merge (class untouched by the
			// loop).
			var tokenMerge *pegasus.Node
			if len(l.Toks) == 1 {
				tm := l.Toks[0].N
				if tm.Kind != pegasus.KMerge || !tm.TokenOnly || tm.Hyper != hyper || !h.identityMerge(tm) {
					continue
				}
				tokenMerge = tm
			} else if len(l.Toks) != 0 {
				continue
			}
			hoistLoad(c, le, l, tokenMerge)
			changed = true
		}
	}
	return changed, nil
}

// hoistLoad moves load l in front of the loop and circulates its value.
func hoistLoad(c *ctx, le *loopEntry, l *pegasus.Node, tokenMerge *pegasus.Node) {
	g := c.g
	h := &hoister{c: c, le: le, memo: map[*pegasus.Node]pegasus.Ref{}, state: map[*pegasus.Node]int8{}}
	// Lifted load in the predecessor hyperblock.
	lift := g.NewNode(pegasus.KLoad, le.predHyper)
	lift.VT = l.VT
	lift.Bytes = l.Bytes
	lift.RW = l.RW
	lift.Class = l.Class
	lift.Pos = l.Pos
	lift.Ins = []pegasus.Ref{h.entryValue(l.Ins[0].N)}
	lift.Preds = []pegasus.Ref{pegasus.V(le.entryPred)}
	if tokenMerge != nil {
		// Take the token the entry eta was carrying into the loop, and
		// make that eta wait for the lifted load instead.
		var entryEta *pegasus.Node
		for _, in := range tokenMerge.Toks {
			if in.Valid() && !g.IsBackEdge(in.N, tokenMerge) {
				entryEta = in.N
				break
			}
		}
		lift.Toks = []pegasus.Ref{entryEta.Toks[0]}
		entryEta.Toks[0] = pegasus.T(lift)
	}
	// Circulate the loaded value: entry eta → merge ←(back) eta.
	inEta := g.NewNode(pegasus.KEta, le.predHyper)
	inEta.VT = l.VT
	inEta.Ins = []pegasus.Ref{pegasus.V(lift)}
	inEta.Preds = []pegasus.Ref{pegasus.V(le.entryPred)}
	m := g.NewNode(pegasus.KMerge, le.hyper)
	m.VT = l.VT
	backEta := g.NewNode(pegasus.KEta, le.hyper)
	backEta.VT = l.VT
	backEta.Ins = []pegasus.Ref{pegasus.V(m)}
	backEta.Preds = []pegasus.Ref{pegasus.V(g.Hypers[le.hyper].LoopPred)}
	m.Ins = []pegasus.Ref{pegasus.V(inEta), pegasus.V(backEta)}
	g.ReplaceUses(l, pegasus.OutValue, pegasus.V(m))
	spliceTokens(g, l)
	l.Dead = true
}
