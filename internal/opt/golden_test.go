package opt

import (
	"strings"
	"testing"

	"spatial/internal/pegasus"
)

// Golden structural checks on the Section 2 example's final graph: the
// exact shape of Figure 1D. These complement the counting tests with
// checks of *how* the remaining operations are wired.
func TestSection2FinalShape(t *testing.T) {
	p := compileAt(t, section2Src, Full)
	g := p.Graph("f")

	var loads, stores, muxes []*pegasus.Node
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		switch n.Kind {
		case pegasus.KLoad:
			loads = append(loads, n)
		case pegasus.KStore:
			stores = append(stores, n)
		case pegasus.KMux:
			muxes = append(muxes, n)
		}
	}
	if len(stores) != 1 {
		t.Fatalf("stores = %d", len(stores))
	}
	st := stores[0]

	// The final store executes unconditionally (predicate constant true,
	// i.e. the hyperblock wave).
	if !g.IsConstTrue(st.Preds[0].N) {
		t.Errorf("final store's predicate is not constant true")
	}

	// Its stored value is the shift; the shift's left operand comes
	// through a mux (the forwarded a[i] value from Figure 1C).
	shift := st.Ins[1].N
	if shift.Kind != pegasus.KBinOp {
		t.Fatalf("store value is %s, want the shift", shift)
	}
	foundMuxFeed := false
	for _, in := range shift.Ins {
		if in.N.Kind == pegasus.KMux {
			foundMuxFeed = true
		}
	}
	if !foundMuxFeed {
		t.Errorf("shift not fed by the forwarding mux\n%s", g.Dump())
	}

	// The forwarding mux has two ways: the += result (under p) and the
	// constant 1 (under !p).
	if len(muxes) == 0 {
		t.Fatal("no forwarding mux")
	}
	var fwd *pegasus.Node
	for _, m := range muxes {
		for _, in := range m.Ins {
			if in.N.Kind == pegasus.KConst && in.N.ConstVal == 1 {
				fwd = m
			}
		}
	}
	if fwd == nil {
		t.Fatalf("no mux carrying the constant-1 store value\n%s", g.Dump())
	}
	if len(fwd.Ins) != 2 {
		t.Errorf("forwarding mux has %d ways, want 2", len(fwd.Ins))
	}
	// Its predicates are complementary.
	p0, p1 := fwd.Preds[0].N, fwd.Preds[1].N
	if !g.PredDisjoint(p0, p1) {
		t.Errorf("mux predicates not mutually exclusive")
	}

	// The a[i+1] load feeds the shift amount and needs no token edges
	// from the store (they commute).
	for _, l := range loads {
		for _, tok := range l.Toks {
			if tok.N == st {
				t.Errorf("a load still waits on the final store\n%s", g.Dump())
			}
		}
	}
}

// TestSection2DumpStable pins a few structural facts via the dump so
// regressions in printing or shape show up loudly.
func TestSection2DumpStable(t *testing.T) {
	p := compileAt(t, section2Src, Full)
	d := p.Graph("f").Dump()
	for _, want := range []string{"mux", "store", "'<<'", "load"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
	if strings.Count(d, "store") != 1 {
		t.Errorf("dump should mention exactly one store:\n%s", d)
	}
}
