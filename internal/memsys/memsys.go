// Package memsys models the memory systems of the paper's evaluation
// (Section 7.3): a load/store queue with a finite number of ports and
// entries feeding either a perfect memory or a realistic two-level cache
// hierarchy with a TLB. Latencies follow the paper: L1 8KB with 2-cycle
// hits, L2 256KB with 8-cycle hits, 72-cycle memory latency with 4 cycles
// between consecutive words, a 64-page TLB with a 30-cycle miss cost, and
// dual-ported memory.
package memsys

import "fmt"

// Config selects and parameterizes a memory system.
type Config struct {
	// Kind selects the hierarchy model.
	Kind Kind
	// Ports is the number of LSQ ports (requests issued per cycle).
	Ports int
	// QueueSize is the number of outstanding requests the LSQ holds.
	QueueSize int

	// PerfectLatency is the fixed latency of Kind == Perfect.
	PerfectLatency int64

	// Cache parameters (Kind == Realistic); zero values use the paper's.
	L1Bytes     int
	L1Latency   int64
	L2Bytes     int
	L2Latency   int64
	MemLatency  int64
	WordGap     int64 // cycles between consecutive words from DRAM
	LineBytes   int
	TLBPages    int
	TLBMissCost int64
	PageBytes   int
}

// Kind selects the memory model.
type Kind int

// Memory system kinds.
const (
	Perfect Kind = iota
	Realistic
)

// PerfectConfig returns the idealized memory used for upper-bound
// numbers.
func PerfectConfig() Config {
	return Config{Kind: Perfect, Ports: 2, QueueSize: 16, PerfectLatency: 2}
}

// PaperConfig returns the realistic memory system of Section 7.3 with the
// given number of ports.
func PaperConfig(ports int) Config {
	return Config{
		Kind:        Realistic,
		Ports:       ports,
		QueueSize:   16,
		L1Bytes:     8 << 10,
		L1Latency:   2,
		L2Bytes:     256 << 10,
		L2Latency:   8,
		MemLatency:  72,
		WordGap:     4,
		LineBytes:   32,
		TLBPages:    64,
		TLBMissCost: 30,
		PageBytes:   4 << 10,
	}
}

func (c Config) withDefaults() Config {
	if c.Ports <= 0 {
		c.Ports = 2
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 16
	}
	if c.PerfectLatency <= 0 {
		c.PerfectLatency = 2
	}
	if c.L1Bytes <= 0 {
		c.L1Bytes = 8 << 10
	}
	if c.L1Latency <= 0 {
		c.L1Latency = 2
	}
	if c.L2Bytes <= 0 {
		c.L2Bytes = 256 << 10
	}
	if c.L2Latency <= 0 {
		c.L2Latency = 8
	}
	if c.MemLatency <= 0 {
		c.MemLatency = 72
	}
	if c.WordGap <= 0 {
		c.WordGap = 4
	}
	if c.LineBytes <= 0 {
		c.LineBytes = 32
	}
	if c.TLBPages <= 0 {
		c.TLBPages = 64
	}
	if c.TLBMissCost <= 0 {
		c.TLBMissCost = 30
	}
	if c.PageBytes <= 0 {
		c.PageBytes = 4 << 10
	}
	return c
}

// Validate rejects nonsensical configurations with actionable messages.
// Zero fields mean "use the default" and are accepted (the entirely-zero
// Config is every default); negative values and impossible geometries
// are errors. Normalized configurations always validate.
func (c Config) Validate() error {
	if c == (Config{}) {
		return nil // all defaults
	}
	if c.Kind != Perfect && c.Kind != Realistic {
		return fmt.Errorf("memsys: unknown Kind %d; use memsys.Perfect or memsys.Realistic", c.Kind)
	}
	if c.Ports < 0 {
		return fmt.Errorf("memsys: Ports %d is negative; an LSQ needs at least one port (0 selects the default, 2)", c.Ports)
	}
	if c.QueueSize < 0 {
		return fmt.Errorf("memsys: QueueSize %d is negative; the LSQ needs at least one entry (0 selects the default, 16)", c.QueueSize)
	}
	if c.Ports > 0 && c.QueueSize > 0 && c.QueueSize < c.Ports {
		return fmt.Errorf("memsys: QueueSize %d is smaller than Ports %d; every port needs an LSQ entry to issue into", c.QueueSize, c.Ports)
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"PerfectLatency", c.PerfectLatency},
		{"L1Latency", c.L1Latency},
		{"L2Latency", c.L2Latency},
		{"MemLatency", c.MemLatency},
		{"WordGap", c.WordGap},
		{"TLBMissCost", c.TLBMissCost},
		{"L1Bytes", int64(c.L1Bytes)},
		{"L2Bytes", int64(c.L2Bytes)},
		{"LineBytes", int64(c.LineBytes)},
		{"TLBPages", int64(c.TLBPages)},
		{"PageBytes", int64(c.PageBytes)},
	} {
		if f.v < 0 {
			return fmt.Errorf("memsys: %s %d is negative; use 0 for the default or a positive value", f.name, f.v)
		}
	}
	if c.LineBytes > 0 && (c.LineBytes&(c.LineBytes-1) != 0 || c.LineBytes < 4) {
		return fmt.Errorf("memsys: LineBytes %d must be a power of two ≥ 4", c.LineBytes)
	}
	if c.PageBytes > 0 && c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("memsys: PageBytes %d must be a power of two", c.PageBytes)
	}
	if c.L1Bytes > 0 && c.LineBytes > 0 && c.L1Bytes < c.LineBytes {
		return fmt.Errorf("memsys: L1Bytes %d is smaller than one line (%d bytes)", c.L1Bytes, c.LineBytes)
	}
	return nil
}

// String names the configuration for reports.
func (c Config) String() string {
	if c.Kind == Perfect {
		return fmt.Sprintf("perfect(%d-port)", c.Ports)
	}
	return fmt.Sprintf("realistic(%d-port)", c.Ports)
}

// Level says where in the hierarchy a request was satisfied.
type Level uint8

// Hit levels.
const (
	LvlPerfect Level = iota // Kind == Perfect: fixed-latency memory
	LvlL1
	LvlL2
	LvlMem // DRAM access (L2 miss)
)

var levelNames = [...]string{LvlPerfect: "perfect", LvlL1: "L1", LvlL2: "L2", LvlMem: "mem"}

// String names the level.
func (l Level) String() string { return levelNames[l] }

// Event describes one memory request for tracing: when it arrived at the
// LSQ, when a port issued it, when its response came back, where it hit,
// and how long it stalled for a port or queue slot.
type Event struct {
	Start int64 // cycle the request reached the LSQ
	Issue int64 // cycle a port accepted it
	Done  int64 // cycle the response is available
	Load  bool
	Addr  uint32
	Bytes int
	Port  int   // which port issued the request
	Queue int   // LSQ occupancy observed at submit (before insertion)
	Level Level // hierarchy level that satisfied the request
	TLB   bool  // request took a TLB miss
}

// PortWait is the cycles the request spent waiting for a free port or
// queue slot (memory-port contention).
func (e Event) PortWait() int64 { return e.Issue - e.Start }

// Latency is the issue-to-response time.
func (e Event) Latency() int64 { return e.Done - e.Issue }

// Observer receives one Event per memory request. Implementations must
// not call back into the System.
type Observer interface {
	MemEvent(Event)
}

// Perturber adjusts individual memory responses before they are
// returned — the fault-injection hook. It sees the fully-timed Event and
// returns the completion cycle to use instead (never earlier than
// e.Issue) plus a fail flag marking the response as corrupted; a failed
// response is latched in the System and surfaced via TakeFault.
// Implementations must not call back into the System.
type Perturber interface {
	PerturbMem(e Event) (done int64, fail bool)
}

// Stats accumulates memory-system statistics.
type Stats struct {
	Loads     int64
	Stores    int64
	L1Hits    int64
	L1Misses  int64
	L2Hits    int64
	L2Misses  int64
	TLBMisses int64
	// StallCycles counts cycles requests spent waiting for a port or a
	// queue slot.
	StallCycles int64
}

// System is an LSQ in front of a cache hierarchy. It is a timing model
// only; data storage lives in the simulator's flat memory.
type System struct {
	cfg   Config
	stats Stats

	// outstanding completion times (bounded by QueueSize).
	outstanding []int64
	// Per-cycle issue counts for port limiting. Submit times are
	// non-decreasing (both simulation engines submit at the current
	// cycle), so counts live in a ring of issueWindow cycles starting at
	// issueBase (the highest submit time seen); the rare probe beyond the
	// window — a request stalled far into the future — falls back to the
	// overflow map.
	issueCnt  []int32
	issueBase int64
	issueOvf  map[int64]int32

	l1, l2 *cache
	tlb    *tlbModel
	// nextDRAMFree models the word-serial DRAM channel.
	nextDRAMFree int64

	// obs, when non-nil, receives one Event per request.
	obs Observer
	// perturb, when non-nil, may stretch or fail each response.
	perturb Perturber
	// faulted marks that a perturbed response was flagged as corrupted.
	faulted bool
}

// SetObserver installs (or clears, with nil) the event observer.
func (s *System) SetObserver(o Observer) { s.obs = o }

// SetPerturber installs (or clears, with nil) the response perturber.
func (s *System) SetPerturber(p Perturber) { s.perturb = p }

// TakeFault reports whether a perturbed response was marked corrupted
// since the last call, clearing the flag.
func (s *System) TakeFault() bool {
	f := s.faulted
	s.faulted = false
	return f
}

// New creates a memory system.
func New(cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{cfg: cfg, issueCnt: make([]int32, issueWindow)}
	if cfg.Kind == Realistic {
		s.l1 = newCache(cfg.L1Bytes, cfg.LineBytes, 2)
		s.l2 = newCache(cfg.L2Bytes, cfg.LineBytes, 4)
		s.tlb = newTLB(cfg.TLBPages, cfg.PageBytes)
	}
	return s
}

// Stats returns the accumulated statistics.
func (s *System) Stats() Stats { return s.stats }

// Config returns the (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// Submit models one memory request arriving at cycle t and returns the
// cycle at which its response is available.
func (s *System) Submit(t int64, isLoad bool, addr uint32, bytes int) int64 {
	if isLoad {
		s.stats.Loads++
	} else {
		s.stats.Stores++
	}
	start := t
	queueAtSubmit := len(s.outstanding)
	// Wait for a free LSQ slot.
	for len(s.outstanding) >= s.cfg.QueueSize {
		earliest := s.outstanding[0]
		idx := 0
		for i, c := range s.outstanding {
			if c < earliest {
				earliest, idx = c, i
			}
		}
		if earliest > t {
			t = earliest
		}
		s.outstanding = append(s.outstanding[:idx], s.outstanding[idx+1:]...)
	}
	// Wait for a port.
	s.issueAdvance(start)
	for int(s.issueAt(t)) >= s.cfg.Ports {
		t++
	}
	port := int(s.issueAt(t))
	s.issueAdd(t)
	s.stats.StallCycles += t - start
	var done int64
	level := LvlPerfect
	tlbMiss := false
	if s.cfg.Kind == Perfect {
		done = t + s.cfg.PerfectLatency
	} else {
		var lat int64
		lat, level, tlbMiss = s.accessLatency(t, addr, bytes)
		done = t + lat
	}
	ev := Event{
		Start: start, Issue: t, Done: done,
		Load: isLoad, Addr: addr, Bytes: bytes,
		Port: port, Queue: queueAtSubmit, Level: level, TLB: tlbMiss,
	}
	if s.perturb != nil {
		nd, fail := s.perturb.PerturbMem(ev)
		if nd > done {
			done = nd
			ev.Done = nd
		}
		if fail {
			s.faulted = true
		}
	}
	s.outstanding = append(s.outstanding, done)
	if s.obs != nil {
		s.obs.MemEvent(ev)
	}
	return done
}

// issueWindow is the span of cycles whose issue counts live in the
// ring; stalls beyond it spill to the overflow map.
const issueWindow = 1024

// issueAdvance moves the ring window forward to a new submit time,
// retiring counts for cycles that can never be probed again (every
// probe is at or above its request's submit time, and submit times are
// non-decreasing) and pulling overflow entries that fell into range.
func (s *System) issueAdvance(t int64) {
	if t <= s.issueBase {
		return
	}
	if adv := t - s.issueBase; adv >= issueWindow {
		clear(s.issueCnt)
	} else {
		for c := s.issueBase; c < t; c++ {
			s.issueCnt[c&(issueWindow-1)] = 0
		}
	}
	s.issueBase = t
	if len(s.issueOvf) > 0 {
		for c, n := range s.issueOvf {
			if c < t {
				delete(s.issueOvf, c)
			} else if c < t+issueWindow {
				s.issueCnt[c&(issueWindow-1)] = n
				delete(s.issueOvf, c)
			}
		}
	}
}

func (s *System) issueAt(c int64) int32 {
	if c < s.issueBase+issueWindow {
		return s.issueCnt[c&(issueWindow-1)]
	}
	return s.issueOvf[c]
}

func (s *System) issueAdd(c int64) {
	if c < s.issueBase+issueWindow {
		s.issueCnt[c&(issueWindow-1)]++
		return
	}
	if s.issueOvf == nil {
		s.issueOvf = map[int64]int32{}
	}
	s.issueOvf[c]++
}

func (s *System) accessLatency(t int64, addr uint32, bytes int) (int64, Level, bool) {
	lat := int64(0)
	tlbMiss := false
	if !s.tlb.lookup(addr) {
		s.stats.TLBMisses++
		lat += s.cfg.TLBMissCost
		tlbMiss = true
	}
	if s.l1.lookup(addr) {
		s.stats.L1Hits++
		return lat + s.cfg.L1Latency, LvlL1, tlbMiss
	}
	s.stats.L1Misses++
	s.l1.fill(addr)
	if s.l2.lookup(addr) {
		s.stats.L2Hits++
		return lat + s.cfg.L1Latency + s.cfg.L2Latency, LvlL2, tlbMiss
	}
	s.stats.L2Misses++
	s.l2.fill(addr)
	// DRAM: base latency plus word-serial transfer of the line; the
	// channel is busy WordGap cycles per word.
	words := int64(s.cfg.LineBytes / 4)
	busyUntil := s.nextDRAMFree
	if t > busyUntil {
		busyUntil = t
	}
	transfer := s.cfg.MemLatency + s.cfg.WordGap*(words-1)
	s.nextDRAMFree = busyUntil + s.cfg.WordGap*words
	return lat + s.cfg.L1Latency + s.cfg.L2Latency + (busyUntil - t) + transfer, LvlMem, tlbMiss
}

// --- cache model ---

type cache struct {
	sets      int
	ways      int
	lineShift uint
	// tags[set][way]; lru[set][way] = recency counter
	tags  [][]uint32
	valid [][]bool
	lru   [][]int64
	clock int64
}

func newCache(totalBytes, lineBytes, ways int) *cache {
	lines := totalBytes / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	c := &cache{sets: sets, ways: ways, lineShift: shift}
	c.tags = make([][]uint32, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]int64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint32, ways)
		c.valid[i] = make([]bool, ways)
		c.lru[i] = make([]int64, ways)
	}
	return c
}

func (c *cache) addr2set(addr uint32) (set int, tag uint32) {
	line := addr >> c.lineShift
	return int(line) % c.sets, line
}

// lookup probes the cache, updating LRU on hit.
func (c *cache) lookup(addr uint32) bool {
	set, tag := c.addr2set(addr)
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.clock
			return true
		}
	}
	return false
}

// fill inserts the line containing addr, evicting the LRU way.
func (c *cache) fill(addr uint32) {
	set, tag := c.addr2set(addr)
	c.clock++
	victim := 0
	for w := 0; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.valid[set][victim] = true
	c.tags[set][victim] = tag
	c.lru[set][victim] = c.clock
}

// --- TLB model ---

type tlbModel struct {
	pages     int
	pageShift uint
	entries   map[uint32]int64 // page → recency
	clock     int64
}

func newTLB(pages, pageBytes int) *tlbModel {
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	return &tlbModel{pages: pages, pageShift: shift, entries: map[uint32]int64{}}
}

func (t *tlbModel) lookup(addr uint32) bool {
	page := addr >> t.pageShift
	t.clock++
	if _, ok := t.entries[page]; ok {
		t.entries[page] = t.clock
		return true
	}
	// Miss: insert, evicting LRU if full.
	if len(t.entries) >= t.pages {
		var lruPage uint32
		lruTime := int64(1) << 62
		for p, tm := range t.entries {
			if tm < lruTime {
				lruTime, lruPage = tm, p
			}
		}
		delete(t.entries, lruPage)
	}
	t.entries[page] = t.clock
	return false
}
