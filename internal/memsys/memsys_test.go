package memsys

import "testing"

func TestPerfectLatency(t *testing.T) {
	s := New(PerfectConfig())
	done := s.Submit(10, true, 0x1000, 4)
	if done != 12 {
		t.Errorf("perfect load done at %d, want 12", done)
	}
}

func TestPortLimit(t *testing.T) {
	cfg := PerfectConfig()
	cfg.Ports = 1
	s := New(cfg)
	d1 := s.Submit(5, true, 0x1000, 4)
	d2 := s.Submit(5, true, 0x2000, 4)
	if d2 <= d1 {
		t.Errorf("second request on a 1-port system should be delayed: %d vs %d", d1, d2)
	}
	if d2 != d1+1 {
		t.Errorf("second request should issue one cycle later, got %d vs %d", d1, d2)
	}
}

func TestDualPorted(t *testing.T) {
	cfg := PerfectConfig()
	cfg.Ports = 2
	s := New(cfg)
	d1 := s.Submit(5, true, 0x1000, 4)
	d2 := s.Submit(5, true, 0x2000, 4)
	d3 := s.Submit(5, true, 0x3000, 4)
	if d1 != d2 {
		t.Errorf("two ports should serve two requests the same cycle: %d vs %d", d1, d2)
	}
	if d3 != d1+1 {
		t.Errorf("third request should slip a cycle: %d vs %d", d3, d1)
	}
}

func TestQueueFull(t *testing.T) {
	cfg := PerfectConfig()
	cfg.QueueSize = 2
	cfg.Ports = 2
	cfg.PerfectLatency = 10
	s := New(cfg)
	s.Submit(0, true, 0x1000, 4) // completes at 10
	s.Submit(0, true, 0x2000, 4) // completes at 10
	d3 := s.Submit(0, true, 0x3000, 4)
	if d3 < 20 {
		t.Errorf("request with full queue should wait for a slot: done at %d", d3)
	}
}

func TestRealisticCacheHitMiss(t *testing.T) {
	s := New(PaperConfig(2))
	// First access: TLB miss + L1 miss + L2 miss → long latency.
	d1 := s.Submit(0, true, 0x1000, 4) - 0
	// Second access to the same line: everything hits.
	d2 := s.Submit(1000, true, 0x1004, 4) - 1000
	if d2 >= d1 {
		t.Errorf("hit latency %d not smaller than cold miss %d", d2, d1)
	}
	if d2 != s.Config().L1Latency {
		t.Errorf("L1 hit latency = %d, want %d", d2, s.Config().L1Latency)
	}
	st := s.Stats()
	if st.L1Hits != 1 || st.L1Misses != 1 || st.L2Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.TLBMisses != 1 {
		t.Errorf("TLB misses = %d, want 1", st.TLBMisses)
	}
}

func TestL2Hit(t *testing.T) {
	s := New(PaperConfig(2))
	s.Submit(0, true, 0x1000, 4)
	// Evict from the 8KB 2-way L1 by touching two more lines mapping to
	// the same set (stride = L1 size / ways = 4KB).
	s.Submit(100, true, 0x1000+4096, 4)
	s.Submit(200, true, 0x1000+8192, 4)
	// Original line should now hit in L2 but miss in L1.
	d := s.Submit(10000, true, 0x1000, 4) - 10000
	want := s.Config().L1Latency + s.Config().L2Latency
	if d != want {
		t.Errorf("L2 hit latency = %d, want %d", d, want)
	}
}

func TestTLBEviction(t *testing.T) {
	cfg := PaperConfig(2)
	s := New(cfg)
	// Touch TLBPages+1 distinct pages, then re-touch the first: miss.
	for i := 0; i <= cfg.TLBPages; i++ {
		s.Submit(int64(i)*1000, true, uint32(i*cfg.PageBytes), 4)
	}
	before := s.Stats().TLBMisses
	s.Submit(1e7, true, 0, 4)
	if s.Stats().TLBMisses != before+1 {
		t.Error("LRU page was not evicted")
	}
}

func TestStatsCounts(t *testing.T) {
	s := New(PerfectConfig())
	s.Submit(0, true, 0, 4)
	s.Submit(0, false, 4, 4)
	s.Submit(0, false, 8, 4)
	st := s.Stats()
	if st.Loads != 1 || st.Stores != 2 {
		t.Errorf("loads=%d stores=%d", st.Loads, st.Stores)
	}
}

func TestDRAMChannelSerializes(t *testing.T) {
	s := New(PaperConfig(2))
	// Two cold misses to different lines at the same time: the second
	// line's transfer waits for the channel.
	d1 := s.Submit(0, true, 0x10000, 4)
	d2 := s.Submit(0, true, 0x20000, 4)
	if d2 <= d1 {
		t.Errorf("DRAM channel should serialize line fills: %d vs %d", d1, d2)
	}
}

func TestCacheLRU(t *testing.T) {
	c := newCache(128, 32, 2) // 2 sets, 2 ways
	if c.lookup(0) {
		t.Error("cold cache hit")
	}
	c.fill(0)
	c.fill(128) // same set as 0 (2 sets × 32B lines → set = line % 2)
	if !c.lookup(0) || !c.lookup(128) {
		t.Error("both ways should be resident")
	}
	c.lookup(0) // make 0 most recent
	c.fill(256) // evicts 128
	if !c.lookup(0) {
		t.Error("LRU evicted the wrong way")
	}
	if c.lookup(128) {
		t.Error("128 should have been evicted")
	}
}
