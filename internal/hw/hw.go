// Package hw estimates hardware cost for Pegasus graphs. Spatial
// computation synthesizes every operation into its own circuit operator
// (the ASPLOS'04 ASH evaluation reports per-program area and resource
// counts); this package provides the analogous static estimates: operator
// counts by functional class, an area score in gate-equivalent units,
// wire (edge) counts, and the combinational depth of each hyperblock's
// wave.
package hw

import (
	"fmt"
	"sort"
	"strings"

	"spatial/internal/cminor"
	"spatial/internal/pegasus"
)

// Area units per operator, in rough gate equivalents for 32-bit
// datapaths. The absolute scale is arbitrary; ratios follow standard
// synthesis folklore (a multiplier ≈ 20 adders, a divider ≈ 80, muxes
// and token logic are cheap).
const (
	areaAdder   = 100
	areaLogic   = 40
	areaShift   = 90
	areaCompare = 60
	areaMul     = 2000
	areaDiv     = 8000
	areaMux2    = 30 // per 2:1 mux slice; n-way decoded mux scales by n-1
	areaMerge   = 35
	areaEta     = 20
	areaReg     = 60 // pipeline register on an edge
	areaToken   = 8  // token latch / combine input
	areaMemPort = 400
	areaTokGen  = 120
	areaConv    = 15
	areaCall    = 200
)

// Report is the cost estimate of one function's circuit.
type Report struct {
	Name string
	// Ops counts operators by class name.
	Ops map[string]int
	// Area is the gate-equivalent estimate.
	Area int64
	// Edges counts point-to-point connections (wires with handshake
	// registers).
	Edges int
	// MemPorts is the number of memory operations (each needs LSQ
	// access circuitry).
	MemPorts int
	// Depth maps hyperblock ID to its combinational (unit-latency)
	// depth: the longest forward path through one wave.
	Depth map[int]int
	// MaxDepth is the deepest hyperblock's depth.
	MaxDepth int
}

// Estimate computes the report for one graph.
func Estimate(g *pegasus.Graph) *Report {
	r := &Report{Name: g.Name, Ops: map[string]int{}, Depth: map[int]int{}}
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		class, area := classify(n)
		r.Ops[class]++
		r.Area += area
		n.EachInput(func(ref *pegasus.Ref, p pegasus.Port, i int) {
			if ref.Valid() {
				r.Edges++
				r.Area += areaReg / 2 // handshake register amortized per edge
			}
		})
		if n.IsMemOp() {
			r.MemPorts++
		}
	}
	r.computeDepth(g)
	return r
}

func classify(n *pegasus.Node) (string, int64) {
	switch n.Kind {
	case pegasus.KConst, pegasus.KParam, pegasus.KAddrOf:
		return "const/wire", 0
	case pegasus.KBinOp:
		switch n.BinOp {
		case cminor.OpAdd, cminor.OpSub:
			return "add/sub", areaAdder
		case cminor.OpMul:
			return "mul", areaMul
		case cminor.OpDiv, cminor.OpRem:
			return "div", areaDiv
		case cminor.OpShl, cminor.OpShr:
			return "shift", areaShift
		case cminor.OpAnd, cminor.OpOr, cminor.OpXor:
			return "logic", areaLogic
		default:
			return "compare", areaCompare
		}
	case pegasus.KUnOp:
		return "logic", areaLogic
	case pegasus.KConv:
		return "conv", areaConv
	case pegasus.KMux:
		n32 := int64(len(n.Ins))
		if n32 < 2 {
			n32 = 2
		}
		return "mux", areaMux2 * (n32 - 1) * 16
	case pegasus.KMerge:
		if n.TokenOnly {
			return "token", areaToken * int64(len(n.Toks)+1)
		}
		return "merge", areaMerge * 16
	case pegasus.KEta:
		if n.TokenOnly {
			return "token", areaToken * 2
		}
		return "eta", areaEta * 16
	case pegasus.KCombine:
		return "token", areaToken * int64(len(n.Toks))
	case pegasus.KTokenGen:
		return "token", areaTokGen
	case pegasus.KLoad:
		return "load", areaMemPort
	case pegasus.KStore:
		return "store", areaMemPort
	case pegasus.KCall:
		return "call", areaCall
	case pegasus.KReturn, pegasus.KEntryTok:
		return "control", areaToken
	}
	return "other", 0
}

// computeDepth finds each hyperblock's longest forward path (in nodes,
// excluding zero-area wire nodes) through one execution wave.
func (r *Report) computeDepth(g *pegasus.Graph) {
	depth := map[*pegasus.Node]int{}
	for _, n := range g.Topo() {
		if n.Dead {
			continue
		}
		d := 0
		n.EachInput(func(ref *pegasus.Ref, p pegasus.Port, i int) {
			if !ref.Valid() || g.IsBackEdge(ref.N, n) {
				return
			}
			// Only intra-hyperblock edges contribute to a wave's depth.
			if ref.N.Hyper != n.Hyper {
				return
			}
			if depth[ref.N] > d {
				d = depth[ref.N]
			}
		})
		cost := 1
		switch n.Kind {
		case pegasus.KConst, pegasus.KParam, pegasus.KAddrOf:
			cost = 0
		}
		depth[n] = d + cost
		if depth[n] > r.Depth[n.Hyper] {
			r.Depth[n.Hyper] = depth[n]
		}
		if depth[n] > r.MaxDepth {
			r.MaxDepth = depth[n]
		}
	}
}

// EstimateProgram sums reports over every function.
func EstimateProgram(p *pegasus.Program) []*Report {
	var names []string
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*Report
	for _, name := range names {
		out = append(out, Estimate(p.Funcs[name]))
	}
	return out
}

// Format renders reports as a table.
func Format(reports []*Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s %7s %8s %8s  %s\n",
		"function", "area(GE)", "edges", "memports", "depth", "operators")
	var totalArea int64
	for _, r := range reports {
		var classes []string
		for c := range r.Ops {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		var ops []string
		for _, c := range classes {
			if c == "const/wire" {
				continue
			}
			ops = append(ops, fmt.Sprintf("%s:%d", c, r.Ops[c]))
		}
		fmt.Fprintf(&sb, "%-16s %10d %7d %8d %8d  %s\n",
			r.Name, r.Area, r.Edges, r.MemPorts, r.MaxDepth, strings.Join(ops, " "))
		totalArea += r.Area
	}
	fmt.Fprintf(&sb, "%-16s %10d\n", "total", totalArea)
	return sb.String()
}
