package hw

import (
	"strings"
	"testing"

	"spatial/internal/build"
	"spatial/internal/cminor"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
)

func compileAt(t *testing.T, src string, lv opt.Level) *pegasus.Program {
	t.Helper()
	prog, err := cminor.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cminor.Check(prog); err != nil {
		t.Fatal(err)
	}
	p, err := build.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.OptimizeAt(p, lv); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEstimateBasics(t *testing.T) {
	p := compileAt(t, `
int f(int a, int b) { return a * b + a / b; }`, opt.Basic)
	r := Estimate(p.Graph("f"))
	if r.Ops["mul"] != 1 {
		t.Errorf("mul count = %d", r.Ops["mul"])
	}
	if r.Ops["div"] != 1 {
		t.Errorf("div count = %d", r.Ops["div"])
	}
	// A divider dominates the area.
	if r.Area < areaDiv {
		t.Errorf("area = %d, should include the divider", r.Area)
	}
	if r.MaxDepth < 2 {
		t.Errorf("depth = %d, want >= 2 (op chain)", r.MaxDepth)
	}
}

func TestMemPorts(t *testing.T) {
	p := compileAt(t, `
int a[8];
int f(int i) { a[i] = 1; return a[i+1]; }`, opt.Medium)
	r := Estimate(p.Graph("f"))
	if r.MemPorts != 2 {
		t.Errorf("mem ports = %d, want 2", r.MemPorts)
	}
}

func TestOptimizationReducesArea(t *testing.T) {
	src := `
int g;
int f(int x) {
  g = x;
  g = g + 1;
  return g;
}`
	a0 := Estimate(compileAt(t, src, opt.None).Graph("f"))
	a1 := Estimate(compileAt(t, src, opt.Full).Graph("f"))
	if a1.Area >= a0.Area {
		t.Errorf("full optimization did not shrink the circuit: %d → %d GE", a0.Area, a1.Area)
	}
	if a1.MemPorts >= a0.MemPorts {
		t.Errorf("memory ports not reduced: %d → %d", a0.MemPorts, a1.MemPorts)
	}
}

func TestDepthIgnoresBackEdges(t *testing.T) {
	p := compileAt(t, `
int f(int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i++) s += i;
  return s;
}`, opt.Medium)
	r := Estimate(p.Graph("f"))
	// Depth must be finite and modest: the loop body is a short chain.
	if r.MaxDepth <= 0 || r.MaxDepth > 20 {
		t.Errorf("depth = %d, implausible for a small loop", r.MaxDepth)
	}
}

func TestEstimateProgramAndFormat(t *testing.T) {
	p := compileAt(t, `
int helper(int x) { return x * 2; }
int main0(int x) { return helper(x) + 1; }`, opt.Full)
	reports := EstimateProgram(p)
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	out := Format(reports)
	if !strings.Contains(out, "helper") || !strings.Contains(out, "total") {
		t.Errorf("format output missing rows:\n%s", out)
	}
}
