package trace

import (
	"fmt"
	"math/bits"
	"strings"
)

// histBuckets is the number of power-of-two histogram buckets: bucket i
// holds values in [2^(i-1), 2^i), bucket 0 holds exactly 0.
const histBuckets = 32

// Hist is a fixed-size power-of-two histogram of non-negative cycle
// counts. The zero value is ready to use; Add never allocates.
type Hist struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// Add records one sample (negative samples count as 0).
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	b := bits.Len64(uint64(v)) // 0→0, 1→1, 2..3→2, 4..7→3 …
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.Buckets[b]++
}

// Mean returns the average sample.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// String renders the non-empty buckets as "[lo,hi):count" pairs.
func (h *Hist) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.1f max=%d", h.Count, h.Mean(), h.Max)
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		if lo == hi {
			fmt.Fprintf(&sb, " %d:%d", lo, c)
		} else {
			fmt.Fprintf(&sb, " %d-%d:%d", lo, hi, c)
		}
	}
	return sb.String()
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}
