package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Summary renders the aggregate view of a trace: firing and memory event
// counts, stall attribution by cause, and the per-kind latency and
// input-wait histograms.
func (tr *Trace) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d cycles, %d firings, %d memory events", tr.Cycles, len(tr.Firings), len(tr.Mem))
	if tr.Truncated {
		sb.WriteString(" (truncated)")
	}
	sb.WriteByte('\n')
	if tr.TokenReleases > 0 || tr.MemPortStallCycles > 0 {
		fmt.Fprintf(&sb, "memory: %d token releases, %d port-stall cycles, LSQ occupancy %s\n",
			tr.TokenReleases, tr.MemPortStallCycles, tr.LSQOccupancy.String())
	}
	if len(tr.StallsByKind) > 0 {
		sb.WriteString("stalled fire attempts by kind (data/token/backpressure/mem-port):\n")
		for _, k := range sortedKeys(tr.StallsByKind) {
			sc := tr.StallsByKind[k]
			fmt.Fprintf(&sb, "  %-10s %10d %10d %10d %10d\n", k,
				sc[StallData], sc[StallToken], sc[StallBackpressure], sc[StallMemPort])
		}
	}
	if len(tr.LatencyByKind) > 0 {
		sb.WriteString("firing latency by kind:\n")
		for _, k := range sortedKeys(tr.LatencyByKind) {
			fmt.Fprintf(&sb, "  %-10s %s\n", k, tr.LatencyByKind[k].String())
		}
	}
	if len(tr.WaitByKind) > 0 {
		sb.WriteString("input wait (operand skew) by kind:\n")
		for _, k := range sortedKeys(tr.WaitByKind) {
			fmt.Fprintf(&sb, "  %-10s %s\n", k, tr.WaitByKind[k].String())
		}
	}
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
