package trace

import (
	"fmt"
	"sort"
	"strings"

	"spatial/internal/pegasus"
)

// Step is one firing on the dynamic critical path together with the
// cycles attributed to it: the time from its critical parent's completion
// to its own completion (operation latency plus any stall in between).
type Step struct {
	Firing Firing
	Cycles int64
}

// Edge identifies one dynamic producer→consumer edge on the critical
// path within a graph.
type Edge struct {
	Graph    string
	From, To *pegasus.Node
}

// EdgeCycles is the attribution of one edge class on the critical path.
type EdgeCycles struct {
	Edge Edge
	// Cycles is the total path time attributed to crossings of this
	// edge; Hops is how many times the path crossed it.
	Cycles int64
	Hops   int
}

// CritPath is the dynamic critical path of a traced run: the chain of
// last-arriving-input back-edges walked from the final (main-return)
// firing to the program start.
type CritPath struct {
	// Length is the total path length in cycles (the final firing's
	// completion time); the per-step attributions sum to it exactly.
	Length int64
	// Steps lists the path from program start to the final firing.
	Steps []Step
	// ByKind attributes path cycles to node kinds.
	ByKind map[string]int64
	// TokenEdges attributes path cycles to token (memory-dependence)
	// edges, hottest first. These are the edges the paper's memory
	// optimizations shorten.
	TokenEdges []EdgeCycles
	// TokenCycles is the total path time spent crossing token edges.
	TokenCycles int64
}

// CriticalPath extracts the dynamic critical path. It returns nil when
// the trace has no final firing (incomplete run or truncated record).
func (tr *Trace) CriticalPath() *CritPath {
	if tr.Final <= 0 || int(tr.Final) > len(tr.Firings) {
		return nil
	}
	// Seqs are 1-based and dense over the retained prefix, and a parent
	// always precedes its consumer, so every parent of a retained firing
	// is retained.
	cp := &CritPath{ByKind: map[string]int64{}}
	tokens := map[Edge]*EdgeCycles{}
	for seq := tr.Final; seq > 0; {
		f := tr.Firings[seq-1]
		parentEnd := int64(0)
		if f.Parent > 0 {
			parentEnd = tr.Firings[f.Parent-1].End
		}
		attr := f.End - parentEnd
		if attr < 0 {
			attr = 0
		}
		cp.Steps = append(cp.Steps, Step{Firing: f, Cycles: attr})
		cp.ByKind[f.Node.Kind.String()] += attr
		if f.Parent > 0 && f.ParentTok {
			e := Edge{Graph: f.Graph, From: tr.Firings[f.Parent-1].Node, To: f.Node}
			ec := tokens[e]
			if ec == nil {
				ec = &EdgeCycles{Edge: e}
				tokens[e] = ec
			}
			ec.Cycles += attr
			ec.Hops++
			cp.TokenCycles += attr
		}
		seq = f.Parent
	}
	// The walk built the path final→start; flip it.
	for i, j := 0, len(cp.Steps)-1; i < j; i, j = i+1, j-1 {
		cp.Steps[i], cp.Steps[j] = cp.Steps[j], cp.Steps[i]
	}
	cp.Length = tr.Firings[tr.Final-1].End
	for _, ec := range tokens {
		cp.TokenEdges = append(cp.TokenEdges, *ec)
	}
	sort.Slice(cp.TokenEdges, func(i, j int) bool {
		a, b := cp.TokenEdges[i], cp.TokenEdges[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Edge.From.ID != b.Edge.From.ID {
			return a.Edge.From.ID < b.Edge.From.ID
		}
		return a.Edge.To.ID < b.Edge.To.ID
	})
	return cp
}

// Format renders the path summary: length, per-kind attribution, and the
// topK hottest token edges.
func (cp *CritPath) Format(topK int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical path: %d cycles over %d firings (%d on token edges)\n",
		cp.Length, len(cp.Steps), cp.TokenCycles)
	sb.WriteString("cycles by node kind:\n")
	type kc struct {
		kind   string
		cycles int64
	}
	var kinds []kc
	for k, c := range cp.ByKind {
		kinds = append(kinds, kc{k, c})
	}
	sort.Slice(kinds, func(i, j int) bool {
		if kinds[i].cycles != kinds[j].cycles {
			return kinds[i].cycles > kinds[j].cycles
		}
		return kinds[i].kind < kinds[j].kind
	})
	for _, k := range kinds {
		fmt.Fprintf(&sb, "  %-10s %10d (%.1f%%)\n", k.kind, k.cycles,
			100*float64(k.cycles)/float64(max64(cp.Length, 1)))
	}
	if len(cp.TokenEdges) > 0 {
		fmt.Fprintf(&sb, "hottest token edges (top %d):\n", topK)
		for i, ec := range cp.TokenEdges {
			if i >= topK {
				break
			}
			fmt.Fprintf(&sb, "  %s: %s -> %s: %d cycles over %d hops\n",
				ec.Edge.Graph, ec.Edge.From, ec.Edge.To, ec.Cycles, ec.Hops)
		}
	}
	return sb.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
