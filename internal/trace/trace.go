// Package trace is the observability layer of the dataflow simulator: a
// cycle-timestamped event stream of node firings, edge stalls, and memory
// requests, with dynamic critical-path extraction, per-kind histograms,
// and Chrome trace-event export.
//
// The paper (Sections 5–7) explains every memory-optimization speedup in
// terms of the dynamic critical path through the Pegasus graph — tokens
// removed from the path, loads overlapped with computation. This package
// turns "the benchmark got faster" into "these token edges left the
// critical path": the simulator records, for every firing, which input
// arrived last and which firing produced it; walking those last-arrival
// back-edges from the final return yields the exact dynamic critical
// path, with cycles attributed per node kind and per token edge.
//
// The Tracer is driven by internal/dataflow through nil-guarded hooks, so
// an untraced run pays only a pointer comparison per hook site and
// allocates nothing.
package trace

import (
	"spatial/internal/memsys"
	"spatial/internal/pegasus"
)

// Config parameterizes a trace collection.
type Config struct {
	// MaxFirings caps the number of firing records retained (0 = the
	// default cap). When the cap is hit, collection keeps aggregate
	// counters but stops recording firings, and no critical path can be
	// extracted; Trace.Truncated reports this.
	MaxFirings int
	// MaxMemEvents caps retained memory events (0 = the default cap).
	MaxMemEvents int
}

// DefaultConfig returns the standard trace setup: generous event caps
// suitable for the paper's kernels.
func DefaultConfig() Config {
	return Config{MaxFirings: 4 << 20, MaxMemEvents: 1 << 20}
}

func (c Config) withDefaults() Config {
	if c.MaxFirings <= 0 {
		c.MaxFirings = 4 << 20
	}
	if c.MaxMemEvents <= 0 {
		c.MaxMemEvents = 1 << 20
	}
	return c
}

// Cause classifies why a node could not fire when it was checked.
type Cause uint8

// Stall causes.
const (
	StallData         Cause = iota // a data or predicate input has not arrived
	StallToken                     // a token input has not arrived (memory-dependence wait)
	StallBackpressure              // an output edge buffer is full
	StallMemPort                   // memory request waited for an LSQ port or slot
	numCauses
)

var causeNames = [...]string{
	StallData: "data-wait", StallToken: "token-wait",
	StallBackpressure: "backpressure", StallMemPort: "mem-port",
}

// String names the cause.
func (c Cause) String() string { return causeNames[c] }

// Firing is one recorded node execution. Seq is its 1-based identifier;
// Parent is the Seq of the firing that produced this firing's
// last-arriving input (0 when every input was static or the firing was
// seeded at activation start).
type Firing struct {
	Seq   int64
	Node  *pegasus.Node
	Graph string
	Act   int32
	// Start is the cycle the node fired (all inputs present, outputs
	// free); End is the cycle its last output was delivered (== Start for
	// firings that emit nothing).
	Start, End int64
	// Parent identifies the last-arriving-input producer firing;
	// ParentTok marks that critical in-edge as a token edge.
	Parent    int64
	ParentTok bool
	// FirstWait is Start minus the arrival cycle of the earliest dynamic
	// input: how long the first operand sat latched waiting for the rest.
	FirstWait int64
}

// StallCounts is the per-cause stall tally for one key.
type StallCounts [numCauses]int64

// Tracer collects the event stream during one simulation. It is driven
// by the dataflow machine and implements memsys.Observer.
type Tracer struct {
	cfg     Config
	firings []Firing
	mem     []memsys.Event

	// current candidate firing (between BeginFiring and EndFiring).
	cur       Firing
	curFirst  int64 // earliest dynamic-input arrival, -1 = none
	curLast   int64 // latest dynamic-input arrival
	curActive bool
	curFinal  bool

	final     int64 // Seq of the program's final (main-return) firing
	truncated bool

	stallsByKind map[string]*StallCounts
	stallsByNode map[*pegasus.Node]*StallCounts

	memPortStall   int64
	tokenReleases  int64
	latByKind      map[string]*Hist
	waitByKind     map[string]*Hist
	lsqOccupancy   Hist
	droppedFirings int64
}

// New creates a Tracer.
func New(cfg Config) *Tracer {
	return &Tracer{
		cfg:          cfg.withDefaults(),
		stallsByKind: map[string]*StallCounts{},
		stallsByNode: map[*pegasus.Node]*StallCounts{},
		latByKind:    map[string]*Hist{},
		waitByKind:   map[string]*Hist{},
	}
}

// BeginFiring opens a candidate firing record for (act, n) in graph. The
// record is committed only if EndFiring reports success; a failed fire
// attempt reuses the same Seq.
func (t *Tracer) BeginFiring(act int32, graph string, n *pegasus.Node) {
	t.cur = Firing{
		Seq:  int64(len(t.firings)) + 1 + t.droppedFirings,
		Node: n, Graph: graph, Act: act,
	}
	t.curFirst, t.curLast = -1, -1
	t.curActive = true
	t.curFinal = false
}

// CurSeq returns the Seq the active firing will commit under (0 when no
// firing is active, e.g. the entry-token emission at activation start).
func (t *Tracer) CurSeq() int64 {
	if !t.curActive {
		return 0
	}
	return t.cur.Seq
}

// Consume records that the active firing consumed a dynamic input that
// arrived at cycle `at` from producer firing `prod` (0 = pre-trace or
// activation seed); tok marks token edges.
func (t *Tracer) Consume(prod, at int64, tok bool) {
	if !t.curActive {
		return
	}
	if t.curFirst < 0 || at < t.curFirst {
		t.curFirst = at
	}
	if at > t.curLast {
		t.curLast = at
		t.cur.Parent = prod
		t.cur.ParentTok = tok
	}
}

// Emit records an output delivery time of the active firing.
func (t *Tracer) Emit(at int64) {
	if t.curActive && at > t.cur.End {
		t.cur.End = at
	}
}

// TokenRelease counts one memory-token release (the early token a
// load/store emits as soon as it issues, before its response returns).
func (t *Tracer) TokenRelease() { t.tokenReleases++ }

// MarkFinal tags the active firing as the program's final firing (the
// main activation's return); the critical-path walk starts from it.
func (t *Tracer) MarkFinal() { t.curFinal = true }

// EndFiring commits (fired=true) or abandons (fired=false) the active
// firing. now is the fire cycle.
func (t *Tracer) EndFiring(now int64, fired bool) {
	if !t.curActive {
		return
	}
	t.curActive = false
	if !fired {
		return
	}
	f := t.cur
	f.Start = now
	if f.End < now {
		f.End = now
	}
	if t.curFirst >= 0 && now > t.curFirst {
		f.FirstWait = now - t.curFirst
	}
	kind := f.Node.Kind.String()
	histAdd(t.latByKind, kind, f.End-f.Start)
	histAdd(t.waitByKind, kind, f.FirstWait)
	if len(t.firings) >= t.cfg.MaxFirings {
		t.truncated = true
		t.droppedFirings++
		return
	}
	t.firings = append(t.firings, f)
	if t.curFinal {
		t.final = f.Seq
	}
}

// Stall records one blocked fire attempt of n.
func (t *Tracer) Stall(n *pegasus.Node, c Cause) {
	kind := n.Kind.String()
	sc := t.stallsByKind[kind]
	if sc == nil {
		sc = &StallCounts{}
		t.stallsByKind[kind] = sc
	}
	sc[c]++
	sn := t.stallsByNode[n]
	if sn == nil {
		sn = &StallCounts{}
		t.stallsByNode[n] = sn
	}
	sn[c]++
}

// MemEvent implements memsys.Observer.
func (t *Tracer) MemEvent(e memsys.Event) {
	t.lsqOccupancy.Add(int64(e.Queue))
	if w := e.PortWait(); w > 0 {
		t.memPortStall += w
		// Port contention is a stall cause like any other; account it
		// under the kind-level table so Summary lines it up with the
		// data/token/backpressure splits.
		kind := "load"
		if !e.Load {
			kind = "store"
		}
		sc := t.stallsByKind[kind]
		if sc == nil {
			sc = &StallCounts{}
			t.stallsByKind[kind] = sc
		}
		sc[StallMemPort] += w
	}
	if len(t.mem) < t.cfg.MaxMemEvents {
		t.mem = append(t.mem, e)
	} else {
		t.truncated = true
	}
}

func histAdd(m map[string]*Hist, k string, v int64) {
	h := m[k]
	if h == nil {
		h = &Hist{}
		m[k] = h
	}
	h.Add(v)
}

// Trace is the finished, immutable result of a traced run.
type Trace struct {
	Cycles  int64
	Firings []Firing
	Mem     []memsys.Event
	// Final is the Seq of the program's final firing (0 if the run did
	// not complete or the record was truncated away).
	Final int64
	// Truncated reports that event caps were hit; aggregates remain
	// exact, but the firing/mem slices are incomplete.
	Truncated bool

	// StallsByKind / StallsByNode tally blocked fire attempts per cause
	// (StallMemPort entries are cycles, from the LSQ model).
	StallsByKind map[string]*StallCounts
	StallsByNode map[*pegasus.Node]*StallCounts

	// LatencyByKind histograms firing latency (End-Start) per node kind;
	// WaitByKind histograms how long each firing's earliest operand
	// waited for the rest (input skew).
	LatencyByKind map[string]*Hist
	WaitByKind    map[string]*Hist
	// LSQOccupancy histograms load/store-queue depth at each submit.
	LSQOccupancy Hist
	// MemPortStallCycles is total cycles requests waited for an LSQ
	// port or queue slot; TokenReleases counts early memory-token
	// releases.
	MemPortStallCycles int64
	TokenReleases      int64
}

// Finish seals the tracer into a Trace.
func (t *Tracer) Finish(cycles int64) *Trace {
	return &Trace{
		Cycles:             cycles,
		Firings:            t.firings,
		Mem:                t.mem,
		Final:              t.final,
		Truncated:          t.truncated,
		StallsByKind:       t.stallsByKind,
		StallsByNode:       t.stallsByNode,
		LatencyByKind:      t.latByKind,
		WaitByKind:         t.waitByKind,
		LSQOccupancy:       t.lsqOccupancy,
		MemPortStallCycles: t.memPortStall,
		TokenReleases:      t.tokenReleases,
	}
}
