package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"spatial/internal/memsys"
	"spatial/internal/pegasus"
)

// buildChain hand-drives a Tracer through a three-firing chain
//
//	load(end 10) --token--> store(end 12) --token--> return(end 15)
//
// with a side firing off the path, and returns the sealed trace.
func buildChain(t *testing.T) (*Trace, []*pegasus.Node) {
	t.Helper()
	g := pegasus.NewGraph(nil)
	g.Name = "f"
	load := g.NewNode(pegasus.KLoad, 0)
	store := g.NewNode(pegasus.KStore, 0)
	ret := g.NewNode(pegasus.KReturn, 0)
	side := g.NewNode(pegasus.KBinOp, 0)

	tr := New(Config{})
	// Firing 1: the load, no dynamic inputs.
	tr.BeginFiring(0, "f", load)
	tr.Emit(10)
	tr.EndFiring(2, true)
	// Firing 2: a side computation that will NOT be on the path.
	tr.BeginFiring(0, "f", side)
	tr.Consume(1, 10, false)
	tr.Emit(11)
	tr.EndFiring(10, true)
	// Firing 3: the store; its last-arriving input is the load's token.
	tr.BeginFiring(0, "f", store)
	tr.Consume(1, 10, true)
	tr.Emit(12)
	tr.EndFiring(10, true)
	// Firing 4: the return, fed by the store's token.
	tr.BeginFiring(0, "f", ret)
	tr.Consume(3, 12, true)
	tr.Emit(15)
	tr.MarkFinal()
	tr.EndFiring(12, true)
	return tr.Finish(15), []*pegasus.Node{load, store, ret, side}
}

func TestCriticalPathWalk(t *testing.T) {
	tr, nodes := buildChain(t)
	load, store, ret, side := nodes[0], nodes[1], nodes[2], nodes[3]
	cp := tr.CriticalPath()
	if cp == nil {
		t.Fatal("no critical path")
	}
	if cp.Length != 15 {
		t.Fatalf("path length %d, want 15", cp.Length)
	}
	if len(cp.Steps) != 3 {
		t.Fatalf("path has %d steps, want 3", len(cp.Steps))
	}
	wantOrder := []*pegasus.Node{load, store, ret}
	wantAttr := []int64{10, 2, 3} // 10-0, 12-10, 15-12
	for i, s := range cp.Steps {
		if s.Firing.Node != wantOrder[i] {
			t.Fatalf("step %d is %s, want %s", i, s.Firing.Node, wantOrder[i])
		}
		if s.Cycles != wantAttr[i] {
			t.Fatalf("step %d attributed %d cycles, want %d", i, s.Cycles, wantAttr[i])
		}
		if s.Firing.Node == side {
			t.Fatal("side firing must not be on the path")
		}
	}
	if cp.ByKind["load"] != 10 || cp.ByKind["store"] != 2 || cp.ByKind["return"] != 3 {
		t.Fatalf("per-kind attribution wrong: %v", cp.ByKind)
	}
	if cp.TokenCycles != 5 {
		t.Fatalf("token cycles %d, want 5 (store hop 2 + return hop 3)", cp.TokenCycles)
	}
	if len(cp.TokenEdges) != 2 {
		t.Fatalf("token edges %d, want 2", len(cp.TokenEdges))
	}
	// Sorted hottest-first: return edge (3) before store edge (2).
	if cp.TokenEdges[0].Edge.To != ret || cp.TokenEdges[0].Cycles != 3 {
		t.Fatalf("hottest token edge wrong: %+v", cp.TokenEdges[0])
	}
	txt := cp.Format(5)
	if !strings.Contains(txt, "critical path: 15 cycles") {
		t.Fatalf("Format missing header:\n%s", txt)
	}
}

func TestAbandonedFiringReusesSeq(t *testing.T) {
	g := pegasus.NewGraph(nil)
	n := g.NewNode(pegasus.KBinOp, 0)
	tr := New(Config{})
	tr.BeginFiring(0, "f", n)
	tr.EndFiring(1, false) // blocked attempt: no record
	tr.BeginFiring(0, "f", n)
	tr.Emit(3)
	tr.MarkFinal()
	tr.EndFiring(2, true)
	trace := tr.Finish(3)
	if len(trace.Firings) != 1 {
		t.Fatalf("recorded %d firings, want 1", len(trace.Firings))
	}
	if trace.Firings[0].Seq != 1 || trace.Final != 1 {
		t.Fatalf("seq/final = %d/%d, want 1/1", trace.Firings[0].Seq, trace.Final)
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1000, -5} {
		h.Add(v)
	}
	if h.Count != 9 {
		t.Fatalf("count %d, want 9", h.Count)
	}
	if h.Max != 1000 {
		t.Fatalf("max %d, want 1000", h.Max)
	}
	// -5 clamps to 0, so bucket 0 (value 0) holds two samples.
	if h.Buckets[0] != 2 {
		t.Fatalf("bucket 0 has %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // value 1
		t.Fatalf("bucket 1 has %d, want 1", h.Buckets[1])
	}
	if h.Buckets[2] != 2 { // values 2,3
		t.Fatalf("bucket 2 has %d, want 2", h.Buckets[2])
	}
	if h.Buckets[3] != 2 { // values 4..7
		t.Fatalf("bucket 3 has %d, want 2", h.Buckets[3])
	}
	if !strings.Contains(h.String(), "n=9") {
		t.Fatalf("String: %s", h.String())
	}
}

func TestChromeExportShapes(t *testing.T) {
	tr, _ := buildChain(t)
	tr.Mem = append(tr.Mem, memsys.Event{
		Start: 2, Issue: 3, Done: 11, Load: true, Addr: 0x40,
		Bytes: 4, Port: 1, Queue: 2, Level: memsys.LvlL2, TLB: true,
	})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var memEvent, fnProc, memProc bool
	for _, e := range events {
		if e["cat"] == "mem" && e["name"] == "load L2" {
			memEvent = true
			if e["dur"].(float64) != 8 {
				t.Fatalf("mem event dur %v, want 8", e["dur"])
			}
		}
		if e["ph"] == "M" && e["name"] == "process_name" {
			name := e["args"].(map[string]any)["name"].(string)
			if name == "fn f" {
				fnProc = true
			}
			if name == "memory" {
				memProc = true
			}
		}
	}
	if !memEvent || !fnProc || !memProc {
		t.Fatalf("export missing tracks: mem=%v fn=%v memproc=%v", memEvent, fnProc, memProc)
	}
}

func TestStallCounters(t *testing.T) {
	g := pegasus.NewGraph(nil)
	n := g.NewNode(pegasus.KEta, 0)
	tr := New(Config{})
	tr.Stall(n, StallData)
	tr.Stall(n, StallData)
	tr.Stall(n, StallToken)
	tr.Stall(n, StallBackpressure)
	trace := tr.Finish(0)
	sc := trace.StallsByKind["eta"]
	if sc == nil {
		t.Fatal("no eta stall entry")
	}
	if sc[StallData] != 2 || sc[StallToken] != 1 || sc[StallBackpressure] != 1 {
		t.Fatalf("stall counts %v", *sc)
	}
	if trace.StallsByNode[n] == nil || trace.StallsByNode[n][StallData] != 2 {
		t.Fatal("per-node stall counts missing")
	}
}

func TestMemEventObserver(t *testing.T) {
	tr := New(Config{})
	tr.MemEvent(memsys.Event{Start: 0, Issue: 4, Done: 6, Load: true, Queue: 3})
	tr.MemEvent(memsys.Event{Start: 5, Issue: 5, Done: 7, Load: false, Queue: 1})
	trace := tr.Finish(10)
	if trace.MemPortStallCycles != 4 {
		t.Fatalf("port stall cycles %d, want 4", trace.MemPortStallCycles)
	}
	if trace.LSQOccupancy.Count != 2 || trace.LSQOccupancy.Max != 3 {
		t.Fatalf("LSQ occupancy histogram wrong: %s", trace.LSQOccupancy.String())
	}
	if sc := trace.StallsByKind["load"]; sc == nil || sc[StallMemPort] != 4 {
		t.Fatal("mem-port stall not attributed to loads")
	}
}
