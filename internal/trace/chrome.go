package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export (the "JSON Array Format" understood by
// about://tracing and Perfetto). Cycles map to microseconds: one track
// (thread) per hyperblock within one process per function, plus one
// track per memory port under a dedicated "memory" process.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

const memPid = 1 // process 1 is the memory system; functions start at 2

// WriteChrome writes the trace in Chrome trace-event JSON.
func (tr *Trace) WriteChrome(w io.Writer) error {
	cw := &chromeWriter{w: w}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	// Stable pid assignment: functions sorted by name.
	pids := map[string]int{}
	var names []string
	seen := map[string]bool{}
	for _, f := range tr.Firings {
		if !seen[f.Graph] {
			seen[f.Graph] = true
			names = append(names, f.Graph)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		pids[n] = memPid + 1 + i
		cw.meta("process_name", pids[n], 0, "fn "+n)
	}
	// Thread metadata per (graph, hyperblock) actually used.
	type track struct{ pid, tid int }
	tracks := map[track]bool{}
	for _, f := range tr.Firings {
		t := track{pids[f.Graph], f.Node.Hyper}
		if !tracks[t] {
			tracks[t] = true
			cw.meta("thread_name", t.pid, t.tid, fmt.Sprintf("hyperblock %d", t.tid))
		}
	}
	if len(tr.Mem) > 0 {
		cw.meta("process_name", memPid, 0, "memory")
		memPorts := map[int]bool{}
		for _, e := range tr.Mem {
			if !memPorts[e.Port] {
				memPorts[e.Port] = true
				cw.meta("thread_name", memPid, e.Port, fmt.Sprintf("port %d", e.Port))
			}
		}
	}
	for _, f := range tr.Firings {
		dur := f.End - f.Start
		if dur < 1 {
			dur = 1 // zero-width slices are invisible; stretch to one cycle
		}
		cw.event(chromeEvent{
			Name: f.Node.String(), Cat: f.Node.Kind.String(), Ph: "X",
			Ts: f.Start, Dur: dur, Pid: pids[f.Graph], Tid: f.Node.Hyper,
			Args: map[string]any{"act": f.Act, "seq": f.Seq},
		})
	}
	for _, e := range tr.Mem {
		name := "store"
		if e.Load {
			name = "load"
		}
		name += " " + e.Level.String()
		dur := e.Done - e.Issue
		if dur < 1 {
			dur = 1
		}
		cw.event(chromeEvent{
			Name: name, Cat: "mem", Ph: "X",
			Ts: e.Issue, Dur: dur, Pid: memPid, Tid: e.Port,
			Args: map[string]any{
				"addr": e.Addr, "queue": e.Queue,
				"portWait": e.PortWait(), "tlbMiss": e.TLB,
			},
		})
	}
	if cw.err != nil {
		return cw.err
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

type chromeWriter struct {
	w   io.Writer
	n   int
	err error
}

func (cw *chromeWriter) event(e chromeEvent) {
	if cw.err != nil {
		return
	}
	if cw.n > 0 {
		if _, cw.err = io.WriteString(cw.w, ",\n"); cw.err != nil {
			return
		}
	}
	cw.n++
	b, err := json.Marshal(e)
	if err != nil {
		cw.err = err
		return
	}
	_, cw.err = cw.w.Write(b)
}

func (cw *chromeWriter) meta(name string, pid, tid int, value string) {
	cw.event(chromeEvent{
		Name: name, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": value},
	})
}
