package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"spatial/internal/dataflow"
)

// The facade classifies every failure under one of three error classes,
// so callers can switch on errors.Is without string matching:
//
//	ErrCompile  — the source program was rejected (parse, type check,
//	              build, optimize, or an invalid configuration option)
//	ErrSim      — the compiled program misbehaved at run time (deadlock,
//	              livelock, activation limit, detected fault, cancellation)
//	ErrInternal — a bug in this library: a recovered panic or violated
//	              invariant; never the caller's fault
//
// The original error chain stays inspectable through errors.As — e.g. a
// *DeadlockError (with its StuckReport) still unwraps from an ErrSim-
// classed error.
var (
	ErrCompile  = errors.New("spatial: compile error")
	ErrSim      = errors.New("spatial: simulation error")
	ErrInternal = errors.New("spatial: internal error")
)

// DeadlockError is the dataflow simulator's structured deadlock
// diagnosis (wait-for graph, SCC, rendered summary).
type DeadlockError = dataflow.DeadlockError

// LivelockError is the diagnosis of a run that exceeded its cycle
// budget.
type LivelockError = dataflow.LivelockError

// StuckReport is the wait-for-graph diagnosis carried by DeadlockError
// and LivelockError.
type StuckReport = dataflow.StuckReport

// PanicError is a panic recovered at the facade boundary, classified
// under ErrInternal.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the captured stack is in Stack.
func (p *PanicError) Error() string { return fmt.Sprintf("recovered panic: %v", p.Value) }

// classedError pairs a failure with its class so that errors.Is matches
// both the class sentinel and the underlying chain.
type classedError struct {
	class error
	err   error
}

func (e *classedError) Error() string   { return e.class.Error() + ": " + e.err.Error() }
func (e *classedError) Unwrap() []error { return []error{e.class, e.err} }

// classify wraps err under class; errors already carrying a class pass
// through unchanged.
func classify(class, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrCompile) || errors.Is(err, ErrSim) || errors.Is(err, ErrInternal) {
		return err
	}
	return &classedError{class: class, err: err}
}

// Classified wraps err under one of the facade's error classes — the
// exported form of the facade's own classification, for layers built on
// top of core (e.g. internal/serve keying a request's configuration).
func Classified(class, err error) error { return classify(class, err) }

// guard converts a panic escaping the facade into an ErrInternal-classed
// error. Every public Compile/Run entry point defers it, which is what
// makes the "no panic reachable from the facade" guarantee hold even for
// invariant violations deep in the optimizer or simulator.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = classify(ErrInternal, &PanicError{Value: r, Stack: debug.Stack()})
	}
}
