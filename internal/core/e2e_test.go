package core

import (
	"testing"

	"spatial/internal/memsys"
	"spatial/internal/opt"
)

// The e2e programs mirror the repository examples: quickstart's
// reduction, memopt's Section 2 kernel (driven through a checksum
// wrapper), and pipeline's producer/consumer loop.
var e2ePrograms = []struct {
	name  string
	src   string
	entry string
	args  []int64
}{
	{
		name: "quickstart",
		src: `
int squares[64];

int sumOfSquares(int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) squares[i] = i * i;
  for (i = 0; i < n; i++) s += squares[i];
  return s;
}`,
		entry: "sumOfSquares",
		args:  []int64{64},
	},
	{
		name: "memopt",
		src: `
unsigned a[16];
unsigned x;

void f(unsigned *p, unsigned b[], int i) {
  if (p) b[i] += *p;
  else b[i] = 1;
  b[i] <<= b[i+1];
}

int bench(void) {
  int i;
  int s = 0;
  for (i = 0; i < 16; i++) a[i] = i * i + 1;
  x = 7;
  f(&x, a, 2);
  f(0, a, 5);
  for (i = 0; i < 16; i++) s += a[i];
  return s & 0x7fffffff;
}`,
		entry: "bench",
	},
	{
		name: "pipeline",
		src: `
int src[256];
int dst[256];

void fill(void) {
  int i;
  for (i = 0; i < 256; i++) src[i] = (i * 2654435761u) >> 16;
}

void transform(int n) {
  int i;
  for (i = 0; i < n; i++) {
    dst[i] = (src[i] * 3 + 1) >> 1;
  }
}

int bench(void) {
  int i;
  int s = 0;
  fill();
  transform(256);
  for (i = 0; i < 256; i++) s += dst[i];
  return s;
}`,
		entry: "bench",
	},
}

// TestExamplesAllLevels checks the two execution engines agree on every
// example program at every optimization level, and that each compiled
// graph still verifies after optimization.
func TestExamplesAllLevels(t *testing.T) {
	levels := []opt.Level{opt.None, opt.Basic, opt.Medium, opt.Full}
	for _, p := range e2ePrograms {
		t.Run(p.name, func(t *testing.T) {
			var want int64
			for i, lv := range levels {
				cp, err := CompileSource(p.src, WithLevel(lv))
				if err != nil {
					t.Fatalf("level %v: %v", lv, err)
				}
				if err := cp.Verify(); err != nil {
					t.Fatalf("level %v: verify: %v", lv, err)
				}
				res, err := cp.Run(p.entry, p.args)
				if err != nil {
					t.Fatalf("level %v: spatial: %v", lv, err)
				}
				seq, err := cp.RunSequential(p.entry, p.args)
				if err != nil {
					t.Fatalf("level %v: sequential: %v", lv, err)
				}
				if res.Value != seq.Value {
					t.Errorf("level %v: spatial %d != sequential %d",
						lv, res.Value, seq.Value)
				}
				if i == 0 {
					want = res.Value
				} else if res.Value != want {
					t.Errorf("level %v: value %d differs from unoptimized %d",
						lv, res.Value, want)
				}
			}
		})
	}
}

// TestExamplesFunctionalOptions exercises the option forms on the same
// program: a level preset must be exactly its expanded pass set.
func TestExamplesFunctionalOptions(t *testing.T) {
	p := e2ePrograms[0]
	preset, err := CompileSource(p.src,
		WithLevel(opt.Full), WithMemory(PaperMemory(2)))
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := CompileSource(p.src, WithPasses(opt.LevelOptions(opt.Full)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := preset.Run(p.entry, p.args)
	if err != nil {
		t.Fatal(err)
	}
	b, err := expanded.Run(p.entry, p.args)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Errorf("level preset %d != expanded pass set %d", a.Value, b.Value)
	}
	if preset.Sim.Mem == (memsys.Config{}) {
		t.Error("WithMemory not recorded in Compiled.Sim")
	}
}
