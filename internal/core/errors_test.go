package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"spatial/internal/dataflow"
	"spatial/internal/pegasus"
)

// longLoopSrc runs long enough that the simulator's periodic context poll
// (every ~1k events) fires many times.
const longLoopSrc = `
int g;
int f(void) {
  int i;
  for (i = 0; i < 10000000; i++) { g = g + 1; }
  return g;
}`

// TestErrorClasses: every failure out of the facade carries exactly one
// of the three sentinel classes, matchable with errors.Is.
func TestErrorClasses(t *testing.T) {
	if _, err := CompileSource(`int f( { return; }`); !errors.Is(err, ErrCompile) {
		t.Fatalf("syntax error not classed ErrCompile: %v", err)
	}
	if _, err := CompileSource(`int f(void) { return 1; }`, WithSim(SimConfig{EdgeCap: -1})); !errors.Is(err, ErrCompile) {
		t.Fatalf("invalid sim config not classed ErrCompile: %v", err)
	}

	cp, err := CompileSource(`
int g;
int f(void) {
  int i;
  for (i = 0; i < 100000; i++) { g = g + 1; }
  return g;
}`, WithSim(SimConfig{MaxCycles: 2000}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cp.Run("f", nil)
	if !errors.Is(err, ErrSim) {
		t.Fatalf("livelock not classed ErrSim: %v", err)
	}
	var le *LivelockError
	if !errors.As(err, &le) || le.Report == nil {
		t.Fatalf("classed error lost its typed detail: %v", err)
	}
	if errors.Is(err, ErrCompile) || errors.Is(err, ErrInternal) {
		t.Fatalf("error carries more than one class: %v", err)
	}
}

// TestPanicBecomesErrInternal: corrupt a compiled graph so the simulator
// panics; the facade must recover it into ErrInternal carrying a
// PanicError with a stack, never let it escape.
func TestPanicBecomesErrInternal(t *testing.T) {
	cp, err := CompileSource(`int f(int a) { return a + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	g := cp.Program.Graph("f")
	for _, n := range g.Nodes {
		if !n.Dead && n.Kind == pegasus.KBinOp {
			n.Kind = pegasus.Kind(250) // no such kind: the evaluator panics
		}
	}
	_, err = cp.Run("f", []int64{1})
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("panic not classed ErrInternal: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("no PanicError in chain: %v", err)
	}
	if pe.Value == nil || len(pe.Stack) == 0 {
		t.Fatalf("PanicError missing detail: %+v", pe)
	}
}

// TestRunCtxCancellation: a canceled context aborts a long run with
// ErrCanceled under ErrSim.
func TestRunCtxCancellation(t *testing.T) {
	cp, err := CompileSource(longLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = cp.RunCtx(ctx, "f", nil)
	if !errors.Is(err, dataflow.ErrCanceled) {
		t.Fatalf("pre-canceled ctx: want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, ErrSim) {
		t.Fatalf("cancellation not classed ErrSim: %v", err)
	}
}

// TestWithDeadline: the wall-clock budget set at compile time cuts off
// every Run, including the plain context-free entry point.
func TestWithDeadline(t *testing.T) {
	cp, err := CompileSource(longLoopSrc, WithDeadline(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = cp.Run("f", nil)
	if !errors.Is(err, dataflow.ErrCanceled) {
		t.Fatalf("want ErrCanceled from deadline, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not cut the run off promptly: %v", elapsed)
	}
}

// TestRunFaultedSmoke: the facade fault entry point works end to end
// with both a planned injector and a nil one.
func TestRunFaultedSmoke(t *testing.T) {
	cp, err := CompileSource(`int f(int a) { return a * 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cp.RunFaulted(context.Background(), "f", []int64{21}, nil)
	if err != nil || res.Value != 42 {
		t.Fatalf("nil injector run = %v, %v", res, err)
	}
	inj := NewJitterInjector(1, 0.5, 4)
	res, err = cp.RunFaulted(context.Background(), "f", []int64{21}, inj)
	if err != nil || res.Value != 42 {
		t.Fatalf("jitter run = %v, %v", res, err)
	}
	inj2 := NewInjector(FaultPlan{Faults: []Fault{
		{Op: FaultDrop, Node: -1, Edge: -1, Token: true, Nth: 1},
	}})
	if _, err := cp.RunFaulted(context.Background(), "f", []int64{21}, inj2); err != nil {
		if !errors.Is(err, ErrSim) {
			t.Fatalf("detected fault not classed ErrSim: %v", err)
		}
	}
}
