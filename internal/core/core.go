// Package core is the public façade of the spatial-computation library:
// it wires the front end, the Pegasus builder, the optimizer, and the two
// execution engines into a small high-level API.
//
// The typical flow:
//
//	cp, err := core.CompileSource(src, core.Options{Level: opt.Full})
//	res, err := cp.Run("bench", nil)
//	seq, err := cp.RunSequential("bench", nil)
//
// CompileSource produces a Compiled program holding the optimized Pegasus
// graphs; Run executes it on the self-timed dataflow simulator (spatial
// computation), RunSequential on the in-order interpreter baseline.
package core

import (
	"fmt"

	"spatial/internal/build"
	"spatial/internal/cminor"
	"spatial/internal/dataflow"
	"spatial/internal/interp"
	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
)

// Options configures compilation.
type Options struct {
	// Level selects the optimization preset; use Passes to override
	// individual passes instead.
	Level opt.Level
	// Passes, when non-nil, overrides Level with per-pass toggles.
	Passes *opt.Options
}

// Compiled is a fully compiled program.
type Compiled struct {
	Program *pegasus.Program
	Source  *cminor.Program
	Level   opt.Level
}

// CompileSource parses, checks, builds, and optimizes a cMinor program.
func CompileSource(src string, o Options) (*Compiled, error) {
	prog, err := cminor.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := cminor.Check(prog); err != nil {
		return nil, err
	}
	p, err := build.Compile(prog)
	if err != nil {
		return nil, err
	}
	passes := opt.LevelOptions(o.Level)
	if o.Passes != nil {
		passes = *o.Passes
	}
	if err := opt.Optimize(p, passes); err != nil {
		return nil, err
	}
	return &Compiled{Program: p, Source: prog, Level: o.Level}, nil
}

// SimConfig configures a spatial execution.
type SimConfig = dataflow.Config

// SimResult is the outcome of a spatial execution.
type SimResult = dataflow.Result

// DefaultSim returns the default simulation configuration (dual-ported
// perfect memory, one-place edges).
func DefaultSim() SimConfig { return dataflow.DefaultConfig() }

// PerfectMemory returns the idealized memory configuration.
func PerfectMemory() memsys.Config { return memsys.PerfectConfig() }

// PaperMemory returns the realistic memory system of the paper's
// Section 7.3 with the given port count.
func PaperMemory(ports int) memsys.Config { return memsys.PaperConfig(ports) }

// Run executes entry(args...) on the dataflow (spatial) simulator with
// the default configuration.
func (c *Compiled) Run(entry string, args []int64) (*SimResult, error) {
	return dataflow.Run(c.Program, entry, args, dataflow.DefaultConfig())
}

// RunWith executes with an explicit simulator configuration.
func (c *Compiled) RunWith(entry string, args []int64, cfg SimConfig) (*SimResult, error) {
	return dataflow.Run(c.Program, entry, args, cfg)
}

// RunSequential executes on the in-order AST interpreter (the sequential
// baseline) and returns its result.
func (c *Compiled) RunSequential(entry string, args []int64) (*interp.Result, error) {
	return interp.New(c.Program, memsys.PerfectConfig()).Run(entry, args)
}

// Graph returns the Pegasus graph of a function.
func (c *Compiled) Graph(name string) *pegasus.Graph { return c.Program.Graph(name) }

// Dump renders the named function's Pegasus graph as text.
func (c *Compiled) Dump(name string) (string, error) {
	g := c.Program.Graph(name)
	if g == nil {
		return "", fmt.Errorf("core: no function %q", name)
	}
	return g.Dump(), nil
}

// Dot renders the named function's Pegasus graph in Graphviz format.
func (c *Compiled) Dot(name string) (string, error) {
	g := c.Program.Graph(name)
	if g == nil {
		return "", fmt.Errorf("core: no function %q", name)
	}
	return g.Dot(), nil
}

// StaticMemOps counts the live loads and stores across all functions.
func (c *Compiled) StaticMemOps() (loads, stores int) {
	for _, g := range c.Program.Funcs {
		l, s := g.CountMemOps()
		loads += l
		stores += s
	}
	return
}

// Verify re-checks every graph's structural invariants.
func (c *Compiled) Verify() error {
	for name, g := range c.Program.Funcs {
		if err := g.Verify(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
