// Package core is the public façade of the spatial-computation library:
// it wires the front end, the Pegasus builder, the optimizer, and the two
// execution engines into a small high-level API.
//
// The typical flow:
//
//	cp, err := core.CompileSource(src, core.WithLevel(opt.Full))
//	res, err := cp.Run("bench", nil)
//	seq, err := cp.RunSequential("bench", nil)
//
// CompileSource produces a Compiled program holding the optimized Pegasus
// graphs; Run executes it on the self-timed dataflow simulator (spatial
// computation), RunSequential on the in-order interpreter baseline.
// Compilation is configured with functional options — WithLevel,
// WithPasses, WithMemory. (The legacy struct-style Options shim is gone;
// pass WithLevel directly.)
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"spatial/internal/build"
	"spatial/internal/cminor"
	"spatial/internal/codegen"
	"spatial/internal/dataflow"
	"spatial/internal/faultsim"
	"spatial/internal/interp"
	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
	"spatial/internal/trace"
)

// Option configures CompileSource.
type Option interface {
	apply(*config)
}

type config struct {
	level      opt.Level
	passes     *opt.Options
	sim        dataflow.Config
	trc        trace.Config
	deadline   time.Duration
	backend    Backend
	partitions int
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithLevel selects an optimization preset (opt.None … opt.Full).
func WithLevel(l opt.Level) Option {
	return optionFunc(func(c *config) { c.level = l })
}

// WithPasses overrides the preset with explicit per-pass toggles.
func WithPasses(p opt.Options) Option {
	return optionFunc(func(c *config) { c.passes = &p })
}

// WithMemory selects the memory system the compiled program runs against
// by default (Run and RunSequential); see PerfectMemory and PaperMemory.
func WithMemory(m memsys.Config) Option {
	return optionFunc(func(c *config) { c.sim.Mem = m })
}

// WithSim sets the full default simulator configuration (memory system,
// edge capacity, cycle budget).
func WithSim(s SimConfig) Option {
	return optionFunc(func(c *config) { c.sim = s })
}

// WithTrace sets the trace-collection configuration RunTraced uses
// (event caps); the zero TraceConfig selects generous defaults.
func WithTrace(tc TraceConfig) Option {
	return optionFunc(func(c *config) { c.trc = tc })
}

// Backend selects the execution engine behind Run/RunCtx/RunWith/
// RunFaulted.
type Backend uint8

const (
	// BackendInterpreted (the default) executes on the event-driven
	// graph interpreter (internal/dataflow) — the reference engine and
	// differential oracle.
	BackendInterpreted Backend = iota
	// BackendCompiled lowers each graph to specialized flat bytecode
	// (internal/codegen) once, then executes the bytecode. Bit-identical
	// to the interpreter (values, cycles, events) and several times
	// faster. Observed runs — RunTraced and RunProfiled — always use the
	// interpreter regardless of this setting: observers hook its
	// machinery, and observed runs are not hot paths.
	BackendCompiled
)

// String names the backend with the wire-level names ("interp",
// "compiled") used by the api package and the CLI flags.
func (b Backend) String() string {
	if b == BackendCompiled {
		return "compiled"
	}
	return "interp"
}

// WithBackend selects the execution engine (default BackendInterpreted).
func WithBackend(b Backend) Option {
	return optionFunc(func(c *config) { c.backend = b })
}

// WithPartitions splits each simulated graph into n event domains run
// through the partitioned scheduler (see DESIGN.md "Partitioned
// simulation"): per-domain event queues on worker goroutines,
// synchronized by conservative time windows that preserve the global
// (time, seq) order — results are bit-identical to the sequential
// engine for every n. Values 0 and 1 (the default) select the
// sequential queue. Both backends honor the setting: the interpreter
// shards its event heap, the compiled backend lowers a
// domain-renumbered module whose VM runs per-domain calendar rings
// behind the same barrier protocol (DESIGN.md "Partitioned VM").
// Observed runs (RunTraced, RunProfiled) ignore it; results are
// identical either way.
func WithPartitions(n int) Option {
	return optionFunc(func(c *config) { c.partitions = n })
}

// MaxPartitions is the largest accepted WithPartitions value.
const MaxPartitions = 64

// WithDeadline bounds every Run of the compiled program by a wall-clock
// duration: a run past the deadline aborts with an ErrSim-classed error
// wrapping dataflow.ErrCanceled. Zero (the default) means no wall-clock
// bound; the cycle budget (SimConfig.MaxCycles) still applies.
func WithDeadline(d time.Duration) Option {
	return optionFunc(func(c *config) { c.deadline = d })
}

// Compiled is a fully compiled program.
//
// A Compiled is immutable after CompileSource returns and safe for
// concurrent use: any number of goroutines may call its Run* methods at
// the same time. Each run gets a private memory image, event queue, and
// memory system; the graphs and the prebuilt per-graph structures are
// shared read-only (see DESIGN.md "Concurrency model").
type Compiled struct {
	Program *pegasus.Program
	Source  *cminor.Program
	Level   opt.Level
	// Sim is the default simulator configuration Run uses; RunWith
	// overrides it per call. CompileSource normalizes it, so this is
	// exactly the configuration a Run executes under.
	Sim SimConfig
	// Trace is the trace-collection configuration RunTraced uses.
	Trace TraceConfig
	// Deadline is the wall-clock budget each Run gets (see WithDeadline);
	// zero means unbounded.
	Deadline time.Duration
	// Backend is the execution engine Run/RunCtx/RunWith/RunFaulted use
	// (see WithBackend); RunTraced and RunProfiled always interpret.
	Backend Backend
	// Partitions is the event-domain count interpreter runs use (see
	// WithPartitions); values below 2 mean the sequential queue.
	Partitions int

	// shared is the prebuilt per-graph structure table every run of this
	// program reuses (built once, on first use, under sharedOnce).
	sharedOnce sync.Once
	shared     *dataflow.Shared

	// compiledMod is the lowered bytecode module BackendCompiled runs
	// (built once, on first use, under compiledOnce).
	compiledOnce sync.Once
	compiledMod  *codegen.Module

	// part is the domain assignment partitioned runs share (built once,
	// on first use, under partOnce).
	partOnce sync.Once
	part     *dataflow.Partition

	// compiledPartMod is the partitioned bytecode module compiled-backend
	// partitioned runs use. The domain assignment is baked into the
	// module's index layout at lowering, so it is a distinct module from
	// compiledMod (built once, on first use, under compiledPartOnce).
	compiledPartOnce sync.Once
	compiledPartMod  *codegen.Module
}

// sharedInfo returns the program's prebuilt simulation structures,
// building them on first use. Concurrent first calls build exactly once.
func (c *Compiled) sharedInfo() *dataflow.Shared {
	c.sharedOnce.Do(func() { c.shared = dataflow.Prebuild(c.Program) })
	return c.shared
}

// compiledInfo returns the program's lowered bytecode module, lowering it
// on first use. Concurrent first calls lower exactly once.
func (c *Compiled) compiledInfo() *codegen.Module {
	c.compiledOnce.Do(func() { c.compiledMod = codegen.Compile(c.Program) })
	return c.compiledMod
}

// partitionInfo returns the program's domain assignment, building it on
// first use. Only called when Partitions > 1, which CompileSource has
// validated to be in range.
func (c *Compiled) partitionInfo() *dataflow.Partition {
	c.partOnce.Do(func() {
		pt, err := dataflow.BuildPartition(c.Program, c.Partitions, nil)
		if err != nil {
			panic(err) // unreachable: Partitions validated at compile time
		}
		c.part = pt
	})
	return c.part
}

// compiledPartInfo returns the partitioned bytecode module, lowering it
// on first use. Only called when Partitions > 1 and the backend is
// compiled.
func (c *Compiled) compiledPartInfo() *codegen.Module {
	c.compiledPartOnce.Do(func() {
		mod, err := codegen.CompilePartitioned(c.Program, c.partitionInfo())
		if err != nil {
			panic(err) // unreachable: the partition is built from c.Program
		}
		c.compiledPartMod = mod
	})
	return c.compiledPartMod
}

// usePartitions reports whether a plain (unobserved) interpreter run
// should go through the partitioned scheduler. The compiled backend
// routes partitioned runs through compiledPartInfo instead.
func (c *Compiled) usePartitions() bool {
	return c.Partitions > 1 && c.Backend != BackendCompiled
}

// CompileSource parses, checks, builds, and optimizes a cMinor program.
// Every failure — including an invalid configuration option or a panic in
// a compiler pass — comes back classified under ErrCompile (or ErrInternal
// for recovered panics), never as a panic.
func CompileSource(src string, opts ...Option) (cp *Compiled, err error) {
	defer guard(&err)
	cfg := config{sim: dataflow.DefaultConfig()}
	for _, o := range opts {
		o.apply(&cfg)
	}
	if err := cfg.sim.Validate(); err != nil {
		return nil, classify(ErrCompile, err)
	}
	if cfg.partitions < 0 || cfg.partitions > MaxPartitions {
		return nil, classify(ErrCompile,
			fmt.Errorf("core: WithPartitions(%d) out of range [0, %d]", cfg.partitions, MaxPartitions))
	}
	prog, err := cminor.Parse(src)
	if err != nil {
		return nil, classify(ErrCompile, err)
	}
	if err := cminor.Check(prog); err != nil {
		return nil, classify(ErrCompile, err)
	}
	p, err := build.Compile(prog)
	if err != nil {
		return nil, classify(ErrCompile, err)
	}
	passes := opt.LevelOptions(cfg.level)
	if cfg.passes != nil {
		passes = *cfg.passes
	}
	if err := opt.Optimize(p, passes); err != nil {
		return nil, classify(ErrCompile, err)
	}
	// Normalize once here: the Config this Compiled reports is the Config
	// its runs actually execute under, zero fields already defaulted.
	return &Compiled{Program: p, Source: prog, Level: cfg.level, Sim: cfg.sim.Normalized(),
		Trace: cfg.trc, Deadline: cfg.deadline, Backend: cfg.backend, Partitions: cfg.partitions}, nil
}

// SimConfig configures a spatial execution.
type SimConfig = dataflow.Config

// SimResult is the outcome of a spatial execution.
type SimResult = dataflow.Result

// DefaultSim returns the default simulation configuration (dual-ported
// perfect memory, one-place edges).
func DefaultSim() SimConfig { return dataflow.DefaultConfig() }

// PerfectMemory returns the idealized memory configuration.
func PerfectMemory() memsys.Config { return memsys.PerfectConfig() }

// PaperMemory returns the realistic memory system of the paper's
// Section 7.3 with the given port count.
func PaperMemory(ports int) memsys.Config { return memsys.PaperConfig(ports) }

// simConfig returns the effective default simulator configuration.
func (c *Compiled) simConfig() SimConfig {
	if c.Sim == (SimConfig{}) {
		return dataflow.DefaultConfig()
	}
	return c.Sim
}

// deadlineCtx applies the program's wall-clock budget (WithDeadline) on
// top of the caller's context. The CancelFunc must always be called.
func (c *Compiled) deadlineCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.Deadline > 0 {
		return context.WithTimeout(ctx, c.Deadline)
	}
	return ctx, func() {}
}

// Run executes entry(args...) on the dataflow (spatial) simulator with
// the program's default configuration (see WithMemory / WithSim). All
// failures come back as ErrSim-classed errors (ErrInternal for recovered
// panics); deadlocks and livelocks carry a *DeadlockError/*LivelockError
// with a structured StuckReport, reachable through errors.As.
func (c *Compiled) Run(entry string, args []int64) (*SimResult, error) {
	return c.RunCtx(context.Background(), entry, args)
}

// RunCtx is Run with cooperative cancellation: the simulator polls ctx
// between events, so canceling it (or exceeding the WithDeadline budget)
// aborts the run with an ErrSim-classed error wrapping
// dataflow.ErrCanceled.
func (c *Compiled) RunCtx(ctx context.Context, entry string, args []int64) (res *SimResult, err error) {
	defer guard(&err)
	ctx, cancel := c.deadlineCtx(ctx)
	defer cancel()
	switch {
	case c.Backend == BackendCompiled && c.Partitions > 1:
		res, err = c.compiledPartInfo().RunCtx(ctx, entry, args, c.simConfig())
	case c.Backend == BackendCompiled:
		res, err = c.compiledInfo().RunCtx(ctx, entry, args, c.simConfig())
	case c.usePartitions():
		res, err = c.sharedInfo().RunPartitioned(ctx, entry, args, c.simConfig(), c.partitionInfo())
	default:
		res, err = c.sharedInfo().RunCtx(ctx, entry, args, c.simConfig())
	}
	return res, classify(ErrSim, err)
}

// RunFaulted is RunCtx under fault injection: inj perturbs edge
// deliveries, fire attempts, and memory responses during the run. Use
// NewInjector (planned faults) or NewJitterInjector (seeded random
// delays) to build inj; a nil inj behaves like RunCtx.
func (c *Compiled) RunFaulted(ctx context.Context, entry string, args []int64, inj *FaultInjector) (res *SimResult, err error) {
	defer guard(&err)
	ctx, cancel := c.deadlineCtx(ctx)
	defer cancel()
	switch {
	case c.Backend == BackendCompiled && c.Partitions > 1:
		res, err = c.compiledPartInfo().RunFaulted(ctx, entry, args, c.simConfig(), inj)
	case c.Backend == BackendCompiled:
		res, err = c.compiledInfo().RunFaulted(ctx, entry, args, c.simConfig(), inj)
	case c.usePartitions():
		res, err = c.sharedInfo().RunPartitionedFaulted(ctx, entry, args, c.simConfig(), c.partitionInfo(), inj)
	default:
		res, err = c.sharedInfo().RunFaulted(ctx, entry, args, c.simConfig(), inj)
	}
	return res, classify(ErrSim, err)
}

// RunWith executes with an explicit simulator configuration.
func (c *Compiled) RunWith(entry string, args []int64, cfg SimConfig) (res *SimResult, err error) {
	defer guard(&err)
	ctx, cancel := c.deadlineCtx(nil)
	defer cancel()
	switch {
	case c.Backend == BackendCompiled && c.Partitions > 1:
		res, err = c.compiledPartInfo().RunCtx(ctx, entry, args, cfg)
	case c.Backend == BackendCompiled:
		res, err = c.compiledInfo().RunCtx(ctx, entry, args, cfg)
	case c.usePartitions():
		res, err = c.sharedInfo().RunPartitioned(ctx, entry, args, cfg, c.partitionInfo())
	default:
		res, err = c.sharedInfo().RunCtx(ctx, entry, args, cfg)
	}
	return res, classify(ErrSim, err)
}

// Profile counts node firings during a profiled run.
type Profile = dataflow.Profile

// RunProfiled executes like Run while recording per-operator firing
// counts.
func (c *Compiled) RunProfiled(entry string, args []int64) (res *SimResult, prof *Profile, err error) {
	defer guard(&err)
	ctx, cancel := c.deadlineCtx(nil)
	defer cancel()
	res, prof, err = c.sharedInfo().RunProfiledCtx(ctx, entry, args, c.simConfig())
	return res, prof, classify(ErrSim, err)
}

// TraceConfig parameterizes trace collection (see WithTrace).
type TraceConfig = trace.Config

// Trace is the recorded event stream of a traced run.
type Trace = trace.Trace

// CritPath is the dynamic critical path extracted from a Trace.
type CritPath = trace.CritPath

// DefaultTrace returns the standard trace-collection configuration.
func DefaultTrace() TraceConfig { return trace.DefaultConfig() }

// RunTraced executes like Run while recording the full event stream:
// node firings with start/end cycles, stall attribution, and memory
// events. The Trace supports critical-path extraction
// (Trace.CriticalPath) and Chrome trace-event export (Trace.WriteChrome).
func (c *Compiled) RunTraced(entry string, args []int64) (res *SimResult, tr *Trace, err error) {
	return c.RunTracedWith(entry, args, c.simConfig(), c.Trace)
}

// RunTracedWith is RunTraced with explicit simulator and trace
// configurations.
func (c *Compiled) RunTracedWith(entry string, args []int64, cfg SimConfig, tc TraceConfig) (res *SimResult, tr *Trace, err error) {
	defer guard(&err)
	ctx, cancel := c.deadlineCtx(nil)
	defer cancel()
	res, tr, err = c.sharedInfo().RunTracedCtx(ctx, entry, args, cfg, tc)
	return res, tr, classify(ErrSim, err)
}

// RunSequential executes on the in-order AST interpreter (the sequential
// baseline) against the program's default memory system.
func (c *Compiled) RunSequential(entry string, args []int64) (res *interp.Result, err error) {
	defer guard(&err)
	mem := c.Sim.Mem
	if mem == (memsys.Config{}) {
		mem = memsys.PerfectConfig()
	}
	res, err = interp.New(c.Program, mem).Run(entry, args)
	return res, classify(ErrSim, err)
}

// Graph returns the Pegasus graph of a function.
func (c *Compiled) Graph(name string) *pegasus.Graph { return c.Program.Graph(name) }

// Dump renders the named function's Pegasus graph as text.
func (c *Compiled) Dump(name string) (string, error) {
	g := c.Program.Graph(name)
	if g == nil {
		return "", fmt.Errorf("core: no function %q", name)
	}
	return g.Dump(), nil
}

// Dot renders the named function's Pegasus graph in Graphviz format.
func (c *Compiled) Dot(name string) (string, error) {
	g := c.Program.Graph(name)
	if g == nil {
		return "", fmt.Errorf("core: no function %q", name)
	}
	return g.Dot(), nil
}

// StaticMemOps counts the live loads and stores across all functions.
func (c *Compiled) StaticMemOps() (loads, stores int) {
	for _, g := range c.Program.Funcs {
		l, s := g.CountMemOps()
		loads += l
		stores += s
	}
	return
}

// Verify re-checks every graph's structural invariants.
func (c *Compiled) Verify() error {
	for name, g := range c.Program.Funcs {
		if err := g.Verify(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// Fault is one planned perturbation of a run (see faultsim.Fault).
type Fault = faultsim.Fault

// FaultPlan is a set of faults to inject during one run.
type FaultPlan = faultsim.Plan

// FaultInjector deterministically perturbs a run (see Compiled.RunFaulted).
type FaultInjector = faultsim.Injector

// FaultOp enumerates fault kinds (FaultDrop, FaultDelay, ...).
type FaultOp = faultsim.Op

// Fault operations re-exported for convenience.
const (
	FaultDrop       = faultsim.Drop
	FaultDuplicate  = faultsim.Duplicate
	FaultDelay      = faultsim.Delay
	FaultFreeze     = faultsim.Freeze
	FaultMemStretch = faultsim.MemStretch
	FaultMemFail    = faultsim.MemFail
)

// NewInjector compiles a fault plan into an injector for RunFaulted.
func NewInjector(p FaultPlan) *FaultInjector { return faultsim.New(p) }

// NewJitterInjector returns an injector that delays a seeded random
// fraction `rate` of edge deliveries and memory responses — perturbations
// a correct self-timed circuit must absorb without changing its result.
func NewJitterInjector(seed int64, rate float64, maxDelay int64) *FaultInjector {
	return faultsim.NewJitter(seed, rate, maxDelay)
}
