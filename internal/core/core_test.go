package core

import (
	"strings"
	"testing"

	"spatial/internal/memsys"
	"spatial/internal/opt"
)

const demo = `
int data[32];
int process(int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) data[i] = i * 2;
  for (i = 0; i < n; i++) s += data[i];
  return s;
}`

func TestCompileAndRun(t *testing.T) {
	cp, err := CompileSource(demo, WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cp.Run("process", []int64{32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 992 {
		t.Errorf("process(32) = %d, want 992", res.Value)
	}
	seq, err := cp.RunSequential("process", []int64{32})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Value != res.Value {
		t.Errorf("sequential %d != spatial %d", seq.Value, res.Value)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileSource("int f( {"); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := CompileSource("int f(void) { return g; }"); err == nil {
		t.Error("check error not reported")
	}
}

func TestCustomPasses(t *testing.T) {
	passes := opt.LevelOptions(opt.Full)
	passes.LoadAfterStore = false
	cp, err := CompileSource(`int g; int f(int x) { g = x; return g; }`,
		WithPasses(passes))
	if err != nil {
		t.Fatal(err)
	}
	loads, _ := cp.StaticMemOps()
	if loads != 1 {
		t.Errorf("load-after-store disabled but load count = %d", loads)
	}
	res, err := cp.Run("f", []int64{9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 9 {
		t.Errorf("f(9) = %d", res.Value)
	}
}

func TestDumpAndDot(t *testing.T) {
	cp, err := CompileSource(demo, WithLevel(opt.Medium))
	if err != nil {
		t.Fatal(err)
	}
	d, err := cp.Dump("process")
	if err != nil || !strings.Contains(d, "hyper") {
		t.Errorf("dump: %v\n%s", err, d)
	}
	dot, err := cp.Dot("process")
	if err != nil || !strings.Contains(dot, "digraph") {
		t.Errorf("dot: %v", err)
	}
	if _, err := cp.Dump("missing"); err == nil {
		t.Error("missing function accepted")
	}
}

func TestRunWithMemoryConfigs(t *testing.T) {
	cp, err := CompileSource(demo, WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSim()
	cfg.Mem = PaperMemory(1)
	res, err := cp.RunWith("process", []int64{32}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 992 {
		t.Errorf("value = %d", res.Value)
	}
}

func TestVerifyPost(t *testing.T) {
	cp, err := CompileSource(demo, WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Verify(); err != nil {
		t.Error(err)
	}
}

func TestRunTraced(t *testing.T) {
	cp, err := CompileSource(demo,
		WithLevel(opt.Full), WithMemory(PaperMemory(2)), WithTrace(TraceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	res, tr, err := cp.RunTraced("process", []int64{32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 992 {
		t.Errorf("traced process(32) = %d, want 992", res.Value)
	}
	cp2 := tr.CriticalPath()
	if cp2 == nil {
		t.Fatal("no critical path")
	}
	if cp2.Length <= 0 || cp2.Length > res.Stats.Cycles {
		t.Errorf("path length %d outside (0, %d]", cp2.Length, res.Stats.Cycles)
	}
	if len(tr.Mem) == 0 {
		t.Error("no memory events recorded under realistic memory")
	}
}

func TestCompiledSimIsNormalized(t *testing.T) {
	// A partial WithSim must be normalized at compile time so the
	// recorded Config matches what runs (previously the raw zero-filled
	// struct was stored while Run silently applied defaults).
	cp, err := CompileSource(demo, WithSim(SimConfig{EdgeCap: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Sim.EdgeCap != 2 {
		t.Errorf("EdgeCap = %d, want 2", cp.Sim.EdgeCap)
	}
	if cp.Sim.MaxCycles <= 0 || cp.Sim.MaxActivations <= 0 {
		t.Errorf("limits not defaulted: %+v", cp.Sim)
	}
	if cp.Sim.Mem == (memsys.Config{}) {
		t.Error("memory config not defaulted")
	}
	if cp.Sim != cp.Sim.Normalized() {
		t.Errorf("recorded config is not a fixed point of normalization: %+v", cp.Sim)
	}
}
