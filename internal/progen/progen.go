// Package progen generates random cMinor programs for differential
// testing: every generated program is deterministic, terminates (all
// loops have fixed trip counts), and keeps memory accesses in bounds
// (indices are masked). Running a generated program on the dataflow
// simulator at any optimization level must produce the same checksum as
// the sequential interpreter — a whole-stack correctness probe for the
// front end, the builder, the optimizer, and both execution engines.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	// Arrays is the number of global arrays (each 64 ints).
	Arrays int
	// Scalars is the number of global scalars.
	Scalars int
	// Stmts is the number of top-level statements in the body.
	Stmts int
	// MaxDepth bounds statement nesting.
	MaxDepth int
	// Seed drives the generator.
	Seed int64
}

// DefaultConfig returns a medium-size program shape.
func DefaultConfig(seed int64) Config {
	return Config{Arrays: 3, Scalars: 3, Stmts: 8, MaxDepth: 3, Seed: seed}
}

// Generate produces a self-contained program whose entry function
// `bench` takes no arguments and returns a checksum over all mutable
// state.
func Generate(cfg Config) string {
	g := &gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	return g.program()
}

type gen struct {
	cfg      Config
	rng      *rand.Rand
	sb       strings.Builder
	vars     []string // in-scope scalar locals (readable)
	writable int      // prefix of vars that may be assigned (loop indices are read-only)
	loop     int      // loop nesting depth (to pick distinct index names)
}

const arrayLen = 64

func (g *gen) program() string {
	for i := 0; i < g.cfg.Arrays; i++ {
		fmt.Fprintf(&g.sb, "int arr%d[%d];\n", i, arrayLen)
	}
	for i := 0; i < g.cfg.Scalars; i++ {
		fmt.Fprintf(&g.sb, "int gv%d = %d;\n", i, g.rng.Intn(100))
	}
	// A couple of helper functions the body may call.
	g.sb.WriteString(`
int clamp255(int x) {
  if (x < 0) return 0;
  if (x > 255) return 255;
  return x;
}
int mix(int a, int b) { return (a ^ b) + ((a & b) << 1); }
`)
	g.sb.WriteString("int bench(void) {\n")
	g.vars = nil
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("v%d", i)
		fmt.Fprintf(&g.sb, "  int %s = %d;\n", name, g.rng.Intn(50))
		g.vars = append(g.vars, name)
	}
	g.writable = len(g.vars)
	for i := 0; i < g.cfg.Stmts; i++ {
		g.stmt(1, g.cfg.MaxDepth)
	}
	// Checksum everything.
	g.sb.WriteString("  int chk = 0;\n  int ci;\n")
	for i := 0; i < g.cfg.Arrays; i++ {
		fmt.Fprintf(&g.sb, "  for (ci = 0; ci < %d; ci++) chk = chk * 31 + arr%d[ci];\n", arrayLen, i)
	}
	for i := 0; i < g.cfg.Scalars; i++ {
		fmt.Fprintf(&g.sb, "  chk = chk * 17 + gv%d;\n", i)
	}
	for _, v := range g.vars {
		fmt.Fprintf(&g.sb, "  chk = chk * 13 + %s;\n", v)
	}
	g.sb.WriteString("  return chk & 0x7fffffff;\n}\n")
	return g.sb.String()
}

func (g *gen) indent(depth int) {
	g.sb.WriteString(strings.Repeat("  ", depth))
}

// stmt emits one random statement.
func (g *gen) stmt(depth, budget int) {
	choice := g.rng.Intn(10)
	if budget <= 0 && choice >= 6 {
		choice = g.rng.Intn(6) // only simple statements deep down
	}
	switch {
	case choice < 3: // scalar assignment
		g.indent(depth)
		fmt.Fprintf(&g.sb, "%s = %s;\n", g.scalarLV(), g.expr(2))
	case choice < 6: // array store
		g.indent(depth)
		fmt.Fprintf(&g.sb, "arr%d[%s] = %s;\n",
			g.rng.Intn(g.cfg.Arrays), g.index(), g.expr(2))
	case choice < 8: // if / if-else
		g.indent(depth)
		fmt.Fprintf(&g.sb, "if (%s) {\n", g.expr(1))
		g.stmt(depth+1, budget-1)
		g.indent(depth)
		if g.rng.Intn(2) == 0 {
			g.sb.WriteString("} else {\n")
			g.stmt(depth+1, budget-1)
			g.indent(depth)
		}
		g.sb.WriteString("}\n")
	default: // bounded for loop
		idx := fmt.Sprintf("i%d", g.loop)
		g.loop++
		trip := 4 + g.rng.Intn(arrayLen-4)
		g.indent(depth)
		fmt.Fprintf(&g.sb, "{ int %s;\n", idx)
		g.indent(depth)
		fmt.Fprintf(&g.sb, "for (%s = 0; %s < %d; %s++) {\n", idx, idx, trip, idx)
		inner := 1 + g.rng.Intn(2)
		g.vars = append(g.vars, idx)
		for k := 0; k < inner; k++ {
			g.stmt(depth+1, budget-1)
		}
		g.vars = g.vars[:len(g.vars)-1]
		g.indent(depth)
		g.sb.WriteString("}\n")
		g.indent(depth)
		g.sb.WriteString("}\n")
		g.loop--
	}
}

// scalarLV picks a scalar assignment target. Loop indices are excluded:
// reassigning them could make a loop's trip count unbounded.
func (g *gen) scalarLV() string {
	if g.rng.Intn(2) == 0 && g.cfg.Scalars > 0 {
		return fmt.Sprintf("gv%d", g.rng.Intn(g.cfg.Scalars))
	}
	return g.vars[g.rng.Intn(g.writable)]
}

// index produces an always-in-bounds array index expression.
func (g *gen) index() string {
	return fmt.Sprintf("(%s) & %d", g.expr(1), arrayLen-1)
}

// expr emits a random side-effect-free expression.
func (g *gen) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.rng.Intn(8) {
	case 0:
		return g.atom()
	case 1:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.atom())
	case 4:
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), g.cmpOp(), g.expr(depth-1))
	case 5:
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), g.bitOp(), g.expr(depth-1))
	case 6:
		// Division with a guaranteed-nonzero divisor.
		return fmt.Sprintf("(%s / ((%s & 7) + 1))", g.expr(depth-1), g.atom())
	default:
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("clamp255(%s)", g.expr(depth-1))
		case 1:
			return fmt.Sprintf("mix(%s, %s)", g.expr(depth-1), g.atom())
		default:
			// ?: arms are speculated by the hyperblock machinery; the
			// checker forbids calls inside them, so use call-free arms.
			return fmt.Sprintf("(%s ? %s : %s)", g.atom(), g.pureExpr(depth-1), g.pureExpr(depth-1))
		}
	}
}

// pureExpr emits an expression with no calls (usable inside ?: arms).
func (g *gen) pureExpr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.rng.Intn(4) {
	case 0:
		return g.atom()
	case 1:
		return fmt.Sprintf("(%s + %s)", g.pureExpr(depth-1), g.pureExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s %s %s)", g.pureExpr(depth-1), g.bitOp(), g.atom())
	default:
		return fmt.Sprintf("(%s * %s)", g.pureExpr(depth-1), g.atom())
	}
}

func (g *gen) cmpOp() string {
	return []string{"<", ">", "<=", ">=", "==", "!="}[g.rng.Intn(6)]
}

func (g *gen) bitOp() string {
	return []string{"&", "|", "^", ">>", "<<"}[g.rng.Intn(5)]
}

// atom emits a leaf: a constant, a scalar, or an array read.
func (g *gen) atom() string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(64))
	case 1:
		if g.cfg.Scalars > 0 {
			return fmt.Sprintf("gv%d", g.rng.Intn(g.cfg.Scalars))
		}
		fallthrough
	case 2:
		return g.vars[g.rng.Intn(len(g.vars))]
	default:
		return fmt.Sprintf("arr%d[(%s) & %d]",
			g.rng.Intn(g.cfg.Arrays), g.vars[g.rng.Intn(len(g.vars))], arrayLen-1)
	}
}
