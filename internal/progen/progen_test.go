package progen

import (
	"testing"

	"spatial/internal/build"
	"spatial/internal/cminor"
	"spatial/internal/dataflow"
	"spatial/internal/interp"
	"spatial/internal/memsys"
	"spatial/internal/opt"
)

func TestGeneratedProgramsParse(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := Generate(DefaultConfig(seed))
		prog, err := cminor.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if err := cminor.Check(prog); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(7))
	b := Generate(DefaultConfig(7))
	if a != b {
		t.Error("generator is not deterministic for a fixed seed")
	}
	c := Generate(DefaultConfig(8))
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

// TestDifferentialFuzz is the whole-stack fuzz probe: random programs,
// all optimization levels, dataflow vs interpreter.
func TestDifferentialFuzz(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		src := Generate(DefaultConfig(int64(seed)))
		prog, err := cminor.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := cminor.Check(prog); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var want int64
		haveWant := false
		for _, level := range []opt.Level{opt.None, opt.Medium, opt.Full} {
			p, err := build.Compile(prog)
			if err != nil {
				t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
			}
			if err := opt.OptimizeAt(p, level); err != nil {
				t.Fatalf("seed %d level %v: %v\n%s", seed, level, err, src)
			}
			if !haveWant {
				it := interp.New(p, memsys.PerfectConfig())
				res, err := it.Run("bench", nil)
				if err != nil {
					t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
				}
				want = res.Value
				haveWant = true
			}
			res, err := dataflow.Run(p, "bench", nil, dataflow.DefaultConfig())
			if err != nil {
				t.Fatalf("seed %d level %v: dataflow: %v\n%s", seed, level, err, src)
			}
			if res.Value != want {
				t.Fatalf("seed %d level %v: checksum %d, want %d\n%s",
					seed, level, res.Value, want, src)
			}
		}
	}
}

// TestDifferentialFuzzLargerShapes stresses deeper nesting and more
// statements on a few seeds.
func TestDifferentialFuzzLargerShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(100); seed < 106; seed++ {
		cfg := Config{Arrays: 4, Scalars: 4, Stmts: 14, MaxDepth: 4, Seed: seed}
		src := Generate(cfg)
		prog, err := cminor.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := cminor.Check(prog); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := build.Compile(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		it := interp.New(p, memsys.PerfectConfig())
		want, err := it.Run("bench", nil)
		if err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
		if err := opt.OptimizeAt(p, opt.Full); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		res, err := dataflow.Run(p, "bench", nil, dataflow.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: dataflow: %v\n%s", seed, err, src)
		}
		if res.Value != want.Value {
			t.Fatalf("seed %d: %d vs %d\n%s", seed, res.Value, want.Value, src)
		}
	}
}
