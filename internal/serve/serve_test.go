package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatial/api"
	"spatial/internal/core"
)

// TestOverloadBackpressure fills the pool and the queue, then verifies
// the next request is shed with ErrOverload instead of waiting.
func TestOverloadBackpressure(t *testing.T) {
	e := newEngine(t, Config{Workers: 1, QueueDepth: 1, CacheEntries: 4})
	defer e.Close()

	gate := make(chan struct{})
	var once sync.Once
	e.compileFn = func(r Request) (*core.Compiled, error) {
		once.Do(func() { <-gate }) // first compile blocks the only worker
		return compileRequest(r)
	}

	req := testReq(srcLoop, api.LevelFull, "f", 10)
	first := make(chan error, 1)
	go func() {
		_, err := e.Do(context.Background(), req)
		first <- err
	}()
	// Wait until the worker is inside the gated compile.
	for e.Stats().CacheMisses == 0 {
		time.Sleep(time.Millisecond)
	}

	// Occupy the single queue slot.
	second := make(chan error, 1)
	go func() {
		_, err := e.Do(context.Background(), req)
		second <- err
	}()
	for len(e.queue) == 0 {
		time.Sleep(time.Millisecond)
	}

	// Queue full, worker busy: this one must be rejected immediately.
	if _, err := e.Do(context.Background(), req); !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	if s := e.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}

	close(gate)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}
}

// TestDeadline verifies a per-request deadline aborts a long run through
// the existing RunCtx cancellation path.
func TestDeadline(t *testing.T) {
	e := newEngine(t, Config{Workers: 1, CacheEntries: 4})
	defer e.Close()

	// ~10^8 iterations: far longer than a microsecond deadline.
	slow := `
int f(void) {
  int i; int s = 0;
  for (i = 0; i < 100000000; i++) s += i;
  return s;
}`
	req := testReq(slow, api.LevelNone, "f")
	req.Deadline = time.Microsecond
	_, err := e.Do(context.Background(), req)
	if err == nil {
		t.Fatal("expected a deadline error")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, core.ErrSim) {
		t.Fatalf("err = %v, want DeadlineExceeded or ErrSim class", err)
	}
}

// TestDoBatch checks order preservation and per-item results, with the
// batch larger than the queue (blocking admission).
func TestDoBatch(t *testing.T) {
	e := newEngine(t, Config{Workers: 2, QueueDepth: 2, CacheEntries: 4})
	defer e.Close()

	reqs := make([]Request, 9)
	for i := range reqs {
		reqs[i] = testReq(srcAdd, api.LevelFull, "f", int64(i), 100)
	}
	out := e.DoBatch(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(out), len(reqs))
	}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if want := int64(i + 100); r.Resp.Value != want {
			t.Fatalf("item %d = %d, want %d", i, r.Resp.Value, want)
		}
	}
	s := e.Stats()
	if s.Completed != uint64(len(reqs)) || s.CacheMisses != 1 {
		t.Fatalf("stats = completed %d misses %d, want %d/1", s.Completed, s.CacheMisses, len(reqs))
	}
}

// TestParallelDeterminism hammers the engine from many goroutines with a
// mix of programs and verifies every response is bit-identical to the
// serial reference — the service-level version of the simulator's
// determinism contract. Run under -race in CI.
func TestParallelDeterminism(t *testing.T) {
	e := newEngine(t, Config{Workers: 4, QueueDepth: 64, CacheEntries: 8})
	defer e.Close()

	mix := []Request{
		testReq(srcLoop, api.LevelFull, "f", 10),
		testReq(srcArr, api.LevelFull, "f", 3),
		testReq(srcLoop, api.LevelMedium, "f", 10),
	}
	refs := make([]*Response, len(mix))
	for i, r := range mix {
		resp, err := e.Do(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = resp
	}

	const goroutines = 8
	iters := 6
	if testing.Short() {
		iters = 2
	}
	var bad atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % len(mix)
				resp, err := e.Do(context.Background(), mix[k])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					bad.Add(1)
					return
				}
				ref := refs[k]
				if resp.Value != ref.Value || resp.Stats.Cycles != ref.Stats.Cycles || resp.Stats.Events != ref.Stats.Events {
					t.Errorf("goroutine %d req %d diverged: (%d,%d,%d) vs (%d,%d,%d)", g, k,
						resp.Value, resp.Stats.Cycles, resp.Stats.Events, ref.Value, ref.Stats.Cycles, ref.Stats.Events)
					bad.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() > 0 {
		t.FailNow()
	}
	s := e.Stats()
	if s.CacheMisses != uint64(len(mix)) {
		t.Fatalf("misses = %d, want %d (every repeat served from cache)", s.CacheMisses, len(mix))
	}
}

// TestClosed verifies post-Close submissions fail fast and Close is
// idempotent.
func TestClosed(t *testing.T) {
	e := newEngine(t, Config{Workers: 1})
	e.Close()
	e.Close()
	if _, err := e.Do(context.Background(), testReq(srcAdd, api.LevelNone, "f", 1, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestCanceledWhileQueued verifies a job abandoned by its caller is
// dropped by the worker rather than run.
func TestCanceledWhileQueued(t *testing.T) {
	e := newEngine(t, Config{Workers: 1, QueueDepth: 2, CacheEntries: 4})
	defer e.Close()

	gate := make(chan struct{})
	var once sync.Once
	e.compileFn = func(r Request) (*core.Compiled, error) {
		once.Do(func() { <-gate })
		return compileRequest(r)
	}

	req := testReq(srcLoop, api.LevelFull, "f", 10)
	first := make(chan error, 1)
	go func() {
		_, err := e.Do(context.Background(), req)
		first <- err
	}()
	for e.Stats().CacheMisses == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, req)
		second <- err
	}()
	for len(e.queue) == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-second; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	close(gate)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	// The canceled job must not have produced a completed run, and it is
	// counted as Canceled — distinct from Failed (it ran into no error;
	// it never ran) and from Rejected (it was admitted).
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never drained the abandoned job: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	s := e.Stats()
	if s.Completed != 1 {
		t.Fatalf("completed = %d, want 1", s.Completed)
	}
	if s.Canceled != 1 || s.Failed != 0 || s.Rejected != 0 {
		t.Fatalf("canceled/failed/rejected = %d/%d/%d, want 1/0/0", s.Canceled, s.Failed, s.Rejected)
	}
	// Close must drain cleanly with abandoned work in history — guard
	// against a wedge with a watchdog.
	closed := make(chan struct{})
	go func() {
		e.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged after an abandoned-while-queued request")
	}
}
