// Package serve is the batch simulation service layer: it turns the
// one-program, one-run facade into an engine that handles many
// independent (program, input) requests at once.
//
// Two mechanisms carry the load:
//
//   - A content-addressed compile cache memoizes the full CASH pipeline
//     (CFG → hyperblocks → PSSA → Pegasus → memory optimizations). The
//     key is a SHA-256 digest of the source and every compile-time
//     parameter; the value is the immutable *core.Compiled with its
//     prebuilt per-graph structures. The cache is a bounded LRU with
//     single-flight: N concurrent requests for the same program compile
//     it exactly once.
//
//   - A fixed worker pool (default GOMAXPROCS) executes runs. Admission
//     is a bounded queue: when it is full the engine rejects with
//     ErrOverload instead of growing goroutines without bound, so an
//     overloaded service degrades by shedding load, not by dying.
//
// Requests are embarrassingly parallel — the paper's independence
// argument applied at the service level: each run owns its memory image,
// event queue, and memory system, and shares only immutable compiled
// structures (see DESIGN.md "Concurrency model").
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spatial/api"
	"spatial/internal/core"
	"spatial/internal/dataflow"
)

// Errors returned by the engine itself (run and compile failures come
// back classified by the core facade: core.ErrCompile / core.ErrSim).
var (
	// ErrOverload reports that the admission queue was full; the caller
	// should back off and retry.
	ErrOverload = errors.New("serve: overloaded, admission queue full")
	// ErrClosed reports a request submitted after Close.
	ErrClosed = errors.New("serve: engine closed")
)

// Config parameterizes an Engine. The zero value selects sensible
// defaults for every field.
type Config struct {
	// Workers is the number of goroutines executing runs; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue; a request arriving when the
	// queue is full is rejected with ErrOverload. 0 means 4×Workers.
	QueueDepth int
	// CacheEntries bounds the compile cache (distinct compiled programs
	// kept); 0 means 64.
	CacheEntries int
	// CacheDir, when non-empty, persists the compile cache to this
	// directory: every successful compile is written through (as its
	// wire-form inputs), hits refresh recency, evictions delete, and New
	// reloads — recompiling — the most recent CacheEntries programs so a
	// restarted engine answers its first request for a known program
	// with a cache hit. Empty means in-memory only.
	CacheDir string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
	return c
}

// Request is one simulation to execute: a wire-form program
// (compile-time fields, which form the cache key) and an invocation
// (run-time fields, which do not).
//
// The compile-time half is api.Program — the same versioned wire type
// the cashd daemon decodes off the network — so the in-process and
// network paths serve one contract. The run-time half mirrors
// api.RunRequest (Entry/Args/TimeoutMS), with the timeout already
// lifted to a time.Duration.
//
// NOTE: TestRequestFieldInventory pins this struct's field set against
// the cache-key function; adding a field here requires deciding —
// there — whether it keys the cache.
type Request struct {
	// Program is the compile-time half: source, level, pass toggles,
	// simulator configuration. Its wire sim config is converted and
	// normalized before keying, so configs differing only in defaulted
	// fields share a cache entry.
	api.Program

	// Entry is the function to run ("main" when empty).
	Entry string
	// Args are the entry function's arguments.
	Args []int64
	// Deadline, when positive, bounds the request's total time in the
	// engine — queue wait plus run — via the run's context.
	Deadline time.Duration
}

// Response is the outcome of one request.
type Response struct {
	Value int64
	Stats dataflow.Stats
	// CacheHit reports whether compilation was served from the cache
	// (including joining a compile already in flight).
	CacheHit bool
	// Wait is the time the request spent queued before a worker took it.
	Wait time.Duration
	// Total is the request's full residence time in the engine.
	Total time.Duration
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Completed uint64 // runs finished successfully
	Failed    uint64 // requests that ended in a compile or run error
	Rejected  uint64 // requests shed with ErrOverload
	Canceled  uint64 // requests abandoned while queued (never ran)

	CacheHits      uint64 // lookups served by a ready entry
	CacheShared    uint64 // lookups that joined an in-flight compile
	CacheMisses    uint64 // lookups that had to compile
	CacheEvictions uint64 // ready entries evicted by the LRU bound
	CacheEntries   int    // entries currently resident

	QueueLen        int // requests waiting for a worker right now
	QueueCap        int // admission queue bound (Config.QueueDepth)
	DiskLoaded      int // entries warmed from CacheDir at startup
	DiskQuarantined int // corrupt persisted entries quarantined at startup
}

// HitRate returns the fraction of lookups that avoided a compile.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheShared + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits+s.CacheShared) / float64(total)
}

// job is one queued request with its completion channel.
type job struct {
	req    Request
	ctx    context.Context
	queued time.Time
	done   chan jobResult
}

type jobResult struct {
	resp *Response
	err  error
}

// Engine is the batch simulation service. Create one with New, submit
// with Do or DoBatch from any number of goroutines, and Close it when
// done. All methods are safe for concurrent use.
type Engine struct {
	cfg   Config
	queue chan *job

	mu    sync.Mutex // guards cache
	cache *compileCache

	// disk is the persistent cache store; nil without Config.CacheDir.
	// All disk operations happen outside e.mu and are best-effort.
	disk            *diskStore
	diskLoaded      int
	diskQuarantined int

	// compileFn builds a Compiled for a request; tests swap it to count
	// and instrument pipeline executions.
	compileFn func(Request) (*core.Compiled, error)

	completed atomic.Uint64
	failed    atomic.Uint64
	rejected  atomic.Uint64
	canceled  atomic.Uint64

	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup
}

// New starts an engine with cfg's worker pool and cache. With
// Config.CacheDir set it also opens the persistent store and warms the
// in-memory cache by recompiling the most recently used persisted
// programs (newest kept, LRU bound enforced across the restart); a
// persisted program the current compiler rejects is dropped from disk.
// New fails only on an unusable cache directory.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:       cfg,
		queue:     make(chan *job, cfg.QueueDepth),
		cache:     newCompileCache(cfg.CacheEntries),
		compileFn: compileRequest,
	}
	if cfg.CacheDir != "" {
		d, err := openDiskStore(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		e.disk = d
		entries, quarantined := d.load(cfg.CacheEntries)
		e.diskQuarantined = quarantined
		for _, ent := range entries {
			cp, err := e.compileFn(Request{Program: ent.prog})
			if err != nil {
				d.remove(ent.key)
				continue
			}
			e.cache.insert(ent.key, cp)
			e.diskLoaded++
		}
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e, nil
}

// compileRequest runs the full pipeline for a request's compile-time
// fields, converting the wire program through the one api→internal
// mapping (wire.go).
func compileRequest(r Request) (*core.Compiled, error) {
	opts, err := coreOptions(r.Program)
	if err != nil {
		return nil, core.Classified(core.ErrCompile, err)
	}
	return core.CompileSource(r.Source, opts...)
}

// Close stops accepting requests, waits for queued and running work to
// drain, and returns. Close is idempotent.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return
	}
	e.closed = true
	close(e.queue)
	e.closeMu.Unlock()
	e.wg.Wait()
}

// Do submits one request and blocks until it completes, fails, or ctx is
// done. A full admission queue rejects immediately with ErrOverload; a
// nil ctx means context.Background(). Do is safe to call from any number
// of goroutines.
func (e *Engine) Do(ctx context.Context, req Request) (*Response, error) {
	return e.submit(ctx, req, false)
}

// BatchResult pairs one batch item's response with its error.
type BatchResult struct {
	Resp *Response
	Err  error
}

// DoBatch submits every request and waits for all of them, returning
// results in request order. Unlike Do, admission blocks instead of
// rejecting — the batch itself bounds the number of waiters, so there is
// no unbounded growth — making DoBatch an all-or-errors bulk interface.
func (e *Engine) DoBatch(ctx context.Context, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	for i, r := range reqs {
		go func(i int, r Request) {
			defer wg.Done()
			resp, err := e.submit(ctx, r, true)
			out[i] = BatchResult{Resp: resp, Err: err}
		}(i, r)
	}
	wg.Wait()
	return out
}

// submit enqueues a job and waits for its result. block selects the
// admission policy: false rejects with ErrOverload when the queue is
// full, true waits for a slot (DoBatch).
func (e *Engine) submit(ctx context.Context, req Request, block bool) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}
	j := &job{req: req, ctx: ctx, queued: time.Now(), done: make(chan jobResult, 1)}

	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return nil, ErrClosed
	}
	if block {
		// Blocking admission: hold the RLock so Close cannot close the
		// queue mid-send; Close's Lock waits for us.
		select {
		case e.queue <- j:
		case <-ctx.Done():
			e.closeMu.RUnlock()
			return nil, ctx.Err()
		}
	} else {
		select {
		case e.queue <- j:
		default:
			e.closeMu.RUnlock()
			e.rejected.Add(1)
			return nil, fmt.Errorf("%w (depth %d)", ErrOverload, e.cfg.QueueDepth)
		}
	}
	e.closeMu.RUnlock()

	select {
	case r := <-j.done:
		return r.resp, r.err
	case <-ctx.Done():
		// The worker will observe the canceled context and drop the job;
		// the buffered done channel never blocks it.
		return nil, ctx.Err()
	}
}

// errAbandoned marks a job whose caller gave up while it was still
// queued: the work never ran, so it is neither a completion nor a
// failure. The caller's own context error is wrapped alongside.
var errAbandoned = errors.New("serve: request abandoned while queued")

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		resp, err := e.process(j)
		switch {
		case err == nil:
			e.completed.Add(1)
		case errors.Is(err, errAbandoned):
			e.canceled.Add(1)
		default:
			e.failed.Add(1)
		}
		j.done <- jobResult{resp: resp, err: err}
	}
}

// process executes one job on the calling worker: resolve the compiled
// program through the cache (compiling it here if this job is the
// flight's leader), then run it under the job's context.
func (e *Engine) process(j *job) (*Response, error) {
	wait := time.Since(j.queued)
	if err := j.ctx.Err(); err != nil {
		// Abandoned while queued (deadline or caller cancellation): the
		// run never starts, and Stats counts it apart from failures.
		return nil, fmt.Errorf("%w: %w", errAbandoned, err)
	}
	cp, hit, err := e.Resolve(j.ctx, j.req)
	if err != nil {
		return nil, err
	}
	entry := j.req.Entry
	if entry == "" {
		entry = "main"
	}
	res, err := cp.RunCtx(j.ctx, entry, j.req.Args)
	if err != nil {
		return nil, err
	}
	return &Response{
		Value:    res.Value,
		Stats:    res.Stats,
		CacheHit: hit,
		Wait:     wait,
		Total:    time.Since(j.queued),
	}, nil
}

// Resolve resolves the request's program through the compile cache
// without running it: it returns the immutable compiled program,
// compiling (and write-through persisting) it if absent. The second
// result reports whether the compilation was shared (a ready entry or a
// joined flight) rather than performed by this call. Resolve is what
// the daemon's /v1/compile endpoint and traced runs use; Do and DoBatch
// resolve through it on a worker.
func (e *Engine) Resolve(ctx context.Context, req Request) (*core.Compiled, bool, error) {
	key, err := req.key()
	if err != nil {
		return nil, false, core.Classified(core.ErrCompile, err)
	}
	e.mu.Lock()
	ent, leader := e.cache.lookup(key)
	e.mu.Unlock()
	if leader {
		cp, cerr := e.compileFn(req)
		e.mu.Lock()
		evicted := e.cache.finish(ent, cp, cerr)
		e.mu.Unlock()
		if e.disk != nil {
			if cerr == nil {
				_ = e.disk.put(key, req.Program) // best-effort: disk loss = cold cache
			}
			for _, k := range evicted {
				e.disk.remove(k)
			}
		}
		return cp, false, cerr
	}
	cp, werr := ent.wait(ctx)
	if werr == nil && e.disk != nil {
		e.disk.touch(key)
	}
	return cp, true, werr
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		CacheHits:       e.cache.hits,
		CacheShared:     e.cache.shared,
		CacheMisses:     e.cache.misses,
		CacheEvictions:  e.cache.evictions,
		CacheEntries:    e.cache.lru.Len(),
		DiskLoaded:      e.diskLoaded,
		DiskQuarantined: e.diskQuarantined,
	}
	e.mu.Unlock()
	s.Completed = e.completed.Load()
	s.Failed = e.failed.Load()
	s.Rejected = e.rejected.Load()
	s.Canceled = e.canceled.Load()
	s.QueueLen = len(e.queue)
	s.QueueCap = e.cfg.QueueDepth
	return s
}
