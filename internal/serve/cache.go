package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"spatial/api"
	"spatial/internal/core"
)

// cacheKey is the content address of one compiled program: a SHA-256
// digest over the source text and every compile-time parameter that can
// change the resulting circuit or its default execution environment
// (optimization level, explicit pass toggles, normalized simulator
// configuration). Run-time parameters — entry, arguments, deadline — are
// deliberately excluded: they select what to run, not what to build.
type cacheKey [sha256.Size]byte

func (k cacheKey) String() string { return hex.EncodeToString(k[:]) }

// programKey computes a wire program's content address. The simulator
// configuration is converted to its internal form and normalized first,
// so two requests whose configs differ only in defaulted zero fields
// (e.g. EdgeCap 0 vs 1) share a compilation, while genuinely different
// configs get distinct keys. This key addresses the (in-memory and
// on-disk) compile cache; the coarser api.Program.Key, computed on the
// raw wire form, routes between shards.
func programKey(p api.Program) (cacheKey, error) {
	level, err := levelOf(p.Level)
	if err != nil {
		return cacheKey{}, err
	}
	sim, err := simOf(p.Sim)
	if err != nil {
		return cacheKey{}, err
	}
	if err := sim.Validate(); err != nil {
		return cacheKey{}, err
	}
	backend, err := backendOf(p.Backend)
	if err != nil {
		return cacheKey{}, err
	}
	parts, err := partitionsOf(p.Partitions)
	if err != nil {
		return cacheKey{}, err
	}
	if parts <= 1 {
		// 0 and 1 both select the sequential queue; collapse them onto
		// one cache entry.
		parts = 0
	}
	h := sha256.New()
	// The backend keys via its normalized name, so "" and "interp"
	// collapse onto one entry while "compiled" gets its own — a cached
	// Compiled lazily builds the selected engine's structures, and its
	// Backend field is immutable after CompileSource. Partitions keys
	// likewise: a cached Compiled carries its lazily-built domain
	// assignment, immutable after CompileSource.
	fmt.Fprintf(h, "v1\x00level=%d\x00backend=%s\x00parts=%d\x00", level, backend, parts)
	if ps := passesOf(p.Passes); ps != nil {
		fmt.Fprintf(h, "passes=%#v\x00", *ps)
	}
	fmt.Fprintf(h, "sim=%#v\x00src=%d\x00", sim.Normalized(), len(p.Source))
	io.WriteString(h, p.Source)
	var k cacheKey
	h.Sum(k[:0])
	return k, nil
}

// key computes the request's content address (compile-time fields only).
func (r Request) key() (cacheKey, error) { return programKey(r.Program) }

// cacheEntry is one cache slot. ready is closed when the leader finishes
// compiling; cp/err must only be read after ready is closed. elem is the
// entry's position in the LRU list once the compile has succeeded (nil
// while in flight, so an in-flight entry can never be evicted).
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	cp    *core.Compiled
	err   error
	elem  *list.Element
}

// compileCache is the bounded, content-addressed, single-flight compile
// cache. Lookups for a key being compiled join the in-flight compilation
// instead of starting another; successful results enter a strict LRU
// bounded at max entries. Failed compilations are not cached — the next
// request retries — but every waiter of the failed flight receives the
// same error.
type compileCache struct {
	max     int
	entries map[cacheKey]*cacheEntry
	lru     *list.List // front = most recently used; values are *cacheEntry

	hits      uint64
	misses    uint64
	shared    uint64 // lookups that joined an in-flight compile
	evictions uint64
}

func newCompileCache(max int) *compileCache {
	return &compileCache{max: max, entries: make(map[cacheKey]*cacheEntry), lru: list.New()}
}

// lookup returns the entry for key and whether the caller is the leader
// responsible for compiling it (true exactly once per flight). The
// caller must hold e.mu of the owning engine.
func (c *compileCache) lookup(key cacheKey) (ent *cacheEntry, leader bool) {
	if ent, ok := c.entries[key]; ok {
		if ent.elem != nil {
			c.lru.MoveToFront(ent.elem)
			c.hits++
		} else {
			c.shared++
		}
		return ent, false
	}
	ent = &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = ent
	c.misses++
	return ent, true
}

// finish publishes the leader's result: successes enter the LRU (evicting
// the coldest ready entries past max), failures leave the cache so a
// later identical request recompiles. Must be called with the engine
// mutex held; closing ready releases the waiters. The returned keys are
// the entries evicted by the LRU bound, so the caller can prune the
// disk store outside the lock.
func (c *compileCache) finish(ent *cacheEntry, cp *core.Compiled, err error) []cacheKey {
	ent.cp, ent.err = cp, err
	var evicted []cacheKey
	if err != nil {
		delete(c.entries, ent.key)
	} else {
		ent.elem = c.lru.PushFront(ent)
		evicted = c.bound()
	}
	close(ent.ready)
	return evicted
}

// insert adds an already-compiled program as a ready entry (startup
// warming from the disk store); it bypasses the hit/miss counters so
// warming does not masquerade as traffic. Must be called with the
// engine mutex held.
func (c *compileCache) insert(key cacheKey, cp *core.Compiled) []cacheKey {
	if _, ok := c.entries[key]; ok {
		return nil
	}
	ent := &cacheEntry{key: key, ready: make(chan struct{}), cp: cp}
	close(ent.ready)
	c.entries[key] = ent
	ent.elem = c.lru.PushFront(ent)
	return c.bound()
}

// bound evicts the coldest ready entries past max, returning their keys.
func (c *compileCache) bound() []cacheKey {
	var evicted []cacheKey
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		old := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
		c.evictions++
		evicted = append(evicted, old.key)
	}
	return evicted
}

// wait blocks until the entry's compile finishes or ctx is done.
func (ent *cacheEntry) wait(ctx context.Context) (*core.Compiled, error) {
	select {
	case <-ent.ready:
		return ent.cp, ent.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
