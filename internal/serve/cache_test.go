package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatial/api"
	"spatial/internal/core"
)

const srcAdd = `
int f(int a, int b) { return a + b; }
`

const srcLoop = `
int f(int n) {
  int i; int s = 0;
  for (i = 0; i < n; i++) s += i * i;
  return s;
}`

const srcArr = `
int a[16];
int f(int n) {
  int i;
  for (i = 0; i < 16; i++) a[i] = i * n;
  int s = 0;
  for (i = 0; i < 16; i++) s += a[i];
  return s;
}`

// TestKeyNormalization pins the content-address semantics: run-time
// fields do not key, defaulted simulator configs collapse onto the same
// key, and every compile-time field change produces a distinct key.
func TestKeyNormalization(t *testing.T) {
	base := testReq(srcLoop, api.LevelFull, "")
	k0, err := base.key()
	if err != nil {
		t.Fatal(err)
	}

	// Run-time fields are not part of the key.
	r := base
	r.Entry, r.Args, r.Deadline = "f", []int64{3}, 1<<20
	if k, _ := r.key(); k != k0 {
		t.Error("run-time fields changed the cache key")
	}

	// A nil Sim and an explicitly present-but-zero Sim normalize to one
	// key, as does spelling out a default explicitly.
	r = base
	r.Sim = &api.SimConfig{}
	if k, _ := r.key(); k != k0 {
		t.Error("nil Sim and empty SimConfig produced distinct keys")
	}
	r = base
	r.Sim = &api.SimConfig{EdgeCap: 1} // the default depth, spelled explicitly
	if k, _ := r.key(); k != k0 {
		t.Error("EdgeCap 0 and EdgeCap 1 (the default) produced distinct keys")
	}

	// The default backend and its explicit spelling collapse onto one key.
	r = base
	r.Backend = api.BackendInterp
	if k, _ := r.key(); k != k0 {
		t.Error(`Backend "" and Backend "interp" (the default) produced distinct keys`)
	}

	// Partitions 0 and 1 both mean the sequential queue: one key.
	r = base
	r.Partitions = 1
	if k, _ := r.key(); k != k0 {
		t.Error("Partitions 0 and 1 (both sequential) produced distinct keys")
	}

	// Genuinely different compile-time fields key differently.
	distinct := []Request{
		testReq(srcAdd, api.LevelFull, ""),
		testReq(srcLoop, api.LevelMedium, ""),
		{Program: api.Program{Source: srcLoop, Level: api.LevelFull, Sim: &api.SimConfig{EdgeCap: 8}}},
		{Program: api.Program{Source: srcLoop, Level: api.LevelFull, Passes: &api.Passes{ConstFold: true, CSE: true, DCE: true}}},
		{Program: api.Program{Source: srcLoop, Level: api.LevelFull, Backend: api.BackendCompiled}},
		{Program: api.Program{Source: srcLoop, Level: api.LevelFull, Partitions: 2}},
		{Program: api.Program{Source: srcLoop, Level: api.LevelFull, Partitions: 4}},
	}
	seen := map[cacheKey]int{k0: -1}
	for i, r := range distinct {
		k, err := r.key()
		if err != nil {
			t.Fatalf("distinct[%d]: %v", i, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("distinct[%d] collided with request %d", i, prev)
		}
		seen[k] = i
	}

	// Invalid configurations fail keying.
	r = base
	r.Sim = &api.SimConfig{EdgeCap: -1}
	if _, err := r.key(); err == nil {
		t.Error("negative EdgeCap keyed without error")
	}
	r = base
	r.Level = api.Level(99)
	if _, err := r.key(); err == nil {
		t.Error("out-of-range level keyed without error")
	}
	r = base
	r.Sim = &api.SimConfig{Mem: &api.MemConfig{Kind: "quantum"}}
	if _, err := r.key(); err == nil {
		t.Error("unknown memory kind keyed without error")
	}
	r = base
	r.Backend = "jit"
	if _, err := r.key(); err == nil {
		t.Error("unknown backend keyed without error")
	}
	r = base
	r.Partitions = -1
	if _, err := r.key(); err == nil {
		t.Error("negative partitions keyed without error")
	}
	r = base
	r.Partitions = 1000
	if _, err := r.key(); err == nil {
		t.Error("out-of-range partitions keyed without error")
	}
}

// TestCacheHitMissEviction drives the LRU through its full lifecycle and
// checks every counter.
func TestCacheHitMissEviction(t *testing.T) {
	e := newEngine(t, Config{Workers: 1, CacheEntries: 2})
	defer e.Close()

	do := func(src string, args ...int64) int64 {
		t.Helper()
		resp, err := e.Do(context.Background(), testReq(src, api.LevelFull, "f", args...))
		if err != nil {
			t.Fatal(err)
		}
		return resp.Value
	}

	if got := do(srcLoop, 10); got != 285 {
		t.Fatalf("srcLoop(10) = %d, want 285", got)
	}
	do(srcLoop, 10)  // hit
	do(srcArr, 2)    // miss, cache now {loop, arr}
	do(srcAdd, 0, 1) // miss, evicts loop (LRU)
	do(srcLoop, 10)  // miss again (was evicted); evicts arr

	s := e.Stats()
	if s.CacheMisses != 4 || s.CacheHits != 1 || s.CacheEvictions != 2 {
		t.Fatalf("stats = misses %d hits %d evictions %d, want 4/1/2", s.CacheMisses, s.CacheHits, s.CacheEvictions)
	}
	if s.CacheEntries != 2 {
		t.Fatalf("resident entries = %d, want 2 (bounded)", s.CacheEntries)
	}
	if s.Completed != 5 || s.Failed != 0 {
		t.Fatalf("completed %d failed %d, want 5/0", s.Completed, s.Failed)
	}

	// Recency: a hit refreshes the entry. Touch arr, insert add, loop
	// must be the eviction victim — arr must still be resident (a hit).
	e2 := newEngine(t, Config{Workers: 1, CacheEntries: 2})
	defer e2.Close()
	do2 := func(src string, args ...int64) {
		t.Helper()
		if _, err := e2.Do(context.Background(), testReq(src, api.LevelFull, "f", args...)); err != nil {
			t.Fatal(err)
		}
	}
	do2(srcLoop, 1)   // miss
	do2(srcArr, 1)    // miss       cache: {arr, loop}
	do2(srcLoop, 1)   // hit        cache: {loop, arr}
	do2(srcAdd, 1, 2) // miss, evicts arr
	do2(srcLoop, 1)   // must still be a hit
	s2 := e2.Stats()
	if s2.CacheHits != 2 || s2.CacheMisses != 3 {
		t.Fatalf("LRU recency broken: hits %d misses %d, want 2/3", s2.CacheHits, s2.CacheMisses)
	}
}

// TestSingleFlight pins the single-flight contract: N concurrent
// requests for the same program run the pipeline exactly once, and every
// request gets the result.
func TestSingleFlight(t *testing.T) {
	const callers = 8
	e := newEngine(t, Config{Workers: callers, QueueDepth: callers, CacheEntries: 4})
	defer e.Close()

	var compiles atomic.Int64
	gate := make(chan struct{})
	e.compileFn = func(r Request) (*core.Compiled, error) {
		compiles.Add(1)
		<-gate // hold every leader until all callers are submitted
		return compileRequest(r)
	}

	req := testReq(srcLoop, api.LevelFull, "f", 10)
	var wg sync.WaitGroup
	results := make([]int64, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := e.Do(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = resp.Value
		}(i)
	}
	// Let every request reach the cache before releasing the compile, so
	// all non-leaders join the in-flight entry rather than hitting a
	// ready one.
	for {
		s := e.Stats()
		if s.CacheMisses+s.CacheShared >= callers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := compiles.Load(); n != 1 {
		t.Fatalf("pipeline ran %d times for %d concurrent identical requests, want 1", n, callers)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != 285 {
			t.Fatalf("caller %d got %d, want 285", i, results[i])
		}
	}
	s := e.Stats()
	if s.CacheMisses != 1 || s.CacheShared != callers-1 {
		t.Fatalf("stats = misses %d shared %d, want 1/%d", s.CacheMisses, s.CacheShared, callers-1)
	}
}

// TestCompileErrorNotCached verifies failures propagate to every waiter
// of the flight but are not memoized: a later identical request
// recompiles.
func TestCompileErrorNotCached(t *testing.T) {
	e := newEngine(t, Config{Workers: 2, CacheEntries: 4})
	defer e.Close()

	var compiles atomic.Int64
	e.compileFn = func(r Request) (*core.Compiled, error) {
		compiles.Add(1)
		return compileRequest(r)
	}

	bad := testReq("int f(void) { return", api.LevelFull, "f")
	for i := 0; i < 2; i++ {
		_, err := e.Do(context.Background(), bad)
		if !errors.Is(err, core.ErrCompile) {
			t.Fatalf("attempt %d: err = %v, want ErrCompile class", i, err)
		}
	}
	if n := compiles.Load(); n != 2 {
		t.Fatalf("failed compile was cached: pipeline ran %d times, want 2", n)
	}
	s := e.Stats()
	if s.Failed != 2 || s.CacheEntries != 0 {
		t.Fatalf("stats = failed %d entries %d, want 2/0", s.Failed, s.CacheEntries)
	}
}
