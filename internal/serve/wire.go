package serve

import (
	"fmt"

	"spatial/api"
	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/memsys"
	"spatial/internal/opt"
)

// This file is the single mapping between the versioned wire types
// (package api) and the compiler's internal configuration structs. The
// daemon (internal/cashd), the Go client, and the in-process engine all
// funnel through it, so the network path and the library path cannot
// drift apart.

// levelOf validates and converts a wire optimization level.
func levelOf(l api.Level) (opt.Level, error) {
	if l < api.LevelNone || l > api.LevelFull {
		return 0, fmt.Errorf("invalid optimization level %d (want %d..%d)", l, api.LevelNone, api.LevelFull)
	}
	return opt.Level(l), nil
}

// passesOf converts wire pass toggles; nil stays nil ("use the level").
func passesOf(p *api.Passes) *opt.Options {
	if p == nil {
		return nil
	}
	return &opt.Options{
		ConstFold:           p.ConstFold,
		CSE:                 p.CSE,
		DCE:                 p.DCE,
		DeadMemOps:          p.DeadMemOps,
		TokenRemoval:        p.TokenRemoval,
		TransitiveReduction: p.TransitiveReduction,
		MemMerge:            p.MemMerge,
		StoreBeforeStore:    p.StoreBeforeStore,
		LoadAfterStore:      p.LoadAfterStore,
		LICM:                p.LICM,
		ReadOnlyLoops:       p.ReadOnlyLoops,
		MonotoneLoops:       p.MonotoneLoops,
		LoopDecouple:        p.LoopDecouple,
	}
}

// backendOf validates and converts a wire backend name; the empty string
// selects the interpreter, matching the facade's default.
func backendOf(b string) (core.Backend, error) {
	switch b {
	case "", api.BackendInterp:
		return core.BackendInterpreted, nil
	case api.BackendCompiled:
		return core.BackendCompiled, nil
	default:
		return 0, fmt.Errorf("invalid backend %q (want %q or %q)", b, api.BackendInterp, api.BackendCompiled)
	}
}

// partitionsOf validates a wire partition count; 0 and 1 both mean the
// sequential queue (the facade default).
func partitionsOf(n int) (int, error) {
	if n < 0 || n > core.MaxPartitions {
		return 0, fmt.Errorf("invalid partitions %d (want 0..%d)", n, core.MaxPartitions)
	}
	return n, nil
}

// memOf converts a wire memory configuration.
func memOf(m *api.MemConfig) (memsys.Config, error) {
	if m == nil {
		return memsys.Config{}, nil
	}
	var kind memsys.Kind
	switch m.Kind {
	case "", api.MemPerfect:
		kind = memsys.Perfect
	case api.MemRealistic:
		kind = memsys.Realistic
	default:
		return memsys.Config{}, fmt.Errorf("invalid memory kind %q (want %q or %q)", m.Kind, api.MemPerfect, api.MemRealistic)
	}
	return memsys.Config{
		Kind:           kind,
		Ports:          m.Ports,
		QueueSize:      m.QueueSize,
		PerfectLatency: m.PerfectLatency,
		L1Bytes:        m.L1Bytes,
		L1Latency:      m.L1Latency,
		L2Bytes:        m.L2Bytes,
		L2Latency:      m.L2Latency,
		MemLatency:     m.MemLatency,
		WordGap:        m.WordGap,
		LineBytes:      m.LineBytes,
		TLBPages:       m.TLBPages,
		TLBMissCost:    m.TLBMissCost,
		PageBytes:      m.PageBytes,
	}, nil
}

// simOf converts a wire simulator configuration; nil means defaults.
func simOf(s *api.SimConfig) (dataflow.Config, error) {
	if s == nil {
		return dataflow.Config{}, nil
	}
	mem, err := memOf(s.Mem)
	if err != nil {
		return dataflow.Config{}, err
	}
	return dataflow.Config{
		Mem:            mem,
		EdgeCap:        s.EdgeCap,
		MaxCycles:      s.MaxCycles,
		MaxActivations: s.MaxActivations,
	}, nil
}

// coreOptions converts a wire program's compile-time configuration into
// facade options. It rejects invalid wire values with plain errors; the
// caller classifies them under core.ErrCompile.
func coreOptions(p api.Program) ([]core.Option, error) {
	level, err := levelOf(p.Level)
	if err != nil {
		return nil, err
	}
	opts := []core.Option{core.WithLevel(level)}
	backend, err := backendOf(p.Backend)
	if err != nil {
		return nil, err
	}
	if backend != core.BackendInterpreted {
		opts = append(opts, core.WithBackend(backend))
	}
	parts, err := partitionsOf(p.Partitions)
	if err != nil {
		return nil, err
	}
	if parts > 1 {
		opts = append(opts, core.WithPartitions(parts))
	}
	if ps := passesOf(p.Passes); ps != nil {
		opts = append(opts, core.WithPasses(*ps))
	}
	sim, err := simOf(p.Sim)
	if err != nil {
		return nil, err
	}
	if sim != (dataflow.Config{}) {
		opts = append(opts, core.WithSim(sim))
	}
	return opts, nil
}
