package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"spatial/api"
)

// diskStore persists the compile cache across restarts. Each entry is a
// small JSON file named by the cache key's hex digest, holding the wire
// form of the program (api.Program) — the compile *inputs*, not the
// compiled graphs: compilation is deterministic, so the value is
// re-derived by recompiling at startup, which sidesteps serializing the
// in-memory graph structures and can never load a stale artifact that
// disagrees with the current compiler.
//
// Recency is the file's mtime: hits touch it, startup loads newest
// first, and the LRU bound holds across restarts — entries past the
// bound are deleted at load. All writes are atomic (temp file + rename)
// and every disk operation is best-effort: a broken disk degrades the
// service to a cold cache, never to failure.
type diskStore struct {
	dir string
}

// diskEntry is the on-disk JSON schema of one cache entry.
type diskEntry struct {
	Version string      `json:"version"`
	Program api.Program `json:"program"`
}

const diskSuffix = ".json"

// openDiskStore creates (if needed) and opens a cache directory.
func openDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	return &diskStore{dir: dir}, nil
}

func (d *diskStore) path(key cacheKey) string {
	return filepath.Join(d.dir, key.String()+diskSuffix)
}

// put writes an entry through to disk: temp file, fsync, atomic rename,
// then a directory fsync so a crash right after put still finds either
// nothing or the complete entry — never a torn file under the final
// name. (The directory sync is best-effort: some filesystems refuse it.)
func (d *diskStore) put(key cacheKey, p api.Program) error {
	data, err := json.Marshal(diskEntry{Version: api.Version, Program: p})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, d.path(key)); err != nil {
		os.Remove(name)
		return err
	}
	d.syncDir()
	return nil
}

// syncDir persists the rename itself. A failure is ignored: the entry
// is durable in content, and load verifies integrity anyway.
func (d *diskStore) syncDir() {
	dir, err := os.Open(d.dir)
	if err != nil {
		return
	}
	_ = dir.Sync()
	dir.Close()
}

// quarantineDir is the subdirectory corrupt entries are moved into:
// evidence of torn writes or bit rot stays inspectable instead of being
// silently destroyed.
const quarantineDir = "quarantine"

// quarantine moves a corrupt entry aside; if the move itself fails the
// entry is removed so it can never be served.
func (d *diskStore) quarantine(path string) {
	qdir := filepath.Join(d.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		_ = os.Remove(path)
		return
	}
	if err := os.Rename(path, filepath.Join(qdir, filepath.Base(path))); err != nil {
		_ = os.Remove(path)
	}
}

// touch marks an entry recently used.
func (d *diskStore) touch(key cacheKey) {
	now := time.Now()
	_ = os.Chtimes(d.path(key), now, now)
}

// remove deletes an evicted entry.
func (d *diskStore) remove(key cacheKey) {
	_ = os.Remove(d.path(key))
}

// load reads every persisted entry, newest first, keeping at most max.
// Entries past the LRU bound and stale wire versions are deleted (both
// are legitimate, explicable states); unreadable or truncated files and
// entries whose content no longer re-hashes to their <keyhex> filename
// are *quarantined* — moved under quarantine/ and counted, because they
// are evidence of a torn write or bit rot that an operator should see.
// It returns the survivors in oldest-first order so the caller can
// insert them into an LRU and end with the newest at the front, plus
// the number of entries quarantined.
func (d *diskStore) load(max int) ([]loadedEntry, int) {
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, 0
	}
	type candidate struct {
		path  string
		mtime time.Time
	}
	var cands []candidate
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), diskSuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		cands = append(cands, candidate{path: filepath.Join(d.dir, de.Name()), mtime: info.ModTime()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mtime.After(cands[j].mtime) })

	var out []loadedEntry
	quarantined := 0
	for i, c := range cands {
		if i >= max {
			_ = os.Remove(c.path) // LRU bound holds across restarts
			continue
		}
		var ent diskEntry
		data, err := os.ReadFile(c.path)
		if err == nil {
			err = json.Unmarshal(data, &ent)
		}
		if err != nil {
			// Unreadable or torn: quarantine the evidence.
			d.quarantine(c.path)
			quarantined++
			continue
		}
		if ent.Version != api.Version {
			_ = os.Remove(c.path) // stale format, not corruption
			continue
		}
		key, err := programKey(ent.Program)
		if err != nil || filepath.Base(c.path) != key.String()+diskSuffix {
			// The content does not hash to the filename: serving it
			// would answer for a key it no longer matches.
			d.quarantine(c.path)
			quarantined++
			continue
		}
		out = append(out, loadedEntry{key: key, prog: ent.Program})
	}
	// Reverse to oldest-first for LRU insertion order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, quarantined
}

// loadedEntry is one persisted program recovered at startup.
type loadedEntry struct {
	key  cacheKey
	prog api.Program
}
