package serve

import (
	"reflect"
	"testing"

	"spatial/api"
)

// TestRequestFieldInventory is the cache-key hygiene gate. The Request
// type is wire-exposed (cashd decodes into it via api.RunRequest), so a
// field silently missing from the cache key would make two semantically
// different requests share one compiled program — a wrong-answer bug,
// not a perf bug. This test forces every field addition through an
// explicit decision:
//
//   - compile-time field (affects the built circuit): add it to
//     programKey in cache.go AND to keyedFields here, with a
//     distinctness case in TestKeyNormalization;
//   - run-time field (selects what to run): add it to runtimeFields.
//
// An unlisted field fails the build of this test's expectations, which
// is the point.
func TestRequestFieldInventory(t *testing.T) {
	// Fields of Request that participate in the cache key. Program is
	// the entire compile-time half; its own fields are inventoried below.
	keyedFields := map[string]bool{
		"Program": true,
	}
	// Fields that deliberately do NOT key: they select what to run, not
	// what to build.
	runtimeFields := map[string]bool{
		"Entry":    true,
		"Args":     true,
		"Deadline": true,
	}
	checkInventory(t, reflect.TypeOf(Request{}), "Request", keyedFields, runtimeFields)

	// Every field of the embedded wire Program must be consumed by
	// programKey (cache.go): source, level, passes, sim all are.
	programKeyed := map[string]bool{
		"Source":     true,
		"Level":      true,
		"Passes":     true,
		"Sim":        true,
		"Backend":    true,
		"Partitions": true,
	}
	checkInventory(t, reflect.TypeOf(api.Program{}), "api.Program", programKeyed, nil)

	// The sub-configs hash via %#v of their converted internal structs,
	// so every wire field flows into the key as long as the wire→internal
	// conversion (wire.go) copies it. Pin the wire field counts: growing
	// api.SimConfig/api.MemConfig/api.Passes means extending the
	// conversion, and this count drags you here to check you did.
	for typ, want := range map[reflect.Type]int{
		reflect.TypeOf(api.SimConfig{}): 4,
		reflect.TypeOf(api.MemConfig{}): 14,
		reflect.TypeOf(api.Passes{}):    13,
	} {
		if got := typ.NumField(); got != want {
			t.Errorf("%s grew to %d fields (inventory says %d): update the wire→internal conversion in wire.go so the new field reaches programKey, then bump this count",
				typ.Name(), got, want)
		}
	}
}

func checkInventory(t *testing.T, typ reflect.Type, name string, keyed, runtime map[string]bool) {
	t.Helper()
	seen := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i).Name
		seen[f] = true
		if !keyed[f] && !runtime[f] {
			t.Errorf("%s gained field %q without a cache-key decision: if it affects the compiled circuit, add it to programKey (cache.go) and the keyed inventory; if it is run-time only, add it to the runtime inventory — see TestRequestFieldInventory",
				name, f)
		}
	}
	for f := range keyed {
		if !seen[f] {
			t.Errorf("%s lost keyed field %q; update programKey and this inventory together", name, f)
		}
	}
	for f := range runtime {
		if !seen[f] {
			t.Errorf("%s lost run-time field %q; update this inventory", name, f)
		}
	}
}
