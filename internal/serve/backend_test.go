package serve

import (
	"context"
	"testing"

	"spatial/api"
)

// TestBackendRoundTrip runs the same program through the engine on both
// execution backends: results and simulation statistics must be
// identical (the bit-identity contract), while the two requests must
// occupy distinct cache entries — a cached Compiled is pinned to its
// backend, so sharing one entry would silently serve the wrong engine.
func TestBackendRoundTrip(t *testing.T) {
	e := newEngine(t, Config{Workers: 2, CacheEntries: 8})
	defer e.Close()

	interp := testReq(srcLoop, api.LevelFull, "f", 25)
	compiled := interp
	compiled.Backend = api.BackendCompiled

	ri, err := e.Do(context.Background(), interp)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := e.Do(context.Background(), compiled)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Value != rc.Value || ri.Stats != rc.Stats {
		t.Errorf("backends diverged:\n interp   value=%d stats=%+v\n compiled value=%d stats=%+v",
			ri.Value, ri.Stats, rc.Value, rc.Stats)
	}
	if rc.CacheHit {
		t.Error("compiled-backend request hit the interp-backend cache entry")
	}
	if s := e.Stats(); s.CacheMisses != 2 {
		t.Errorf("cache misses = %d, want 2 (one per backend)", s.CacheMisses)
	}

	// An unknown backend is a compile-class error, rejected before keying.
	bad := interp
	bad.Backend = "jit"
	if _, err := e.Do(context.Background(), bad); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestPartitionedRoundTrip runs the same program sequentially and with
// partitioned execution through the engine: values and statistics must
// be bit-identical, and the partitioned request must occupy its own
// cache entry (a cached Compiled carries its domain assignment).
func TestPartitionedRoundTrip(t *testing.T) {
	e := newEngine(t, Config{Workers: 2, CacheEntries: 8})
	defer e.Close()

	seq := testReq(srcArr, api.LevelFull, "f", 3)
	part := seq
	part.Partitions = 4

	rs, err := e.Do(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := e.Do(context.Background(), part)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Value != rp.Value || rs.Stats != rp.Stats {
		t.Errorf("partitioned run diverged:\n sequential  value=%d stats=%+v\n partitioned value=%d stats=%+v",
			rs.Value, rs.Stats, rp.Value, rp.Stats)
	}
	if rp.CacheHit {
		t.Error("partitioned request hit the sequential cache entry")
	}

	// Out-of-range partition counts are compile-class errors.
	bad := seq
	bad.Partitions = -1
	if _, err := e.Do(context.Background(), bad); err == nil {
		t.Error("negative partitions accepted")
	}
}
