package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spatial/api"
)

// TestDiskPersistenceAcrossRestart is the core warm-restart contract: a
// program compiled before a restart is a cache hit on the very first
// request after it.
func TestDiskPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	e1 := newEngine(t, Config{Workers: 1, CacheEntries: 4, CacheDir: dir})
	req := testReq(srcLoop, api.LevelFull, "f", 10)
	resp, err := e1.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Error("first-ever request reported a cache hit")
	}
	ref := resp
	e1.Close()

	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("persisted %d entries, want 1: %v", len(files), files)
	}

	// Restart: the engine recompiles the persisted program before
	// accepting traffic, so the first request is a hit and bit-identical.
	e2 := newEngine(t, Config{Workers: 1, CacheEntries: 4, CacheDir: dir})
	defer e2.Close()
	if got := e2.Stats().DiskLoaded; got != 1 {
		t.Fatalf("DiskLoaded = %d, want 1", got)
	}
	resp2, err := e2.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.CacheHit {
		t.Error("first post-restart request missed the warm cache")
	}
	if resp2.Value != ref.Value || resp2.Stats.Cycles != ref.Stats.Cycles || resp2.Stats.Events != ref.Stats.Events {
		t.Errorf("post-restart run diverged: (%d,%d,%d) vs (%d,%d,%d)",
			resp2.Value, resp2.Stats.Cycles, resp2.Stats.Events, ref.Value, ref.Stats.Cycles, ref.Stats.Events)
	}
	s := e2.Stats()
	if s.CacheHits != 1 || s.CacheMisses != 0 {
		t.Errorf("stats after warm hit: hits %d misses %d, want 1/0", s.CacheHits, s.CacheMisses)
	}
}

// TestDiskLRUBoundAcrossRestart shrinks the cache bound between
// restarts: only the most recently used entries survive, the rest are
// pruned from disk.
func TestDiskLRUBoundAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	e1 := newEngine(t, Config{Workers: 1, CacheEntries: 4, CacheDir: dir})
	srcs := []string{srcLoop, srcArr, srcAdd}
	args := [][]int64{{10}, {2}, {1, 2}}
	for i, src := range srcs {
		if _, err := e1.Do(context.Background(), testReq(src, api.LevelFull, "f", args[i]...)); err != nil {
			t.Fatal(err)
		}
		// mtime is the recency order on disk; space the writes out so the
		// order is unambiguous on coarse-mtime filesystems.
		time.Sleep(10 * time.Millisecond)
	}
	e1.Close()

	e2 := newEngine(t, Config{Workers: 1, CacheEntries: 2, CacheDir: dir})
	defer e2.Close()
	if got := e2.Stats().DiskLoaded; got != 2 {
		t.Fatalf("DiskLoaded = %d, want 2 (bound enforced across restart)", got)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 2 {
		t.Fatalf("%d entries left on disk, want 2 (excess pruned)", len(files))
	}
	// The two most recent (arr, add) are warm; the oldest (loop) is not.
	if resp, err := e2.Do(context.Background(), testReq(srcAdd, api.LevelFull, "f", 1, 2)); err != nil || !resp.CacheHit {
		t.Errorf("most recent program not warm after restart (err=%v)", err)
	}
	if resp, err := e2.Do(context.Background(), testReq(srcArr, api.LevelFull, "f", 2)); err != nil || !resp.CacheHit {
		t.Errorf("second most recent program not warm after restart (err=%v)", err)
	}
	if resp, err := e2.Do(context.Background(), testReq(srcLoop, api.LevelFull, "f", 10)); err != nil || resp.CacheHit {
		t.Errorf("oldest program should have been pruned by the restart bound (err=%v)", err)
	}
}

// TestDiskEvictionRemovesFile: a runtime LRU eviction also deletes the
// persisted entry, so disk usage tracks the bound.
func TestDiskEvictionRemovesFile(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t, Config{Workers: 1, CacheEntries: 1, CacheDir: dir})
	defer e.Close()

	if _, err := e.Do(context.Background(), testReq(srcLoop, api.LevelFull, "f", 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(context.Background(), testReq(srcAdd, api.LevelFull, "f", 1, 2)); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("%d entries on disk after eviction, want 1", len(files))
	}
}

// TestDiskCorruptEntriesSkipped: no invalid entry is ever served. Stale
// wire versions are deleted (a legitimate format change); corrupt or
// mis-keyed entries are quarantined — moved aside and counted, because
// they are evidence of torn writes or bit rot.
func TestDiskCorruptEntriesSkipped(t *testing.T) {
	dir := t.TempDir()
	junk := map[string]string{
		"nothex.json": "{not json",
		"0000000000000000000000000000000000000000000000000000000000000000.json": `{"version":"v0","program":{"source":"int f(void){return 1;}","level":0}}`,
		"1111111111111111111111111111111111111111111111111111111111111111.json": `{"version":"v1","program":{"source":"int f(void){return 1;}","level":0}}`,
	}
	for name, body := range junk {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e := newEngine(t, Config{Workers: 1, CacheEntries: 4, CacheDir: dir})
	defer e.Close()
	s := e.Stats()
	if s.DiskLoaded != 0 {
		t.Fatalf("DiskLoaded = %d, want 0 (all entries invalid)", s.DiskLoaded)
	}
	if s.DiskQuarantined != 2 {
		t.Fatalf("DiskQuarantined = %d, want 2 (garbage + mis-keyed; stale version is a plain delete)", s.DiskQuarantined)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 0 {
		t.Fatalf("invalid entries still servable: %v", files)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, quarantineDir, "*"))
	if len(quarantined) != 2 {
		t.Fatalf("quarantine holds %d files, want 2: %v", len(quarantined), quarantined)
	}
	for _, q := range quarantined {
		if filepath.Base(q) == "0000000000000000000000000000000000000000000000000000000000000000.json" {
			t.Error("stale-version entry was quarantined; it should be deleted")
		}
	}
}

// TestDiskTornWriteQuarantined simulates a crash mid-write: a truncated
// entry file must be quarantined (not served, not silently deleted) and
// the program recompiled on demand with a bit-identical result.
func TestDiskTornWriteQuarantined(t *testing.T) {
	dir := t.TempDir()
	e1 := newEngine(t, Config{Workers: 1, CacheEntries: 4, CacheDir: dir})
	req := testReq(srcLoop, api.LevelFull, "f", 10)
	ref, err := e1.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()

	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("persisted %d entries, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear the write in half.
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := newEngine(t, Config{Workers: 1, CacheEntries: 4, CacheDir: dir})
	defer e2.Close()
	s := e2.Stats()
	if s.DiskLoaded != 0 || s.DiskQuarantined != 1 {
		t.Fatalf("loaded %d / quarantined %d, want 0 / 1", s.DiskLoaded, s.DiskQuarantined)
	}
	if q, _ := filepath.Glob(filepath.Join(dir, quarantineDir, "*.json")); len(q) != 1 {
		t.Fatalf("quarantine holds %d files, want the torn entry", len(q))
	}
	// The program is gone from the cache but not from the service:
	// the next request recompiles it, bit-identically.
	resp, err := e2.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Error("torn entry somehow served as a cache hit")
	}
	if resp.Value != ref.Value || resp.Stats.Cycles != ref.Stats.Cycles || resp.Stats.Events != ref.Stats.Events {
		t.Errorf("recompiled run diverged: (%d,%d,%d) vs (%d,%d,%d)",
			resp.Value, resp.Stats.Cycles, resp.Stats.Events, ref.Value, ref.Stats.Cycles, ref.Stats.Events)
	}
	// And the recompile re-persisted a good entry under the same key.
	files2, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files2) != 1 || files2[0] != files[0] {
		t.Errorf("recompiled entry not re-persisted: %v", files2)
	}
}

// TestDiskUnusableDir: New must fail loudly, not limp along silently
// unpersisted.
func TestDiskUnusableDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CacheDir: filepath.Join(file, "sub")}); err == nil {
		t.Fatal("New accepted a cache dir under a plain file")
	}
}
