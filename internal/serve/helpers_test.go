package serve

import (
	"testing"

	"spatial/api"
)

// newEngine builds an engine or fails the test; the error path of New
// only triggers on an unusable cache directory.
func newEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// testReq builds a request in the wire form.
func testReq(src string, level api.Level, entry string, args ...int64) Request {
	return Request{Program: api.Program{Source: src, Level: level}, Entry: entry, Args: args}
}
