// Package alias computes the memory abstractions CASH's token network is
// built from (paper Section 3.3): abstract memory objects, a
// flow-insensitive Andersen-style points-to analysis, per-access
// read/write sets, the partition of objects into location classes (each
// class gets its own merge/eta token circuit, Section 6), and the
// connection analysis that applies `#pragma independent` annotations
// (Section 7.1).
package alias

import (
	"fmt"
	"math/bits"
	"strings"
)

// ObjID identifies an abstract memory object.
type ObjID int

// Set is a bit set of ObjIDs.
type Set struct {
	words []uint64
}

// NewSet returns an empty set.
func NewSet() Set { return Set{} }

func (s *Set) ensure(i ObjID) {
	w := int(i) / 64
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
}

// Add inserts i and reports whether the set changed.
func (s *Set) Add(i ObjID) bool {
	s.ensure(i)
	w, b := int(i)/64, uint(i)%64
	old := s.words[w]
	s.words[w] = old | 1<<b
	return old != s.words[w]
}

// Has reports membership.
func (s Set) Has(i ObjID) bool {
	w, b := int(i)/64, uint(i)%64
	return w < len(s.words) && s.words[w]&(1<<b) != 0
}

// Union adds all of o into s, reporting whether s changed.
func (s *Set) Union(o Set) bool {
	changed := false
	for w, bits := range o.words {
		if bits == 0 {
			continue
		}
		for len(s.words) <= w {
			s.words = append(s.words, 0)
		}
		old := s.words[w]
		s.words[w] = old | bits
		if s.words[w] != old {
			changed = true
		}
	}
	return changed
}

// Intersects reports whether s and o share an element.
func (s Set) Intersects(o Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for w := 0; w < n; w++ {
		if s.words[w]&o.words[w] != 0 {
			return true
		}
	}
	return false
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of elements.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Elems returns the members in increasing order.
func (s Set) Elems() []ObjID {
	var out []ObjID
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, ObjID(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	get := func(ws []uint64, i int) uint64 {
		if i < len(ws) {
			return ws[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		if get(s.words, i) != get(o.words, i) {
			return false
		}
	}
	return true
}

// String renders the set for diagnostics.
func (s Set) String() string {
	var parts []string
	for _, e := range s.Elems() {
		parts = append(parts, fmt.Sprintf("o%d", e))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// SetOf builds a set from elements.
func SetOf(ids ...ObjID) Set {
	var s Set
	for _, id := range ids {
		s.Add(id)
	}
	return s
}
