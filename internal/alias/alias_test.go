package alias

import (
	"testing"

	"spatial/internal/cminor"
)

func analyze(t *testing.T, src string) (*cminor.Program, *Analysis) {
	t.Helper()
	prog, err := cminor.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := cminor.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	a, err := Analyze(prog)
	if err != nil {
		t.Fatalf("alias: %v", err)
	}
	return prog, a
}

func objByName(t *testing.T, a *Analysis, name string) *Object {
	t.Helper()
	for _, o := range a.Objects {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("no object named %s (have %v)", name, a.Objects)
	return nil
}

func TestObjectsCollected(t *testing.T) {
	_, a := analyze(t, `
int g;
int arr[10];
void f(void) {
  int local;        // register: no object
  int buf[4];       // memory object
  int taken = 0;
  int *p = &taken;  // taken becomes address-taken
  *p = local;
}
`)
	objByName(t, a, "g")
	objByName(t, a, "arr")
	objByName(t, a, "f.buf")
	objByName(t, a, "f.taken")
	for _, o := range a.Objects {
		if o.Name == "f.local" || o.Name == "f.p" {
			t.Errorf("register variable %s should not be an object", o.Name)
		}
	}
}

func TestPointsToDistinctArrays(t *testing.T) {
	prog, a := analyze(t, `
int x[8];
int y[8];
void kernel(int *p, int *q) { *p = *q + 1; }
void main0(void) { kernel(x, y); }
`)
	kernel := prog.Func("kernel")
	var p, q *cminor.VarDecl
	for _, prm := range kernel.Params {
		if prm.Name == "p" {
			p = prm
		} else {
			q = prm
		}
	}
	xObj := objByName(t, a, "x").ID
	yObj := objByName(t, a, "y").ID
	pPts, qPts := a.PointsTo(p), a.PointsTo(q)
	if !pPts.Has(xObj) || pPts.Has(yObj) {
		t.Errorf("pts(p) = %v, want {x}", pPts)
	}
	if !qPts.Has(yObj) || qPts.Has(xObj) {
		t.Errorf("pts(q) = %v, want {y}", qPts)
	}
}

func TestUncalledFunctionParamsAreTop(t *testing.T) {
	prog, a := analyze(t, `
int arr[4];
void f(unsigned *p, unsigned a[], int i) {
  if (p) a[i] += *p; else a[i] = 1;
}
`)
	f := prog.Func("f")
	pPts := a.PointsTo(f.Params[0])
	if !pPts.Has(a.Unknown) {
		t.Errorf("pts(p) should include Unknown for an entry function, got %v", pPts)
	}
	if !pPts.Has(objByName(t, a, "arr").ID) {
		t.Errorf("pts(p) should include all objects, got %v", pPts)
	}
}

func TestPointerThroughGlobal(t *testing.T) {
	prog, a := analyze(t, `
int data[16];
int *gp;
void setup(void) { gp = data; }
int use(void) { return *gp; }
void main0(void) { setup(); use(); }
`)
	use := prog.Func("use")
	_ = use
	gp := prog.Global("gp")
	pts := a.PointsTo(gp)
	if !pts.Has(objByName(t, a, "data").ID) {
		t.Errorf("pts(*gp) = %v, want data", pts)
	}
}

func TestAddrObjects(t *testing.T) {
	prog, a := analyze(t, `
int x[8];
int y[8];
void f(void) {
  int i;
  for (i = 0; i < 8; i++) x[i] = y[i];
}
`)
	// find the assignment x[i] = y[i]
	f := prog.Func("f")
	var found int
	a.visitAccesses(f, func(addr cminor.Expr, isWrite bool) {
		objs := a.AddrObjects(addr)
		if isWrite {
			if !objs.Has(objByName(t, a, "x").ID) || objs.Has(objByName(t, a, "y").ID) {
				t.Errorf("write set = %v, want {x}", objs)
			}
		}
		found++
	}, nil)
	if found != 2 {
		t.Errorf("found %d accesses, want 2", found)
	}
}

func TestLocationClassesDisjoint(t *testing.T) {
	_, a := analyze(t, `
int src[64];
int dst[64];
void f(void) {
  int i;
  for (i = 0; i < 64; i++) dst[i] = src[i] * 2;
}
`)
	src := objByName(t, a, "src").ID
	dst := objByName(t, a, "dst").ID
	if a.ClassOf(src) == a.ClassOf(dst) {
		t.Error("disjoint arrays should be in different location classes")
	}
}

func TestLocationClassesMergedByAliasing(t *testing.T) {
	_, a := analyze(t, `
int bufA[64];
int bufB[64];
int pick(int c) {
  int *p;
  if (c) p = bufA; else p = bufB;
  return *p;
}
void main0(void) { pick(1); }
`)
	oa := objByName(t, a, "bufA").ID
	ob := objByName(t, a, "bufB").ID
	if a.ClassOf(oa) != a.ClassOf(ob) {
		t.Error("arrays reachable from the same pointer must share a class")
	}
}

func TestConstObjects(t *testing.T) {
	_, a := analyze(t, `
const int table[4] = {1, 2, 3, 4};
int out[4];
void f(void) {
  int i;
  for (i = 0; i < 4; i++) out[i] = table[i];
}
`)
	tbl := objByName(t, a, "table")
	if !tbl.Const {
		t.Error("const array not marked immutable")
	}
	if !a.IsConstSet(SetOf(tbl.ID)) {
		t.Error("IsConstSet(table) = false")
	}
	if a.IsConstSet(SetOf(objByName(t, a, "out").ID)) {
		t.Error("out should not be const")
	}
}

func TestStringObjectsAreConst(t *testing.T) {
	prog, a := analyze(t, `
int sum(const char *s, int n) {
  int i;
  int t = 0;
  for (i = 0; i < n; i++) t += s[i];
  return t;
}
int main0(void) { return sum("hello", 5); }
`)
	if len(prog.Strings) != 1 {
		t.Fatalf("strings = %d", len(prog.Strings))
	}
	o := a.Objects[a.StringObject(0)]
	if !o.Const {
		t.Error("string literal object not const")
	}
	// The parameter s points only at the string.
	s := prog.Func("sum").Params[0]
	pts := a.PointsTo(s)
	if !pts.Has(o.ID) || pts.Has(a.Unknown) {
		t.Errorf("pts(s) = %v, want just the string", pts)
	}
}

func TestFuncSummaries(t *testing.T) {
	prog, a := analyze(t, `
int in[8];
int out[8];
int readIn(int i) { return in[i]; }
void writeOut(int i, int v) { out[i] = v; }
void both(int i) { writeOut(i, readIn(i)); }
void main0(void) { both(3); }
`)
	inObj := objByName(t, a, "in").ID
	outObj := objByName(t, a, "out").ID
	r := a.FuncReads(prog.Func("readIn"))
	w := a.FuncWrites(prog.Func("readIn"))
	if !r.Has(inObj) || !w.Empty() {
		t.Errorf("readIn summary: R=%v W=%v", r, w)
	}
	br := a.FuncReads(prog.Func("both"))
	bw := a.FuncWrites(prog.Func("both"))
	if !br.Has(inObj) || !bw.Has(outObj) {
		t.Errorf("both summary: R=%v W=%v", br, bw)
	}
}

func TestRoots(t *testing.T) {
	prog, _ := analyze(t, `
void f(int *p, int *q, int i) {
  p[i] = q[i] + 1;
}
`)
	f := prog.Func("f")
	// dig out the instr: p[i] = q[i] + 1
	asn := f.Body.Stmts[0].(*cminor.ExprStmt).X.(*cminor.AssignExpr)
	lhsIdx := asn.LHS.(*cminor.IndexExpr)
	roots := Roots(lhsIdx.Array)
	if len(roots) != 1 || roots[0].Name != "p" {
		t.Errorf("roots of p = %v", roots)
	}
	rhs := asn.RHS.(*cminor.BinExpr).L.(*cminor.IndexExpr)
	roots = Roots(rhs.Array)
	if len(roots) != 1 || roots[0].Name != "q" {
		t.Errorf("roots of q = %v", roots)
	}
}

func TestIndependentPragma(t *testing.T) {
	prog, a := analyze(t, `
void f(int *p, int *q, int n) {
  #pragma independent p q
  int i;
  for (i = 0; i < n; i++) p[i] = q[i] + 1;
}
`)
	f := prog.Func("f")
	p, q := f.Params[0], f.Params[1]
	if !a.Independent(f, []*cminor.VarDecl{p}, []*cminor.VarDecl{q}) {
		t.Error("p and q should be independent")
	}
	if a.Independent(f, []*cminor.VarDecl{p}, []*cminor.VarDecl{p}) {
		t.Error("p is never independent of itself")
	}
	if a.Independent(f, nil, []*cminor.VarDecl{q}) {
		t.Error("empty roots cannot be independent")
	}
}

func TestIndependentNotDeclared(t *testing.T) {
	prog, a := analyze(t, `
void f(int *p, int *q, int n) {
  int i;
  for (i = 0; i < n; i++) p[i] = q[i] + 1;
}
`)
	f := prog.Func("f")
	if a.Independent(f, []*cminor.VarDecl{f.Params[0]}, []*cminor.VarDecl{f.Params[1]}) {
		t.Error("independence without a pragma")
	}
}

func TestRootsThroughMemoryAreLost(t *testing.T) {
	prog, _ := analyze(t, `
int *tab[4];
int f(int i) { return *tab[i]; }
void main0(void) { f(1); }
`)
	f := prog.Func("f")
	deref := f.Body.Stmts[0].(*cminor.ReturnStmt).X.(*cminor.DerefExpr)
	if roots := Roots(deref.X); roots != nil {
		t.Errorf("roots through a memory load should be nil, got %v", roots)
	}
}

func TestMemoryScalarGlobalIsAccessed(t *testing.T) {
	prog, a := analyze(t, `
int counter;
void bump(void) { counter = counter + 1; }
`)
	bump := prog.Func("bump")
	reads, writes := 0, 0
	a.visitAccesses(bump, func(addr cminor.Expr, isWrite bool) {
		objs := a.AddrObjects(addr)
		if !objs.Has(objByName(t, a, "counter").ID) {
			t.Errorf("access set %v missing counter", objs)
		}
		if isWrite {
			writes++
		} else {
			reads++
		}
	}, nil)
	if reads != 1 || writes != 1 {
		t.Errorf("reads=%d writes=%d, want 1 and 1", reads, writes)
	}
}

func TestRecursionSummaryTerminates(t *testing.T) {
	prog, a := analyze(t, `
int acc[4];
int fib(int n) {
  if (n < 2) return n;
  acc[0] = acc[0] + 1;
  return fib(n-1) + fib(n-2);
}
void main0(void) { fib(5); }
`)
	w := a.FuncWrites(prog.Func("fib"))
	if !w.Has(objByName(t, a, "acc").ID) {
		t.Errorf("fib writes = %v", w)
	}
}

func TestPointerArrayElements(t *testing.T) {
	_, a := analyze(t, `
int x;
int y;
int *tab[2];
void setup(void) { tab[0] = &x; tab[1] = &y; }
int get(int i) { return *tab[i]; }
void main0(void) { setup(); get(0); }
`)
	// The summary of tab must include both x and y.
	tabObj := objByName(t, a, "tab")
	xObj := objByName(t, a, "x")
	yObj := objByName(t, a, "y")
	// Deref of tab[i] may touch x or y: the class machinery must merge
	// them.
	if a.ClassOf(xObj.ID) != a.ClassOf(yObj.ID) {
		t.Error("x and y reachable through tab must share a class")
	}
	_ = tabObj
}

func TestDoubleIndirection(t *testing.T) {
	prog, a := analyze(t, `
int data;
int *p = &data;
int **pp = &p;
int get(void) { return **pp; }
void main0(void) { get(); }
`)
	_ = prog
	dataObj := objByName(t, a, "data")
	pObj := objByName(t, a, "p")
	// pts(summary(pp)) ∋ p; pts(summary(p)) ∋ data.
	ptsP := a.PointsTo(prog.Global("p"))
	if !ptsP.Has(dataObj.ID) {
		t.Errorf("pts(*p) = %v, want data", ptsP)
	}
	ptsPP := a.PointsTo(prog.Global("pp"))
	if !ptsPP.Has(pObj.ID) {
		t.Errorf("pts(*pp) = %v, want p", ptsPP)
	}
}

func TestConditionalPointer(t *testing.T) {
	prog, a := analyze(t, `
int a0[4];
int b0[4];
int pick(int c) {
  int *p = c ? a0 : b0;
  return p[0];
}
void main0(void) { pick(1); }
`)
	p := prog.Func("pick").Locals[0]
	pts := a.PointsTo(p)
	if !pts.Has(objByName(t, a, "a0").ID) || !pts.Has(objByName(t, a, "b0").ID) {
		t.Errorf("pts(p) = %v, want both arrays", pts)
	}
}

func TestCastThroughInt(t *testing.T) {
	prog, a := analyze(t, `
int buf[8];
int f(void) {
  int *p = (int*)(int)buf;
  return p[1];
}
void main0(void) { f(); }
`)
	p := prog.Func("f").Locals[0]
	pts := a.PointsTo(p)
	if !pts.Has(objByName(t, a, "buf").ID) {
		t.Errorf("provenance lost through int cast chain: %v", pts)
	}
}

func TestSetElemsOrderAndClone(t *testing.T) {
	s := SetOf(9, 1, 70)
	e := s.Elems()
	if len(e) != 3 || e[0] != 1 || e[1] != 9 || e[2] != 70 {
		t.Errorf("elems = %v", e)
	}
	c := s.Clone()
	c.Add(2)
	if s.Has(2) {
		t.Error("clone aliases the original")
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}
