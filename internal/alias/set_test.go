package alias

import (
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 {
		t.Error("zero set should be empty")
	}
	if !s.Add(5) {
		t.Error("Add(5) should change the set")
	}
	if s.Add(5) {
		t.Error("second Add(5) should not change the set")
	}
	if !s.Has(5) || s.Has(4) {
		t.Error("membership wrong")
	}
	s.Add(130) // forces growth across words
	if !s.Has(130) || s.Len() != 2 {
		t.Errorf("after Add(130): len=%d", s.Len())
	}
	elems := s.Elems()
	if len(elems) != 2 || elems[0] != 5 || elems[1] != 130 {
		t.Errorf("elems = %v", elems)
	}
}

func TestSetUnionIntersects(t *testing.T) {
	a := SetOf(1, 2, 3)
	b := SetOf(3, 4)
	c := SetOf(70, 80)
	if !a.Intersects(b) {
		t.Error("a and b share 3")
	}
	if a.Intersects(c) {
		t.Error("a and c are disjoint")
	}
	u := a.Clone()
	if !u.Union(b) {
		t.Error("union should change a")
	}
	if u.Union(b) {
		t.Error("second union should not change")
	}
	if u.Len() != 4 {
		t.Errorf("union len = %d", u.Len())
	}
}

func TestSetEqualAcrossWidths(t *testing.T) {
	a := SetOf(1)
	b := SetOf(1)
	b.Add(200)
	// shrink b logically: they are unequal
	if a.Equal(b) {
		t.Error("unequal sets compare equal")
	}
	var c Set
	c.Add(200) // allocate words
	d := SetOf(1)
	if c.Equal(d) {
		t.Error("sets with different word counts compared wrongly")
	}
	e := SetOf(3)
	var f Set
	f.ensure(200) // long zero tail
	f.Add(3)
	if !e.Equal(f) {
		t.Error("trailing zero words should not affect equality")
	}
}

// Property: Union is idempotent, commutative, and monotone in Len.
func TestSetUnionProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b Set
		for _, x := range xs {
			a.Add(ObjID(x))
		}
		for _, y := range ys {
			b.Add(ObjID(y))
		}
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		if !ab.Equal(ba) {
			return false
		}
		if ab.Len() < a.Len() || ab.Len() < b.Len() {
			return false
		}
		again := ab.Clone()
		if again.Union(b) {
			return false // must be idempotent
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Intersects agrees with element-wise check.
func TestSetIntersectsProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b Set
		m := map[uint8]bool{}
		for _, x := range xs {
			a.Add(ObjID(x))
			m[x] = true
		}
		want := false
		for _, y := range ys {
			b.Add(ObjID(y))
			if m[y] {
				want = true
			}
		}
		return a.Intersects(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
