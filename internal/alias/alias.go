package alias

import (
	"fmt"
	"sort"

	"spatial/internal/cminor"
)

// ObjKind discriminates abstract memory objects.
type ObjKind int

// Object kinds.
const (
	ObjGlobal  ObjKind = iota
	ObjLocal           // address-taken local or local array (one per declaration)
	ObjString          // string literal
	ObjUnknown         // external memory a ⊤ pointer may reference
)

// Object is an abstract memory object.
type Object struct {
	ID        ObjID
	Kind      ObjKind
	Name      string
	Decl      *cminor.VarDecl  // ObjGlobal/ObjLocal
	Fn        *cminor.FuncDecl // ObjLocal
	StringIdx int              // ObjString
	Const     bool             // object is immutable (paper Section 4.2)
}

// ClassID identifies a location class: the unit that receives its own
// merge/eta token circuit (paper Section 6, Figure 11).
type ClassID int

// Analysis holds the results of the whole-program memory analysis.
type Analysis struct {
	Prog    *cminor.Program
	Objects []*Object
	Unknown ObjID

	objOfDecl   map[*cminor.VarDecl]ObjID
	objOfString map[int]ObjID
	all         Set // every object including Unknown

	// points-to solution
	pts    map[ptKey]*Set
	rets   map[*cminor.FuncDecl]ptKey
	called map[*cminor.FuncDecl]bool

	// union-find over objects for location classes
	classParent []int
	classIDs    map[int]ClassID
	numClasses  int

	// per-function read/write summaries (including callees)
	funcReads  map[*cminor.FuncDecl]Set
	funcWrites map[*cminor.FuncDecl]Set

	// independence annotations per function: pairs of declarations
	indep map[*cminor.FuncDecl]map[[2]*cminor.VarDecl]bool
}

// ptKey identifies a node in the points-to constraint graph.
type ptKey struct {
	decl *cminor.VarDecl  // register-resident pointer variable
	obj  ObjID            // summary of pointers stored in an object (decl==nil)
	fn   *cminor.FuncDecl // return value of fn (decl==nil, obj==-1)
}

func varKey(d *cminor.VarDecl) ptKey  { return ptKey{decl: d, obj: -1} }
func sumKey(o ObjID) ptKey            { return ptKey{obj: o} }
func retKey(f *cminor.FuncDecl) ptKey { return ptKey{obj: -1, fn: f} }

// ptVal is a symbolic points-to value: objs ∪ pts(keys), or ⊤.
type ptVal struct {
	objs Set
	keys []ptKey
	top  bool
}

func (v *ptVal) addKey(k ptKey) { v.keys = append(v.keys, k) }

func (v *ptVal) merge(o ptVal) {
	v.objs.Union(o.objs)
	v.keys = append(v.keys, o.keys...)
	v.top = v.top || o.top
}

// constraint kinds processed iteratively to a fixpoint.
type copyCons struct{ from, to ptKey }
type loadCons struct {
	addr ptVal
	to   ptKey
}
type storeCons struct {
	addr ptVal
	val  ptVal
}

// Analyze runs the whole-program analysis on a checked program.
func Analyze(prog *cminor.Program) (*Analysis, error) {
	a := &Analysis{
		Prog:        prog,
		objOfDecl:   map[*cminor.VarDecl]ObjID{},
		objOfString: map[int]ObjID{},
		pts:         map[ptKey]*Set{},
		rets:        map[*cminor.FuncDecl]ptKey{},
		called:      map[*cminor.FuncDecl]bool{},
		funcReads:   map[*cminor.FuncDecl]Set{},
		funcWrites:  map[*cminor.FuncDecl]Set{},
		indep:       map[*cminor.FuncDecl]map[[2]*cminor.VarDecl]bool{},
	}
	a.collectObjects()
	a.solvePointsTo()
	a.collectIndependence()
	a.buildClasses()
	a.summarizeFunctions()
	return a, nil
}

func (a *Analysis) addObject(o *Object) ObjID {
	o.ID = ObjID(len(a.Objects))
	a.Objects = append(a.Objects, o)
	a.all.Add(o.ID)
	return o.ID
}

func (a *Analysis) collectObjects() {
	for _, g := range a.Prog.Globals {
		a.objOfDecl[g] = a.addObject(&Object{
			Kind: ObjGlobal, Name: g.Name, Decl: g,
			Const: g.Type.Const || (g.Type.Kind == cminor.TypeArray && g.Type.Elem.Const),
		})
	}
	for i := range a.Prog.Strings {
		id := a.addObject(&Object{
			Kind: ObjString, Name: fmt.Sprintf("str%d", i), StringIdx: i, Const: true,
		})
		a.objOfString[i] = id
	}
	for _, f := range a.Prog.Funcs {
		if f.Body == nil {
			continue
		}
		for _, l := range f.Locals {
			if a.isMemoryVar(l) {
				id := a.addObject(&Object{
					Kind: ObjLocal, Name: f.Name + "." + l.Name, Decl: l, Fn: f,
					Const: l.Type.Const || (l.Type.Kind == cminor.TypeArray && l.Type.Elem.Const),
				})
				a.objOfDecl[l] = id
			}
		}
		// Address-taken parameters also live in memory.
		for _, p := range f.Params {
			if p.AddrTaken {
				id := a.addObject(&Object{Kind: ObjLocal, Name: f.Name + "." + p.Name, Decl: p, Fn: f})
				a.objOfDecl[p] = id
			}
		}
	}
	a.Unknown = a.addObject(&Object{Kind: ObjUnknown, Name: "<unknown>"})
}

// isMemoryVar reports whether the variable lives in memory rather than a
// register: globals always, locals when arrays or address-taken (paper
// Section 3.3).
func (a *Analysis) isMemoryVar(v *cminor.VarDecl) bool {
	if v.Global {
		return true
	}
	return v.Type.Kind == cminor.TypeArray || v.AddrTaken
}

// IsMemoryVar is the exported form used by the Pegasus builder.
func (a *Analysis) IsMemoryVar(v *cminor.VarDecl) bool { return a.isMemoryVar(v) }

// ObjectOf returns the abstract object for a memory-resident variable.
func (a *Analysis) ObjectOf(v *cminor.VarDecl) (ObjID, bool) {
	id, ok := a.objOfDecl[v]
	return id, ok
}

// StringObject returns the object for string literal index i.
func (a *Analysis) StringObject(i int) ObjID { return a.objOfString[i] }

// AllObjects returns the set of every object, including Unknown.
func (a *Analysis) AllObjects() Set { return a.all.Clone() }

func (a *Analysis) ptsOf(k ptKey) *Set {
	s, ok := a.pts[k]
	if !ok {
		s = &Set{}
		a.pts[k] = s
	}
	return s
}

// flatten resolves a ptVal against the current solution.
func (a *Analysis) flatten(v ptVal) Set {
	if v.top {
		return a.all.Clone()
	}
	out := v.objs.Clone()
	for _, k := range v.keys {
		out.Union(*a.ptsOf(k))
	}
	return out
}

func (a *Analysis) solvePointsTo() {
	var copies []copyCons
	var loads []loadCons
	var stores []storeCons

	addCopy := func(from, to ptKey) { copies = append(copies, copyCons{from, to}) }

	// assignPtr registers constraints for "dst ⊇ val".
	assignVal := func(dst ptKey, val ptVal) {
		if val.top {
			a.ptsOf(dst).Union(a.all)
			return
		}
		a.ptsOf(dst).Union(val.objs)
		for _, k := range val.keys {
			addCopy(k, dst)
		}
	}

	for _, f := range a.Prog.Funcs {
		if f.Body == nil {
			continue
		}
		fn := f
		var genStmt func(cminor.Stmt)
		var genExpr func(cminor.Expr)

		// ptOf computes the symbolic points-to value of a pointer-typed
		// expression.
		var ptOf func(cminor.Expr) ptVal
		ptOf = func(e cminor.Expr) ptVal {
			switch e := e.(type) {
			case *cminor.NumberLit:
				return ptVal{} // null or integer constant
			case *cminor.StringLit:
				return ptVal{objs: SetOf(a.objOfString[e.Index])}
			case *cminor.VarRef:
				d := e.Decl
				t := d.Type
				if t.Kind == cminor.TypeArray {
					// The array name denotes the object's address.
					if id, ok := a.objOfDecl[d]; ok {
						return ptVal{objs: SetOf(id)}
					}
					return ptVal{top: true}
				}
				if a.isMemoryVar(d) {
					// Reading a memory-resident pointer variable loads the
					// stored pointer: its pointees are the object summary.
					if id, ok := a.objOfDecl[d]; ok {
						return ptVal{keys: []ptKey{sumKey(id)}}
					}
					return ptVal{top: true}
				}
				return ptVal{keys: []ptKey{varKey(d)}}
			case *cminor.AddrExpr:
				switch lv := e.X.(type) {
				case *cminor.VarRef:
					if id, ok := a.objOfDecl[lv.Decl]; ok {
						return ptVal{objs: SetOf(id)}
					}
					return ptVal{top: true}
				case *cminor.IndexExpr:
					return ptOf(lv.Array)
				case *cminor.DerefExpr:
					return ptOf(lv.X)
				}
				return ptVal{top: true}
			case *cminor.BinExpr:
				var v ptVal
				if exprMayCarryPointer(e.L) {
					v.merge(ptOf(e.L))
				}
				if exprMayCarryPointer(e.R) {
					v.merge(ptOf(e.R))
				}
				return v
			case *cminor.UnExpr:
				if exprMayCarryPointer(e.X) {
					return ptOf(e.X)
				}
				return ptVal{}
			case *cminor.CondExpr:
				var v ptVal
				if exprMayCarryPointer(e.Then) {
					v.merge(ptOf(e.Then))
				}
				if exprMayCarryPointer(e.Else) {
					v.merge(ptOf(e.Else))
				}
				return v
			case *cminor.CastExpr:
				if exprMayCarryPointer(e.X) {
					return ptOf(e.X)
				}
				if isConstExpr(e.X) {
					return ptVal{}
				}
				// Integer of unknown provenance cast to a pointer.
				return ptVal{top: true}
			case *cminor.IndexExpr:
				// a[i]: when the element is itself an array this is pure
				// address arithmetic; otherwise it loads a stored pointer.
				if e.Typ.Kind == cminor.TypeArray {
					return ptOf(e.Array)
				}
				return ptVal{keys: a.loadKeys(ptOf(e.Array), &loads)}
			case *cminor.DerefExpr:
				return ptVal{keys: a.loadKeys(ptOf(e.X), &loads)}
			case *cminor.CallExpr:
				if e.Func != nil {
					return ptVal{keys: []ptKey{retKey(e.Func)}}
				}
				return ptVal{top: true}
			}
			return ptVal{top: true}
		}

		// genAssign handles "lhs = rhs" for points-to purposes.
		genAssign := func(lhs, rhs cminor.Expr) {
			if !exprMayCarryPointer(rhs) && !lvalueHoldsPointer(lhs) {
				return
			}
			val := ptVal{}
			if exprMayCarryPointer(rhs) {
				val = ptOf(rhs)
			}
			switch lv := lhs.(type) {
			case *cminor.VarRef:
				d := lv.Decl
				if a.isMemoryVar(d) {
					if id, ok := a.objOfDecl[d]; ok {
						assignVal(sumKey(id), val)
					}
					return
				}
				assignVal(varKey(d), val)
			case *cminor.IndexExpr:
				stores = append(stores, storeCons{addr: ptOf(lv.Array), val: val})
			case *cminor.DerefExpr:
				stores = append(stores, storeCons{addr: ptOf(lv.X), val: val})
			}
		}

		genExpr = func(e cminor.Expr) {
			switch e := e.(type) {
			case *cminor.AssignExpr:
				genExpr(e.RHS)
				genAssign(e.LHS, e.RHS)
			case *cminor.CallExpr:
				for i, arg := range e.Args {
					genExpr(arg)
					if e.Func != nil && i < len(e.Func.Params) {
						p := e.Func.Params[i]
						if exprMayCarryPointer(arg) {
							if p.AddrTaken {
								if id, ok := a.objOfDecl[p]; ok {
									assignVal(sumKey(id), ptOf(arg))
								}
							} else {
								assignVal(varKey(p), ptOf(arg))
							}
						}
					}
				}
				if e.Func != nil {
					a.called[e.Func] = true
				}
			case *cminor.BinExpr:
				genExpr(e.L)
				genExpr(e.R)
			case *cminor.UnExpr:
				genExpr(e.X)
			case *cminor.CondExpr:
				genExpr(e.Cond)
				genExpr(e.Then)
				genExpr(e.Else)
			case *cminor.IndexExpr:
				genExpr(e.Array)
				genExpr(e.Index)
			case *cminor.DerefExpr:
				genExpr(e.X)
			case *cminor.AddrExpr:
				genExpr(e.X)
			case *cminor.CastExpr:
				genExpr(e.X)
			}
		}

		genStmt = func(s cminor.Stmt) {
			switch s := s.(type) {
			case *cminor.BlockStmt:
				for _, sub := range s.Stmts {
					genStmt(sub)
				}
			case *cminor.DeclStmt:
				if s.Var.Init != nil {
					genExpr(s.Var.Init)
					ref := &cminor.VarRef{Name: s.Var.Name, Decl: s.Var, Typ: s.Var.Type}
					genAssign(ref, s.Var.Init)
				}
				for _, e := range s.Var.InitList {
					genExpr(e)
					if exprMayCarryPointer(e) {
						if id, ok := a.objOfDecl[s.Var]; ok {
							assignVal(sumKey(id), ptOf(e))
						}
					}
				}
			case *cminor.ExprStmt:
				genExpr(s.X)
			case *cminor.IfStmt:
				genExpr(s.Cond)
				genStmt(s.Then)
				if s.Else != nil {
					genStmt(s.Else)
				}
			case *cminor.WhileStmt:
				genExpr(s.Cond)
				genStmt(s.Body)
			case *cminor.DoWhileStmt:
				genStmt(s.Body)
				genExpr(s.Cond)
			case *cminor.ForStmt:
				if s.Init != nil {
					genStmt(s.Init)
				}
				if s.Cond != nil {
					genExpr(s.Cond)
				}
				if s.Post != nil {
					genExpr(s.Post)
				}
				genStmt(s.Body)
			case *cminor.ReturnStmt:
				if s.X != nil {
					genExpr(s.X)
					if exprMayCarryPointer(s.X) {
						assignVal(retKey(fn), ptOf(s.X))
					}
				}
			}
		}
		genStmt(f.Body)
	}

	// Global initializers: &x and string pointers stored in globals.
	for _, g := range a.Prog.Globals {
		if g.Init != nil && exprMayCarryPointer(g.Init) {
			if id, ok := a.objOfDecl[g]; ok {
				switch init := g.Init.(type) {
				case *cminor.AddrExpr:
					if lv, ok := init.X.(*cminor.VarRef); ok {
						if tid, ok := a.objOfDecl[lv.Decl]; ok {
							a.ptsOf(sumKey(id)).Add(tid)
						}
					}
				case *cminor.StringLit:
					a.ptsOf(sumKey(id)).Add(a.objOfString[init.Index])
				}
			}
		}
	}

	// Pointer parameters of functions never called inside the program may
	// point anywhere (they are entry points; the Section 2 example relies
	// on this conservatism).
	for _, f := range a.Prog.Funcs {
		if f.Body == nil || a.called[f] {
			continue
		}
		for _, p := range f.Params {
			if p.Type.Decay().IsPointer() {
				if p.AddrTaken {
					if id, ok := a.objOfDecl[p]; ok {
						a.ptsOf(sumKey(id)).Union(a.all)
					}
				} else {
					a.ptsOf(varKey(p)).Union(a.all)
				}
			}
		}
	}

	// Fixpoint iteration over copies and complex constraints.
	edgeSeen := map[copyCons]bool{}
	for {
		changed := false
		for _, c := range copies {
			if a.ptsOf(c.to).Union(*a.ptsOf(c.from)) {
				changed = true
			}
		}
		for _, l := range loads {
			addrs := a.flatten(l.addr)
			for _, o := range addrs.Elems() {
				e := copyCons{from: sumKey(o), to: l.to}
				if !edgeSeen[e] {
					edgeSeen[e] = true
					copies = append(copies, e)
					changed = true
				}
			}
		}
		for _, s := range stores {
			addrs := a.flatten(s.addr)
			val := a.flatten(s.val)
			for _, o := range addrs.Elems() {
				if a.ptsOf(sumKey(o)).Union(val) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// loadKeys materializes the summary keys for a load through addr; when the
// address set may still grow, a deferred load constraint is recorded.
func (a *Analysis) loadKeys(addr ptVal, loads *[]loadCons) []ptKey {
	// A fresh anonymous node (keyed by a synthetic VarDecl for unique
	// identity) holds the loaded pointer set.
	tmp := varKey(&cminor.VarDecl{Name: "<load>"})
	*loads = append(*loads, loadCons{addr: addr, to: tmp})
	return []ptKey{tmp}
}

// exprMayCarryPointer reports whether e's value could be (or contain the
// provenance of) a pointer.
func exprMayCarryPointer(e cminor.Expr) bool {
	t := e.Type()
	if t != nil && (t.Decay().IsPointer() || t.Kind == cminor.TypeArray) {
		return true
	}
	// Integer expressions with pointer-typed subexpressions keep
	// provenance (e.g. (int)p).
	switch e := e.(type) {
	case *cminor.CastExpr:
		return exprMayCarryPointer(e.X)
	case *cminor.BinExpr:
		return exprMayCarryPointer(e.L) || exprMayCarryPointer(e.R)
	case *cminor.UnExpr:
		return exprMayCarryPointer(e.X)
	case *cminor.AddrExpr:
		return true
	}
	return false
}

// lvalueHoldsPointer reports whether a store into this lvalue could place
// a pointer in memory (so the stored value's points-to set matters).
func lvalueHoldsPointer(e cminor.Expr) bool {
	t := e.Type()
	return t != nil && t.Decay().IsPointer()
}

func isConstExpr(e cminor.Expr) bool {
	_, err := cminor.ConstEval(e)
	return err == nil
}

// PointsTo returns the solved points-to set of a pointer variable.
func (a *Analysis) PointsTo(d *cminor.VarDecl) Set {
	if a.isMemoryVar(d) {
		if id, ok := a.objOfDecl[d]; ok {
			return a.ptsOf(sumKey(id)).Clone()
		}
		return a.all.Clone()
	}
	return a.ptsOf(varKey(d)).Clone()
}

// AddrObjects computes the read/write set of an access whose address is
// the given expression: the abstract objects the access may touch.
func (a *Analysis) AddrObjects(addr cminor.Expr) Set {
	v := a.addrVal(addr)
	return a.flatten(v)
}

// addrVal evaluates an address expression to a symbolic points-to value
// using the solved solution (no new constraints are generated; the
// solution is already a fixpoint).
func (a *Analysis) addrVal(e cminor.Expr) ptVal {
	switch e := e.(type) {
	case *cminor.NumberLit:
		return ptVal{}
	case *cminor.StringLit:
		return ptVal{objs: SetOf(a.objOfString[e.Index])}
	case *cminor.VarRef:
		d := e.Decl
		if d.Type.Kind == cminor.TypeArray {
			if id, ok := a.objOfDecl[d]; ok {
				return ptVal{objs: SetOf(id)}
			}
			return ptVal{top: true}
		}
		if a.isMemoryVar(d) {
			if id, ok := a.objOfDecl[d]; ok {
				return ptVal{keys: []ptKey{sumKey(id)}}
			}
			return ptVal{top: true}
		}
		return ptVal{keys: []ptKey{varKey(d)}}
	case *cminor.AddrExpr:
		switch lv := e.X.(type) {
		case *cminor.VarRef:
			if id, ok := a.objOfDecl[lv.Decl]; ok {
				return ptVal{objs: SetOf(id)}
			}
			return ptVal{top: true}
		case *cminor.IndexExpr:
			return a.addrVal(lv.Array)
		case *cminor.DerefExpr:
			return a.addrVal(lv.X)
		}
		return ptVal{top: true}
	case *cminor.BinExpr:
		var v ptVal
		if exprMayCarryPointer(e.L) {
			v.merge(a.addrVal(e.L))
		}
		if exprMayCarryPointer(e.R) {
			v.merge(a.addrVal(e.R))
		}
		return v
	case *cminor.UnExpr:
		if exprMayCarryPointer(e.X) {
			return a.addrVal(e.X)
		}
		return ptVal{}
	case *cminor.CondExpr:
		var v ptVal
		if exprMayCarryPointer(e.Then) {
			v.merge(a.addrVal(e.Then))
		}
		if exprMayCarryPointer(e.Else) {
			v.merge(a.addrVal(e.Else))
		}
		return v
	case *cminor.CastExpr:
		if exprMayCarryPointer(e.X) {
			return a.addrVal(e.X)
		}
		if isConstExpr(e.X) {
			return ptVal{}
		}
		return ptVal{top: true}
	case *cminor.IndexExpr:
		if e.Typ != nil && e.Typ.Kind == cminor.TypeArray {
			return a.addrVal(e.Array)
		}
		// Loaded pointer: approximate by the summaries of the base objects.
		base := a.flatten(a.addrVal(e.Array))
		var v ptVal
		for _, o := range base.Elems() {
			v.addKey(sumKey(o))
		}
		return v
	case *cminor.DerefExpr:
		base := a.flatten(a.addrVal(e.X))
		var v ptVal
		for _, o := range base.Elems() {
			v.addKey(sumKey(o))
		}
		return v
	case *cminor.CallExpr:
		if e.Func != nil {
			return ptVal{keys: []ptKey{retKey(e.Func)}}
		}
		return ptVal{top: true}
	}
	return ptVal{top: true}
}

// Roots returns the pointer/array declarations an address expression
// syntactically derives from — the connection-analysis roots that the
// `#pragma independent` test uses. An empty result means the derivation
// passes through memory and the pragma cannot apply.
func Roots(e cminor.Expr) []*cminor.VarDecl {
	var out []*cminor.VarDecl
	var walk func(cminor.Expr) bool // returns false if derivation is lost
	walk = func(e cminor.Expr) bool {
		switch e := e.(type) {
		case *cminor.VarRef:
			t := e.Decl.Type.Decay()
			if t.IsPointer() {
				out = append(out, e.Decl)
				return true
			}
			return true // integer component contributes no root
		case *cminor.NumberLit, *cminor.StringLit:
			return true
		case *cminor.BinExpr:
			return walk(e.L) && walk(e.R)
		case *cminor.UnExpr:
			return walk(e.X)
		case *cminor.CastExpr:
			return walk(e.X)
		case *cminor.AddrExpr:
			switch lv := e.X.(type) {
			case *cminor.VarRef:
				_ = lv
				return true // a distinct named object, no pointer root
			case *cminor.IndexExpr:
				return walk(lv.Array)
			case *cminor.DerefExpr:
				return walk(lv.X)
			default:
				return false
			}
		case *cminor.IndexExpr:
			if e.Typ != nil && e.Typ.Kind == cminor.TypeArray {
				return walk(e.Array)
			}
			return false // address loaded from memory
		case *cminor.DerefExpr:
			return false
		case *cminor.CondExpr:
			return walk(e.Then) && walk(e.Else)
		}
		return false
	}
	if !walk(e) {
		return nil
	}
	return out
}

func (a *Analysis) collectIndependence() {
	for _, f := range a.Prog.Funcs {
		if len(f.Pragmas) == 0 {
			continue
		}
		m := map[[2]*cminor.VarDecl]bool{}
		// Resolve pragma names against parameters and locals, then globals.
		resolve := func(name string) *cminor.VarDecl {
			for _, p := range f.Params {
				if p.Name == name {
					return p
				}
			}
			for _, l := range f.Locals {
				if l.Name == name {
					return l
				}
			}
			if g := a.Prog.Global(name); g != nil {
				return g
			}
			return nil
		}
		for _, pr := range f.Pragmas {
			da, db := resolve(pr.A), resolve(pr.B)
			if da == nil || db == nil {
				continue
			}
			m[[2]*cminor.VarDecl{da, db}] = true
			m[[2]*cminor.VarDecl{db, da}] = true
		}
		a.indep[f] = m
	}
}

// Independent reports whether two accesses in fn are declared independent
// via pragmas: every pair of derivation roots must be annotated, and both
// accesses must have known roots.
func (a *Analysis) Independent(fn *cminor.FuncDecl, rootsA, rootsB []*cminor.VarDecl) bool {
	m := a.indep[fn]
	if m == nil || len(rootsA) == 0 || len(rootsB) == 0 {
		return false
	}
	for _, ra := range rootsA {
		for _, rb := range rootsB {
			if ra == rb {
				return false
			}
			if !m[[2]*cminor.VarDecl{ra, rb}] {
				return false
			}
		}
	}
	return true
}

// --- location classes ---

func (a *Analysis) classFind(x int) int {
	for a.classParent[x] != x {
		a.classParent[x] = a.classParent[a.classParent[x]]
		x = a.classParent[x]
	}
	return x
}

func (a *Analysis) classUnion(x, y int) {
	rx, ry := a.classFind(x), a.classFind(y)
	if rx != ry {
		a.classParent[rx] = ry
	}
}

// buildClasses unions objects that co-occur in some load/store access's
// read/write set; each resulting class gets its own token circuit.
func (a *Analysis) buildClasses() {
	a.classParent = make([]int, len(a.Objects))
	for i := range a.classParent {
		a.classParent[i] = i
	}
	for _, f := range a.Prog.Funcs {
		if f.Body == nil {
			continue
		}
		a.visitAccesses(f, func(addr cminor.Expr, isWrite bool) {
			objs := a.AddrObjects(addr).Elems()
			for i := 1; i < len(objs); i++ {
				a.classUnion(int(objs[0]), int(objs[i]))
			}
		}, nil)
	}
	a.classIDs = map[int]ClassID{}
	roots := []int{}
	for i := range a.Objects {
		r := a.classFind(i)
		if _, ok := a.classIDs[r]; !ok {
			roots = append(roots, r)
		}
		a.classIDs[r] = 0
	}
	sort.Ints(roots)
	for i, r := range roots {
		a.classIDs[r] = ClassID(i)
	}
	a.numClasses = len(roots)
}

// ClassOf returns the location class of an object.
func (a *Analysis) ClassOf(o ObjID) ClassID { return a.classIDs[a.classFind(int(o))] }

// NumClasses returns the number of location classes.
func (a *Analysis) NumClasses() int { return a.numClasses }

// ClassesOf returns the distinct classes covering a read/write set, in
// increasing order.
func (a *Analysis) ClassesOf(s Set) []ClassID {
	seen := map[ClassID]bool{}
	var out []ClassID
	for _, o := range s.Elems() {
		c := a.ClassOf(o)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsConstSet reports whether every object in the set is immutable; such
// accesses need no tokens at all (paper Section 4.2).
func (a *Analysis) IsConstSet(s Set) bool {
	if s.Empty() {
		return false
	}
	for _, o := range s.Elems() {
		if !a.Objects[o].Const {
			return false
		}
	}
	return true
}

// --- function summaries ---

// visitAccesses calls access for every load/store address expression in
// fn's body (isWrite true for stores), and call (if non-nil) for every
// call expression.
func (a *Analysis) visitAccesses(fn *cminor.FuncDecl, access func(addr cminor.Expr, isWrite bool), call func(*cminor.CallExpr)) {
	var walkExpr func(e cminor.Expr, isStoreTarget bool)
	walkExpr = func(e cminor.Expr, isStoreTarget bool) {
		switch e := e.(type) {
		case *cminor.VarRef:
			if a.isMemoryVar(e.Decl) && e.Decl.Type.Kind != cminor.TypeArray {
				// Memory-resident scalar: the access address is &var; model
				// with the VarRef itself as "address" via AddrObjects on a
				// synthetic AddrExpr — but AddrObjects(VarRef) for a memory
				// scalar resolves to the summary, so wrap explicitly.
				access(&cminor.AddrExpr{X: e, Typ: cminor.PointerTo(e.Decl.Type)}, isStoreTarget)
			}
		case *cminor.IndexExpr:
			walkExpr(e.Array, false)
			walkExpr(e.Index, false)
			if e.Typ.Kind != cminor.TypeArray {
				access(e.Array, isStoreTarget)
			}
		case *cminor.DerefExpr:
			walkExpr(e.X, false)
			access(e.X, isStoreTarget)
		case *cminor.AddrExpr:
			// Taking an address is not an access; but &a[i] evaluates i.
			if idx, ok := e.X.(*cminor.IndexExpr); ok {
				walkExpr(idx.Array, false)
				walkExpr(idx.Index, false)
			}
			if d, ok := e.X.(*cminor.DerefExpr); ok {
				walkExpr(d.X, false)
			}
		case *cminor.BinExpr:
			walkExpr(e.L, false)
			walkExpr(e.R, false)
		case *cminor.UnExpr:
			walkExpr(e.X, false)
		case *cminor.CondExpr:
			walkExpr(e.Cond, false)
			walkExpr(e.Then, false)
			walkExpr(e.Else, false)
		case *cminor.CastExpr:
			walkExpr(e.X, false)
		case *cminor.CallExpr:
			for _, arg := range e.Args {
				walkExpr(arg, false)
			}
			if call != nil {
				call(e)
			}
		case *cminor.AssignExpr:
			walkExpr(e.RHS, false)
			walkExpr(e.LHS, true)
		}
	}
	var walkStmt func(cminor.Stmt)
	walkStmt = func(s cminor.Stmt) {
		switch s := s.(type) {
		case *cminor.BlockStmt:
			for _, sub := range s.Stmts {
				walkStmt(sub)
			}
		case *cminor.DeclStmt:
			if s.Var.Init != nil {
				walkExpr(s.Var.Init, false)
				if a.isMemoryVar(s.Var) {
					ref := &cminor.VarRef{Name: s.Var.Name, Decl: s.Var, Typ: s.Var.Type}
					walkExpr(ref, true)
				}
			}
			for _, e := range s.Var.InitList {
				walkExpr(e, false)
			}
			if len(s.Var.InitList) > 0 {
				if id, ok := a.objOfDecl[s.Var]; ok {
					_ = id
					ref := &cminor.VarRef{Name: s.Var.Name, Decl: s.Var, Typ: s.Var.Type}
					access(&cminor.AddrExpr{X: ref, Typ: cminor.PointerTo(s.Var.Type)}, true)
				}
			}
		case *cminor.ExprStmt:
			walkExpr(s.X, false)
		case *cminor.IfStmt:
			walkExpr(s.Cond, false)
			walkStmt(s.Then)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *cminor.WhileStmt:
			walkExpr(s.Cond, false)
			walkStmt(s.Body)
		case *cminor.DoWhileStmt:
			walkStmt(s.Body)
			walkExpr(s.Cond, false)
		case *cminor.ForStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			if s.Cond != nil {
				walkExpr(s.Cond, false)
			}
			if s.Post != nil {
				walkExpr(s.Post, false)
			}
			walkStmt(s.Body)
		case *cminor.ReturnStmt:
			if s.X != nil {
				walkExpr(s.X, false)
			}
		}
	}
	walkStmt(fn.Body)
}

// summarizeFunctions computes each function's transitive read and write
// object sets (used for call nodes' token plumbing).
func (a *Analysis) summarizeFunctions() {
	type summary struct {
		reads, writes Set
		calls         []*cminor.FuncDecl
	}
	local := map[*cminor.FuncDecl]*summary{}
	for _, f := range a.Prog.Funcs {
		if f.Body == nil {
			continue
		}
		s := &summary{}
		a.visitAccesses(f, func(addr cminor.Expr, isWrite bool) {
			objs := a.AddrObjects(addr)
			if isWrite {
				s.writes.Union(objs)
			} else {
				s.reads.Union(objs)
			}
		}, func(c *cminor.CallExpr) {
			if c.Func != nil {
				s.calls = append(s.calls, c.Func)
			}
		})
		local[f] = s
	}
	for _, f := range a.Prog.Funcs {
		if f.Body == nil {
			continue
		}
		a.funcReads[f] = local[f].reads.Clone()
		a.funcWrites[f] = local[f].writes.Clone()
	}
	// Transitive closure over the call graph.
	for {
		changed := false
		for _, f := range a.Prog.Funcs {
			if f.Body == nil {
				continue
			}
			for _, callee := range local[f].calls {
				if callee.Body == nil {
					continue
				}
				r := a.funcReads[f]
				w := a.funcWrites[f]
				if r.Union(a.funcReads[callee]) {
					changed = true
				}
				if w.Union(a.funcWrites[callee]) {
					changed = true
				}
				a.funcReads[f] = r
				a.funcWrites[f] = w
			}
		}
		if !changed {
			break
		}
	}
}

// FuncReads returns the transitive read set of fn.
func (a *Analysis) FuncReads(fn *cminor.FuncDecl) Set { return a.funcReads[fn].Clone() }

// FuncWrites returns the transitive write set of fn.
func (a *Analysis) FuncWrites(fn *cminor.FuncDecl) Set { return a.funcWrites[fn].Clone() }
