package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	s := New()
	if s.And(True, True) != True || s.And(True, False) != False {
		t.Error("And on terminals wrong")
	}
	if s.Or(False, False) != False || s.Or(False, True) != True {
		t.Error("Or on terminals wrong")
	}
	if s.Not(True) != False || s.Not(False) != True {
		t.Error("Not on terminals wrong")
	}
}

func TestBasicLaws(t *testing.T) {
	s := New()
	a, b := s.Var(), s.Var()
	if s.And(a, s.Not(a)) != False {
		t.Error("a & !a != 0")
	}
	if s.Or(a, s.Not(a)) != True {
		t.Error("a | !a != 1")
	}
	if s.And(a, b) != s.And(b, a) {
		t.Error("And not commutative")
	}
	if s.Or(a, b) != s.Or(b, a) {
		t.Error("Or not commutative")
	}
	// De Morgan.
	if s.Not(s.And(a, b)) != s.Or(s.Not(a), s.Not(b)) {
		t.Error("De Morgan (and) fails")
	}
	if s.Not(s.Or(a, b)) != s.And(s.Not(a), s.Not(b)) {
		t.Error("De Morgan (or) fails")
	}
	// Double negation is identity (canonicity check).
	if s.Not(s.Not(s.And(a, b))) != s.And(a, b) {
		t.Error("double negation not identity")
	}
}

func TestImplies(t *testing.T) {
	s := New()
	a, b := s.Var(), s.Var()
	ab := s.And(a, b)
	if !s.Implies(ab, a) {
		t.Error("a&b should imply a")
	}
	if s.Implies(a, ab) {
		t.Error("a should not imply a&b")
	}
	if !s.Implies(False, a) {
		t.Error("false implies everything")
	}
	if !s.Implies(a, True) {
		t.Error("everything implies true")
	}
	if !s.Implies(a, s.Or(a, b)) {
		t.Error("a should imply a|b")
	}
}

func TestDisjoint(t *testing.T) {
	s := New()
	a, b := s.Var(), s.Var()
	if !s.Disjoint(s.And(a, b), s.And(s.Not(a), b)) {
		t.Error("a&b and !a&b should be disjoint")
	}
	if s.Disjoint(a, b) {
		t.Error("independent variables are not disjoint")
	}
}

// TestMuxPredicates models the decoded-mux predicates in Figure 1C: the
// two store predicates p and !p together dominate the load, so the load's
// residual predicate is constant false.
func TestMuxPredicates(t *testing.T) {
	s := New()
	p := s.Var()
	notP := s.Not(p)
	covered := s.Or(p, notP)
	if covered != True {
		t.Fatal("p | !p should be true")
	}
	// Load executes only when no store does (Figure 9): pred & !covered.
	loadPred := s.AndNot(True, covered)
	if loadPred != False {
		t.Error("dominated load predicate should be constant false")
	}
}

// TestStoreBeforeStore models Figure 8: the earlier store's predicate is
// and-not'ed with the later store's; if the later store post-dominates
// (predicate true), the earlier store dies.
func TestStoreBeforeStore(t *testing.T) {
	s := New()
	p := s.Var()
	if s.AndNot(p, True) != False {
		t.Error("store under p before unconditional store should die")
	}
	q := s.Var()
	want := s.And(p, s.Not(q))
	if s.AndNot(p, q) != want {
		t.Error("partial overwrite should leave p & !q")
	}
}

func TestIte(t *testing.T) {
	s := New()
	c, a, b := s.Var(), s.Var(), s.Var()
	r := s.Ite(c, a, b)
	for _, tc := range []struct {
		cv, av, bv, want bool
	}{
		{true, true, false, true},
		{true, false, true, false},
		{false, true, false, false},
		{false, false, true, true},
	} {
		got := s.Eval(r, map[int]bool{0: tc.cv, 1: tc.av, 2: tc.bv})
		if got != tc.want {
			t.Errorf("ite(%v,%v,%v) = %v, want %v", tc.cv, tc.av, tc.bv, got, tc.want)
		}
	}
}

func TestSupport(t *testing.T) {
	s := New()
	a, b, c := s.Var(), s.Var(), s.Var()
	_ = c
	f := s.And(a, s.Or(b, s.Not(a)))
	sup := s.Support(f)
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 1 {
		t.Errorf("support = %v, want [0 1]", sup)
	}
	// a & (b | !b) depends only on a.
	g := s.And(a, s.Or(b, s.Not(b)))
	if sup := s.Support(g); len(sup) != 1 || sup[0] != 0 {
		t.Errorf("support = %v, want [0]", sup)
	}
}

func TestVarRef(t *testing.T) {
	s := New()
	v3 := s.VarRef(3)
	if s.NumVars() != 4 {
		t.Errorf("NumVars = %d, want 4", s.NumVars())
	}
	if v3 != s.VarRef(3) {
		t.Error("VarRef not idempotent")
	}
}

func TestStringOutput(t *testing.T) {
	s := New()
	a, b := s.Var(), s.Var()
	if got := s.String(True); got != "1" {
		t.Errorf("String(true) = %q", got)
	}
	if got := s.String(False); got != "0" {
		t.Errorf("String(false) = %q", got)
	}
	if got := s.String(s.And(a, b)); got != "v0&v1" {
		t.Errorf("String(a&b) = %q", got)
	}
}

// randomExpr builds a random boolean expression tree and returns both its
// BDD and a closure evaluating the same expression directly.
func randomExpr(s *Space, rng *rand.Rand, vars []Ref, depth int) (Ref, func([]bool) bool) {
	if depth == 0 || rng.Intn(4) == 0 {
		i := rng.Intn(len(vars))
		return vars[i], func(env []bool) bool { return env[i] }
	}
	switch rng.Intn(3) {
	case 0:
		l, fl := randomExpr(s, rng, vars, depth-1)
		r, fr := randomExpr(s, rng, vars, depth-1)
		return s.And(l, r), func(env []bool) bool { return fl(env) && fr(env) }
	case 1:
		l, fl := randomExpr(s, rng, vars, depth-1)
		r, fr := randomExpr(s, rng, vars, depth-1)
		return s.Or(l, r), func(env []bool) bool { return fl(env) || fr(env) }
	default:
		x, fx := randomExpr(s, rng, vars, depth-1)
		return s.Not(x), func(env []bool) bool { return !fx(env) }
	}
}

// Property: a random expression's BDD agrees with direct evaluation on all
// 2^n assignments.
func TestRandomExprSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		s := New()
		const nv = 5
		vars := make([]Ref, nv)
		for i := range vars {
			vars[i] = s.Var()
		}
		r, eval := randomExpr(s, rng, vars, 6)
		for mask := 0; mask < 1<<nv; mask++ {
			env := make([]bool, nv)
			assign := map[int]bool{}
			for i := 0; i < nv; i++ {
				env[i] = mask&(1<<i) != 0
				assign[i] = env[i]
			}
			if s.Eval(r, assign) != eval(env) {
				t.Fatalf("trial %d mask %b: BDD disagrees with direct eval", trial, mask)
			}
		}
	}
}

// Property: canonicity — semantically equal random expressions get the
// same Ref.
func TestCanonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		vars := []Ref{s.Var(), s.Var(), s.Var()}
		a, fa := randomExpr(s, rng, vars, 5)
		b, fb := randomExpr(s, rng, vars, 5)
		equal := true
		for mask := 0; mask < 8; mask++ {
			env := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
			if fa(env) != fb(env) {
				equal = false
				break
			}
		}
		return equal == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Implies(a, b) agrees with exhaustive checking.
func TestImpliesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		s := New()
		vars := []Ref{s.Var(), s.Var(), s.Var(), s.Var()}
		a, fa := randomExpr(s, rng, vars, 4)
		b, fb := randomExpr(s, rng, vars, 4)
		want := true
		for mask := 0; mask < 16; mask++ {
			env := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0, mask&8 != 0}
			if fa(env) && !fb(env) {
				want = false
				break
			}
		}
		if got := s.Implies(a, b); got != want {
			t.Fatalf("trial %d: Implies = %v, want %v", trial, got, want)
		}
	}
}

func BenchmarkAndChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		acc := True
		for j := 0; j < 32; j++ {
			acc = s.And(acc, s.Or(s.Var(), s.Not(s.VarRef(j/2))))
		}
		_ = acc
	}
}
