// Package bdd implements reduced ordered binary decision diagrams.
//
// CASH's memory optimizations rest on "boolean manipulation of the
// controlling predicates" (paper Sections 2 and 5): store-before-store
// removal needs implication tests between store predicates, load merging
// needs disjunction, and dead-operation removal needs constant-false
// detection. A small ROBDD gives all of these exactly (for the path
// predicates of a hyperblock, which are built from a modest number of
// branch conditions), instead of the incomplete syntactic matching most
// compilers settle for.
package bdd

import "fmt"

// Ref is a reference to a BDD node within a Space. The constants False and
// True are valid in every Space.
type Ref int32

// Terminal nodes, shared by all spaces.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level int32 // variable index; terminals use a sentinel level
	lo    Ref   // cofactor when the variable is 0
	hi    Ref   // cofactor when the variable is 1
}

const terminalLevel = int32(1) << 30

// Space is a BDD manager: it owns the node table and memoization caches.
// A Space is not safe for concurrent use.
type Space struct {
	nodes  []node
	unique map[node]Ref
	// Binary-operation memo tables.
	andCache map[[2]Ref]Ref
	orCache  map[[2]Ref]Ref
	notCache map[Ref]Ref
	nvars    int
}

// New creates an empty Space.
func New() *Space {
	s := &Space{
		unique:   make(map[node]Ref),
		andCache: make(map[[2]Ref]Ref),
		orCache:  make(map[[2]Ref]Ref),
		notCache: make(map[Ref]Ref),
	}
	// Reserve slots 0 and 1 for the terminals.
	s.nodes = append(s.nodes,
		node{level: terminalLevel},
		node{level: terminalLevel})
	return s
}

// NumVars returns the number of variables allocated so far.
func (s *Space) NumVars() int { return s.nvars }

// Size returns the number of live nodes, including the two terminals.
func (s *Space) Size() int { return len(s.nodes) }

// Var allocates a fresh variable and returns the BDD for it.
func (s *Space) Var() Ref {
	v := int32(s.nvars)
	s.nvars++
	return s.mk(v, False, True)
}

// VarRef returns the BDD for variable index i, allocating intermediate
// variables if needed.
func (s *Space) VarRef(i int) Ref {
	for s.nvars <= i {
		s.Var()
	}
	return s.mk(int32(i), False, True)
}

func (s *Space) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	n := node{level: level, lo: lo, hi: hi}
	if r, ok := s.unique[n]; ok {
		return r
	}
	r := Ref(len(s.nodes))
	s.nodes = append(s.nodes, n)
	s.unique[n] = r
	return r
}

func (s *Space) level(r Ref) int32 { return s.nodes[r].level }

// Not returns the complement of a.
func (s *Space) Not(a Ref) Ref {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := s.notCache[a]; ok {
		return r
	}
	n := s.nodes[a]
	r := s.mk(n.level, s.Not(n.lo), s.Not(n.hi))
	s.notCache[a] = r
	s.notCache[r] = a
	return r
}

// And returns a ∧ b.
func (s *Space) And(a, b Ref) Ref {
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Ref{a, b}
	if r, ok := s.andCache[key]; ok {
		return r
	}
	na, nb := s.nodes[a], s.nodes[b]
	var r Ref
	switch {
	case na.level == nb.level:
		r = s.mk(na.level, s.And(na.lo, nb.lo), s.And(na.hi, nb.hi))
	case na.level < nb.level:
		r = s.mk(na.level, s.And(na.lo, b), s.And(na.hi, b))
	default:
		r = s.mk(nb.level, s.And(a, nb.lo), s.And(a, nb.hi))
	}
	s.andCache[key] = r
	return r
}

// Or returns a ∨ b.
func (s *Space) Or(a, b Ref) Ref {
	switch {
	case a == True || b == True:
		return True
	case a == False:
		return b
	case b == False:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Ref{a, b}
	if r, ok := s.orCache[key]; ok {
		return r
	}
	na, nb := s.nodes[a], s.nodes[b]
	var r Ref
	switch {
	case na.level == nb.level:
		r = s.mk(na.level, s.Or(na.lo, nb.lo), s.Or(na.hi, nb.hi))
	case na.level < nb.level:
		r = s.mk(na.level, s.Or(na.lo, b), s.Or(na.hi, b))
	default:
		r = s.mk(nb.level, s.Or(a, nb.lo), s.Or(a, nb.hi))
	}
	s.orCache[key] = r
	return r
}

// Xor returns a ⊕ b.
func (s *Space) Xor(a, b Ref) Ref {
	return s.Or(s.And(a, s.Not(b)), s.And(s.Not(a), b))
}

// AndNot returns a ∧ ¬b: the store-before-store rewrite (paper Figure 8)
// replaces the earlier store's predicate p1 with p1 ∧ ¬p2.
func (s *Space) AndNot(a, b Ref) Ref { return s.And(a, s.Not(b)) }

// Implies reports whether a ⇒ b holds for all assignments. CASH uses this
// to detect post-dominance between predicated memory operations.
func (s *Space) Implies(a, b Ref) bool { return s.AndNot(a, b) == False }

// Equiv reports whether a and b denote the same function (by canonicity,
// reference equality).
func (s *Space) Equiv(a, b Ref) bool { return a == b }

// Disjoint reports whether a ∧ b is unsatisfiable: the two predicates can
// never be true together (mutually exclusive paths).
func (s *Space) Disjoint(a, b Ref) bool { return s.And(a, b) == False }

// Ite returns if-then-else: (c ∧ t) ∨ (¬c ∧ e).
func (s *Space) Ite(c, t, e Ref) Ref {
	return s.Or(s.And(c, t), s.And(s.Not(c), e))
}

// Eval evaluates the BDD under the given assignment; missing variables
// default to false.
func (s *Space) Eval(r Ref, assign map[int]bool) bool {
	for r != False && r != True {
		n := s.nodes[r]
		if assign[int(n.level)] {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// Support returns the set of variable indices the function depends on, in
// increasing order.
func (s *Space) Support(r Ref) []int {
	seen := map[Ref]bool{}
	inSup := map[int32]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		if r == False || r == True || seen[r] {
			return
		}
		seen[r] = true
		n := s.nodes[r]
		inSup[n.level] = true
		walk(n.lo)
		walk(n.hi)
	}
	walk(r)
	var out []int
	for v := int32(0); v < int32(s.nvars); v++ {
		if inSup[v] {
			out = append(out, int(v))
		}
	}
	return out
}

// String renders the BDD as a sum of products, for diagnostics.
func (s *Space) String(r Ref) string {
	switch r {
	case False:
		return "0"
	case True:
		return "1"
	}
	var terms []string
	var lits []string
	var walk func(Ref)
	walk = func(r Ref) {
		if r == False {
			return
		}
		if r == True {
			term := ""
			for i, l := range lits {
				if i > 0 {
					term += "&"
				}
				term += l
			}
			terms = append(terms, term)
			return
		}
		n := s.nodes[r]
		lits = append(lits, fmt.Sprintf("!v%d", n.level))
		walk(n.lo)
		lits[len(lits)-1] = fmt.Sprintf("v%d", n.level)
		walk(n.hi)
		lits = lits[:len(lits)-1]
	}
	walk(r)
	out := ""
	for i, t := range terms {
		if i > 0 {
			out += " | "
		}
		out += t
	}
	return out
}
