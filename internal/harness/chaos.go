package harness

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spatial/api"
	"spatial/client"
	"spatial/internal/cashd"
	"spatial/internal/netchaos"
	"spatial/internal/serve"
)

// ChaosRow is one fault schedule's outcome against a multi-peer cashd
// cluster. The resilience contract it records: every request either
// succeeds bit-identically to the fault-free reference, or fails with a
// typed *api.Error — never a hang, never a silent wrong answer, never a
// raw transport error leaked to the caller.
type ChaosRow struct {
	Schedule string `json:"schedule"`
	Seed     int64  `json:"seed"`
	Requests int    `json:"requests"`
	OK       int    `json:"ok"`           // bit-identical successes
	Typed    int    `json:"typed_errors"` // failed, but with a typed api.Error
	Wrong    int    `json:"wrong_answers"`
	Unclass  int    `json:"unclassified"` // failed with an untyped error — a contract breach
	Hangs    int    `json:"hangs"`        // no answer past deadline + grace — a contract breach

	AvailabilityPct float64 `json:"availability_pct"` // OK over Requests
	P50NS           int64   `json:"p50_ns"`           // median OK latency under faults
	P99NS           int64   `json:"p99_ns"`

	Triggered int `json:"triggered"` // injections that actually fired
}

// ChaosOptions parameterizes ChaosBattery. Zero values select defaults.
type ChaosOptions struct {
	Peers       int           // cluster size; 0 = 3
	Requests    int           // per schedule; 0 = 120
	Concurrency int           // parallel request streams; 0 = 4
	Deadline    time.Duration // per-request budget; 0 = 5s
	Seed        int64         // jitter seed; 0 = 1
	Schedules   []string      // nil = every schedule
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Peers <= 0 {
		o.Peers = 3
	}
	if o.Requests <= 0 {
		o.Requests = 120
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Deadline <= 0 {
		o.Deadline = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// chaosSchedule names one deterministic fault plan, built fresh (the
// injector is stateful) for each battery pass.
type chaosSchedule struct {
	name  string
	build func(hosts []string, seed int64) *netchaos.Injector
}

// chaosSchedules is the battery: each entry attacks one layer of the
// resilience machinery. Hosts are the cluster's listen addresses in ring
// order of the peer list.
func chaosSchedules() []chaosSchedule {
	return []chaosSchedule{
		{"peer-kill", func(hosts []string, seed int64) *netchaos.Injector {
			// The first peer dies after its first arrival and never comes
			// back: every request it owned must fail over.
			return netchaos.New(netchaos.Plan{},
				netchaos.PeerWindow{Peer: hosts[0], From: 2})
		}},
		{"conn-reset", func(hosts []string, seed int64) *netchaos.Injector {
			return netchaos.New(netchaos.Plan{Faults: []netchaos.Fault{
				{Op: netchaos.Reset, Path: "/v1/run", Nth: 1},
				{Op: netchaos.Reset, Path: "/v1/run", Nth: 4},
				{Op: netchaos.Reset, Peer: hosts[1], Nth: 7},
			}})
		}},
		{"corrupt", func(hosts []string, seed int64) *netchaos.Injector {
			// Byte 0 is the opening brace of the JSON body: always
			// detectable, so a corrupted response must be retried, never
			// decoded into a wrong answer.
			return netchaos.New(netchaos.Plan{Faults: []netchaos.Fault{
				{Op: netchaos.Corrupt, Path: "/v1/run", Nth: 2},
				{Op: netchaos.Corrupt, Path: "/v1/run", Nth: 5},
			}})
		}},
		{"truncate", func(hosts []string, seed int64) *netchaos.Injector {
			return netchaos.New(netchaos.Plan{Faults: []netchaos.Fault{
				{Op: netchaos.Truncate, Path: "/v1/run", Nth: 3},
				{Op: netchaos.Truncate, Path: "/v1/run", Nth: 6},
			}})
		}},
		{"flaky-5xx", func(hosts []string, seed int64) *netchaos.Injector {
			return netchaos.New(netchaos.Plan{Faults: []netchaos.Fault{
				{Op: netchaos.Status, Code: 500, Nth: 1},
				{Op: netchaos.Status, Code: 502, Nth: 4},
				{Op: netchaos.Status, Code: 429, Nth: 7},
			}})
		}},
		{"delay", func(hosts []string, seed int64) *netchaos.Injector {
			return netchaos.New(netchaos.Plan{Faults: []netchaos.Fault{
				{Op: netchaos.Delay, Latency: 50 * time.Millisecond, Nth: 2},
				{Op: netchaos.Delay, Latency: 30 * time.Millisecond, Nth: 5},
			}}).WithJitter(seed, 0.1, 10*time.Millisecond)
		}},
		{"blackhole", func(hosts []string, seed int64) *netchaos.Injector {
			// One request is swallowed whole; the hedge must mask it well
			// before the request deadline would.
			return netchaos.New(netchaos.Plan{Faults: []netchaos.Fault{
				{Op: netchaos.Drop, Path: "/v1/run", Nth: 3},
			}})
		}},
	}
}

// chaosMix is the request set the battery cycles through: small distinct
// programs so several peers own traffic and the compile cache warms
// within the reference pass.
func chaosMix() []api.RunRequest {
	var mix []api.RunRequest
	for _, n := range []int{50, 90, 130, 170, 210, 250} {
		src := fmt.Sprintf(`
int f(void) {
  int i; int s = 0;
  for (i = 0; i < %d; i++) s += i;
  return s;
}`, n)
		mix = append(mix, api.RunRequest{
			Program: api.Program{Source: src, Level: api.LevelFull},
			Entry:   "f",
		})
	}
	return mix
}

// chaosCluster is an in-process multi-peer cashd cluster on loopback.
type chaosCluster struct {
	urls  []string
	hosts []string
	srvs  []*cashd.Server
	https []*http.Server
}

func startChaosCluster(n int) (*chaosCluster, error) {
	c := &chaosCluster{}
	lns := make([]net.Listener, 0, n)
	fail := func(err error) (*chaosCluster, error) {
		for _, ln := range lns {
			ln.Close()
		}
		c.stop()
		return nil, err
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		lns = append(lns, ln)
		c.urls = append(c.urls, "http://"+ln.Addr().String())
		c.hosts = append(c.hosts, ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		srv, err := cashd.New(cashd.Config{
			Engine: serve.Config{Workers: 2, QueueDepth: 64, CacheEntries: 32},
			Self:   c.urls[i],
			Peers:  c.urls,
		})
		if err != nil {
			return fail(err)
		}
		c.srvs = append(c.srvs, srv)
		hs := &http.Server{Handler: srv.Handler()}
		c.https = append(c.https, hs)
		go hs.Serve(lns[i])
	}
	return c, nil
}

func (c *chaosCluster) stop() {
	for _, hs := range c.https {
		hs.Close()
	}
	for _, s := range c.srvs {
		s.Close()
	}
}

// chaosRef is the fault-free reference answer for one program.
type chaosRef struct {
	value int64
	stats api.Stats
}

// ChaosBattery drives a fresh in-process cluster through each fault
// schedule and reports one row per schedule. Before injecting anything
// it records a fault-free reference answer per program; under faults,
// every success must match its reference bit-for-bit.
func ChaosBattery(opts ChaosOptions) ([]ChaosRow, error) {
	opts = opts.withDefaults()
	mix := chaosMix()

	want := map[string]bool{}
	for _, s := range opts.Schedules {
		want[s] = true
	}
	var rows []ChaosRow
	for _, sched := range chaosSchedules() {
		if len(want) > 0 && !want[sched.name] {
			continue
		}
		row, err := runChaosSchedule(sched, mix, opts)
		if err != nil {
			return rows, fmt.Errorf("chaos: schedule %s: %w", sched.name, err)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("chaos: no schedules selected from %v", opts.Schedules)
	}
	return rows, nil
}

func runChaosSchedule(sched chaosSchedule, mix []api.RunRequest, opts ChaosOptions) (ChaosRow, error) {
	cluster, err := startChaosCluster(opts.Peers)
	if err != nil {
		return ChaosRow{}, err
	}
	defer cluster.stop()

	// Reference pass: a plain client (no injector) records the expected
	// answer per program and warms every owner's compile cache.
	refCl, err := client.New(client.Config{Peers: cluster.urls})
	if err != nil {
		return ChaosRow{}, err
	}
	refs := map[string]chaosRef{}
	for _, rr := range mix {
		ctx, cancel := context.WithTimeout(context.Background(), opts.Deadline)
		resp, err := refCl.Run(ctx, rr)
		cancel()
		if err != nil {
			return ChaosRow{}, fmt.Errorf("reference pass: %w", err)
		}
		refs[rr.Program.Source] = chaosRef{value: resp.Value, stats: resp.Stats}
	}

	// Chaos pass: the same traffic through the fault-injecting transport.
	inj := sched.build(cluster.hosts, opts.Seed)
	cl, err := client.New(client.Config{
		Peers:       cluster.urls,
		HTTPClient:  &http.Client{Transport: &netchaos.Transport{Inj: inj}},
		MaxRetries:  6,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Hedge:       true,
		HedgeDelay:  25 * time.Millisecond,
	})
	if err != nil {
		return ChaosRow{}, err
	}
	row := driveChaos(cl, refs, mix, opts)
	row.Schedule = sched.name
	row.Seed = opts.Seed
	row.Triggered = len(inj.Triggered())
	return row, nil
}

// driveChaos fires opts.Requests requests through cl from
// opts.Concurrency workers and classifies every outcome. A watchdog
// past the request deadline plus a grace period scores a hang — the one
// thing retries and hedging must never produce.
func driveChaos(cl *client.Client, refs map[string]chaosRef, mix []api.RunRequest, opts ChaosOptions) ChaosRow {
	row := ChaosRow{Requests: opts.Requests}
	var (
		mu   sync.Mutex
		lats []time.Duration
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				rr := mix[i%len(mix)]
				ok, typed, wrong, unclass, hang, lat := oneChaosRequest(cl, rr, refs[rr.Program.Source], opts.Deadline)
				mu.Lock()
				row.OK += ok
				row.Typed += typed
				row.Wrong += wrong
				row.Unclass += unclass
				row.Hangs += hang
				if ok == 1 {
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	row.AvailabilityPct = 100 * float64(row.OK) / float64(row.Requests)
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		row.P50NS = lats[len(lats)*50/100].Nanoseconds()
		p99 := len(lats) * 99 / 100
		if p99 >= len(lats) {
			p99 = len(lats) - 1
		}
		row.P99NS = lats[p99].Nanoseconds()
	}
	return row
}

func oneChaosRequest(cl *client.Client, rr api.RunRequest, ref chaosRef, deadline time.Duration) (ok, typed, wrong, unclass, hang int, lat time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	type result struct {
		resp *api.RunResponse
		err  error
	}
	ch := make(chan result, 1)
	start := time.Now()
	go func() {
		resp, err := cl.Run(ctx, rr)
		ch <- result{resp, err}
	}()
	select {
	case r := <-ch:
		lat = time.Since(start)
		if r.err != nil {
			var ae *api.Error
			if errors.As(r.err, &ae) {
				return 0, 1, 0, 0, 0, lat
			}
			return 0, 0, 0, 1, 0, lat
		}
		if r.resp.Value != ref.value || r.resp.Stats != ref.stats {
			return 0, 0, 1, 0, 0, lat
		}
		return 1, 0, 0, 0, 0, lat
	case <-time.After(deadline + 3*time.Second):
		// The client's own deadline handling should have answered long
		// ago; this is the harness-level hang detector.
		return 0, 0, 0, 0, 1, 0
	}
}

// ChaosGate enforces the battery's hard contract: no hangs, no wrong
// answers, no unclassified errors, and at least one success per
// schedule. Typed errors are allowed — shedding under attack is policy,
// lying or wedging is not.
func ChaosGate(rows []ChaosRow) error {
	for _, r := range rows {
		if r.Hangs > 0 || r.Wrong > 0 || r.Unclass > 0 {
			return fmt.Errorf("chaos gate: schedule %s: %d hangs, %d wrong answers, %d unclassified errors (want 0/0/0)",
				r.Schedule, r.Hangs, r.Wrong, r.Unclass)
		}
		if r.OK == 0 {
			return fmt.Errorf("chaos gate: schedule %s: no request succeeded", r.Schedule)
		}
	}
	return nil
}

// FormatChaos renders the battery as the experiments table.
func FormatChaos(opts ChaosOptions, rows []ChaosRow) string {
	opts = opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "cashd chaos battery (peers=%d, requests/schedule=%d, concurrency=%d, deadline=%s, seed=%d)\n",
		opts.Peers, opts.Requests, opts.Concurrency, opts.Deadline, opts.Seed)
	fmt.Fprintf(&b, "  %-10s %5s %5s %6s %6s %8s %6s %7s %10s %10s %7s\n",
		"schedule", "req", "ok", "typed", "wrong", "unclass", "hangs", "avail", "p50", "p99", "faults")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %5d %5d %6d %6d %8d %6d %6.1f%% %10s %10s %7d\n",
			r.Schedule, r.Requests, r.OK, r.Typed, r.Wrong, r.Unclass, r.Hangs,
			r.AvailabilityPct,
			time.Duration(r.P50NS).Round(time.Microsecond),
			time.Duration(r.P99NS).Round(time.Microsecond),
			r.Triggered)
	}
	return b.String()
}
