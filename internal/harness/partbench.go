package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"spatial/internal/codegen"
	"spatial/internal/dataflow"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
	"spatial/internal/workloads"
)

// BenchPartitions is the domain-count sweep for the intra-run
// partitioned rows. Unlike the batch-parallel curve (many independent
// runs), these rows parallelize a SINGLE simulation by sharding its
// event queue into per-hyperblock domains.
var BenchPartitions = []int{1, 2, 4}

// PartitionedRow is one (workload, backend, partitions) measurement of
// single-run simulation throughput with the event queue partitioned
// into concurrent domains. The partitions=1 row of each backend runs
// that backend's plain sequential engine and anchors Speedup — the
// comparison the paper's scaling claim actually needs is "partitioned
// vs the engine you would otherwise use", not "N domains vs 1 domain
// paying scheduler tax". Value/Cycles/Events must be bit-identical
// across every row of a workload — including across backends (the
// interpreter's sequential run is the reference for all of them) — so
// these rows double as a determinism regression gate.
type PartitionedRow struct {
	Workload string `json:"workload"`
	Level    int    `json:"level"`
	// Backend is the engine measured ("interp" or "codegen").
	Backend    string `json:"backend"`
	Partitions int    `json:"partitions"`

	Value  int64 `json:"value"`
	Cycles int64 `json:"cycles"`
	Events int64 `json:"events"`

	Runs        int     `json:"runs"`
	NsPerRun    float64 `json:"ns_per_run"`
	NsPerEvent  float64 `json:"ns_per_event"`
	AllocsPerEv float64 `json:"allocs_per_event"`
	// Speedup is this row's ns/event advantage over the sequential
	// (partitions=1) row of the same workload and backend measured in
	// the same sweep (1.0 for the sequential rows themselves).
	Speedup float64 `json:"speedup_vs_seq"`
	// Degenerate marks multi-domain rows measured with GOMAXPROCS=1:
	// the domain workers time-slice one core and only the barrier
	// overhead remains, so Speedup ≤ 1.0 by construction. Consumers
	// (the CI smoke gate included) must not assert speedups on flagged
	// rows.
	Degenerate bool `json:"degenerate,omitempty"`
}

// BenchPartitioned measures intra-run partitioned-simulation scaling
// for the named workloads at opt.Full across the given domain counts,
// on both engines: the interpreter curve first, then the compiled-VM
// curve, each anchored to its own partitions=1 sequential row. Every
// run of every row — both backends, all domain counts — must reproduce
// the interpreter's sequential Result bit-identically or the sweep
// aborts: a partitioned engine that drifts semantically has no business
// in a perf baseline.
func BenchPartitioned(names []string, parts []int, minTime time.Duration) ([]PartitionedRow, error) {
	var rows []PartitionedRow
	for _, name := range names {
		w := workloads.ByName(name)
		if w == nil {
			return nil, fmt.Errorf("bench: unknown workload %q", name)
		}
		p, err := compileWorkload(w, opt.Full, nil)
		if err != nil {
			return nil, err
		}
		sh := dataflow.Prebuild(p)
		mod := codegen.Compile(p)
		cfg := dataflow.DefaultConfig()
		ref, err := sh.Run(w.Entry, nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}

		for _, backend := range BenchBackends {
			seqNs := 0.0
			for _, n := range parts {
				row, err := benchPartitionedOne(w, p, sh, mod, cfg, ref, backend, n, minTime)
				if err != nil {
					return nil, err
				}
				if seqNs == 0 {
					seqNs = row.NsPerEvent
				}
				row.Speedup = seqNs / row.NsPerEvent
				row.Degenerate = n > 1 && runtime.GOMAXPROCS(0) < 2
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// benchPartitionedOne times one point of the scaling curve: repeated
// full simulations with n event domains (n ≤ 1 means the backend's
// sequential engine) until minTime elapses, every result checked
// against the interpreter's sequential reference.
func benchPartitionedOne(w *workloads.Workload, p *pegasus.Program, sh *dataflow.Shared, mod *codegen.Module,
	cfg dataflow.Config, ref *dataflow.Result, backend string, n int, minTime time.Duration) (PartitionedRow, error) {
	row := PartitionedRow{
		Workload:   w.Name,
		Level:      int(opt.Full),
		Backend:    backend,
		Partitions: n,
		Value:      ref.Value,
		Cycles:     ref.Stats.Cycles,
		Events:     ref.Stats.Events,
	}

	var run func() (*dataflow.Result, error)
	switch {
	case backend == BackendCodegen && n > 1:
		part, err := dataflow.BuildPartition(p, n, nil)
		if err != nil {
			return row, fmt.Errorf("%s [%s] @%d partitions: %w", w.Name, backend, n, err)
		}
		pmod, err := codegen.CompilePartitioned(p, part)
		if err != nil {
			return row, fmt.Errorf("%s [%s] @%d partitions: %w", w.Name, backend, n, err)
		}
		run = func() (*dataflow.Result, error) { return pmod.Run(w.Entry, nil, cfg) }
	case backend == BackendCodegen:
		run = func() (*dataflow.Result, error) { return mod.Run(w.Entry, nil, cfg) }
	case n > 1:
		part, err := dataflow.BuildPartition(p, n, nil)
		if err != nil {
			return row, fmt.Errorf("%s [%s] @%d partitions: %w", w.Name, backend, n, err)
		}
		run = func() (*dataflow.Result, error) {
			return sh.RunPartitioned(nil, w.Entry, nil, cfg, part)
		}
	default:
		run = func() (*dataflow.Result, error) { return sh.Run(w.Entry, nil, cfg) }
	}

	// Warm-up run: verifies identity once before timing and fills the
	// engine's pools so the timed loop measures the steady state.
	res, err := run()
	if err != nil {
		return row, fmt.Errorf("%s [%s] @%d partitions: %w", w.Name, backend, n, err)
	}
	if *res != *ref {
		return row, fmt.Errorf("%s [%s] @%d partitions: diverged from sequential interpreter reference:\n reference   %+v\n partitioned %+v",
			w.Name, backend, n, *ref, *res)
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var elapsed time.Duration
	runs := 0
	for elapsed < minTime || runs < 2 {
		res, err := run()
		if err != nil {
			return row, fmt.Errorf("%s [%s] @%d partitions: %w", w.Name, backend, n, err)
		}
		if *res != *ref {
			return row, fmt.Errorf("%s [%s] @%d partitions: run %d diverged from sequential interpreter reference:\n reference   %+v\n partitioned %+v",
				w.Name, backend, n, runs, *ref, *res)
		}
		runs++
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&ms1)

	totalEvents := float64(row.Events) * float64(runs)
	row.Runs = runs
	row.NsPerRun = float64(elapsed.Nanoseconds()) / float64(runs)
	row.NsPerEvent = float64(elapsed.Nanoseconds()) / totalEvents
	row.AllocsPerEv = float64(ms1.Mallocs-ms0.Mallocs) / totalEvents
	return row, nil
}

// FormatPartitioned renders the intra-run scaling curve as a table.
func FormatPartitioned(cpus int, rows []PartitionedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Partitioned single-run throughput (%d CPUs, event domains synchronized by time windows, bit-identity verified)\n", cpus)
	fmt.Fprintf(&b, "%-14s %-8s %-8s %8s %10s %12s %10s\n",
		"workload", "backend", "domains", "runs", "ns/event", "allocs/ev", "speedup")
	for _, row := range rows {
		backend := row.Backend
		if backend == "" {
			backend = BackendInterp
		}
		fmt.Fprintf(&b, "%-14s %-8s %-8d %8d %10.1f %12.4f %9.2fx", row.Workload, backend, row.Partitions, row.Runs, row.NsPerEvent, row.AllocsPerEv, row.Speedup)
		if row.Degenerate {
			b.WriteString(" (degenerate: 1 CPU)")
		}
		b.WriteString("\n")
	}
	return b.String()
}
