package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spatial/internal/dataflow"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

// BenchWorkers is the worker-count sweep for the parallel throughput
// rows: enough points to read a scaling curve without dominating bench
// time.
var BenchWorkers = []int{1, 2, 4, 8}

// ParallelRow is one (workload, workers) measurement of batch
// throughput: W goroutines each looping complete simulations of the
// same compiled program against one shared immutable dataflow.Shared.
// Value/Cycles/Events are the serial reference; every run in every
// stream must reproduce them bit-identically or the benchmark fails —
// the parallel rows double as the concurrency-safety regression gate.
type ParallelRow struct {
	Workload string `json:"workload"`
	Level    int    `json:"level"`
	Workers  int    `json:"workers"`

	Value  int64 `json:"value"`
	Cycles int64 `json:"cycles"`
	Events int64 `json:"events"`

	Runs       int     `json:"runs"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// NsPerEvent is per-stream latency: summed in-run wall time across
	// all streams divided by total events. Under perfect scaling it
	// stays flat as workers grow while RunsPerSec multiplies.
	NsPerEvent float64 `json:"ns_per_event"`
	// Speedup is RunsPerSec relative to the 1-worker row of the same
	// workload (1.0 for the 1-worker row itself).
	Speedup float64 `json:"speedup_vs_1w"`
	// Degenerate marks multi-worker rows measured with GOMAXPROCS=1:
	// the streams time-slice one core, so Speedup hovers around 1.0 by
	// construction and says nothing about scaling. Consumers (the CI
	// smoke gate included) must not assert speedups on flagged rows.
	Degenerate bool `json:"degenerate,omitempty"`
}

// BenchParallel measures batch-simulation scaling for the named
// workloads at opt.Full across the given worker counts. Each workload
// is compiled once; all streams share the immutable prebuilt structures
// (dataflow.Prebuild), which is exactly the sharing the serve engine
// relies on. Any stream whose run diverges from the serial reference
// aborts the sweep with an error.
func BenchParallel(names []string, workers []int, minTime time.Duration) ([]ParallelRow, error) {
	var rows []ParallelRow
	for _, name := range names {
		w := workloads.ByName(name)
		if w == nil {
			return nil, fmt.Errorf("bench: unknown workload %q", name)
		}
		p, err := compileWorkload(w, opt.Full, nil)
		if err != nil {
			return nil, err
		}
		sh := dataflow.Prebuild(p)
		cfg := dataflow.DefaultConfig()
		ref, err := sh.Run(w.Entry, nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}

		base := 0.0
		for _, nw := range workers {
			row, err := benchParallelOne(w, sh, cfg, ref, nw, minTime)
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = row.RunsPerSec
			}
			row.Speedup = row.RunsPerSec / base
			row.Degenerate = nw > 1 && runtime.GOMAXPROCS(0) < 2
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// benchParallelOne runs one point of the scaling curve: nw streams
// looping full simulations until minTime elapses, every result checked
// against the serial reference.
func benchParallelOne(w *workloads.Workload, sh *dataflow.Shared, cfg dataflow.Config, ref *dataflow.Result, nw int, minTime time.Duration) (ParallelRow, error) {
	row := ParallelRow{
		Workload: w.Name,
		Level:    int(opt.Full),
		Workers:  nw,
		Value:    ref.Value,
		Cycles:   ref.Stats.Cycles,
		Events:   ref.Stats.Events,
	}

	var stop atomic.Bool
	var runs, busy atomic.Int64
	errc := make(chan error, nw)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			n := 0
			for n == 0 || !stop.Load() {
				t0 := time.Now()
				res, err := sh.Run(w.Entry, nil, cfg)
				busy.Add(time.Since(t0).Nanoseconds())
				if err != nil {
					errc <- fmt.Errorf("%s @%d workers, stream %d: %w", w.Name, nw, stream, err)
					return
				}
				if res.Value != ref.Value || res.Stats.Cycles != ref.Stats.Cycles || res.Stats.Events != ref.Stats.Events {
					errc <- fmt.Errorf("%s @%d workers, stream %d run %d diverged from serial reference: got (value %d, cycles %d, events %d), want (%d, %d, %d)",
						w.Name, nw, stream, n, res.Value, res.Stats.Cycles, res.Stats.Events,
						ref.Value, ref.Stats.Cycles, ref.Stats.Events)
					return
				}
				n++
				runs.Add(1)
			}
		}(i)
	}
	time.Sleep(minTime)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	select {
	case err := <-errc:
		return row, err
	default:
	}

	total := runs.Load()
	row.Runs = int(total)
	row.RunsPerSec = float64(total) / elapsed.Seconds()
	row.NsPerEvent = float64(busy.Load()) / (float64(row.Events) * float64(total))
	return row, nil
}
