package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"spatial/internal/codegen"
	"spatial/internal/dataflow"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

// BenchSet is the representative workload subset the simulator
// performance baseline tracks (the same five programs as the root
// go-test benchmarks).
var BenchSet = []string{"adpcm_e", "epic_e", "g721_e", "mesa", "129.compress"}

// BenchLevels are the optimization levels the baseline sweeps.
var BenchLevels = []opt.Level{opt.None, opt.Basic, opt.Medium, opt.Full}

// Execution engines the baseline measures. The names match the BENCH.json
// row labels: "interp" is the event-driven graph interpreter, "codegen"
// the compiled flat-bytecode VM.
const (
	BackendInterp  = "interp"
	BackendCodegen = "codegen"
)

// BenchBackends is the default backend sweep: both engines, interpreter
// first so each codegen row can carry its same-run speedup.
var BenchBackends = []string{BackendInterp, BackendCodegen}

// BenchRow is one (workload, level, backend) measurement of simulator
// throughput. Value/Cycles/Events identify the run semantically — they
// must be bit-identical across engine changes AND across backends —
// while the rate metrics track the engine's speed.
type BenchRow struct {
	Workload string `json:"workload"`
	Level    int    `json:"level"`
	// Backend is the engine measured: "interp" or "codegen". Empty in
	// reports predating the compiled backend, which measured only the
	// interpreter.
	Backend string `json:"backend,omitempty"`

	Value  int64 `json:"value"`
	Cycles int64 `json:"cycles"`
	Events int64 `json:"events"`

	Runs        int     `json:"runs"`
	NsPerRun    float64 `json:"ns_per_run"`
	NsPerEvent  float64 `json:"ns_per_event"`
	AllocsPerEv float64 `json:"allocs_per_event"`
	SimCycSec   float64 `json:"sim_cycles_per_sec"`
	// Speedup is this row's ns/event advantage over the interpreter row
	// measured in the same sweep (codegen rows only, and only when the
	// sweep ran both backends) — a paired same-run, same-host ratio, not
	// a comparison against a recorded baseline.
	Speedup float64 `json:"speedup,omitempty"`
}

// BenchReport is the serialized form of one baseline sweep (BENCH.json).
// CPUs records the machine's core count so the parallel rows can be
// read in context — a scaling curve flattens at the physical core
// count, not at the worker count.
type BenchReport struct {
	GoVersion   string           `json:"go_version"`
	CPUs        int              `json:"cpus"`
	BenchTime   string           `json:"bench_time"`
	Rows        []BenchRow       `json:"rows"`
	Parallel    []ParallelRow    `json:"parallel,omitempty"`
	Partitioned []PartitionedRow `json:"partitioned,omitempty"`
	Load        []LoadRow        `json:"load,omitempty"`
	Chaos       []ChaosRow       `json:"chaos,omitempty"`
}

// Bench measures simulator throughput for the named workloads at every
// level in BenchLevels on every backend in backends (nil means both
// engines). Each (workload, level, backend) triple is compiled once and
// then run repeatedly for at least minTime; the first run's result is
// the reference, and every repeat must reproduce it bit-identically
// (value and cycle count) or Bench fails — a perf baseline that drifts
// semantically is worthless. When the sweep covers both backends, their
// references must also agree bit-for-bit (the full Result, statistics
// included), and each codegen row carries its same-sweep speedup over
// the interpreter. Allocation counts come from the runtime's cumulative
// malloc counter across the timed runs.
func Bench(names []string, minTime time.Duration, backends []string) (*BenchReport, error) {
	if len(backends) == 0 {
		backends = BenchBackends
	}
	rep := &BenchReport{
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		BenchTime: minTime.String(),
	}
	for _, name := range names {
		w := workloads.ByName(name)
		if w == nil {
			return nil, fmt.Errorf("bench: unknown workload %q", name)
		}
		for _, level := range BenchLevels {
			var ref *dataflow.Result
			interpNs := 0.0
			for _, backend := range backends {
				row, rowRef, err := benchOne(w, level, minTime, backend)
				if err != nil {
					return nil, err
				}
				if ref == nil {
					ref = rowRef
				} else if *rowRef != *ref {
					return nil, fmt.Errorf("bench: %s @%s: backend divergence:\n %s %+v\n %s %+v",
						w.Name, level, backends[0], ref, backend, rowRef)
				}
				switch backend {
				case BackendInterp:
					interpNs = row.NsPerEvent
				case BackendCodegen:
					if interpNs > 0 {
						row.Speedup = interpNs / row.NsPerEvent
					}
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

func benchOne(w *workloads.Workload, level opt.Level, minTime time.Duration, backend string) (BenchRow, *dataflow.Result, error) {
	row := BenchRow{Workload: w.Name, Level: int(level), Backend: backend}
	p, err := compileWorkload(w, level, nil)
	if err != nil {
		return row, nil, err
	}
	cfg := dataflow.DefaultConfig()
	var run func() (*dataflow.Result, error)
	switch backend {
	case BackendInterp:
		run = func() (*dataflow.Result, error) { return dataflow.Run(p, w.Entry, nil, cfg) }
	case BackendCodegen:
		mod := codegen.Compile(p)
		run = func() (*dataflow.Result, error) { return mod.Run(w.Entry, nil, cfg) }
	default:
		return row, nil, fmt.Errorf("bench: unknown backend %q (want %q or %q)", backend, BackendInterp, BackendCodegen)
	}

	// Warm-up run: captures the reference result and fills the engine's
	// pools so the timed loop measures the steady state.
	ref, err := run()
	if err != nil {
		return row, nil, fmt.Errorf("%s @%s [%s]: %w", w.Name, level, backend, err)
	}
	row.Value, row.Cycles, row.Events = ref.Value, ref.Stats.Cycles, ref.Stats.Events

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var elapsed time.Duration
	runs := 0
	for elapsed < minTime || runs < 2 {
		res, err := run()
		if err != nil {
			return row, nil, fmt.Errorf("%s @%s [%s]: %w", w.Name, level, backend, err)
		}
		if res.Value != ref.Value || res.Stats.Cycles != ref.Stats.Cycles || res.Stats.Events != ref.Stats.Events {
			return row, nil, fmt.Errorf("%s @%s [%s]: nondeterministic: run %d gave (value %d, cycles %d, events %d), reference (%d, %d, %d)",
				w.Name, level, backend, runs, res.Value, res.Stats.Cycles, res.Stats.Events, ref.Value, ref.Stats.Cycles, ref.Stats.Events)
		}
		runs++
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&ms1)

	totalEvents := float64(row.Events) * float64(runs)
	row.Runs = runs
	row.NsPerRun = float64(elapsed.Nanoseconds()) / float64(runs)
	row.NsPerEvent = float64(elapsed.Nanoseconds()) / totalEvents
	row.AllocsPerEv = float64(ms1.Mallocs-ms0.Mallocs) / totalEvents
	row.SimCycSec = float64(row.Cycles) * float64(runs) / elapsed.Seconds()
	return row, ref, nil
}

// MaxAllocsPerEvent returns the worst allocs/event across the report —
// the CI smoke gate compares this against its budget.
func (r *BenchReport) MaxAllocsPerEvent() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if row.AllocsPerEv > worst {
			worst = row.AllocsPerEv
		}
	}
	return worst
}

// Benchstat renders the report as benchstat-compatible lines
// (`BenchmarkSim/<workload>/O<level> <runs> <ns/op> ns/op ...`), so two
// BENCH runs can be compared with `benchstat old.txt new.txt`.
func (r *BenchReport) Benchstat() string {
	var b strings.Builder
	rows := append([]BenchRow(nil), r.Rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		if rows[i].Level != rows[j].Level {
			return rows[i].Level < rows[j].Level
		}
		return rows[i].Backend < rows[j].Backend
	})
	for _, row := range rows {
		// Interpreter rows keep the pre-backend benchmark names so
		// benchstat can still diff against older BENCH baselines; codegen
		// rows get their own name segment.
		name := fmt.Sprintf("BenchmarkSim/%s/O%d", row.Workload, row.Level)
		if row.Backend == BackendCodegen {
			name += "/" + BackendCodegen
		}
		fmt.Fprintf(&b, "%s %d %.0f ns/op %.1f ns/event %.4f allocs/event %.0f sim-cycles/sec",
			name, row.Runs, row.NsPerRun, row.NsPerEvent, row.AllocsPerEv, row.SimCycSec)
		if row.Speedup > 0 {
			fmt.Fprintf(&b, " %.2f speedup", row.Speedup)
		}
		b.WriteString("\n")
	}
	for _, row := range r.Parallel {
		fmt.Fprintf(&b, "BenchmarkParallel/%s/W%d %d %.0f ns/op %.1f ns/event %.2f runs/sec %.2f speedup\n",
			row.Workload, row.Workers, row.Runs, 1e9/row.RunsPerSec, row.NsPerEvent, row.RunsPerSec, row.Speedup)
	}
	for _, row := range r.Partitioned {
		name := fmt.Sprintf("BenchmarkPartitioned/%s/P%d", row.Workload, row.Partitions)
		if row.Backend == BackendCodegen {
			name += "/" + BackendCodegen
		}
		fmt.Fprintf(&b, "%s %d %.0f ns/op %.1f ns/event %.4f allocs/event %.2f speedup\n",
			name, row.Runs, row.NsPerRun, row.NsPerEvent, row.AllocsPerEv, row.Speedup)
	}
	return b.String()
}

// FormatBench renders the human-readable table printed by `-exp bench`.
func FormatBench(r *BenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulator throughput baseline (%s, benchtime %s)\n", r.GoVersion, r.BenchTime)
	fmt.Fprintf(&b, "%-14s %-5s %-8s %12s %12s %10s %12s %14s %8s\n",
		"workload", "level", "backend", "cycles", "events", "ns/event", "allocs/ev", "sim-cyc/sec", "speedup")
	for _, row := range r.Rows {
		backend := row.Backend
		if backend == "" {
			backend = BackendInterp
		}
		fmt.Fprintf(&b, "%-14s O%-4d %-8s %12d %12d %10.1f %12.4f %14.0f",
			row.Workload, row.Level, backend, row.Cycles, row.Events,
			row.NsPerEvent, row.AllocsPerEv, row.SimCycSec)
		if row.Speedup > 0 {
			fmt.Fprintf(&b, " %7.2fx", row.Speedup)
		}
		b.WriteString("\n")
	}
	if len(r.Parallel) > 0 {
		b.WriteString("\n")
		b.WriteString(FormatParallel(r.CPUs, r.Parallel))
	}
	if len(r.Partitioned) > 0 {
		b.WriteString("\n")
		b.WriteString(FormatPartitioned(r.CPUs, r.Partitioned))
	}
	return b.String()
}

// FormatParallel renders the parallel scaling curve as a table.
func FormatParallel(cpus int, rows []ParallelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel batch throughput (%d CPUs, shared compiled structures, per-stream determinism verified)\n", cpus)
	fmt.Fprintf(&b, "%-14s %-8s %8s %12s %10s %10s\n",
		"workload", "workers", "runs", "runs/sec", "ns/event", "speedup")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-14s %-8d %8d %12.2f %10.1f %9.2fx\n",
			row.Workload, row.Workers, row.Runs, row.RunsPerSec, row.NsPerEvent, row.Speedup)
	}
	return b.String()
}
