package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"spatial/api"
)

// LoadRow is one point on cashd's offered-load curve: an open-loop
// generator fires requests at a fixed rate regardless of completions
// (the honest way to find a service's knee — a closed loop self-throttles
// and hides it), and records what came back.
type LoadRow struct {
	RateRPS  int `json:"rate_rps"`  // offered request rate
	Offered  int `json:"offered"`   // requests actually fired
	OK       int `json:"ok"`        // 200 responses
	Shed     int `json:"shed"`      // 429 responses (admission queue full)
	Errors   int `json:"errors"`    // transport failures and other statuses
	CacheHit int `json:"cache_hit"` // OK responses served from the compile cache

	P50NS int64 `json:"p50_ns"` // median OK latency
	P99NS int64 `json:"p99_ns"` // 99th percentile OK latency
}

// ShedRate is the fraction of offered requests shed.
func (r LoadRow) ShedRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Offered)
}

// LoadCurve drives a running cashd at each offered rate for dur and
// returns one row per rate. The request mix alternates over programs so
// the cache, not a single hot entry, is what is measured; every request
// body is identical per program (maximum cache effectiveness — the load
// curve measures the service, not the compiler).
func LoadCurve(baseURL string, rates []int, dur time.Duration, programs []api.RunRequest) ([]LoadRow, error) {
	if len(programs) == 0 {
		return nil, fmt.Errorf("load: no programs")
	}
	bodies := make([][]byte, len(programs))
	for i, p := range programs {
		b, err := json.Marshal(p)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	url := strings.TrimSuffix(baseURL, "/") + "/" + api.Version + "/run"
	client := &http.Client{}
	rows := make([]LoadRow, 0, len(rates))
	for _, rate := range rates {
		row, err := loadOne(client, url, rate, dur, bodies)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// loadOne runs a single open-loop point: a ticker fires at the offered
// interval, each tick launching one request on its own goroutine.
func loadOne(client *http.Client, url string, rate int, dur time.Duration, bodies [][]byte) (LoadRow, error) {
	if rate <= 0 {
		return LoadRow{}, fmt.Errorf("load: rate %d", rate)
	}
	row := LoadRow{RateRPS: rate}
	interval := time.Second / time.Duration(rate)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	fire := func(i int) {
		defer wg.Done()
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		elapsed := time.Since(start)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			row.Errors++
			return
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var rr api.RunResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				row.Errors++
				return
			}
			row.OK++
			if rr.CacheHit {
				row.CacheHit++
			}
			latencies = append(latencies, elapsed)
		case http.StatusTooManyRequests:
			io.Copy(io.Discard, resp.Body)
			row.Shed++
		default:
			io.Copy(io.Discard, resp.Body)
			row.Errors++
		}
	}

	ticker := time.NewTicker(interval)
	stop := time.After(dur)
	i := 0
loop:
	for {
		select {
		case <-ticker.C:
			wg.Add(1)
			row.Offered++
			go fire(i)
			i++
		case <-stop:
			break loop
		}
	}
	ticker.Stop()
	wg.Wait()

	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		row.P50NS = latencies[len(latencies)*50/100].Nanoseconds()
		p99 := len(latencies) * 99 / 100
		if p99 >= len(latencies) {
			p99 = len(latencies) - 1
		}
		row.P99NS = latencies[p99].Nanoseconds()
	}
	return row, nil
}

// FormatLoad renders the load curve as the experiments table.
func FormatLoad(rows []LoadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cashd offered-load curve (open loop)\n")
	fmt.Fprintf(&b, "  %8s %8s %8s %6s %6s %9s %10s %10s\n",
		"rate", "offered", "ok", "shed", "err", "hit-rate", "p50", "p99")
	for _, r := range rows {
		hitRate := 0.0
		if r.OK > 0 {
			hitRate = float64(r.CacheHit) / float64(r.OK)
		}
		fmt.Fprintf(&b, "  %7d/s %8d %8d %6d %6d %8.1f%% %10s %10s\n",
			r.RateRPS, r.Offered, r.OK, r.Shed, r.Errors, 100*hitRate,
			time.Duration(r.P50NS).Round(time.Microsecond),
			time.Duration(r.P99NS).Round(time.Microsecond))
	}
	return b.String()
}
