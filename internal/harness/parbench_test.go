package harness

import (
	"strings"
	"testing"
	"time"
)

func TestBenchParallel(t *testing.T) {
	workers := []int{1, 2}
	rows, err := BenchParallel([]string{"adpcm_e"}, workers, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workers) {
		t.Fatalf("rows = %d, want %d", len(rows), len(workers))
	}
	for i, row := range rows {
		if row.Workers != workers[i] {
			t.Errorf("row %d: workers = %d, want %d", i, row.Workers, workers[i])
		}
		// Every stream completes at least one run even if minTime expires.
		if row.Runs < row.Workers {
			t.Errorf("row %d: runs = %d < workers %d", i, row.Runs, row.Workers)
		}
		if row.RunsPerSec <= 0 || row.NsPerEvent <= 0 {
			t.Errorf("row %d: degenerate rates %+v", i, row)
		}
		if row.Value != rows[0].Value || row.Cycles != rows[0].Cycles || row.Events != rows[0].Events {
			t.Errorf("row %d: reference drifted across worker counts: %+v vs %+v", i, row, rows[0])
		}
	}
	if rows[0].Speedup != 1.0 {
		t.Errorf("1-worker speedup = %f, want 1.0", rows[0].Speedup)
	}

	rep := &BenchReport{GoVersion: "go-test", CPUs: 1, BenchTime: "30ms", Parallel: rows}
	out := FormatBench(rep)
	if !strings.Contains(out, "Parallel batch throughput") || !strings.Contains(out, "adpcm_e") {
		t.Errorf("FormatBench missing parallel section:\n%s", out)
	}
	if !strings.Contains(rep.Benchstat(), "BenchmarkParallel/adpcm_e/W2") {
		t.Errorf("Benchstat missing parallel lines:\n%s", rep.Benchstat())
	}
}

func TestBenchParallelUnknownWorkload(t *testing.T) {
	if _, err := BenchParallel([]string{"no_such"}, []int{1}, time.Millisecond); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}
