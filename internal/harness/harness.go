// Package harness drives the paper-reproduction experiments: it compiles
// every workload at the paper's optimization levels, runs the dataflow
// simulator over the paper's memory systems, and renders each table and
// figure of the evaluation (Tables 1–2, Figures 18–19, the Section 7.3
// ablations, and the spatial-vs-sequential headline comparison).
package harness

import (
	"fmt"

	"spatial/internal/build"
	"spatial/internal/dataflow"
	"spatial/internal/hw"
	"spatial/internal/interp"
	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
	"spatial/internal/workloads"
)

// compileWorkload builds one workload at a level (or explicit passes).
func compileWorkload(w *workloads.Workload, level opt.Level, passes *opt.Options) (*pegasus.Program, error) {
	prog, err := w.Parse()
	if err != nil {
		return nil, err
	}
	p, err := build.Compile(prog)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	o := opt.LevelOptions(level)
	if passes != nil {
		o = *passes
	}
	if err := opt.Optimize(p, o); err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	return p, nil
}

func staticMemOps(p *pegasus.Program) (loads, stores int) {
	for _, g := range p.Funcs {
		l, s := g.CountMemOps()
		loads += l
		stores += s
	}
	return
}

// --- Table 2 ---

// Table2Row mirrors the paper's per-benchmark statistics.
type Table2Row struct {
	Name     string
	Funcs    int
	Lines    int
	Coverage float64 // % of run time in the compiled functions (100 here)
	Pragmas  int
	// DynOps is the dynamic instruction count (extra context the paper
	// reports via SimpleScalar run time).
	DynOps int64
}

// Table2 computes the program statistics table.
func Table2(ws []*workloads.Workload) ([]Table2Row, error) {
	var rows []Table2Row
	for _, w := range ws {
		funcs, lines, pragmas := w.Stats()
		p, err := compileWorkload(w, opt.None, nil)
		if err != nil {
			return nil, err
		}
		it := interp.New(p, memsys.PerfectConfig())
		res, err := it.Run(w.Entry, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		rows = append(rows, Table2Row{
			Name: w.Name, Funcs: funcs, Lines: lines,
			Coverage: 100, Pragmas: pragmas, DynOps: res.Instrs,
		})
	}
	return rows, nil
}

// --- Figure 18 ---

// Fig18Row reports static and dynamic memory-operation reduction for one
// benchmark.
type Fig18Row struct {
	Name         string
	StaticLoads0 int
	StaticLoads1 int
	StaticStore0 int
	StaticStore1 int
	DynMem0      int64
	DynMem1      int64
}

// LoadsRemovedPct returns the static load reduction percentage.
func (r Fig18Row) LoadsRemovedPct() float64 { return pct(r.StaticLoads0, r.StaticLoads1) }

// StoresRemovedPct returns the static store reduction percentage.
func (r Fig18Row) StoresRemovedPct() float64 { return pct(r.StaticStore0, r.StaticStore1) }

// DynRemovedPct returns the dynamic memory-operation reduction.
func (r Fig18Row) DynRemovedPct() float64 {
	return pct64(r.DynMem0, r.DynMem1)
}

func pct(before, after int) float64 { return pct64(int64(before), int64(after)) }

func pct64(before, after int64) float64 {
	if before == 0 {
		return 0
	}
	return 100 * float64(before-after) / float64(before)
}

// Fig18 measures memory operations removed by the full optimizations.
func Fig18(ws []*workloads.Workload) ([]Fig18Row, error) {
	var rows []Fig18Row
	for _, w := range ws {
		p0, err := compileWorkload(w, opt.None, nil)
		if err != nil {
			return nil, err
		}
		p1, err := compileWorkload(w, opt.Full, nil)
		if err != nil {
			return nil, err
		}
		l0, s0 := staticMemOps(p0)
		l1, s1 := staticMemOps(p1)
		cfg := dataflow.DefaultConfig()
		r0, err := dataflow.Run(p0, w.Entry, nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s none: %w", w.Name, err)
		}
		r1, err := dataflow.Run(p1, w.Entry, nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s full: %w", w.Name, err)
		}
		if r0.Value != r1.Value {
			return nil, fmt.Errorf("%s: optimization changed the checksum (%d vs %d)", w.Name, r0.Value, r1.Value)
		}
		rows = append(rows, Fig18Row{
			Name:         w.Name,
			StaticLoads0: l0, StaticLoads1: l1,
			StaticStore0: s0, StaticStore1: s1,
			DynMem0: r0.Stats.DynLoads + r0.Stats.DynStores,
			DynMem1: r1.Stats.DynLoads + r1.Stats.DynStores,
		})
	}
	return rows, nil
}

// --- Figure 19 ---

// MemSystems returns the memory configurations of the Figure 19 sweep:
// perfect memory plus realistic systems at increasing bandwidth.
func MemSystems() []memsys.Config {
	return []memsys.Config{
		memsys.PerfectConfig(),
		memsys.PaperConfig(1),
		memsys.PaperConfig(2),
		memsys.PaperConfig(4),
	}
}

// Fig19Row is one (benchmark, level, memory system) cycle measurement.
type Fig19Row struct {
	Name    string
	Level   opt.Level
	Mem     string
	Cycles  int64
	Speedup float64 // vs unoptimized on the same memory system
}

// Fig19 sweeps optimization levels across memory systems.
func Fig19(ws []*workloads.Workload, levels []opt.Level, mems []memsys.Config) ([]Fig19Row, error) {
	var rows []Fig19Row
	for _, w := range ws {
		baseline := map[string]int64{}
		for _, level := range levels {
			p, err := compileWorkload(w, level, nil)
			if err != nil {
				return nil, err
			}
			for _, mem := range mems {
				cfg := dataflow.DefaultConfig()
				cfg.Mem = mem
				res, err := dataflow.Run(p, w.Entry, nil, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%v/%v: %w", w.Name, level, mem, err)
				}
				key := mem.String()
				if level == opt.None {
					baseline[key] = res.Stats.Cycles
				}
				sp := 0.0
				if b := baseline[key]; b > 0 {
					sp = float64(b) / float64(res.Stats.Cycles)
				}
				rows = append(rows, Fig19Row{
					Name: w.Name, Level: level, Mem: key,
					Cycles: res.Stats.Cycles, Speedup: sp,
				})
			}
		}
	}
	return rows, nil
}

// --- Section 7.3 ablations ---

// AblationRow measures the effect of disabling one pass from Full.
type AblationRow struct {
	Name    string
	Without string
	Cycles  int64
	FullCyc int64
	// SlowdownPct > 0 means the disabled pass was profitable.
	SlowdownPct float64
}

// ablationConfigs lists the per-pass knockouts of the paper's study.
func ablationConfigs() []struct {
	name string
	tune func(*opt.Options)
} {
	return []struct {
		name string
		tune func(*opt.Options)
	}{
		{"readonly(6.1)", func(o *opt.Options) { o.ReadOnlyLoops = false }},
		{"monotone(6.2)", func(o *opt.Options) { o.MonotoneLoops = false }},
		{"decouple(6.3)", func(o *opt.Options) { o.LoopDecouple = false }},
		{"tokenremove(4.3)", func(o *opt.Options) { o.TokenRemoval = false }},
		{"redundancy(5.x)", func(o *opt.Options) {
			o.MemMerge = false
			o.StoreBeforeStore = false
			o.LoadAfterStore = false
			o.LICM = false
		}},
	}
}

// Ablation disables one optimization at a time from Full and reports the
// cycle impact on the given workloads.
func Ablation(ws []*workloads.Workload) ([]AblationRow, error) {
	var rows []AblationRow
	cfg := dataflow.DefaultConfig()
	for _, w := range ws {
		pFull, err := compileWorkload(w, opt.Full, nil)
		if err != nil {
			return nil, err
		}
		full, err := dataflow.Run(pFull, w.Entry, nil, cfg)
		if err != nil {
			return nil, err
		}
		for _, ab := range ablationConfigs() {
			o := opt.LevelOptions(opt.Full)
			ab.tune(&o)
			p, err := compileWorkload(w, opt.Full, &o)
			if err != nil {
				return nil, err
			}
			res, err := dataflow.Run(p, w.Entry, nil, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s without %s: %w", w.Name, ab.name, err)
			}
			rows = append(rows, AblationRow{
				Name:    w.Name,
				Without: ab.name,
				Cycles:  res.Stats.Cycles,
				FullCyc: full.Stats.Cycles,
				SlowdownPct: 100 * (float64(res.Stats.Cycles) -
					float64(full.Stats.Cycles)) / float64(full.Stats.Cycles),
			})
		}
	}
	return rows, nil
}

// DecouplingApplicability counts token generators inserted across the
// suite (the paper: applicable in only 28 loops over all programs).
func DecouplingApplicability(ws []*workloads.Workload) (int, error) {
	count := 0
	for _, w := range ws {
		p, err := compileWorkload(w, opt.Full, nil)
		if err != nil {
			return 0, err
		}
		for _, g := range p.Funcs {
			for _, n := range g.Nodes {
				if !n.Dead && n.Kind == pegasus.KTokenGen {
					count++
				}
			}
		}
	}
	return count, nil
}

// --- ASH hardware cost (ASPLOS'04 resource evaluation) ---

// AreaRow records a workload's estimated circuit resources.
type AreaRow struct {
	Name     string
	AreaNone int64
	AreaFull int64
	MemPorts int
	MaxDepth int
}

// Area estimates each workload's synthesized-circuit cost at None and
// Full optimization (the ASPLOS'04 ASH evaluation's area angle).
func Area(ws []*workloads.Workload) ([]AreaRow, error) {
	var rows []AreaRow
	for _, w := range ws {
		p0, err := compileWorkload(w, opt.None, nil)
		if err != nil {
			return nil, err
		}
		p1, err := compileWorkload(w, opt.Full, nil)
		if err != nil {
			return nil, err
		}
		row := AreaRow{Name: w.Name}
		for _, r := range hw.EstimateProgram(p0) {
			row.AreaNone += r.Area
		}
		for _, r := range hw.EstimateProgram(p1) {
			row.AreaFull += r.Area
			row.MemPorts += r.MemPorts
			if r.MaxDepth > row.MaxDepth {
				row.MaxDepth = r.MaxDepth
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Section 7.2: IR size stability ---

// IRSizeRow records the live node count of a workload's graphs under one
// pass configuration. The paper's static measurement: "independent of
// which memory optimizations were turned on or off, the size of the IR
// never varied by more than 3%".
type IRSizeRow struct {
	Name   string
	Config string
	Nodes  int
}

// IRSize measures Pegasus graph sizes across pass configurations: the
// memory optimizations individually toggled off from Full.
func IRSize(ws []*workloads.Workload) ([]IRSizeRow, error) {
	configs := []struct {
		name string
		opts opt.Options
	}{
		{"full", opt.LevelOptions(opt.Full)},
		{"no-tokenremove", knockout(func(o *opt.Options) { o.TokenRemoval = false })},
		{"no-redundancy", knockout(func(o *opt.Options) {
			o.MemMerge = false
			o.StoreBeforeStore = false
			o.LoadAfterStore = false
		})},
		{"no-pipelining", knockout(func(o *opt.Options) {
			o.ReadOnlyLoops = false
			o.MonotoneLoops = false
			o.LoopDecouple = false
		})},
		{"no-licm", knockout(func(o *opt.Options) { o.LICM = false })},
	}
	var rows []IRSizeRow
	for _, w := range ws {
		for _, c := range configs {
			o := c.opts
			p, err := compileWorkload(w, opt.Full, &o)
			if err != nil {
				return nil, err
			}
			nodes := 0
			for _, g := range p.Funcs {
				nodes += g.NumLive()
			}
			rows = append(rows, IRSizeRow{Name: w.Name, Config: c.name, Nodes: nodes})
		}
	}
	return rows, nil
}

func knockout(tune func(*opt.Options)) opt.Options {
	o := opt.LevelOptions(opt.Full)
	tune(&o)
	return o
}

// IRSizeSpread returns, per workload, the maximum relative deviation of
// IR size across configurations (the paper's ≤3% claim).
func IRSizeSpread(rows []IRSizeRow) map[string]float64 {
	minMax := map[string][2]int{}
	for _, r := range rows {
		mm, ok := minMax[r.Name]
		if !ok {
			mm = [2]int{r.Nodes, r.Nodes}
		}
		if r.Nodes < mm[0] {
			mm[0] = r.Nodes
		}
		if r.Nodes > mm[1] {
			mm[1] = r.Nodes
		}
		minMax[r.Name] = mm
	}
	out := map[string]float64{}
	for name, mm := range minMax {
		out[name] = 100 * float64(mm[1]-mm[0]) / float64(mm[1])
	}
	return out
}

// --- Spatial vs sequential (ASPLOS'04 headline) ---

// SpatialRow compares dataflow execution against the in-order baseline.
type SpatialRow struct {
	Name      string
	Spatial   int64
	Seq       int64
	Speedup   float64
	DynLoads  int64
	DynStores int64
}

// SpatialVsSeq runs each workload on both execution models.
func SpatialVsSeq(ws []*workloads.Workload, level opt.Level) ([]SpatialRow, error) {
	var rows []SpatialRow
	for _, w := range ws {
		p, err := compileWorkload(w, level, nil)
		if err != nil {
			return nil, err
		}
		df, err := dataflow.Run(p, w.Entry, nil, dataflow.DefaultConfig())
		if err != nil {
			return nil, err
		}
		it := interp.New(p, memsys.PerfectConfig())
		seq, err := it.Run(w.Entry, nil)
		if err != nil {
			return nil, err
		}
		if df.Value != seq.Value {
			return nil, fmt.Errorf("%s: spatial/sequential results differ (%d vs %d)", w.Name, df.Value, seq.Value)
		}
		rows = append(rows, SpatialRow{
			Name: w.Name, Spatial: df.Stats.Cycles, Seq: seq.SeqCycles,
			Speedup:  float64(seq.SeqCycles) / float64(df.Stats.Cycles),
			DynLoads: df.Stats.DynLoads, DynStores: df.Stats.DynStores,
		})
	}
	return rows, nil
}
