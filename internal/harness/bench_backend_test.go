package harness

import (
	"strings"
	"testing"
	"time"
)

// TestBenchPairedBackends drives one workload through the default
// dual-backend sweep: rows must come in (interp, codegen) pairs per
// level, each codegen row must carry a same-run speedup, and Bench's
// internal cross-backend reference check must have held (it returns an
// error otherwise). Timings are noise at this benchtime — shape and
// invariants are the subject, not rates.
func TestBenchPairedBackends(t *testing.T) {
	rep, err := Bench([]string{"adpcm_e"}, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(BenchLevels); len(rep.Rows) != want {
		t.Fatalf("rows = %d, want %d (one pair per level)", len(rep.Rows), want)
	}
	for i := 0; i < len(rep.Rows); i += 2 {
		ri, rc := rep.Rows[i], rep.Rows[i+1]
		if ri.Backend != BackendInterp || rc.Backend != BackendCodegen {
			t.Fatalf("pair %d: backends (%q, %q), want (%q, %q)", i/2, ri.Backend, rc.Backend, BackendInterp, BackendCodegen)
		}
		if ri.Level != rc.Level || ri.Workload != rc.Workload {
			t.Errorf("pair %d: mismatched pairing: %+v vs %+v", i/2, ri, rc)
		}
		if ri.Value != rc.Value || ri.Cycles != rc.Cycles || ri.Events != rc.Events {
			t.Errorf("pair %d: semantic divergence across backends: %+v vs %+v", i/2, ri, rc)
		}
		if rc.Speedup <= 0 {
			t.Errorf("pair %d: codegen row missing speedup: %+v", i/2, rc)
		}
		if ri.Speedup != 0 {
			t.Errorf("pair %d: interp row carries a speedup: %+v", i/2, ri)
		}
	}

	out := FormatBench(rep)
	if !strings.Contains(out, BackendCodegen) || !strings.Contains(out, "speedup") {
		t.Errorf("FormatBench missing backend/speedup columns:\n%s", out)
	}
	bs := rep.Benchstat()
	if !strings.Contains(bs, "BenchmarkSim/adpcm_e/O3/codegen") {
		t.Errorf("Benchstat missing codegen lines:\n%s", bs)
	}
	if !strings.Contains(bs, "BenchmarkSim/adpcm_e/O3 ") {
		t.Errorf("Benchstat renamed the interp lines (breaks old-baseline diffs):\n%s", bs)
	}
}

// TestBenchSingleBackend pins the -backend interp|compiled paths: a
// single-engine sweep yields one row per level and no speedup column.
func TestBenchSingleBackend(t *testing.T) {
	for _, backend := range []string{BackendInterp, BackendCodegen} {
		rep, err := Bench([]string{"adpcm_e"}, time.Millisecond, []string{backend})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Rows) != len(BenchLevels) {
			t.Fatalf("[%s] rows = %d, want %d", backend, len(rep.Rows), len(BenchLevels))
		}
		for _, row := range rep.Rows {
			if row.Backend != backend {
				t.Errorf("[%s] row backend = %q", backend, row.Backend)
			}
			if row.Speedup != 0 {
				t.Errorf("[%s] single-backend row carries a speedup: %+v", backend, row)
			}
		}
	}
	if _, err := Bench([]string{"adpcm_e"}, time.Millisecond, []string{"jit"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
