package harness

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestBenchPartitioned(t *testing.T) {
	parts := []int{1, 2}
	rows, err := BenchPartitioned([]string{"adpcm_e"}, parts, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(parts) * len(BenchBackends); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for i, row := range rows {
		backend := BenchBackends[i/len(parts)]
		if row.Backend != backend {
			t.Errorf("row %d: backend = %q, want %q", i, row.Backend, backend)
		}
		if row.Partitions != parts[i%len(parts)] {
			t.Errorf("row %d: partitions = %d, want %d", i, row.Partitions, parts[i%len(parts)])
		}
		if row.Runs < 2 || row.NsPerEvent <= 0 {
			t.Errorf("row %d: degenerate measurement %+v", i, row)
		}
		if row.Value != rows[0].Value || row.Cycles != rows[0].Cycles || row.Events != rows[0].Events {
			t.Errorf("row %d: reference drifted across domain counts: %+v vs %+v", i, row, rows[0])
		}
		if row.Partitions == 1 {
			if row.Speedup != 1.0 {
				t.Errorf("row %d: sequential-row speedup = %f, want 1.0", i, row.Speedup)
			}
			if row.Degenerate {
				t.Errorf("row %d: sequential row flagged degenerate; only multi-domain rows qualify", i)
			}
		} else if onecpu := runtime.GOMAXPROCS(0) < 2; row.Degenerate != onecpu {
			t.Errorf("row %d: degenerate = %v with GOMAXPROCS %d", i, row.Degenerate, runtime.GOMAXPROCS(0))
		}
	}

	rep := &BenchReport{GoVersion: "go-test", CPUs: 1, BenchTime: "30ms", Partitioned: rows}
	out := FormatBench(rep)
	if !strings.Contains(out, "Partitioned single-run throughput") || !strings.Contains(out, "adpcm_e") {
		t.Errorf("FormatBench missing partitioned section:\n%s", out)
	}
	stat := rep.Benchstat()
	if !strings.Contains(stat, "BenchmarkPartitioned/adpcm_e/P2 ") {
		t.Errorf("Benchstat missing interpreter partitioned lines:\n%s", stat)
	}
	if !strings.Contains(stat, "BenchmarkPartitioned/adpcm_e/P2/"+BackendCodegen+" ") {
		t.Errorf("Benchstat missing codegen partitioned lines:\n%s", stat)
	}
}

func TestBenchPartitionedUnknownWorkload(t *testing.T) {
	if _, err := BenchPartitioned([]string{"no_such"}, []int{1}, time.Millisecond); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}
