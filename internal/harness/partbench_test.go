package harness

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestBenchPartitioned(t *testing.T) {
	parts := []int{1, 2}
	rows, err := BenchPartitioned([]string{"adpcm_e"}, parts, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(parts) {
		t.Fatalf("rows = %d, want %d", len(rows), len(parts))
	}
	for i, row := range rows {
		if row.Partitions != parts[i] {
			t.Errorf("row %d: partitions = %d, want %d", i, row.Partitions, parts[i])
		}
		if row.Runs < 2 || row.NsPerEvent <= 0 {
			t.Errorf("row %d: degenerate measurement %+v", i, row)
		}
		if row.Value != rows[0].Value || row.Cycles != rows[0].Cycles || row.Events != rows[0].Events {
			t.Errorf("row %d: reference drifted across domain counts: %+v vs %+v", i, row, rows[0])
		}
	}
	if rows[0].Speedup != 1.0 {
		t.Errorf("sequential-row speedup = %f, want 1.0", rows[0].Speedup)
	}
	if rows[0].Degenerate {
		t.Error("sequential row flagged degenerate; only multi-domain rows qualify")
	}
	if onecpu := runtime.GOMAXPROCS(0) < 2; rows[1].Degenerate != onecpu {
		t.Errorf("2-domain row degenerate = %v with GOMAXPROCS %d", rows[1].Degenerate, runtime.GOMAXPROCS(0))
	}

	rep := &BenchReport{GoVersion: "go-test", CPUs: 1, BenchTime: "30ms", Partitioned: rows}
	out := FormatBench(rep)
	if !strings.Contains(out, "Partitioned single-run throughput") || !strings.Contains(out, "adpcm_e") {
		t.Errorf("FormatBench missing partitioned section:\n%s", out)
	}
	if !strings.Contains(rep.Benchstat(), "BenchmarkPartitioned/adpcm_e/P2") {
		t.Errorf("Benchstat missing partitioned lines:\n%s", rep.Benchstat())
	}
}

func TestBenchPartitionedUnknownWorkload(t *testing.T) {
	if _, err := BenchPartitioned([]string{"no_such"}, []int{1}, time.Millisecond); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}
