package harness

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"spatial/internal/opt"
)

// --- Table 1: implementation size per optimization ---

// Table1Row is one optimization's implementation size.
type Table1Row struct {
	Optimization string
	LOC          int
}

// table1Map assigns the functions implementing each optimization to the
// paper's Table 1 rows.
var table1Map = []struct {
	label string
	file  string
	funcs []string // empty = whole file
}{
	{"Useless dependence removal", "tokens.go", []string{"tokenRemoval", "addTokenAlongside"}},
	{"Immutable loads", "../build/eval.go", []string{"load"}},
	{"Dead-code elimination (incl. memory op)", "", []string{}}, // filled below
	{"Load-after-load and store-after-store removal", "memopt.go", []string{"memMerge", "mergeLoads", "mergeStores", "sameTokenInputs", "sameAddress"}},
	{"Redundant load and store removal (PRE)", "memopt.go", []string{"loadAfterStore", "storeBeforeStore", "replaceValueUsesExcept"}},
	{"Transitive reduction of token edges", "tokens.go", []string{"transitiveReduction"}},
	{"Loop-invariant code discovery (scalar and memory)", "licm.go", nil},
	{"Loop decoupling+monotone loops", "pipeline.go", nil},
}

// Table1 counts the Go source lines implementing each optimization
// described in the paper (the analogue of the paper's C++ LOC table). It
// parses this repository's own sources; dir may be empty to locate them
// via the build path.
func Table1(dir string) ([]Table1Row, error) {
	if dir == "" {
		_, self, _, ok := runtime.Caller(0)
		if !ok {
			return nil, fmt.Errorf("harness: cannot locate source directory")
		}
		dir = filepath.Join(filepath.Dir(self), "..", "opt")
	}
	rows := []Table1Row{}
	for _, entry := range table1Map {
		var loc int
		var err error
		switch entry.label {
		case "Dead-code elimination (incl. memory op)":
			a, err1 := funcLOC(filepath.Join(dir, "scalar.go"), []string{"deadCode", "spliceTokens"})
			b, err2 := funcLOC(filepath.Join(dir, "tokens.go"), []string{"deadMemOps"})
			if err1 != nil {
				err = err1
			} else if err2 != nil {
				err = err2
			}
			loc = a + b
		default:
			loc, err = funcLOC(filepath.Join(dir, entry.file), entry.funcs)
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{Optimization: entry.label, LOC: loc})
	}
	return rows, nil
}

// funcLOC counts source lines of the named functions in a Go file (all
// declarations when names is nil).
func funcLOC(path string, names []string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return 0, fmt.Errorf("harness: %w", err)
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	loc := 0
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if names != nil && !want[fd.Name.Name] {
			continue
		}
		start := fset.Position(fd.Pos()).Line
		end := fset.Position(fd.End()).Line
		loc += end - start + 1
	}
	return loc, nil
}

// --- text rendering ---

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Go LOC implementing each optimization\n")
	fmt.Fprintf(&sb, "%-52s %6s\n", "Optimization", "LOC")
	total := 0
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-52s %6d\n", r.Optimization, r.LOC)
		total += r.LOC
	}
	fmt.Fprintf(&sb, "%-52s %6d\n", "Total", total)
	return sb.String()
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: compiled program statistics\n")
	fmt.Fprintf(&sb, "%-14s %6s %6s %6s %8s %10s\n", "Benchmark", "Funcs", "Lines", "Cover%", "Pragmas", "DynOps")
	tf, tl, tp := 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %6d %6d %6.0f %8d %10d\n",
			r.Name, r.Funcs, r.Lines, r.Coverage, r.Pragmas, r.DynOps)
		tf += r.Funcs
		tl += r.Lines
		tp += r.Pragmas
	}
	fmt.Fprintf(&sb, "%-14s %6d %6d %6s %8d\n", "Total", tf, tl, "", tp)
	return sb.String()
}

// FormatFig18 renders the Figure 18 measurements.
func FormatFig18(rows []Fig18Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 18: memory operations removed by optimization (none → full)\n")
	fmt.Fprintf(&sb, "%-14s %16s %16s %20s\n", "Benchmark", "static loads", "static stores", "dynamic mem ops")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %5d→%-4d %4.1f%% %5d→%-4d %4.1f%% %8d→%-8d %5.1f%%\n",
			r.Name,
			r.StaticLoads0, r.StaticLoads1, r.LoadsRemovedPct(),
			r.StaticStore0, r.StaticStore1, r.StoresRemovedPct(),
			r.DynMem0, r.DynMem1, r.DynRemovedPct())
	}
	return sb.String()
}

// FormatFig19 renders the Figure 19 sweep grouped by benchmark.
func FormatFig19(rows []Fig19Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 19: cycles and speedup by optimization level and memory system\n")
	byName := map[string][]Fig19Row{}
	var names []string
	for _, r := range rows {
		if len(byName[r.Name]) == 0 {
			names = append(names, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r)
	}
	for _, name := range names {
		fmt.Fprintf(&sb, "%s:\n", name)
		fmt.Fprintf(&sb, "  %-8s %-20s %12s %9s\n", "level", "memory", "cycles", "speedup")
		for _, r := range byName[name] {
			fmt.Fprintf(&sb, "  %-8s %-20s %12d %8.2fx\n", r.Level, r.Mem, r.Cycles, r.Speedup)
		}
	}
	return sb.String()
}

// FormatArea renders the circuit-resource table.
func FormatArea(rows []AreaRow) string {
	var sb strings.Builder
	sb.WriteString("Hardware cost estimate (gate equivalents)\n")
	fmt.Fprintf(&sb, "%-14s %12s %12s %9s %8s %6s\n", "Benchmark", "area(none)", "area(full)", "saved", "memports", "depth")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12d %12d %8.1f%% %8d %6d\n",
			r.Name, r.AreaNone, r.AreaFull,
			100*float64(r.AreaNone-r.AreaFull)/float64(r.AreaNone),
			r.MemPorts, r.MaxDepth)
	}
	return sb.String()
}

// FormatIRSize renders the Section 7.2 IR-size stability measurement.
func FormatIRSize(rows []IRSizeRow) string {
	var sb strings.Builder
	sb.WriteString("Section 7.2: IR size across optimization configurations\n")
	fmt.Fprintf(&sb, "%-14s %-16s %8s\n", "Benchmark", "config", "nodes")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %-16s %8d\n", r.Name, r.Config, r.Nodes)
	}
	spread := IRSizeSpread(rows)
	var names []string
	for n := range spread {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "%-14s max spread %.1f%%\n", n, spread[n])
	}
	return sb.String()
}

// FormatAblation renders the knockout study, sorted by impact.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: cycles when one optimization is disabled from full\n")
	fmt.Fprintf(&sb, "%-14s %-18s %12s %12s %10s\n", "Benchmark", "without", "cycles", "full", "slowdown")
	sorted := append([]AblationRow(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].SlowdownPct > sorted[j].SlowdownPct })
	for _, r := range sorted {
		fmt.Fprintf(&sb, "%-14s %-18s %12d %12d %9.1f%%\n",
			r.Name, r.Without, r.Cycles, r.FullCyc, r.SlowdownPct)
	}
	return sb.String()
}

// FormatSpatial renders the spatial-vs-sequential comparison.
func FormatSpatial(rows []SpatialRow, level opt.Level) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Spatial computation vs sequential execution (level %v)\n", level)
	fmt.Fprintf(&sb, "%-14s %12s %12s %9s %9s %9s\n", "Benchmark", "spatial", "sequential", "speedup", "dynLoads", "dynStores")
	var geo float64 = 1
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12d %12d %8.2fx %9d %9d\n",
			r.Name, r.Spatial, r.Seq, r.Speedup, r.DynLoads, r.DynStores)
		geo *= r.Speedup
	}
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "%-14s %35.2fx (geometric mean)\n", "",
			math.Pow(geo, 1/float64(len(rows))))
	}
	return sb.String()
}
