package harness

import (
	"strings"
	"testing"

	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

// small returns a fast subset of workloads for test runs.
func small() []*workloads.Workload {
	return []*workloads.Workload{
		workloads.ByName("adpcm_e"),
		workloads.ByName("epic_e"),
		workloads.ByName("g721_e"),
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1("")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.LOC <= 0 {
			t.Errorf("%s: LOC = %d", r.Optimization, r.LOC)
		}
		if r.LOC > 400 {
			t.Errorf("%s: LOC = %d — the paper's point is compactness", r.Optimization, r.LOC)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Loop decoupling") {
		t.Error("missing decoupling row")
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Funcs < 2 || r.Lines < 20 || r.DynOps <= 0 {
			t.Errorf("%s: implausible stats %+v", r.Name, r)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "adpcm_e") {
		t.Error("missing adpcm_e row")
	}
}

func TestFig18(t *testing.T) {
	rows, err := Fig18(small())
	if err != nil {
		t.Fatal(err)
	}
	anyStaticRemoved := false
	for _, r := range rows {
		if r.StaticLoads1 > r.StaticLoads0 || r.StaticStore1 > r.StaticStore0 {
			t.Errorf("%s: optimization added static ops: %+v", r.Name, r)
		}
		if r.LoadsRemovedPct() > 0 || r.StoresRemovedPct() > 0 {
			anyStaticRemoved = true
		}
		if r.DynMem1 > r.DynMem0 {
			t.Errorf("%s: optimization added dynamic ops: %+v", r.Name, r)
		}
	}
	if !anyStaticRemoved {
		t.Error("no static memory operations removed anywhere")
	}
	_ = FormatFig18(rows)
}

func TestFig19SubsetShape(t *testing.T) {
	ws := small()[:1]
	rows, err := Fig19(ws, []opt.Level{opt.None, opt.Medium, opt.Full},
		[]memsys.Config{memsys.PerfectConfig(), memsys.PaperConfig(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// Optimization must not slow programs down under perfect memory.
	for _, r := range rows {
		if r.Level != opt.None && r.Speedup < 0.99 {
			t.Errorf("%s at %v on %s: speedup %.2f < 1", r.Name, r.Level, r.Mem, r.Speedup)
		}
	}
	_ = FormatFig19(rows)
}

func TestAblationRuns(t *testing.T) {
	rows, err := Ablation(small()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ablationConfigs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	_ = FormatAblation(rows)
}

func TestDecouplingApplicability(t *testing.T) {
	n, err := DecouplingApplicability(workloads.All())
	if err != nil {
		t.Fatal(err)
	}
	// The paper found decoupling applicable in only a handful of loops;
	// the suite should have at least one and not an implausible number.
	if n < 1 || n > 40 {
		t.Errorf("token generators inserted = %d, want a small positive count", n)
	}
}

func TestIRSizeStability(t *testing.T) {
	rows, err := IRSize(small())
	if err != nil {
		t.Fatal(err)
	}
	spread := IRSizeSpread(rows)
	for name, pct := range spread {
		// The paper's claim: IR size varies by at most a few percent as
		// memory optimizations toggle. Allow a slightly wider band since
		// our graphs are small.
		if pct > 15 {
			t.Errorf("%s: IR size varies %.1f%% across configurations", name, pct)
		}
	}
}

func TestSpatialVsSeq(t *testing.T) {
	rows, err := SpatialVsSeq(small(), opt.Medium)
	if err != nil {
		t.Fatal(err)
	}
	faster := 0
	for _, r := range rows {
		if r.Speedup > 1 {
			faster++
		}
	}
	if faster == 0 {
		t.Error("spatial execution never beat the sequential model")
	}
	_ = FormatSpatial(rows, opt.Medium)
}
