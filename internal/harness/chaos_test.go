package harness

import (
	"testing"
	"time"
)

// TestChaosBatterySmall runs a reduced battery — three peers, a kill
// schedule and a corruption schedule — and asserts the resilience
// contract end to end: every request succeeds bit-identically or fails
// typed, no hangs, no silent wrong answers, and the kill schedule
// actually fired.
func TestChaosBatterySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos battery spins a cluster; skipped in -short")
	}
	opts := ChaosOptions{
		Peers:       3,
		Requests:    24,
		Concurrency: 2,
		Deadline:    10 * time.Second,
		Seed:        1,
		Schedules:   []string{"peer-kill", "corrupt"},
	}
	rows, err := ChaosBattery(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if err := ChaosGate(rows); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OK+r.Typed != r.Requests {
			t.Errorf("%s: ok %d + typed %d != requests %d", r.Schedule, r.OK, r.Typed, r.Requests)
		}
		if r.AvailabilityPct <= 0 {
			t.Errorf("%s: availability %.1f%%, want > 0", r.Schedule, r.AvailabilityPct)
		}
	}
	// The kill schedule must actually have refused arrivals, or the test
	// proves nothing.
	if rows[0].Schedule != "peer-kill" || rows[0].Triggered == 0 {
		t.Errorf("peer-kill schedule triggered %d refusals, want > 0", rows[0].Triggered)
	}
	// With failover walking the ring, a single dead peer should not
	// cost any requests at all.
	if rows[0].OK != rows[0].Requests {
		t.Errorf("peer-kill: %d/%d succeeded; failover should mask a single dead peer",
			rows[0].OK, rows[0].Requests)
	}
}
