package codegen_test

// Spill-heap stress: the VM's calendar ring only spans ringLen (512)
// cycles, so injected delays larger than that force deliveries off the
// ring into the (time, seq) spill heap — in the partitioned VM, off each
// domain worker's ring into its per-domain heap. These schedules are the
// asynchrony-heavy worst case for both queue designs, and both must
// still replay the interpreter bit for bit.

import (
	"context"
	"testing"

	"spatial/internal/codegen"
	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/faultsim"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

func TestSpillHeapStress(t *testing.T) {
	w := workloads.ByName("adpcm_e")
	cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	seqMod := codegen.Compile(cp.Program)
	partMod := compilePartMod(t, cp, 3, 0)
	cfg := dataflow.DefaultConfig()
	cfg.MaxCycles = 1 << 24 // delays of thousands of cycles stretch the run
	mk := []struct {
		name string
		inj  func() *faultsim.Injector
	}{
		// Every ~10th delivery is pushed 0–4095 cycles out: far past the
		// 512-cycle ring horizon, so most delayed events take the spill
		// path instead of a bucket.
		{"huge-jitter", func() *faultsim.Injector { return faultsim.NewJitter(7, 0.1, 4096) }},
		// Repeatedly stretch memory completions by 2000 cycles — the
		// realistic source of far-future events (slow memory), likewise
		// past the ring horizon.
		{"mem-stretch-2000", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.MemStretch, Node: -1, Edge: -1, Nth: 4, Cycles: 2000},
				{Op: faultsim.MemStretch, Node: -1, Edge: -1, Nth: 9, Cycles: 3000}}})
		}},
		// Jitter with delays straddling the horizon: some events land at
		// the ring's edge, some just past it, exercising the boundary.
		{"horizon-jitter", func() *faultsim.Injector { return faultsim.NewJitter(99, 0.2, 600) }},
	}
	for _, fr := range mk {
		injI := fr.inj()
		want, errI := dataflow.RunFaulted(context.Background(), cp.Program, w.Entry, nil, cfg, injI)
		if errI != nil {
			t.Fatalf("%s: interpreter aborted: %v", fr.name, errI)
		}
		for _, be := range []struct {
			name string
			mod  *codegen.Module
		}{{"sequential", seqMod}, {"partitioned", partMod}} {
			inj := fr.inj()
			got, err := be.mod.RunFaulted(context.Background(), w.Entry, nil, cfg, inj)
			if err != nil {
				t.Errorf("%s/%s: aborted: %v", fr.name, be.name, err)
				continue
			}
			if *got != *want {
				t.Errorf("%s/%s: result diverged:\n got %+v\nwant %+v", fr.name, be.name, got, want)
			}
			if len(injI.Triggered()) != len(inj.Triggered()) {
				t.Errorf("%s/%s: triggered-fault logs diverged: interp %d, vm %d",
					fr.name, be.name, len(injI.Triggered()), len(inj.Triggered()))
			}
		}
	}
}
