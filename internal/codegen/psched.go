package codegen

// This file is the compiled backend's partitioned event scheduler: the
// interpreter's partSched protocol (dataflow/psched.go) mapped onto the
// VM's flat event structs. The run loop stays a single sequencer that
// processes every event in the exact global (time, seq) order — results,
// diagnoses, and event streams are bit-identical to the sequential VM
// and the interpreter by construction — while per-domain worker
// goroutines own insert and drain for events at or past the window
// fence.
//
// Differences from the sequential VM's queue (vm.go):
//
//   - Every push carries its true global sequence number (the vm's seq
//     counter, assigned at push exactly like the interpreter), so evHook
//     runs need no spillAll mode here.
//   - Each domain worker owns a private calendar ring + (time, seq)
//     spill heap (pwq) instead of the interpreter worker's 4-ary heap:
//     the same near-future/far-future split the sequential VM uses,
//     applied per domain.
//
// Ordering invariants are the interpreter partSched's, restated for the
// worker-side pwq: a domain receives its events in global seq order
// (pending batches are appended in push order and sent in order), and
// within one drain the worker interleaves spill and ring events so that
// for any time t all spill events at t precede all ring events at t —
// an event spills only when t >= lo+pwRingLen at insert, and lo is
// monotone, so the spill insert happened in an earlier batch (smaller
// seqs) than any ring insert at the same time. Ring bucket FIFO order
// is seq order for the same reason as the sequential VM. The sequencer
// then k-way merges the per-domain responses by (time, seq).
//
// Unlike the interpreter's scheduler, a pSched is retained inside the
// pooled vm across runs: channels and buffers are created once, workers
// are respawned per run (started by start, terminated by a sentinel
// message in stop), and stop scrubs every retained buffer of stale
// activation pointers so a pooled vm keeps nothing alive.

import (
	"math"
	"sync"
)

// pSched is the sequencer-side state: the central bucket ring spanning
// [cur, fence) (at most 2 windows, sized 4 so distinct live times map to
// distinct buckets), per-domain pending batches, and the merge scratch.
type pSched struct {
	nDoms  int
	window int64
	mask   int64 // ring size - 1 (ring size = 4 * window, a power of two)

	buckets   []pBucket
	ringCount int // events currently in ring buckets
	total     int // all pending events: ring + pending batches + domains

	// cur is the next time to consume; covered is the exclusive bound of
	// merged (consumable) time; fence is the push-routing boundary and
	// the exclusive bound of the outstanding drain request [covered,
	// fence). Invariants outside advance(): cur <= covered <= fence.
	cur, covered, fence int64

	// pending[d] buffers far pushes for domain d until the next flush.
	pending [][]sev
	doms    []pDomain

	// resp/respPos are merge scratch (per-domain response cursors).
	resp    [][]sev
	respPos []int

	// batchFree/respFree recycle slice buffers across windows.
	batchFree chan []sev
	respFree  chan []sev

	wg sync.WaitGroup
}

// pBucket is one central ring slot: all events due at one time, split
// into the domain-drained segment (early) and direct pushes (late).
// Early seqs precede late seqs for the same bucket (see
// dataflow/psched.go for the fence-monotonicity argument).
type pBucket struct {
	early, late       []sev
	earlyPos, latePos int
}

// pMsg is the sequencer→worker message for one window: insert batch
// (may be nil), then drain everything below hi and respond. hi < 0 is
// the stop sentinel — the worker exits without responding. A sentinel
// is used instead of closing the channel because the channels are
// created once and reused across runs of the pooled vm.
type pMsg struct {
	batch []sev
	hi    int64
}

// pResp is the worker's answer: the drained events in (time, seq)
// order, plus the earliest remaining event time (MaxInt64 when empty)
// so the sequencer can fast-forward across event-free gaps.
type pResp struct {
	events  []sev
	minNext int64
}

// pDomain is one domain's channels plus its worker-owned queue. The pad
// keeps the worker's hot queue state off the cache lines the channel
// headers (touched by the sequencer) live on.
type pDomain struct {
	in  chan pMsg
	out chan pResp
	_   [64]byte
	q   pwq
}

// pwq is a domain worker's private queue: the sequential VM's calendar
// ring + spill heap, scoped to one domain. Ring buckets hold events
// within pwRingLen cycles of lo; everything further out waits in the
// (time, seq) min-heap.
type pwq struct {
	buckets [pwRingLen][]sev
	spill   []sev
	count   int // events in ring buckets
	lo      int64
}

const (
	pwRingBits = 9
	pwRingLen  = 1 << pwRingBits
	pwRingMask = pwRingLen - 1
)

// insert queues one event. All inserts satisfy e.time >= lo: the
// sequencer only routes events with time >= fence to a domain, and lo
// is always the hi of the previously answered drain, i.e. the fence at
// the time the batch was flushed.
func (q *pwq) insert(e sev) {
	if e.time-q.lo < pwRingLen {
		q.buckets[e.time&pwRingMask] = append(q.buckets[e.time&pwRingMask], e)
		q.count++
		return
	}
	q.spill = sevPush(q.spill, e)
}

// drain appends every queued event below hi to out in (time, seq) order
// and advances lo to hi. Buckets are scrubbed as they empty so they
// hold no stale activation pointers past the drain.
func (q *pwq) drain(hi int64, out []sev) []sev {
	for q.count > 0 && q.lo < hi {
		// Spill events at lo come first: their seqs all precede the ring
		// events' at the same time (spilled in an earlier batch).
		for len(q.spill) > 0 && q.spill[0].time == q.lo {
			var e sev
			e, q.spill = sevPop(q.spill)
			out = append(out, e)
		}
		if b := q.buckets[q.lo&pwRingMask]; len(b) > 0 {
			out = append(out, b...)
			q.count -= len(b)
			clear(b)
			q.buckets[q.lo&pwRingMask] = b[:0]
		}
		q.lo++
	}
	if q.count == 0 {
		// Ring empty: everything left below hi is on the heap, which
		// pops in (time, seq) order directly.
		for len(q.spill) > 0 && q.spill[0].time < hi {
			var e sev
			e, q.spill = sevPop(q.spill)
			out = append(out, e)
		}
		q.lo = hi
	}
	return out
}

// minNext returns the earliest queued event time (MaxInt64 when empty).
// Ring events all lie in [lo, lo+pwRingLen), so a bounded bucket scan
// finds the ring minimum.
func (q *pwq) minNext() int64 {
	min := int64(math.MaxInt64)
	if len(q.spill) > 0 {
		min = q.spill[0].time
	}
	if q.count > 0 {
		for t := q.lo; t < q.lo+pwRingLen; t++ {
			if len(q.buckets[t&pwRingMask]) > 0 {
				if t < min {
					min = t
				}
				break
			}
		}
	}
	return min
}

// reset scrubs the queue between runs (stale events from an errored or
// early-terminated run hold activation pointers).
func (q *pwq) reset() {
	for i := range q.buckets {
		b := q.buckets[i][:cap(q.buckets[i])]
		clear(b)
		q.buckets[i] = b[:0]
	}
	s := q.spill[:cap(q.spill)]
	clear(s)
	q.spill = s[:0]
	q.count = 0
	q.lo = 0
}

// sevPush appends e to the (time, seq) min-heap and sifts it up.
func sevPush(s []sev, e sev) []sev {
	s = append(s, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) >> 1
		if !evLess(&s[i], &s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	return s
}

// sevPop removes and returns the heap minimum.
func sevPop(s []sev) (sev, []sev) {
	e := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last].act = nil
	s = s[:last]
	i := 0
	for {
		c := i*2 + 1
		if c >= len(s) {
			break
		}
		if c+1 < len(s) && evLess(&s[c+1], &s[c]) {
			c++
		}
		if !evLess(&s[c], &s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return e, s
}

func newPSched(nDoms int, window int64) *pSched {
	ring := 4 * window
	s := &pSched{
		nDoms:     nDoms,
		window:    window,
		mask:      ring - 1,
		buckets:   make([]pBucket, ring),
		pending:   make([][]sev, nDoms),
		doms:      make([]pDomain, nDoms),
		resp:      make([][]sev, nDoms),
		respPos:   make([]int, nDoms),
		batchFree: make(chan []sev, 2*nDoms),
		respFree:  make(chan []sev, 2*nDoms),
	}
	for i := range s.doms {
		// in capacity 2 holds the one outstanding drain request plus the
		// stop sentinel; out capacity 1 holds the single outstanding
		// response — neither side ever blocks.
		s.doms[i].in = make(chan pMsg, 2)
		s.doms[i].out = make(chan pResp, 1)
	}
	return s
}

// start resets the sequencer state, spawns this run's workers, and
// primes the pipeline: one drain request is outstanding from here on.
func (s *pSched) start() {
	s.ringCount, s.total = 0, 0
	s.cur, s.covered, s.fence = 0, 0, 0
	for i := range s.doms {
		s.wg.Add(1)
		go s.worker(&s.doms[i])
	}
	s.flushAndRequest()
}

// stop terminates the workers and scrubs every retained buffer of stale
// activation pointers (the pSched lives on inside the pooled vm). Safe
// on every run-loop exit path: exactly one drain request is outstanding,
// so the sentinel queues behind it, the worker answers into the buffered
// out channel, and both sides proceed without blocking.
func (s *pSched) stop() {
	for i := range s.doms {
		s.doms[i].in <- pMsg{hi: -1}
	}
	s.wg.Wait()
	for i := range s.doms {
		d := &s.doms[i]
		select {
		case r := <-d.out: // final response to the outstanding request
			s.putResp(r.events)
		default:
		}
		d.q.reset()
		p := s.pending[i][:cap(s.pending[i])]
		clear(p)
		s.pending[i] = p[:0]
		s.resp[i] = nil
	}
	for i := range s.buckets {
		b := &s.buckets[i]
		e := b.early[:cap(b.early)]
		clear(e)
		b.early = e[:0]
		l := b.late[:cap(b.late)]
		clear(l)
		b.late = l[:0]
		b.earlyPos, b.latePos = 0, 0
	}
	scrubFree(s.batchFree)
	scrubFree(s.respFree)
}

// scrubFree clears the full capacity of every recycled buffer sitting
// in a free list (their spare capacity still references events from the
// finished run).
func scrubFree(ch chan []sev) {
	for n := len(ch); n > 0; n-- {
		b := <-ch
		b = b[:cap(b)]
		clear(b)
		ch <- b[:0]
	}
}

// worker owns one domain's queue. It never dereferences an event's act
// pointer — only (time, seq) — so it races with nothing the sequencer
// does to activation state.
func (s *pSched) worker(d *pDomain) {
	defer s.wg.Done()
	q := &d.q
	for {
		msg := <-d.in
		if msg.hi < 0 {
			return
		}
		if msg.batch != nil {
			for _, e := range msg.batch {
				q.insert(e)
			}
			s.putBatch(msg.batch)
		}
		out := q.drain(msg.hi, s.getResp())
		d.out <- pResp{events: out, minNext: q.minNext()}
	}
}

// push routes one event: inside the fence onto the central ring, past
// it into its domain's pending batch. Called only from the sequencer;
// the event already carries its global sequence number.
func (s *pSched) push(e sev, dom int16) {
	s.total++
	if e.time < s.fence {
		b := &s.buckets[e.time&s.mask]
		b.late = append(b.late, e)
		s.ringCount++
		return
	}
	s.pending[dom] = append(s.pending[dom], e)
}

// next returns the globally next event by (time, seq). It must only be
// called while total > 0, and then always returns an event.
func (s *pSched) next() sev {
	for {
		for s.cur < s.covered {
			b := &s.buckets[s.cur&s.mask]
			if b.earlyPos < len(b.early) {
				e := b.early[b.earlyPos]
				b.earlyPos++
				s.ringCount--
				s.total--
				return e
			}
			if b.latePos < len(b.late) {
				e := b.late[b.latePos]
				b.latePos++
				s.ringCount--
				s.total--
				return e
			}
			b.early = b.early[:0]
			b.late = b.late[:0]
			b.earlyPos, b.latePos = 0, 0
			s.cur++
		}
		s.advance()
	}
}

// advance moves the window forward: merge the outstanding drain
// [covered, fence), then flush pending batches and request the next
// window. When the ring is empty and nothing is buffered outside the
// domains, the per-domain queue minima are an exact global minimum, so
// the window jumps straight to the next event instead of crawling
// fence-by-fence across gaps (memory latencies, injected delays).
func (s *pSched) advance() {
	minAll := s.mergeWindow()
	s.covered = s.fence
	if s.ringCount == 0 {
		s.cur = s.covered
		if s.total > 0 && !s.pendingAny() && minAll > s.covered {
			if minAll == math.MaxInt64 {
				panic("codegen: partitioned scheduler lost events (accounting bug)")
			}
			s.cur, s.covered = minAll, minAll
		}
	}
	s.flushAndRequest()
}

func (s *pSched) pendingAny() bool {
	for _, p := range s.pending {
		if len(p) > 0 {
			return true
		}
	}
	return false
}

// mergeWindow receives every domain's response to the outstanding drain
// and k-way merges them by (time, seq) into the ring's early segments.
// Returns the minimum post-drain queue minimum across domains.
func (s *pSched) mergeWindow() int64 {
	nd := s.nDoms
	minAll := int64(math.MaxInt64)
	for i := 0; i < nd; i++ {
		r := <-s.doms[i].out
		s.resp[i] = r.events
		s.respPos[i] = 0
		if r.minNext < minAll {
			minAll = r.minNext
		}
	}
	for {
		best := -1
		var bt, bs int64
		for i := 0; i < nd; i++ {
			p := s.respPos[i]
			if p >= len(s.resp[i]) {
				continue
			}
			e := &s.resp[i][p]
			if best < 0 || e.time < bt || (e.time == bt && e.seq < bs) {
				best, bt, bs = i, e.time, e.seq
			}
		}
		if best < 0 {
			break
		}
		e := s.resp[best][s.respPos[best]]
		s.respPos[best]++
		b := &s.buckets[e.time&s.mask]
		b.early = append(b.early, e)
		s.ringCount++
	}
	for i := 0; i < nd; i++ {
		s.putResp(s.resp[i])
		s.resp[i] = nil
	}
	return minAll
}

// flushAndRequest sends each domain its pending batch plus the next
// drain request [covered, covered+window) in one message, advancing the
// fence. Batch-then-drain order within the message makes a drain
// response complete: every event routed to a domain before the fence
// advanced is in its queue before the drain runs.
func (s *pSched) flushAndRequest() {
	hi := s.covered + s.window
	for i := range s.doms {
		var batch []sev
		if len(s.pending[i]) > 0 {
			batch = s.pending[i]
			s.pending[i] = s.getBatch()
		}
		s.doms[i].in <- pMsg{batch: batch, hi: hi}
	}
	s.fence = hi
}

func (s *pSched) getBatch() []sev {
	select {
	case b := <-s.batchFree:
		return b
	default:
		return make([]sev, 0, 64)
	}
}

func (s *pSched) putBatch(b []sev) {
	select {
	case s.batchFree <- b[:0]:
	default:
	}
}

func (s *pSched) getResp() []sev {
	select {
	case b := <-s.respFree:
		return b
	default:
		return make([]sev, 0, 64)
	}
}

func (s *pSched) putResp(b []sev) {
	select {
	case s.respFree <- b[:0]:
	default:
	}
}
