package codegen_test

// Differential identity for the partitioned VM: a module compiled with
// CompilePartitioned must replay the sequential VM — and therefore the
// interpreter — bit for bit: same Result (every Stats field), same
// (time, seq) event stream, same error text and triggered-fault logs
// under injection, for any domain count and window width.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"spatial/internal/codegen"
	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/faultsim"
	"spatial/internal/harness"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

// compilePartMod builds a partitioned module with n domains and the
// given scheduler window (0: default).
func compilePartMod(t *testing.T, p *core.Compiled, n int, window int64) *codegen.Module {
	t.Helper()
	part, err := dataflow.BuildPartition(p.Program, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if window > 0 {
		part.SetWindow(window)
	}
	mod, err := codegen.CompilePartitioned(p.Program, part)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestPartitionedResultIdentity runs the full benchmark set at every
// optimization level across several domain counts and requires results
// bit-identical to both the interpreter and the sequential VM.
func TestPartitionedResultIdentity(t *testing.T) {
	for _, name := range harness.BenchSet {
		w := workloads.ByName(name)
		for _, lvl := range allLevels {
			cp, err := core.CompileSource(w.Source, core.WithLevel(lvl))
			if err != nil {
				t.Fatal(err)
			}
			want, err := dataflow.Run(cp.Program, w.Entry, nil, dataflow.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			seq, err := codegen.Compile(cp.Program).Run(w.Entry, nil, dataflow.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if *seq != *want {
				t.Fatalf("%s O%d: sequential VM diverged from interpreter", name, lvl)
			}
			for _, n := range []int{2, 3} {
				mod := compilePartMod(t, cp, n, 0)
				got, err := mod.Run(w.Entry, nil, dataflow.DefaultConfig())
				if err != nil {
					t.Fatalf("%s O%d P%d: %v", name, lvl, n, err)
				}
				if *got != *want {
					t.Errorf("%s O%d P%d mismatch:\n got %+v\nwant %+v", name, lvl, n, got, want)
				}
			}
		}
	}
}

// TestPartitionedWindowSweep forces heavy cross-window traffic with tiny
// synchronization windows; identity must hold for every width.
func TestPartitionedWindowSweep(t *testing.T) {
	w := workloads.ByName("g721_e")
	cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	want, err := dataflow.Run(cp.Program, w.Entry, nil, dataflow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int64{2, 4, 64} {
		mod := compilePartMod(t, cp, 3, window)
		got, err := mod.Run(w.Entry, nil, dataflow.DefaultConfig())
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if *got != *want {
			t.Errorf("window %d mismatch:\n got %+v\nwant %+v", window, got, want)
		}
	}
}

// TestPartitionedEventStreamIdentity compares the partitioned VM's full
// event stream — every processed event's (time, seq, act, node) —
// against the interpreter's. Partitioned events always carry their true
// global sequence number, so this needs no spill-everything mode.
func TestPartitionedEventStreamIdentity(t *testing.T) {
	type ev struct {
		time, seq int64
		act, node int
	}
	for _, name := range []string{"adpcm_e", "g721_e"} {
		w := workloads.ByName(name)
		cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
		if err != nil {
			t.Fatal(err)
		}
		var want []ev
		if _, err := dataflow.RunEvents(cp.Program, w.Entry, nil, dataflow.DefaultConfig(),
			func(time, seq int64, act, node int) {
				want = append(want, ev{time, seq, act, node})
			}); err != nil {
			t.Fatal(err)
		}
		mod := compilePartMod(t, cp, 3, 0)
		i, diverged := 0, false
		_, err = mod.RunEvents(w.Entry, nil, dataflow.DefaultConfig(),
			func(time, seq int64, act, node int) {
				if diverged {
					return
				}
				if i >= len(want) || want[i] != (ev{time, seq, act, node}) {
					diverged = true
					if i < len(want) {
						t.Errorf("%s: event %d: got %+v want %+v", name, i, ev{time, seq, act, node}, want[i])
					} else {
						t.Errorf("%s: event %d past interpreter stream end: %+v", name, i, ev{time, seq, act, node})
					}
					return
				}
				i++
			})
		if err != nil {
			t.Fatal(err)
		}
		if !diverged && i != len(want) {
			t.Errorf("%s: partitioned stream ended at %d events, interpreter produced %d", name, i, len(want))
		}
	}
}

// TestPartitionedFaultedIdentity replays seeded fault plans through the
// interpreter and the partitioned VM and requires identical outcomes:
// identical Result, identical error text (including rendered stuck
// reports), identical triggered-fault logs.
func TestPartitionedFaultedIdentity(t *testing.T) {
	w := workloads.ByName("adpcm_e")
	cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	mod := compilePartMod(t, cp, 3, 0)
	cfg := dataflow.DefaultConfig()
	cfg.MaxCycles = 1 << 22
	mk := []struct {
		name string
		inj  func() *faultsim.Injector
	}{
		{"jitter", func() *faultsim.Injector { return faultsim.NewJitter(42, 0.05, 8) }},
		{"freeze", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.Freeze, Node: -1, Edge: -1, Nth: 17, Cycles: 40}}})
		}},
		{"drop-value", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.Drop, Node: -1, Edge: -1, Nth: 99}}})
		}},
		{"dup-value", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.Duplicate, Node: -1, Edge: -1, Nth: 55}}})
		}},
		{"mem-stretch", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.MemStretch, Node: -1, Edge: -1, Nth: 5, Cycles: 64}}})
		}},
		{"mem-fail", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.MemFail, Node: -1, Edge: -1, Nth: 3}}})
		}},
	}
	for _, fr := range mk {
		injI, injP := fr.inj(), fr.inj()
		want, errI := dataflow.RunFaulted(context.Background(), cp.Program, w.Entry, nil, cfg, injI)
		got, errP := mod.RunFaulted(context.Background(), w.Entry, nil, cfg, injP)
		switch {
		case (errI == nil) != (errP == nil):
			t.Errorf("%s: outcome diverged: interp err=%v, partitioned err=%v", fr.name, errI, errP)
		case errI != nil:
			if errI.Error() != errP.Error() {
				t.Errorf("%s: error text diverged:\n interp      %v\n partitioned %v", fr.name, errI, errP)
			}
		case *want != *got:
			t.Errorf("%s: result diverged:\n got %+v\nwant %+v", fr.name, got, want)
		}
		ti, tp := injI.Triggered(), injP.Triggered()
		if len(ti) != len(tp) {
			t.Errorf("%s: triggered-fault logs diverged: interp %v, partitioned %v", fr.name, ti, tp)
		}
	}
}

// TestPartitionedErrorPaths exercises the scheduler's stop path on every
// abnormal run exit — livelock, cancellation — and then reruns cleanly
// on the same pooled VM, proving stop scrubs retained state and leaks no
// worker goroutines.
func TestPartitionedErrorPaths(t *testing.T) {
	w := workloads.ByName("adpcm_e")
	cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	mod := compilePartMod(t, cp, 3, 0)
	cfg := dataflow.DefaultConfig()
	want, err := mod.Run(w.Entry, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	// Livelock: identical error text on both engines.
	tiny := cfg
	tiny.MaxCycles = 64
	_, errI := dataflow.Run(cp.Program, w.Entry, nil, tiny)
	_, errP := mod.Run(w.Entry, nil, tiny)
	if errI == nil || errP == nil {
		t.Fatalf("expected livelock from both engines, got interp=%v partitioned=%v", errI, errP)
	}
	if errI.Error() != errP.Error() {
		t.Errorf("livelock text diverged:\n interp      %v\n partitioned %v", errI, errP)
	}

	// Cancellation: pre-canceled context aborts the run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mod.RunCtx(ctx, w.Entry, nil, cfg); err == nil {
		t.Error("expected cancellation error")
	}

	// The pooled VM must come back pristine after every aborted run.
	for i := 0; i < 3; i++ {
		got, err := mod.Run(w.Entry, nil, cfg)
		if err != nil {
			t.Fatalf("rerun %d after aborts: %v", i, err)
		}
		if *got != *want {
			t.Fatalf("rerun %d after aborts diverged", i)
		}
	}

	// Workers are per-run: none may outlive their run.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak: %d before aborted runs, %d after", before, n)
	}
}

// TestCompilePartitionedValidation pins the constructor's contract: the
// partition must match the program, and a single-domain partition
// degrades to a plain sequential module.
func TestCompilePartitionedValidation(t *testing.T) {
	w := workloads.ByName("adpcm_e")
	cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	part, err := dataflow.BuildPartition(cp2.Program, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codegen.CompilePartitioned(cp.Program, part); err == nil {
		t.Error("expected mismatched-program error")
	}
	if _, err := codegen.CompilePartitioned(cp.Program, nil); err == nil {
		t.Error("expected nil-partition error")
	}
	one, err := dataflow.BuildPartition(cp.Program, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := codegen.CompilePartitioned(cp.Program, one)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Partitioned() != 1 {
		t.Errorf("single-domain partition: Partitioned() = %d, want 1", mod.Partitioned())
	}
}

// TestPartitionedSteadyStateAllocs is the sequential VM's allocation
// gate applied to the partitioned scheduler: after a warm-up run has
// sized the channels, worker queues, and message buffers, repeat runs
// must stay allocation-free per event (budget 0.001 per domain worker —
// the ISSUE's per-worker budget — and a fixed per-run handful for the
// Result, stats, and worker goroutine starts).
func TestPartitionedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting measures the race detector, not the VM")
	}
	const domains = 3
	w := workloads.ByName("g721_e")
	cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	mod := compilePartMod(t, cp, domains, 0)
	cfg := dataflow.DefaultConfig()
	var res *dataflow.Result
	for i := 0; i < 3; i++ { // warm-up sizes pools, buffers, and goroutine stacks
		if res, err = mod.Run(w.Entry, nil, cfg); err != nil {
			t.Fatal(err)
		}
	}
	events := float64(res.Stats.Events)
	perRun := testing.AllocsPerRun(10, func() {
		if _, err := mod.Run(w.Entry, nil, cfg); err != nil {
			t.Error(err)
		}
	})
	if perEvent := perRun / events; perEvent > 0.001*domains {
		t.Errorf("steady-state allocations: %.1f allocs/run = %.4f allocs/event (budget %.3f)",
			perRun, perEvent, 0.001*domains)
	}
	if perRun > 96 {
		t.Errorf("steady-state allocations: %.1f allocs/run (budget 96 fixed)", perRun)
	}
}
