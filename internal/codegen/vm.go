package codegen

// This file is the bytecode executor. It replays the interpreter's event
// algebra exactly — same push order, same (time, seq) pop order, same
// statistics — while eliminating its constant factors: rules instead of
// node dispatch, bare int64 latch FIFOs, one flat occupancy array, a
// calendar-ring event queue, and inlined arithmetic that never allocates
// (division by zero yields 0 without an error value). Zero steady-state
// allocations: the VM itself, activation state, ring buckets, and latch
// buffers are all pooled or retain capacity across runs.

import (
	"context"
	"fmt"

	"spatial/internal/cminor"
	"spatial/internal/dataflow"
	"spatial/internal/faultsim"
	"spatial/internal/memsys"
	"spatial/internal/pegasus"
)

// vnode is the per-rule dynamic state: delivery-order floors, the token
// generator's credit counter, the missing-input counter (number of
// currently empty dynamic input latches), the full-edge counter (number
// of consumer edges at capacity), and the fired-once mark. missing and
// full let the run loop skip fire attempts of gated rules without
// dispatching, and replace the interpreter's per-attempt capacity scan
// with one comparison: every firing rule's capacity gate is exactly
// "no consumer edge full", because ops only ever emit on classes they
// gate on (returns and entries have no in-graph consumers at all).
// The gate-hot fields (missing, full, flags, firedOnce) lead so the run
// loop's skip decision reads the struct's first bytes.
type vnode struct {
	missing   int32
	full      int32
	flags     uint8
	firedOnce bool
	_         [2]byte
	counter   int32
	lastVal   int64
	lastTok   int64
}

// vq is one input latch: a FIFO of raw values held inline, so a
// delivery or consume touches no cache line beyond the struct itself.
// The producer bookkeeping the interpreter latches per value is static
// per port here (pmeta), because every port has exactly one producer
// edge — which also bounds the depth by EdgeCap (plus injected
// duplicates); depths beyond the inline slots spill to the overflow
// tail (EdgeCap > 3 or fault duplication only).
type vq struct {
	n   int32
	_   int32
	v   [3]int64
	ovf []int64
}

func (q *vq) size() int { return int(q.n) }

func (q *vq) push(val int64) {
	if q.n < 3 {
		q.v[q.n] = val
	} else {
		q.ovf = append(q.ovf, val)
	}
	q.n++
}

// shift closes the front gap after popping v[0] with n still > 0.
func (q *vq) shift() {
	q.v[0] = q.v[1]
	q.v[1] = q.v[2]
	if len(q.ovf) > 0 {
		q.v[2] = q.ovf[0]
		q.ovf = q.ovf[:copy(q.ovf, q.ovf[1:])]
	}
}

// vstate is one activation's entire dynamic state, recycled through the
// gprog's pool.
type vstate struct {
	nodes []vnode
	ports []vq
	// occ holds every output edge's occupancy count: value edges in
	// [0, numVal), token edges in [numVal, numOcc) — rule occupancy
	// bases and portOcc indices are pre-offset at lowering.
	occ []int32
	// next (fault injection only) tracks the earliest legal delivery
	// time per consumer edge, preserving FIFO order under injected
	// delays; same layout as occ. Lazily allocated, exactly like the
	// interpreter.
	next []int64
	// slots holds the static program's results; fully overwritten by
	// runStatics at activation start, so never cleared.
	slots  []int64
	params []int64
}

func newVstate(gp *gprog) *vstate {
	return &vstate{
		nodes: make([]vnode, len(gp.rules)),
		ports: make([]vq, gp.numPorts),
		occ:   make([]int32, gp.numOcc),
		slots: make([]int64, gp.numSlots),
	}
}

// prepare resets recycled state to the pristine activation-start layout.
func (st *vstate) prepare(gp *gprog, fresh bool) {
	if !fresh {
		for i := range st.ports {
			st.ports[i].n = 0
			st.ports[i].ovf = st.ports[i].ovf[:0]
		}
		clear(st.occ)
		clear(st.next)
	}
	copy(st.nodes, gp.nodeInit)
}

// edgeNext mirrors actState.edgeNext (fault injection only); base is the
// rule's pre-offset occupancy base for the edge class being emitted.
func (st *vstate) edgeNext(gp *gprog, base int32) []int64 {
	if st.next == nil {
		st.next = make([]int64, gp.numOcc)
	}
	return st.next[base:]
}

// vact is one dynamic instance of a function. The event-hot fields
// (done, st, gp) lead so the run loop touches only the struct's front.
type vact struct {
	done bool
	st   *vstate
	gp   *gprog
	id   int
	// retRule is the parent's call rule to complete when the return
	// fires (-1: this is the entry activation).
	retRule int32
	frame   uint32
	actsIdx int
	retAct  *vact
}

// vev is one scheduled event. dstPort >= 0 latches val there before the
// fire attempt (a delivery); dstPort < 0 only attempts the fire (a
// check). Ring events carry no sequence number — their FIFO position is
// their sequence (see the order proof below) — which keeps the struct to
// 32 bytes.
type vev struct {
	time, val int64
	act       *vact
	rule      int32
	dstPort   int32
}

// sev is a spilled event: far-future events wait in a min-heap, where
// ordering needs an explicit sequence number.
type sev struct {
	vev
	seq int64
}

// The calendar ring: per-cycle FIFO buckets for events within ringLen
// cycles of the current base time, plus a spill min-heap for the rest.
//
// Order proof sketch: push order is the interpreter's seq order and base
// never decreases, so (a) events land in a bucket in push order, and a
// bucket only ever holds events of a single time value (all events at
// time t are drained while base == t, and nothing pushes at a time <
// base because pushes happen at e.time >= now == base); (b) a spill
// event at time t was pushed while t >= base+ringLen, a ring event at
// time t while t < base+ringLen — since base is monotone the spill push
// happened strictly earlier. pop therefore drains the spill heap at the
// base time first, then the base bucket FIFO, and the result is exactly
// (time, seq) order — the interpreter's heap order — without storing
// seq per ring event. The spill counter orders spilled events among
// themselves. When a run needs real sequence numbers (evHook), every
// event goes through the spill heap instead (spillAll), where the
// counter is then the interpreter's global seq.
const (
	ringBits = 9
	ringLen  = 1 << ringBits
	ringMask = ringLen - 1
)

type vbucket struct {
	buf  []vev
	head int32
}

// vm executes one run of a lowered module. VMs are recycled through the
// module's pool; getVM restores the pristine state between runs.
type vm struct {
	mod  *Module
	cfg  dataflow.Config
	mem  []byte
	msys *memsys.System

	buckets [ringLen]vbucket
	base    int64
	baseIdx int32
	count   int   // events in ring buckets
	spill   []sev // far-future events, min-heap on (time, seq)
	// spillAll routes every push through the spill heap so each event
	// carries a true global sequence number (evHook runs only).
	spillAll bool
	// popSeq is the seq of the last spill-popped event (evHook runs).
	popSeq int64

	seq   int64
	now   int64
	stats dataflow.Stats

	nextActID  int
	sp         uint32
	liveFrames int
	// freeFrames holds recycled frame offsets per frame-size class (see
	// gprog.frameClass).
	freeFrames [][]uint32

	mainVal  int64
	mainDone bool

	insBuf   []int64
	predsBuf []int64
	toksBuf  []int64

	inj     *faultsim.Injector
	ctx     context.Context
	ctxTick int
	err     error

	acts []*vact
	// arena chunk-allocates vacts: fixed-size chunks are never
	// reallocated (events hold *vact), consecutive activations share
	// cache lines, and chunks are retained across runs.
	arena [][]vact

	evHook func(time, seq int64, act, node int)

	// ps is the partitioned event scheduler (modules compiled by
	// CompilePartitioned only; nil otherwise). Created on the VM's first
	// run and retained across runs — its channels, worker queues, and
	// message buffers keep their capacity like every other pooled
	// structure; start/stop reset it per run.
	ps *pSched
}

// getVM returns a pristine VM for one run, reusing a pooled one when
// available (its ring buckets, frame free lists, scratch buffers, and
// memory image keep their capacity).
func (mod *Module) getVM() *vm {
	m, ok := mod.vmPool.Get().(*vm)
	if !ok {
		return &vm{
			mod:        mod,
			mem:        make([]byte, mod.prog.Layout.MemSize),
			freeFrames: make([][]uint32, mod.numFrameClasses),
		}
	}
	// Drop every retained event: an errored or early-terminated run
	// leaves stale events (and activation pointers) in the queue.
	for i := range m.buckets {
		b := &m.buckets[i]
		b.buf = b.buf[:cap(b.buf)]
		clear(b.buf)
		b.buf = b.buf[:0]
		b.head = 0
	}
	m.spill = m.spill[:cap(m.spill)]
	clear(m.spill)
	m.spill = m.spill[:0]
	m.acts = m.acts[:cap(m.acts)]
	clear(m.acts)
	m.acts = m.acts[:0]
	for i := range m.arena {
		ch := m.arena[i][:cap(m.arena[i])]
		clear(ch) // drop stale gp/st/retAct references
		m.arena[i] = ch[:0]
	}
	for i := range m.freeFrames {
		m.freeFrames[i] = m.freeFrames[i][:0]
	}
	clear(m.mem)
	m.base, m.baseIdx, m.count = 0, 0, 0
	m.seq, m.now, m.popSeq = 0, 0, 0
	m.spillAll = false
	m.stats = dataflow.Stats{}
	m.nextActID, m.liveFrames = 0, 0
	m.mainVal, m.mainDone = 0, false
	m.ctxTick = 0
	m.err = nil
	return m
}

// release returns the VM to the module's pool, dropping the observer
// references that must not outlive the run.
func (mod *Module) release(m *vm) {
	m.msys = nil
	m.inj = nil
	m.ctx = nil
	m.evHook = nil
	mod.vmPool.Put(m)
}

// runVM is the single internal runner behind the Module's Run variants;
// it mirrors dataflow.runMachine.
func (mod *Module) runVM(ctx context.Context, entry string, args []int64, cfg dataflow.Config,
	inj *faultsim.Injector, evHook func(time, seq int64, act, node int)) (*dataflow.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.Normalized()
	gp := mod.progs[entry]
	if gp == nil {
		return nil, fmt.Errorf("dataflow: no function %q", entry)
	}
	if len(args) != gp.numParams {
		return nil, fmt.Errorf("dataflow: %s expects %d arguments, got %d", entry, gp.numParams, len(args))
	}
	m := mod.getVM()
	defer mod.release(m)
	m.cfg = cfg
	m.sp = mod.prog.Layout.StackBase
	m.msys = memsys.New(cfg.Mem)
	m.inj = inj
	m.ctx = ctx
	m.evHook = evHook
	// The sequential ring needs spillAll to give evHook true sequence
	// numbers; partitioned events always carry theirs.
	m.spillAll = evHook != nil && mod.part == nil
	if inj != nil {
		m.msys.SetPerturber(inj)
	}
	for _, c := range mod.prog.Layout.Init {
		m.writeMem(c.Addr, c.Size, c.Value)
	}
	if mod.part != nil {
		if m.ps == nil {
			m.ps = newPSched(mod.part.Domains(), mod.partWindow)
		}
		m.ps.start()
		defer m.ps.stop()
	}
	m.newActivation(gp, args, -1, nil)
	if m.err != nil {
		return nil, m.err
	}
	var err error
	if m.ps != nil {
		err = m.runPart()
	} else {
		err = m.run()
	}
	if err != nil {
		return nil, err
	}
	m.stats.Cycles = m.now
	m.stats.Mem = m.msys.Stats()
	return &dataflow.Result{Value: m.mainVal, Stats: m.stats}, nil
}

// --- event queue ---

// push schedules one event. Scalar arguments and a manual slot store
// keep the hot path to a single 32-byte write into the bucket tail.
func (m *vm) push(t, val int64, a *vact, rule, dst int32) {
	if m.ps != nil {
		// Partitioned: every event carries its global seq (assigned at
		// push, exactly like the interpreter) and routes by the consuming
		// rule's domain.
		m.ps.push(sev{vev: vev{time: t, val: val, act: a, rule: rule, dstPort: dst}, seq: m.seq}, a.gp.ruleDom[rule])
		m.seq++
		return
	}
	if d := t - m.base; d < ringLen && !m.spillAll {
		b := &m.buckets[(m.baseIdx+int32(d))&ringMask]
		n := len(b.buf)
		if n < cap(b.buf) {
			b.buf = b.buf[:n+1]
		} else {
			b.buf = append(b.buf, vev{})
		}
		s := &b.buf[n]
		s.time, s.val = t, val
		s.act, s.rule, s.dstPort = a, rule, dst
		m.count++
		return
	}
	m.spillPush(sev{vev: vev{time: t, val: val, act: a, rule: rule, dstPort: dst}, seq: m.seq})
	m.seq++
}

func (m *vm) pushCheck(t int64, a *vact, ri int32) {
	m.push(t, 0, a, ri, -1)
}

// pushNow pushes a check at the current cycle. During event processing
// base == now (ring pops drain the base bucket, whose single time value
// is base; spill pops only happen with spill[0].time == base), so the
// event always belongs in the base bucket.
func (m *vm) pushNow(a *vact, ri int32) {
	if m.ps != nil {
		// During event processing now = cur < fence, so the scheduler
		// routes this straight to the current bucket's late segment.
		m.ps.push(sev{vev: vev{time: m.now, act: a, rule: ri, dstPort: -1}, seq: m.seq}, a.gp.ruleDom[ri])
		m.seq++
		return
	}
	if m.spillAll {
		m.spillPush(sev{vev: vev{time: m.now, act: a, rule: ri, dstPort: -1}, seq: m.seq})
		m.seq++
		return
	}
	b := &m.buckets[m.baseIdx]
	n := len(b.buf)
	if n < cap(b.buf) {
		b.buf = b.buf[:n+1]
	} else {
		b.buf = append(b.buf, vev{})
	}
	s := &b.buf[n]
	s.time, s.val = m.now, 0
	s.act, s.rule, s.dstPort = a, ri, -1
	m.count++
}

// pop returns the earliest pending event in (time, seq) order. Must not
// be called with nothing pending.
func (m *vm) pop() vev {
	for {
		if s := m.spill; len(s) > 0 && s[0].time == m.base {
			return m.spillPop()
		}
		b := &m.buckets[m.baseIdx]
		if int(b.head) < len(b.buf) {
			e := b.buf[b.head]
			b.head++
			if int(b.head) == len(b.buf) {
				b.buf = b.buf[:0]
				b.head = 0
			}
			m.count--
			return e
		}
		m.base++
		m.baseIdx = (m.baseIdx + 1) & ringMask
		if m.count == 0 && len(m.spill) > 0 && m.spill[0].time > m.base {
			// Ring empty: skip straight to the next asynchronous event.
			m.base = m.spill[0].time
		}
	}
}

func (m *vm) spillPush(e sev) {
	m.spill = sevPush(m.spill, e)
}

func (m *vm) spillPop() vev {
	var e sev
	e, m.spill = sevPop(m.spill)
	m.popSeq = e.seq
	return e.vev
}

func evLess(a, b *sev) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// --- run loop (mirrors machine.run) ---

func (m *vm) run() error {
	// Loop-invariant hoists: the compiler cannot prove these vm fields
	// unchanged across the call-heavy loop body.
	hasCtx := m.ctx != nil
	hasHook := m.evHook != nil
	noInj := m.inj == nil
	maxCycles := m.cfg.MaxCycles
	for m.count > 0 || len(m.spill) > 0 {
		if hasCtx {
			m.ctxTick++
			if m.ctxTick >= 1024 {
				m.ctxTick = 0
				if err := m.ctx.Err(); err != nil {
					return fmt.Errorf("%w at cycle %d: %v", dataflow.ErrCanceled, m.now, err)
				}
			}
		}
		// Inline pop fast path: no spill, base bucket non-empty. The
		// slow path (spill events or base advance) stays in pop.
		var e vev
		if b := &m.buckets[m.baseIdx]; len(m.spill) == 0 && int(b.head) < len(b.buf) {
			e = b.buf[b.head]
			b.head++
			if int(b.head) == len(b.buf) {
				b.buf = b.buf[:0]
				b.head = 0
			}
			m.count--
		} else {
			e = m.pop()
		}
		if e.time > maxCycles {
			m.now = e.time
			return &dataflow.LivelockError{MaxCycles: maxCycles, Report: m.stuckReport("livelock")}
		}
		m.now = e.time
		m.stats.Events++
		a := e.act
		if hasHook {
			// spillAll mode: every event came through the spill heap,
			// so popSeq is its true global sequence number.
			m.evHook(e.time, m.popSeq, a.id, int(a.gp.rules[e.rule].nodeID))
		}
		if a.done {
			// Drop events for completed activations: their state has
			// been recycled (cross-activation edges do not exist).
			continue
		}
		ns := &a.st.nodes[e.rule]
		if e.dstPort >= 0 {
			q := &a.st.ports[e.dstPort]
			if q.n == 0 {
				ns.missing--
			}
			q.push(e.val)
		}
		if noInj {
			// An attempt that would fail on a missing input (or an
			// already fired once-only rule) has no observable effect:
			// skip the dispatch without touching the full rule struct.
			// Disabled under fault injection, which must probe the
			// injector on every attempt like the interpreter.
			if f := ns.flags; (f&flagGated != 0 && (ns.missing > 0 || ns.full > 0)) ||
				(f&flagFireOnce != 0 && ns.firedOnce) {
				continue
			}
		}
		m.tryFire(a, e.rule, &a.gp.rules[e.rule])
		if m.err != nil {
			return m.err
		}
		if m.mainDone {
			return nil
		}
	}
	if !m.mainDone {
		return &dataflow.DeadlockError{Report: m.stuckReport("deadlock")}
	}
	return nil
}

// runPart is run() behind the partitioned scheduler: identical event
// semantics, with every pop delegated to the sequencer's next(), which
// returns events in the same global (time, seq) order — so outcomes,
// statistics, diagnoses, and event streams match run() bit for bit.
func (m *vm) runPart() error {
	hasCtx := m.ctx != nil
	hasHook := m.evHook != nil
	noInj := m.inj == nil
	maxCycles := m.cfg.MaxCycles
	ps := m.ps
	for ps.total > 0 {
		if hasCtx {
			m.ctxTick++
			if m.ctxTick >= 1024 {
				m.ctxTick = 0
				if err := m.ctx.Err(); err != nil {
					return fmt.Errorf("%w at cycle %d: %v", dataflow.ErrCanceled, m.now, err)
				}
			}
		}
		e := ps.next()
		if e.time > maxCycles {
			m.now = e.time
			return &dataflow.LivelockError{MaxCycles: maxCycles, Report: m.stuckReport("livelock")}
		}
		m.now = e.time
		m.stats.Events++
		a := e.act
		if hasHook {
			m.evHook(e.time, e.seq, a.id, int(a.gp.rules[e.rule].nodeID))
		}
		if a.done {
			continue
		}
		ns := &a.st.nodes[e.rule]
		if e.dstPort >= 0 {
			q := &a.st.ports[e.dstPort]
			if q.n == 0 {
				ns.missing--
			}
			q.push(e.val)
		}
		if noInj {
			if f := ns.flags; (f&flagGated != 0 && (ns.missing > 0 || ns.full > 0)) ||
				(f&flagFireOnce != 0 && ns.firedOnce) {
				continue
			}
		}
		m.tryFire(a, e.rule, &a.gp.rules[e.rule])
		if m.err != nil {
			return m.err
		}
		if m.mainDone {
			return nil
		}
	}
	if !m.mainDone {
		return &dataflow.DeadlockError{Report: m.stuckReport("deadlock")}
	}
	return nil
}

// --- activations ---

func (m *vm) newActivation(gp *gprog, args []int64, retRule int32, retAct *vact) *vact {
	st, recycled := gp.pool.Get().(*vstate)
	if !recycled {
		st = newVstate(gp)
	}
	st.prepare(gp, !recycled)
	st.params = append(st.params[:0], args...)
	a := m.allocVact()
	a.id = m.nextActID
	a.gp = gp
	a.st = st
	a.retRule = retRule
	a.retAct = retAct
	a.actsIdx = len(m.acts)
	m.nextActID++
	m.acts = append(m.acts, a)
	a.frame = m.allocFrame(gp)
	m.runStatics(a)
	if gp.entryRule >= 0 {
		m.emit(a, gp.entryRule, &gp.rules[gp.entryRule], true, 1, m.now+1)
	}
	for _, ri := range gp.seeds {
		m.pushCheck(m.now+1, a, ri)
	}
	return a
}

const arenaChunk = 64

// allocVact hands out the next zeroed slot of the arena's current
// chunk. Chunks are fixed-capacity so handed-out pointers stay valid.
func (m *vm) allocVact() *vact {
	if n := len(m.arena); n == 0 || len(m.arena[n-1]) == cap(m.arena[n-1]) {
		m.arena = append(m.arena, make([]vact, 0, arenaChunk))
	}
	ch := m.arena[len(m.arena)-1]
	ch = ch[:len(ch)+1]
	m.arena[len(m.arena)-1] = ch
	return &ch[len(ch)-1]
}

func (m *vm) complete(a *vact) {
	a.done = true
	m.freeFrame(a)
	last := len(m.acts) - 1
	m.acts[a.actsIdx] = m.acts[last]
	m.acts[a.actsIdx].actsIdx = a.actsIdx
	m.acts[last] = nil
	m.acts = m.acts[:last]
	a.gp.pool.Put(a.st)
	a.st = nil
}

func (m *vm) allocFrame(gp *gprog) uint32 {
	size := gp.frameSize
	if size == 0 {
		return 0
	}
	m.liveFrames++
	if frames := m.freeFrames[gp.frameClass]; len(frames) > 0 {
		f := frames[len(frames)-1]
		m.freeFrames[gp.frameClass] = frames[:len(frames)-1]
		// Zero the recycled frame so first use and reuse are identical.
		clear(m.mem[f : f+size])
		return f
	}
	f := m.sp
	m.sp += (size + 7) &^ 7
	if m.sp > m.mod.prog.Layout.MemSize {
		m.fail(fmt.Errorf("%w: %d frames live, frame top 0x%x past memory size 0x%x",
			dataflow.ErrStackOverflow, m.liveFrames, m.sp, m.mod.prog.Layout.MemSize))
	}
	return f
}

func (m *vm) freeFrame(a *vact) {
	if a.gp.frameSize > 0 {
		m.liveFrames--
		m.freeFrames[a.gp.frameClass] = append(m.freeFrames[a.gp.frameClass], a.frame)
	}
}

func (m *vm) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

// runStatics executes the static program into the activation's slots.
// The interpreter evaluates the same values lazily with memoization;
// eager evaluation is equivalent because they are pure functions of the
// parameters and frame address.
func (m *vm) runStatics(a *vact) {
	st := a.st
	for i := range a.gp.sprog {
		ins := &a.gp.sprog[i]
		var v int64
		switch ins.op {
		case sParam:
			v = st.params[ins.off]
		case sAddr:
			v = int64(a.frame + uint32(ins.off))
		case sBin:
			v = evalBin(ins.bin, argv(st, ins.a), argv(st, ins.b), ins.uns)
		case sUn:
			v = evalUn(ins.un, argv(st, ins.a))
		case sConv:
			v = convValue(argv(st, ins.a), int(ins.bits), ins.sign)
		case sMux:
			for j := 0; j < len(ins.mux); j += 2 {
				if argv(st, ins.mux[j]) != 0 {
					v = argv(st, ins.mux[j+1])
					break
				}
			}
		}
		st.slots[ins.dst] = v
	}
}

func argv(st *vstate, g oparg) int64 {
	if g.mode == argImm {
		return g.imm
	}
	return st.slots[g.idx]
}

// --- delivery and consumption ---

// consume pops the front of a latch, releasing the producer's edge slot
// and rechecking the producer.
func (m *vm) consume(a *vact, p int32) int64 {
	st := a.st
	pm := &a.gp.ports[p]
	q := &st.ports[p]
	v := q.v[0]
	q.n--
	if q.n == 0 {
		st.nodes[pm.owner].missing++
	} else {
		q.shift()
	}
	o := st.occ[pm.occ]
	st.occ[pm.occ] = o - 1
	if o == int32(m.cfg.EdgeCap) {
		st.nodes[pm.prod].full--
	}
	m.pushNow(a, pm.prod)
	return v
}

// argVal resolves one operand, consuming dynamic ones.
func (m *vm) argVal(a *vact, g oparg) int64 {
	switch g.mode {
	case argImm:
		return g.imm
	case argSlot:
		return a.st.slots[g.idx]
	default:
		return m.consume(a, g.idx)
	}
}

// consumeClass consumes one operand class in order into a scratch buffer
// (mirrors consumeAll's per-class order: ins, then preds, then toks).
func (m *vm) consumeClass(a *vact, args []oparg, buf *[]int64) []int64 {
	b := (*buf)[:0]
	for i := range args {
		switch g := &args[i]; g.mode {
		case argImm:
			b = append(b, g.imm)
		case argSlot:
			b = append(b, a.st.slots[g.idx])
		default:
			b = append(b, m.consume(a, g.idx))
		}
	}
	*buf = b
	return b
}

// emit schedules delivery of one output to every consumer and reserves
// edge occupancy, flooring the time by the in-order delivery constraint.
// Occupancy crossings into capacity maintain the rule's full counter.
func (m *vm) emit(a *vact, ri int32, r *rule, tok bool, val, t int64) {
	st := a.st
	ns := &st.nodes[ri]
	var cnt, base int32
	var d0 dest
	if tok {
		if t < ns.lastTok {
			t = ns.lastTok
		}
		ns.lastTok = t
		cnt, d0, base = r.tokCnt, r.tokD0, r.tokOccBase
	} else {
		if t < ns.lastVal {
			t = ns.lastVal
		}
		ns.lastVal = t
		cnt, d0, base = r.valCnt, r.valD0, r.valOccBase
	}
	if m.inj == nil {
		c := int32(m.cfg.EdgeCap)
		if cnt == 1 {
			// Single consumer: the inlined dest avoids the cons slice
			// and its backing array entirely.
			o := st.occ[base] + 1
			st.occ[base] = o
			if o == c {
				ns.full++
			}
			m.push(t, val, a, d0.rule, d0.port)
			return
		}
		occ := st.occ[base:]
		cons := r.tokCons
		if !tok {
			cons = r.valCons
		}
		for i := range cons {
			o := occ[i] + 1
			occ[i] = o
			if o == c {
				ns.full++
			}
			m.push(t, val, a, cons[i].rule, cons[i].port)
		}
		return
	}
	cons := r.tokCons
	if !tok {
		cons = r.valCons
	}
	m.emitFaulted(a, ns, r, tok, val, t, cons, st.occ[base:])
}

// emitFaulted is the fault-injection delivery path, mirroring the
// interpreter's exactly (same Deliver call order, same FIFO floors).
func (m *vm) emitFaulted(a *vact, ns *vnode, r *rule, tok bool, val, t int64, cons []dest, occ []int32) {
	base := r.valOccBase
	if tok {
		base = r.tokOccBase
	}
	c := int32(m.cfg.EdgeCap)
	for i := range cons {
		dt := t
		copies := 1
		switch fa := m.inj.Deliver(m.now, a.gp.name, int(r.nodeID), tok, i); fa.Kind {
		case faultsim.ActDrop:
			copies = 0
		case faultsim.ActDup:
			copies = 2
		case faultsim.ActDelay:
			dt = t + fa.Delay
		}
		next := a.st.edgeNext(a.gp, base)
		if dt < next[i] {
			dt = next[i]
		}
		next[i] = dt
		for k := 0; k < copies; k++ {
			o := occ[i] + 1
			occ[i] = o
			if o == c {
				ns.full++
			}
			m.push(dt, val, a, cons[i].rule, cons[i].port)
		}
	}
}

// --- firing rules (mirror fire.go) ---

// tryFire attempts to fire the rule as many times as it can, preserving
// the interpreter's exact attempt sequence: done check, freeze probe,
// fire-once gate, dispatch — then the whole sequence again after every
// success until an attempt fails.
func (m *vm) tryFire(a *vact, ri int32, r *rule) {
	for {
		if a.done {
			return
		}
		// pre records that the gate has proven the rule fireable (every
		// input latched, no output edge full), letting the gated fire
		// paths skip their own rechecks.
		pre := false
		if m.inj != nil {
			if thaw := m.inj.FrozenUntil(m.now, a.gp.name, int(r.nodeID)); thaw > m.now {
				m.pushCheck(thaw, a, ri)
				return
			}
		} else if r.gated {
			if ns := &a.st.nodes[ri]; ns.missing > 0 || ns.full > 0 {
				return
			}
			pre = true
		}
		if r.fireOnce {
			ns := &a.st.nodes[ri]
			if ns.firedOnce {
				return
			}
			if m.dispatch(a, ri, r, pre) {
				ns.firedOnce = true
				continue
			}
			return
		}
		if !m.dispatch(a, ri, r, pre) {
			return
		}
	}
}

func (m *vm) dispatch(a *vact, ri int32, r *rule, pre bool) bool {
	switch r.op {
	case opBin, opUn, opConv, opMux, opCombine:
		return m.fireSimple(a, ri, r, pre)
	case opMerge:
		return m.fireMerge(a, ri, r)
	case opEta:
		return m.fireEta(a, ri, r)
	case opTokGen:
		return m.fireTokenGen(a, ri, r)
	case opLoad, opStore:
		return m.fireMemOp(a, ri, r, pre)
	case opCall:
		return m.fireCall(a, ri, r, pre)
	case opReturn:
		return m.fireReturn(a, r, pre)
	default: // opEntry: fired once at activation start
		return false
	}
}

func (m *vm) fireSimple(a *vact, ri int32, r *rule, pre bool) bool {
	st := a.st
	if !pre {
		for _, p := range r.needPorts {
			if st.ports[p].size() == 0 {
				return false
			}
		}
		if st.nodes[ri].full > 0 {
			return false
		}
	} else if r.shape != shGeneric {
		// Pre-gated specialized shapes: consume straight off the ports
		// (same order as the generic class loop) and emit.
		var v int64
		switch r.shape {
		case shBin2:
			x := m.consume(a, r.shapeA)
			y := m.consume(a, r.shapeB)
			v = evalBin(r.bin, x, y, r.unsigned)
		case shUn1:
			v = evalUn(r.un, m.consume(a, r.shapeA))
		default: // shConv1
			v = convValue(m.consume(a, r.shapeA), int(r.toBits), r.convSign)
		}
		m.stats.OpsFired++
		m.emit(a, ri, r, false, v, m.now+r.lat)
		return true
	}
	var ins, preds []int64
	if len(r.ins) > 0 {
		ins = m.consumeClass(a, r.ins, &m.insBuf)
	}
	if len(r.preds) > 0 {
		preds = m.consumeClass(a, r.preds, &m.predsBuf)
	}
	if len(r.toks) > 0 {
		m.consumeClass(a, r.toks, &m.toksBuf)
	}
	m.stats.OpsFired++
	t := m.now + r.lat
	var v int64
	switch r.op {
	case opBin:
		v = evalBin(r.bin, ins[0], ins[1], r.unsigned)
	case opUn:
		v = evalUn(r.un, ins[0])
	case opConv:
		v = convValue(ins[0], int(r.toBits), r.convSign)
	case opMux:
		for i, p := range preds {
			if p != 0 {
				v = ins[i]
				break
			}
		}
	case opCombine:
		m.emit(a, ri, r, true, 1, t)
		return true
	}
	m.emit(a, ri, r, false, v, t)
	return true
}

func (m *vm) fireMerge(a *vact, ri int32, r *rule) bool {
	if a.st.nodes[ri].full > 0 {
		return false
	}
	for _, p := range r.srcPorts {
		if a.st.ports[p].size() > 0 {
			v := m.consume(a, p)
			m.stats.OpsFired++
			m.emit(a, ri, r, r.outTok, v, m.now+r.lat)
			return true
		}
	}
	return false
}

func (m *vm) fireEta(a *vact, ri int32, r *rule) bool {
	st := a.st
	if r.predArg.mode == argPort && st.ports[r.predArg.idx].size() == 0 {
		return false
	}
	if r.dataArg.mode == argPort && st.ports[r.dataArg.idx].size() == 0 {
		return false
	}
	// Peek the predicate: only a true predicate needs output capacity.
	var predVal int64
	switch r.predArg.mode {
	case argImm:
		predVal = r.predArg.imm
	case argSlot:
		predVal = st.slots[r.predArg.idx]
	default:
		q := &st.ports[r.predArg.idx]
		predVal = q.v[0]
	}
	if predVal != 0 && st.nodes[ri].full > 0 {
		return false
	}
	if r.predArg.mode == argPort {
		m.consume(a, r.predArg.idx)
	}
	v := m.argVal(a, r.dataArg)
	m.stats.OpsFired++
	if predVal != 0 {
		m.emit(a, ri, r, r.outTok, v, m.now+r.lat)
	}
	return true
}

func (m *vm) fireTokenGen(a *vact, ri int32, r *rule) bool {
	st := a.st
	ns := &st.nodes[ri]
	// Absorb token inputs eagerly.
	if st.ports[r.tokPort].size() > 0 {
		m.consume(a, r.tokPort)
		ns.counter++
		m.stats.OpsFired++
		return true
	}
	if r.predArg.mode == argPort && st.ports[r.predArg.idx].size() == 0 {
		return false
	}
	var predVal int64
	switch r.predArg.mode {
	case argImm:
		predVal = r.predArg.imm
	case argSlot:
		predVal = st.slots[r.predArg.idx]
	default:
		q := &st.ports[r.predArg.idx]
		predVal = q.v[0]
	}
	if predVal != 0 {
		if ns.counter <= 0 {
			return false // wait for credit from the trailing loop
		}
		if ns.full > 0 {
			return false
		}
		if r.predArg.mode == argPort {
			m.consume(a, r.predArg.idx)
		}
		ns.counter--
		m.stats.OpsFired++
		m.emit(a, ri, r, true, 1, m.now+r.lat)
		return true
	}
	// Loop finished: reset the credit counter.
	if r.predArg.mode == argPort {
		m.consume(a, r.predArg.idx)
	}
	ns.counter = r.tokN
	m.stats.OpsFired++
	return true
}

func (m *vm) fireMemOp(a *vact, ri int32, r *rule, pre bool) bool {
	st := a.st
	if !pre {
		for _, p := range r.needPorts {
			if st.ports[p].size() == 0 {
				return false
			}
		}
		if st.nodes[ri].full > 0 {
			return false
		}
	}
	ins := m.consumeClass(a, r.ins, &m.insBuf)
	preds := m.consumeClass(a, r.preds, &m.predsBuf)
	if len(r.toks) > 0 {
		m.consumeClass(a, r.toks, &m.toksBuf)
	}
	m.stats.OpsFired++
	if preds[0] == 0 {
		// Squashed: arbitrary value, immediate token.
		m.stats.NullMem++
		if r.op == opLoad {
			m.emit(a, ri, r, false, 0, m.now+1)
		}
		m.emit(a, ri, r, true, 1, m.now+1)
		return true
	}
	addr := uint32(ins[0])
	if r.op == opLoad {
		m.stats.DynLoads++
		done := m.msys.Submit(m.now, true, addr, int(r.bytes))
		v := m.readMem(addr, int(r.bytes), r.loadSigned)
		m.emit(a, ri, r, false, v, done)
		m.emit(a, ri, r, true, 1, m.now+1)
	} else {
		m.stats.DynStores++
		m.msys.Submit(m.now, false, addr, int(r.bytes))
		m.writeMem(addr, int(r.bytes), ins[1])
		m.emit(a, ri, r, true, 1, m.now+1)
	}
	if m.inj != nil && m.msys.TakeFault() {
		n := a.gp.nodeByID[r.nodeID]
		m.fail(fmt.Errorf("%w: %s at address 0x%x, cycle %d", dataflow.ErrMemFault, n, addr, m.now))
	}
	return true
}

func (m *vm) fireCall(a *vact, ri int32, r *rule, pre bool) bool {
	st := a.st
	if !pre {
		for _, p := range r.needPorts {
			if st.ports[p].size() == 0 {
				return false
			}
		}
		if st.nodes[ri].full > 0 {
			return false
		}
	}
	var ins []int64
	if len(r.ins) > 0 {
		ins = m.consumeClass(a, r.ins, &m.insBuf)
	}
	preds := m.consumeClass(a, r.preds, &m.predsBuf)
	if len(r.toks) > 0 {
		m.consumeClass(a, r.toks, &m.toksBuf)
	}
	m.stats.OpsFired++
	if preds[0] == 0 {
		if r.hasValue {
			m.emit(a, ri, r, false, 0, m.now+1)
		}
		m.emit(a, ri, r, true, 1, m.now+1)
		return true
	}
	if r.callee == nil {
		m.fail(fmt.Errorf("%w: %s (extern declaration with no body?)", dataflow.ErrUnbuiltCall, r.calleeName))
		return false
	}
	if m.nextActID >= m.cfg.MaxActivations {
		m.fail(fmt.Errorf("%w: %d activations, calling %s at cycle %d",
			dataflow.ErrActivationLimit, m.nextActID, r.calleeName, m.now))
		return false
	}
	m.stats.Calls++
	m.newActivation(r.callee, ins, ri, a)
	return true
}

func (m *vm) fireReturn(a *vact, r *rule, pre bool) bool {
	st := a.st
	if !pre {
		for _, p := range r.needPorts {
			if st.ports[p].size() == 0 {
				return false
			}
		}
	}
	var ins []int64
	if len(r.ins) > 0 {
		ins = m.consumeClass(a, r.ins, &m.insBuf)
	}
	if len(r.preds) > 0 {
		m.consumeClass(a, r.preds, &m.predsBuf)
	}
	if len(r.toks) > 0 {
		m.consumeClass(a, r.toks, &m.toksBuf)
	}
	m.stats.OpsFired++
	var val int64
	if len(ins) > 0 {
		val = ins[0]
	}
	m.complete(a)
	if a.retRule < 0 {
		m.mainVal = val
		m.mainDone = true
		return true
	}
	parent := a.retAct
	pr := &parent.gp.rules[a.retRule]
	if pr.hasValue {
		m.emit(parent, a.retRule, pr, false, val, m.now+1)
	}
	m.emit(parent, a.retRule, pr, true, 1, m.now+1)
	return true
}

// --- arithmetic (inlined cminor.EvalBinOp without error allocation) ---

// evalBin mirrors cminor.EvalBinOp over 32-bit values; division or
// remainder by zero yields 0 (the interpreter maps the oracle's error to
// 0 — hardware semantics) without allocating an error.
func evalBin(op cminor.BinOpKind, l, r int64, uns bool) int64 {
	li, ri := int32(l), int32(r)
	lu, ru := uint32(l), uint32(r)
	switch op {
	case cminor.OpAdd:
		return int64(li + ri)
	case cminor.OpSub:
		return int64(li - ri)
	case cminor.OpMul:
		return int64(li * ri)
	case cminor.OpDiv:
		if ri == 0 {
			return 0
		}
		if uns {
			return int64(int32(lu / ru))
		}
		if li == -1<<31 && ri == -1 {
			return int64(li) // wraps like the sequential oracle
		}
		return int64(li / ri)
	case cminor.OpRem:
		if ri == 0 {
			return 0
		}
		if uns {
			return int64(int32(lu % ru))
		}
		if li == -1<<31 && ri == -1 {
			return 0
		}
		return int64(li % ri)
	case cminor.OpAnd:
		return int64(li & ri)
	case cminor.OpOr:
		return int64(li | ri)
	case cminor.OpXor:
		return int64(li ^ ri)
	case cminor.OpShl:
		return int64(li << (ru & 31))
	case cminor.OpShr:
		if uns {
			return int64(int32(lu >> (ru & 31)))
		}
		return int64(li >> (ru & 31))
	case cminor.OpEq:
		return b2i(li == ri)
	case cminor.OpNe:
		return b2i(li != ri)
	case cminor.OpLt:
		if uns {
			return b2i(lu < ru)
		}
		return b2i(li < ri)
	case cminor.OpLe:
		if uns {
			return b2i(lu <= ru)
		}
		return b2i(li <= ri)
	case cminor.OpGt:
		if uns {
			return b2i(lu > ru)
		}
		return b2i(li > ri)
	case cminor.OpGe:
		if uns {
			return b2i(lu >= ru)
		}
		return b2i(li >= ri)
	case cminor.OpLogAnd:
		return b2i(li != 0 && ri != 0)
	case cminor.OpLogOr:
		return b2i(li != 0 || ri != 0)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func evalUn(op pegasus.UnOpKind, x int64) int64 {
	switch op {
	case pegasus.UNeg:
		return int64(int32(-x))
	case pegasus.UNot:
		if x == 0 {
			return 1
		}
		return 0
	case pegasus.UBitNot:
		return int64(int32(^x))
	default: // pegasus.UBool
		if x != 0 {
			return 1
		}
		return 0
	}
}

func convValue(v int64, bits int, signed bool) int64 {
	switch {
	case bits == 8 && signed:
		return int64(int8(v))
	case bits == 8:
		return int64(uint8(v))
	case bits == 16 && signed:
		return int64(int16(v))
	case bits == 16:
		return int64(uint16(v))
	default:
		return int64(int32(v))
	}
}

// --- memory data access (mirrors sim.go) ---

func (m *vm) readMem(addr uint32, bytes int, signed bool) int64 {
	if int(addr)+bytes > len(m.mem) {
		return 0 // out-of-range reads yield 0, like an open bus
	}
	var raw uint32
	for i := 0; i < bytes; i++ {
		raw |= uint32(m.mem[addr+uint32(i)]) << (8 * i)
	}
	switch {
	case bytes == 1 && signed:
		return int64(int8(raw))
	case bytes == 1:
		return int64(uint8(raw))
	case bytes == 2 && signed:
		return int64(int16(raw))
	case bytes == 2:
		return int64(uint16(raw))
	default:
		return int64(int32(raw))
	}
}

func (m *vm) writeMem(addr uint32, bytes int, v int64) {
	if int(addr)+bytes > len(m.mem) {
		return
	}
	for i := 0; i < bytes; i++ {
		m.mem[addr+uint32(i)] = byte(v >> (8 * i))
	}
}
