package codegen_test

// Lowering edge cases: small programs chosen to stress the corners of
// the graph-to-bytecode lowering rather than throughput — loops whose
// bodies never run, recursion deep enough to cycle the frame free lists,
// and control flow where predicate-false etas must discard values. Each
// is checked for bit-identity against the interpreter at every
// optimization level, and for value agreement with the sequential
// oracle.

import (
	"testing"

	"spatial/internal/codegen"
	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/opt"
)

var loweringCases = []struct {
	name string
	src  string
	want int64
}{
	// The loop guard is false on entry: the body's operators are lowered
	// and wired but must never fire, and the loop's merge/eta ring has to
	// pass the initial values straight through.
	{"zero-iteration-loop", `
int sum(int n) {
  int i;
  int s = 7;
  for (i = 0; i < n; i++) s += i * i;
  return s;
}
int bench(void) {
  int dead = sum(0);
  int one = sum(1);
  return dead * 1000 + one;
}
`, 7007},

	// Mutual recursion with two distinct frame sizes: frames must be
	// recycled LIFO per size class exactly like the interpreter, and the
	// call/return rules must route results to the right activation.
	{"recursion-frame-reuse", `
int odd(int n);
int even(int n) {
  if (n == 0) return 1;
  return odd(n - 1);
}
int odd(int n) {
  int pad = n * 3;
  if (n == 0) return 0;
  return even(n - 1) + pad - pad;
}
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int bench(void) {
  return fib(12) * 10 + even(9) * 5 + odd(7);
}
`, 1441},

	// Both arms of each branch are lowered; the predicate-false side's
	// eta nodes receive their data inputs and must consume and discard
	// them without emitting (and without counting an operator firing).
	{"predicate-false-eta-discard", `
int pick(int c, int a, int b) {
  int r;
  if (c) r = a * 3; else r = b + 100;
  return r;
}
int bench(void) {
  int x = 0;
  int i;
  for (i = 0; i < 8; i++) {
    x += pick(i & 1, i, i);
  }
  return x;
}
`, 460},

	// A loop that exits via break mid-body plus a continue path: etas on
	// the exit edges fire on different predicates than the back edges.
	{"break-continue", `
int bench(void) {
  int i;
  int s = 0;
  for (i = 0; i < 100; i++) {
    if (i == 13) break;
    if (i & 1) continue;
    s += i;
  }
  return s * 10 + i;
}
`, 433},
}

func TestLoweringEdgeCases(t *testing.T) {
	for _, tc := range loweringCases {
		for _, lvl := range allLevels {
			cp, err := core.CompileSource(tc.src, core.WithLevel(lvl))
			if err != nil {
				t.Fatalf("%s O%d: compile: %v", tc.name, lvl, err)
			}
			seq, err := cp.RunSequential("bench", nil)
			if err != nil {
				t.Fatalf("%s O%d: oracle: %v", tc.name, lvl, err)
			}
			if seq.Value != tc.want {
				t.Fatalf("%s O%d: oracle value %d, test expects %d", tc.name, lvl, seq.Value, tc.want)
			}
			want, err := dataflow.Run(cp.Program, "bench", nil, dataflow.DefaultConfig())
			if err != nil {
				t.Fatalf("%s O%d: interp: %v", tc.name, lvl, err)
			}
			got, err := codegen.Compile(cp.Program).Run("bench", nil, dataflow.DefaultConfig())
			if err != nil {
				t.Fatalf("%s O%d: compiled: %v", tc.name, lvl, err)
			}
			if *got != *want {
				t.Errorf("%s O%d mismatch:\n got %+v\nwant %+v", tc.name, lvl, got, want)
			}
			if got.Value != tc.want {
				t.Errorf("%s O%d: value %d, want %d", tc.name, lvl, got.Value, tc.want)
			}
		}
	}
}

// TestModuleConcurrentRuns runs one compiled Module from several
// goroutines at once — the Module is shared read-only and each run's VM
// comes from the pool, so results must stay identical and race-free
// (tier-1 runs with -race in CI).
func TestModuleConcurrentRuns(t *testing.T) {
	src := loweringCases[1].src
	cp, err := core.CompileSource(src, core.WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	mod := codegen.Compile(cp.Program)
	want, err := mod.Run("bench", nil, dataflow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 5; i++ {
				got, err := mod.Run("bench", nil, dataflow.DefaultConfig())
				if err != nil {
					done <- err
					return
				}
				if *got != *want {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent run diverged from baseline" }
