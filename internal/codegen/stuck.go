package codegen

// Stuck-state diagnosis for the compiled backend. The classification
// mirrors the interpreter's (dataflow/stuck.go) rule for rule, reading
// the VM's flat state instead of the interpreter's; the ordering and
// wait-cycle extraction are shared through dataflow.NewStuckReport, so
// a deadlock diagnosed by either backend renders identically.

import (
	"spatial/internal/dataflow"
	"spatial/internal/pegasus"
)

func (m *vm) stuckReport(kind string) *dataflow.StuckReport {
	var blocked []dataflow.BlockedNode
	for _, a := range m.acts {
		if a.done {
			continue
		}
		for _, n := range a.gp.g.Nodes {
			if n.Dead || a.gp.static[n.ID] || n.Kind == pegasus.KEntryTok {
				continue
			}
			b, isBlocked := m.classifyBlocked(a, n)
			if !isBlocked {
				continue
			}
			blocked = append(blocked, b)
		}
	}
	return dataflow.NewStuckReport(kind, m.now, blocked)
}

// classifyBlocked mirrors dataflow.(*machine).classifyBlocked against
// the VM's state.
func (m *vm) classifyBlocked(a *vact, n *pegasus.Node) (dataflow.BlockedNode, bool) {
	gp := a.gp
	b := dataflow.BlockedNode{Graph: gp.name, Act: a.id, Node: n}
	ri := gp.ruleOf[n.ID]
	r := &gp.rules[ri]
	ns := &a.st.nodes[ri]
	if gp.dynIns[n.ID] == 0 {
		// Fire-once node: blocked only if it never managed to fire,
		// which can only be backpressure.
		if ns.firedOnce {
			return b, false
		}
		b.Waits = m.backpressureEdges(a, r)
		return b, len(b.Waits) > 0
	}
	var missing []dataflow.WaitEdge
	n.EachInput(func(ref *pegasus.Ref, cls pegasus.Port, idx int) {
		if !ref.Valid() || gp.static[ref.N.ID] {
			return
		}
		if a.st.ports[gp.portIndex(n, cls, idx)].size() > 0 {
			b.Arrived++
			return
		}
		k := dataflow.WaitData
		if cls == pegasus.PortTok {
			k = dataflow.WaitToken
		}
		missing = append(missing, dataflow.WaitEdge{Kind: k, Port: cls, Idx: idx, Peer: ref.N, PeerAct: a.id})
	})
	switch n.Kind {
	case pegasus.KMerge:
		// A merge fires on ANY arrived input; it is input-starved only
		// when none arrived, and otherwise blocked by backpressure.
		if b.Arrived == 0 {
			b.Waits = missing
			return b, len(b.Waits) > 0
		}
		b.Waits = m.backpressureEdges(a, r)
		return b, len(b.Waits) > 0
	case pegasus.KTokenGen:
		// Token inputs are absorbed eagerly, so only the predicate path
		// can block: pred missing, credit exhausted, or output full.
		if r.predArg.mode == argPort && a.st.ports[r.predArg.idx].size() == 0 {
			for _, w := range missing {
				if w.Port == pegasus.PortPred {
					b.Waits = append(b.Waits, w)
				}
			}
			return b, len(b.Waits) > 0
		}
		var predVal int64
		switch r.predArg.mode {
		case argImm:
			predVal = r.predArg.imm
		case argSlot:
			predVal = a.st.slots[r.predArg.idx]
		default:
			q := &a.st.ports[r.predArg.idx]
			predVal = q.v[0]
		}
		if predVal == 0 {
			return b, false // would fire (counter reset); not blocked
		}
		if ns.counter <= 0 {
			b.Waits = []dataflow.WaitEdge{{Kind: dataflow.WaitCredit, Port: pegasus.PortTok, Idx: 0, Peer: n.Toks[0].N, PeerAct: a.id}}
			return b, true
		}
		b.Waits = m.backpressureEdges(a, r)
		return b, len(b.Waits) > 0
	default:
		if len(missing) > 0 {
			b.Waits = missing
			return b, true
		}
		// Every input present yet unfired: output edges must be full.
		b.Waits = m.backpressureEdges(a, r)
		return b, len(b.Waits) > 0
	}
}

// backpressureEdges lists wait edges to the consumers of the rule's full
// output edges, in the interpreter's order (value edges, then token).
func (m *vm) backpressureEdges(a *vact, r *rule) []dataflow.WaitEdge {
	var out []dataflow.WaitEdge
	gp := a.gp
	c := int32(m.cfg.EdgeCap)
	occ := a.st.occ[r.valOccBase:]
	for i := range r.valCons {
		if occ[i] >= c {
			peer, cls, idx := gp.portLoc(r.valCons[i].port)
			out = append(out, dataflow.WaitEdge{Kind: dataflow.WaitBackpressure, Port: cls, Idx: idx, Peer: peer, PeerAct: a.id})
		}
	}
	occ = a.st.occ[r.tokOccBase:]
	for i := range r.tokCons {
		if occ[i] >= c {
			peer, cls, idx := gp.portLoc(r.tokCons[i].port)
			out = append(out, dataflow.WaitEdge{Kind: dataflow.WaitBackpressure, Port: cls, Idx: idx, Peer: peer, PeerAct: a.id})
		}
	}
	return out
}
