//go:build !race

package codegen_test

const raceEnabled = false
