// Package codegen is the compiled-simulation backend: it lowers a built
// Pegasus graph into specialized flat bytecode — one firing rule per
// dynamic node with its operand kinds, consumer edges, occupancy slots,
// and latency resolved at lowering time — and executes that bytecode on
// a VM (vm.go) that replays the interpreter's event algebra exactly.
//
// The contract with the interpreted engine (internal/dataflow) is
// bit-identity: for any program, config, and fault plan, the compiled
// backend produces the same value, the same cycle count, the same event
// count, and the same (time, seq) event stream. The interpreter stays
// the differential oracle (internal/difftest runs every check against
// both engines); the compiled backend only removes constant factors:
//
//   - Per-node dispatch over *pegasus.Node, EachInput closures, and
//     kind-specific field decoding are replaced by pre-lowered rules
//     whose operands are immediates, static-slot reads, or direct port
//     indices.
//   - Values that are fixed for a whole activation (constants, params,
//     frame addresses, and pure computations over them) are folded at
//     lowering time into immediates where possible, and otherwise into
//     a short straight-line "static program" run once per activation
//     into a dense slot array — the interpreter's lazy memoized
//     staticValue walk disappears entirely.
//   - Input latches are bare []int64 FIFOs: every port has exactly one
//     producer edge, so the producer bookkeeping the interpreter
//     carries per latched value is precomputed per port.
//   - The global (time, seq) binary heap is replaced by a calendar
//     ring of per-cycle FIFO buckets (near-future events, the common
//     case: latencies are 0–20 cycles) plus a small spill min-heap that
//     holds only true asynchrony — far-future deliveries such as
//     delayed memory responses or injected delays. Because the global
//     seq counter is monotone and the ring only holds events within
//     its horizon, FIFO bucket order IS (time, seq) order, and every
//     spill event at a time t precedes all ring events at t.
//
// See DESIGN.md "Compiled simulation" for the full format.
package codegen

import (
	"sync"

	"spatial/internal/cminor"
	"spatial/internal/pegasus"
)

// opcode selects the firing rule of one lowered node.
type opcode uint8

const (
	opEntry opcode = iota // KEntryTok: fired by newActivation, never by dispatch
	opBin
	opUn
	opConv
	opMux
	opCombine
	opMerge
	opEta
	opTokGen
	opLoad
	opStore
	opCall
	opReturn
)

// argMode classifies a lowered operand.
type argMode uint8

const (
	// argImm: the operand folded to a constant at lowering time.
	argImm argMode = iota
	// argSlot: the operand is activation-static; read from the slot the
	// static program filled.
	argSlot
	// argPort: a dynamic operand consumed from an input latch.
	argPort
)

// oparg is one lowered operand: an immediate, a static slot, or a port.
type oparg struct {
	mode argMode
	idx  int32 // slot index (argSlot) or flat port index (argPort)
	imm  int64 // argImm value
}

// dest is one consumer edge of a rule's output: the consuming rule (for
// the delivery's recheck) and the flat port index the value lands in.
// The occupancy counter for edge i of a rule lives at occ[base+i], so no
// index needs to ride along.
type dest struct {
	rule int32
	port int32
}

// rule is the lowered firing rule of one dynamic node. Which fields are
// meaningful depends on op; all are resolved at lowering time so the VM
// never touches *pegasus.Node on the hot path.
type rule struct {
	op         opcode
	fireOnce   bool // zero dynamic inputs: fires exactly once per activation
	outTok     bool // primary output is the token output (combine, token-only merge/eta)
	unsigned   bool // opBin
	convSign   bool // opConv
	loadSigned bool // opLoad: sign-extend sub-word loads
	needVal    bool // opLoad: value output has consumers
	hasValue   bool // opCall: callee returns a value
	// gated marks all-inputs rules (simple/mem/call/return): the rule
	// cannot fire while any needPort is empty, so the VM skips the fire
	// attempt entirely when the node's missing-input counter is nonzero.
	gated   bool
	bin     cminor.BinOpKind
	un      pegasus.UnOpKind
	nodeID  int32 // pegasus node ID (fault matching, stuck reports)
	toBits  int32 // opConv
	bytes   int32 // opLoad/opStore access size
	tokN    int32 // opTokGen initial credit
	tokPort int32 // opTokGen: port of Toks[0]
	lat     int64 // output latency in cycles

	// shape marks a specialized operand pattern (shBin2/shUn1/shConv1)
	// that the pre-gated firing path executes without the generic
	// consume loops; shapeA/shapeB are its dynamic input ports.
	shape          uint8
	shapeA, shapeB int32

	// needPorts lists the dynamic input ports that must be non-empty
	// before an all-inputs rule (simple/mem/call/return) may fire.
	needPorts []int32
	// ins/preds/toks are the full operand lists in consume order.
	ins, preds, toks []oparg
	// predArg/dataArg are the eta and tokgen fast-path operands.
	predArg oparg
	dataArg oparg
	// srcPorts are a merge's dynamic source ports in declaration order.
	srcPorts []int32

	// Consumer edges of the value and token outputs, in the same order
	// the interpreter builds them, with the occupancy bases into the
	// activation's occVal/occTok arrays. The first dest of each class
	// and the class sizes are inlined (valD0/tokD0, valCnt/tokCnt) so
	// single-consumer emits — the common case — never touch the slices.
	valCons    []dest
	tokCons    []dest
	valD0      dest
	tokD0      dest
	valCnt     int32
	tokCnt     int32
	valOccBase int32
	tokOccBase int32

	// callee is the lowered callee graph (nil: extern with no body).
	callee     *gprog
	calleeName string
}

// pmeta is the per-port static producer metadata the consume hot path
// touches: the producer's occupancy slot, the producer rule to recheck,
// and the consuming rule whose missing-input counter tracks this latch.
type pmeta struct {
	occ   int32
	prod  int32
	owner int32
	_     int32
}

// Pre-dispatch gate bits, one byte per rule (vnode.flags — static, but
// carried in the per-activation state so the run loop's gate reads one
// cache line instead of two).
const (
	flagGated    uint8 = 1 << iota // rule is input-gated (see rule.gated)
	flagFireOnce                   // rule fires at most once per activation
)

// Specialized firing shapes (rule.shape).
const (
	shGeneric uint8 = iota
	shBin2          // opBin: exactly two port inputs, no preds/toks
	shUn1           // opUn: one port input, no preds/toks
	shConv1         // opConv: one port input, no preds/toks
)

// sop is a static-program instruction opcode.
type sop uint8

const (
	sParam sop = iota // dst = params[off]
	sAddr             // dst = frame + off (uint32 wraparound)
	sBin              // dst = a <bin> b
	sUn               // dst = <un> a
	sConv             // dst = conv(a)
	sMux              // dst = first mux[2k+1] with mux[2k] != 0, else 0
)

// sinstr is one instruction of the per-activation static program. Args
// are argImm or argSlot only; instructions are emitted in dependency
// order, so a single forward pass evaluates the whole program.
type sinstr struct {
	op   sop
	dst  int32
	bits int32
	uns  bool
	sign bool
	bin  cminor.BinOpKind
	un   pegasus.UnOpKind
	off  int64
	a, b oparg
	mux  []oparg // pred0, in0, pred1, in1, ...
}

// gprog is one graph's lowered program plus the cold-path metadata
// (static classification, port layout, node table) the stuck-state
// diagnosis needs. Immutable after lowering except pool; shared by every
// run of the module, including concurrent ones.
type gprog struct {
	g         *pegasus.Graph
	name      string
	numParams int
	frameSize uint32
	memSize   uint32

	rules []rule
	// ruleOf maps node ID → rule index (-1 for static/dead nodes).
	ruleOf []int32
	// ruleDom maps rule index → event domain (partitioned modules only;
	// nil in sequential modules). Rules are numbered domain-contiguously,
	// so this is a step function over the rule index.
	ruleDom []int16
	// entryRule is the KEntryTok rule fired by newActivation (-1: none).
	entryRule int32
	// seeds are rules with no dynamic inputs, checked once at activation
	// start, in graph node order.
	seeds []int32
	// nodeInit is the pristine per-rule dynamic state (token-generator
	// credits, missing-input counters); activation state preparation is
	// one copy from it.
	nodeInit []vnode

	// Per-port static producer metadata: each input port has exactly one
	// producer edge, so consuming from port p releases occupancy slot
	// ports[p].occ and rechecks rule ports[p].prod. Value and token
	// occupancy share one flat array (value slots first, token slots
	// after), so the hot path never branches on the edge class. owner
	// names the consuming rule. One struct per port keeps everything
	// consume touches on a single cache line. portTok records the edge
	// class (cold path: backpressure diagnosis).
	ports   []pmeta
	portTok []bool

	// frameClass indexes the VM's per-size free-frame lists (assigned by
	// Compile over the module's distinct frame sizes).
	frameClass int32

	// Cold-path mirrors of the interpreter's graphInfo, used only by the
	// stuck-state diagnosis.
	nodeByID []*pegasus.Node
	static   []bool
	dynIns   []int
	inOff    []int32
	predOff  []int32
	tokOff   []int32

	numPorts int
	// numOcc is the total occupancy slot count (value slots in
	// [0, numVal), token slots in [numVal, numOcc)).
	numOcc   int
	numVal   int
	numSlots int
	sprog    []sinstr

	// pool recycles vstate across activations of this graph; safe for
	// concurrent runs (each vstate is owned by one activation between
	// Get and Put).
	pool sync.Pool
}

// portIndex is the flat index of one input slot (cold path; the hot path
// uses pre-resolved indices).
func (gp *gprog) portIndex(n *pegasus.Node, cls pegasus.Port, idx int) int32 {
	switch cls {
	case pegasus.PortIn:
		return gp.inOff[n.ID] + int32(idx)
	case pegasus.PortPred:
		return gp.predOff[n.ID] + int32(idx)
	default:
		return gp.tokOff[n.ID] + int32(idx)
	}
}

// portLoc recovers the consuming node and input slot of a flat port
// index (cold path: rendering backpressure wait edges).
func (gp *gprog) portLoc(p int32) (*pegasus.Node, pegasus.Port, int) {
	n := gp.nodeByID[gp.rules[gp.ports[p].owner].nodeID]
	switch {
	case p < gp.predOff[n.ID]:
		return n, pegasus.PortIn, int(p - gp.inOff[n.ID])
	case p < gp.tokOff[n.ID]:
		return n, pegasus.PortPred, int(p - gp.predOff[n.ID])
	default:
		return n, pegasus.PortTok, int(p - gp.tokOff[n.ID])
	}
}

// padLine rounds an occupancy slot offset up to a cache-line boundary
// (16 int32s = 64 bytes).
func padLine(x int32) int32 { return (x + 15) &^ 15 }

// opLatencyOf mirrors dataflow's opLatency table.
func opLatencyOf(n *pegasus.Node) int64 {
	switch n.Kind {
	case pegasus.KBinOp:
		switch n.BinOp {
		case cminor.OpMul:
			return 3
		case cminor.OpDiv, cminor.OpRem:
			return 20
		default:
			return 1
		}
	case pegasus.KMerge:
		return 0
	default:
		return 1
	}
}

// lowerer holds per-graph lowering state.
type lowerer struct {
	mod   *Module
	g     *pegasus.Graph
	gp    *gprog
	memo  []oparg // static node ID → lowered arg
	done  []bool
	slots int
}

// lowerGraph fills gp with the lowered program for gp.g. The node
// iteration orders deliberately mirror dataflow.buildGraphInfo and
// newActivation so that consumer lists — and therefore event push order,
// seq numbering, and pop order — are identical to the interpreter's.
func lowerGraph(mod *Module, gp *gprog) {
	g := gp.g
	maxID := g.MaxID()
	gp.frameSize = mod.prog.Layout.FrameSize[g.Fn]
	gp.memSize = mod.prog.Layout.MemSize
	if g.Fn != nil {
		gp.numParams = len(g.Fn.Params)
	}
	gp.nodeByID = make([]*pegasus.Node, maxID)
	gp.static = make([]bool, maxID)
	for _, n := range g.Nodes {
		if !n.Dead {
			gp.nodeByID[n.ID] = n
		}
	}
	// Static closure over pure ops — the same fixpoint as the
	// interpreter, so both engines agree on what handshakes.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Dead || gp.static[n.ID] {
				continue
			}
			s := false
			switch n.Kind {
			case pegasus.KConst, pegasus.KParam, pegasus.KAddrOf:
				s = true
			case pegasus.KBinOp, pegasus.KUnOp, pegasus.KConv, pegasus.KMux:
				s = true
				n.EachInput(func(r *pegasus.Ref, cls pegasus.Port, idx int) {
					if !r.Valid() || !gp.static[r.N.ID] {
						s = false
					}
				})
			}
			if s {
				gp.static[n.ID] = true
				changed = true
			}
		}
	}
	// Flat port layout and rule numbering: node-ID order for sequential
	// modules; (domain, node ID) order for partitioned modules, so each
	// domain's rules, ports, and occupancy slots occupy contiguous index
	// ranges (and therefore disjoint cache lines, padded below). The
	// renumbering is semantics-transparent: seeds and consumer lists are
	// built in graph node order regardless, so event push order — and
	// therefore seq numbering and pop order — is unchanged, and every
	// cross-reference (ruleOf, dests, pmeta, occupancy bases) is
	// renumbered consistently.
	nDoms := 1
	var dom []int16
	if mod.part != nil {
		nDoms = mod.part.Domains()
		dom = mod.part.NodeDomains(gp.name)
	}
	domOf := func(id int) int {
		if dom == nil || id >= len(dom) {
			return 0
		}
		return int(dom[id])
	}
	order := make([]int, 0, maxID)
	if nDoms <= 1 {
		for id := 0; id < maxID; id++ {
			order = append(order, id)
		}
	} else {
		for d := 0; d < nDoms; d++ {
			for id := 0; id < maxID; id++ {
				if domOf(id) == d {
					order = append(order, id)
				}
			}
		}
	}
	gp.dynIns = make([]int, maxID)
	gp.inOff = make([]int32, maxID)
	gp.predOff = make([]int32, maxID)
	gp.tokOff = make([]int32, maxID)
	gp.ruleOf = make([]int32, maxID)
	for i := range gp.ruleOf {
		gp.ruleOf[i] = -1
	}
	off := int32(0)
	nRules := 0
	for _, id := range order {
		n := gp.nodeByID[id]
		if n == nil || gp.static[id] {
			continue
		}
		gp.inOff[id] = off
		gp.predOff[id] = off + int32(len(n.Ins))
		gp.tokOff[id] = off + int32(len(n.Ins)+len(n.Preds))
		off += int32(len(n.Ins) + len(n.Preds) + len(n.Toks))
		gp.ruleOf[id] = int32(nRules)
		nRules++
	}
	gp.numPorts = int(off)
	if mod.part != nil {
		gp.ruleDom = make([]int16, nRules)
		for id := 0; id < maxID; id++ {
			if ri := gp.ruleOf[id]; ri >= 0 {
				gp.ruleDom[ri] = int16(domOf(id))
			}
		}
	}
	// Consumer lists, in the interpreter's iteration order (graph node
	// order × EachInput order). Each entry also records the producer
	// edge behind the consumer port for the per-port metadata.
	valCons := make([][]dest, maxID)
	tokCons := make([][]dest, maxID)
	type prodEdge struct {
		node int32
		edge int32
		tok  bool
	}
	portSrc := make([]prodEdge, gp.numPorts)
	portOwnerID := make([]int32, gp.numPorts)
	for i := range portSrc {
		portSrc[i].node = -1
	}
	for _, n := range g.Nodes {
		if n.Dead || gp.static[n.ID] {
			continue
		}
		user := n
		n.EachInput(func(r *pegasus.Ref, cls pegasus.Port, idx int) {
			if !r.Valid() || gp.static[r.N.ID] {
				return
			}
			gp.dynIns[user.ID]++
			p := gp.portIndex(user, cls, idx)
			d := dest{rule: gp.ruleOf[user.ID], port: p}
			if r.Out == pegasus.OutToken {
				portSrc[p] = prodEdge{node: int32(r.N.ID), edge: int32(len(tokCons[r.N.ID])), tok: true}
				tokCons[r.N.ID] = append(tokCons[r.N.ID], d)
			} else {
				portSrc[p] = prodEdge{node: int32(r.N.ID), edge: int32(len(valCons[r.N.ID])), tok: false}
				valCons[r.N.ID] = append(valCons[r.N.ID], d)
			}
			portOwnerID[p] = int32(user.ID)
		})
	}
	// Occupancy bases follow the consumer lists in numbering order. Token
	// slots live after all value slots in one flat array, so consume and
	// capacity checks never branch on the edge class. In partitioned
	// modules each domain's sub-block of crossing counters is padded to a
	// cache-line boundary (16 int32s) so no two domains' counters
	// false-share a line.
	valOff := make([]int32, maxID)
	tokOff := make([]int32, maxID)
	vo, to := int32(0), int32(0)
	prevDom := 0
	for _, id := range order {
		if d := domOf(id); d != prevDom {
			vo = padLine(vo)
			to = padLine(to)
			prevDom = d
		}
		valOff[id] = vo
		tokOff[id] = to
		vo += int32(len(valCons[id]))
		to += int32(len(tokCons[id]))
	}
	if nDoms > 1 {
		// The token block starts on a fresh line too.
		vo = padLine(vo)
	}
	gp.numVal = int(vo)
	gp.numOcc = int(vo + to)
	for id := 0; id < maxID; id++ {
		tokOff[id] += vo
	}
	// Per-port producer metadata.
	gp.ports = make([]pmeta, gp.numPorts)
	gp.portTok = make([]bool, gp.numPorts)
	for p := range portSrc {
		src := portSrc[p]
		if src.node < 0 {
			gp.ports[p].prod = -1
			continue
		}
		gp.portTok[p] = src.tok
		if src.tok {
			gp.ports[p].occ = tokOff[src.node] + src.edge
		} else {
			gp.ports[p].occ = valOff[src.node] + src.edge
		}
		gp.ports[p].prod = gp.ruleOf[src.node]
		gp.ports[p].owner = gp.ruleOf[portOwnerID[p]]
	}
	// Lower each dynamic node to its rule.
	lw := &lowerer{mod: mod, g: g, gp: gp, memo: make([]oparg, maxID), done: make([]bool, maxID)}
	gp.rules = make([]rule, nRules)
	gp.entryRule = -1
	for id := 0; id < maxID; id++ {
		n := gp.nodeByID[id]
		if n == nil || gp.static[id] {
			continue
		}
		ri := gp.ruleOf[id]
		r := &gp.rules[ri]
		r.nodeID = int32(id)
		r.valCons = valCons[id]
		r.tokCons = tokCons[id]
		r.valCnt = int32(len(r.valCons))
		r.tokCnt = int32(len(r.tokCons))
		if r.valCnt > 0 {
			r.valD0 = r.valCons[0]
		}
		if r.tokCnt > 0 {
			r.tokD0 = r.tokCons[0]
		}
		r.valOccBase = valOff[id]
		r.tokOccBase = tokOff[id]
		r.lat = opLatencyOf(n)
		r.fireOnce = gp.dynIns[id] == 0 && n.Kind != pegasus.KEntryTok
		lw.lowerRule(n, r)
		switch r.op {
		case opBin, opUn, opConv, opMux, opCombine, opLoad, opStore, opCall, opReturn:
			r.gated = true
		}
		if len(r.preds) == 0 && len(r.toks) == 0 {
			switch {
			case r.op == opBin && len(r.ins) == 2 && r.ins[0].mode == argPort && r.ins[1].mode == argPort:
				r.shape, r.shapeA, r.shapeB = shBin2, r.ins[0].idx, r.ins[1].idx
			case r.op == opUn && len(r.ins) == 1 && r.ins[0].mode == argPort:
				r.shape, r.shapeA = shUn1, r.ins[0].idx
			case r.op == opConv && len(r.ins) == 1 && r.ins[0].mode == argPort:
				r.shape, r.shapeA = shConv1, r.ins[0].idx
			}
		}
	}
	// Pristine per-rule dynamic state: missing-input counters start at
	// the full dynamic input count (all latches empty), token generators
	// at their initial credit, gate bits baked in.
	gp.nodeInit = make([]vnode, nRules)
	for ri := range gp.rules {
		var f uint8
		if gp.rules[ri].gated {
			f |= flagGated
		}
		if gp.rules[ri].fireOnce {
			f |= flagFireOnce
		}
		gp.nodeInit[ri].flags = f
	}
	for id := 0; id < maxID; id++ {
		if n := gp.nodeByID[id]; n == nil || gp.static[id] {
			continue
		}
		ri := gp.ruleOf[id]
		gp.nodeInit[ri].missing = int32(gp.dynIns[id])
		if gp.rules[ri].op == opTokGen {
			gp.nodeInit[ri].counter = gp.rules[ri].tokN
		}
	}
	if g.Entry != nil && gp.nodeByID[g.Entry.ID] != nil && !gp.static[g.Entry.ID] {
		gp.entryRule = gp.ruleOf[g.Entry.ID]
	}
	// Seed set in graph node order (the interpreter's newActivation
	// order — seq numbering depends on it).
	for _, n := range g.Nodes {
		if !n.Dead && !gp.static[n.ID] && gp.dynIns[n.ID] == 0 && n.Kind != pegasus.KEntryTok {
			gp.seeds = append(gp.seeds, gp.ruleOf[n.ID])
		}
	}
	gp.numSlots = lw.slots
}

// lowerRule fills the kind-specific fields of one rule.
func (lw *lowerer) lowerRule(n *pegasus.Node, r *rule) {
	gp := lw.gp
	switch n.Kind {
	case pegasus.KEntryTok:
		r.op = opEntry
	case pegasus.KBinOp:
		r.op = opBin
		r.bin = n.BinOp
		r.unsigned = n.Unsigned
	case pegasus.KUnOp:
		r.op = opUn
		r.un = n.UnOp
	case pegasus.KConv:
		r.op = opConv
		r.toBits = int32(n.ToBits)
		r.convSign = n.ConvSign
	case pegasus.KMux:
		r.op = opMux
	case pegasus.KCombine:
		r.op = opCombine
		r.outTok = true
	case pegasus.KMerge:
		r.op = opMerge
		srcs, cls := n.Ins, pegasus.PortIn
		if n.TokenOnly {
			r.outTok = true
			srcs, cls = n.Toks, pegasus.PortTok
		}
		for i, src := range srcs {
			if gp.static[src.N.ID] {
				// Static merge inputs would fire unboundedly; the
				// builder never creates them.
				continue
			}
			r.srcPorts = append(r.srcPorts, gp.portIndex(n, cls, i))
		}
		return
	case pegasus.KEta:
		r.op = opEta
		r.predArg = lw.argOf(n, pegasus.PortPred, 0, n.Preds[0])
		if n.TokenOnly {
			r.outTok = true
			r.dataArg = lw.argOf(n, pegasus.PortTok, 0, n.Toks[0])
		} else {
			r.dataArg = lw.argOf(n, pegasus.PortIn, 0, n.Ins[0])
		}
		return
	case pegasus.KTokenGen:
		r.op = opTokGen
		r.outTok = true
		r.tokN = int32(n.TokN)
		r.tokPort = gp.tokOff[n.ID]
		r.predArg = lw.argOf(n, pegasus.PortPred, 0, n.Preds[0])
		return
	case pegasus.KLoad:
		r.op = opLoad
		r.bytes = int32(n.Bytes)
		r.loadSigned = n.VT.Signed
		r.needVal = len(r.valCons) > 0
	case pegasus.KStore:
		r.op = opStore
		r.bytes = int32(n.Bytes)
	case pegasus.KCall:
		r.op = opCall
		r.hasValue = n.HasValue()
		r.calleeName = n.Callee.Name
		r.callee = lw.mod.progs[n.Callee.Name]
	case pegasus.KReturn:
		r.op = opReturn
	}
	// All-inputs rules: operand lists in consume order plus the dynamic
	// readiness set.
	n.EachInput(func(rf *pegasus.Ref, cls pegasus.Port, idx int) {
		if rf.Valid() && !gp.static[rf.N.ID] {
			r.needPorts = append(r.needPorts, gp.portIndex(n, cls, idx))
		}
	})
	for i, rf := range n.Ins {
		r.ins = append(r.ins, lw.argOf(n, pegasus.PortIn, i, rf))
	}
	for i, rf := range n.Preds {
		r.preds = append(r.preds, lw.argOf(n, pegasus.PortPred, i, rf))
	}
	for i, rf := range n.Toks {
		r.toks = append(r.toks, lw.argOf(n, pegasus.PortTok, i, rf))
	}
}

// argOf lowers one input reference: static refs become immediates or
// slots, dynamic refs become ports.
func (lw *lowerer) argOf(n *pegasus.Node, cls pegasus.Port, idx int, r pegasus.Ref) oparg {
	if r.Valid() && lw.gp.static[r.N.ID] {
		return lw.staticArg(r.N)
	}
	return oparg{mode: argPort, idx: lw.gp.portIndex(n, cls, idx)}
}

// staticArg lowers a static node, memoized per graph: constant folding
// where every transitive input is a constant (or an absolute object
// address), a static-program slot otherwise.
func (lw *lowerer) staticArg(n *pegasus.Node) oparg {
	if lw.done[n.ID] {
		return lw.memo[n.ID]
	}
	a := lw.lowerStatic(n)
	lw.done[n.ID] = true
	lw.memo[n.ID] = a
	return a
}

func (lw *lowerer) newSlot() int32 {
	s := int32(lw.slots)
	lw.slots++
	return s
}

func imm(v int64) oparg  { return oparg{mode: argImm, imm: v} }
func slot(i int32) oparg { return oparg{mode: argSlot, idx: i} }

func (lw *lowerer) lowerStatic(n *pegasus.Node) oparg {
	gp := lw.gp
	layout := lw.mod.prog.Layout
	switch n.Kind {
	case pegasus.KConst:
		return imm(n.ConstVal)
	case pegasus.KParam:
		dst := lw.newSlot()
		gp.sprog = append(gp.sprog, sinstr{op: sParam, dst: dst, off: int64(n.ParamIdx)})
		return slot(dst)
	case pegasus.KAddrOf:
		if addr, ok := layout.AddressOfObject(n.Obj); ok {
			return imm(int64(addr))
		}
		dst := lw.newSlot()
		gp.sprog = append(gp.sprog, sinstr{op: sAddr, dst: dst, off: int64(layout.FrameOffset[n.Obj])})
		return slot(dst)
	case pegasus.KBinOp:
		a := lw.staticArg(n.Ins[0].N)
		b := lw.staticArg(n.Ins[1].N)
		if a.mode == argImm && b.mode == argImm {
			return imm(evalBin(n.BinOp, a.imm, b.imm, n.Unsigned))
		}
		dst := lw.newSlot()
		gp.sprog = append(gp.sprog, sinstr{op: sBin, dst: dst, a: a, b: b, bin: n.BinOp, uns: n.Unsigned})
		return slot(dst)
	case pegasus.KUnOp:
		a := lw.staticArg(n.Ins[0].N)
		if a.mode == argImm {
			return imm(evalUn(n.UnOp, a.imm))
		}
		dst := lw.newSlot()
		gp.sprog = append(gp.sprog, sinstr{op: sUn, dst: dst, a: a, un: n.UnOp})
		return slot(dst)
	case pegasus.KConv:
		a := lw.staticArg(n.Ins[0].N)
		if a.mode == argImm {
			return imm(convValue(a.imm, n.ToBits, n.ConvSign))
		}
		dst := lw.newSlot()
		gp.sprog = append(gp.sprog, sinstr{op: sConv, dst: dst, a: a, bits: int32(n.ToBits), sign: n.ConvSign})
		return slot(dst)
	case pegasus.KMux:
		// Fold away constant-false arms; a constant-true predicate makes
		// the mux a pass-through of that arm. Any unknown predicate
		// forces a runtime select over the remaining arms.
		var pairs []oparg
		for i, p := range n.Preds {
			pa := lw.staticArg(p.N)
			if pa.mode == argImm {
				if pa.imm == 0 {
					continue // this arm can never be selected
				}
				if len(pairs) == 0 {
					return lw.staticArg(n.Ins[i].N) // first arm always taken
				}
				// A constant-true arm terminates the scan: keep it as
				// the final default and stop.
				pairs = append(pairs, pa, lw.staticArg(n.Ins[i].N))
				break
			}
			pairs = append(pairs, pa, lw.staticArg(n.Ins[i].N))
		}
		if len(pairs) == 0 {
			return imm(0) // no arm can be selected: the interpreter yields 0
		}
		dst := lw.newSlot()
		gp.sprog = append(gp.sprog, sinstr{op: sMux, dst: dst, mux: pairs})
		return slot(dst)
	}
	panic("codegen: lowerStatic on dynamic node kind " + n.Kind.String())
}
