package codegen

// Module is the compiled form of a whole Pegasus program and the public
// entry point of the package. Compile once, run many times — a Module is
// immutable after Compile (except the internal state pools, which are
// concurrency-safe), so one Module may serve concurrent runs, exactly
// like dataflow.Shared on the interpreted side.

import (
	"context"
	"fmt"
	"sync"

	"spatial/internal/dataflow"
	"spatial/internal/faultsim"
	"spatial/internal/pegasus"
)

// Module holds the lowered bytecode of every function in a program.
type Module struct {
	prog  *pegasus.Program
	progs map[string]*gprog
	// numFrameClasses counts the distinct frame sizes across all graphs;
	// each gprog.frameClass indexes the VM's per-size frame free lists.
	numFrameClasses int
	// part is the domain assignment baked in by CompilePartitioned (nil
	// for sequential modules): indices are renumbered domain-contiguously
	// at lowering and every run executes behind the partitioned
	// scheduler. partWindow snapshots the partition's synchronization
	// window at compile time.
	part       *dataflow.Partition
	partWindow int64
	// vmPool recycles whole VM instances (ring buckets, frame lists,
	// memory image) across runs of this module.
	vmPool sync.Pool
}

// Compile lowers every graph of p. Lowering is two-phase — all gprog
// shells are created first, then each graph is lowered — so call rules
// can resolve their callee's lowered program regardless of map order.
func Compile(p *pegasus.Program) *Module {
	return compile(p, nil)
}

// CompilePartitioned lowers p for partitioned execution across part's
// event domains: rule, port, and occupancy indices come out
// domain-contiguous (crossing-counter blocks cache-line padded), and
// every run of the module executes behind a per-domain worker scheduler
// that preserves the sequential VM's global (time, seq) event order —
// results, diagnoses, and event streams are bit-identical to Compile's
// module and to the interpreter for any domain assignment. part must
// have been built for p. A single-domain partition compiles to a plain
// sequential module (the scheduler would be pure overhead). The
// partition's window is snapshotted here; later SetWindow calls do not
// affect this module.
func CompilePartitioned(p *pegasus.Program, part *dataflow.Partition) (*Module, error) {
	if part == nil {
		return nil, fmt.Errorf("codegen: CompilePartitioned needs a partition (use Compile for sequential modules)")
	}
	if part.Program() != p {
		return nil, fmt.Errorf("codegen: partition was built for a different program")
	}
	if part.Domains() < 2 {
		return Compile(p), nil
	}
	return compile(p, part), nil
}

func compile(p *pegasus.Program, part *dataflow.Partition) *Module {
	mod := &Module{prog: p, progs: make(map[string]*gprog, len(p.Funcs)), part: part}
	if part != nil {
		mod.partWindow = part.Window()
	}
	for name, g := range p.Funcs {
		mod.progs[name] = &gprog{g: g, name: name}
	}
	for _, gp := range mod.progs {
		lowerGraph(mod, gp)
	}
	// Assign frame-size classes (frame sizes are known only after
	// lowering). Graphs sharing a size share a free list, preserving the
	// interpreter's LIFO-per-size frame reuse exactly.
	classOf := make(map[uint32]int32)
	for _, gp := range mod.progs {
		c, ok := classOf[gp.frameSize]
		if !ok {
			c = int32(len(classOf))
			classOf[gp.frameSize] = c
		}
		gp.frameClass = c
	}
	mod.numFrameClasses = len(classOf)
	return mod
}

// Partitioned reports the number of event domains this module executes
// across (1 for sequential modules).
func (mod *Module) Partitioned() int {
	if mod.part == nil {
		return 1
	}
	return mod.part.Domains()
}

// Program returns the program this module was compiled from.
func (mod *Module) Program() *pegasus.Program { return mod.prog }

// Run executes entry(args...) on the compiled bytecode and returns the
// result value and statistics — bit-identical to dataflow.Run on the
// same program and config.
func (mod *Module) Run(entry string, args []int64, cfg dataflow.Config) (*dataflow.Result, error) {
	return mod.runVM(nil, entry, args, cfg, nil, nil)
}

// RunCtx is Run with cooperative cancellation, mirroring
// dataflow.RunCtx.
func (mod *Module) RunCtx(ctx context.Context, entry string, args []int64, cfg dataflow.Config) (*dataflow.Result, error) {
	return mod.runVM(ctx, entry, args, cfg, nil, nil)
}

// RunFaulted is Run under fault injection, mirroring
// dataflow.RunFaulted: the same injector state produces the same fault
// deliveries at the same events as the interpreter. ctx may be nil.
func (mod *Module) RunFaulted(ctx context.Context, entry string, args []int64, cfg dataflow.Config, inj *faultsim.Injector) (*dataflow.Result, error) {
	return mod.runVM(ctx, entry, args, cfg, inj, nil)
}

// RunEvents is Run with an observer invoked for every processed event,
// mirroring dataflow.RunEvents — the two streams must match element for
// element.
func (mod *Module) RunEvents(entry string, args []int64, cfg dataflow.Config,
	hook func(time, seq int64, act, node int)) (*dataflow.Result, error) {
	return mod.runVM(nil, entry, args, cfg, nil, hook)
}
