package codegen

// Module is the compiled form of a whole Pegasus program and the public
// entry point of the package. Compile once, run many times — a Module is
// immutable after Compile (except the internal state pools, which are
// concurrency-safe), so one Module may serve concurrent runs, exactly
// like dataflow.Shared on the interpreted side.

import (
	"context"
	"sync"

	"spatial/internal/dataflow"
	"spatial/internal/faultsim"
	"spatial/internal/pegasus"
)

// Module holds the lowered bytecode of every function in a program.
type Module struct {
	prog  *pegasus.Program
	progs map[string]*gprog
	// numFrameClasses counts the distinct frame sizes across all graphs;
	// each gprog.frameClass indexes the VM's per-size frame free lists.
	numFrameClasses int
	// vmPool recycles whole VM instances (ring buckets, frame lists,
	// memory image) across runs of this module.
	vmPool sync.Pool
}

// Compile lowers every graph of p. Lowering is two-phase — all gprog
// shells are created first, then each graph is lowered — so call rules
// can resolve their callee's lowered program regardless of map order.
func Compile(p *pegasus.Program) *Module {
	mod := &Module{prog: p, progs: make(map[string]*gprog, len(p.Funcs))}
	for name, g := range p.Funcs {
		mod.progs[name] = &gprog{g: g, name: name}
	}
	for _, gp := range mod.progs {
		lowerGraph(mod, gp)
	}
	// Assign frame-size classes (frame sizes are known only after
	// lowering). Graphs sharing a size share a free list, preserving the
	// interpreter's LIFO-per-size frame reuse exactly.
	classOf := make(map[uint32]int32)
	for _, gp := range mod.progs {
		c, ok := classOf[gp.frameSize]
		if !ok {
			c = int32(len(classOf))
			classOf[gp.frameSize] = c
		}
		gp.frameClass = c
	}
	mod.numFrameClasses = len(classOf)
	return mod
}

// Program returns the program this module was compiled from.
func (mod *Module) Program() *pegasus.Program { return mod.prog }

// Run executes entry(args...) on the compiled bytecode and returns the
// result value and statistics — bit-identical to dataflow.Run on the
// same program and config.
func (mod *Module) Run(entry string, args []int64, cfg dataflow.Config) (*dataflow.Result, error) {
	return mod.runVM(nil, entry, args, cfg, nil, nil)
}

// RunCtx is Run with cooperative cancellation, mirroring
// dataflow.RunCtx.
func (mod *Module) RunCtx(ctx context.Context, entry string, args []int64, cfg dataflow.Config) (*dataflow.Result, error) {
	return mod.runVM(ctx, entry, args, cfg, nil, nil)
}

// RunFaulted is Run under fault injection, mirroring
// dataflow.RunFaulted: the same injector state produces the same fault
// deliveries at the same events as the interpreter. ctx may be nil.
func (mod *Module) RunFaulted(ctx context.Context, entry string, args []int64, cfg dataflow.Config, inj *faultsim.Injector) (*dataflow.Result, error) {
	return mod.runVM(ctx, entry, args, cfg, inj, nil)
}

// RunEvents is Run with an observer invoked for every processed event,
// mirroring dataflow.RunEvents — the two streams must match element for
// element.
func (mod *Module) RunEvents(entry string, args []int64, cfg dataflow.Config,
	hook func(time, seq int64, act, node int)) (*dataflow.Result, error) {
	return mod.runVM(nil, entry, args, cfg, nil, hook)
}
