package codegen_test

// Steady-state allocation gate: after a warm-up run has sized the VM's
// ring buckets, frame free lists, activation arena, and memory image,
// repeat runs of a compiled Module must allocate (almost) nothing — the
// whole point of the flat-bytecode engine is that the hot loop touches
// no allocator. The budget is per *run*, not per event: a few fixed
// allocations (the Result, the per-run memory-system stats) are fine,
// anything that scales with events is not.

import (
	"testing"

	"spatial/internal/codegen"
	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting measures the race detector, not the VM")
	}
	w := workloads.ByName("g721_e")
	cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	mod := codegen.Compile(cp.Program)
	cfg := dataflow.DefaultConfig()
	res, err := mod.Run(w.Entry, nil, cfg) // warm-up sizes every pool
	if err != nil {
		t.Fatal(err)
	}
	events := float64(res.Stats.Events)
	perRun := testing.AllocsPerRun(10, func() {
		if _, err := mod.Run(w.Entry, nil, cfg); err != nil {
			t.Error(err)
		}
	})
	// The harness bench gate allows 0.05 allocs/event; hold the engine
	// itself to far less — a fixed handful per run, none per event.
	if perEvent := perRun / events; perEvent > 0.001 {
		t.Errorf("steady-state allocations: %.1f allocs/run = %.4f allocs/event (budget 0.001)", perRun, perEvent)
	}
	if perRun > 64 {
		t.Errorf("steady-state allocations: %.1f allocs/run (budget 64 fixed)", perRun)
	}
}
