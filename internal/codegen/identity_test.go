package codegen_test

// Differential identity against the interpreter — the compiled backend's
// core contract. Every comparison here is full-struct (Value plus every
// Stats field, including memory-system counters), not just the checksum:
// the compiled VM replays the interpreter's event algebra exactly, so any
// drift is a bug, not noise.

import (
	"context"
	"testing"

	"spatial/internal/codegen"
	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/faultsim"
	"spatial/internal/harness"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

var allLevels = []opt.Level{opt.None, opt.Basic, opt.Medium, opt.Full}

// TestResultIdentity runs the full benchmark set at every optimization
// level on both engines and requires bit-identical results.
func TestResultIdentity(t *testing.T) {
	for _, name := range harness.BenchSet {
		w := workloads.ByName(name)
		for _, lvl := range allLevels {
			cp, err := core.CompileSource(w.Source, core.WithLevel(lvl))
			if err != nil {
				t.Fatal(err)
			}
			want, err := dataflow.Run(cp.Program, w.Entry, nil, dataflow.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			got, err := codegen.Compile(cp.Program).Run(w.Entry, nil, dataflow.DefaultConfig())
			if err != nil {
				t.Fatalf("%s O%d: %v", name, lvl, err)
			}
			if *got != *want {
				t.Errorf("%s O%d mismatch:\n got %+v\nwant %+v", name, lvl, got, want)
			}
		}
	}
}

// TestEventStreamIdentity compares the two engines' full event streams —
// every processed event's (time, seq, act, node) in execution order, not
// just the end-of-run statistics. This exercises the VM's total-order
// spill path, where every event carries its global sequence number.
func TestEventStreamIdentity(t *testing.T) {
	type ev struct {
		time, seq int64
		act, node int
	}
	for _, name := range []string{"adpcm_e", "g721_e"} {
		w := workloads.ByName(name)
		cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
		if err != nil {
			t.Fatal(err)
		}
		var want []ev
		if _, err := dataflow.RunEvents(cp.Program, w.Entry, nil, dataflow.DefaultConfig(),
			func(time, seq int64, act, node int) {
				want = append(want, ev{time, seq, act, node})
			}); err != nil {
			t.Fatal(err)
		}
		i, diverged := 0, false
		_, err = codegen.Compile(cp.Program).RunEvents(w.Entry, nil, dataflow.DefaultConfig(),
			func(time, seq int64, act, node int) {
				if diverged {
					return
				}
				if i >= len(want) || want[i] != (ev{time, seq, act, node}) {
					diverged = true
					if i < len(want) {
						t.Errorf("%s: event %d: got %+v want %+v", name, i, ev{time, seq, act, node}, want[i])
					} else {
						t.Errorf("%s: event %d past interpreter stream end: %+v", name, i, ev{time, seq, act, node})
					}
					return
				}
				i++
			})
		if err != nil {
			t.Fatal(err)
		}
		if !diverged && i != len(want) {
			t.Errorf("%s: compiled stream ended at %d events, interpreter produced %d", name, i, len(want))
		}
	}
}

// TestFaultedIdentity replays the same seeded faults through both engines
// (fresh injector each, since injectors are stateful) and requires the
// identical outcome — identical Result when both complete, identical
// error text (including the rendered stuck report) when both abort, and
// identical triggered-fault logs either way.
func TestFaultedIdentity(t *testing.T) {
	w := workloads.ByName("adpcm_e")
	cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		t.Fatal(err)
	}
	mod := codegen.Compile(cp.Program)
	cfg := dataflow.DefaultConfig()
	cfg.MaxCycles = 1 << 22 // cut livelocks off fast
	mk := []struct {
		name string
		inj  func() *faultsim.Injector
	}{
		{"jitter", func() *faultsim.Injector { return faultsim.NewJitter(42, 0.05, 8) }},
		{"freeze", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.Freeze, Node: -1, Edge: -1, Nth: 17, Cycles: 40}}})
		}},
		{"drop-value", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.Drop, Node: -1, Edge: -1, Nth: 99}}})
		}},
		{"dup-value", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.Duplicate, Node: -1, Edge: -1, Nth: 55}}})
		}},
		{"mem-stretch", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.MemStretch, Node: -1, Edge: -1, Nth: 5, Cycles: 64}}})
		}},
		{"mem-fail", func() *faultsim.Injector {
			return faultsim.New(faultsim.Plan{Faults: []faultsim.Fault{
				{Op: faultsim.MemFail, Node: -1, Edge: -1, Nth: 3}}})
		}},
	}
	for _, fr := range mk {
		injI, injC := fr.inj(), fr.inj()
		want, errI := dataflow.RunFaulted(context.Background(), cp.Program, w.Entry, nil, cfg, injI)
		got, errC := mod.RunFaulted(context.Background(), w.Entry, nil, cfg, injC)
		switch {
		case (errI == nil) != (errC == nil):
			t.Errorf("%s: outcome diverged: interp err=%v, compiled err=%v", fr.name, errI, errC)
		case errI != nil:
			if errI.Error() != errC.Error() {
				t.Errorf("%s: error text diverged:\n interp  %v\n compiled %v", fr.name, errI, errC)
			}
		case *want != *got:
			t.Errorf("%s: result diverged:\n got %+v\nwant %+v", fr.name, got, want)
		}
		ti, tc := injI.Triggered(), injC.Triggered()
		if len(ti) != len(tc) {
			t.Errorf("%s: triggered-fault logs diverged: interp %v, compiled %v", fr.name, ti, tc)
		}
	}
}
