//go:build race

package codegen_test

// The race detector instruments synchronization and shadow-memory paths
// that allocate even when the instrumented code does not, so counting
// allocations under -race measures the detector, not the VM.
const raceEnabled = true
