package codegen_test

// Paired engine benchmarks, reported in ns/event (the unit BENCH.json
// and EXPERIMENTS.md use). Run both to measure the compiled backend's
// speedup on this host:
//
//	go test ./internal/codegen/ -run xxx -bench 'Interp|Codegen' -benchtime 2s

import (
	"testing"

	"spatial/internal/codegen"
	"spatial/internal/core"
	"spatial/internal/dataflow"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

func BenchmarkInterp(b *testing.B) {
	w := workloads.ByName("g721_e")
	cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		b.Fatal(err)
	}
	sh := dataflow.Prebuild(cp.Program)
	res, err := sh.RunCtx(nil, w.Entry, nil, dataflow.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.RunCtx(nil, w.Entry, nil, dataflow.DefaultConfig())
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(res.Stats.Events), "ns/event")
}

func BenchmarkCodegen(b *testing.B) {
	w := workloads.ByName("g721_e")
	cp, err := core.CompileSource(w.Source, core.WithLevel(opt.Full))
	if err != nil {
		b.Fatal(err)
	}
	mod := codegen.Compile(cp.Program)
	res, err := mod.Run(w.Entry, nil, dataflow.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.Run(w.Entry, nil, dataflow.DefaultConfig())
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(res.Stats.Events), "ns/event")
}
