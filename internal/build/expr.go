package build

import (
	"fmt"

	"spatial/internal/alias"
	"spatial/internal/cminor"
	"spatial/internal/pegasus"
)

// lowerExpr lowers e under the current block's path predicate and returns
// the node output carrying its value. Pure subexpressions are emitted
// speculatively (unpredicated); only memory accesses and calls take the
// path predicate, matching the hyperblock predication model of Section 4.
func (b *fnBuilder) lowerExpr(e cminor.Expr) pegasus.Ref {
	switch e := e.(type) {
	case *cminor.NumberLit:
		return pegasus.V(b.constNode(e.Val, pegasus.VTypeOf(e.Typ)))
	case *cminor.StringLit:
		return pegasus.V(b.addrOfNode(b.an.StringObject(e.Index)))
	case *cminor.VarRef:
		return b.lowerVarRef(e)
	case *cminor.BinExpr:
		return b.lowerBinExpr(e)
	case *cminor.UnExpr:
		x := b.lowerExpr(e.X)
		switch e.Op {
		case cminor.OpNeg:
			return pegasus.V(b.unOp(pegasus.UNeg, x, pegasus.VTypeOf(e.Typ)))
		case cminor.OpBitNot:
			return pegasus.V(b.unOp(pegasus.UBitNot, x, pegasus.VTypeOf(e.Typ)))
		case cminor.OpNot:
			return pegasus.V(b.unOp(pegasus.UNot, x, pegasus.Pred))
		}
	case *cminor.CondExpr:
		c := b.boolize(b.lowerExpr(e.Cond))
		t := b.lowerExpr(e.Then)
		f := b.lowerExpr(e.Else)
		mux := b.g.NewNode(pegasus.KMux, b.hyper)
		mux.VT = pegasus.VTypeOf(e.Typ)
		mux.Pos = b.pos
		mux.Ins = []pegasus.Ref{t, f}
		mux.Preds = []pegasus.Ref{pegasus.V(c), pegasus.V(b.g.PredNot(c))}
		return pegasus.V(mux)
	case *cminor.IndexExpr:
		addr := b.indexAddr(e)
		if e.Typ.Kind == cminor.TypeArray {
			// Indexing into a row of a nested array yields its address.
			return addr
		}
		return pegasus.V(b.load(addr, int(e.Typ.Size()),
			e.Typ.IsInteger() && e.Typ.Signed, b.an.AddrObjects(e.Array)))
	case *cminor.DerefExpr:
		addr := b.lowerExpr(e.X)
		return pegasus.V(b.load(addr, int(e.Typ.Size()),
			e.Typ.IsInteger() && e.Typ.Signed, b.an.AddrObjects(e.X)))
	case *cminor.AddrExpr:
		return b.lowerAddr(e.X)
	case *cminor.CastExpr:
		return b.conv(b.lowerExpr(e.X), e.To)
	case *cminor.CallExpr:
		return b.emitCall(e)
	case *cminor.AssignExpr:
		return b.assign(e.LHS, e.RHS)
	}
	panic(fmt.Sprintf("build: cannot lower %T", e))
}

func (b *fnBuilder) lowerVarRef(e *cminor.VarRef) pegasus.Ref {
	d := e.Decl
	obj, mem := b.an.ObjectOf(d)
	if d.Type.Kind == cminor.TypeArray {
		return pegasus.V(b.addrOfNode(obj))
	}
	if mem {
		// Address-taken scalar: lives in the frame, every read is a load.
		dt := d.Type.Decay()
		return pegasus.V(b.load(pegasus.V(b.addrOfNode(obj)), int(dt.Size()),
			dt.IsInteger() && dt.Signed, alias.SetOf(obj)))
	}
	if r, ok := b.env[d]; ok {
		return r
	}
	// Read of a never-assigned register variable: defined to be 0.
	return pegasus.V(b.constNode(0, pegasus.VTypeOf(d.Type.Decay())))
}

func (b *fnBuilder) lowerBinExpr(e *cminor.BinExpr) pegasus.Ref {
	if e.Op == cminor.OpLogAnd || e.Op == cminor.OpLogOr {
		// The checker guarantees both operands are side-effect free, so the
		// short-circuit form lowers to eager predicate algebra (and the BDD
		// canonicalizes the result against the path predicates).
		l := b.boolize(b.lowerExpr(e.L))
		r := b.boolize(b.lowerExpr(e.R))
		if e.Op == cminor.OpLogAnd {
			return pegasus.V(b.g.PredAnd(l, r))
		}
		return pegasus.V(b.g.PredOr(l, r))
	}
	lt, rt := e.L.Type().Decay(), e.R.Type().Decay()
	l := b.lowerExpr(e.L)
	r := b.lowerExpr(e.R)
	switch {
	case lt.IsPointer() && rt.IsInteger() && (e.Op == cminor.OpAdd || e.Op == cminor.OpSub):
		r = b.scaleIndex(r, lt.Elem.Size())
	case rt.IsPointer() && lt.IsInteger() && e.Op == cminor.OpAdd:
		l = b.scaleIndex(l, rt.Elem.Size())
	case lt.IsPointer() && rt.IsPointer() && e.Op == cminor.OpSub:
		d := pegasus.V(b.binOp(cminor.OpSub, l, r, pegasus.I32, false))
		if sz := lt.Elem.Size(); sz > 1 {
			d = pegasus.V(b.binOp(cminor.OpDiv, d,
				pegasus.V(b.constNode(sz, pegasus.I32)), pegasus.I32, false))
		}
		return d
	}
	vt := pegasus.VTypeOf(e.Typ)
	if e.Op.IsComparison() {
		vt = pegasus.Pred
	}
	return pegasus.V(b.binOp(e.Op, l, r, vt, isUnsigned(e, lt, rt)))
}

// isUnsigned mirrors the interpreter's operand-width rule: comparisons go
// unsigned when either side is a pointer or an unsigned integer of at
// least 32 bits (narrower unsigned values fit in a signed compare); other
// operators follow the expression's own type.
func isUnsigned(e *cminor.BinExpr, lt, rt *cminor.Type) bool {
	if e.Op.IsComparison() {
		for _, t := range []*cminor.Type{lt, rt} {
			if t.IsPointer() {
				return true
			}
			if t.IsInteger() && !t.Signed && t.Bits >= 32 {
				return true
			}
		}
		return false
	}
	return e.Typ.IsInteger() && !e.Typ.Signed
}

// scaleIndex multiplies an index by the element size of pointer
// arithmetic; a size of one needs no node.
func (b *fnBuilder) scaleIndex(r pegasus.Ref, sz int64) pegasus.Ref {
	if sz <= 1 {
		return r
	}
	return pegasus.V(b.binOp(cminor.OpMul, r,
		pegasus.V(b.constNode(sz, pegasus.I32)), pegasus.I32, false))
}

// indexAddr computes &a[i] as base + i*size, where size is the indexed
// element's type size (rows of nested arrays scale by the row size).
func (b *fnBuilder) indexAddr(e *cminor.IndexExpr) pegasus.Ref {
	base := b.lowerExpr(e.Array)
	idx := b.scaleIndex(b.lowerExpr(e.Index), e.Typ.Size())
	return pegasus.V(b.binOp(cminor.OpAdd, base, idx, pegasus.U32, false))
}

// lowerAddr lowers the lvalue lv to its address.
func (b *fnBuilder) lowerAddr(lv cminor.Expr) pegasus.Ref {
	switch lv := lv.(type) {
	case *cminor.VarRef:
		obj, _ := b.an.ObjectOf(lv.Decl)
		return pegasus.V(b.addrOfNode(obj))
	case *cminor.IndexExpr:
		return b.indexAddr(lv)
	case *cminor.DerefExpr:
		return b.lowerExpr(lv.X)
	}
	panic(fmt.Sprintf("build: cannot take address of %T", lv))
}

// assign lowers an assignment and returns the raw (pre-truncation) value
// of the right-hand side, which is the value of an assignment expression.
func (b *fnBuilder) assign(lhs, rhs cminor.Expr) pegasus.Ref {
	val := b.lowerExpr(rhs)
	switch lv := lhs.(type) {
	case *cminor.VarRef:
		d := lv.Decl
		if obj, mem := b.an.ObjectOf(d); mem {
			b.store(pegasus.V(b.addrOfNode(obj)), val,
				int(d.Type.Decay().Size()), alias.SetOf(obj))
			return val
		}
		b.env[d] = b.convAssign(val, d.Type)
		return val
	case *cminor.IndexExpr:
		b.store(b.indexAddr(lv), val, int(lv.Typ.Size()), b.an.AddrObjects(lv.Array))
		return val
	case *cminor.DerefExpr:
		b.store(b.lowerExpr(lv.X), val, int(lv.Typ.Size()), b.an.AddrObjects(lv.X))
		return val
	}
	panic(fmt.Sprintf("build: bad assignment target %T", lhs))
}

// conv truncates/extends r to type t, mirroring the interpreter's
// truncType at casts, calls, and returns: sub-32-bit integers narrow with
// their own signedness, everything else canonicalizes to signed 32 bits.
func (b *fnBuilder) conv(r pegasus.Ref, t *cminor.Type) pegasus.Ref {
	t = t.Decay()
	bits, sign := 32, true
	if t.IsInteger() {
		bits, sign = t.Bits, t.Signed
	}
	n := b.g.NewNode(pegasus.KConv, b.hyper)
	n.VT = pegasus.VTypeOf(t)
	if n.VT.Bits == 0 {
		n.VT = pegasus.I32
	}
	n.FromBits = 32
	n.ToBits = bits
	n.ConvSign = sign
	n.Ins = []pegasus.Ref{r}
	n.Pos = b.pos
	return pegasus.V(n)
}

// convAssign narrows a value stored into a register variable. 32-bit
// destinations skip the node: every consumer observes at most the low 32
// bits, which the producer already fixes.
func (b *fnBuilder) convAssign(r pegasus.Ref, t *cminor.Type) pegasus.Ref {
	t = t.Decay()
	if t.IsInteger() && t.Bits < 32 {
		return b.conv(r, t)
	}
	return r
}

func (b *fnBuilder) binOp(op cminor.BinOpKind, l, r pegasus.Ref, vt pegasus.VType, unsigned bool) *pegasus.Node {
	n := b.g.NewNode(pegasus.KBinOp, b.hyper)
	n.BinOp = op
	n.Unsigned = unsigned
	n.VT = vt
	n.Ins = []pegasus.Ref{l, r}
	n.Pos = b.pos
	return n
}

func (b *fnBuilder) unOp(op pegasus.UnOpKind, x pegasus.Ref, vt pegasus.VType) *pegasus.Node {
	n := b.g.NewNode(pegasus.KUnOp, b.hyper)
	n.UnOp = op
	n.VT = vt
	n.Ins = []pegasus.Ref{x}
	n.Pos = b.pos
	return n
}
