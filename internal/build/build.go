// Package build lowers checked cMinor programs into Pegasus dataflow
// graphs: the CASH front end of the paper (Sections 3–4). For every
// function it consumes the CFG hyperblock partition, converts each
// hyperblock into predicated SSA (path predicates canonicalized through
// the per-hyperblock BDD spaces), places merge/eta pairs on hyperblock
// boundaries and loop back edges, and threads loads, stores, and calls
// with a conservative program-order token network per location class.
// The result satisfies pegasus.Verify and runs unoptimized on both the
// dataflow simulator and the sequential interpreter; the opt passes
// refine it from there.
package build

import (
	"fmt"

	"spatial/internal/alias"
	"spatial/internal/cfg"
	"spatial/internal/cminor"
	"spatial/internal/pegasus"
)

// Compile lowers every defined function of prog into a Pegasus graph and
// assembles the whole-program memory layout and alias analysis.
func Compile(prog *cminor.Program) (*pegasus.Program, error) {
	an, err := alias.Analyze(prog)
	if err != nil {
		return nil, err
	}
	layout, err := pegasus.BuildLayout(prog, an)
	if err != nil {
		return nil, err
	}
	p := &pegasus.Program{
		Source: prog,
		Alias:  an,
		Funcs:  make(map[string]*pegasus.Graph, len(prog.Funcs)),
		Layout: layout,
	}
	for _, fn := range prog.Funcs {
		if fn.Body == nil {
			continue
		}
		g, err := buildFunc(an, fn)
		if err != nil {
			return nil, fmt.Errorf("build %s: %w", fn.Name, err)
		}
		if err := g.Verify(); err != nil {
			return nil, fmt.Errorf("build %s: %w", fn.Name, err)
		}
		p.Funcs[fn.Name] = g
	}
	return p, nil
}

func buildFunc(an *alias.Analysis, fn *cminor.FuncDecl) (*pegasus.Graph, error) {
	cg, err := cfg.Build(fn)
	if err != nil {
		return nil, err
	}
	b := &fnBuilder{
		an:       an,
		fn:       fn,
		cg:       cg,
		g:        pegasus.NewGraph(fn),
		params:   map[*cminor.VarDecl]*pegasus.Node{},
		pathPred: map[*cfg.Block]*pegasus.Node{},
		inSnaps:  map[*cfg.Block][]*snap{},
		headers:  map[*cfg.Block]*headerInfo{},
		consts:   map[constKey]*pegasus.Node{},
		addrs:    map[alias.ObjID]*pegasus.Node{},
		bools:    map[boolKey]*pegasus.Node{},
	}
	b.build()
	return b.g, nil
}
