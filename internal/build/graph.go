package build

import (
	"sort"

	"spatial/internal/alias"
	"spatial/internal/cfg"
	"spatial/internal/cminor"
	"spatial/internal/pegasus"
)

// snap records the builder state at one outgoing CFG edge: the edge
// predicate in the source hyperblock, the register environment, and the
// token state. Edges staying inside a hyperblock carry the full chain
// state (chains); edges crossing a hyperblock boundary or closing a loop
// collapse each class to a single token (toks) because etas carry exactly
// one.
type snap struct {
	pred   *pegasus.Node
	hyper  int
	env    map[*cminor.VarDecl]pegasus.Ref
	toks   map[alias.ClassID]pegasus.Ref
	chains map[alias.ClassID]*tokChain
}

// headerInfo holds a loop hyperblock's merge nodes so back edges, which
// are reached later in the walk, can append their etas.
type headerInfo struct {
	waveMerge *pegasus.Node
	varMerge  map[*cminor.VarDecl]*pegasus.Node
	tokMerge  map[alias.ClassID]*pegasus.Node
	backPreds []*pegasus.Node
}

// retSite is one TermRet block: its predicate, converted return value,
// and token boundary, which the exit hyperblock merges together.
type retSite struct {
	hyper int
	pred  *pegasus.Node
	val   pegasus.Ref
	toks  map[alias.ClassID]pegasus.Ref
}

// tokChain is the running token state of one location class along the
// current control path. Sibling branches of a hyperblock fork this state
// and joins union it (every operation fires each wave, squashed or not,
// so tokens from all branches arrive): writes is the current write
// frontier, reads the loads issued against it, and covered marks frontier
// writes some read already succeeds. Loads wait on the whole write
// frontier (never on other reads); stores collect the outstanding reads
// plus any still-uncovered writes.
type tokChain struct {
	writes  []pegasus.Ref
	reads   []pegasus.Ref
	covered map[pegasus.Ref]bool
}

type constKey struct {
	val    int64
	bits   int
	signed bool
}

type boolKey struct {
	n     *pegasus.Node
	hyper int
}

type fnBuilder struct {
	an *alias.Analysis
	fn *cminor.FuncDecl
	cg *cfg.Graph
	g  *pegasus.Graph

	exitHyper int
	classes   []alias.ClassID
	vars      []*cminor.VarDecl
	maxRead   map[*cminor.VarDecl]int

	params   map[*cminor.VarDecl]*pegasus.Node
	truePred []*pegasus.Node
	pathPred map[*cfg.Block]*pegasus.Node
	inSnaps  map[*cfg.Block][]*snap
	headers  map[*cfg.Block]*headerInfo
	consts   map[constKey]*pegasus.Node
	addrs    map[alias.ObjID]*pegasus.Node
	bools    map[boolKey]*pegasus.Node

	retSites []retSite

	// Walking state for the current block.
	hyper int
	pred  *pegasus.Node
	pos   cminor.Pos
	env   map[*cminor.VarDecl]pegasus.Ref
	tok   map[alias.ClassID]*tokChain
}

func (b *fnBuilder) build() {
	for _, hb := range b.cg.Hypers {
		b.g.NewHyper(hb.IsLoopHeader)
	}
	b.exitHyper = len(b.g.Hypers)
	b.g.NewHyper(false)
	b.truePred = make([]*pegasus.Node, len(b.g.Hypers))

	b.g.Entry = b.g.NewNode(pegasus.KEntryTok, 0)
	for i, p := range b.fn.Params {
		n := b.g.NewNode(pegasus.KParam, 0)
		n.ParamIdx = i
		n.VT = pegasus.VTypeOf(p.Type.Decay())
		n.Pos = p.Pos
		b.g.Params = append(b.g.Params, n)
		b.params[p] = n
	}
	b.collectVars()
	b.collectClasses()

	for _, hb := range b.cg.Hypers {
		b.buildHyper(hb)
	}
	b.setLoopPreds()
	b.buildReturn()
}

// collectVars gathers the register-resident variables in a deterministic
// order and records, per variable, the highest hyperblock that reads it;
// merges circulate a variable only through hyperblocks at or below that
// bound.
func (b *fnBuilder) collectVars() {
	b.maxRead = map[*cminor.VarDecl]int{}
	isReg := func(v *cminor.VarDecl) bool {
		_, mem := b.an.ObjectOf(v)
		return !mem
	}
	for _, p := range b.fn.Params {
		if isReg(p) {
			b.vars = append(b.vars, p)
		}
	}
	for _, l := range b.fn.Locals {
		if isReg(l) {
			b.vars = append(b.vars, l)
		}
	}
	note := func(e cminor.Expr, h int) {
		eachVarRead(e, func(d *cminor.VarDecl) {
			if isReg(d) && b.maxRead[d] < h {
				b.maxRead[d] = h
			}
		})
	}
	for _, blk := range b.cg.Blocks {
		h := blk.Hyper.ID
		for _, ins := range blk.Instrs {
			note(ins.RHS, h)
			// The LHS root is a definition, but index and pointer
			// subexpressions of a memory lvalue are reads.
			switch lv := ins.LHS.(type) {
			case *cminor.IndexExpr:
				note(lv.Array, h)
				note(lv.Index, h)
			case *cminor.DerefExpr:
				note(lv.X, h)
			}
		}
		if blk.Term.Cond != nil {
			note(blk.Term.Cond, h)
		}
		if blk.Term.Ret != nil {
			note(blk.Term.Ret, h)
		}
	}
	// Loop-carried liveness: a variable live into a loop header's merges
	// must circulate through every hyperblock of the loop, so the back
	// edges from the latches can return it. Extend each read bound that
	// lands inside a loop to the loop's last hyperblock, to fixpoint
	// (loops nest).
	type span struct{ header, max int }
	var spans []span
	for _, l := range b.cg.Loops {
		s := span{header: l.Header.Hyper.ID, max: l.Header.Hyper.ID}
		for blk := range l.Blocks {
			if blk.Hyper.ID > s.max {
				s.max = blk.Hyper.ID
			}
		}
		spans = append(spans, s)
	}
	for changed := true; changed; {
		changed = false
		for _, v := range b.vars {
			for _, s := range spans {
				if b.maxRead[v] >= s.header && b.maxRead[v] < s.max {
					b.maxRead[v] = s.max
					changed = true
				}
			}
		}
	}
}

// eachVarRead walks e and reports every VarRef occurrence (assignment
// roots never reach here; the normalizer keeps assignments out of
// expressions).
func eachVarRead(e cminor.Expr, f func(*cminor.VarDecl)) {
	switch e := e.(type) {
	case nil:
		return
	case *cminor.VarRef:
		f(e.Decl)
	case *cminor.BinExpr:
		eachVarRead(e.L, f)
		eachVarRead(e.R, f)
	case *cminor.UnExpr:
		eachVarRead(e.X, f)
	case *cminor.CondExpr:
		eachVarRead(e.Cond, f)
		eachVarRead(e.Then, f)
		eachVarRead(e.Else, f)
	case *cminor.IndexExpr:
		eachVarRead(e.Array, f)
		eachVarRead(e.Index, f)
	case *cminor.DerefExpr:
		eachVarRead(e.X, f)
	case *cminor.AddrExpr:
		eachVarRead(e.X, f)
	case *cminor.CastExpr:
		eachVarRead(e.X, f)
	case *cminor.CallExpr:
		for _, a := range e.Args {
			eachVarRead(a, f)
		}
	case *cminor.AssignExpr:
		eachVarRead(e.RHS, f)
		eachVarRead(e.LHS, f)
	case *cminor.IncDecExpr:
		eachVarRead(e.X, f)
	}
}

// collectClasses selects the location classes this function's token
// network must thread: every class its transitive reads/writes touch,
// except classes made entirely of immutable objects (const accesses need
// no ordering, paper Section 4.2).
func (b *fnBuilder) collectClasses() {
	touched := b.an.FuncReads(b.fn)
	touched.Union(b.an.FuncWrites(b.fn))
	mutable := map[alias.ClassID]bool{}
	for _, o := range b.an.AllObjects().Elems() {
		// Unknown external memory is always mutable.
		if !b.an.IsConstSet(alias.SetOf(o)) {
			mutable[b.an.ClassOf(o)] = true
		}
	}
	seen := map[alias.ClassID]bool{}
	for _, cl := range b.an.ClassesOf(touched) {
		if mutable[cl] && !seen[cl] {
			seen[cl] = true
			b.classes = append(b.classes, cl)
		}
	}
	sort.Slice(b.classes, func(i, j int) bool { return b.classes[i] < b.classes[j] })
}

func (b *fnBuilder) buildHyper(hb *cfg.Hyperblock) {
	h := hb.ID
	b.hyper = h
	if h == 0 {
		b.truePred[0] = b.g.ConstPred(0, true)
		b.env = map[*cminor.VarDecl]pegasus.Ref{}
		for _, p := range b.fn.Params {
			if n, ok := b.params[p]; ok {
				if _, mem := b.an.ObjectOf(p); !mem {
					b.env[p] = pegasus.V(n)
				}
			}
		}
		b.tok = map[alias.ClassID]*tokChain{}
		for _, cl := range b.classes {
			b.tok[cl] = newChain(pegasus.T(b.g.Entry))
		}
		b.pred = b.truePred[0]
		b.spillParams()
	} else {
		b.openHyper(hb)
	}
	for _, blk := range hb.Blocks {
		b.buildBlock(blk, hb)
	}
}

// openHyper builds the control, value, and token merges of a non-entry
// hyperblock from the snapshots of its incoming forward edges. Loop
// headers additionally register a headerInfo so back edges can append
// their etas when the walk reaches the latches.
func (b *fnBuilder) openHyper(hb *cfg.Hyperblock) {
	h := hb.ID
	snaps := b.inSnaps[hb.Seed]
	wm := b.g.NewNode(pegasus.KMerge, h)
	wm.VT = pegasus.Pred
	for _, s := range snaps {
		eta := b.valueEta(s.hyper, s.pred, pegasus.V(b.truePred[s.hyper]), pegasus.Pred)
		wm.Ins = append(wm.Ins, pegasus.V(eta))
	}
	b.g.RegisterTruePred(h, wm)
	b.truePred[h] = wm
	b.pred = wm

	b.env = map[*cminor.VarDecl]pegasus.Ref{}
	varMerge := map[*cminor.VarDecl]*pegasus.Node{}
	for _, v := range b.vars {
		if b.maxRead[v] < h {
			continue
		}
		vt := pegasus.VTypeOf(v.Type.Decay())
		m := b.g.NewNode(pegasus.KMerge, h)
		m.VT = vt
		for _, s := range snaps {
			eta := b.valueEta(s.hyper, s.pred, b.snapVal(s, v), vt)
			m.Ins = append(m.Ins, pegasus.V(eta))
		}
		b.env[v] = pegasus.V(m)
		varMerge[v] = m
	}

	b.tok = map[alias.ClassID]*tokChain{}
	tokMerge := map[alias.ClassID]*pegasus.Node{}
	for _, cl := range b.classes {
		tm := b.g.NewNode(pegasus.KMerge, h)
		tm.TokenOnly = true
		tm.TokClass = cl
		for _, s := range snaps {
			eta := b.tokenEta(s.hyper, s.pred, s.toks[cl], cl)
			tm.Toks = append(tm.Toks, pegasus.T(eta))
		}
		b.tok[cl] = newChain(pegasus.T(tm))
		tokMerge[cl] = tm
	}

	if hb.IsLoopHeader {
		b.headers[hb.Seed] = &headerInfo{waveMerge: wm, varMerge: varMerge, tokMerge: tokMerge}
	}
}

func (b *fnBuilder) buildBlock(blk *cfg.Block, hb *cfg.Hyperblock) {
	if blk != hb.Seed {
		b.joinBlock(blk)
	} else {
		b.pathPred[blk] = b.pred
	}
	for _, ins := range blk.Instrs {
		b.pos = ins.Pos
		if ins.LHS == nil {
			b.lowerExpr(ins.RHS)
		} else {
			b.assign(ins.LHS, ins.RHS)
		}
	}
	switch blk.Term.Kind {
	case cfg.TermRet:
		b.lowerReturn(blk.Term.Ret)
	case cfg.TermGoto:
		b.outEdge(blk.Term.Then, b.pred)
	case cfg.TermIf:
		c := b.boolize(b.lowerExpr(blk.Term.Cond))
		b.outEdge(blk.Term.Then, b.g.PredAnd(b.pred, c))
		b.outEdge(blk.Term.Else, b.g.PredAndNot(b.pred, c))
	}
}

// joinBlock computes the path predicate and register environment of an
// intra-hyperblock join from its incoming edge snapshots: the predicate
// is the disjunction of the edge predicates, and each variable whose
// definitions differ across edges gets a decoded mux keyed by them.
func (b *fnBuilder) joinBlock(blk *cfg.Block) {
	snaps := b.inSnaps[blk]
	p := snaps[0].pred
	for _, s := range snaps[1:] {
		p = b.g.PredOr(p, s.pred)
	}
	b.pred = p
	b.pathPred[blk] = p
	b.joinToks(snaps)
	if len(snaps) == 1 {
		b.env = copyEnv(snaps[0].env)
		return
	}
	b.env = map[*cminor.VarDecl]pegasus.Ref{}
	for _, v := range b.vars {
		if b.maxRead[v] < b.hyper {
			continue
		}
		present := false
		for _, s := range snaps {
			if _, ok := s.env[v]; ok {
				present = true
				break
			}
		}
		if !present {
			continue
		}
		first := b.snapVal(snaps[0], v)
		same := true
		for _, s := range snaps[1:] {
			if b.snapVal(s, v) != first {
				same = false
				break
			}
		}
		if same {
			b.env[v] = first
			continue
		}
		mux := b.g.NewNode(pegasus.KMux, b.hyper)
		mux.VT = pegasus.VTypeOf(v.Type.Decay())
		for _, s := range snaps {
			mux.Ins = append(mux.Ins, b.snapVal(s, v))
			mux.Preds = append(mux.Preds, pegasus.V(s.pred))
		}
		b.env[v] = pegasus.V(mux)
	}
}

// outEdge records the state snapshot of one CFG edge. Forward edges stash
// it for the target's merges; back edges (the target is a loop header
// whose merges already exist) append their etas immediately.
func (b *fnBuilder) outEdge(to *cfg.Block, pred *pegasus.Node) {
	s := &snap{pred: pred, hyper: b.hyper, env: copyEnv(b.env)}
	hi := b.headers[to]
	if hi == nil && to.Hyper.ID == b.hyper {
		// Intra-hyperblock edge: fork the full token state so sibling
		// branches order independently against the common frontier.
		s.chains = copyChains(b.tok)
		b.inSnaps[to] = append(b.inSnaps[to], s)
		return
	}
	s.toks = b.boundaries()
	if hi == nil {
		b.inSnaps[to] = append(b.inSnaps[to], s)
		return
	}
	wave := b.valueEta(s.hyper, pred, pegasus.V(b.truePred[s.hyper]), pegasus.Pred)
	hi.waveMerge.Ins = append(hi.waveMerge.Ins, pegasus.V(wave))
	for _, v := range b.vars {
		m := hi.varMerge[v]
		if m == nil {
			continue
		}
		eta := b.valueEta(s.hyper, pred, b.snapVal(s, v), m.VT)
		m.Ins = append(m.Ins, pegasus.V(eta))
	}
	for _, cl := range b.classes {
		eta := b.tokenEta(s.hyper, pred, s.toks[cl], cl)
		hi.tokMerge[cl].Toks = append(hi.tokMerge[cl].Toks, pegasus.T(eta))
	}
	hi.backPreds = append(hi.backPreds, pred)
}

// setLoopPreds records, per loop hyperblock, the node computing "the loop
// takes another iteration" — defined only when every latch predicate
// lives in the header's own hyperblock (the shape licm and the pipeline
// passes understand).
func (b *fnBuilder) setLoopPreds() {
	for _, hb := range b.cg.Hypers {
		hi := b.headers[hb.Seed]
		if hi == nil {
			continue
		}
		h := hb.ID
		var lp *pegasus.Node
		ok := len(hi.backPreds) > 0
		for _, p := range hi.backPreds {
			if p.Hyper != h {
				ok = false
				break
			}
			if lp == nil {
				lp = p
			} else {
				lp = b.g.PredOr(lp, p)
			}
		}
		if ok {
			b.g.Hypers[h].LoopPred = lp
		}
	}
}

func (b *fnBuilder) lowerReturn(ret cminor.Expr) {
	site := retSite{hyper: b.hyper, pred: b.pred, toks: b.boundaries()}
	if b.fn.Ret.Kind != cminor.TypeVoid {
		var v pegasus.Ref
		if ret != nil {
			v = b.lowerExpr(ret)
		} else {
			// Fall-off return in a non-void function yields 0.
			v = pegasus.V(b.constNode(0, pegasus.VTypeOf(b.fn.Ret)))
		}
		site.val = b.conv(v, b.fn.Ret)
	}
	b.retSites = append(b.retSites, site)
}

// buildReturn assembles the exit hyperblock: a value merge over the
// return sites' etas, one token merge per class combined into the
// procedure's final token, and the KReturn node. A function with no
// reachable return (an infinite loop) falls back to the entry token.
func (b *fnBuilder) buildReturn() {
	ret := b.g.NewNode(pegasus.KReturn, b.exitHyper)
	b.g.Ret = ret
	if len(b.retSites) == 0 {
		ret.Toks = []pegasus.Ref{pegasus.T(b.g.Entry)}
		return
	}
	if b.fn.Ret.Kind != cminor.TypeVoid {
		m := b.g.NewNode(pegasus.KMerge, b.exitHyper)
		m.VT = pegasus.VTypeOf(b.fn.Ret)
		for _, s := range b.retSites {
			eta := b.valueEta(s.hyper, s.pred, s.val, m.VT)
			m.Ins = append(m.Ins, pegasus.V(eta))
		}
		ret.Ins = []pegasus.Ref{pegasus.V(m)}
	}
	if len(b.classes) == 0 {
		ret.Toks = []pegasus.Ref{pegasus.T(b.g.Entry)}
		return
	}
	var finals []pegasus.Ref
	for _, cl := range b.classes {
		tm := b.g.NewNode(pegasus.KMerge, b.exitHyper)
		tm.TokenOnly = true
		tm.TokClass = cl
		for _, s := range b.retSites {
			eta := b.tokenEta(s.hyper, s.pred, s.toks[cl], cl)
			tm.Toks = append(tm.Toks, pegasus.T(eta))
		}
		finals = append(finals, pegasus.T(tm))
	}
	if len(finals) == 1 {
		ret.Toks = finals
		return
	}
	cmb := b.g.NewNode(pegasus.KCombine, b.exitHyper)
	cmb.TokClass = -1
	cmb.Toks = finals
	ret.Toks = []pegasus.Ref{pegasus.T(cmb)}
}

// --- small node factories ---

func (b *fnBuilder) valueEta(hyper int, pred *pegasus.Node, data pegasus.Ref, vt pegasus.VType) *pegasus.Node {
	n := b.g.NewNode(pegasus.KEta, hyper)
	n.VT = vt
	n.Ins = []pegasus.Ref{data}
	n.Preds = []pegasus.Ref{pegasus.V(pred)}
	return n
}

func (b *fnBuilder) tokenEta(hyper int, pred *pegasus.Node, tok pegasus.Ref, cl alias.ClassID) *pegasus.Node {
	n := b.g.NewNode(pegasus.KEta, hyper)
	n.TokenOnly = true
	n.TokClass = cl
	n.Toks = []pegasus.Ref{tok}
	n.Preds = []pegasus.Ref{pegasus.V(pred)}
	return n
}

func (b *fnBuilder) constNode(val int64, vt pegasus.VType) *pegasus.Node {
	// Predicate-typed constants go through ConstPred so the BDD tables
	// stay canonical; everything else is interned globally (constants are
	// static sources usable from any hyperblock).
	if vt.Bits == 1 {
		return b.g.ConstPred(b.hyper, val != 0)
	}
	k := constKey{val: val, bits: vt.Bits, signed: vt.Signed}
	if n, ok := b.consts[k]; ok {
		return n
	}
	n := b.g.NewNode(pegasus.KConst, 0)
	n.VT = vt
	n.ConstVal = val
	b.consts[k] = n
	return n
}

func (b *fnBuilder) addrOfNode(obj alias.ObjID) *pegasus.Node {
	if n, ok := b.addrs[obj]; ok {
		return n
	}
	n := b.g.NewNode(pegasus.KAddrOf, 0)
	n.VT = pegasus.U32
	n.Obj = obj
	b.addrs[obj] = n
	return n
}

// boolize turns a lowered condition into a 1-bit predicate node of the
// current hyperblock. Values computed in other hyperblocks are wrapped in
// a local UBool even when already 1-bit: BDD references are only
// meaningful within one hyperblock's space.
func (b *fnBuilder) boolize(r pegasus.Ref) *pegasus.Node {
	n := r.N
	if n.Kind == pegasus.KConst {
		return b.g.ConstPred(b.hyper, n.ConstVal != 0)
	}
	if n.VT.Bits == 1 && n.Hyper == b.hyper {
		return n
	}
	k := boolKey{n: n, hyper: b.hyper}
	if u, ok := b.bools[k]; ok {
		return u
	}
	u := b.g.NewNode(pegasus.KUnOp, b.hyper)
	u.UnOp = pegasus.UBool
	u.VT = pegasus.Pred
	u.Ins = []pegasus.Ref{r}
	b.bools[k] = u
	return u
}

func (b *fnBuilder) snapVal(s *snap, v *cminor.VarDecl) pegasus.Ref {
	if r, ok := s.env[v]; ok {
		return r
	}
	return pegasus.V(b.constNode(0, pegasus.VTypeOf(v.Type.Decay())))
}

func copyEnv(env map[*cminor.VarDecl]pegasus.Ref) map[*cminor.VarDecl]pegasus.Ref {
	out := make(map[*cminor.VarDecl]pegasus.Ref, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func newChain(write pegasus.Ref) *tokChain {
	return &tokChain{writes: []pegasus.Ref{write}, covered: map[pegasus.Ref]bool{}}
}

func copyChains(tok map[alias.ClassID]*tokChain) map[alias.ClassID]*tokChain {
	out := make(map[alias.ClassID]*tokChain, len(tok))
	for cl, ch := range tok {
		c := &tokChain{
			writes:  append([]pegasus.Ref(nil), ch.writes...),
			reads:   append([]pegasus.Ref(nil), ch.reads...),
			covered: make(map[pegasus.Ref]bool, len(ch.covered)),
		}
		for r := range ch.covered {
			c.covered[r] = true
		}
		out[cl] = c
	}
	return out
}

// joinToks rebuilds the per-class token state at an intra-hyperblock join
// as the union of the incoming forks. Coverage unions too: a token edge
// is structural, so a read that succeeds a write does so on every path.
func (b *fnBuilder) joinToks(snaps []*snap) {
	if len(snaps) == 1 {
		b.tok = copyChains(snaps[0].chains)
		return
	}
	b.tok = map[alias.ClassID]*tokChain{}
	for _, cl := range b.classes {
		ch := &tokChain{covered: map[pegasus.Ref]bool{}}
		seenW := map[pegasus.Ref]bool{}
		seenR := map[pegasus.Ref]bool{}
		for _, s := range snaps {
			in := s.chains[cl]
			for _, w := range in.writes {
				if !seenW[w] {
					seenW[w] = true
					ch.writes = append(ch.writes, w)
				}
			}
			for _, r := range in.reads {
				if !seenR[r] {
					seenR[r] = true
					ch.reads = append(ch.reads, r)
				}
			}
			for w := range in.covered {
				ch.covered[w] = true
			}
		}
		b.tok[cl] = ch
	}
}
