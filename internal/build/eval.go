package build

import (
	"spatial/internal/alias"
	"spatial/internal/cminor"
	"spatial/internal/pegasus"
)

// chainFor returns the token chain ordering accesses to rw, or nil when
// the access needs no ordering: immutable objects never change, so their
// reads commute with everything (Section 4.2).
func (b *fnBuilder) chainFor(rw alias.Set) (alias.ClassID, *tokChain) {
	if rw.Empty() || b.an.IsConstSet(rw) {
		return -1, nil
	}
	cl := b.an.ClassOf(rw.Elems()[0])
	return cl, b.tok[cl]
}

// chainRead joins n into ch as a read: it waits on the whole write
// frontier (never on other reads) and covers it.
func chainRead(ch *tokChain, n *pegasus.Node) {
	for _, w := range ch.writes {
		n.AddTok(w)
		ch.covered[w] = true
	}
	ch.reads = append(ch.reads, pegasus.T(n))
}

// chainWrite joins n into ch as a write: it collects the outstanding
// reads (write-after-read) plus any writes no read covers
// (write-after-write) and becomes the new one-element frontier.
func chainWrite(ch *tokChain, n *pegasus.Node) {
	for _, r := range ch.reads {
		n.AddTok(r)
	}
	for _, w := range ch.writes {
		if !ch.covered[w] {
			n.AddTok(w)
		}
	}
	ch.writes = []pegasus.Ref{pegasus.T(n)}
	ch.reads = nil
	ch.covered = map[pegasus.Ref]bool{}
}

// load creates a predicated load ordered after the write frontier of
// its location class. Tokenless (immutable) accesses carry Class -1 so
// the pipeline pass never pulls them into a token circuit.
func (b *fnBuilder) load(addr pegasus.Ref, bytes int, signed bool, rw alias.Set) *pegasus.Node {
	n := b.g.NewNode(pegasus.KLoad, b.hyper)
	n.VT = pegasus.VType{Bits: bytes * 8, Signed: signed}
	n.Ins = []pegasus.Ref{addr}
	n.Preds = []pegasus.Ref{pegasus.V(b.pred)}
	n.Bytes = bytes
	n.RW = rw
	n.Pos = b.pos
	n.Class = -1
	if cl, ch := b.chainFor(rw); ch != nil {
		n.Class = cl
		chainRead(ch, n)
	}
	return n
}

// store creates a predicated store succeeding every outstanding
// access of its class.
func (b *fnBuilder) store(addr, val pegasus.Ref, bytes int, rw alias.Set) *pegasus.Node {
	n := b.g.NewNode(pegasus.KStore, b.hyper)
	n.Ins = []pegasus.Ref{addr, val}
	n.Preds = []pegasus.Ref{pegasus.V(b.pred)}
	n.Bytes = bytes
	n.RW = rw
	n.Pos = b.pos
	n.Class = -1
	if cl, ch := b.chainFor(rw); ch != nil {
		n.Class = cl
		chainWrite(ch, n)
	}
	return n
}

// emitCall lowers a call: arguments are converted to the parameter types
// (the activation receives them raw), and the call joins the token chain
// of every class it touches — like a store for classes it may write, like
// a load for classes it only reads.
func (b *fnBuilder) emitCall(e *cminor.CallExpr) pegasus.Ref {
	var ins []pegasus.Ref
	for i, a := range e.Args {
		ins = append(ins, b.conv(b.lowerExpr(a), e.Func.Params[i].Type))
	}
	n := b.g.NewNode(pegasus.KCall, b.hyper)
	n.Callee = e.Func
	n.Ins = ins
	n.Preds = []pegasus.Ref{pegasus.V(b.pred)}
	n.Pos = b.pos
	n.Reads = b.an.FuncReads(e.Func)
	n.Writes = b.an.FuncWrites(e.Func)
	rw := n.Reads.Clone()
	rw.Union(n.Writes)
	n.RW = rw

	written := map[alias.ClassID]bool{}
	for _, o := range n.Writes.Elems() {
		written[b.an.ClassOf(o)] = true
	}
	read := map[alias.ClassID]bool{}
	for _, o := range n.Reads.Elems() {
		read[b.an.ClassOf(o)] = true
	}
	for _, cl := range b.classes {
		ch := b.tok[cl]
		switch {
		case written[cl]:
			chainWrite(ch, n)
		case read[cl]:
			chainRead(ch, n)
		}
	}
	if e.Func.Ret.Kind != cminor.TypeVoid {
		n.VT = pegasus.VTypeOf(e.Func.Ret)
		return pegasus.V(n)
	}
	return pegasus.Ref{}
}

// boundaries collapses the per-class token state to a single token per
// class for an edge leaving the hyperblock (or closing a loop): etas and
// return sites carry exactly one token. Mutating the chains keeps
// repeated snapshots (one per out edge) consistent.
func (b *fnBuilder) boundaries() map[alias.ClassID]pegasus.Ref {
	out := make(map[alias.ClassID]pegasus.Ref, len(b.classes))
	for _, cl := range b.classes {
		ch := b.tok[cl]
		frontier := append([]pegasus.Ref(nil), ch.reads...)
		for _, w := range ch.writes {
			if !ch.covered[w] {
				frontier = append(frontier, w)
			}
		}
		if len(frontier) == 1 {
			out[cl] = frontier[0]
			continue
		}
		comb := b.g.NewNode(pegasus.KCombine, b.hyper)
		comb.TokClass = cl
		comb.Toks = frontier
		out[cl] = pegasus.T(comb)
		ch.writes = []pegasus.Ref{pegasus.T(comb)}
		ch.reads = nil
		ch.covered = map[pegasus.Ref]bool{}
	}
	return out
}

// spillParams stores address-taken parameters into their frame objects at
// procedure entry, mirroring the interpreter's calling convention (the
// dataflow activation only populates register params).
func (b *fnBuilder) spillParams() {
	for i, p := range b.fn.Params {
		obj, mem := b.an.ObjectOf(p)
		if !mem {
			continue
		}
		b.pos = p.Pos
		b.store(pegasus.V(b.addrOfNode(obj)), pegasus.V(b.g.Params[i]),
			int(p.Type.Decay().Size()), alias.SetOf(obj))
	}
}
